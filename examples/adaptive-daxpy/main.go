// Adaptive re-adaptation demo: a workload whose behaviour changes
// mid-run. Phase 1 hammers a small, cache-resident window of a large
// array with 4 threads — aggressive prefetching causes coherent misses
// and COBRA's noprefetch patch wins. Phase 2 streams the whole array —
// prefetching is now essential, the patched loop regresses, and the
// continuous re-adaptation controller rolls the patch back.
//
// This is "Continuous Binary Re-Adaptation" in one run: patch, observe,
// revert. The workload itself lives in internal/workload (PhasedDaxpy)
// so tests and cobra-run can run the same program; run with
// `cobra-run -workload phased -trace -explain` to watch the lifecycle.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
)

func main() {
	fmt.Println("phase 1: cache-resident window (coherent misses dominate)")
	fmt.Println("phase 2: streaming the full array (prefetching essential)")
	bc := core.SMPConfig(4)
	cfg := core.DefaultCobraConfig(core.StrategyAdaptive)
	bc.Cobra = &cfg
	inst, err := core.Build(core.PhasedDaxpy(core.PhasedDaxpyParams{}), bc)
	if err != nil {
		log.Fatal(err)
	}
	m, err := inst.Measure()
	if err != nil {
		log.Fatal(err)
	}
	st := m.Cobra
	fmt.Printf("\ncycles=%d\n", m.Cycles)
	fmt.Printf("COBRA: samples=%d triggers=%d patches=%d rollbacks=%d nopped=%d\n",
		st.SamplesSeen, st.Triggers, st.PatchesApplied, st.PatchesRolledBack, st.PrefetchesNopped)
	switch {
	case st.PatchesApplied == 0:
		fmt.Println("(no patch was deployed — unexpected; try more phase-1 reps)")
	case st.PatchesRolledBack == 0:
		fmt.Println("patch survived both phases (no regression observed)")
	default:
		fmt.Println("re-adaptation: the phase-1 patch regressed in phase 2 and was rolled back")
	}
}

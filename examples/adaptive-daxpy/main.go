// Adaptive re-adaptation demo: a workload whose behaviour changes
// mid-run. Phase 1 hammers a small, cache-resident window of a large
// array with 4 threads — aggressive prefetching causes coherent misses
// and COBRA's noprefetch patch wins. Phase 2 streams the whole array —
// prefetching is now essential, the patched loop regresses, and the
// continuous re-adaptation controller rolls the patch back.
//
// This is "Continuous Binary Re-Adaptation" in one run: patch, observe,
// revert.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/ia64"
	ir "repro/internal/loopir"
	"repro/internal/workload"
)

func phasedWorkload() *core.Workload {
	const elems = 1 << 19 // 4 MB x + 4 MB y
	prog := &ir.Program{
		Name: "phased",
		Arrays: []ir.Array{
			{Name: "x", Kind: ir.F64, Elems: elems},
			{Name: "y", Kind: ir.F64, Elems: elems},
		},
		Funcs: []*ir.Func{{
			Name:        "axpy",
			Parallel:    true,
			FloatParams: []string{"a"},
			Body: []ir.Stmt{
				ir.For{Var: "i", Lo: ir.V("lo"), Hi: ir.V("hi"), Body: []ir.Stmt{
					ir.FStore{Array: "y", Index: ir.V("i"),
						Val: ir.FAdd(ir.At("y", ir.V("i")),
							ir.FMul(ir.FV("a"), ir.At("x", ir.V("i"))))},
				}},
			},
		}},
	}
	return &core.Workload{
		Name: "phased-daxpy",
		Prog: prog,
		Setup: func(c *workload.Ctx) error {
			for i := int64(0); i < elems; i++ {
				c.WriteF64("x", i, 1)
				c.WriteF64("y", i, 2)
			}
			return nil
		},
		Run: func(c *workload.Ctx) error {
			bind := func(tid int, rf *ia64.RegFile) {
				rf.SetFR(c.FloatArg("axpy", "a"), 0.5)
			}
			// Phase 1: 8K-element window (128 KB working set), repeated.
			fmt.Println("phase 1: cache-resident window (coherent misses dominate)")
			for rep := 0; rep < 150; rep++ {
				if err := c.ParallelFor("axpy", 8192, bind); err != nil {
					return err
				}
			}
			// Phase 2: stream the whole 8 MB working set.
			fmt.Println("phase 2: streaming the full array (prefetching essential)")
			for rep := 0; rep < 10; rep++ {
				if err := c.ParallelFor("axpy", elems, bind); err != nil {
					return err
				}
			}
			return nil
		},
	}
}

func main() {
	bc := core.SMPConfig(4)
	cfg := core.DefaultCobraConfig(core.StrategyAdaptive)
	bc.Cobra = &cfg
	inst, err := core.Build(phasedWorkload(), bc)
	if err != nil {
		log.Fatal(err)
	}
	m, err := inst.Measure()
	if err != nil {
		log.Fatal(err)
	}
	st := m.Cobra
	fmt.Printf("\ncycles=%d\n", m.Cycles)
	fmt.Printf("COBRA: samples=%d triggers=%d patches=%d rollbacks=%d nopped=%d\n",
		st.SamplesSeen, st.Triggers, st.PatchesApplied, st.PatchesRolledBack, st.PrefetchesNopped)
	switch {
	case st.PatchesApplied == 0:
		fmt.Println("(no patch was deployed — unexpected; try more phase-1 reps)")
	case st.PatchesRolledBack == 0:
		fmt.Println("patch survived both phases (no regression observed)")
	default:
		fmt.Println("re-adaptation: the phase-1 patch regressed in phase 2 and was rolled back")
	}
}

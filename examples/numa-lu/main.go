// NUMA LU demo: run the LU simulated-CFD application on the Altix-like
// cc-NUMA model, where coherent misses cost the most, and compare the
// untouched binary with COBRA's noprefetch strategy — the configuration
// behind the paper's Figure 5(b). (In the paper CG shows the largest
// Altix gain; in this scaled-down simulator LU does — see EXPERIMENTS.md
// for the full per-benchmark comparison.)
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
)

func run(strategy *core.CobraConfig) core.Measurement {
	w, err := core.NPB("lu", core.ClassS, 0)
	if err != nil {
		log.Fatal(err)
	}
	bc := core.NUMAConfig(8)
	bc.Cobra = strategy
	inst, err := core.Build(w, bc)
	if err != nil {
		log.Fatal(err)
	}
	m, err := inst.Measure()
	if err != nil {
		log.Fatal(err)
	}
	return m
}

func main() {
	base := run(nil)
	cfg := core.DefaultCobraConfig(core.StrategyNoprefetch)
	// On cc-NUMA the DEAR coherent-latency filter must sit above the
	// remote memory latency (§4's two-level filtering).
	cfg.CoherentLatency = 420
	opt := run(&cfg)

	fmt.Println("LU class S on the 8-CPU cc-NUMA model (2 CPUs per node):")
	fmt.Printf("  baseline:          %12d cycles   l3miss=%-8d bus=%-8d dirty-snoops=%d\n",
		base.Cycles, base.Mem.L3Misses, base.Mem.BusMemory,
		base.Mem.BusRdHitm+base.Mem.BusRdInvalAllHitm)
	fmt.Printf("  cobra noprefetch:  %12d cycles   l3miss=%-8d bus=%-8d dirty-snoops=%d\n",
		opt.Cycles, opt.Mem.L3Misses, opt.Mem.BusMemory,
		opt.Mem.BusRdHitm+opt.Mem.BusRdInvalAllHitm)
	fmt.Printf("  speedup %.3fx; %d prefetch sites removed across %d patches (%d rollbacks)\n",
		float64(base.Cycles)/float64(opt.Cycles),
		opt.Cobra.PrefetchesNopped, opt.Cobra.PatchesApplied, opt.Cobra.PatchesRolledBack)
}

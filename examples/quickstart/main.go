// Quickstart: compile the paper's OpenMP DAXPY kernel for a simulated
// 4-way Itanium 2 SMP, run it three ways — untouched, under COBRA's
// noprefetch strategy, and under COBRA's lfetch.excl strategy — and print
// what the runtime optimizer saw and did.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
)

func measure(strategy *core.CobraConfig) (core.Measurement, *core.Instance) {
	w := core.Daxpy(core.DaxpyParams{WorkingSetBytes: 128 << 10, OuterReps: 100})
	bc := core.SMPConfig(4)
	bc.Cobra = strategy
	inst, err := core.Build(w, bc)
	if err != nil {
		log.Fatal(err)
	}
	m, err := inst.Measure()
	if err != nil {
		log.Fatal(err)
	}
	return m, inst
}

func main() {
	base, _ := measure(nil)
	fmt.Printf("baseline (icc-style aggressive prefetch): %d cycles\n", base.Cycles)
	fmt.Printf("  coherent snoops: %d dirty, %d ownership-steals, %d upgrades\n\n",
		base.Mem.BusRdHitm, base.Mem.BusRdInvalAllHitm, base.Mem.BusUpgrades)

	for _, s := range []core.Strategy{core.StrategyNoprefetch, core.StrategyExcl} {
		cfg := core.DefaultCobraConfig(s)
		m, inst := measure(&cfg)
		fmt.Printf("COBRA %-14s %d cycles (%.1f%% vs baseline)\n",
			s.String()+":", m.Cycles, 100*float64(base.Cycles-m.Cycles)/float64(base.Cycles))
		fmt.Printf("  samples=%d triggers=%d patches=%d prefetches rewritten=%d traces=%d\n",
			m.Cobra.SamplesSeen, m.Cobra.Triggers, m.Cobra.PatchesApplied,
			m.Cobra.PrefetchesNopped+m.Cobra.PrefetchesExcl, m.Cobra.TracesEmitted)
		for _, p := range inst.Cobra.ActivePatches() {
			fmt.Printf("  patch: loop [%d,%d] in %s -> %s (%d lfetch sites, trace @%d)\n",
				p.Region.Start, p.Region.End, p.Region.FuncName, p.Rewrite,
				p.RewrittenPrefetches, p.TraceEntry)
		}
		fmt.Println()
	}
}

// Benchmarks regenerating every table and figure of the paper's
// evaluation, plus ablations of the design choices called out in
// DESIGN.md. Each benchmark prints the series the paper reports via
// b.ReportMetric, so `go test -bench . -benchmem` reproduces the
// evaluation end to end:
//
//	Figure 3(a)/(b)  DAXPY normalized execution time sweeps
//	Table 1          static lfetch / br.ctop / br.cloop / br.wtop counts
//	Figure 5(a)/(b)  NPB speedups under COBRA on SMP / cc-NUMA
//	Figure 6(a)/(b)  normalized L3 misses
//	Figure 7(a)/(b)  normalized bus transactions
//
// The per-machine NPB sweeps are computed once and shared by the three
// figures that read them.
package repro_test

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/cobra"
	"repro/internal/experiment"
	"repro/internal/npb"
	"repro/internal/obs"
	"repro/internal/workload"
)

// benchDaxpyScale is a reduced but shape-preserving Figure 3 sweep.
func benchDaxpyScale() experiment.DaxpyScale {
	return experiment.DaxpyScale{
		WorkingSets: []int64{128 << 10, 2 << 20},
		Threads:     []int{1, 4},
		RepsFor: func(ws int64) int {
			if ws >= 2<<20 {
				return 8
			}
			return 60
		},
	}
}

func BenchmarkFig2Codegen(b *testing.B) {
	for i := 0; i < b.N; i++ {
		w := workload.Daxpy(workload.DaxpyParams{WorkingSetBytes: 128 << 10, OuterReps: 1})
		inst, err := workload.Build(w, workload.SMPConfig(1))
		if err != nil {
			b.Fatal(err)
		}
		c := inst.Ctx.Res.StaticCounts(inst.Ctx.M.Image())
		if i == 0 {
			b.ReportMetric(float64(c.Lfetch), "lfetch")
			b.ReportMetric(float64(c.BrCtop), "br.ctop")
		}
	}
}

func benchFigure3(b *testing.B, panel byte) {
	for i := 0; i < b.N; i++ {
		cells, err := experiment.Figure3(panel, benchDaxpyScale())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, c := range cells {
				if c.Variant == workload.VariantPrefetch {
					continue
				}
				// Ratio of the rewritten variant to the prefetch baseline
				// at the same (working set, threads) point.
				for _, base := range cells {
					if base.WSBytes == c.WSBytes && base.Threads == c.Threads &&
						base.Variant == workload.VariantPrefetch {
						name := fmt.Sprintf("ws%dK_t%d_ratio", c.WSBytes>>10, c.Threads)
						b.ReportMetric(float64(c.Cycles)/float64(base.Cycles), name)
					}
				}
			}
		}
	}
}

func BenchmarkFig3aDaxpyPrefetchVsNoprefetch(b *testing.B) { benchFigure3(b, 'a') }
func BenchmarkFig3bDaxpyPrefetchExcl(b *testing.B)         { benchFigure3(b, 'b') }

func BenchmarkTable1StaticCounts(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiment.Table1(npb.ClassS)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				b.ReportMetric(float64(r.Lfetch), r.Bench+"_lfetch")
			}
		}
	}
}

// The NPB sweeps are expensive; compute each machine's once and share it
// across the speedup / L3 / bus benchmarks.
var (
	npbOnce   [2]sync.Once
	npbResult [2]*experiment.NPBResult
	npbErr    [2]error
)

func npbSweep(b *testing.B, m experiment.MachineKind) *experiment.NPBResult {
	b.Helper()
	npbOnce[m].Do(func() {
		npbResult[m], npbErr[m] = experiment.RunNPB(m, npb.ClassS, nil)
	})
	if npbErr[m] != nil {
		b.Fatal(npbErr[m])
	}
	return npbResult[m]
}

func benchNPBMetric(b *testing.B, m experiment.MachineKind, unit string,
	metric func(r *experiment.NPBResult) func(string, experiment.StrategyLabel) float64) {
	for i := 0; i < b.N; i++ {
		res := npbSweep(b, m)
		if i == 0 {
			f := metric(res)
			for _, s := range []experiment.StrategyLabel{experiment.NoPrefetch, experiment.Excl} {
				for _, bench := range res.Benches() {
					b.ReportMetric(f(bench, s), bench+"_"+string(s)+"_"+unit)
				}
				b.ReportMetric(res.Average(f, s), "avg_"+string(s)+"_"+unit)
			}
		}
	}
}

func BenchmarkFig5aSpeedupSMP(b *testing.B) {
	benchNPBMetric(b, experiment.SMP4, "speedup", func(r *experiment.NPBResult) func(string, experiment.StrategyLabel) float64 {
		return r.Speedup
	})
}

func BenchmarkFig5bSpeedupNUMA(b *testing.B) {
	benchNPBMetric(b, experiment.Altix8, "speedup", func(r *experiment.NPBResult) func(string, experiment.StrategyLabel) float64 {
		return r.Speedup
	})
}

func BenchmarkFig6aL3MissesSMP(b *testing.B) {
	benchNPBMetric(b, experiment.SMP4, "l3norm", func(r *experiment.NPBResult) func(string, experiment.StrategyLabel) float64 {
		return r.NormL3
	})
}

func BenchmarkFig6bL3MissesNUMA(b *testing.B) {
	benchNPBMetric(b, experiment.Altix8, "l3norm", func(r *experiment.NPBResult) func(string, experiment.StrategyLabel) float64 {
		return r.NormL3
	})
}

func BenchmarkFig7aBusTransSMP(b *testing.B) {
	benchNPBMetric(b, experiment.SMP4, "busnorm", func(r *experiment.NPBResult) func(string, experiment.StrategyLabel) float64 {
		return r.NormBus
	})
}

func BenchmarkFig7bBusTransNUMA(b *testing.B) {
	benchNPBMetric(b, experiment.Altix8, "busnorm", func(r *experiment.NPBResult) func(string, experiment.StrategyLabel) float64 {
		return r.NormBus
	})
}

// ---- Ablations (DESIGN.md §5) ----

func daxpyCycles(b *testing.B, ws int64, reps int, cfg *cobra.Config, v workload.Variant) int64 {
	b.Helper()
	w := workload.Daxpy(workload.DaxpyParams{WorkingSetBytes: ws, OuterReps: reps})
	bc := workload.SMPConfig(4)
	bc.Cobra = cfg
	inst, err := workload.Build(w, bc)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := workload.ApplyVariant(inst, v); err != nil {
		b.Fatal(err)
	}
	m, err := inst.Measure()
	if err != nil {
		b.Fatal(err)
	}
	return m.Cycles
}

// BenchmarkAblationNoCoherenceFilters disables the profiling filters —
// the two-level DEAR latency filter (CoherentLatency = 0) and the
// coherent-share trigger gate — leaving an always-on optimizer. On a
// streaming working set it removes useful prefetches from capacity-bound
// loops; the filtered configuration must be faster.
func BenchmarkAblationNoCoherenceFilters(b *testing.B) {
	for i := 0; i < b.N; i++ {
		filtered := cobra.DefaultConfig(cobra.StrategyNoprefetch)
		unfiltered := cobra.DefaultConfig(cobra.StrategyNoprefetch)
		unfiltered.CoherentLatency = 0
		unfiltered.CoherentShareThreshold = 0
		unfiltered.MinCoherentEvents = 0
		// Disable the safety net too: this measures the filters, not the
		// rollback (which would otherwise repair the damage).
		unfiltered.RollbackTolerance = 1e9
		filtered.RollbackTolerance = 1e9
		cf := daxpyCycles(b, 2<<20, 8, &filtered, workload.VariantPrefetch)
		cu := daxpyCycles(b, 2<<20, 8, &unfiltered, workload.VariantPrefetch)
		if i == 0 {
			b.ReportMetric(float64(cu)/float64(cf), "unfiltered_vs_filtered")
		}
	}
}

// BenchmarkAblationTraceVsInPlace compares the two deployment mechanisms:
// code-cache trace redirection (the paper's design) against in-place word
// patching.
func BenchmarkAblationTraceVsInPlace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		trace := cobra.DefaultConfig(cobra.StrategyNoprefetch)
		inplace := cobra.DefaultConfig(cobra.StrategyNoprefetch)
		inplace.UseTraceCache = false
		ct := daxpyCycles(b, 128<<10, 100, &trace, workload.VariantPrefetch)
		cp := daxpyCycles(b, 128<<10, 100, &inplace, workload.VariantPrefetch)
		if i == 0 {
			b.ReportMetric(float64(ct)/float64(cp), "trace_vs_inplace")
		}
	}
}

// BenchmarkAblationExclAll applies .excl to every prefetch statically
// (instead of only store-following streams): at a cache-resident working
// set the indiscriminate version steals read-shared lines and loses.
func BenchmarkAblationExclAll(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sel := daxpyCycles(b, 128<<10, 100, nil, workload.VariantExcl)
		all := daxpyCycles(b, 128<<10, 100, nil, workload.VariantExclAll)
		if i == 0 {
			b.ReportMetric(float64(all)/float64(sel), "exclall_vs_selective")
		}
	}
}

// BenchmarkAblationSamplingPeriod sweeps the perfmon sampling period:
// denser sampling finds the optimization sooner but costs more overhead.
func BenchmarkAblationSamplingPeriod(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, period := range []int64{5000, 20000, 80000} {
			cfg := cobra.DefaultConfig(cobra.StrategyNoprefetch)
			cfg.Sampling.CyclePeriod = period
			c := daxpyCycles(b, 128<<10, 100, &cfg, workload.VariantPrefetch)
			if i == 0 {
				b.ReportMetric(float64(c), fmt.Sprintf("cycles_period%d", period))
			}
		}
	}
}

// BenchmarkSimulatorThroughput measures raw simulation speed: simulated
// instructions per second of host time for a streaming kernel.
func BenchmarkSimulatorThroughput(b *testing.B) {
	w := workload.Daxpy(workload.DaxpyParams{WorkingSetBytes: 512 << 10, OuterReps: 4})
	b.ResetTimer()
	var instr int64
	for i := 0; i < b.N; i++ {
		inst, err := workload.Build(w, workload.SMPConfig(4))
		if err != nil {
			b.Fatal(err)
		}
		if err := inst.Run(); err != nil {
			b.Fatal(err)
		}
		instr = 0
		for c := 0; c < 4; c++ {
			instr += inst.Ctx.M.CPU(c).InstRetired
		}
	}
	b.ReportMetric(float64(instr), "sim_instrs/op")
}

// BenchmarkSimulatorThroughputTraced is the same streaming kernel with
// every observability surface enabled (cycle-domain tracer, metrics
// registry, decision log). The delta against BenchmarkSimulatorThroughput
// is the total cost of observing a run: region spans, machine counter
// events, and registry updates — the per-instruction path itself never
// consults the observer.
func BenchmarkSimulatorThroughputTraced(b *testing.B) {
	w := workload.Daxpy(workload.DaxpyParams{WorkingSetBytes: 512 << 10, OuterReps: 4})
	b.ResetTimer()
	var instr, events int64
	for i := 0; i < b.N; i++ {
		bc := workload.SMPConfig(4)
		o := obs.New(obs.Config{Trace: true, Metrics: true, Decisions: true})
		bc.Obs = o
		inst, err := workload.Build(w, bc)
		if err != nil {
			b.Fatal(err)
		}
		if err := inst.Run(); err != nil {
			b.Fatal(err)
		}
		instr = 0
		for c := 0; c < 4; c++ {
			instr += inst.Ctx.M.CPU(c).InstRetired
		}
		events = int64(o.Trace().Len())
	}
	b.ReportMetric(float64(instr), "sim_instrs/op")
	b.ReportMetric(float64(events), "trace_events/op")
}

// BenchmarkSimulatorThroughputParallel measures the parallel window
// engine on an 8-CPU machine at several sim-worker counts, with workers=1
// (the serial engine) as the interleaved A/B baseline. Results are
// byte-identical across all counts — the sub-benchmarks differ only in
// host-side execution strategy, so the ratio is pure engine overhead or
// speedup. On multi-core hosts the record phase (functional execution,
// the majority of per-instruction work) runs concurrently; on a single
// host core the numbers bound the window machinery's overhead instead.
func BenchmarkSimulatorThroughputParallel(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers%d", workers), func(b *testing.B) {
			w := workload.Daxpy(workload.DaxpyParams{WorkingSetBytes: 512 << 10, OuterReps: 4})
			b.ResetTimer()
			var instr int64
			for i := 0; i < b.N; i++ {
				bc := workload.SMPConfig(8)
				bc.Machine.SimWorkers = workers
				inst, err := workload.Build(w, bc)
				if err != nil {
					b.Fatal(err)
				}
				if err := inst.Run(); err != nil {
					b.Fatal(err)
				}
				instr = 0
				for c := 0; c < 8; c++ {
					instr += inst.Ctx.M.CPU(c).InstRetired
				}
			}
			b.ReportMetric(float64(instr), "sim_instrs/op")
		})
	}
}

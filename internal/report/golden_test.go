package report

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/cobra"
	"repro/internal/experiment"
	"repro/internal/mem"
	"repro/internal/workload"
)

// npbFixture is a small synthetic sweep with round numbers so every
// normalized figure value is an exact decimal — table-driven goldens pin
// the renderers' exact alignment, which ad-hoc Contains checks cannot.
func npbFixture() *experiment.NPBResult {
	cell := func(b string, s experiment.StrategyLabel, cyc, l3, bus int64, cs cobra.Stats) experiment.NPBCell {
		m := workload.Measurement{Cycles: cyc, Cobra: cs}
		m.Mem = mem.CPUStats{L3Misses: l3, BusMemory: bus}
		return experiment.NPBCell{Bench: b, Strategy: s, Measurement: m}
	}
	return &experiment.NPBResult{
		Machine: experiment.SMP4,
		Threads: 4,
		Cells: []experiment.NPBCell{
			cell("bt", experiment.Baseline, 1000, 100, 200, cobra.Stats{}),
			cell("bt", experiment.NoPrefetch, 2000, 50, 100, cobra.Stats{SamplesSeen: 10, Triggers: 2, PatchesApplied: 1, PrefetchesNopped: 5}),
			cell("bt", experiment.Excl, 500, 80, 150, cobra.Stats{SamplesSeen: 12, Triggers: 3, PatchesApplied: 2, PrefetchesExcl: 7}),
			cell("cg", experiment.Baseline, 900, 90, 90, cobra.Stats{}),
			cell("cg", experiment.NoPrefetch, 450, 45, 45, cobra.Stats{SamplesSeen: 8, Triggers: 1, PatchesApplied: 1, PrefetchesNopped: 3}),
			cell("cg", experiment.Excl, 300, 30, 30, cobra.Stats{SamplesSeen: 9, Triggers: 2, PatchesApplied: 1, PrefetchesExcl: 4}),
		},
	}
}

// checkGolden compares rendered output to the golden byte-for-byte,
// reporting the first differing lines on failure.
func checkGolden(t *testing.T, got, want string) {
	t.Helper()
	if got == want {
		return
	}
	gl, wl := strings.Split(got, "\n"), strings.Split(want, "\n")
	for i := 0; i < len(gl) || i < len(wl); i++ {
		g, w := "", ""
		if i < len(gl) {
			g = gl[i]
		}
		if i < len(wl) {
			w = wl[i]
		}
		if g != w {
			t.Errorf("line %d:\n got %q\nwant %q", i+1, g, w)
		}
	}
}

func TestFigure3Golden(t *testing.T) {
	var b bytes.Buffer
	Figure3(&b, 'a', []experiment.DaxpyCell{
		{WSBytes: 128 << 10, Threads: 1, Variant: workload.VariantPrefetch, Cycles: 1000, Normalized: 1},
		{WSBytes: 128 << 10, Threads: 2, Variant: workload.VariantNoPrefetch, Cycles: 1500, Normalized: 1.5},
		{WSBytes: 1 << 20, Threads: 1, Variant: workload.VariantPrefetch, Cycles: 8000, Normalized: 1},
		{WSBytes: 1 << 20, Threads: 2, Variant: workload.VariantExcl, Cycles: 4000, Normalized: 0.5},
	})
	want := `Figure 3(a): DAXPY normalized execution time, prefetch vs noprefetch (4-way SMP)
(normalized to the 1-thread prefetch run at each working set)

working set  threads  variant                    cycles   normalized
128K         1        prefetch                     1000        1.000
128K         2        noprefetch                   1500        1.500

1M           1        prefetch                     8000        1.000
1M           2        prefetch.excl                4000        0.500
`
	checkGolden(t, b.String(), want)
}

func TestFigure3PanelBAndEmpty(t *testing.T) {
	var b bytes.Buffer
	Figure3(&b, 'b', nil)
	got := b.String()
	if !strings.Contains(got, "prefetch vs prefetch.excl") {
		t.Errorf("panel b header wrong:\n%s", got)
	}
	if n := strings.Count(got, "\n"); n != 4 {
		t.Errorf("empty figure rendered %d lines, want header-only (4)", n)
	}
}

func TestTable1Golden(t *testing.T) {
	var b bytes.Buffer
	Table1(&b, []experiment.Table1Row{
		{Bench: "bt", Lfetch: 111, BrCtop: 22, BrCloop: 3, BrWtop: 0},
		{Bench: "cg", Lfetch: 7, BrCtop: 1, BrCloop: 0, BrWtop: 2},
	})
	want := `Table 1: loops and prefetches in compiler-generated OpenMP NPB binaries

benchmark      lfetch  br.ctop br.cloop  br.wtop
BT                111       22        3        0
CG                  7        1        0        2
`
	checkGolden(t, b.String(), want)

	b.Reset()
	Table1(&b, nil)
	want = `Table 1: loops and prefetches in compiler-generated OpenMP NPB binaries

benchmark      lfetch  br.ctop br.cloop  br.wtop
`
	checkGolden(t, b.String(), want)
}

func TestFigure5Golden(t *testing.T) {
	var b bytes.Buffer
	Figure5(&b, 'a', npbFixture())
	want := `Figure 5(a): speedup of coherent memory access optimization on OpenMP NPB
4-way SMP, 4 threads

benchmark     (4, prefetch)  (4, noprefetch) (4, prefetch.excl)
bt.S                  1.000            0.500            2.000
cg.S                  1.000            2.000            3.000
avg                   1.000            1.250            2.500
(speedup relative to baseline (prefetch); > 1 is faster)
`
	checkGolden(t, b.String(), want)
}

func TestFigure6Golden(t *testing.T) {
	var b bytes.Buffer
	Figure6(&b, 'a', npbFixture())
	want := `Figure 6(a): number of L3 misses on OpenMP NPB
4-way SMP, 4 threads

benchmark     (4, prefetch)  (4, noprefetch) (4, prefetch.excl)
bt.S                  1.000            0.500            0.800
cg.S                  1.000            0.500            0.333
avg                   1.000            0.500            0.567
(L3 misses normalized to baseline; < 1 is fewer)
`
	checkGolden(t, b.String(), want)
}

func TestFigure7Golden(t *testing.T) {
	var b bytes.Buffer
	Figure7(&b, 'a', npbFixture())
	want := `Figure 7(a): memory transactions on the system bus on OpenMP NPB
4-way SMP, 4 threads

benchmark     (4, prefetch)  (4, noprefetch) (4, prefetch.excl)
bt.S                  1.000            0.500            0.750
cg.S                  1.000            0.500            0.333
avg                   1.000            0.500            0.542
(bus transactions normalized to baseline; < 1 is fewer)
`
	checkGolden(t, b.String(), want)
}

// TestFigureEmptyResult renders a sweep with no cells: headers and a
// zero avg row, no panic, no division by zero.
func TestFigureEmptyResult(t *testing.T) {
	var b bytes.Buffer
	Figure5(&b, 'b', &experiment.NPBResult{Machine: experiment.Altix8, Threads: 8})
	want := `Figure 5(b): speedup of coherent memory access optimization on OpenMP NPB
SGI Altix cc-NUMA, 8 threads

benchmark     (8, prefetch)  (8, noprefetch) (8, prefetch.excl)
avg                   0.000            0.000            0.000
(speedup relative to baseline (prefetch); > 1 is faster)
`
	checkGolden(t, b.String(), want)
}

// TestCobraActivityGolden pins the activity table and that baseline
// cells (which run unmonitored) are excluded from it.
func TestCobraActivityGolden(t *testing.T) {
	var b bytes.Buffer
	CobraActivity(&b, npbFixture())
	want := `COBRA activity (4-way SMP)

benchmark  strategy          samples  triggers   patches    nopped    excl'd
bt         noprefetch             10         2         1         5         0
bt         prefetch.excl          12         3         2         0         7
cg         noprefetch              8         1         1         3         0
cg         prefetch.excl           9         2         1         0         4
`
	checkGolden(t, b.String(), want)
}

func TestCSVGolden(t *testing.T) {
	var b bytes.Buffer
	CSV(&b, npbFixture())
	want := `machine,threads,bench,strategy,cycles,l3,bus,speedup
4-way SMP,4,bt,prefetch,1000,100,200,1.0000
4-way SMP,4,bt,noprefetch,2000,50,100,0.5000
4-way SMP,4,bt,prefetch.excl,500,80,150,2.0000
4-way SMP,4,cg,prefetch,900,90,90,1.0000
4-way SMP,4,cg,noprefetch,450,45,45,2.0000
4-way SMP,4,cg,prefetch.excl,300,30,30,3.0000
`
	checkGolden(t, b.String(), want)

	b.Reset()
	CSV(&b, &experiment.NPBResult{Machine: experiment.SMP4, Threads: 4})
	if got := b.String(); got != "machine,threads,bench,strategy,cycles,l3,bus,speedup\n" {
		t.Errorf("empty CSV = %q, want header only", got)
	}
}

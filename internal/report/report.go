// Package report renders experiment results as the text equivalents of the
// paper's tables and figures.
package report

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/experiment"
	"repro/internal/workload"
)

// Figure3 renders the normalized DAXPY execution times of Figure 3.
func Figure3(w io.Writer, panel byte, cells []experiment.DaxpyCell) {
	alt := "noprefetch"
	if panel == 'b' {
		alt = "prefetch.excl"
	}
	fmt.Fprintf(w, "Figure 3(%c): DAXPY normalized execution time, prefetch vs %s (4-way SMP)\n", panel, alt)
	fmt.Fprintf(w, "(normalized to the 1-thread prefetch run at each working set)\n\n")
	fmt.Fprintf(w, "%-12s %-8s %-18s %14s %12s\n", "working set", "threads", "variant", "cycles", "normalized")
	var lastWS int64 = -1
	for _, c := range cells {
		if c.WSBytes != lastWS {
			if lastWS >= 0 {
				fmt.Fprintln(w)
			}
			lastWS = c.WSBytes
		}
		fmt.Fprintf(w, "%-12s %-8d %-18s %14d %12.3f\n",
			wsName(c.WSBytes), c.Threads, variantName(c.Variant), c.Cycles, c.Normalized)
	}
}

func wsName(ws int64) string {
	switch {
	case ws >= 1<<20:
		return fmt.Sprintf("%dM", ws>>20)
	default:
		return fmt.Sprintf("%dK", ws>>10)
	}
}

func variantName(v workload.Variant) string { return v.String() }

// Table1 renders the static instruction statistics table.
func Table1(w io.Writer, rows []experiment.Table1Row) {
	fmt.Fprintf(w, "Table 1: loops and prefetches in compiler-generated OpenMP NPB binaries\n\n")
	fmt.Fprintf(w, "%-12s %8s %8s %8s %8s\n", "benchmark", "lfetch", "br.ctop", "br.cloop", "br.wtop")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s %8d %8d %8d %8d\n",
			strings.ToUpper(r.Bench), r.Lfetch, r.BrCtop, r.BrCloop, r.BrWtop)
	}
}

// figureNPB renders one of Figures 5/6/7 from a metric accessor.
func figureNPB(w io.Writer, title, valueHeader string, r *experiment.NPBResult,
	metric func(bench string, s experiment.StrategyLabel) float64) {
	fmt.Fprintf(w, "%s\n%s, %d threads\n\n", title, r.Machine, r.Threads)
	fmt.Fprintf(w, "%-10s", "benchmark")
	for _, s := range experiment.Strategies {
		fmt.Fprintf(w, " %16s", fmt.Sprintf("(%d, %s)", r.Threads, s))
	}
	fmt.Fprintln(w)
	for _, b := range r.Benches() {
		fmt.Fprintf(w, "%-10s", b+".S")
		for _, s := range experiment.Strategies {
			fmt.Fprintf(w, " %16.3f", metric(b, s))
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "%-10s", "avg")
	for _, s := range experiment.Strategies {
		fmt.Fprintf(w, " %16.3f", r.Average(metric, s))
	}
	fmt.Fprintf(w, "\n(%s)\n", valueHeader)
}

// Figure5 renders the speedup figure.
func Figure5(w io.Writer, panel byte, r *experiment.NPBResult) {
	figureNPB(w, fmt.Sprintf("Figure 5(%c): speedup of coherent memory access optimization on OpenMP NPB", panel),
		"speedup relative to baseline (prefetch); > 1 is faster", r, r.Speedup)
}

// Figure6 renders the normalized L3 miss figure.
func Figure6(w io.Writer, panel byte, r *experiment.NPBResult) {
	figureNPB(w, fmt.Sprintf("Figure 6(%c): number of L3 misses on OpenMP NPB", panel),
		"L3 misses normalized to baseline; < 1 is fewer", r, r.NormL3)
}

// Figure7 renders the normalized bus transaction figure.
func Figure7(w io.Writer, panel byte, r *experiment.NPBResult) {
	figureNPB(w, fmt.Sprintf("Figure 7(%c): memory transactions on the system bus on OpenMP NPB", panel),
		"bus transactions normalized to baseline; < 1 is fewer", r, r.NormBus)
}

// CobraActivity summarizes the runtime's behaviour during a sweep.
func CobraActivity(w io.Writer, r *experiment.NPBResult) {
	fmt.Fprintf(w, "COBRA activity (%s)\n\n", r.Machine)
	fmt.Fprintf(w, "%-10s %-15s %9s %9s %9s %9s %9s\n",
		"benchmark", "strategy", "samples", "triggers", "patches", "nopped", "excl'd")
	for _, c := range r.Cells {
		if c.Strategy == experiment.Baseline {
			continue
		}
		fmt.Fprintf(w, "%-10s %-15s %9d %9d %9d %9d %9d\n",
			c.Bench, string(c.Strategy), c.Cobra.SamplesSeen, c.Cobra.Triggers,
			c.Cobra.PatchesApplied, c.Cobra.PrefetchesNopped, c.Cobra.PrefetchesExcl)
	}
}

// CSV writes an NPB sweep as comma-separated rows (bench, strategy,
// cycles, l3Misses, busTransactions, speedup) for downstream plotting.
func CSV(w io.Writer, r *experiment.NPBResult) {
	fmt.Fprintf(w, "machine,threads,bench,strategy,cycles,l3,bus,speedup\n")
	for _, c := range r.Cells {
		fmt.Fprintf(w, "%s,%d,%s,%s,%d,%d,%d,%.4f\n",
			r.Machine, r.Threads, c.Bench, c.Strategy,
			c.Cycles, c.Mem.L3Misses, c.Mem.BusMemory,
			r.Speedup(c.Bench, c.Strategy))
	}
}

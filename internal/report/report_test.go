package report

import (
	"strings"
	"testing"

	"repro/internal/experiment"
	"repro/internal/npb"
	"repro/internal/workload"
)

func TestFigure3Rendering(t *testing.T) {
	cells := []experiment.DaxpyCell{
		{WSBytes: 128 << 10, Threads: 1, Variant: workload.VariantPrefetch, Cycles: 1000, Normalized: 1},
		{WSBytes: 128 << 10, Threads: 2, Variant: workload.VariantNoPrefetch, Cycles: 480, Normalized: 0.48},
		{WSBytes: 2 << 20, Threads: 4, Variant: workload.VariantPrefetch, Cycles: 9000, Normalized: 0.25},
	}
	var sb strings.Builder
	Figure3(&sb, 'a', cells)
	out := sb.String()
	for _, want := range []string{"Figure 3(a)", "128K", "2M", "noprefetch", "0.480"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestTable1Rendering(t *testing.T) {
	rows := []experiment.Table1Row{
		{Bench: "bt", Lfetch: 140, BrCtop: 34, BrCloop: 32, BrWtop: 0},
		{Bench: "cg", Lfetch: 433, BrCtop: 69, BrCloop: 29, BrWtop: 2},
	}
	var sb strings.Builder
	Table1(&sb, rows)
	out := sb.String()
	for _, want := range []string{"Table 1", "BT", "CG", "140", "433", "br.ctop"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestNPBFigureRendering(t *testing.T) {
	res, err := experiment.RunNPB(experiment.SMP4, npb.ClassT, []string{"cg"})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	Figure5(&sb, 'a', res)
	Figure6(&sb, 'a', res)
	Figure7(&sb, 'a', res)
	CobraActivity(&sb, res)
	out := sb.String()
	for _, want := range []string{
		"Figure 5(a)", "Figure 6(a)", "Figure 7(a)",
		"cg.S", "avg", "4-way SMP", "noprefetch", "COBRA activity",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q", want)
		}
	}
}

func TestCSV(t *testing.T) {
	res, err := experiment.RunNPB(experiment.SMP4, npb.ClassT, []string{"ep"})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	CSV(&sb, res)
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 1+3 { // header + 3 strategies
		t.Fatalf("csv lines = %d:\n%s", len(lines), sb.String())
	}
	if !strings.HasPrefix(lines[1], "4-way SMP,4,ep,prefetch,") {
		t.Fatalf("csv row = %q", lines[1])
	}
}

// Package core is the public surface of the COBRA reproduction: it
// re-exports the types a downstream user needs to attach the runtime
// optimizer to a simulated machine, build workloads, and run the paper's
// experiments, without importing the individual subsystem packages.
//
// The smallest complete program:
//
//	w := core.Daxpy(core.DaxpyParams{WorkingSetBytes: 128 << 10, OuterReps: 100})
//	bc := core.SMPConfig(4)
//	cfg := core.DefaultCobraConfig(core.StrategyAdaptive)
//	bc.Cobra = &cfg
//	inst, err := core.Build(w, bc)
//	if err != nil { ... }
//	m, err := inst.Measure()
//	fmt.Println(m.Cycles, m.Cobra.PatchesApplied)
package core

import (
	"repro/internal/cobra"
	"repro/internal/experiment"
	"repro/internal/npb"
	"repro/internal/obs"
	"repro/internal/workload"
)

// Strategy selects the runtime optimization COBRA applies.
type Strategy = cobra.Strategy

// The available strategies.
const (
	StrategyOff        = cobra.StrategyOff
	StrategyNoprefetch = cobra.StrategyNoprefetch
	StrategyExcl       = cobra.StrategyExcl
	StrategyAdaptive   = cobra.StrategyAdaptive
)

// CobraConfig tunes the runtime optimizer.
type CobraConfig = cobra.Config

// DefaultCobraConfig returns the evaluation configuration for a strategy.
func DefaultCobraConfig(s Strategy) CobraConfig { return cobra.DefaultConfig(s) }

// CobraStats summarizes a runtime's monitoring and patching activity.
type CobraStats = cobra.Stats

// Workload is a runnable benchmark program.
type Workload = workload.Workload

// BuildConfig assembles a machine + compiler + optional COBRA stack.
type BuildConfig = workload.BuildConfig

// Instance is a built workload ready to run.
type Instance = workload.Instance

// Measurement is the outcome of one run.
type Measurement = workload.Measurement

// DaxpyParams parameterizes the paper's Figure 1 kernel.
type DaxpyParams = workload.DaxpyParams

// PhasedDaxpyParams parameterizes the phase-change re-adaptation demo.
type PhasedDaxpyParams = workload.PhasedDaxpyParams

// Observer is the observability sink: cycle-domain tracer, metrics
// registry, and patch-decision log (see internal/obs).
type Observer = obs.Observer

// ObsConfig selects which observability surfaces to enable.
type ObsConfig = obs.Config

// NewObserver builds an observability sink; attach it via
// BuildConfig.Obs.
func NewObserver(cfg ObsConfig) *Observer { return obs.New(cfg) }

// Variant selects a static binary rewrite (the Figure 3 methodology).
type Variant = workload.Variant

// The static variants.
const (
	VariantPrefetch   = workload.VariantPrefetch
	VariantNoPrefetch = workload.VariantNoPrefetch
	VariantExcl       = workload.VariantExcl
	VariantExclAll    = workload.VariantExclAll
)

// SMPConfig builds the 4-way-SMP-style configuration with the given
// thread count.
func SMPConfig(threads int) BuildConfig { return workload.SMPConfig(threads) }

// NUMAConfig builds the Altix-style cc-NUMA configuration.
func NUMAConfig(threads int) BuildConfig { return workload.NUMAConfig(threads) }

// Daxpy builds the OpenMP DAXPY workload of Figure 1.
func Daxpy(p DaxpyParams) *Workload { return workload.Daxpy(p) }

// PhasedDaxpy builds the phase-change workload whose patch is deployed
// in phase 1 and rolled back in phase 2 (the adaptive-daxpy example).
func PhasedDaxpy(p PhasedDaxpyParams) *Workload { return workload.PhasedDaxpy(p) }

// NPB builds one of the NAS Parallel Benchmarks (bt, sp, lu, ft, mg, cg,
// ep, is).
func NPB(name string, class NPBClass, iterations int) (*Workload, error) {
	return npb.Build(name, npb.Params{Class: class, Iterations: iterations})
}

// NPBClass scales an NPB instance.
type NPBClass = npb.Class

// The available classes.
const (
	ClassT = npb.ClassT // tiny (tests)
	ClassS = npb.ClassS // the paper's class S regime
)

// Build assembles a workload instance.
func Build(w *Workload, bc BuildConfig) (*Instance, error) { return workload.Build(w, bc) }

// ApplyVariant statically rewrites a built instance's binary.
func ApplyVariant(inst *Instance, v Variant) (int, error) { return workload.ApplyVariant(inst, v) }

// MachineKind selects an evaluation platform.
type MachineKind = experiment.MachineKind

// The paper's two platforms.
const (
	SMP4   = experiment.SMP4
	Altix8 = experiment.Altix8
)

// Figure3 regenerates the paper's Figure 3 panel ('a' or 'b').
func Figure3(panel byte, scale experiment.DaxpyScale) ([]experiment.DaxpyCell, error) {
	return experiment.Figure3(panel, scale)
}

// Table1 regenerates the paper's Table 1.
func Table1(class NPBClass) ([]experiment.Table1Row, error) { return experiment.Table1(class) }

// RunNPB regenerates the data behind Figures 5-7 for one platform.
func RunNPB(machine MachineKind, class NPBClass, benches []string) (*experiment.NPBResult, error) {
	return experiment.RunNPB(machine, class, benches)
}

package core

import "testing"

func TestQuickstartFlow(t *testing.T) {
	w := Daxpy(DaxpyParams{WorkingSetBytes: 128 << 10, OuterReps: 30})
	bc := SMPConfig(4)
	cfg := DefaultCobraConfig(StrategyAdaptive)
	bc.Cobra = &cfg
	inst, err := Build(w, bc)
	if err != nil {
		t.Fatal(err)
	}
	m, err := inst.Measure()
	if err != nil {
		t.Fatal(err)
	}
	if m.Cycles <= 0 || m.Cobra.SamplesSeen == 0 {
		t.Fatalf("measurement = %+v", m)
	}
}

func TestNPBFacade(t *testing.T) {
	w, err := NPB("cg", ClassT, 1)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := Build(w, NUMAConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestVariantFacade(t *testing.T) {
	w := Daxpy(DaxpyParams{WorkingSetBytes: 32 << 10, OuterReps: 2})
	inst, err := Build(w, SMPConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	n, err := ApplyVariant(inst, VariantNoPrefetch)
	if err != nil || n == 0 {
		t.Fatalf("ApplyVariant = %d, %v", n, err)
	}
	if err := inst.Run(); err != nil {
		t.Fatal(err)
	}
}

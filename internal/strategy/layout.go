package strategy

import (
	"fmt"

	"repro/internal/cobra"
	"repro/internal/obs"
)

// layoutRegion is the layout engine's state for one region: the resident
// reordered copy (a single-variant set dispatched through the entry
// word) plus the spec it was built from, kept for decision evidence and
// re-engagement.
type layoutRegion struct {
	vs   *cobra.VariantSet
	spec cobra.LayoutSpec
}

// layoutEngine implements BOLT-style basic-block layout as a strategy
// engine: it accumulates the BTB taken-edge profile across optimizer
// windows, and when the coherent-pressure trigger names a hot loop it
// partitions the region into basic blocks, orders them hot-path-first
// (greedy extended trace selection) and deploys the reordered copy into
// the code cache as a resident variant. Judgement, rollback and
// re-engagement ride the one-word dispatch patch multi-version patching
// uses, so a phase change never costs a redeploy.
type layoutEngine struct {
	cfg   cobra.Config
	state map[cobra.LoopKey]*layoutRegion
	// edges accumulates the taken-edge profile across windows. Per-window
	// BTB rings are tiny (4 entries per sample), so a single window
	// rarely shows every edge of a region; the accumulator is the
	// cross-window aggregation the ROADMAP's layout item calls for.
	edges map[cobra.BranchEdge]int64
}

func newLayout(cfg cobra.Config) *layoutEngine {
	return &layoutEngine{
		cfg:   cfg,
		state: map[cobra.LoopKey]*layoutRegion{},
		edges: map[cobra.BranchEdge]int64{},
	}
}

func (e *layoutEngine) Name() string { return "layout" }

// harvest folds the window's taken edges into the engine accumulator.
// Edges whose branch executes inside the code cache are dropped: those
// are our own copies reporting relocated addresses, and folding them in
// would double-count the region under a shifted key space.
func (e *layoutEngine) harvest(c *cobra.Control) {
	for _, es := range c.Profiler().TakenEdges() {
		if c.Patcher().InCodeCache(es.Edge.From) {
			continue
		}
		e.edges[es.Edge] += es.Count
	}
}

// layoutEvidence annotates judgement evidence with the deployed spec.
func layoutEvidence(ev *obs.Evidence, lr *layoutRegion) {
	ev.Variant = "layout"
	ev.Variants = len(lr.vs.Variants)
	ev.Blocks = len(lr.spec.Blocks)
	ev.HotBlocks = lr.spec.Hot
	ev.HotCoverage = lr.spec.Coverage
}

// engage dispatches the resident reordered copy and re-arms judgement.
func (e *layoutEngine) engage(c *cobra.Control, k cobra.LoopKey, lr *layoutRegion, win cobra.Window, now int64) error {
	if err := c.Patcher().Switch(lr.vs, 0); err != nil {
		return err
	}
	st := c.Region(k)
	st.Patch = lr.vs.ActivePatch()
	st.Rewrite = cobra.RewriteLayout
	c.ArmJudgement(st, win, now)
	return nil
}

func (e *layoutEngine) Judge(c *cobra.Control, win cobra.Window, now int64) {
	e.harvest(c)
	tr := c.Observer().Trace()
	dl := c.Observer().Decisions()
	for _, k := range c.PatchedKeys() {
		lr := e.state[k]
		if lr == nil {
			continue // not ours (defensive: engines don't share runtimes)
		}
		st := c.Region(k)
		if !c.ObserveWindow(st, win) {
			continue
		}
		regressed := c.Regressed(st)
		ev := c.JudgeEvidence(st)
		layoutEvidence(&ev, lr)
		c.ResetJudgement(st)
		if !regressed {
			reason := "within_tolerance"
			if ev.PatchedIPC >= ev.BaselineIPC {
				reason = "improved"
			}
			if tr != nil {
				tr.Instant("patch", fmt.Sprintf("kept layout @%#x", k.Head),
					obs.TIDPatch, now, map[string]any{
						"region": k.Head, "baseline_ipc": ev.BaselineIPC,
						"patched_ipc": ev.PatchedIPC,
					})
			}
			dl.Record(now, uint64(k.Head), c.WindowOrdinal(), obs.StateKept, reason, ev)
			continue
		}

		// The reordered copy regressed this phase: one resident variant,
		// so the only move is restoring the original entry word. The copy
		// stays resident — a later phase re-engages it with a single
		// dispatch flip instead of re-emitting.
		if tr != nil {
			tr.Span("patch", fmt.Sprintf("active layout @%#x", k.Head),
				obs.TIDPatch, st.DeployedAt, now, map[string]any{"region": k.Head})
		}
		if err := c.Patcher().Switch(lr.vs, -1); err == nil {
			c.CountRollback()
		}
		st.Patch = nil
		ev.CooldownUntil = c.ArmCooldown(st, now)
		dl.Record(now, uint64(k.Head), c.WindowOrdinal(), obs.StateRolledBack, "layout_regressed", ev)
		if tr != nil {
			tr.Instant("patch", fmt.Sprintf("rolled back layout @%#x", k.Head),
				obs.TIDPatch, now, map[string]any{
					"region": k.Head, "baseline_ipc": ev.BaselineIPC,
					"patched_ipc": ev.PatchedIPC,
				})
		}
	}
}

func (e *layoutEngine) Propose(c *cobra.Control, agg cobra.Window, now int64) {
	if c.AnyUnjudged() {
		return
	}
	hot := c.Profiler().HotLoops(c.Config().MinLoopSamples)
	if len(hot) == 0 {
		return
	}
	tr := c.Observer().Trace()
	dl := c.Observer().Decisions()
	deployed := 0

	for _, ls := range hot { // hottest first, deterministically ordered
		if deployed >= maxDeploysPerPass {
			break
		}
		k := ls.Key
		if c.Patcher().InCodeCache(k.Head) || c.Patcher().InCodeCache(k.BranchPC) {
			continue // never re-lay out our own copies
		}
		if !c.Analyzer().ValidLoop(k) {
			continue
		}
		st := c.Region(k)
		if st.Patch != nil && len(st.Patch.Slots) > 0 {
			continue // the copy is dispatched and under judgement
		}
		if st.Cooldown > 0 || st.Blocked {
			continue
		}

		if lr := e.state[k]; lr != nil {
			// The copy is already resident: re-engage with one dispatch
			// flip (rolled_back → switched, the transition resident
			// variants make legal).
			if err := e.engage(c, k, lr, agg, now); err != nil {
				continue
			}
			c.CountSwitch()
			deployed++
			ev := obs.Evidence{
				CoherentShare: agg.CoherentShare(), BusHitm: uint64(agg.BusHitm),
				Rewrite: st.Rewrite.String(), BaselineIPC: st.Baseline,
				GlobalBaselineIPC: st.GlobalBase,
			}
			layoutEvidence(&ev, lr)
			dl.Record(now, uint64(k.Head), c.WindowOrdinal(), obs.StateSwitched, "reengage", ev)
			if tr != nil {
				tr.Instant("patch", fmt.Sprintf("switched layout @%#x", k.Head),
					obs.TIDPatch, now, map[string]any{"region": k.Head})
			}
			continue
		}

		// First trigger on this region: build the layout from the
		// accumulated edge profile. Regions whose observed profile orders
		// the blocks exactly as compiled are skipped without a candidate
		// record — there is nothing to decide.
		region := c.Analyzer().RegionFor(k)
		spec := c.Analyzer().BuildLayout(region, e.edges)
		if len(spec.Blocks) < 2 || spec.Identity() {
			continue
		}
		if !spec.PlacesBefore(k.Head, k.BranchPC) {
			// The reordered latch edge would turn forward and the copy's
			// loop key would vanish from the profiler — unjudgeable.
			continue
		}
		ev := obs.Evidence{
			CoherentShare: agg.CoherentShare(), BusHitm: uint64(agg.BusHitm),
			Rewrite: cobra.RewriteLayout.String(),
			Blocks:  len(spec.Blocks), HotBlocks: spec.Hot, HotCoverage: spec.Coverage,
		}
		reason := "trigger"
		if dl.State(uint64(k.Head)) == obs.StateRolledBack {
			reason = "escalate"
		}
		dl.Record(now, uint64(k.Head), c.WindowOrdinal(), obs.StateCandidate, reason, ev)
		if tr != nil {
			tr.Instant("patch", fmt.Sprintf("candidate layout @%#x", k.Head),
				obs.TIDPatch, now, map[string]any{
					"region": k.Head, "blocks": len(spec.Blocks), "hot": spec.Hot,
				})
		}
		vs, err := c.Patcher().DeployLayout(region, spec)
		if err != nil {
			continue // candidate recorded, deploy-time check failed
		}
		lr := &layoutRegion{vs: vs, spec: spec}
		e.state[k] = lr
		if err := e.engage(c, k, lr, agg, now); err != nil {
			continue
		}
		deployed++
		c.CountDeploy(st.Patch, cobra.RewriteLayout)
		ev.Variant = "layout"
		ev.Variants = 1
		ev.BaselineIPC = st.Baseline
		ev.GlobalBaselineIPC = st.GlobalBase
		dl.Record(now, uint64(k.Head), c.WindowOrdinal(), obs.StateDeployed, "deploy", ev)
		if tr != nil {
			tr.Instant("patch", fmt.Sprintf("deployed layout @%#x", k.Head),
				obs.TIDPatch, now, map[string]any{
					"region": k.Head, "blocks": len(spec.Blocks),
					"hot": spec.Hot, "coverage": spec.Coverage,
					"baseline_ipc": st.Baseline,
				})
		}
	}
}

package strategy

import (
	"fmt"

	"repro/internal/cobra"
	"repro/internal/obs"
)

// maxDeploysPerPass bounds how many regions any engine touches per
// optimizer pass, so a regressing rewrite is caught and abandoned before
// it is compounded across the whole program (same staging rule as the
// built-in prefetch engine).
const maxDeploysPerPass = 2

// mvRegion is the multiversion engine's private state for one region:
// the resident variant table plus which variants this phase already
// rejected.
type mvRegion struct {
	vs *cobra.VariantSet
	// tried marks variants the current engagement already judged as
	// regressing; reset when the region rolls back to the original so a
	// later phase can re-try the full table.
	tried []bool
}

// multiVersion keeps every applicable rewrite of a hot region resident
// in the code cache and adapts to phase changes by switching the
// region's dispatch branch between variants. A switch is one journaled
// one-word patch (ia64.Image.SyncDecodeStats replays exactly one slot),
// against a full rollback + redeploy cycle for the destructive engines.
type multiVersion struct {
	cfg   cobra.Config
	state map[cobra.LoopKey]*mvRegion
}

func newMultiVersion(cfg cobra.Config) *multiVersion {
	return &multiVersion{cfg: cfg, state: map[cobra.LoopKey]*mvRegion{}}
}

func (e *multiVersion) Name() string { return "multiversion" }

// variantName renders the dispatch target for decision evidence.
func variantName(vs *cobra.VariantSet) string {
	v := vs.ActiveVariant()
	if v == nil {
		return "original"
	}
	return v.Rewrite.String()
}

// nextUntried returns the first variant index this engagement has not
// rejected yet, or -1.
func (m *mvRegion) nextUntried() int {
	for i := range m.vs.Variants {
		if !m.tried[i] {
			return i
		}
	}
	return -1
}

// engage dispatches variant idx and re-arms the judgement clock.
func (e *multiVersion) engage(c *cobra.Control, k cobra.LoopKey, m *mvRegion, idx int, win cobra.Window, now int64) error {
	if err := c.Patcher().Switch(m.vs, idx); err != nil {
		return err
	}
	st := c.Region(k)
	st.Patch = m.vs.ActivePatch()
	st.Rewrite = m.vs.Variants[idx].Rewrite
	c.ArmJudgement(st, win, now)
	return nil
}

func (e *multiVersion) Judge(c *cobra.Control, win cobra.Window, now int64) {
	tr := c.Observer().Trace()
	dl := c.Observer().Decisions()
	for _, k := range c.PatchedKeys() {
		m := e.state[k]
		if m == nil {
			continue // not ours (defensive: engines don't share runtimes)
		}
		st := c.Region(k)
		if !c.ObserveWindow(st, win) {
			continue
		}
		regressed := c.Regressed(st)
		ev := c.JudgeEvidence(st)
		ev.Variant = variantName(m.vs)
		ev.Variants = len(m.vs.Variants)
		c.ResetJudgement(st)
		if !regressed {
			reason := "within_tolerance"
			if ev.PatchedIPC >= ev.BaselineIPC {
				reason = "improved"
			}
			if tr != nil {
				tr.Instant("patch", fmt.Sprintf("kept %s @%#x", ev.Variant, k.Head),
					obs.TIDPatch, now, map[string]any{
						"region": k.Head, "baseline_ipc": ev.BaselineIPC,
						"patched_ipc": ev.PatchedIPC,
					})
			}
			dl.Record(now, uint64(k.Head), c.WindowOrdinal(), obs.StateKept, reason, ev)
			continue
		}

		// The dispatched variant regressed this phase. Flip to the next
		// resident variant if one is left — no rollback, no redeploy —
		// otherwise restore the original code and cool down.
		m.tried[m.vs.Active()] = true
		if tr != nil {
			tr.Span("patch", fmt.Sprintf("active %s @%#x", ev.Rewrite, k.Head),
				obs.TIDPatch, st.DeployedAt, now, map[string]any{"region": k.Head})
		}
		if next := m.nextUntried(); next >= 0 {
			if err := e.engage(c, k, m, next, win, now); err == nil {
				c.CountSwitch()
				ev.Variant = m.vs.Variants[next].Rewrite.String()
				dl.Record(now, uint64(k.Head), c.WindowOrdinal(), obs.StateSwitched, "variant_regressed", ev)
				if tr != nil {
					tr.Instant("patch", fmt.Sprintf("switched %s @%#x", ev.Variant, k.Head),
						obs.TIDPatch, now, map[string]any{
							"region": k.Head, "variant": ev.Variant,
							"baseline_ipc": ev.BaselineIPC, "patched_ipc": ev.PatchedIPC,
						})
				}
				continue
			}
		}
		// Table exhausted: back to the original code.
		if err := c.Patcher().Switch(m.vs, -1); err == nil {
			c.CountRollback()
		}
		st.Patch = nil
		ev.Variant = "original"
		ev.CooldownUntil = c.ArmCooldown(st, now)
		for i := range m.tried {
			m.tried[i] = false // a later phase may like a variant again
		}
		dl.Record(now, uint64(k.Head), c.WindowOrdinal(), obs.StateRolledBack, "variants_exhausted", ev)
		if tr != nil {
			tr.Instant("patch", fmt.Sprintf("rolled back @%#x", k.Head),
				obs.TIDPatch, now, map[string]any{
					"region": k.Head, "baseline_ipc": ev.BaselineIPC,
					"patched_ipc": ev.PatchedIPC,
				})
		}
	}
}

func (e *multiVersion) Propose(c *cobra.Control, agg cobra.Window, now int64) {
	regionLoads := c.CandidateLoads()
	if len(regionLoads) == 0 || c.AnyUnjudged() {
		return
	}
	tr := c.Observer().Trace()
	dl := c.Observer().Decisions()
	deployed := 0

	keys := make([]cobra.LoopKey, 0, len(regionLoads))
	for k := range regionLoads {
		keys = append(keys, k)
	}
	cobra.SortLoopKeys(keys)

	for _, k := range keys {
		if deployed >= maxDeploysPerPass {
			break
		}
		if c.Patcher().InCodeCache(k.Head) || c.Patcher().InCodeCache(k.BranchPC) {
			continue // never re-optimize our own traces
		}
		if !c.Analyzer().ValidLoop(k) {
			continue
		}
		st := c.Region(k)
		if st.Patch != nil && len(st.Patch.Slots) > 0 {
			continue // a variant is dispatched and under judgement
		}
		if st.Cooldown > 0 || st.Blocked {
			continue
		}

		if m := e.state[k]; m != nil {
			// The table is already resident: re-engage the first variant
			// with a single dispatch-branch flip (rolled_back → switched
			// is the transition resident variants exist to make legal).
			if err := e.engage(c, k, m, 0, agg, now); err != nil {
				continue
			}
			c.CountSwitch()
			deployed++
			ev := obs.Evidence{
				CoherentShare: agg.CoherentShare(), BusHitm: uint64(agg.BusHitm),
				Rewrite: st.Rewrite.String(), Variant: variantName(m.vs),
				Variants: len(m.vs.Variants), BaselineIPC: st.Baseline,
				GlobalBaselineIPC: st.GlobalBase,
			}
			dl.Record(now, uint64(k.Head), c.WindowOrdinal(), obs.StateSwitched, "reengage", ev)
			if tr != nil {
				tr.Instant("patch", fmt.Sprintf("switched %s @%#x", ev.Variant, k.Head),
					obs.TIDPatch, now, map[string]any{"region": k.Head, "variant": ev.Variant})
			}
			continue
		}

		// First trigger on this region: build the variant table from every
		// rewrite the §4 association filters accept, deploy all of them
		// resident, and dispatch the first.
		region := c.Analyzer().RegionFor(k)
		var specs []cobra.VariantSpec
		for _, rw := range []cobra.Rewrite{cobra.RewriteNop, cobra.RewriteExcl, cobra.RewriteBias} {
			if slots := c.SelectPrefetches(region, regionLoads[k], rw); len(slots) > 0 {
				specs = append(specs, cobra.VariantSpec{Rewrite: rw, Slots: slots})
			}
		}
		if len(specs) == 0 {
			continue
		}
		ev := obs.Evidence{
			CoherentShare: agg.CoherentShare(), BusHitm: uint64(agg.BusHitm),
			Rewrite: specs[0].Rewrite.String(), Variants: len(specs),
		}
		reason := "trigger"
		if dl.State(uint64(k.Head)) == obs.StateRolledBack {
			reason = "escalate"
		}
		dl.Record(now, uint64(k.Head), c.WindowOrdinal(), obs.StateCandidate, reason, ev)
		if tr != nil {
			tr.Instant("patch", fmt.Sprintf("candidate %s @%#x", ev.Rewrite, k.Head),
				obs.TIDPatch, now, map[string]any{
					"region": k.Head, "coherent_share": agg.CoherentShare(),
				})
		}
		vs, err := c.Patcher().DeployVariants(region, specs)
		if err != nil {
			continue // candidate recorded, deploy-time check failed
		}
		m := &mvRegion{vs: vs, tried: make([]bool, len(vs.Variants))}
		e.state[k] = m
		if err := e.engage(c, k, m, 0, agg, now); err != nil {
			continue
		}
		deployed++
		c.CountDeploy(st.Patch, st.Rewrite)
		c.CountTraces(len(vs.Variants) - 1) // CountDeploy charged the first
		ev.Variant = variantName(vs)
		ev.BaselineIPC = st.Baseline
		ev.GlobalBaselineIPC = st.GlobalBase
		dl.Record(now, uint64(k.Head), c.WindowOrdinal(), obs.StateDeployed, "deploy", ev)
		if tr != nil {
			tr.Instant("patch", fmt.Sprintf("deployed %s @%#x", ev.Variant, k.Head),
				obs.TIDPatch, now, map[string]any{
					"region": k.Head, "variants": len(vs.Variants),
					"rewritten": st.Patch.RewrittenPrefetches, "baseline_ipc": st.Baseline,
				})
		}
	}
}

package strategy

import (
	"strings"
	"testing"

	"repro/internal/cobra"
	"repro/internal/obs"
	"repro/internal/workload"
)

// phasedParams is the scaled-down re-adaptation workload: phase 1
// hammers a cache-resident window (noprefetch wins), phase 2 streams the
// full arrays (prefetch removal regresses). Phase 2 is long enough for
// two full judgement rounds, so the multiversion engine can reject the
// nop variant, switch to excl, and judge that too.
var phasedParams = workload.PhasedDaxpyParams{
	Elems:       1 << 16,
	WindowElems: 8192,
	Phase1Reps:  40,
	Phase2Reps:  12,
}

// runPhased executes the phased workload under the named engine with
// decisions, self-check and metrics attached.
func runPhased(t *testing.T, engine string) (*obs.Observer, workload.Measurement, *cobra.Runtime) {
	t.Helper()
	bc := workload.SMPConfig(4)
	cfg := cobra.DefaultConfig(cobra.StrategyAdaptive)
	cfg.Engine = engine
	cfg.SelfCheck = true
	bc.Cobra = &cfg
	o := obs.New(obs.Config{Trace: true, Metrics: true, Decisions: true})
	bc.Obs = o
	inst, err := workload.Build(workload.PhasedDaxpy(phasedParams), bc)
	if err != nil {
		t.Fatal(err)
	}
	m, err := inst.Measure()
	if err != nil {
		t.Fatal(err)
	}
	if v := inst.Cobra.SelfCheckViolations(); len(v) != 0 {
		t.Fatalf("self-check violations under %s: %v", engine, v)
	}
	if v := o.Decisions().Violations(); len(v) != 0 {
		t.Fatalf("lifecycle violations under %s: %v", engine, v)
	}
	return o, m, inst.Cobra
}

func TestRegistryNames(t *testing.T) {
	names := Names()
	for _, want := range []string{"causal", "layout", "multiversion", "prefetch"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("registry missing %q: %v", want, names)
		}
	}
	if _, err := cobra.NewEngine("bogus", cobra.DefaultConfig(cobra.StrategyAdaptive)); err == nil {
		t.Error("unknown engine name must fail")
	}
	eng, err := cobra.NewEngine("", cobra.DefaultConfig(cobra.StrategyAdaptive))
	if err != nil || eng.Name() != "prefetch" {
		t.Errorf("empty name resolved to %v, %v; want the prefetch default", eng, err)
	}
}

// TestMultiVersionSwitchesOnPhaseChange is the tentpole acceptance run:
// on the phased workload the multiversion engine must deploy a resident
// variant table and flip the dispatch branch at least once (nop rejected
// by phase 2 → switch to the resident excl variant, no redeploy).
func TestMultiVersionSwitchesOnPhaseChange(t *testing.T) {
	o, m, _ := runPhased(t, "multiversion")
	if m.Cobra.PatchesApplied == 0 {
		t.Fatal("multiversion never deployed")
	}
	if m.Cobra.VariantSwitches == 0 {
		t.Fatal("multiversion never switched a resident variant")
	}
	var sawDeploy, sawSwitch bool
	var variants int
	for _, d := range o.Decisions().Decisions() {
		switch d.To {
		case obs.StateDeployed:
			sawDeploy = true
			variants = d.Evidence.Variants
		case obs.StateSwitched:
			sawSwitch = true
			if d.From != obs.StateDeployed && d.From != obs.StateKept &&
				d.From != obs.StateSwitched && d.From != obs.StateRolledBack {
				t.Errorf("switched from unexpected state %q", d.From)
			}
			if d.Evidence.Variant == "" || d.Evidence.Variants < 2 {
				t.Errorf("switch without variant evidence: %+v", d.Evidence)
			}
		}
	}
	if !sawDeploy || !sawSwitch {
		t.Fatalf("decision log incomplete: deploy=%v switch=%v", sawDeploy, sawSwitch)
	}
	if variants < 2 {
		t.Fatalf("deployed %d resident variants, want >= 2", variants)
	}
	// The stats counter and the audit trail must agree on switch count.
	switches := int64(0)
	for _, d := range o.Decisions().Decisions() {
		if d.To == obs.StateSwitched {
			switches++
		}
	}
	if switches != m.Cobra.VariantSwitches {
		t.Fatalf("decision log shows %d switches, stats %d", switches, m.Cobra.VariantSwitches)
	}
}

// TestCausalRecordsPredictedVsActual: the causal engine must deploy with
// a what-if prediction attached and carry it through judgement so
// Explain() reports predicted-vs-actual IPC.
func TestCausalRecordsPredictedVsActual(t *testing.T) {
	o, m, rt := runPhased(t, "causal")
	if m.Cobra.PatchesApplied == 0 {
		t.Fatal("causal never deployed")
	}
	var sawPrediction, sawJudgedPrediction bool
	for _, d := range o.Decisions().Decisions() {
		if d.To == obs.StateDeployed && d.Evidence.PredictedIPC > 0 {
			sawPrediction = true
			if d.Evidence.PredictedDelta <= 0 {
				t.Errorf("deploy predicted a non-positive delta: %+v", d.Evidence)
			}
		}
		if (d.To == obs.StateKept || d.To == obs.StateRolledBack) &&
			d.Evidence.PredictedIPC > 0 && d.Evidence.PatchedIPC > 0 {
			sawJudgedPrediction = true
		}
	}
	if !sawPrediction {
		t.Fatal("no deploy decision carries a what-if prediction")
	}
	if !sawJudgedPrediction {
		t.Fatal("no judged decision pairs prediction with realized IPC")
	}
	report := rt.Explain()
	if !strings.Contains(report, "what-if: predicted=") {
		t.Fatalf("Explain does not show the prediction:\n%s", report)
	}
	if !strings.Contains(report, "actual=") {
		t.Fatalf("Explain does not show predicted-vs-actual:\n%s", report)
	}
}

// TestEnginesPreserveWorkloadResults: whatever the engine does to the
// code, the workload's own Verify must hold (Measure fails otherwise) —
// run the whole matrix.
func TestEnginesPreserveWorkloadResults(t *testing.T) {
	for _, engine := range []string{"prefetch", "multiversion", "causal", "layout"} {
		_, m, _ := runPhased(t, engine)
		if m.Cycles <= 0 {
			t.Errorf("%s: no cycles measured", engine)
		}
	}
}

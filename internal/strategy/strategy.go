// Package strategy holds COBRA's pluggable optimization strategies: the
// policy engines that decide what to patch, how to judge it, and when to
// give up, built on the cobra.Engine interface and registry.
//
// Importing this package registers the engines beyond the built-in
// default (which lives in internal/cobra itself):
//
//   - "prefetch" (built-in): the historical nop / lfetch.excl / ld8.bias
//     precedence with destructive patch/rollback re-adaptation.
//   - "multiversion": profile-guided multi-version rewriting (Meng et
//     al.) — every applicable rewrite of a hot region is deployed into
//     the code cache at once and kept resident; phase changes flip the
//     region's dispatch branch between variants (a one-word patch, one
//     journal record) instead of churning rollback + redeploy.
//   - "causal": Coz-style causal what-if ranking (Curtsinger & Berger) —
//     before committing a deploy, each candidate's predicted
//     whole-program IPC is computed by virtually removing the share of
//     the region's observed stall cycles the rewrite is modeled to save,
//     candidates are ranked by predicted delta, and the decision log
//     records prediction vs realized outcome.
//   - "layout": BOLT-style basic-block layout (Panchenko et al.) — the
//     BTB taken-edge profile accumulated across optimizer windows drives
//     greedy extended-trace selection over a hot region's basic blocks;
//     the hot-path-first reordered copy is emitted into the code cache as
//     a resident variant and dispatched, judged and rolled back through
//     the same one-word entry patch multi-version dispatch uses.
package strategy

import "repro/internal/cobra"

// Strategy is the engine contract (propose → judge → commit/abandon over
// RegionState evidence). It aliases cobra.Engine so engines defined here
// plug into the runtime's registry without an import cycle.
type Strategy = cobra.Engine

// Names returns every registered strategy engine name, sorted.
func Names() []string { return cobra.EngineNames() }

func init() {
	cobra.RegisterEngine("multiversion", func(cfg cobra.Config) cobra.Engine {
		return newMultiVersion(cfg)
	})
	cobra.RegisterEngine("causal", func(cfg cobra.Config) cobra.Engine {
		return newCausal(cfg)
	})
	cobra.RegisterEngine("layout", func(cfg cobra.Config) cobra.Engine {
		return newLayout(cfg)
	})
}

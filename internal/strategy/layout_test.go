package strategy

import (
	"testing"

	"repro/internal/cobra"
	"repro/internal/ia64"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/openmp"
)

// buildBranchyKernel assembles the smallest workload whose optimal block
// placement differs from address order: a per-thread countdown loop with
// a data-dependent skip taken 7 of 8 iterations, plus a false-sharing
// store (all four tids hit one cache line) so the coherent-pressure
// trigger fires. Binder convention: r2 = shared line base, r4 = tid*8.
//
//	entry:  add  r21 = r2 + r4          (pre block)
//	        movi r20 = reps
//	        movi r19 = 7
//	head:   st8  [r21] = r20            ; false sharing -> coherent events
//	        ld8  r22 = [r21]
//	        and  r18 = r20 & r19
//	        cmp  p4,p5 = r18 != 0
//	   (p4) br.cond hot                 ; hot path skips cold
//	cold:   addi r23 += 1               ; 1 of 8 iterations
//	hot:    addi r20 -= 1
//	        cmp  p6,p7 = r20 > 0
//	   (p6) br.cond head                ; latch
//	        halt
func buildBranchyKernel(img *ia64.Image, reps int64) (ia64.Func, error) {
	a := ia64.NewAsm(img, "branchy")
	a.Emit(ia64.Instr{Op: ia64.OpAdd, R1: 21, R2: 2, R3: 4})
	a.Emit(ia64.Instr{Op: ia64.OpMovI, R1: 20, Imm: reps})
	a.Emit(ia64.Instr{Op: ia64.OpMovI, R1: 19, Imm: 7})
	a.Label("head")
	a.Emit(ia64.Instr{Op: ia64.OpSt, R2: 21, R3: 20})
	a.Emit(ia64.Instr{Op: ia64.OpLd, R1: 22, R2: 21})
	a.Emit(ia64.Instr{Op: ia64.OpAnd, R1: 18, R2: 20, R3: 19})
	a.Emit(ia64.Instr{Op: ia64.OpCmpI, P1: 4, P2: 5, R2: 18, Rel: ia64.CmpNE})
	a.Br(ia64.BrCond, 4, "hot")
	a.Emit(ia64.Instr{Op: ia64.OpAddI, R1: 23, R2: 23, Imm: 1})
	a.Label("hot")
	a.Emit(ia64.Instr{Op: ia64.OpAddI, R1: 20, R2: 20, Imm: -1})
	a.Emit(ia64.Instr{Op: ia64.OpCmpI, P1: 6, P2: 7, R2: 20, Rel: ia64.CmpGT})
	a.Br(ia64.BrCond, 6, "head")
	a.Emit(ia64.Instr{Op: ia64.OpHalt})
	if _, err := a.Close(); err != nil {
		return ia64.Func{}, err
	}
	fn, _ := img.LookupFunc("branchy")
	return fn, nil
}

// layoutSmokeConfig floors the control thresholds (the verify fault
// harness's settings) so the adaptive trigger fires within a short run,
// with the trace cache on (layout needs somewhere to emit) and a raised
// patch journal bound (the hardening tunable, exercised end to end).
func layoutSmokeConfig() cobra.Config {
	cfg := cobra.DefaultConfig(cobra.StrategyAdaptive)
	cfg.Engine = "layout"
	cfg.UseTraceCache = true
	cfg.PatchJournalBound = 4096
	cfg.OptimizeInterval = 1_000
	cfg.MinCoherentEvents = 1
	cfg.CoherentShareThreshold = 0.01
	cfg.CoherentLatency = 100
	cfg.MinLoopSamples = 1
	cfg.MinDelinquentSamples = 1
	cfg.EvaluateWindows = 2
	cfg.Sampling.CyclePeriod = 400
	cfg.Sampling.DEARMinLatency = 50
	cfg.Sampling.DEAREvery = 1
	cfg.SelfCheck = true
	cfg.Obs = obs.New(obs.Config{Decisions: true})
	return cfg
}

// launchBranchy builds the full stack (machine, openmp, cobra with the
// layout engine) and launches the kernel `launches` times — dispatch into
// a deployed copy happens at the region entry, so the reordered code only
// runs when the kernel is re-entered, exactly like a workload calling its
// parallel region once per repetition.
func launchBranchy(t *testing.T, reps int64, launches int) (cobra.Config, *cobra.Runtime, *machine.Machine, uint64) {
	t.Helper()
	const threads = 4
	img := ia64.NewImage()
	fn, err := buildBranchyKernel(img, reps)
	if err != nil {
		t.Fatal(err)
	}
	m, err := machine.New(machine.DefaultConfig(threads), img)
	if err != nil {
		t.Fatal(err)
	}
	base, err := m.Memory().Alloc("shared.line", 128, 128)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := openmp.NewRuntime(m, threads)
	if err != nil {
		t.Fatal(err)
	}
	cfg := layoutSmokeConfig()
	cb := cobra.New(m, cfg)
	rt.OnFork = func(tid, cpu int) { cb.MonitorThread(tid, cpu) }
	for i := 0; i < launches; i++ {
		err := rt.ParallelFor(fn, int64(threads), func(tid int, rf *ia64.RegFile) {
			rf.SetGR(2, int64(base))
			rf.SetGR(4, int64(tid*8))
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	return cfg, cb, m, base
}

// TestLayoutDeploysOnBranchyKernel is the layout engine's smoke run: the
// full runtime (monitoring threads, USB drain, trigger, engine) on the
// branchy kernel must deploy at least one reordered copy with block
// evidence attached, keep the decision lifecycle legal, pass self-check,
// and preserve the kernel's architectural result.
func TestLayoutDeploysOnBranchyKernel(t *testing.T) {
	cfg, cb, m, base := launchBranchy(t, 400, 60)

	if got := cb.Stats().PatchesApplied; got == 0 {
		t.Fatal("layout engine never deployed on the branchy kernel")
	}
	if v := cb.SelfCheckViolations(); len(v) != 0 {
		t.Fatalf("self-check violations: %v", v)
	}
	dl := cfg.Obs.Decisions()
	if v := dl.Violations(); len(v) != 0 {
		t.Fatalf("lifecycle violations: %v", v)
	}
	var sawDeploy bool
	for _, d := range dl.Decisions() {
		if d.To != obs.StateDeployed {
			continue
		}
		sawDeploy = true
		if d.Evidence.Variant != "layout" {
			t.Errorf("deploy evidence variant = %q, want layout", d.Evidence.Variant)
		}
		if d.Evidence.Blocks < 3 {
			t.Errorf("deploy evidence blocks = %d, want >= 3 (pre, loop, cold split)", d.Evidence.Blocks)
		}
		if d.Evidence.HotBlocks < 1 || d.Evidence.HotBlocks > d.Evidence.Blocks {
			t.Errorf("deploy evidence hot blocks = %d of %d", d.Evidence.HotBlocks, d.Evidence.Blocks)
		}
	}
	if !sawDeploy {
		t.Fatal("no deployed decision in the audit log")
	}

	// The reordered copy must not change what the kernel computes: the
	// last store in each thread's slot happens at r20 == 1.
	for tid := 0; tid < 4; tid++ {
		if got := m.Memory().ReadI64(base + uint64(tid*8)); got != 1 {
			t.Fatalf("tid %d slot = %d, want 1 (layout changed kernel semantics)", tid, got)
		}
	}
}

// TestLayoutJudgesAndKeepsDispatchStable drives the resident-copy
// lifecycle across many kernel launches: the deployed copy must actually
// be judged (the relocated loop key observed through the BTB), and
// however many judgement rounds and dispatch flips the run produced, the
// code cache must hold exactly one layout copy — re-engagement is a
// dispatch switch, never a redeploy.
func TestLayoutJudgesAndKeepsDispatchStable(t *testing.T) {
	cfg, cb, m, _ := launchBranchy(t, 400, 120)
	img := m.Image()

	layouts := 0
	for _, f := range img.Funcs() {
		if len(f.Name) >= 12 && f.Name[:12] == "cobra.layout" {
			layouts++
		}
	}
	if cb.Stats().PatchesApplied > 0 && layouts != 1 {
		t.Fatalf("%d layout copies in the code cache, want 1 resident copy", layouts)
	}
	// Judgement must have concluded at least once (kept or rolled back).
	var judged bool
	for _, d := range cfg.Obs.Decisions().Decisions() {
		if d.To == obs.StateKept || d.To == obs.StateRolledBack {
			judged = true
		}
	}
	if cb.Stats().PatchesApplied > 0 && !judged {
		t.Fatal("deployed layout was never judged")
	}
	if v := cfg.Obs.Decisions().Violations(); len(v) != 0 {
		t.Fatalf("lifecycle violations: %v", v)
	}
}

package strategy

import (
	"fmt"
	"sort"

	"repro/internal/cobra"
	"repro/internal/obs"
)

// prediction is the outcome of one virtual-speedup experiment, kept so
// every later judgement of the region can report predicted vs actual.
type prediction struct {
	ipc   float64 // predicted whole-program IPC with the patch in place
	delta float64 // predicted improvement over the baseline IPC
}

// causal ranks candidate rewrites by a Coz-style what-if experiment run
// inside the judging window: virtually speed up the region by the stall
// share the rewrite is modeled to remove, compute the whole-program IPC
// that would result, and deploy best-predicted-first. The prediction is
// recorded with the deploy decision and carried through every judgement
// so Explain() shows predicted-vs-actual.
type causal struct {
	cfg   cobra.Config
	preds map[cobra.LoopKey]prediction
}

func newCausal(cfg cobra.Config) *causal {
	return &causal{cfg: cfg, preds: map[cobra.LoopKey]prediction{}}
}

func (e *causal) Name() string { return "causal" }

// effect models the fraction of the region's coherent-stall cycles a
// rewrite removes. Removing a prefetch (nop) eliminates the coherent
// misses it caused outright; the exclusive-hint rewrites still perform
// the access but avoid the later upgrade/invalidation round-trip, about
// half the coherent cost on the simulated protocol. Scaled by the
// aggregate coherent share so a rewrite is never credited with stalls
// that are plain capacity misses.
func effect(rw cobra.Rewrite, coherentShare float64) float64 {
	switch rw {
	case cobra.RewriteNop:
		return coherentShare
	case cobra.RewriteExcl, cobra.RewriteBias:
		return 0.5 * coherentShare
	}
	return 0
}

// whatIf runs the virtual-speedup experiment for one region/rewrite:
// predicted IPC = Instr / (Cycles - saved), where saved is the modeled
// share of the region's observed stall cycles. Deterministic — pure
// arithmetic over the trigger-horizon aggregate and DEAR evidence.
func (e *causal) whatIf(c *cobra.Control, k cobra.LoopKey, loads []cobra.Delinquent, rw cobra.Rewrite, agg cobra.Window) prediction {
	if agg.Cycles == 0 {
		return prediction{}
	}
	// Observed stall evidence: DEAR-attributed latency of the region's
	// delinquent loads. Without DEAR attribution (prefetch/store-induced
	// sharing), fall back to charging the horizon's BUS_HITM events at
	// the coherent-miss latency, scaled by the loop's activity share.
	var stall float64
	for _, d := range loads {
		stall += float64(d.Count * d.AvgLatency())
	}
	if stall == 0 && agg.Samples > 0 {
		share := float64(c.Profiler().LoopActivity(k)) / float64(agg.Samples)
		stall = float64(agg.BusHitm) * float64(e.cfg.CoherentLatency) * share
	}
	saved := stall * effect(rw, agg.CoherentShare())
	if max := float64(agg.Cycles) / 2; saved > max {
		saved = max // a rewrite never halves total runtime; clamp the model
	}
	if saved <= 0 {
		return prediction{}
	}
	base := agg.IPC()
	pred := float64(agg.Instr) / (float64(agg.Cycles) - saved)
	return prediction{ipc: pred, delta: pred - base}
}

// candidate is one (region, rewrite) pair with its prediction.
type candidate struct {
	key   cobra.LoopKey
	rw    cobra.Rewrite
	slots []int
	pred  prediction
}

func (e *causal) Judge(c *cobra.Control, win cobra.Window, now int64) {
	tr := c.Observer().Trace()
	dl := c.Observer().Decisions()
	for _, k := range c.PatchedKeys() {
		st := c.Region(k)
		if !c.ObserveWindow(st, win) {
			continue
		}
		regressed := c.Regressed(st)
		ev := c.JudgeEvidence(st)
		if p, ok := e.preds[k]; ok {
			ev.PredictedIPC = p.ipc
			ev.PredictedDelta = p.delta
		}
		c.ResetJudgement(st)
		if regressed {
			// The experiment's prediction did not survive contact with the
			// machine: roll back and cool down. No blacklist — a later
			// phase re-runs the what-if ranking from fresh evidence.
			if err := c.Patcher().Rollback(st.Patch); err == nil {
				c.CountRollback()
			}
			st.Patch = nil
			ev.CooldownUntil = c.ArmCooldown(st, now)
			if tr != nil {
				tr.Span("patch", fmt.Sprintf("active %s @%#x", ev.Rewrite, k.Head),
					obs.TIDPatch, st.DeployedAt, now, map[string]any{"region": k.Head})
				tr.Instant("patch", fmt.Sprintf("rolled back @%#x", k.Head),
					obs.TIDPatch, now, map[string]any{
						"region": k.Head, "predicted_ipc": ev.PredictedIPC,
						"patched_ipc": ev.PatchedIPC,
					})
			}
			dl.Record(now, uint64(k.Head), c.WindowOrdinal(), obs.StateRolledBack, "regressed", ev)
		} else {
			reason := "within_tolerance"
			if ev.PatchedIPC >= ev.BaselineIPC {
				reason = "improved"
			}
			if tr != nil {
				tr.Instant("patch", fmt.Sprintf("kept @%#x", k.Head),
					obs.TIDPatch, now, map[string]any{
						"region": k.Head, "predicted_ipc": ev.PredictedIPC,
						"patched_ipc": ev.PatchedIPC,
					})
			}
			dl.Record(now, uint64(k.Head), c.WindowOrdinal(), obs.StateKept, reason, ev)
		}
	}
}

func (e *causal) Propose(c *cobra.Control, agg cobra.Window, now int64) {
	regionLoads := c.CandidateLoads()
	if len(regionLoads) == 0 || c.AnyUnjudged() {
		return
	}
	tr := c.Observer().Trace()
	dl := c.Observer().Decisions()

	keys := make([]cobra.LoopKey, 0, len(regionLoads))
	for k := range regionLoads {
		keys = append(keys, k)
	}
	cobra.SortLoopKeys(keys)

	// Generate every deployable (region, rewrite) candidate and run its
	// what-if experiment.
	var cands []candidate
	for _, k := range keys {
		if c.Patcher().InCodeCache(k.Head) || c.Patcher().InCodeCache(k.BranchPC) {
			continue
		}
		if !c.Analyzer().ValidLoop(k) {
			continue
		}
		st := c.Region(k)
		if st.Patch != nil && len(st.Patch.Slots) > 0 {
			continue
		}
		if st.Cooldown > 0 || st.Blocked {
			continue
		}
		region := c.Analyzer().RegionFor(k)
		for _, rw := range []cobra.Rewrite{cobra.RewriteNop, cobra.RewriteExcl, cobra.RewriteBias} {
			slots := c.SelectPrefetches(region, regionLoads[k], rw)
			if len(slots) == 0 {
				continue
			}
			p := e.whatIf(c, k, regionLoads[k], rw, agg)
			if p.delta <= 0 {
				continue // the model predicts no whole-program win
			}
			cands = append(cands, candidate{key: k, rw: rw, slots: slots, pred: p})
		}
	}
	if len(cands) == 0 {
		return
	}
	// Rank by predicted whole-program IPC delta, best first; ties resolve
	// by region address then rewrite precedence so runs are deterministic.
	sort.SliceStable(cands, func(i, j int) bool {
		if cands[i].pred.delta != cands[j].pred.delta {
			return cands[i].pred.delta > cands[j].pred.delta
		}
		if cands[i].key.Head != cands[j].key.Head {
			return cands[i].key.Head < cands[j].key.Head
		}
		return cands[i].rw < cands[j].rw
	})

	deployed := 0
	taken := map[cobra.LoopKey]bool{}
	for _, cand := range cands {
		if deployed >= maxDeploysPerPass {
			break
		}
		if taken[cand.key] {
			continue // one rewrite per region per pass: the best-ranked
		}
		st := c.Region(cand.key)
		ev := obs.Evidence{
			CoherentShare:  agg.CoherentShare(),
			BusHitm:        uint64(agg.BusHitm),
			Rewrite:        cand.rw.String(),
			PredictedIPC:   cand.pred.ipc,
			PredictedDelta: cand.pred.delta,
		}
		reason := "what_if"
		if dl.State(uint64(cand.key.Head)) == obs.StateRolledBack {
			reason = "escalate"
		}
		dl.Record(now, uint64(cand.key.Head), c.WindowOrdinal(), obs.StateCandidate, reason, ev)
		if tr != nil {
			tr.Instant("patch", fmt.Sprintf("candidate %s @%#x", ev.Rewrite, cand.key.Head),
				obs.TIDPatch, now, map[string]any{
					"region": cand.key.Head, "predicted_ipc": cand.pred.ipc,
					"predicted_delta": cand.pred.delta,
				})
		}
		taken[cand.key] = true
		region := c.Analyzer().RegionFor(cand.key)
		patch, err := c.Patcher().Deploy(region, cand.slots, cand.rw)
		if err != nil {
			continue
		}
		st.Patch = patch
		st.Rewrite = cand.rw
		c.ArmJudgement(st, agg, now)
		e.preds[cand.key] = cand.pred
		deployed++
		c.CountDeploy(patch, cand.rw)
		ev.BaselineIPC = st.Baseline
		ev.GlobalBaselineIPC = st.GlobalBase
		dl.Record(now, uint64(cand.key.Head), c.WindowOrdinal(), obs.StateDeployed, "deploy", ev)
		if tr != nil {
			tr.Instant("patch", fmt.Sprintf("deployed %s @%#x", ev.Rewrite, cand.key.Head),
				obs.TIDPatch, now, map[string]any{
					"region": cand.key.Head, "slots": len(patch.Slots),
					"predicted_ipc": cand.pred.ipc, "baseline_ipc": st.Baseline,
				})
		}
	}
}

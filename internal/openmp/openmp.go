// Package openmp is a fork-join parallel runtime for the simulated
// machine, mirroring the icc OpenMP runtime the paper's benchmarks use:
// a parallel-for distributes the iteration space across worker threads by
// static partitioning on the loop index — "regardless of data locations",
// which is exactly the property that creates the coherent memory accesses
// COBRA optimizes — with each thread bound to a fixed CPU and a join
// barrier at region end.
package openmp

import (
	"fmt"

	"repro/internal/ia64"
	"repro/internal/machine"
	"repro/internal/obs"
)

// Binder prepares a worker thread's registers for an outlined region:
// array bases are baked into the code by the compiler, so binders set only
// scalar arguments. tid is the OpenMP thread number.
type Binder func(tid int, rf *ia64.RegFile)

// Convention: outlined parallel regions receive their iteration range in
// r8 (lo, inclusive) and r9 (hi, exclusive), and the thread id in r10.
const (
	RegLo  = 8
	RegHi  = 9
	RegTID = 10
)

// RegionStat records one executed region for reporting.
type RegionStat struct {
	Name     string
	Parallel bool
	Threads  int
	Cycles   int64 // barrier-to-barrier duration
	Retired  int64
}

// Runtime is the OpenMP runtime bound to one machine.
type Runtime struct {
	m        *machine.Machine
	nthreads int
	stats    []RegionStat

	// OnFork, if set, is called once per worker thread at its first use —
	// the hook COBRA uses to create a monitoring thread per working
	// thread (paper §3: "A monitoring thread is created when a working
	// thread is forked").
	OnFork func(tid, cpu int)

	// Obs, if set, records one cycle-domain span per executed region on
	// the regions track (nil disables).
	Obs *obs.Observer

	forked []bool
}

// NewRuntime creates a runtime running nthreads worker threads, thread i
// bound to CPU i.
func NewRuntime(m *machine.Machine, nthreads int) (*Runtime, error) {
	if nthreads <= 0 || nthreads > m.NumCPUs() {
		return nil, fmt.Errorf("openmp: %d threads on %d CPUs", nthreads, m.NumCPUs())
	}
	return &Runtime{m: m, nthreads: nthreads, forked: make([]bool, nthreads)}, nil
}

// NumThreads returns the worker thread count.
func (rt *Runtime) NumThreads() int { return rt.nthreads }

// Machine returns the underlying machine.
func (rt *Runtime) Machine() *machine.Machine { return rt.m }

// Stats returns one RegionStat per executed region, in execution order
// (an event log, not an aggregate counter snapshot — repeated regions
// appear once per execution).
func (rt *Runtime) Stats() []RegionStat { return rt.stats }

// TotalCycles sums all region durations (the program's wall-clock time).
func (rt *Runtime) TotalCycles() int64 {
	var t int64
	for _, s := range rt.stats {
		t += s.Cycles
	}
	return t
}

func (rt *Runtime) fork(tid int) {
	if !rt.forked[tid] {
		rt.forked[tid] = true
		if rt.OnFork != nil {
			rt.OnFork(tid, tid)
		}
	}
}

// ParallelFor runs fn over the iteration space [0, trip) on all worker
// threads with a static schedule: thread t receives the contiguous chunk
// [t*ceil(trip/n), min(trip, (t+1)*ceil(trip/n))). It blocks until the
// join barrier completes.
func (rt *Runtime) ParallelFor(fn ia64.Func, trip int64, bind Binder) error {
	start := rt.m.GlobalCycle()
	rt.m.SyncClocks(start)

	chunk := (trip + int64(rt.nthreads) - 1) / int64(rt.nthreads)
	var active []int
	for t := 0; t < rt.nthreads; t++ {
		lo := int64(t) * chunk
		hi := lo + chunk
		if hi > trip {
			hi = trip
		}
		if lo >= hi {
			continue
		}
		rt.fork(t)
		t := t
		rt.m.StartThread(t, fn.Entry, t, func(rf *ia64.RegFile) {
			rf.SetGR(RegLo, lo)
			rf.SetGR(RegHi, hi)
			rf.SetGR(RegTID, int64(t))
			if bind != nil {
				bind(t, rf)
			}
		})
		active = append(active, t)
	}
	retired, err := rt.m.RunAll(active)
	if err != nil {
		return fmt.Errorf("openmp: region %s: %w", fn.Name, err)
	}
	end := rt.m.GlobalCycle()
	rt.m.SyncClocks(end) // join barrier
	rt.stats = append(rt.stats, RegionStat{
		Name: fn.Name, Parallel: true, Threads: len(active),
		Cycles: end - start, Retired: retired,
	})
	if t := rt.Obs.Trace(); t != nil {
		t.Span("region", fn.Name, obs.TIDRegions, start, end, map[string]any{
			"threads": len(active), "retired": retired, "parallel": true,
		})
	}
	return nil
}

// Serial runs fn to completion on CPU 0 (the master thread).
func (rt *Runtime) Serial(fn ia64.Func, bind Binder) error {
	start := rt.m.GlobalCycle()
	rt.m.SyncClocks(start)
	rt.fork(0)
	rt.m.StartThread(0, fn.Entry, 0, func(rf *ia64.RegFile) {
		rf.SetGR(RegTID, 0)
		if bind != nil {
			bind(0, rf)
		}
	})
	retired, err := rt.m.Run(0)
	if err != nil {
		return fmt.Errorf("openmp: serial %s: %w", fn.Name, err)
	}
	end := rt.m.GlobalCycle()
	rt.m.SyncClocks(end)
	rt.stats = append(rt.stats, RegionStat{
		Name: fn.Name, Parallel: false, Threads: 1,
		Cycles: end - start, Retired: retired,
	})
	if t := rt.Obs.Trace(); t != nil {
		t.Span("region", fn.Name, obs.TIDRegions, start, end, map[string]any{
			"threads": 1, "retired": retired, "parallel": false,
		})
	}
	return nil
}

// ResetStats clears the region log (warm-up boundaries).
func (rt *Runtime) ResetStats() { rt.stats = nil }

// Package openmp is a fork-join parallel runtime for the simulated
// machine, mirroring the icc OpenMP runtime the paper's benchmarks use:
// a parallel-for distributes the iteration space across worker threads by
// static partitioning on the loop index — "regardless of data locations",
// which is exactly the property that creates the coherent memory accesses
// COBRA optimizes — with each thread bound to a fixed CPU and a join
// barrier at region end.
package openmp

import (
	"fmt"

	"repro/internal/ia64"
	"repro/internal/machine"
	"repro/internal/obs"
)

// Binder prepares a worker thread's registers for an outlined region:
// array bases are baked into the code by the compiler, so binders set only
// scalar arguments. tid is the OpenMP thread number.
type Binder func(tid int, rf *ia64.RegFile)

// Convention: outlined parallel regions receive their iteration range in
// r8 (lo, inclusive) and r9 (hi, exclusive), and the thread id in r10.
const (
	RegLo  = 8
	RegHi  = 9
	RegTID = 10
)

// RegionStat records one executed region for reporting.
type RegionStat struct {
	Name     string
	Parallel bool
	Threads  int
	Cycles   int64 // barrier-to-barrier duration
	Retired  int64
}

// Runtime is the OpenMP runtime bound to one machine.
type Runtime struct {
	m        *machine.Machine
	nthreads int
	stats    []RegionStat

	// OnFork, if set, is called once per worker thread at its first use —
	// the hook COBRA uses to create a monitoring thread per working
	// thread (paper §3: "A monitoring thread is created when a working
	// thread is forked").
	OnFork func(tid, cpu int)

	// Obs, if set, records one cycle-domain span per executed region on
	// the regions track (nil disables).
	Obs *obs.Observer

	forked []bool

	// affinity maps thread id -> CPU id (nil = identity, the historical
	// binding). Set through SetAffinity before the first region runs.
	affinity []int
}

// NewRuntime creates a runtime running nthreads worker threads, thread i
// bound to CPU i (override with SetAffinity).
func NewRuntime(m *machine.Machine, nthreads int) (*Runtime, error) {
	if nthreads <= 0 || nthreads > m.NumCPUs() {
		return nil, fmt.Errorf("openmp: %d threads on %d CPUs", nthreads, m.NumCPUs())
	}
	return &Runtime{m: m, nthreads: nthreads, forked: make([]bool, nthreads)}, nil
}

// SetAffinity pins thread i to CPU aff[i] instead of the identity
// binding — the declarative thread-placement knob of the scenario matrix
// (e.g. packing all threads onto one NUMA node, or spreading them across
// nodes of an asymmetric shape). Must be a permutation-free injective
// map: one CPU per thread, no CPU shared. Call before any region runs;
// rebinding mid-program would tear a thread away from its warmed caches
// without modelling the move (use machine.Config.Migrations for that).
func (rt *Runtime) SetAffinity(aff []int) error {
	if len(aff) != rt.nthreads {
		return fmt.Errorf("openmp: affinity names %d CPUs for %d threads", len(aff), rt.nthreads)
	}
	seen := make(map[int]bool, len(aff))
	for t, cpu := range aff {
		if cpu < 0 || cpu >= rt.m.NumCPUs() {
			return fmt.Errorf("openmp: affinity[%d] = CPU %d of %d", t, cpu, rt.m.NumCPUs())
		}
		if seen[cpu] {
			return fmt.Errorf("openmp: affinity binds CPU %d twice", cpu)
		}
		seen[cpu] = true
	}
	rt.affinity = append([]int(nil), aff...)
	return nil
}

// cpuOf returns the CPU thread tid is bound to.
func (rt *Runtime) cpuOf(tid int) int {
	if rt.affinity == nil {
		return tid
	}
	return rt.affinity[tid]
}

// NumThreads returns the worker thread count.
func (rt *Runtime) NumThreads() int { return rt.nthreads }

// Machine returns the underlying machine.
func (rt *Runtime) Machine() *machine.Machine { return rt.m }

// Stats returns one RegionStat per executed region, in execution order
// (an event log, not an aggregate counter snapshot — repeated regions
// appear once per execution).
func (rt *Runtime) Stats() []RegionStat { return rt.stats }

// TotalCycles sums all region durations (the program's wall-clock time).
func (rt *Runtime) TotalCycles() int64 {
	var t int64
	for _, s := range rt.stats {
		t += s.Cycles
	}
	return t
}

func (rt *Runtime) fork(tid int) {
	if !rt.forked[tid] {
		rt.forked[tid] = true
		if rt.OnFork != nil {
			rt.OnFork(tid, rt.cpuOf(tid))
		}
	}
}

// ParallelFor runs fn over the iteration space [0, trip) on all worker
// threads with a static schedule: thread t receives the contiguous chunk
// [t*ceil(trip/n), min(trip, (t+1)*ceil(trip/n))). It blocks until the
// join barrier completes.
func (rt *Runtime) ParallelFor(fn ia64.Func, trip int64, bind Binder) error {
	start := rt.m.GlobalCycle()
	rt.m.SyncClocks(start)

	chunk := (trip + int64(rt.nthreads) - 1) / int64(rt.nthreads)
	var active []int
	for t := 0; t < rt.nthreads; t++ {
		lo := int64(t) * chunk
		hi := lo + chunk
		if hi > trip {
			hi = trip
		}
		if lo >= hi {
			continue
		}
		rt.fork(t)
		t := t
		cpu := rt.cpuOf(t)
		rt.m.StartThread(cpu, fn.Entry, t, func(rf *ia64.RegFile) {
			rf.SetGR(RegLo, lo)
			rf.SetGR(RegHi, hi)
			rf.SetGR(RegTID, int64(t))
			if bind != nil {
				bind(t, rf)
			}
		})
		active = append(active, cpu)
	}
	retired, err := rt.m.RunAll(active)
	if err != nil {
		return fmt.Errorf("openmp: region %s: %w", fn.Name, err)
	}
	end := rt.m.GlobalCycle()
	rt.m.SyncClocks(end) // join barrier
	rt.stats = append(rt.stats, RegionStat{
		Name: fn.Name, Parallel: true, Threads: len(active),
		Cycles: end - start, Retired: retired,
	})
	if t := rt.Obs.Trace(); t != nil {
		t.Span("region", fn.Name, obs.TIDRegions, start, end, map[string]any{
			"threads": len(active), "retired": retired, "parallel": true,
		})
	}
	return nil
}

// Serial runs fn to completion on CPU 0 (the master thread).
func (rt *Runtime) Serial(fn ia64.Func, bind Binder) error {
	start := rt.m.GlobalCycle()
	rt.m.SyncClocks(start)
	rt.fork(0)
	master := rt.cpuOf(0)
	rt.m.StartThread(master, fn.Entry, 0, func(rf *ia64.RegFile) {
		rf.SetGR(RegTID, 0)
		if bind != nil {
			bind(0, rf)
		}
	})
	retired, err := rt.m.Run(master)
	if err != nil {
		return fmt.Errorf("openmp: serial %s: %w", fn.Name, err)
	}
	end := rt.m.GlobalCycle()
	rt.m.SyncClocks(end)
	rt.stats = append(rt.stats, RegionStat{
		Name: fn.Name, Parallel: false, Threads: 1,
		Cycles: end - start, Retired: retired,
	})
	if t := rt.Obs.Trace(); t != nil {
		t.Span("region", fn.Name, obs.TIDRegions, start, end, map[string]any{
			"threads": 1, "retired": retired, "parallel": false,
		})
	}
	return nil
}

// ResetStats clears the region log (warm-up boundaries).
func (rt *Runtime) ResetStats() { rt.stats = nil }

package openmp

import (
	"testing"

	"repro/internal/ia64"
	"repro/internal/machine"
)

// scaleRegion builds an outlined region: for i in [r8,r9): a[i] *= 2.
// The array base is passed in r11 by the binder.
func scaleRegion(img *ia64.Image) ia64.Func {
	a := ia64.NewAsm(img, "scale")
	a.Emit(ia64.Instr{Op: ia64.OpSub, R1: 12, R2: RegHi, R3: RegLo}) // trip
	a.Emit(ia64.Instr{Op: ia64.OpCmpI, Rel: ia64.CmpLE, P1: 2, P2: 0, R2: 12, Imm: 0})
	a.Br(ia64.BrCond, 2, "done")
	a.Emit(ia64.Instr{Op: ia64.OpAddI, R1: 12, R2: 12, Imm: -1})
	a.Emit(ia64.Instr{Op: ia64.OpMovToLC, R2: 12})
	// cursor r13 = base + 8*lo
	a.Emit(ia64.Instr{Op: ia64.OpShlI, R1: 13, R2: RegLo, Imm: 3})
	a.Emit(ia64.Instr{Op: ia64.OpAdd, R1: 13, R2: 13, R3: 11})
	a.Label("top")
	a.Emit(ia64.Instr{Op: ia64.OpLdf, R1: 7, R2: 13})
	a.Emit(ia64.Instr{Op: ia64.OpFAdd, R1: 7, R2: 7, R3: 7})
	a.Emit(ia64.Instr{Op: ia64.OpStf, R2: 13, R3: 7})
	a.Emit(ia64.Instr{Op: ia64.OpAddI, R1: 13, R2: 13, Imm: 8})
	a.Br(ia64.BrCloop, 0, "top")
	a.Label("done")
	a.Emit(ia64.Instr{Op: ia64.OpHalt})
	if _, err := a.Close(); err != nil {
		panic(err)
	}
	fn, _ := img.LookupFunc("scale")
	return fn
}

func setup(t *testing.T, ncpu int) (*machine.Machine, *ia64.Image) {
	t.Helper()
	img := ia64.NewImage()
	cfg := machine.DefaultConfig(ncpu)
	cfg.Mem.MemBytes = 32 << 20
	m, err := machine.New(cfg, img)
	if err != nil {
		t.Fatal(err)
	}
	return m, img
}

func TestParallelForCoversIterationSpace(t *testing.T) {
	m, img := setup(t, 4)
	fn := scaleRegion(img)
	rt, err := NewRuntime(m, 4)
	if err != nil {
		t.Fatal(err)
	}
	const n = 1003 // deliberately not divisible by 4
	base := m.Memory().MustAlloc("a", 8*n, 128)
	for i := 0; i < n; i++ {
		m.Memory().WriteF64(base+uint64(8*i), float64(i))
	}
	err = rt.ParallelFor(fn, n, func(tid int, rf *ia64.RegFile) {
		rf.SetGR(11, int64(base))
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if got := m.Memory().ReadF64(base + uint64(8*i)); got != 2*float64(i) {
			t.Fatalf("a[%d] = %v, want %v", i, got, 2*float64(i))
		}
	}
}

func TestStaticPartitioningBoundsThreads(t *testing.T) {
	m, img := setup(t, 4)
	fn := scaleRegion(img)
	rt, _ := NewRuntime(m, 4)
	var bounds [][2]int64
	const n = 100
	base := m.Memory().MustAlloc("a", 8*n, 128)
	err := rt.ParallelFor(fn, n, func(tid int, rf *ia64.RegFile) {
		rf.SetGR(11, int64(base))
		bounds = append(bounds, [2]int64{rf.GR(RegLo), rf.GR(RegHi)})
	})
	if err != nil {
		t.Fatal(err)
	}
	want := [][2]int64{{0, 25}, {25, 50}, {50, 75}, {75, 100}}
	if len(bounds) != 4 {
		t.Fatalf("bounds = %v", bounds)
	}
	for i := range want {
		if bounds[i] != want[i] {
			t.Fatalf("thread %d bounds = %v, want %v", i, bounds[i], want[i])
		}
	}
}

func TestFewerIterationsThanThreads(t *testing.T) {
	m, img := setup(t, 4)
	fn := scaleRegion(img)
	rt, _ := NewRuntime(m, 4)
	base := m.Memory().MustAlloc("a", 8*2, 128)
	m.Memory().WriteF64(base, 5)
	m.Memory().WriteF64(base+8, 6)
	if err := rt.ParallelFor(fn, 2, func(tid int, rf *ia64.RegFile) {
		rf.SetGR(11, int64(base))
	}); err != nil {
		t.Fatal(err)
	}
	if m.Memory().ReadF64(base) != 10 || m.Memory().ReadF64(base+8) != 12 {
		t.Fatal("short iteration space mishandled")
	}
	st := rt.Stats()
	if len(st) != 1 || st[0].Threads >= 4 {
		t.Fatalf("stats = %+v: idle threads counted as active", st)
	}
}

func TestJoinBarrierSynchronizesClocks(t *testing.T) {
	m, img := setup(t, 4)
	fn := scaleRegion(img)
	rt, _ := NewRuntime(m, 4)
	const n = 4096
	base := m.Memory().MustAlloc("a", 8*n, 128)
	if err := rt.ParallelFor(fn, n, func(tid int, rf *ia64.RegFile) {
		rf.SetGR(11, int64(base))
	}); err != nil {
		t.Fatal(err)
	}
	g := m.GlobalCycle()
	for c := 0; c < 4; c++ {
		if m.CPU(c).Cycle != g {
			t.Fatalf("CPU %d at %d, barrier at %d", c, m.CPU(c).Cycle, g)
		}
	}
}

func TestOnForkFiresOncePerThread(t *testing.T) {
	m, img := setup(t, 2)
	fn := scaleRegion(img)
	rt, _ := NewRuntime(m, 2)
	forks := map[int]int{}
	rt.OnFork = func(tid, cpu int) { forks[tid]++ }
	base := m.Memory().MustAlloc("a", 8*64, 128)
	for rep := 0; rep < 3; rep++ {
		if err := rt.ParallelFor(fn, 64, func(tid int, rf *ia64.RegFile) {
			rf.SetGR(11, int64(base))
		}); err != nil {
			t.Fatal(err)
		}
	}
	if len(forks) != 2 || forks[0] != 1 || forks[1] != 1 {
		t.Fatalf("forks = %v, want one per thread", forks)
	}
}

func TestSerialRunsOnMaster(t *testing.T) {
	m, img := setup(t, 4)
	fn := scaleRegion(img)
	rt, _ := NewRuntime(m, 4)
	base := m.Memory().MustAlloc("a", 8*8, 128)
	m.Memory().WriteF64(base, 1)
	err := rt.Serial(fn, func(tid int, rf *ia64.RegFile) {
		rf.SetGR(RegLo, 0)
		rf.SetGR(RegHi, 8)
		rf.SetGR(11, int64(base))
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Memory().ReadF64(base) != 2 {
		t.Fatal("serial region did not run")
	}
	st := rt.Stats()
	if len(st) != 1 || st[0].Parallel {
		t.Fatalf("stats = %+v", st)
	}
}

func TestTooManyThreadsRejected(t *testing.T) {
	m, _ := setup(t, 2)
	if _, err := NewRuntime(m, 3); err == nil {
		t.Fatal("accepted more threads than CPUs")
	}
}

func TestTotalCyclesAccumulates(t *testing.T) {
	m, img := setup(t, 2)
	fn := scaleRegion(img)
	rt, _ := NewRuntime(m, 2)
	base := m.Memory().MustAlloc("a", 8*256, 128)
	for i := 0; i < 2; i++ {
		if err := rt.ParallelFor(fn, 256, func(tid int, rf *ia64.RegFile) {
			rf.SetGR(11, int64(base))
		}); err != nil {
			t.Fatal(err)
		}
	}
	if rt.TotalCycles() <= 0 {
		t.Fatal("no cycles recorded")
	}
	rt.ResetStats()
	if len(rt.Stats()) != 0 || rt.TotalCycles() != 0 {
		t.Fatal("ResetStats incomplete")
	}
}

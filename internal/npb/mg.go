package npb

import (
	"fmt"
	"math"

	"repro/internal/ia64"
	ir "repro/internal/loopir"
	"repro/internal/workload"
)

// MG is the multigrid kernel: a simplified V-cycle on a 3D grid — residual
// (7-point stencil), restriction to a coarser grid, smoothing on both
// levels, and prolongation back. Threads split the outermost grid
// dimension, so every thread's boundary planes are written by it and read
// by its neighbours: true sharing that prefetch overshoot amplifies.
func MG(p Params) *workload.Workload {
	ng, iters := int64(32), p.iters(16)
	if p.Class == ClassT {
		ng, iters = 8, p.iters(2)
	}
	nc := ng / 2
	nc2 := nc / 2
	fine := ng * ng * ng
	coarse := nc * nc * nc
	coarse2 := nc2 * nc2 * nc2

	// idx(i+1, j+1, k) with i, j the interior loop variables.
	fidx := func(iv, jv, kv string) ir.IntExpr {
		return ir.IAdd(
			ir.IMul(ir.IAdd(ir.IMul(ir.IAdd(ir.V(iv), ir.I(1)), ir.I(ng)), ir.IAdd(ir.V(jv), ir.I(1))), ir.I(ng)),
			ir.V(kv))
	}
	cidx := func(iv, jv, kv string) ir.IntExpr {
		return ir.IAdd(
			ir.IMul(ir.IAdd(ir.IMul(ir.IAdd(ir.V(iv), ir.I(1)), ir.I(nc)), ir.IAdd(ir.V(jv), ir.I(1))), ir.I(nc)),
			ir.V(kv))
	}
	c2idx := func(iv, jv, kv string) ir.IntExpr {
		return ir.IAdd(
			ir.IMul(ir.IAdd(ir.IMul(ir.IAdd(ir.V(iv), ir.I(1)), ir.I(nc2)), ir.IAdd(ir.V(jv), ir.I(1))), ir.I(nc2)),
			ir.V(kv))
	}

	// stencil7 builds center*c0 + (six neighbours)*c1 over array arr at
	// base index e with plane stride s.
	stencil7 := func(arr string, e ir.IntExpr, s int64, c0, c1 float64) ir.FloatExpr {
		sum := ir.FAdd(ir.At(arr, ir.ISub(e, ir.I(1))), ir.At(arr, ir.IAdd(e, ir.I(1))))
		sum2 := ir.FAdd(ir.At(arr, ir.ISub(e, ir.I(s))), ir.At(arr, ir.IAdd(e, ir.I(s))))
		sum3 := ir.FAdd(ir.At(arr, ir.ISub(e, ir.I(s*s))), ir.At(arr, ir.IAdd(e, ir.I(s*s))))
		return ir.FAdd(ir.FMul(ir.F(c0), ir.At(arr, e)),
			ir.FMul(ir.F(c1), ir.FAdd(sum, ir.FAdd(sum2, sum3))))
	}

	// sweep builds the canonical interior triple nest: parallel over i,
	// then j, with an innermost software-pipelinable k loop running one
	// statement.
	sweep := func(n int64, kBody func() []ir.Stmt) []ir.Stmt {
		return []ir.Stmt{
			ir.For{Var: "i", Lo: ir.V("lo"), Hi: ir.V("hi"), Body: []ir.Stmt{
				ir.For{Var: "j", Lo: ir.I(0), Hi: ir.I(n - 2), Body: []ir.Stmt{
					ir.For{Var: "k", Lo: ir.I(1), Hi: ir.I(n - 1), Body: kBody()},
				}},
			}},
		}
	}

	prog := &ir.Program{
		Name: "mg",
		Arrays: []ir.Array{
			{Name: "u", Kind: ir.F64, Elems: fine},
			{Name: "v", Kind: ir.F64, Elems: fine},
			{Name: "r", Kind: ir.F64, Elems: fine},
			{Name: "u2", Kind: ir.F64, Elems: coarse},
			{Name: "r2", Kind: ir.F64, Elems: coarse},
			{Name: "u3", Kind: ir.F64, Elems: coarse2},
			{Name: "r3", Kind: ir.F64, Elems: coarse2},
			{Name: "lev", Kind: ir.I64, Elems: 4},
		},
		Funcs: []*ir.Func{
			{
				// resid: r = v - A*u on the fine grid.
				Name:     "mg_resid",
				Parallel: true,
				Body: sweep(ng, func() []ir.Stmt {
					return []ir.Stmt{
						ir.FStore{Array: "r", Index: fidx("i", "j", "k"),
							Val: ir.FSub(ir.At("v", fidx("i", "j", "k")),
								stencil7("u", fidx("i", "j", "k"), ng, -8.0/3.0, 1.0/6.0))},
					}
				}),
			},
			{
				// psinv: u += smoother(r) on the fine grid.
				Name:     "mg_psinv",
				Parallel: true,
				Body: sweep(ng, func() []ir.Stmt {
					return []ir.Stmt{
						ir.FStore{Array: "u", Index: fidx("i", "j", "k"),
							Val: ir.FAdd(ir.At("u", fidx("i", "j", "k")),
								stencil7("r", fidx("i", "j", "k"), ng, -3.0/8.0, 1.0/32.0))},
					}
				}),
			},
			{
				// rprj3: restrict the fine residual onto the coarse grid
				// (stride-2 gather of the fine grid).
				Name:     "mg_rprj3",
				Parallel: true,
				Body: []ir.Stmt{
					ir.For{Var: "i", Lo: ir.V("lo"), Hi: ir.V("hi"), Body: []ir.Stmt{
						ir.For{Var: "j", Lo: ir.I(0), Hi: ir.I(nc - 2), Body: []ir.Stmt{
							ir.For{Var: "k", Lo: ir.I(1), Hi: ir.I(nc - 1), Body: []ir.Stmt{
								ir.FStore{Array: "r2", Index: cidx("i", "j", "k"),
									Val: ir.FAdd(
										ir.FMul(ir.F(0.5), ir.At("r", fineOfCoarse(ng, "i", "j", "k", 0))),
										ir.FMul(ir.F(0.25),
											ir.FAdd(ir.At("r", fineOfCoarse(ng, "i", "j", "k", -1)),
												ir.At("r", fineOfCoarse(ng, "i", "j", "k", 1)))))},
							}},
						}},
					}},
				},
			},
			{
				// coarse smoother: u2 += smoother(r2).
				Name:     "mg_psinv2",
				Parallel: true,
				Body: sweep(nc, func() []ir.Stmt {
					return []ir.Stmt{
						ir.FStore{Array: "u2", Index: cidx("i", "j", "k"),
							Val: ir.FAdd(ir.At("u2", cidx("i", "j", "k")),
								stencil7("r2", cidx("i", "j", "k"), nc, -3.0/8.0, 1.0/32.0))},
					}
				}),
			},
			{
				// interp: prolongate the coarse correction onto the fine
				// grid (each coarse point feeds two fine points).
				Name:     "mg_interp",
				Parallel: true,
				Body: []ir.Stmt{
					ir.For{Var: "i", Lo: ir.V("lo"), Hi: ir.V("hi"), Body: []ir.Stmt{
						ir.For{Var: "j", Lo: ir.I(0), Hi: ir.I(nc - 2), Body: []ir.Stmt{
							ir.For{Var: "k", Lo: ir.I(1), Hi: ir.I(nc - 1), Hint: ir.HintCounted, Body: []ir.Stmt{
								ir.FStore{Array: "u", Index: fineOfCoarse(ng, "i", "j", "k", 0),
									Val: ir.FAdd(ir.At("u", fineOfCoarse(ng, "i", "j", "k", 0)),
										ir.At("u2", cidx("i", "j", "k")))},
								ir.FStore{Array: "u", Index: fineOfCoarse(ng, "i", "j", "k", 1),
									Val: ir.FAdd(ir.At("u", fineOfCoarse(ng, "i", "j", "k", 1)),
										ir.FMul(ir.F(0.5), ir.At("u2", cidx("i", "j", "k"))))},
							}},
						}},
					}},
				},
			},
			{
				// second restriction: coarse residual onto the coarsest
				// grid (stride-2 gather of the coarse grid).
				Name:     "mg_rprj3_2",
				Parallel: true,
				Body: []ir.Stmt{
					ir.For{Var: "i", Lo: ir.V("lo"), Hi: ir.V("hi"), Body: []ir.Stmt{
						ir.For{Var: "j", Lo: ir.I(0), Hi: ir.I(nc2 - 2), Body: []ir.Stmt{
							ir.For{Var: "k", Lo: ir.I(1), Hi: ir.I(nc2 - 1), Body: []ir.Stmt{
								ir.FStore{Array: "r3", Index: c2idx("i", "j", "k"),
									Val: ir.FAdd(
										ir.FMul(ir.F(0.5), ir.At("r2", fineOfCoarse(nc, "i", "j", "k", 0))),
										ir.FMul(ir.F(0.25),
											ir.FAdd(ir.At("r2", fineOfCoarse(nc, "i", "j", "k", -1)),
												ir.At("r2", fineOfCoarse(nc, "i", "j", "k", 1)))))},
							}},
						}},
					}},
				},
			},
			{
				// coarsest smoother: u3 += smoother(r3).
				Name:     "mg_psinv3",
				Parallel: true,
				Body: sweep(nc2, func() []ir.Stmt {
					return []ir.Stmt{
						ir.FStore{Array: "u3", Index: c2idx("i", "j", "k"),
							Val: ir.FAdd(ir.At("u3", c2idx("i", "j", "k")),
								stencil7("r3", c2idx("i", "j", "k"), nc2, -3.0/8.0, 1.0/32.0))},
					}
				}),
			},
			{
				// second prolongation: coarsest correction onto the coarse
				// grid.
				Name:     "mg_interp2",
				Parallel: true,
				Body: []ir.Stmt{
					ir.For{Var: "i", Lo: ir.V("lo"), Hi: ir.V("hi"), Body: []ir.Stmt{
						ir.For{Var: "j", Lo: ir.I(0), Hi: ir.I(nc2 - 2), Body: []ir.Stmt{
							ir.For{Var: "k", Lo: ir.I(1), Hi: ir.I(nc2 - 1), Hint: ir.HintCounted, Body: []ir.Stmt{
								ir.FStore{Array: "u2", Index: fineOfCoarse(nc, "i", "j", "k", 0),
									Val: ir.FAdd(ir.At("u2", fineOfCoarse(nc, "i", "j", "k", 0)),
										ir.At("u3", c2idx("i", "j", "k")))},
								ir.FStore{Array: "u2", Index: fineOfCoarse(nc, "i", "j", "k", 1),
									Val: ir.FAdd(ir.At("u2", fineOfCoarse(nc, "i", "j", "k", 1)),
										ir.FMul(ir.F(0.5), ir.At("u3", c2idx("i", "j", "k"))))},
							}},
						}},
					}},
				},
			},
			{
				// mg_levels: compute the number of multigrid levels from
				// the grid size by repeated halving, as the real MG setup
				// does — a do-while that lowers to br.wtop.
				Name:      "mg_levels",
				IntParams: []string{"n"},
				Body: []ir.Stmt{
					ir.SetI{Name: "levels", Val: ir.I(0)},
					ir.While{
						Body: []ir.Stmt{
							ir.SetI{Name: "n", Val: ir.IShr(ir.V("n"), ir.I(1))},
							ir.SetI{Name: "levels", Val: ir.IAdd(ir.V("levels"), ir.I(1))},
						},
						Cond: ir.Cond{Rel: ir.GT, A: ir.V("n"), B: ir.I(2)},
					},
					ir.IStore{Array: "lev", Index: ir.I(0), Val: ir.V("levels")},
				},
			},
		},
	}

	return &workload.Workload{
		Name: "mg",
		Prog: prog,
		Setup: func(c *workload.Ctx) error {
			rng := newLCG(3200)
			for i := int64(0); i < fine; i++ {
				c.WriteF64("v", i, rng.f64()-0.5)
				c.WriteF64("u", i, 0)
				c.WriteF64("r", i, 0)
			}
			for i := int64(0); i < coarse; i++ {
				c.WriteF64("u2", i, 0)
				c.WriteF64("r2", i, 0)
			}
			for i := int64(0); i < coarse2; i++ {
				c.WriteF64("u3", i, 0)
				c.WriteF64("r3", i, 0)
			}
			return nil
		},
		Run: func(c *workload.Ctx) error {
			if err := c.Serial("mg_levels", func(tid int, rf *ia64.RegFile) {
				rf.SetGR(c.IntArg("mg_levels", "n"), ng)
			}); err != nil {
				return err
			}
			for it := 0; it < iters; it++ {
				for _, step := range []struct {
					fn   string
					trip int64
				}{
					{"mg_resid", ng - 2},
					{"mg_rprj3", nc - 2},
					{"mg_rprj3_2", nc2 - 2},
					{"mg_psinv3", nc2 - 2},
					{"mg_interp2", nc2 - 2},
					{"mg_psinv2", nc - 2},
					{"mg_interp", nc - 2},
					{"mg_psinv", ng - 2},
					{"mg_resid", ng - 2},
				} {
					if err := c.ParallelFor(step.fn, step.trip, nil); err != nil {
						return err
					}
				}
			}
			return nil
		},
		Verify: func(c *workload.Ctx) error {
			// The run ends with resid, so r = v - A*u must hold exactly at
			// sampled interior points.
			if got := c.ReadI64("lev", 0); got != hostLevels(ng) {
				return fmt.Errorf("mg: levels = %d, want %d", got, hostLevels(ng))
			}
			at := func(a string, i, j, k int64) float64 {
				return c.ReadF64(a, (i*ng+j)*ng+k)
			}
			for _, pt := range [][3]int64{{1, 1, 1}, {ng / 2, ng / 2, ng / 2}, {ng - 2, ng - 2, ng - 2}} {
				i, j, k := pt[0], pt[1], pt[2]
				want := at("v", i, j, k) - (-8.0/3.0*at("u", i, j, k) +
					1.0/6.0*(at("u", i, j, k-1)+at("u", i, j, k+1)+
						at("u", i, j-1, k)+at("u", i, j+1, k)+
						at("u", i-1, j, k)+at("u", i+1, j, k)))
				got := at("r", i, j, k)
				if math.Abs(got-want) > 1e-12*math.Max(1, math.Abs(want)) {
					return fmt.Errorf("mg: r(%d,%d,%d) = %v, want %v", i, j, k, got, want)
				}
			}
			return nil
		},
	}
}

// fineOfCoarse maps interior coarse point (i+1, j+1, k) to the fine index
// 2*(coarse coords) + off in the k dimension.
func fineOfCoarse(ng int64, iv, jv, kv string, off int64) ir.IntExpr {
	i2 := ir.IMul(ir.IAdd(ir.V(iv), ir.I(1)), ir.I(2))
	j2 := ir.IMul(ir.IAdd(ir.V(jv), ir.I(1)), ir.I(2))
	k2 := ir.IAdd(ir.IMul(ir.V(kv), ir.I(2)), ir.I(off))
	return ir.IAdd(ir.IMul(ir.IAdd(ir.IMul(i2, ir.I(ng)), j2), ir.I(ng)), k2)
}

// hostLevels mirrors mg_levels.
func hostLevels(n int64) int64 {
	levels := int64(0)
	for {
		n >>= 1
		levels++
		if n <= 2 {
			return levels
		}
	}
}

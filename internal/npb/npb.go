// Package npb implements the OpenMP NAS Parallel Benchmarks used in the
// paper's evaluation — the five kernels (FT, MG, CG, EP, IS) and the three
// simulated CFD applications (BT, SP, LU) — as loop-nest IR programs for
// the simulated machine.
//
// The implementations reproduce the computational core and, crucially for
// this paper, the memory access and data sharing structure of each
// benchmark: loop-level parallelism distributed by index range regardless
// of data location (the property that creates coherent memory accesses),
// software-pipelinable streaming loops that attract aggressive compiler
// prefetching, sparse gathers (CG), strided passes (FT), stencils with
// cross-thread boundary planes (MG, BT, SP, LU), histogram scatters (IS)
// and an embarrassingly parallel kernel with almost no memory traffic
// (EP). Problem sizes are scaled-down class S: the paper chose class S
// precisely because 60–70% of its memory accesses are coherent.
package npb

import (
	"fmt"

	"repro/internal/workload"
)

// Class selects a problem scale. ClassS approximates NPB class S scaled to
// simulator-friendly sizes; ClassT (tiny) is for unit tests.
type Class uint8

const (
	ClassT Class = iota // tiny: unit tests
	ClassS              // evaluation scale (the paper's class S regime)
)

func (c Class) String() string {
	if c == ClassT {
		return "T"
	}
	return "S"
}

// Params sizes one benchmark instance.
type Params struct {
	Class Class
	// Iterations overrides the benchmark's default outer iteration count
	// when > 0.
	Iterations int
}

// Benchmark names, in the paper's reporting order.
var Names = []string{"bt", "sp", "lu", "ft", "mg", "cg", "ep", "is"}

// ResultNames are the benchmarks reported in Figures 5-7 (the paper
// excludes EP and IS, which show no long-latency coherent misses).
var ResultNames = []string{"bt", "sp", "lu", "ft", "mg", "cg"}

// Build constructs the named benchmark.
func Build(name string, p Params) (*workload.Workload, error) {
	switch name {
	case "bt":
		return BT(p), nil
	case "sp":
		return SP(p), nil
	case "lu":
		return LU(p), nil
	case "ft":
		return FT(p), nil
	case "mg":
		return MG(p), nil
	case "cg":
		return CG(p), nil
	case "ep":
		return EP(p), nil
	case "is":
		return IS(p), nil
	}
	return nil, fmt.Errorf("npb: unknown benchmark %q", name)
}

// iters picks the iteration count.
func (p Params) iters(def int) int {
	if p.Iterations > 0 {
		return p.Iterations
	}
	return def
}

// lcg is the deterministic generator used for host-side initialization.
type lcg struct{ s uint64 }

func newLCG(seed uint64) *lcg { return &lcg{s: seed*2862933555777941757 + 3037000493} }

func (l *lcg) next() uint64 {
	l.s = l.s*6364136223846793005 + 1442695040888963407
	return l.s
}

// f64 returns a float in [0, 1).
func (l *lcg) f64() float64 {
	return float64(l.next()>>11) / float64(1<<53)
}

// intn returns an int64 in [0, n).
func (l *lcg) intn(n int64) int64 {
	return int64(l.next() % uint64(n))
}

package npb

import (
	"fmt"
	"math"

	"repro/internal/ia64"
	ir "repro/internal/loopir"
	"repro/internal/workload"
)

// CG is the conjugate-gradient kernel: a sparse matrix-vector product over
// a CSR matrix (an irregular gather through colidx), dot-product
// reductions, and AXPY vector updates. The direction vector p is rewritten
// every iteration and gathered by every thread, which makes CG the most
// coherent-miss-bound benchmark in the suite — it shows the paper's
// largest noprefetch gains (-39.5% L3 misses on the SMP).
func CG(p Params) *workload.Workload {
	n, deg, iters := int64(1400), int64(11), p.iters(40)
	if p.Class == ClassT {
		n, deg, iters = 64, 4, p.iters(2)
	}
	nnz := n * deg
	const maxThreads = 16

	prog := &ir.Program{
		Name: "cg",
		Arrays: []ir.Array{
			{Name: "a", Kind: ir.F64, Elems: nnz},
			{Name: "colidx", Kind: ir.I64, Elems: nnz},
			{Name: "rowstr", Kind: ir.I64, Elems: n + 1},
			{Name: "pvec", Kind: ir.F64, Elems: n},
			{Name: "q", Kind: ir.F64, Elems: n},
			{Name: "r", Kind: ir.F64, Elems: n},
			{Name: "z", Kind: ir.F64, Elems: n},
			{Name: "partial", Kind: ir.F64, Elems: maxThreads},
			{Name: "scalars", Kind: ir.F64, Elems: 8}, // rho, den, alpha, beta, rhoNew
		},
		Funcs: []*ir.Func{
			{
				// q = A*p: the sparse matvec. The inner gather loop cannot
				// be prefetched on p (indirect), but a and colidx stream.
				Name:     "cg_matvec",
				Parallel: true,
				Body: []ir.Stmt{
					ir.For{Var: "row", Lo: ir.V("lo"), Hi: ir.V("hi"), Body: []ir.Stmt{
						ir.SetF{Name: "sum", Val: ir.F(0)},
						ir.For{Var: "k",
							Lo: ir.IAt("rowstr", ir.V("row")),
							Hi: ir.IAt("rowstr", ir.IAdd(ir.V("row"), ir.I(1))),
							Body: []ir.Stmt{
								ir.SetF{Name: "sum", Val: ir.FAdd(ir.FV("sum"),
									ir.FMul(ir.At("a", ir.V("k")), ir.At("pvec", ir.IAt("colidx", ir.V("k")))))},
							}},
						ir.FStore{Array: "q", Index: ir.V("row"), Val: ir.FV("sum")},
					}},
				},
			},
			{
				// partial[tid] = p·q over the thread's chunk.
				Name:     "cg_dot_pq",
				Parallel: true,
				Body:     dotBody("pvec", "q"),
			},
			{
				// partial[tid] = r·r over the thread's chunk.
				Name:     "cg_dot_rr",
				Parallel: true,
				Body:     dotBody("r", "r"),
			},
			{
				// den = Σ partial; alpha = rho/den (master only).
				Name:      "cg_alpha",
				IntParams: []string{"nt"},
				Body: []ir.Stmt{
					ir.SetF{Name: "d", Val: ir.F(0)},
					ir.For{Var: "t", Lo: ir.I(0), Hi: ir.V("nt"), Hint: ir.HintCounted, Body: []ir.Stmt{
						ir.SetF{Name: "d", Val: ir.FAdd(ir.FV("d"), ir.At("partial", ir.V("t")))},
					}},
					ir.FStore{Array: "scalars", Index: ir.I(1), Val: ir.FV("d")},
					ir.FStore{Array: "scalars", Index: ir.I(2),
						Val: ir.FDiv(ir.At("scalars", ir.I(0)), ir.FV("d"))},
				},
			},
			{
				// rhoNew = Σ partial; beta = rhoNew/rho; rho = rhoNew.
				Name:      "cg_beta",
				IntParams: []string{"nt"},
				Body: []ir.Stmt{
					ir.SetF{Name: "d", Val: ir.F(0)},
					ir.For{Var: "t", Lo: ir.I(0), Hi: ir.V("nt"), Hint: ir.HintCounted, Body: []ir.Stmt{
						ir.SetF{Name: "d", Val: ir.FAdd(ir.FV("d"), ir.At("partial", ir.V("t")))},
					}},
					ir.FStore{Array: "scalars", Index: ir.I(4), Val: ir.FV("d")},
					ir.FStore{Array: "scalars", Index: ir.I(3),
						Val: ir.FDiv(ir.FV("d"), ir.At("scalars", ir.I(0)))},
					ir.FStore{Array: "scalars", Index: ir.I(0), Val: ir.FV("d")},
				},
			},
			{
				// z += alpha*p; r -= alpha*q.
				Name:     "cg_update_zr",
				Parallel: true,
				Body: []ir.Stmt{
					ir.For{Var: "i", Lo: ir.V("lo"), Hi: ir.V("hi"), Body: []ir.Stmt{
						ir.FStore{Array: "z", Index: ir.V("i"),
							Val: ir.FAdd(ir.At("z", ir.V("i")),
								ir.FMul(ir.At("scalars", ir.I(2)), ir.At("pvec", ir.V("i"))))},
					}},
					ir.For{Var: "i2", Lo: ir.V("lo"), Hi: ir.V("hi"), Body: []ir.Stmt{
						ir.FStore{Array: "r", Index: ir.V("i2"),
							Val: ir.FSub(ir.At("r", ir.V("i2")),
								ir.FMul(ir.At("scalars", ir.I(2)), ir.At("q", ir.V("i2"))))},
					}},
				},
			},
			{
				// p = r + beta*p: rewrites the globally gathered vector —
				// the write that invalidates every other CPU's cached p.
				Name:     "cg_update_p",
				Parallel: true,
				Body: []ir.Stmt{
					ir.For{Var: "i", Lo: ir.V("lo"), Hi: ir.V("hi"), Body: []ir.Stmt{
						ir.FStore{Array: "pvec", Index: ir.V("i"),
							Val: ir.FAdd(ir.At("r", ir.V("i")),
								ir.FMul(ir.At("scalars", ir.I(3)), ir.At("pvec", ir.V("i"))))},
					}},
				},
			},
		},
	}

	return &workload.Workload{
		Name: "cg",
		Prog: prog,
		Setup: func(c *workload.Ctx) error {
			rng := newLCG(1401)
			for i := int64(0); i <= n; i++ {
				c.WriteI64("rowstr", i, i*deg)
			}
			// Diagonally dominant sparse matrix (unit diagonal, small
			// random off-diagonals) so the iteration stays numerically
			// bounded: p·(Ap) > 0 for every nonzero p.
			for row := int64(0); row < n; row++ {
				c.WriteI64("colidx", row*deg, row)
				c.WriteF64("a", row*deg, 1.0)
				for d := int64(1); d < deg; d++ {
					c.WriteI64("colidx", row*deg+d, rng.intn(n))
					c.WriteF64("a", row*deg+d, (rng.f64()-0.5)*0.8/float64(deg))
				}
			}
			for i := int64(0); i < n; i++ {
				v := rng.f64()
				c.WriteF64("pvec", i, v)
				c.WriteF64("r", i, v)
				c.WriteF64("z", i, 0)
			}
			// rho = r·r, computed in the same order the device will use.
			rho := hostChunkedDot(c, n, "r", "r")
			c.WriteF64("scalars", 0, rho)
			return nil
		},
		Run: func(c *workload.Ctx) error {
			nt := int64(c.Threads)
			bindNT := func(tid int, rf *ia64.RegFile) {
				rf.SetGR(c.IntArg("cg_alpha", "nt"), nt)
			}
			bindNTBeta := func(tid int, rf *ia64.RegFile) {
				rf.SetGR(c.IntArg("cg_beta", "nt"), nt)
			}
			for it := 0; it < iters; it++ {
				if err := c.ParallelFor("cg_matvec", n, nil); err != nil {
					return err
				}
				if err := c.ParallelFor("cg_dot_pq", n, nil); err != nil {
					return err
				}
				if err := c.Serial("cg_alpha", bindNT); err != nil {
					return err
				}
				if err := c.ParallelFor("cg_update_zr", n, nil); err != nil {
					return err
				}
				if err := c.ParallelFor("cg_dot_rr", n, nil); err != nil {
					return err
				}
				if err := c.Serial("cg_beta", bindNTBeta); err != nil {
					return err
				}
				if err := c.ParallelFor("cg_update_p", n, nil); err != nil {
					return err
				}
			}
			return nil
		},
		Verify: func(c *workload.Ctx) error {
			// The device's final rho must match a host recomputation of
			// r·r in the same summation order, and stay finite.
			want := hostChunkedDot(c, n, "r", "r")
			got := c.ReadF64("scalars", 4)
			if math.IsNaN(got) || math.IsInf(got, 0) {
				return fmt.Errorf("cg: rho = %v", got)
			}
			if math.Abs(got-want) > 1e-9*math.Max(1, math.Abs(want)) {
				return fmt.Errorf("cg: device rho %v != host rho %v", got, want)
			}
			return nil
		},
	}
}

// dotBody builds a per-thread chunk dot product into partial[tid].
func dotBody(x, y string) []ir.Stmt {
	return []ir.Stmt{
		ir.SetF{Name: "acc", Val: ir.F(0)},
		ir.For{Var: "i", Lo: ir.V("lo"), Hi: ir.V("hi"), Body: []ir.Stmt{
			ir.SetF{Name: "acc", Val: ir.FAdd(ir.FV("acc"),
				ir.FMul(ir.At(x, ir.V("i")), ir.At(y, ir.V("i"))))},
		}},
		ir.FStore{Array: "partial", Index: ir.V("tid"), Val: ir.FV("acc")},
	}
}

// hostChunkedDot reproduces the device reduction order: per-thread chunk
// partials summed in thread order.
func hostChunkedDot(c *workload.Ctx, n int64, x, y string) float64 {
	nt := int64(c.Threads)
	chunk := (n + nt - 1) / nt
	total := 0.0
	for t := int64(0); t < nt; t++ {
		lo, hi := t*chunk, (t+1)*chunk
		if hi > n {
			hi = n
		}
		acc := 0.0
		for i := lo; i < hi; i++ {
			// The device's reduction uses a fused multiply-add.
			acc = math.FMA(c.ReadF64(x, i), c.ReadF64(y, i), acc)
		}
		total += acc
	}
	return total
}

package npb

import (
	"fmt"
	"math"

	"repro/internal/ia64"
	ir "repro/internal/loopir"
	"repro/internal/workload"
)

// FT is the 3D FFT kernel, structured the way parallel FFTs run on shared
// memory: a pointwise evolve by spectral factors, row-local butterfly
// passes (every thread owns whole rows, all threads busy at every span),
// and transposes between dimensions. The transpose is FT's coherence
// hotspot — every thread writes columns of data the other threads just
// produced — and its strided streams attract aggressive prefetching.
func FT(p Params) *workload.Workload {
	rows, cols, iters := int64(128), int64(128), p.iters(10)
	if p.Class == ClassT {
		rows, cols, iters = 16, 16, p.iters(2)
	}
	n := rows * cols
	const maxThreads = 16
	twid := cols

	prog := &ir.Program{
		Name: "ft",
		Arrays: []ir.Array{
			{Name: "re", Kind: ir.F64, Elems: n},
			{Name: "im", Kind: ir.F64, Elems: n},
			{Name: "re2", Kind: ir.F64, Elems: n},
			{Name: "im2", Kind: ir.F64, Elems: n},
			{Name: "wre", Kind: ir.F64, Elems: twid},
			{Name: "wim", Kind: ir.F64, Elems: twid},
			{Name: "partial", Kind: ir.F64, Elems: 2 * maxThreads},
			{Name: "sums", Kind: ir.F64, Elems: 4},
			{Name: "logs", Kind: ir.I64, Elems: 2},
		},
		Funcs: []*ir.Func{
			{
				// evolve: pointwise complex rotation by the twiddle table.
				Name:     "ft_evolve",
				Parallel: true,
				Body: []ir.Stmt{
					ir.For{Var: "i", Lo: ir.V("lo"), Hi: ir.V("hi"), Body: []ir.Stmt{
						ir.SetF{Name: "a", Val: ir.At("re", ir.V("i"))},
						ir.SetF{Name: "b", Val: ir.At("im", ir.V("i"))},
						ir.SetF{Name: "c", Val: ir.At("wre", ir.IAnd(ir.V("i"), ir.I(twid-1)))},
						ir.SetF{Name: "s", Val: ir.At("wim", ir.IAnd(ir.V("i"), ir.I(twid-1)))},
						ir.FStore{Array: "re", Index: ir.V("i"),
							Val: ir.FSub(ir.FMul(ir.FV("a"), ir.FV("c")), ir.FMul(ir.FV("b"), ir.FV("s")))},
						ir.FStore{Array: "im", Index: ir.V("i"),
							Val: ir.FAdd(ir.FMul(ir.FV("a"), ir.FV("s")), ir.FMul(ir.FV("b"), ir.FV("c")))},
					}},
				},
			},
			{
				// rowfft: one butterfly pass at the given span, every
				// thread sweeping its own rows. The host drives one call
				// per span; groups = cols/(2*span).
				Name:      "ft_rowfft",
				Parallel:  true,
				IntParams: []string{"span", "groups"},
				Body: []ir.Stmt{
					ir.For{Var: "r", Lo: ir.V("lo"), Hi: ir.V("hi"), Body: []ir.Stmt{
						ir.For{Var: "g", Lo: ir.I(0), Hi: ir.V("groups"), Body: []ir.Stmt{
							ir.For{Var: "t",
								Lo: ir.IAdd(ir.IMul(ir.V("r"), ir.I(cols)), ir.IMul(ir.V("g"), ir.IMul(ir.I(2), ir.V("span")))),
								Hi: ir.IAdd(ir.IAdd(ir.IMul(ir.V("r"), ir.I(cols)), ir.IMul(ir.V("g"), ir.IMul(ir.I(2), ir.V("span")))), ir.V("span")),
								Body: []ir.Stmt{
									ir.SetF{Name: "a", Val: ir.At("re", ir.V("t"))},
									ir.SetF{Name: "ai", Val: ir.At("im", ir.V("t"))},
									ir.SetF{Name: "b", Val: ir.At("re", ir.IAdd(ir.V("t"), ir.V("span")))},
									ir.SetF{Name: "bi", Val: ir.At("im", ir.IAdd(ir.V("t"), ir.V("span")))},
									ir.SetF{Name: "c", Val: ir.At("wre", ir.IAnd(ir.V("t"), ir.I(twid-1)))},
									ir.SetF{Name: "s", Val: ir.At("wim", ir.IAnd(ir.V("t"), ir.I(twid-1)))},
									ir.SetF{Name: "dr", Val: ir.FSub(ir.FV("a"), ir.FV("b"))},
									ir.SetF{Name: "di", Val: ir.FSub(ir.FV("ai"), ir.FV("bi"))},
									ir.FStore{Array: "re", Index: ir.V("t"), Val: ir.FAdd(ir.FV("a"), ir.FV("b"))},
									ir.FStore{Array: "im", Index: ir.V("t"), Val: ir.FAdd(ir.FV("ai"), ir.FV("bi"))},
									ir.FStore{Array: "re", Index: ir.IAdd(ir.V("t"), ir.V("span")),
										Val: ir.FSub(ir.FMul(ir.FV("dr"), ir.FV("c")), ir.FMul(ir.FV("di"), ir.FV("s")))},
									ir.FStore{Array: "im", Index: ir.IAdd(ir.V("t"), ir.V("span")),
										Val: ir.FAdd(ir.FMul(ir.FV("dr"), ir.FV("s")), ir.FMul(ir.FV("di"), ir.FV("c")))},
								}},
						}},
					}},
				},
			},
			{
				// transpose: re2/im2[c*rows+r] = re/im[r*cols+c]. The
				// strided write streams cross every other thread's freshly
				// written rows — FT's coherent-miss hotspot.
				Name:     "ft_transpose",
				Parallel: true,
				Body:     transposeBody(rows, cols, "re", "im", "re2", "im2"),
			},
			{
				// transpose back after the column pass.
				Name:     "ft_transpose_back",
				Parallel: true,
				Body:     transposeBody(cols, rows, "re2", "im2", "re", "im"),
			},
			{
				// scale: multiply by 1/n after the backward pass, as the
				// inverse transform normalizes (two-stage pipelined).
				Name:     "ft_scale",
				Parallel: true,
				Body: []ir.Stmt{
					ir.For{Var: "i", Lo: ir.V("lo"), Hi: ir.V("hi"), Body: []ir.Stmt{
						ir.FStore{Array: "re", Index: ir.V("i"),
							Val: ir.FMul(ir.At("re", ir.V("i")), ir.F(0.5))},
					}},
					ir.For{Var: "i2", Lo: ir.V("lo"), Hi: ir.V("hi"), Body: []ir.Stmt{
						ir.FStore{Array: "im", Index: ir.V("i2"),
							Val: ir.FMul(ir.At("im", ir.V("i2")), ir.F(0.5))},
					}},
				},
			},
			{
				// checksum: per-thread partial sums of re and im.
				Name:     "ft_checksum",
				Parallel: true,
				Body: []ir.Stmt{
					ir.SetF{Name: "sr", Val: ir.F(0)},
					ir.SetF{Name: "si", Val: ir.F(0)},
					ir.For{Var: "i", Lo: ir.V("lo"), Hi: ir.V("hi"), Body: []ir.Stmt{
						ir.SetF{Name: "sr", Val: ir.FAdd(ir.FV("sr"), ir.At("re", ir.V("i")))},
						ir.SetF{Name: "si", Val: ir.FAdd(ir.FV("si"), ir.At("im", ir.V("i")))},
					}},
					ir.FStore{Array: "partial", Index: ir.V("tid"), Val: ir.FV("sr")},
					ir.FStore{Array: "partial", Index: ir.IAdd(ir.V("tid"), ir.I(maxThreads)), Val: ir.FV("si")},
				},
			},
			{
				// combine: master folds the partials into sums[0..1].
				Name:      "ft_combine",
				IntParams: []string{"nt"},
				Body: []ir.Stmt{
					ir.SetF{Name: "sr", Val: ir.F(0)},
					ir.SetF{Name: "si", Val: ir.F(0)},
					ir.For{Var: "t", Lo: ir.I(0), Hi: ir.V("nt"), Hint: ir.HintCounted, Body: []ir.Stmt{
						ir.SetF{Name: "sr", Val: ir.FAdd(ir.FV("sr"), ir.At("partial", ir.V("t")))},
						ir.SetF{Name: "si", Val: ir.FAdd(ir.FV("si"), ir.At("partial", ir.IAdd(ir.V("t"), ir.I(maxThreads))))},
					}},
					ir.FStore{Array: "sums", Index: ir.I(0), Val: ir.FV("sr")},
					ir.FStore{Array: "sums", Index: ir.I(1), Val: ir.FV("si")},
				},
			},
			{
				// setup: log2(cols) by repeated halving (br.wtop), as the
				// FFT plan setup computes pass counts.
				Name:      "ft_setup",
				IntParams: []string{"n"},
				Body: []ir.Stmt{
					ir.SetI{Name: "lg", Val: ir.I(0)},
					ir.While{
						Body: []ir.Stmt{
							ir.SetI{Name: "n", Val: ir.IShr(ir.V("n"), ir.I(1))},
							ir.SetI{Name: "lg", Val: ir.IAdd(ir.V("lg"), ir.I(1))},
						},
						Cond: ir.Cond{Rel: ir.GT, A: ir.V("n"), B: ir.I(1)},
					},
					ir.IStore{Array: "logs", Index: ir.I(0), Val: ir.V("lg")},
				},
			},
		},
	}

	return &workload.Workload{
		Name: "ft",
		Prog: prog,
		Setup: func(c *workload.Ctx) error {
			rng := newLCG(6400)
			for i := int64(0); i < n; i++ {
				c.WriteF64("re", i, rng.f64()-0.5)
				c.WriteF64("im", i, rng.f64()-0.5)
				c.WriteF64("re2", i, 0)
				c.WriteF64("im2", i, 0)
			}
			for i := int64(0); i < twid; i++ {
				th := 2 * math.Pi * float64(i) / float64(twid)
				c.WriteF64("wre", i, math.Cos(th))
				c.WriteF64("wim", i, math.Sin(th))
			}
			return nil
		},
		Run: func(c *workload.Ctx) error {
			if err := c.Serial("ft_setup", func(tid int, rf *ia64.RegFile) {
				rf.SetGR(c.IntArg("ft_setup", "n"), cols)
			}); err != nil {
				return err
			}
			rowPass := func() error {
				for span := int64(1); span < cols; span *= 2 {
					span := span
					err := c.ParallelFor("ft_rowfft", rows, func(tid int, rf *ia64.RegFile) {
						rf.SetGR(c.IntArg("ft_rowfft", "span"), span)
						rf.SetGR(c.IntArg("ft_rowfft", "groups"), cols/(2*span))
					})
					if err != nil {
						return err
					}
				}
				return nil
			}
			for it := 0; it < iters; it++ {
				if err := c.ParallelFor("ft_evolve", n, nil); err != nil {
					return err
				}
				if err := rowPass(); err != nil { // dimension 1
					return err
				}
				if err := c.ParallelFor("ft_transpose", rows, nil); err != nil {
					return err
				}
				if err := c.ParallelFor("ft_transpose_back", cols, nil); err != nil {
					return err
				}
				if err := c.ParallelFor("ft_scale", n, nil); err != nil {
					return err
				}
			}
			if err := c.ParallelFor("ft_checksum", n, nil); err != nil {
				return err
			}
			return c.Serial("ft_combine", func(tid int, rf *ia64.RegFile) {
				rf.SetGR(c.IntArg("ft_combine", "nt"), int64(c.Threads))
			})
		},
		Verify: func(c *workload.Ctx) error {
			if got := c.ReadI64("logs", 0); got != hostLevels2(cols) {
				return fmt.Errorf("ft: log2 = %d, want %d", got, hostLevels2(cols))
			}
			// A transpose there-and-back is the identity: re2 must be the
			// exact transpose of the final re.
			for _, pt := range [][2]int64{{1, 2}, {rows / 2, cols / 3}, {rows - 1, cols - 1}} {
				r, cc := pt[0], pt[1]
				// The final scale halves re after the transposes, so the
				// stale transpose buffer holds twice the final value.
				if got, want := c.ReadF64("re2", cc*rows+r), 2*c.ReadF64("re", r*cols+cc); got != want {
					return fmt.Errorf("ft: transpose mismatch at (%d,%d): %v vs %v", r, cc, got, want)
				}
			}
			// Device checksum must equal the host's chunk-ordered sum of
			// the final arrays, and be finite.
			wantR, wantI := hostChunkedSum(c, n, "re"), hostChunkedSum(c, n, "im")
			gotR, gotI := c.ReadF64("sums", 0), c.ReadF64("sums", 1)
			if math.IsNaN(gotR) || math.IsNaN(gotI) {
				return fmt.Errorf("ft: checksum NaN (%v, %v)", gotR, gotI)
			}
			if gotR != wantR || gotI != wantI {
				return fmt.Errorf("ft: checksum (%v,%v) != host (%v,%v)", gotR, gotI, wantR, wantI)
			}
			return nil
		},
	}
}

// transposeBody writes dst[c*dstStride+r] = src[r*srcCols+c] for the
// thread's rows r, for both complex components.
func transposeBody(nRows, nCols int64, srcRe, srcIm, dstRe, dstIm string) []ir.Stmt {
	src := func(a string) ir.IntExpr { return ir.IAdd(ir.IMul(ir.V("r"), ir.I(nCols)), ir.V("c")) }
	dst := func(a string) ir.IntExpr { return ir.IAdd(ir.IMul(ir.V("c"), ir.I(nRows)), ir.V("r")) }
	return []ir.Stmt{
		ir.For{Var: "r", Lo: ir.V("lo"), Hi: ir.V("hi"), Body: []ir.Stmt{
			ir.For{Var: "c", Lo: ir.I(0), Hi: ir.I(nCols), Body: []ir.Stmt{
				ir.FStore{Array: dstRe, Index: dst(dstRe), Val: ir.At(srcRe, src(srcRe))},
				ir.FStore{Array: dstIm, Index: dst(dstIm), Val: ir.At(srcIm, src(srcIm))},
			}},
		}},
	}
}

// hostLevels2 mirrors ft_setup: floor(log2(n)).
func hostLevels2(n int64) int64 {
	lg := int64(0)
	for n > 1 {
		n >>= 1
		lg++
	}
	return lg
}

// hostChunkedSum reproduces the device checksum order.
func hostChunkedSum(c *workload.Ctx, n int64, arr string) float64 {
	nt := int64(c.Threads)
	chunk := (n + nt - 1) / nt
	total := 0.0
	for t := int64(0); t < nt; t++ {
		lo, hi := t*chunk, (t+1)*chunk
		if hi > n {
			hi = n
		}
		acc := 0.0
		for i := lo; i < hi; i++ {
			acc += c.ReadF64(arr, i)
		}
		total += acc
	}
	return total
}

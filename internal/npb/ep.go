package npb

import (
	"fmt"
	"math"

	ir "repro/internal/loopir"
	"repro/internal/workload"
)

// EP is the embarrassingly parallel kernel: each thread runs a linear
// congruential generator in registers and accumulates statistics of the
// generated deviates, touching memory only for its per-thread results.
// With almost no memory traffic there are almost no prefetches (Table 1:
// 17 lfetch) and no coherent misses — the paper excludes EP from the
// optimization results for exactly that reason, and COBRA's trigger must
// stay silent on it.
func EP(p Params) *workload.Workload {
	batch, iters := int64(1<<14), p.iters(4)
	if p.Class == ClassT {
		batch, iters = 1<<8, p.iters(2)
	}
	const maxThreads = 16
	const (
		lcgMulA = 1220703125      // NPB's 5^13 multiplier
		lcgMask = (1 << 46) - 1   // 2^46 modulus
		scale   = 1.0 / (1 << 46) // to [0,1)
	)

	prog := &ir.Program{
		Name: "ep",
		Arrays: []ir.Array{
			{Name: "sx", Kind: ir.F64, Elems: maxThreads},
			{Name: "sy", Kind: ir.F64, Elems: maxThreads},
			{Name: "seeds", Kind: ir.I64, Elems: maxThreads},
		},
		Funcs: []*ir.Func{
			{
				// Skip the generator ahead to this thread's stream: a
				// data-dependent do-while (br.wtop).
				Name:     "ep_seed",
				Parallel: true,
				Body: []ir.Stmt{
					ir.SetI{Name: "s", Val: ir.I(271828183)},
					ir.SetI{Name: "k", Val: ir.IAdd(ir.V("tid"), ir.I(1))},
					ir.While{
						Body: []ir.Stmt{
							ir.SetI{Name: "s", Val: ir.IAnd(ir.IMul(ir.V("s"), ir.I(lcgMulA)), ir.I(lcgMask))},
							ir.SetI{Name: "k", Val: ir.ISub(ir.V("k"), ir.I(1))},
						},
						Cond: ir.Cond{Rel: ir.GT, A: ir.V("k"), B: ir.I(0)},
					},
					ir.IStore{Array: "seeds", Index: ir.V("tid"), Val: ir.V("s")},
				},
			},
			{
				// The main batch: generate pairs, accumulate Σx and Σx*y.
				Name:     "ep_batch",
				Parallel: true,
				Body: []ir.Stmt{
					ir.SetI{Name: "s", Val: ir.IAt("seeds", ir.V("tid"))},
					ir.SetF{Name: "ax", Val: ir.F(0)},
					ir.SetF{Name: "ay", Val: ir.F(0)},
					ir.For{Var: "i", Lo: ir.V("lo"), Hi: ir.V("hi"), Body: []ir.Stmt{
						ir.SetI{Name: "s", Val: ir.IAnd(ir.IMul(ir.V("s"), ir.I(lcgMulA)), ir.I(lcgMask))},
						ir.SetF{Name: "x", Val: ir.FMul(ir.FFromInt{E: ir.V("s")}, ir.F(scale))},
						ir.SetI{Name: "s", Val: ir.IAnd(ir.IMul(ir.V("s"), ir.I(lcgMulA)), ir.I(lcgMask))},
						ir.SetF{Name: "y", Val: ir.FMul(ir.FFromInt{E: ir.V("s")}, ir.F(scale))},
						ir.SetF{Name: "ax", Val: ir.FAdd(ir.FV("ax"), ir.FV("x"))},
						ir.SetF{Name: "ay", Val: ir.FAdd(ir.FV("ay"), ir.FMul(ir.FV("x"), ir.FV("y")))},
					}},
					ir.FStore{Array: "sx", Index: ir.V("tid"), Val: ir.FAdd(ir.At("sx", ir.V("tid")), ir.FV("ax"))},
					ir.FStore{Array: "sy", Index: ir.V("tid"), Val: ir.FAdd(ir.At("sy", ir.V("tid")), ir.FV("ay"))},
					ir.IStore{Array: "seeds", Index: ir.V("tid"), Val: ir.V("s")},
				},
			},
		},
	}

	return &workload.Workload{
		Name: "ep",
		Prog: prog,
		Setup: func(c *workload.Ctx) error {
			for t := int64(0); t < maxThreads; t++ {
				c.WriteF64("sx", t, 0)
				c.WriteF64("sy", t, 0)
				c.WriteI64("seeds", t, 0)
			}
			return nil
		},
		Run: func(c *workload.Ctx) error {
			if err := c.ParallelFor("ep_seed", int64(c.Threads), nil); err != nil {
				return err
			}
			for it := 0; it < iters; it++ {
				if err := c.ParallelFor("ep_batch", batch, nil); err != nil {
					return err
				}
			}
			return nil
		},
		Verify: func(c *workload.Ctx) error {
			// Replicate thread 0's stream on the host.
			nt := int64(c.Threads)
			chunk := (batch + nt - 1) / nt
			s := int64(271828183)
			adv := func() int64 {
				s = (s * lcgMulA) & lcgMask
				return s
			}
			adv() // tid 0 skips once
			sx, sy := 0.0, 0.0
			for it := 0; it < iters; it++ {
				ax, ay := 0.0, 0.0
				for i := int64(0); i < chunk; i++ {
					x := float64(adv()) * scale
					y := float64(adv()) * scale
					ax += x
					ay = math.FMA(x, y, ay) // the device fuses x*y+ay
				}
				sx += ax // the device folds per-batch partials into sx
				sy += ay
			}
			if got := c.ReadF64("sx", 0); got != sx {
				return fmt.Errorf("ep: sx[0] = %v, want %v", got, sx)
			}
			if got := c.ReadF64("sy", 0); math.Abs(got-sy) > 0 {
				return fmt.Errorf("ep: sy[0] = %v, want %v", got, sy)
			}
			return nil
		},
	}
}

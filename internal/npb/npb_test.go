package npb

import (
	"testing"

	"repro/internal/ia64"
	"repro/internal/workload"
)

// runBench builds and runs one benchmark at tiny scale, returning the
// instance for inspection. Verify hooks run inside.
func runBench(t *testing.T, name string, threads int) *workload.Instance {
	t.Helper()
	w, err := Build(name, Params{Class: ClassT})
	if err != nil {
		t.Fatal(err)
	}
	inst, err := workload.Build(w, workload.SMPConfig(threads))
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Run(); err != nil {
		t.Fatal(err)
	}
	return inst
}

func TestBTVerifies(t *testing.T) { runBench(t, "bt", 2) }
func TestSPVerifies(t *testing.T) { runBench(t, "sp", 2) }
func TestLUVerifies(t *testing.T) { runBench(t, "lu", 2) }
func TestFTVerifies(t *testing.T) { runBench(t, "ft", 2) }
func TestMGVerifies(t *testing.T) { runBench(t, "mg", 2) }
func TestCGVerifies(t *testing.T) { runBench(t, "cg", 2) }
func TestEPVerifies(t *testing.T) { runBench(t, "ep", 2) }
func TestISVerifies(t *testing.T) { runBench(t, "is", 2) }

func TestAllBenchmarksFourThreads(t *testing.T) {
	for _, name := range Names {
		name := name
		t.Run(name, func(t *testing.T) { runBench(t, name, 4) })
	}
}

func TestAllBenchmarksSingleThread(t *testing.T) {
	for _, name := range Names {
		name := name
		t.Run(name, func(t *testing.T) { runBench(t, name, 1) })
	}
}

func TestUnknownBenchmark(t *testing.T) {
	if _, err := Build("nope", Params{}); err == nil {
		t.Fatal("accepted unknown benchmark")
	}
}

func TestStaticCountsShape(t *testing.T) {
	// Table 1's qualitative shape: every benchmark except EP carries a
	// substantial number of prefetches; EP and IS are the lightest; SWP
	// loops (br.ctop) dominate the counted forms in the numeric codes;
	// FT, MG, CG, EP and IS each contain at least one br.wtop.
	counts := map[string]ia64.StaticCounts{}
	for _, name := range Names {
		w, err := Build(name, Params{Class: ClassT})
		if err != nil {
			t.Fatal(err)
		}
		inst, err := workload.Build(w, workload.SMPConfig(2))
		if err != nil {
			t.Fatal(err)
		}
		counts[name] = inst.Ctx.Res.StaticCounts(inst.Ctx.M.Image())
	}
	for _, name := range []string{"bt", "sp", "lu", "ft", "mg", "cg"} {
		if counts[name].Lfetch < 10 {
			t.Errorf("%s: lfetch = %d, want substantial prefetching", name, counts[name].Lfetch)
		}
		if counts[name].BrCtop == 0 {
			t.Errorf("%s: no software-pipelined loops", name)
		}
	}
	if counts["ep"].Lfetch >= counts["cg"].Lfetch {
		t.Errorf("ep lfetch %d not below cg %d", counts["ep"].Lfetch, counts["cg"].Lfetch)
	}
	for _, name := range []string{"ft", "mg", "ep", "is"} {
		if counts[name].BrWtop == 0 {
			t.Errorf("%s: no br.wtop loops", name)
		}
	}
	for _, name := range []string{"bt", "sp", "lu", "is"} {
		if counts[name].BrCloop == 0 {
			t.Errorf("%s: no br.cloop loops", name)
		}
	}
}

func TestBenchmarksDeterministic(t *testing.T) {
	for _, name := range []string{"cg", "mg"} {
		a := runBench(t, name, 2).Ctx.RT.TotalCycles()
		b := runBench(t, name, 2).Ctx.RT.TotalCycles()
		if a != b {
			t.Errorf("%s: non-deterministic cycles %d vs %d", name, a, b)
		}
	}
}

func TestResultNamesSubsetOfNames(t *testing.T) {
	set := map[string]bool{}
	for _, n := range Names {
		set[n] = true
	}
	for _, n := range ResultNames {
		if !set[n] {
			t.Errorf("result benchmark %q not in Names", n)
		}
	}
	if len(ResultNames) != 6 {
		t.Errorf("ResultNames = %v, want the paper's six", ResultNames)
	}
}

func TestClassSBuildable(t *testing.T) {
	// Class S instances must compile (not run: that's the bench harness).
	for _, name := range Names {
		w, err := Build(name, Params{Class: ClassS})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := workload.Build(w, workload.SMPConfig(4)); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestLCGDeterminism(t *testing.T) {
	a, b := newLCG(7), newLCG(7)
	for i := 0; i < 100; i++ {
		if a.next() != b.next() {
			t.Fatal("lcg not deterministic")
		}
	}
	r := newLCG(9)
	for i := 0; i < 1000; i++ {
		v := r.f64()
		if v < 0 || v >= 1 {
			t.Fatalf("f64 out of range: %v", v)
		}
		n := r.intn(17)
		if n < 0 || n >= 17 {
			t.Fatalf("intn out of range: %v", n)
		}
	}
}

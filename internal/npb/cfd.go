package npb

import (
	"fmt"
	"math"

	"repro/internal/ia64"
	ir "repro/internal/loopir"
	"repro/internal/workload"
)

// The three simulated CFD applications share a 3D grid with five solution
// variables per cell, a stencil-based right-hand-side evaluation, and
// directional line solves — "much of the data movement and computation
// found in full CFD codes" (paper §5.1). They differ in solver structure:
// BT sweeps block-coupled tridiagonal lines, SP scalar pentadiagonal lines
// (two-term recurrences, heavier dissipation stencils), and LU performs
// SSOR lower/upper sweeps.

// cfdGeom holds grid geometry shared by BT/SP/LU.
type cfdGeom struct {
	ns   int64 // points per dimension
	nvar int64 // solution variables per cell (5)
	n    int64 // nvar * ns^3
}

func newCFDGeom(class Class) cfdGeom {
	ns := int64(12) // class S grids are 12^3
	if class == ClassT {
		ns = 6
	}
	return cfdGeom{ns: ns, nvar: 5, n: 5 * ns * ns * ns}
}

// idx5 builds the flat index 5*((（i+1)*ns + (j+1))*ns + k) + m with i, j
// interior loop variables and k the innermost variable.
func (g cfdGeom) idx5(iv, jv, kv string, di, dj, dk, m int64) ir.IntExpr {
	i := ir.IAdd(ir.V(iv), ir.I(1+di))
	j := ir.IAdd(ir.V(jv), ir.I(1+dj))
	cell := ir.IAdd(ir.IMul(ir.IAdd(ir.IMul(i, ir.I(g.ns)), j), ir.I(g.ns)), ir.IAdd(ir.V(kv), ir.I(dk)))
	return ir.IAdd(ir.IMul(cell, ir.I(g.nvar)), ir.I(m))
}

// rhsKernel builds the compute_rhs triple nest: for every interior cell
// and every variable m, rhs = forcing - stencil(u). coupling mixes in the
// next variable (BT's block flavour); dissip adds k±2 terms (SP's
// pentadiagonal dissipation).
func (g cfdGeom) rhsKernel(name string, coupling, dissip bool) *ir.Func {
	body := func() []ir.Stmt {
		var out []ir.Stmt
		for m := int64(0); m < g.nvar; m++ {
			e := g.idx5("i", "j", "k", 0, 0, 0, m)
			neigh := ir.FAdd(
				ir.FAdd(ir.At("u", g.idx5("i", "j", "k", 0, 0, -1, m)),
					ir.At("u", g.idx5("i", "j", "k", 0, 0, 1, m))),
				ir.FAdd(
					ir.FAdd(ir.At("u", g.idx5("i", "j", "k", 0, -1, 0, m)),
						ir.At("u", g.idx5("i", "j", "k", 0, 1, 0, m))),
					ir.FAdd(ir.At("u", g.idx5("i", "j", "k", -1, 0, 0, m)),
						ir.At("u", g.idx5("i", "j", "k", 1, 0, 0, m)))))
			var val ir.FloatExpr = ir.FAdd(
				ir.FMul(ir.F(-1.5), ir.At("u", e)),
				ir.FMul(ir.F(0.25), neigh))
			if coupling {
				val = ir.FAdd(val, ir.FMul(ir.F(0.1),
					ir.At("u", g.idx5("i", "j", "k", 0, 0, 0, (m+1)%g.nvar))))
			}
			if dissip {
				val = ir.FAdd(val, ir.FMul(ir.F(0.0625),
					ir.FAdd(ir.At("u", g.idx5("i", "j", "k", 0, 0, -2, m)),
						ir.At("u", g.idx5("i", "j", "k", 0, 0, 2, m)))))
			}
			out = append(out, ir.FStore{Array: "rhs", Index: e,
				Val: ir.FSub(ir.At("forcing", e), val)})
		}
		return out
	}
	kLo, kHi := int64(1), g.ns-1
	if dissip {
		kLo, kHi = 2, g.ns-2
	}
	return &ir.Func{
		Name:     name,
		Parallel: true,
		Body: []ir.Stmt{
			ir.For{Var: "i", Lo: ir.V("lo"), Hi: ir.V("hi"), Body: []ir.Stmt{
				ir.For{Var: "j", Lo: ir.I(0), Hi: ir.I(g.ns - 2), Body: []ir.Stmt{
					ir.For{Var: "k", Lo: ir.I(kLo), Hi: ir.I(kHi), Body: body()},
				}},
			}},
		},
	}
}

// sweepKernel builds a directional line solve along grid axis dir
// (0 = x, the outermost index; 2 = z, the innermost): a forward recurrence
// rhs[s] -= f*u[s-1]*rhs[s-1] (+ g*rhs[s-2] when penta), with damped
// coefficients so the pseudo-time iteration stays bounded, then a backward
// substitution expressed as an ascending loop over reversed indices.
// Parallelism is over lines perpendicular to the swept axis, so every
// thread owns whole lines while neighbouring lines may live on other CPUs;
// the x and y sweeps stride by whole planes and rows, the access patterns
// whose prefetch streams reach far into other threads' data.
func (g cfdGeom) sweepKernel(name string, dir int, penta bool) *ir.Func {
	// cellAt places the sweep coordinate expression sc on axis dir and the
	// interior loop variables a ("i") and b ("j") on the other two axes.
	cellAt := func(sc ir.IntExpr, m int64) ir.IntExpr {
		a := ir.IAdd(ir.V("i"), ir.I(1))
		b := ir.IAdd(ir.V("j"), ir.I(1))
		var c0, c1, c2 ir.IntExpr
		switch dir {
		case 0:
			c0, c1, c2 = sc, a, b
		case 1:
			c0, c1, c2 = a, sc, b
		default:
			c0, c1, c2 = a, b, sc
		}
		cell := ir.IAdd(ir.IMul(ir.IAdd(ir.IMul(c0, ir.I(g.ns)), c1), ir.I(g.ns)), c2)
		return ir.IAdd(ir.IMul(cell, ir.I(g.nvar)), ir.I(m))
	}
	// Forward: for k in [1+, ns): rhs[idx(k)] -= f*rhs[idx(k-1)].
	fwd := func() []ir.Stmt {
		var out []ir.Stmt
		for m := int64(0); m < g.nvar; m++ {
			e := cellAt(ir.V("k"), m)
			prev := cellAt(ir.ISub(ir.V("k"), ir.I(1)), m)
			fac := ir.FMul(ir.F(0.02), ir.At("u", prev))
			var val ir.FloatExpr = ir.FSub(ir.At("rhs", e), ir.FMul(fac, ir.At("rhs", prev)))
			if penta && m%2 == 0 {
				prev2 := cellAt(ir.ISub(ir.V("k"), ir.I(2)), m)
				val = ir.FSub(val, ir.FMul(ir.F(0.01), ir.At("rhs", prev2)))
			}
			out = append(out, ir.FStore{Array: "rhs", Index: e, Val: val})
		}
		return out
	}
	// Backward: kb ascends, the swept coordinate descends.
	bidx := func(dk, m int64) ir.IntExpr {
		return cellAt(ir.IAdd(ir.ISub(ir.I(g.ns-2), ir.V("kb")), ir.I(dk)), m)
	}
	bwd := func() []ir.Stmt {
		var out []ir.Stmt
		for m := int64(0); m < g.nvar; m++ {
			out = append(out, ir.FStore{Array: "rhs", Index: bidx(0, m),
				Val: ir.FSub(ir.At("rhs", bidx(0, m)),
					ir.FMul(ir.F(0.02), ir.At("rhs", bidx(1, m))))})
		}
		return out
	}
	fwdLo := int64(1)
	if penta {
		fwdLo = 2
	}
	return &ir.Func{
		Name:     name,
		Parallel: true,
		Body: []ir.Stmt{
			ir.For{Var: "i", Lo: ir.V("lo"), Hi: ir.V("hi"), Body: []ir.Stmt{
				ir.For{Var: "j", Lo: ir.I(0), Hi: ir.I(g.ns - 2), Body: []ir.Stmt{
					ir.For{Var: "k", Lo: ir.I(fwdLo), Hi: ir.I(g.ns), Hint: ir.HintCounted, Body: fwd()},
					ir.For{Var: "kb", Lo: ir.I(1), Hi: ir.I(g.ns - 1), Hint: ir.HintCounted, Body: bwd()},
				}},
			}},
		},
	}
}

// addKernel builds u += rhs over the flat range — the streaming update
// that closes each pseudo-time step.
func (g cfdGeom) addKernel(name string) *ir.Func {
	return &ir.Func{
		Name:     name,
		Parallel: true,
		Body: []ir.Stmt{
			ir.For{Var: "x", Lo: ir.V("lo"), Hi: ir.V("hi"), Body: []ir.Stmt{
				ir.FStore{Array: "u", Index: ir.V("x"),
					Val: ir.FAdd(ir.FMul(ir.F(0.95), ir.At("u", ir.V("x"))),
						ir.FMul(ir.F(0.005), ir.At("rhs", ir.V("x"))))},
			}},
		},
	}
}

// normKernels build the per-step residual norm: a parallel partial
// reduction of rhs² followed by a serial fold, as the real codes compute
// their verification norms every few steps.
func (g cfdGeom) normKernels(prefix string) []*ir.Func {
	return []*ir.Func{
		{
			Name:     prefix + "_norm",
			Parallel: true,
			Body: []ir.Stmt{
				ir.SetF{Name: "acc", Val: ir.F(0)},
				ir.For{Var: "x", Lo: ir.V("lo"), Hi: ir.V("hi"), Body: []ir.Stmt{
					ir.SetF{Name: "acc", Val: ir.FAdd(ir.FV("acc"),
						ir.FMul(ir.At("rhs", ir.V("x")), ir.At("rhs", ir.V("x"))))},
				}},
				ir.FStore{Array: "partial", Index: ir.V("tid"), Val: ir.FV("acc")},
			},
		},
		{
			Name:      prefix + "_norm_fold",
			IntParams: []string{"nt"},
			Body: []ir.Stmt{
				ir.SetF{Name: "s", Val: ir.F(0)},
				ir.For{Var: "t", Lo: ir.I(0), Hi: ir.V("nt"), Hint: ir.HintCounted, Body: []ir.Stmt{
					ir.SetF{Name: "s", Val: ir.FAdd(ir.FV("s"), ir.At("partial", ir.V("t")))},
				}},
				ir.FStore{Array: "norms", Index: ir.I(0), Val: ir.FV("s")},
			},
		},
	}
}

// cfdArrays is the common array set.
func (g cfdGeom) arrays() []ir.Array {
	return []ir.Array{
		{Name: "u", Kind: ir.F64, Elems: g.n},
		{Name: "rhs", Kind: ir.F64, Elems: g.n},
		{Name: "forcing", Kind: ir.F64, Elems: g.n},
		{Name: "partial", Kind: ir.F64, Elems: 16},
		{Name: "norms", Kind: ir.F64, Elems: 4},
	}
}

// cfdSetup initializes u and forcing and zeroes rhs.
func (g cfdGeom) setup(seed uint64) func(c *workload.Ctx) error {
	return func(c *workload.Ctx) error {
		rng := newLCG(seed)
		for i := int64(0); i < g.n; i++ {
			c.WriteF64("u", i, rng.f64()-0.5)
			c.WriteF64("forcing", i, rng.f64()-0.5)
			c.WriteF64("rhs", i, 0)
		}
		return nil
	}
}

// cfdVerify checks that the final rhs equals the host-evaluated stencil of
// the final u at sampled interior cells (the run must end with the rhs
// kernel).
func (g cfdGeom) verify(coupling, dissip bool) func(c *workload.Ctx) error {
	return func(c *workload.Ctx) error {
		at := func(a string, i, j, k, m int64) float64 {
			return c.ReadF64(a, 5*((i*g.ns+j)*g.ns+k)+m)
		}
		kSample := g.ns / 2
		if dissip && kSample < 2 {
			kSample = 2
		}
		for _, cell := range [][3]int64{{1, 1, kSample}, {g.ns / 2, g.ns / 2, kSample}} {
			i, j, k := cell[0], cell[1], cell[2]
			for m := int64(0); m < g.nvar; m++ {
				neigh := at("u", i, j, k-1, m) + at("u", i, j, k+1, m) +
					at("u", i, j-1, k, m) + at("u", i, j+1, k, m) +
					at("u", i-1, j, k, m) + at("u", i+1, j, k, m)
				val := -1.5*at("u", i, j, k, m) + 0.25*neigh
				if coupling {
					val += 0.1 * at("u", i, j, k, (m+1)%g.nvar)
				}
				if dissip {
					val += 0.0625 * (at("u", i, j, k-2, m) + at("u", i, j, k+2, m))
				}
				want := at("forcing", i, j, k, m) - val
				got := at("rhs", i, j, k, m)
				if math.IsNaN(got) || math.Abs(got-want) > 1e-12*math.Max(1, math.Abs(want)) {
					return fmt.Errorf("cfd: rhs(%d,%d,%d,%d) = %v, want %v", i, j, k, m, got, want)
				}
			}
		}
		return nil
	}
}

// cfdRun drives iters pseudo-time steps: rhs, directional solves, add,
// and a residual norm — then one final rhs for verification.
func (g cfdGeom) run(iters int, prefix, rhs string, solves []string, add string) func(c *workload.Ctx) error {
	interior := g.ns - 2
	return func(c *workload.Ctx) error {
		bindNT := func(tid int, rf *ia64.RegFile) {
			rf.SetGR(c.IntArg(prefix+"_norm_fold", "nt"), int64(c.Threads))
		}
		for it := 0; it < iters; it++ {
			if err := c.ParallelFor(rhs, interior, nil); err != nil {
				return err
			}
			for _, s := range solves {
				if err := c.ParallelFor(s, interior, nil); err != nil {
					return err
				}
			}
			if err := c.ParallelFor(add, g.n, nil); err != nil {
				return err
			}
			if err := c.ParallelFor(prefix+"_norm", g.n, nil); err != nil {
				return err
			}
			if err := c.Serial(prefix+"_norm_fold", bindNT); err != nil {
				return err
			}
		}
		return c.ParallelFor(rhs, interior, nil)
	}
}

// BT is the block-tridiagonal simulated CFD application: a coupled
// five-variable stencil RHS and three directional tridiagonal sweeps.
func BT(p Params) *workload.Workload {
	g := newCFDGeom(p.Class)
	iters := p.iters(48)
	prog := &ir.Program{
		Name:   "bt",
		Arrays: g.arrays(),
		Funcs: append([]*ir.Func{
			g.rhsKernel("bt_rhs", true, false),
			g.sweepKernel("bt_x_solve", 0, false),
			g.sweepKernel("bt_y_solve", 1, false),
			g.sweepKernel("bt_z_solve", 2, false),
			g.addKernel("bt_add"),
		}, g.normKernels("bt")...),
	}
	return &workload.Workload{
		Name:   "bt",
		Prog:   prog,
		Setup:  g.setup(101),
		Run:    g.run(iters, "bt", "bt_rhs", []string{"bt_x_solve", "bt_y_solve", "bt_z_solve"}, "bt_add"),
		Verify: g.verify(true, false),
	}
}

// SP is the scalar-pentadiagonal application: dissipation-heavy stencils
// and two-term recurrences in the sweeps.
func SP(p Params) *workload.Workload {
	g := newCFDGeom(p.Class)
	iters := p.iters(48)
	prog := &ir.Program{
		Name:   "sp",
		Arrays: g.arrays(),
		Funcs: append([]*ir.Func{
			g.rhsKernel("sp_rhs", false, true),
			g.sweepKernel("sp_x_solve", 0, true),
			g.sweepKernel("sp_y_solve", 1, true),
			g.sweepKernel("sp_z_solve", 2, true),
			g.addKernel("sp_add"),
		}, g.normKernels("sp")...),
	}
	return &workload.Workload{
		Name:   "sp",
		Prog:   prog,
		Setup:  g.setup(202),
		Run:    g.run(iters, "sp", "sp_rhs", []string{"sp_x_solve", "sp_y_solve", "sp_z_solve"}, "sp_add"),
		Verify: g.verify(false, true),
	}
}

// LU is the SSOR application: a lower sweep and an upper sweep per step
// instead of three directional solves.
func LU(p Params) *workload.Workload {
	g := newCFDGeom(p.Class)
	iters := p.iters(48)
	prog := &ir.Program{
		Name:   "lu",
		Arrays: g.arrays(),
		Funcs: append([]*ir.Func{
			g.rhsKernel("lu_rhs", false, false),
			g.sweepKernel("lu_blts", 2, false),
			g.sweepKernel("lu_buts", 1, true),
			g.addKernel("lu_add"),
		}, g.normKernels("lu")...),
	}
	return &workload.Workload{
		Name:   "lu",
		Prog:   prog,
		Setup:  g.setup(303),
		Run:    g.run(iters, "lu", "lu_rhs", []string{"lu_blts", "lu_buts"}, "lu_add"),
		Verify: g.verify(false, false),
	}
}

package npb

import (
	"fmt"

	"repro/internal/ia64"
	ir "repro/internal/loopir"
	"repro/internal/workload"
)

// IS is the integer sort kernel: bucket counting of random keys into
// per-thread histograms (a data-dependent scatter), a parallel merge of
// the per-thread histograms, and a serial prefix sum to produce bucket
// ranks. Like EP it shows no long-latency coherent misses at this scale
// and is excluded from the paper's optimization results, but its compiled
// form contributes to Table 1.
func IS(p Params) *workload.Workload {
	nk, iters := int64(1<<15), p.iters(4)
	if p.Class == ClassT {
		nk, iters = 1<<9, p.iters(2)
	}
	const (
		maxThreads = 16
		logBuckets = 10
		buckets    = 1 << logBuckets
	)
	keyMax := int64(buckets << 6)

	prog := &ir.Program{
		Name: "is",
		Arrays: []ir.Array{
			{Name: "keys", Kind: ir.I64, Elems: nk},
			{Name: "hist", Kind: ir.I64, Elems: maxThreads * buckets},
			{Name: "histg", Kind: ir.I64, Elems: buckets},
			{Name: "ranks", Kind: ir.I64, Elems: buckets},
			{Name: "cursor", Kind: ir.I64, Elems: buckets},
			{Name: "sorted", Kind: ir.I64, Elems: nk},
			{Name: "check", Kind: ir.I64, Elems: 4},
		},
		Funcs: []*ir.Func{
			{
				// Clear this thread's histogram slice.
				Name:     "is_clear",
				Parallel: true,
				Body: []ir.Stmt{
					ir.For{Var: "b", Lo: ir.I(0), Hi: ir.I(buckets), Body: []ir.Stmt{
						ir.IStore{Array: "hist",
							Index: ir.IAdd(ir.IMul(ir.V("tid"), ir.I(buckets)), ir.V("b")),
							Val:   ir.I(0)},
					}},
				},
			},
			{
				// Bucket counting: a scatter through the key value.
				Name:     "is_hist",
				Parallel: true,
				Body: []ir.Stmt{
					ir.For{Var: "i", Lo: ir.V("lo"), Hi: ir.V("hi"), Body: []ir.Stmt{
						ir.SetI{Name: "b", Val: ir.IShr(ir.IAt("keys", ir.V("i")), ir.I(6))},
						ir.SetI{Name: "slot", Val: ir.IAdd(ir.IMul(ir.V("tid"), ir.I(buckets)), ir.V("b"))},
						ir.IStore{Array: "hist", Index: ir.V("slot"),
							Val: ir.IAdd(ir.IAt("hist", ir.V("slot")), ir.I(1))},
					}},
				},
			},
			{
				// Merge the per-thread histograms: parallel over buckets,
				// each summing a strided column of hist.
				Name:      "is_merge",
				Parallel:  true,
				IntParams: []string{"nt"},
				Body: []ir.Stmt{
					ir.For{Var: "b", Lo: ir.V("lo"), Hi: ir.V("hi"), Body: []ir.Stmt{
						ir.SetI{Name: "acc", Val: ir.I(0)},
						ir.For{Var: "t", Lo: ir.I(0), Hi: ir.V("nt"), Hint: ir.HintCounted, Body: []ir.Stmt{
							ir.SetI{Name: "acc", Val: ir.IAdd(ir.V("acc"),
								ir.IAt("hist", ir.IAdd(ir.IMul(ir.V("t"), ir.I(buckets)), ir.V("b"))))},
						}},
						ir.IStore{Array: "histg", Index: ir.V("b"), Val: ir.V("acc")},
					}},
				},
			},
			{
				// Serial prefix sum over the merged histogram.
				Name: "is_prefix",
				Body: []ir.Stmt{
					ir.SetI{Name: "run", Val: ir.I(0)},
					ir.For{Var: "b", Lo: ir.I(0), Hi: ir.I(buckets), Hint: ir.HintCounted, Body: []ir.Stmt{
						ir.IStore{Array: "ranks", Index: ir.V("b"), Val: ir.V("run")},
						ir.SetI{Name: "run", Val: ir.IAdd(ir.V("run"), ir.IAt("histg", ir.V("b")))},
					}},
					ir.IStore{Array: "check", Index: ir.I(0), Val: ir.V("run")},
				},
			},
			{
				// Seed the per-bucket output cursors from the ranks.
				Name:     "is_cursors",
				Parallel: true,
				Body: []ir.Stmt{
					ir.For{Var: "b", Lo: ir.V("lo"), Hi: ir.V("hi"), Body: []ir.Stmt{
						ir.IStore{Array: "cursor", Index: ir.V("b"),
							Val: ir.IAt("ranks", ir.V("b"))},
					}},
				},
			},
			{
				// Permute the keys into bucket order (the counting-sort
				// scatter). The real IS serializes this phase too: the
				// cursor read-modify-writes race under parallelism.
				Name: "is_permute",
				Body: []ir.Stmt{
					ir.For{Var: "i", Lo: ir.I(0), Hi: ir.I(nk), Hint: ir.HintCounted, Body: []ir.Stmt{
						ir.SetI{Name: "kv", Val: ir.IAt("keys", ir.V("i"))},
						ir.SetI{Name: "b", Val: ir.IShr(ir.V("kv"), ir.I(6))},
						ir.SetI{Name: "pos", Val: ir.IAt("cursor", ir.V("b"))},
						ir.IStore{Array: "sorted", Index: ir.V("pos"), Val: ir.V("kv")},
						ir.IStore{Array: "cursor", Index: ir.V("b"),
							Val: ir.IAdd(ir.V("pos"), ir.I(1))},
					}},
				},
			},
			{
				// Full-verification helper of the real IS: confirm the
				// largest occupied bucket by a downward scan (br.wtop).
				Name: "is_maxbucket",
				Body: []ir.Stmt{
					ir.SetI{Name: "b", Val: ir.I(buckets)},
					ir.While{
						Body: []ir.Stmt{
							ir.SetI{Name: "b", Val: ir.ISub(ir.V("b"), ir.I(1))},
						},
						Cond: ir.Cond{Rel: ir.EQ, A: ir.IAt("histg", ir.V("b")), B: ir.I(0)},
					},
					ir.IStore{Array: "check", Index: ir.I(1), Val: ir.V("b")},
				},
			},
		},
	}

	return &workload.Workload{
		Name: "is",
		Prog: prog,
		Setup: func(c *workload.Ctx) error {
			rng := newLCG(6553)
			for i := int64(0); i < nk; i++ {
				c.WriteI64("keys", i, rng.intn(keyMax))
			}
			return nil
		},
		Run: func(c *workload.Ctx) error {
			nt := int64(c.Threads)
			for it := 0; it < iters; it++ {
				if err := c.ParallelFor("is_clear", nt, nil); err != nil {
					return err
				}
				if err := c.ParallelFor("is_hist", nk, nil); err != nil {
					return err
				}
				err := c.ParallelFor("is_merge", buckets, func(tid int, rf *ia64.RegFile) {
					rf.SetGR(c.IntArg("is_merge", "nt"), nt)
				})
				if err != nil {
					return err
				}
				if err := c.Serial("is_prefix", nil); err != nil {
					return err
				}
				if err := c.ParallelFor("is_cursors", buckets, nil); err != nil {
					return err
				}
				if err := c.Serial("is_permute", nil); err != nil {
					return err
				}
				if err := c.Serial("is_maxbucket", nil); err != nil {
					return err
				}
			}
			return nil
		},
		Verify: func(c *workload.Ctx) error {
			if got := c.ReadI64("check", 0); got != nk {
				return fmt.Errorf("is: prefix total = %d, want %d", got, nk)
			}
			// Host-recompute the global histogram and ranks.
			hist := make([]int64, buckets)
			maxB := int64(0)
			for i := int64(0); i < nk; i++ {
				b := c.ReadI64("keys", i) >> 6
				hist[b]++
				if b > maxB && hist[b] > 0 {
					maxB = b
				}
			}
			run := int64(0)
			for b := 0; b < buckets; b++ {
				if got := c.ReadI64("ranks", int64(b)); got != run {
					return fmt.Errorf("is: ranks[%d] = %d, want %d", b, got, run)
				}
				if got := c.ReadI64("histg", int64(b)); got != hist[b] {
					return fmt.Errorf("is: histg[%d] = %d, want %d", b, got, hist[b])
				}
				run += hist[b]
			}
			for b := int64(buckets - 1); b >= 0; b-- {
				if hist[b] != 0 {
					maxB = b
					break
				}
			}
			if got := c.ReadI64("check", 1); got != maxB {
				return fmt.Errorf("is: max bucket = %d, want %d", got, maxB)
			}
			// The permuted keys must be bucket-ordered (sorted by key>>6)
			// and a permutation of the inputs (same histogram).
			prev := int64(-1)
			recount := make([]int64, buckets)
			for i := int64(0); i < nk; i++ {
				k := c.ReadI64("sorted", i)
				b := k >> 6
				if b < prev {
					return fmt.Errorf("is: sorted[%d] bucket %d after %d", i, b, prev)
				}
				prev = b
				recount[b]++
			}
			for b := 0; b < buckets; b++ {
				if recount[b] != hist[b] {
					return fmt.Errorf("is: bucket %d has %d keys after permute, want %d", b, recount[b], hist[b])
				}
			}
			return nil
		},
	}
}

package workload

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/ia64"
	"repro/internal/loopir"
)

// SpmvParams parameterize sparse matrix-vector multiply in CSR form —
// the third irregular workload of the scenario matrix. The value and
// column-index streams are affine in the nonzero index (the compiler
// emits lfetch for both), while the gather x[colidx[k]] is
// data-dependent; rows have randomized populations so the per-thread
// work is imbalanced in a way dense kernels never are.
type SpmvParams struct {
	// Rows and Cols shape the matrix (defaults 4096 x 4096).
	Rows int64
	Cols int64
	// NNZPerRow is the mean nonzero count per row (default 8); actual row
	// populations vary in [1, 2*NNZPerRow).
	NNZPerRow int64
	// Reps repeats y = A*x (default 10).
	Reps int
	// Seed drives the sparsity pattern and values (default 1).
	Seed int64
}

func (p SpmvParams) WithDefaults() SpmvParams {
	if p.Rows == 0 {
		p.Rows = 4096
	}
	if p.Cols == 0 {
		p.Cols = 4096
	}
	if p.NNZPerRow == 0 {
		p.NNZPerRow = 8
	}
	if p.Reps == 0 {
		p.Reps = 10
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	return p
}

// spmvMatrix generates the CSR structure, values and input vector —
// a pure function of params shared by Setup and the oracle.
func spmvMatrix(p SpmvParams) (rowptr, colidx []int64, vals, x []float64) {
	rng := rand.New(rand.NewSource(p.Seed))
	rowptr = make([]int64, p.Rows+1)
	for i := int64(0); i < p.Rows; i++ {
		n := 1 + rng.Int63n(2*p.NNZPerRow-1)
		rowptr[i+1] = rowptr[i] + n
		for k := int64(0); k < n; k++ {
			colidx = append(colidx, rng.Int63n(p.Cols))
			vals = append(vals, 1+rng.Float64())
		}
	}
	x = make([]float64, p.Cols)
	for j := range x {
		x[j] = rng.Float64()*2 - 1
	}
	return rowptr, colidx, vals, x
}

// spmvOracle evaluates y = A*x on the host in the same operation order as
// the simulated kernel (sequential in k per row; the compiler fuses the
// multiply-add into one fma, so the host mirrors it), making comparison
// exact.
func spmvOracle(p SpmvParams) []float64 {
	rowptr, colidx, vals, x := spmvMatrix(p)
	y := make([]float64, p.Rows)
	for i := int64(0); i < p.Rows; i++ {
		acc := 0.0
		for k := rowptr[i]; k < rowptr[i+1]; k++ {
			acc = math.FMA(vals[k], x[colidx[k]], acc)
		}
		y[i] = acc
	}
	return y
}

// Spmv builds the CSR sparse matrix-vector product workload:
//
//	#pragma omp parallel for
//	for (i = lo; i < hi; i++) {
//	  acc = 0;
//	  for (k = rowptr[i]; k < rowptr[i+1]; k++)
//	    acc += vals[k] * x[colidx[k]];
//	  y[i] = acc;
//	}
func Spmv(p SpmvParams) *Workload {
	p = p.WithDefaults()
	rowptr, colidx, vals, x := spmvMatrix(p)
	nnz := int64(len(vals))
	prog := &loopir.Program{
		Name: "spmv",
		Arrays: []loopir.Array{
			{Name: "rowptr", Kind: loopir.I64, Elems: p.Rows + 1},
			{Name: "colidx", Kind: loopir.I64, Elems: nnz},
			{Name: "vals", Kind: loopir.F64, Elems: nnz},
			{Name: "x", Kind: loopir.F64, Elems: p.Cols},
			{Name: "y", Kind: loopir.F64, Elems: p.Rows},
		},
		Funcs: []*loopir.Func{{
			Name:     "spmv",
			Parallel: true,
			Body: []loopir.Stmt{
				loopir.For{Var: "i", Lo: loopir.V("lo"), Hi: loopir.V("hi"), Body: []loopir.Stmt{
					loopir.SetF{Name: "acc", Val: loopir.F(0)},
					loopir.For{
						Var:  "k",
						Lo:   loopir.IAt("rowptr", loopir.V("i")),
						Hi:   loopir.IAt("rowptr", loopir.IAdd(loopir.V("i"), loopir.I(1))),
						Hint: loopir.HintCounted,
						Body: []loopir.Stmt{
							loopir.SetF{Name: "acc", Val: loopir.FAdd(loopir.FV("acc"),
								loopir.FMul(loopir.At("vals", loopir.V("k")),
									loopir.At("x", loopir.IAt("colidx", loopir.V("k")))))},
						},
					},
					loopir.FStore{Array: "y", Index: loopir.V("i"), Val: loopir.FV("acc")},
				}},
			},
		}},
	}
	return &Workload{
		Name: "spmv",
		Prog: prog,
		Setup: func(c *Ctx) error {
			for i, v := range rowptr {
				c.WriteI64("rowptr", int64(i), v)
			}
			for k := int64(0); k < nnz; k++ {
				c.WriteI64("colidx", k, colidx[k])
				c.WriteF64("vals", k, vals[k])
			}
			for j, v := range x {
				c.WriteF64("x", int64(j), v)
			}
			return nil
		},
		Run: func(c *Ctx) error {
			for rep := 0; rep < p.Reps; rep++ {
				if err := c.ParallelFor("spmv", p.Rows, func(tid int, rf *ia64.RegFile) {}); err != nil {
					return err
				}
			}
			return nil
		},
		Verify: func(c *Ctx) error {
			want := spmvOracle(p)
			for i := int64(0); i < p.Rows; i++ {
				if got := c.ReadF64("y", i); got != want[i] {
					return fmt.Errorf("spmv: y[%d] = %v, want %v", i, got, want[i])
				}
			}
			return nil
		},
	}
}

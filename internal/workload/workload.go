// Package workload defines runnable benchmark programs for the simulated
// machine: a program in loop-nest IR plus host-side setup and a phase
// driver, with a builder that assembles the full stack (machine, compiled
// binary, OpenMP runtime, and optionally an attached COBRA instance).
package workload

import (
	"fmt"

	"repro/internal/cobra"
	"repro/internal/compiler"
	"repro/internal/ia64"
	"repro/internal/loopir"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/openmp"
)

// Ctx is the running context handed to a workload's Setup and Run hooks.
type Ctx struct {
	M       *machine.Machine
	RT      *openmp.Runtime
	Res     *compiler.Result
	Bases   compiler.ArrayMap
	Threads int
}

// WriteF64 initializes one element of a workload array from the host.
// NUMA first-touch is not triggered by host initialization — placement
// happens on first simulated access, as on a freshly faulted page.
func (c *Ctx) WriteF64(array string, i int64, v float64) {
	c.M.Memory().WriteF64(c.Bases[array]+uint64(8*i), v)
}

// WriteI64 initializes one int64 element.
func (c *Ctx) WriteI64(array string, i int64, v int64) {
	c.M.Memory().WriteI64(c.Bases[array]+uint64(8*i), v)
}

// ReadF64 reads back one element after a run.
func (c *Ctx) ReadF64(array string, i int64) float64 {
	return c.M.Memory().ReadF64(c.Bases[array] + uint64(8*i))
}

// ReadI64 reads back one int64 element.
func (c *Ctx) ReadI64(array string, i int64) int64 {
	return c.M.Memory().ReadI64(c.Bases[array] + uint64(8*i))
}

// ParallelFor runs the named compiled parallel function over [0, trip).
func (c *Ctx) ParallelFor(fn string, trip int64, bind openmp.Binder) error {
	cf, ok := c.Res.Funcs[fn]
	if !ok {
		return fmt.Errorf("workload: no compiled function %q", fn)
	}
	return c.RT.ParallelFor(cf.Fn, trip, bind)
}

// Serial runs the named compiled function on the master thread.
func (c *Ctx) Serial(fn string, bind openmp.Binder) error {
	cf, ok := c.Res.Funcs[fn]
	if !ok {
		return fmt.Errorf("workload: no compiled function %q", fn)
	}
	return c.RT.Serial(cf.Fn, bind)
}

// FloatArg returns the register of a float parameter of fn (for binders).
func (c *Ctx) FloatArg(fn, param string) uint8 {
	return c.Res.Funcs[fn].FloatArgs[param]
}

// IntArg returns the register of an int parameter of fn.
func (c *Ctx) IntArg(fn, param string) uint8 {
	return c.Res.Funcs[fn].IntArgs[param]
}

// Workload is one benchmark program.
type Workload struct {
	Name  string
	Prog  *loopir.Program
	Setup func(c *Ctx) error // host-side array initialization
	Run   func(c *Ctx) error // phase driver
	// Verify optionally checks results after Run.
	Verify func(c *Ctx) error
}

// BuildConfig assembles one experiment configuration.
type BuildConfig struct {
	Machine  machine.Config
	Threads  int
	Compiler compiler.Options
	// Affinity pins OpenMP thread i to CPU Affinity[i] (nil = identity).
	// Placement and timing both depend on where threads run, so the
	// field is hashed; omitempty keeps legacy content hashes stable.
	Affinity []int `json:",omitempty"`
	// Cobra, when non-nil, attaches a COBRA runtime with this config.
	Cobra *cobra.Config
	// Obs, when non-nil, threads an observability sink through the whole
	// stack (machine, OpenMP regions, COBRA). Excluded from JSON so
	// scheduler/ledger content hashes are identical with and without
	// observability.
	Obs *obs.Observer `json:"-"`
}

// SMPConfig is a convenience 4-way SMP build configuration.
func SMPConfig(threads int) BuildConfig {
	mc := machine.DefaultConfig(threads)
	return BuildConfig{Machine: mc, Threads: threads, Compiler: compiler.DefaultOptions()}
}

// NUMAConfig is a convenience SGI-Altix-like build configuration.
func NUMAConfig(threads int) BuildConfig {
	mc := machine.DefaultConfig(threads)
	mc.Mem = mem.AltixNUMA(threads)
	return BuildConfig{Machine: mc, Threads: threads, Compiler: compiler.DefaultOptions()}
}

// NUMANodesConfig is an Altix-like build configuration over an explicit —
// possibly asymmetric — node list. The latency model is AltixNUMA's; only
// the shape (and optionally per-node capacity) differs. threads may be
// fewer than the topology's CPUs (idle processors still snoop).
func NUMANodesConfig(threads int, nodes []mem.NodeConfig) BuildConfig {
	total := 0
	for _, n := range nodes {
		total += n.CPUs
	}
	mc := machine.DefaultConfig(total)
	mc.Mem = mem.AltixNUMA(total)
	mc.Mem.Nodes = nodes
	return BuildConfig{Machine: mc, Threads: threads, Compiler: compiler.DefaultOptions()}
}

// Instance is a fully assembled run: machine, binary, runtime, optional
// COBRA.
type Instance struct {
	W     *Workload
	Ctx   *Ctx
	Cobra *cobra.Runtime
}

// Build compiles and wires a workload.
func Build(w *Workload, bc BuildConfig) (*Instance, error) {
	img := ia64.NewImage()
	m, err := machine.New(bc.Machine, img)
	if err != nil {
		return nil, err
	}
	bases, err := compiler.AllocArrays(m.Memory(), w.Prog)
	if err != nil {
		return nil, err
	}
	res, err := compiler.Compile(img, w.Prog, bases, bc.Compiler)
	if err != nil {
		return nil, err
	}
	return assemble(w, bc, m, res, bases)
}

// assemble wires the runtime layers (OpenMP, optional COBRA) around an
// already-compiled machine — shared by Build and BuildCache.
func assemble(w *Workload, bc BuildConfig, m *machine.Machine, res *compiler.Result, bases compiler.ArrayMap) (*Instance, error) {
	rt, err := openmp.NewRuntime(m, bc.Threads)
	if err != nil {
		return nil, err
	}
	if bc.Affinity != nil {
		if err := rt.SetAffinity(bc.Affinity); err != nil {
			return nil, err
		}
	}
	inst := &Instance{
		W:   w,
		Ctx: &Ctx{M: m, RT: rt, Res: res, Bases: bases, Threads: bc.Threads},
	}
	if bc.Obs != nil {
		m.SetObserver(bc.Obs)
		rt.Obs = bc.Obs
		bc.Obs.LabelTracks(m.NumCPUs())
	}
	if bc.Cobra != nil {
		cc := *bc.Cobra
		if cc.Obs == nil {
			cc.Obs = bc.Obs
		}
		cb := cobra.New(m, cc)
		rt.OnFork = cb.MonitorThread
		inst.Cobra = cb
	}
	return inst, nil
}

// Run performs Setup, Run and Verify.
func (inst *Instance) Run() error {
	if inst.W.Setup != nil {
		if err := inst.W.Setup(inst.Ctx); err != nil {
			return fmt.Errorf("%s setup: %w", inst.W.Name, err)
		}
	}
	if err := inst.W.Run(inst.Ctx); err != nil {
		return fmt.Errorf("%s run: %w", inst.W.Name, err)
	}
	if inst.W.Verify != nil {
		if err := inst.W.Verify(inst.Ctx); err != nil {
			return fmt.Errorf("%s verify: %w", inst.W.Name, err)
		}
	}
	return nil
}

// Measurement is what one run reports: the inputs of every figure.
type Measurement struct {
	Name    string
	Threads int
	Cycles  int64        // wall-clock simulated cycles across regions
	Mem     mem.CPUStats // summed memory-system counters
	Cobra   cobra.Stats
}

// Measure runs the instance and collects the metrics.
func (inst *Instance) Measure() (Measurement, error) {
	if err := inst.Run(); err != nil {
		return Measurement{}, err
	}
	mres := Measurement{
		Name:    inst.W.Name,
		Threads: inst.Ctx.Threads,
		Cycles:  inst.Ctx.RT.TotalCycles(),
		Mem:     inst.Ctx.M.Domain().TotalStats(),
	}
	if inst.Cobra != nil {
		mres.Cobra = inst.Cobra.Stats()
	}
	return mres, nil
}

package workload

import (
	"fmt"

	"repro/internal/ia64"
)

// Variant selects the static binary variant of the paper's Figure 3
// methodology. The variants are produced the way the paper produced them —
// by rewriting the compiled prefetch binary, preserving instruction slots —
// rather than by recompiling, so issue timing is identical across variants
// and only the memory behaviour differs.
type Variant uint8

const (
	// VariantPrefetch is the unmodified compiler output (the baseline).
	VariantPrefetch Variant = iota
	// VariantNoPrefetch statically rewrites every lfetch to a NOP ("the
	// lfetch instructions are changed to NOP instructions").
	VariantNoPrefetch
	// VariantExcl statically rewrites to lfetch.excl the prefetches that
	// stream over arrays the containing loop stores to (the load-then-
	// store pattern .excl targets).
	VariantExcl
	// VariantExclAll rewrites every lfetch to lfetch.excl regardless of
	// store behaviour (used by ablations).
	VariantExclAll
)

func (v Variant) String() string {
	switch v {
	case VariantPrefetch:
		return "prefetch"
	case VariantNoPrefetch:
		return "noprefetch"
	case VariantExcl:
		return "prefetch.excl"
	case VariantExclAll:
		return "prefetch.excl-all"
	}
	return "?"
}

// ApplyVariant statically patches the instance's compiled binary into the
// requested variant. It returns the number of rewritten prefetches.
func ApplyVariant(inst *Instance, v Variant) (int, error) {
	if v == VariantPrefetch {
		return 0, nil
	}
	img := inst.Ctx.M.Image()
	n := 0
	for _, cf := range inst.Ctx.Res.Funcs {
		// Build the per-loop stored-array sets for VariantExcl.
		for _, li := range cf.Loops {
			stored := map[string]bool{}
			for _, a := range li.StoredArrays {
				stored[a] = true
			}
			rewrite := func(pcs map[int]string) error {
				for pc, array := range pcs {
					in := img.Fetch(pc)
					if in.Op != ia64.OpLfetch {
						continue
					}
					switch v {
					case VariantNoPrefetch:
						in = ia64.Instr{Op: ia64.OpNop, QP: in.QP}
					case VariantExcl:
						if !stored[array] {
							continue
						}
						in.Hint = ia64.HintExcl
					case VariantExclAll:
						in.Hint = ia64.HintExcl
					}
					if _, err := img.Patch(pc, in); err != nil {
						return fmt.Errorf("workload: variant patch at %d: %w", pc, err)
					}
					n++
				}
				return nil
			}
			if err := rewrite(li.ProloguePCs); err != nil {
				return n, err
			}
			if err := rewrite(li.PrefetchPCs); err != nil {
				return n, err
			}
		}
	}
	return n, nil
}

package workload

import (
	"fmt"

	"repro/internal/ia64"
	"repro/internal/loopir"
)

// PhasedDaxpyParams parameterize the re-adaptation demo workload: an
// AXPY kernel whose behaviour flips mid-run. Phase 1 hammers a small
// cache-resident window of the arrays (aggressive prefetching causes
// coherent misses; COBRA's noprefetch patch wins); phase 2 streams the
// full arrays (prefetching is now essential, the patch regresses, and
// the controller rolls it back). Under StrategyAdaptive one run
// exercises the complete patch lifecycle including the rollback path.
type PhasedDaxpyParams struct {
	// Elems is the per-array element count (default 1<<19: 4 MB each).
	Elems int64
	// WindowElems is the phase-1 window (default 8192: 128 KB).
	WindowElems int64
	// Phase1Reps / Phase2Reps repeat each phase (defaults 150 / 10).
	Phase1Reps int
	Phase2Reps int
	// A is the AXPY scalar (default 0.5).
	A float64
}

func (p PhasedDaxpyParams) withDefaults() PhasedDaxpyParams {
	if p.Elems == 0 {
		p.Elems = 1 << 19
	}
	if p.WindowElems == 0 {
		p.WindowElems = 8192
	}
	if p.Phase1Reps == 0 {
		p.Phase1Reps = 150
	}
	if p.Phase2Reps == 0 {
		p.Phase2Reps = 10
	}
	if p.A == 0 {
		p.A = 0.5
	}
	return p
}

// PhasedDaxpy builds the phase-change workload of the adaptive-daxpy
// example:
//
//	phase 1: Phase1Reps × parallel axpy over [0, WindowElems)
//	phase 2: Phase2Reps × parallel axpy over [0, Elems)
func PhasedDaxpy(p PhasedDaxpyParams) *Workload {
	p = p.withDefaults()
	if p.WindowElems > p.Elems {
		panic(fmt.Sprintf("workload: phased window %d exceeds array %d", p.WindowElems, p.Elems))
	}
	prog := &loopir.Program{
		Name: "phased",
		Arrays: []loopir.Array{
			{Name: "x", Kind: loopir.F64, Elems: p.Elems},
			{Name: "y", Kind: loopir.F64, Elems: p.Elems},
		},
		Funcs: []*loopir.Func{{
			Name:        "axpy",
			Parallel:    true,
			FloatParams: []string{"a"},
			Body: []loopir.Stmt{
				loopir.For{Var: "i", Lo: loopir.V("lo"), Hi: loopir.V("hi"), Body: []loopir.Stmt{
					loopir.FStore{Array: "y", Index: loopir.V("i"),
						Val: loopir.FAdd(loopir.At("y", loopir.V("i")),
							loopir.FMul(loopir.FV("a"), loopir.At("x", loopir.V("i"))))},
				}},
			},
		}},
	}
	return &Workload{
		Name: "phased-daxpy",
		Prog: prog,
		Setup: func(c *Ctx) error {
			for i := int64(0); i < p.Elems; i++ {
				c.WriteF64("x", i, 1)
				c.WriteF64("y", i, 2)
			}
			return nil
		},
		Run: func(c *Ctx) error {
			bind := func(tid int, rf *ia64.RegFile) {
				rf.SetFR(c.FloatArg("axpy", "a"), p.A)
			}
			for rep := 0; rep < p.Phase1Reps; rep++ {
				if err := c.ParallelFor("axpy", p.WindowElems, bind); err != nil {
					return err
				}
			}
			for rep := 0; rep < p.Phase2Reps; rep++ {
				if err := c.ParallelFor("axpy", p.Elems, bind); err != nil {
					return err
				}
			}
			return nil
		},
		Verify: func(c *Ctx) error {
			// y starts at 2 and gains a*x (x ≡ 1) once per rep touching i.
			for _, i := range []int64{0, p.WindowElems - 1, p.WindowElems, p.Elems - 1} {
				reps := p.Phase2Reps
				if i < p.WindowElems {
					reps += p.Phase1Reps
				}
				want := 2 + float64(reps)*p.A
				if got := c.ReadF64("y", i); got != want {
					return fmt.Errorf("phased-daxpy: y[%d] = %v, want %v", i, got, want)
				}
			}
			return nil
		},
	}
}

package workload

import (
	"fmt"

	"repro/internal/ia64"
	"repro/internal/loopir"
)

// DaxpyParams parameterize the paper's Figure 1 kernel: an outer repeat
// loop around an OpenMP parallel-for DAXPY. WorkingSetBytes covers both
// arrays (x and y), as in the paper's working-set axis.
type DaxpyParams struct {
	WorkingSetBytes int64
	OuterReps       int
	A               float64
}

// Elems returns the per-array element count for the working set.
func (p DaxpyParams) Elems() int64 { return p.WorkingSetBytes / (2 * loopir.ElemBytes) }

// Daxpy builds the Figure 1 workload:
//
//	for (j=0; j<reps; j++)
//	  #pragma omp parallel for
//	  for (i=0; i<N; i++) y[i] = y[i] + a*x[i];
func Daxpy(p DaxpyParams) *Workload {
	n := p.Elems()
	if n <= 0 {
		panic(fmt.Sprintf("workload: bad DAXPY working set %d", p.WorkingSetBytes))
	}
	if p.A == 0 {
		p.A = 2.0
	}
	prog := &loopir.Program{
		Name: "daxpy",
		Arrays: []loopir.Array{
			{Name: "x", Kind: loopir.F64, Elems: n},
			{Name: "y", Kind: loopir.F64, Elems: n},
		},
		Funcs: []*loopir.Func{{
			Name:        "daxpy_body",
			Parallel:    true,
			FloatParams: []string{"a"},
			Body: []loopir.Stmt{
				loopir.For{Var: "i", Lo: loopir.V("lo"), Hi: loopir.V("hi"), Body: []loopir.Stmt{
					loopir.FStore{Array: "y", Index: loopir.V("i"),
						Val: loopir.FAdd(loopir.At("y", loopir.V("i")),
							loopir.FMul(loopir.FV("a"), loopir.At("x", loopir.V("i"))))},
				}},
			},
		}},
	}
	return &Workload{
		Name: "daxpy",
		Prog: prog,
		Setup: func(c *Ctx) error {
			for i := int64(0); i < n; i++ {
				c.WriteF64("x", i, float64(i%97))
				c.WriteF64("y", i, float64(i%53))
			}
			return nil
		},
		Run: func(c *Ctx) error {
			for rep := 0; rep < p.OuterReps; rep++ {
				err := c.ParallelFor("daxpy_body", n, func(tid int, rf *ia64.RegFile) {
					rf.SetFR(c.FloatArg("daxpy_body", "a"), p.A)
				})
				if err != nil {
					return err
				}
			}
			return nil
		},
		Verify: func(c *Ctx) error {
			// Spot-check: y[i] = y0 + reps*a*x0.
			for _, i := range []int64{0, 1, n / 2, n - 1} {
				want := float64(i%53) + float64(p.OuterReps)*p.A*float64(i%97)
				if got := c.ReadF64("y", i); got != want {
					return fmt.Errorf("daxpy: y[%d] = %v, want %v", i, got, want)
				}
			}
			return nil
		},
	}
}

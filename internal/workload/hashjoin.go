package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/ia64"
	"repro/internal/loopir"
)

// HashJoinParams parameterize the hash-join probe workload: an
// open-addressing hash table built on the host, probed from the simulated
// kernel with linear probing. The probe walk is data-dependent — the next
// slot address comes out of a comparison against a just-loaded key — so
// the delinquent loads are exactly the kind DEAR sampling surfaces and
// compiler prefetching cannot cover.
type HashJoinParams struct {
	// Slots is the hash-table size, a power of two (default 1<<15).
	Slots int64
	// Probes is the number of probe keys per repetition (default 1<<14).
	Probes int64
	// Reps repeats the probe region (default 4).
	Reps int
	// Seed drives key generation (default 1).
	Seed int64
}

func (p HashJoinParams) WithDefaults() HashJoinParams {
	if p.Slots == 0 {
		p.Slots = 1 << 15
	}
	if p.Probes == 0 {
		p.Probes = 1 << 14
	}
	if p.Reps == 0 {
		p.Reps = 4
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	return p
}

// joinMaxThreads sizes the per-thread result array.
const joinMaxThreads = 64

// joinTable builds the host-side table at 50% load factor plus the probe
// key sequence. Keys are distinct and >= 1; empty slots hold 0. Every
// probe key is present in the table, which is what guarantees the
// simulated linear-probe While loop terminates. Pure function of params.
func joinTable(p HashJoinParams) (htkey, htval, probe []int64) {
	htkey = make([]int64, p.Slots)
	htval = make([]int64, p.Slots)
	rng := rand.New(rand.NewSource(p.Seed))
	mask := p.Slots - 1
	inserted := make([]int64, 0, p.Slots/2)
	used := make(map[int64]bool, p.Slots/2)
	for int64(len(inserted)) < p.Slots/2 {
		k := rng.Int63n(1<<30-1) + 1
		if used[k] {
			continue
		}
		used[k] = true
		h := k & mask
		for htkey[h] != 0 {
			h = (h + 1) & mask
		}
		htkey[h] = k
		htval[h] = k*3 + 1
		inserted = append(inserted, k)
	}
	probe = make([]int64, p.Probes)
	for j := range probe {
		probe[j] = inserted[rng.Intn(len(inserted))]
	}
	return htkey, htval, probe
}

// joinOracle computes the expected per-thread payload sums under the
// OpenMP static schedule (contiguous chunks of ceil(probes/nthreads)).
func joinOracle(p HashJoinParams, nthreads int) []int64 {
	_, _, probe := joinTable(p)
	sums := make([]int64, nthreads)
	chunk := (p.Probes + int64(nthreads) - 1) / int64(nthreads)
	for t := 0; t < nthreads; t++ {
		lo, hi := int64(t)*chunk, (int64(t)+1)*chunk
		if hi > p.Probes {
			hi = p.Probes
		}
		for j := lo; j < hi; j++ {
			sums[t] += probe[j]*3 + 1 // htval of a present key is key*3+1
		}
	}
	return sums
}

// HashJoin builds the probe-side hash-join workload:
//
//	for (j = lo; j < hi; j++) {
//	  k = probe[j];
//	  h = (k & mask) - 1;
//	  do { h = (h + 1) & mask; } while (htkey[h] != k);  // linear probe
//	  out += htval[h];
//	}
//	res[tid] = out;
//
// The table is read-shared across threads; there is no store traffic in
// the probe loop, so the region exposes latency-bound irregular gathers
// rather than coherence pressure.
func HashJoin(p HashJoinParams) *Workload {
	p = p.WithDefaults()
	if p.Slots&(p.Slots-1) != 0 {
		panic(fmt.Sprintf("workload: hashjoin Slots %d not a power of two", p.Slots))
	}
	mask := loopir.I(p.Slots - 1)
	prog := &loopir.Program{
		Name: "hashjoin",
		Arrays: []loopir.Array{
			{Name: "htkey", Kind: loopir.I64, Elems: p.Slots},
			{Name: "htval", Kind: loopir.I64, Elems: p.Slots},
			{Name: "probe", Kind: loopir.I64, Elems: p.Probes},
			{Name: "res", Kind: loopir.I64, Elems: joinMaxThreads},
		},
		Funcs: []*loopir.Func{{
			Name:     "join",
			Parallel: true,
			Body: []loopir.Stmt{
				loopir.SetI{Name: "out", Val: loopir.I(0)},
				loopir.For{Var: "j", Lo: loopir.V("lo"), Hi: loopir.V("hi"), Body: []loopir.Stmt{
					loopir.SetI{Name: "k", Val: loopir.IAt("probe", loopir.V("j"))},
					// Pre-decrement so the do-while's unconditional first
					// advance lands on k & mask.
					loopir.SetI{Name: "h", Val: loopir.ISub(loopir.IAnd(loopir.V("k"), mask), loopir.I(1))},
					loopir.While{
						Body: []loopir.Stmt{
							loopir.SetI{Name: "h", Val: loopir.IAnd(loopir.IAdd(loopir.V("h"), loopir.I(1)), mask)},
						},
						Cond: loopir.Cond{Rel: loopir.NE, A: loopir.IAt("htkey", loopir.V("h")), B: loopir.V("k")},
					},
					loopir.SetI{Name: "out", Val: loopir.IAdd(loopir.V("out"), loopir.IAt("htval", loopir.V("h")))},
				}},
				loopir.IStore{Array: "res", Index: loopir.V("tid"), Val: loopir.V("out")},
			},
		}},
	}
	return &Workload{
		Name: "hashjoin",
		Prog: prog,
		Setup: func(c *Ctx) error {
			if c.Threads > joinMaxThreads {
				return fmt.Errorf("hashjoin: %d threads exceed %d res slots", c.Threads, joinMaxThreads)
			}
			htkey, htval, probe := joinTable(p)
			for i := int64(0); i < p.Slots; i++ {
				c.WriteI64("htkey", i, htkey[i])
				c.WriteI64("htval", i, htval[i])
			}
			for j, k := range probe {
				c.WriteI64("probe", int64(j), k)
			}
			return nil
		},
		Run: func(c *Ctx) error {
			for rep := 0; rep < p.Reps; rep++ {
				if err := c.ParallelFor("join", p.Probes, func(tid int, rf *ia64.RegFile) {}); err != nil {
					return err
				}
			}
			return nil
		},
		Verify: func(c *Ctx) error {
			for t, want := range joinOracle(p, c.Threads) {
				if got := c.ReadI64("res", int64(t)); got != want {
					return fmt.Errorf("hashjoin: res[%d] = %d, want %d", t, got, want)
				}
			}
			return nil
		},
	}
}

package workload

import (
	"testing"

	"repro/internal/ia64"
)

func tinyDaxpy() *Workload {
	return Daxpy(DaxpyParams{WorkingSetBytes: 32 << 10, OuterReps: 4})
}

func countLfetch(inst *Instance) int {
	img := inst.Ctx.M.Image()
	return img.OpCount(0, img.Len(), func(in ia64.Instr) bool { return in.Op == ia64.OpLfetch })
}

func TestBuildCacheCompilesOnce(t *testing.T) {
	c := NewBuildCache()
	bc := SMPConfig(2)

	inst1, err := c.Build("daxpy-test", tinyDaxpy(), bc)
	if err != nil {
		t.Fatal(err)
	}
	inst2, err := c.Build("daxpy-test", tinyDaxpy(), bc)
	if err != nil {
		t.Fatal(err)
	}
	if hits, misses := c.Stats(); hits != 1 || misses != 1 {
		t.Fatalf("stats = %d hits / %d misses, want 1/1", hits, misses)
	}

	m1, err := inst1.Measure()
	if err != nil {
		t.Fatal(err)
	}
	m2, err := inst2.Measure()
	if err != nil {
		t.Fatal(err)
	}
	if m1 != m2 {
		t.Fatalf("cached instances diverge:\n%+v\n%+v", m1, m2)
	}

	// The cache must be transparent: same measurement as an uncached build.
	plain, err := Build(tinyDaxpy(), bc)
	if err != nil {
		t.Fatal(err)
	}
	mp, err := plain.Measure()
	if err != nil {
		t.Fatal(err)
	}
	if m1 != mp {
		t.Fatalf("cached build diverges from plain Build:\n%+v\n%+v", m1, mp)
	}
}

func TestBuildCacheInstancesAreIsolated(t *testing.T) {
	c := NewBuildCache()
	bc := SMPConfig(2)

	inst1, err := c.Build("daxpy-test", tinyDaxpy(), bc)
	if err != nil {
		t.Fatal(err)
	}
	before := countLfetch(inst1)
	if before == 0 {
		t.Fatal("compiled DAXPY has no prefetches")
	}
	// Statically patching one instance (the Figure 3 methodology) must not
	// leak into later instances stamped from the same artifact.
	if _, err := ApplyVariant(inst1, VariantNoPrefetch); err != nil {
		t.Fatal(err)
	}
	if got := countLfetch(inst1); got != 0 {
		t.Fatalf("variant left %d prefetches in patched instance", got)
	}
	inst2, err := c.Build("daxpy-test", tinyDaxpy(), bc)
	if err != nil {
		t.Fatal(err)
	}
	if got := countLfetch(inst2); got != before {
		t.Fatalf("fresh instance has %d prefetches, want pristine %d", got, before)
	}
}

func TestBuildCacheKeySeparatesConfigs(t *testing.T) {
	c := NewBuildCache()
	if _, err := c.Build("daxpy-test", tinyDaxpy(), SMPConfig(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Build("daxpy-test", tinyDaxpy(), SMPConfig(4)); err != nil {
		t.Fatal(err)
	}
	nopf := SMPConfig(1)
	nopf.Compiler.Prefetch = false
	if _, err := c.Build("daxpy-test", tinyDaxpy(), nopf); err != nil {
		t.Fatal(err)
	}
	if hits, misses := c.Stats(); hits != 0 || misses != 3 {
		t.Fatalf("stats = %d hits / %d misses, want 0/3", hits, misses)
	}
}

package workload

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/machine"
	"repro/internal/mem"
)

// irregularCases are the three irregular kernels at test-sized parameters,
// rebuilt fresh per cell (workload closures hold per-instance state).
func irregularCases() []struct {
	name  string
	build func() *Workload
} {
	return []struct {
		name  string
		build func() *Workload
	}{
		{"pointerchase", func() *Workload {
			return PointerChase(PointerChaseParams{Nodes: 1 << 11, Steps: 1 << 10, Reps: 2})
		}},
		{"hashjoin", func() *Workload {
			return HashJoin(HashJoinParams{Slots: 1 << 11, Probes: 1 << 10, Reps: 2})
		}},
		{"spmv", func() *Workload {
			return Spmv(SpmvParams{Rows: 256, Cols: 256, NNZPerRow: 4, Reps: 2})
		}},
	}
}

// TestIrregularWorkloadsVerify: each irregular kernel passes its
// self-check (build-time checksum oracle) on the SMP and on an asymmetric
// NUMA shape, at 1 and 4 worker threads. The oracle recomputes the result
// host-side per thread count, so a pass means the simulated kernel's
// checksums are identical to the host's for every cell.
func TestIrregularWorkloadsVerify(t *testing.T) {
	asym := []mem.NodeConfig{{CPUs: 1}, {CPUs: 3}}
	for _, tc := range irregularCases() {
		for _, threads := range []int{1, 4} {
			for _, shape := range []string{"smp", "numa-asym"} {
				t.Run(fmt.Sprintf("%s/%s/t%d", tc.name, shape, threads), func(t *testing.T) {
					bc := SMPConfig(threads)
					if shape == "numa-asym" {
						bc = NUMANodesConfig(threads, asym)
					}
					inst, err := Build(tc.build(), bc)
					if err != nil {
						t.Fatal(err)
					}
					if err := inst.Run(); err != nil {
						t.Fatal(err)
					}
				})
			}
		}
	}
}

// TestIrregularParallelSimByteIdentical: the parallel window engine must
// reproduce the serial engine's measurement — cycles and every memory
// counter — bit for bit on the irregular kernels, whose data-dependent
// access streams are the hardest case for windowed replay.
func TestIrregularParallelSimByteIdentical(t *testing.T) {
	for _, tc := range irregularCases() {
		t.Run(tc.name, func(t *testing.T) {
			serial := NUMAConfig(4)
			ms, err := measure(tc.build(), serial)
			if err != nil {
				t.Fatal(err)
			}
			parallel := NUMAConfig(4)
			parallel.Machine.SimWorkers = 4
			mp, err := measure(tc.build(), parallel)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(ms, mp) {
				t.Fatalf("parallel-sim diverged:\nserial:   %+v\nparallel: %+v", ms, mp)
			}
		})
	}
}

func measure(w *Workload, bc BuildConfig) (Measurement, error) {
	inst, err := Build(w, bc)
	if err != nil {
		return Measurement{}, err
	}
	return inst.Measure()
}

// TestIrregularAffinityPreservesResults: pinning threads to reversed CPUs
// relocates every thread (different caches, different NUMA nodes) but the
// kernels' checksums — which depend only on thread ids — must still pass.
func TestIrregularAffinityPreservesResults(t *testing.T) {
	for _, tc := range irregularCases() {
		t.Run(tc.name, func(t *testing.T) {
			bc := NUMANodesConfig(4, []mem.NodeConfig{{CPUs: 2}, {CPUs: 2}})
			bc.Affinity = []int{3, 2, 1, 0}
			inst, err := Build(tc.build(), bc)
			if err != nil {
				t.Fatal(err)
			}
			if err := inst.Run(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestIrregularMigrationPreservesResults: a mid-run CPU-to-node remap
// changes access latencies from that cycle on, never values.
func TestIrregularMigrationPreservesResults(t *testing.T) {
	for _, tc := range irregularCases() {
		t.Run(tc.name, func(t *testing.T) {
			bc := NUMANodesConfig(4, []mem.NodeConfig{{CPUs: 2}, {CPUs: 2}})
			bc.Machine.Migrations = []machine.Migration{{AtCycle: 10_000, CPU: 0, Node: 1}}
			inst, err := Build(tc.build(), bc)
			if err != nil {
				t.Fatal(err)
			}
			if err := inst.Run(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

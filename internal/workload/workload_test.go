package workload

import "testing"

func TestDaxpyRunsAndVerifies(t *testing.T) {
	w := Daxpy(DaxpyParams{WorkingSetBytes: 32 << 10, OuterReps: 3})
	inst, err := Build(w, SMPConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestDaxpyMeasure(t *testing.T) {
	w := Daxpy(DaxpyParams{WorkingSetBytes: 32 << 10, OuterReps: 2})
	inst, err := Build(w, SMPConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	mres, err := inst.Measure()
	if err != nil {
		t.Fatal(err)
	}
	if mres.Cycles <= 0 {
		t.Fatal("no cycles measured")
	}
	if mres.Mem.Loads == 0 || mres.Mem.Stores == 0 {
		t.Fatalf("no memory traffic: %+v", mres.Mem)
	}
	if mres.Threads != 4 {
		t.Fatalf("threads = %d", mres.Threads)
	}
}

func TestDaxpyDeterministicCycles(t *testing.T) {
	run := func() int64 {
		w := Daxpy(DaxpyParams{WorkingSetBytes: 64 << 10, OuterReps: 2})
		inst, err := Build(w, SMPConfig(2))
		if err != nil {
			t.Fatal(err)
		}
		m, err := inst.Measure()
		if err != nil {
			t.Fatal(err)
		}
		return m.Cycles
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("non-deterministic: %d vs %d", a, b)
	}
}

func TestNUMAConfigBuilds(t *testing.T) {
	w := Daxpy(DaxpyParams{WorkingSetBytes: 32 << 10, OuterReps: 1})
	inst, err := Build(w, NUMAConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Run(); err != nil {
		t.Fatal(err)
	}
	if inst.Ctx.M.Domain().Config().NUMA != true {
		t.Fatal("NUMA config not applied")
	}
}

func TestMoreThreadsFinishFaster(t *testing.T) {
	cycles := func(threads int) int64 {
		w := Daxpy(DaxpyParams{WorkingSetBytes: 256 << 10, OuterReps: 2})
		inst, err := Build(w, SMPConfig(threads))
		if err != nil {
			t.Fatal(err)
		}
		m, err := inst.Measure()
		if err != nil {
			t.Fatal(err)
		}
		return m.Cycles
	}
	c1, c4 := cycles(1), cycles(4)
	if c4 >= c1 {
		t.Fatalf("4-thread run (%d cycles) not faster than 1-thread (%d)", c4, c1)
	}
}

package workload

import (
	"testing"

	"repro/internal/ia64"
)

func buildDaxpyInst(t *testing.T) *Instance {
	t.Helper()
	w := Daxpy(DaxpyParams{WorkingSetBytes: 32 << 10, OuterReps: 2})
	inst, err := Build(w, SMPConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func countHints(inst *Instance, hint ia64.Hint) int {
	img := inst.Ctx.M.Image()
	n := 0
	for pc := 0; pc < img.Len(); pc++ {
		if in := img.Fetch(pc); in.Op == ia64.OpLfetch && in.Hint == hint {
			n++
		}
	}
	return n
}

func TestVariantPrefetchIsIdentity(t *testing.T) {
	inst := buildDaxpyInst(t)
	before := inst.Ctx.M.Image().Generation()
	n, err := ApplyVariant(inst, VariantPrefetch)
	if err != nil || n != 0 {
		t.Fatalf("ApplyVariant(prefetch) = %d, %v", n, err)
	}
	if inst.Ctx.M.Image().Generation() != before {
		t.Fatal("identity variant touched the binary")
	}
}

func TestVariantNoPrefetchRemovesAllLfetch(t *testing.T) {
	inst := buildDaxpyInst(t)
	total := countHints(inst, ia64.HintNT1)
	if total == 0 {
		t.Fatal("no lfetch in the compiled binary")
	}
	n, err := ApplyVariant(inst, VariantNoPrefetch)
	if err != nil {
		t.Fatal(err)
	}
	if n != total {
		t.Fatalf("rewrote %d of %d lfetch sites", n, total)
	}
	if left := countHints(inst, ia64.HintNT1); left != 0 {
		t.Fatalf("%d lfetch sites survived", left)
	}
	// Slot-preserving: the image length is unchanged (NOPs, not deletes).
	if err := inst.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestVariantExclTargetsStoredStreamsOnly(t *testing.T) {
	inst := buildDaxpyInst(t)
	n, err := ApplyVariant(inst, VariantExcl)
	if err != nil {
		t.Fatal(err)
	}
	excl := countHints(inst, ia64.HintExcl)
	nt1 := countHints(inst, ia64.HintNT1)
	if excl != n || excl == 0 {
		t.Fatalf("excl sites = %d (reported %d)", excl, n)
	}
	// DAXPY stores only y: the x stream must keep .nt1, so both hints
	// coexist and in equal numbers (one prologue+steady set per array).
	if nt1 == 0 || nt1 != excl {
		t.Fatalf("nt1 = %d, excl = %d; want equal split between x and y", nt1, excl)
	}
	if err := inst.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestVariantExclAllConvertsEverything(t *testing.T) {
	inst := buildDaxpyInst(t)
	n, err := ApplyVariant(inst, VariantExclAll)
	if err != nil {
		t.Fatal(err)
	}
	if countHints(inst, ia64.HintNT1) != 0 {
		t.Fatal("nt1 prefetches survived excl-all")
	}
	if countHints(inst, ia64.HintExcl) != n {
		t.Fatal("excl count mismatch")
	}
}

func TestVariantIdempotent(t *testing.T) {
	inst := buildDaxpyInst(t)
	if _, err := ApplyVariant(inst, VariantNoPrefetch); err != nil {
		t.Fatal(err)
	}
	n, err := ApplyVariant(inst, VariantNoPrefetch)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("second application rewrote %d sites", n)
	}
}

func TestVariantNames(t *testing.T) {
	for v, want := range map[Variant]string{
		VariantPrefetch:   "prefetch",
		VariantNoPrefetch: "noprefetch",
		VariantExcl:       "prefetch.excl",
		VariantExclAll:    "prefetch.excl-all",
	} {
		if v.String() != want {
			t.Errorf("%d.String() = %q, want %q", v, v.String(), want)
		}
	}
}

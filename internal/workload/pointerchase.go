package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/ia64"
	"repro/internal/loopir"
)

// PointerChaseParams parameterize the pointer-chasing list traversal —
// the canonical irregular workload where hardware-oblivious prefetching
// buys nothing on the chased stream (the next address is unknowable until
// the load retires) while the compiler still emits lfetch for the one
// affine side-stream, giving the optimizer real slots to judge.
//
// Each OpenMP thread owns the list nodes whose index is congruent to its
// id modulo the thread count and chases a seeded random cycle through
// them, bumping a payload word per visit. Neighbouring payload words
// belong to different threads, so a 128-byte coherence line is written by
// up to 16 threads — false sharing that generates exactly the coherent
// miss pressure COBRA's trigger watches for.
type PointerChaseParams struct {
	// Nodes is the total list length across threads (default 1<<15).
	Nodes int64
	// Steps is the chase length per thread per repetition (default 1<<14).
	Steps int64
	// Reps repeats the chase region (default 6) so the optimizer sees
	// several judgement windows.
	Reps int
	// Seed drives the per-thread cycle shuffle (default 1).
	Seed int64
}

func (p PointerChaseParams) WithDefaults() PointerChaseParams {
	if p.Nodes == 0 {
		p.Nodes = 1 << 15
	}
	if p.Steps == 0 {
		p.Steps = 1 << 14
	}
	if p.Reps == 0 {
		p.Reps = 6
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	return p
}

// chaseMaxThreads sizes the per-thread start/result arrays: one slot per
// CPU the largest declarable topology carries.
const chaseMaxThreads = 64

// chaseCycles builds the per-thread chase cycles: for every thread t of
// nthreads, a seeded shuffle of the node indices {i : i mod nthreads == t}
// linked into one cycle. Returns next[] and the per-thread start node.
// Pure function of (params, nthreads) — the simulated initialization and
// the host oracle both derive from it, which is what makes the kernel
// self-checking.
func chaseCycles(p PointerChaseParams, nthreads int) (next []int64, start []int64) {
	next = make([]int64, p.Nodes)
	start = make([]int64, nthreads)
	rng := rand.New(rand.NewSource(p.Seed))
	for t := 0; t < nthreads; t++ {
		var own []int64
		for i := int64(t); i < p.Nodes; i += int64(nthreads) {
			own = append(own, i)
		}
		rng.Shuffle(len(own), func(a, b int) { own[a], own[b] = own[b], own[a] })
		for k, node := range own {
			next[node] = own[(k+1)%len(own)]
		}
		start[t] = own[0]
	}
	return next, start
}

// chaseOracle host-executes the kernel: expected per-thread checksum and
// the per-node visit count of one repetition.
func chaseOracle(p PointerChaseParams, nthreads int) (sums []int64, visits []int64) {
	next, start := chaseCycles(p, nthreads)
	sums = make([]int64, nthreads)
	visits = make([]int64, p.Nodes)
	for t := 0; t < nthreads; t++ {
		cur := start[t]
		var sum int64
		for s := int64(0); s < p.Steps; s++ {
			cur = next[cur]
			visits[cur]++
			sum += cur + weightAt(s)
		}
		sums[t] = sum
	}
	return sums, visits
}

// weightAt is the affine side-stream's element value — shared between the
// simulated initialization and the host oracle.
func weightAt(s int64) int64 { return (s*7 + 3) % 101 }

// PointerChase builds the irregular list-traversal workload:
//
//	#pragma omp parallel (one chase per thread)
//	for (s = 0; s < steps; s++) {
//	  cur = next[cur];        // dependent load — unprefetchable
//	  pay[cur]++;             // falsely-shared payload write
//	  sum += cur + weight[s]; // affine stream — the lfetch slots
//	}
//	res[tid] = sum;
func PointerChase(p PointerChaseParams) *Workload {
	p = p.WithDefaults()
	prog := &loopir.Program{
		Name: "pointerchase",
		Arrays: []loopir.Array{
			{Name: "next", Kind: loopir.I64, Elems: p.Nodes},
			{Name: "pay", Kind: loopir.I64, Elems: p.Nodes},
			{Name: "weight", Kind: loopir.I64, Elems: p.Steps},
			{Name: "start", Kind: loopir.I64, Elems: chaseMaxThreads},
			{Name: "res", Kind: loopir.I64, Elems: chaseMaxThreads},
		},
		Funcs: []*loopir.Func{{
			Name:     "chase",
			Parallel: true,
			Body: []loopir.Stmt{
				// trip == nthreads, so each thread's chunk is exactly its
				// own id; the outer For keeps that robust for any chunking.
				loopir.For{Var: "t", Lo: loopir.V("lo"), Hi: loopir.V("hi"), Body: []loopir.Stmt{
					loopir.SetI{Name: "cur", Val: loopir.IAt("start", loopir.V("t"))},
					loopir.SetI{Name: "sum", Val: loopir.I(0)},
					loopir.For{Var: "s", Lo: loopir.I(0), Hi: loopir.I(p.Steps), Hint: loopir.HintCounted, Body: []loopir.Stmt{
						loopir.SetI{Name: "cur", Val: loopir.IAt("next", loopir.V("cur"))},
						loopir.IStore{Array: "pay", Index: loopir.V("cur"),
							Val: loopir.IAdd(loopir.IAt("pay", loopir.V("cur")), loopir.I(1))},
						loopir.SetI{Name: "sum",
							Val: loopir.IAdd(loopir.V("sum"),
								loopir.IAdd(loopir.V("cur"), loopir.IAt("weight", loopir.V("s"))))},
					}},
					loopir.IStore{Array: "res", Index: loopir.V("t"), Val: loopir.V("sum")},
				}},
			},
		}},
	}
	return &Workload{
		Name: "pointerchase",
		Prog: prog,
		Setup: func(c *Ctx) error {
			if c.Threads > chaseMaxThreads {
				return fmt.Errorf("pointerchase: %d threads exceed %d start/res slots", c.Threads, chaseMaxThreads)
			}
			next, start := chaseCycles(p, c.Threads)
			for i, v := range next {
				c.WriteI64("next", int64(i), v)
			}
			for t, v := range start {
				c.WriteI64("start", int64(t), v)
			}
			for s := int64(0); s < p.Steps; s++ {
				c.WriteI64("weight", s, weightAt(s))
			}
			// pay starts zeroed (fresh memory reads as zero).
			return nil
		},
		Run: func(c *Ctx) error {
			for rep := 0; rep < p.Reps; rep++ {
				if err := c.ParallelFor("chase", int64(c.Threads), func(tid int, rf *ia64.RegFile) {}); err != nil {
					return err
				}
			}
			return nil
		},
		Verify: func(c *Ctx) error {
			sums, visits := chaseOracle(p, c.Threads)
			for t, want := range sums {
				if got := c.ReadI64("res", int64(t)); got != want {
					return fmt.Errorf("pointerchase: res[%d] = %d, want %d", t, got, want)
				}
			}
			var wantSum, gotSum int64
			for i := int64(0); i < p.Nodes; i++ {
				wantSum += int64(p.Reps) * visits[i] * (i + 1)
				gotSum += c.ReadI64("pay", i) * (i + 1)
			}
			if gotSum != wantSum {
				return fmt.Errorf("pointerchase: pay checksum %d, want %d", gotSum, wantSum)
			}
			return nil
		},
	}
}

package workload

import (
	"maps"
	"sync"
	"sync/atomic"

	"repro/internal/compiler"
	"repro/internal/ia64"
	"repro/internal/machine"
	"repro/internal/sched"
)

// BuildCache compiles each (workload, build configuration) pair once per
// process and stamps out independent Instances from the cached artifact.
// An experiment sweep runs the same binary under many strategies and
// thread counts; without the cache every cell recompiles the program from
// IR (as icc would), with it the compiled image is cloned per cell —
// the multi-version "compile once, instantiate many" pattern of binary
// optimizer harnesses.
//
// The cached artifact is the pristine compiled image plus the compiler's
// metadata; it is never executed or patched itself. Each Build clones the
// image, so concurrent instances (including COBRA patching at run time)
// share no mutable state. The compiler result and base addresses are
// shared read-only.
type BuildCache struct {
	mu      sync.Mutex
	entries map[string]*cacheEntry
	hits    atomic.Int64
	misses  atomic.Int64
}

type cacheEntry struct {
	once sync.Once
	art  *artifact
	err  error
}

// artifact is one compiled program: everything deterministic about a
// (workload, config) pair that does not involve execution.
type artifact struct {
	img   *ia64.Image      // pristine; cloned for every instance
	res   *compiler.Result // read-only after compilation
	bases compiler.ArrayMap
}

// NewBuildCache returns an empty cache.
func NewBuildCache() *BuildCache {
	return &BuildCache{entries: map[string]*cacheEntry{}}
}

// Stats reports cache activity: hits are instances served from a cached
// artifact, misses are compilations performed.
func (c *BuildCache) Stats() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}

// Build assembles an Instance like the package-level Build, compiling at
// most once per (workloadKey, machine, threads, compiler options).
// workloadKey must uniquely identify the program content of w: two calls
// with the same key and config are assumed to compile to identical
// binaries (true of every workload in this repo — program generation is a
// pure function of its parameters). The COBRA config is deliberately not
// part of the cache key: it only affects the run-time harness, never the
// compiled binary.
func (c *BuildCache) Build(workloadKey string, w *Workload, bc BuildConfig) (*Instance, error) {
	key := workloadKey + "\x00" + sched.KeyOf(bc.Machine, bc.Threads, bc.Compiler)
	c.mu.Lock()
	e := c.entries[key]
	if e == nil {
		e = &cacheEntry{}
		c.entries[key] = e
	}
	c.mu.Unlock()

	compiled := false
	e.once.Do(func() {
		compiled = true
		c.misses.Add(1)
		e.art, e.err = compileArtifact(w, bc)
	})
	if e.err != nil {
		return nil, e.err
	}
	if !compiled {
		c.hits.Add(1)
	}

	img := e.art.img.Clone()
	m, err := machine.New(bc.Machine, img)
	if err != nil {
		return nil, err
	}
	bases, err := compiler.AllocArrays(m.Memory(), w.Prog)
	if err != nil {
		return nil, err
	}
	if !maps.Equal(bases, e.art.bases) {
		// Array layout drifted from the cached compile (a workloadKey
		// collision): the cached code's embedded addresses are wrong for
		// this memory image, so compile fresh.
		return Build(w, bc)
	}
	return assemble(w, bc, m, e.art.res, bases)
}

// compileArtifact compiles w into a pristine image. The machine built here
// exists only to reproduce the deterministic array allocation; it is
// discarded, and the image is never executed.
func compileArtifact(w *Workload, bc BuildConfig) (*artifact, error) {
	img := ia64.NewImage()
	m, err := machine.New(bc.Machine, img)
	if err != nil {
		return nil, err
	}
	bases, err := compiler.AllocArrays(m.Memory(), w.Prog)
	if err != nil {
		return nil, err
	}
	res, err := compiler.Compile(img, w.Prog, bases, bc.Compiler)
	if err != nil {
		return nil, err
	}
	return &artifact{img: img, res: res, bases: bases}, nil
}

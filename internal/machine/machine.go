// Package machine executes IA-64-like binaries on a simulated Itanium 2
// multiprocessor: each CPU is an in-order functional+timing model running
// against the coherent memory system of internal/mem, with a per-CPU
// performance monitoring unit (internal/hpm) fed by every retired
// instruction and memory transaction.
//
// The multiprocessor advances deterministically: a causal engine always
// steps the CPU with the smallest local cycle count, so coherence
// interactions between CPUs are ordered identically on every run and every
// reported figure is exactly reproducible.
package machine

import (
	"fmt"

	"repro/internal/hpm"
	"repro/internal/ia64"
	"repro/internal/mem"
	"repro/internal/obs"
)

// Config describes one simulated machine.
type Config struct {
	Mem mem.Config

	// SampleOverhead is charged to a CPU's cycle clock each time its PMU
	// delivers a sample, modelling the perfmon interrupt plus COBRA's
	// monitoring-thread copy into the User Sampling Buffer.
	SampleOverhead int64

	// MaxInstrPerRun bounds a single RunAll invocation; exceeded means a
	// runaway loop in generated code (0 = default of 4e9).
	MaxInstrPerRun int64

	// SimWorkers is the number of host worker goroutines that shard per-CPU
	// execution inside RunAll using bounded-window lockstep (parallel.go);
	// 0 or 1 selects the serial causal engine. Both engines produce
	// byte-identical simulations, so the field is excluded from JSON: a
	// session's scheduler/ledger content hash must not depend on which
	// engine ran it, and every historical hash is preserved.
	SimWorkers int `json:"-"`

	// Migrations schedules mid-run affinity changes: at AtCycle the CPU's
	// NUMA node mapping is remapped to Node, modelling an OS scheduler
	// migrating a pinned thread across nodes. Migration changes simulated
	// timing (and, through first-touch, page homes), so — unlike
	// SimWorkers — it is part of the scenario and contributes to content
	// hashes; omitempty keeps every migration-free legacy hash stable.
	Migrations []Migration `json:",omitempty"`
}

// Migration is one scheduled affinity change (see Config.Migrations).
type Migration struct {
	AtCycle int64
	CPU     int
	Node    int
}

// DefaultConfig returns a machine matching the paper's 4-way SMP server.
func DefaultConfig(numCPUs int) Config {
	return Config{
		Mem:            mem.Itanium2SMP(numCPUs),
		SampleOverhead: 200,
	}
}

// Timer is a recurring simulated-time callback — the mechanism by which the
// COBRA optimization thread is scheduled. Fn runs when global simulated
// time reaches NextAt and returns the next firing time (or a value <= now
// to cancel).
type Timer struct {
	NextAt int64
	Fn     func(now int64) int64
}

// Machine is one simulated multiprocessor running one program image.
type Machine struct {
	cfg    Config
	img    *ia64.Image
	memory *mem.Memory
	dom    *mem.Domain
	cpus   []*CPU
	timers []*Timer

	// timerNext caches the earliest pending Timer.NextAt (0 when none), so
	// the per-step dispatch check in RunAll is a single comparison instead
	// of a scan of the timer list.
	timerNext int64

	// obs is the optional observability sink; nil means disabled. The
	// per-instruction path (CPU.stepBundle and below) never consults it —
	// machine-level events are emitted only at RunAll boundaries, so a
	// disabled observer costs one nil check per region execution.
	obs        *obs.Observer
	obsRetired int64 // cumulative retired instructions for the counter track

	// interrupt, when non-nil, is polled roughly every interruptEvery
	// retired instructions during RunAll; a non-nil return aborts the run
	// with that error. This is how a service host cancels a simulation
	// mid-flight (context deadline, client disconnect) without threading a
	// context through the instruction hot path: the disabled state costs
	// one nil check per retired bundle.
	interrupt      func() error
	interruptEvery int64
	sinceInterrupt int64

	// par is the lazily-built parallel window engine (nil until the first
	// RunAll that can use it; see cfg.SimWorkers and parallel.go).
	par *parEngine
}

// New builds a machine for cfg executing img.
func New(cfg Config, img *ia64.Image) (*Machine, error) {
	if cfg.MaxInstrPerRun == 0 {
		cfg.MaxInstrPerRun = 4e9
	}
	memory := mem.NewMemory(cfg.Mem.MemBytes, cfg.Mem.PageSize)
	dom, err := mem.NewDomain(cfg.Mem, memory)
	if err != nil {
		return nil, err
	}
	m := &Machine{cfg: cfg, img: img, memory: memory, dom: dom}
	for i := 0; i < cfg.Mem.NumCPUs; i++ {
		m.cpus = append(m.cpus, newCPU(m, i))
	}
	for i, mg := range cfg.Migrations {
		if !cfg.Mem.NUMA {
			return nil, fmt.Errorf("machine: migration %d requires a NUMA machine", i)
		}
		if mg.AtCycle <= 0 {
			return nil, fmt.Errorf("machine: migration %d at cycle %d (must be positive)", i, mg.AtCycle)
		}
		if mg.CPU < 0 || mg.CPU >= cfg.Mem.NumCPUs {
			return nil, fmt.Errorf("machine: migration %d moves CPU %d of %d", i, mg.CPU, cfg.Mem.NumCPUs)
		}
		if n := cfg.Mem.NumNodes(); mg.Node < 0 || mg.Node >= n {
			return nil, fmt.Errorf("machine: migration %d targets node %d of %d", i, mg.Node, n)
		}
		mg := mg
		m.AddTimer(&Timer{NextAt: mg.AtCycle, Fn: func(now int64) int64 {
			// Validated above; the only runtime failure mode would be a
			// non-NUMA interconnect, which NUMA=true rules out.
			_ = m.dom.MigrateCPU(mg.CPU, mg.Node)
			if m.obs != nil {
				if t := m.obs.Trace(); t != nil {
					t.Instant("machine", "migrate", obs.TIDRegions, now,
						map[string]any{"cpu": mg.CPU, "node": mg.Node})
				}
			}
			return 0
		}})
	}
	return m, nil
}

// Image returns the program image (the binary COBRA patches).
func (m *Machine) Image() *ia64.Image { return m.img }

// Memory returns the simulated physical memory.
func (m *Machine) Memory() *mem.Memory { return m.memory }

// Domain returns the coherent memory system.
func (m *Machine) Domain() *mem.Domain { return m.dom }

// Config returns the machine configuration.
func (m *Machine) Config() Config { return m.cfg }

// NumCPUs returns the processor count.
func (m *Machine) NumCPUs() int { return len(m.cpus) }

// SetObserver attaches an observability sink (nil detaches). Only RunAll
// boundaries emit machine-level events; the instruction hot path stays
// untouched, so the zero-alloc pins hold with an observer attached.
func (m *Machine) SetObserver(o *obs.Observer) { m.obs = o }

// Observer returns the attached observability sink (nil when disabled).
func (m *Machine) Observer() *obs.Observer { return m.obs }

// SetInterrupt installs fn as the run-interruption poll: RunAll calls it
// roughly every n retired instructions (n <= 0 selects a default of
// 50000, ~sub-millisecond reaction at simulator speed) and aborts with
// fn's error when it returns non-nil. fn runs on the simulating
// goroutine; it must be fast and must not touch machine state. A nil fn
// disables polling. The poll only reads simulation state, so an
// installed-but-quiet interrupt does not perturb simulated cycles —
// cancellation changes when a run stops, never what it computes.
func (m *Machine) SetInterrupt(fn func() error, n int64) {
	if n <= 0 {
		n = 50_000
	}
	m.interrupt = fn
	m.interruptEvery = n
	m.sinceInterrupt = 0
}

// pollInterrupt charges n retired instructions against the interrupt
// budget and fires the poll when it is spent. Callers guard on
// m.interrupt != nil so the disabled state costs one branch.
func (m *Machine) pollInterrupt(n int64) error {
	m.sinceInterrupt += n
	if m.sinceInterrupt < m.interruptEvery {
		return nil
	}
	m.sinceInterrupt = 0
	return m.interrupt()
}

// CPU returns processor id.
func (m *Machine) CPU(id int) *CPU { return m.cpus[id] }

// PMU returns the performance monitoring unit of processor id.
func (m *Machine) PMU(id int) *hpm.PMU { return m.cpus[id].PMU }

// AddTimer registers a simulated-time callback. Timers due at the same
// cycle fire in registration order. After registration the timer's NextAt
// must only change through its Fn return value; external mutation would
// desynchronize the cached earliest deadline.
func (m *Machine) AddTimer(t *Timer) {
	m.timers = append(m.timers, t)
	if t.NextAt > 0 && (m.timerNext == 0 || t.NextAt < m.timerNext) {
		m.timerNext = t.NextAt
	}
}

// fireTimers runs one dispatch pass at cycle now: every pending timer due
// at or before now fires once, in registration order; cancelled timers
// (Fn returned a time <= now) are compacted out of the list; and the
// earliest-deadline cache is recomputed.
func (m *Machine) fireTimers(now int64) {
	for _, t := range m.timers {
		if t.NextAt > 0 && t.NextAt <= now {
			next := t.Fn(now)
			if next <= now {
				t.NextAt = 0 // cancelled
			} else {
				t.NextAt = next
			}
		}
	}
	// Compact and recompute the deadline cache over m.timers itself, which
	// may have grown if a Fn registered new timers.
	live := m.timers[:0]
	m.timerNext = 0
	for _, t := range m.timers {
		if t.NextAt > 0 {
			if m.timerNext == 0 || t.NextAt < m.timerNext {
				m.timerNext = t.NextAt
			}
			live = append(live, t)
		}
	}
	m.timers = live
}

// SamplePC returns the current PC of cpu (perfmon.Context).
func (m *Machine) SamplePC(cpu int) int { return m.cpus[cpu].PC }

// SampleThreadID returns the software thread bound to cpu (perfmon.Context).
func (m *Machine) SampleThreadID(cpu int) int { return m.cpus[cpu].ThreadID }

// SampleCycle returns cpu's local clock (perfmon.Context).
func (m *Machine) SampleCycle(cpu int) int64 { return m.cpus[cpu].Cycle }

// ChargeCycles advances cpu's clock by n cycles — the cost of a sampling
// interrupt and monitoring-thread copy (perfmon.Context).
func (m *Machine) ChargeCycles(cpu int, n int64) { m.cpus[cpu].Cycle += n }

// GlobalCycle returns the largest per-CPU cycle count — wall-clock time of
// the simulated machine.
func (m *Machine) GlobalCycle() int64 {
	var max int64
	for _, c := range m.cpus {
		if c.Cycle > max {
			max = c.Cycle
		}
	}
	return max
}

// SyncClocks advances every CPU's clock to at least cycle — the barrier at
// the end of a parallel region.
func (m *Machine) SyncClocks(cycle int64) {
	for _, c := range m.cpus {
		if c.Cycle < cycle {
			c.Cycle = cycle
		}
	}
}

// StartThread binds a software thread to a CPU: the register file is
// prepared by setup, the PC set to entry, and the CPU marked runnable.
func (m *Machine) StartThread(cpu int, entry int, threadID int, setup func(rf *ia64.RegFile)) {
	c := m.cpus[cpu]
	c.RF.Reset()
	if setup != nil {
		setup(&c.RF)
	}
	c.PC = entry
	c.ThreadID = threadID
	c.Halted = false
	if m.par != nil {
		// A timer may wake a CPU mid-run (fork-join phase starts); its
		// shadow must resync before recording again.
		m.par.scs[cpu].dirty = true
	}
}

// RunAll executes the given CPUs until all halt, firing timers in causal
// order (timers due at equal cycles fire in registration order). It returns
// the number of instructions retired during the run.
//
// Calling RunAll with a non-empty set of CPUs that are all already halted
// while timers are pending is an error: no CPU will ever advance simulated
// time, so the timers could never fire and the call would silently report
// success without doing the work the caller queued.
func (m *Machine) RunAll(active []int) (int64, error) {
	if len(active) > 0 && m.timerNext != 0 {
		allHalted := true
		for _, id := range active {
			if !m.cpus[id].Halted {
				allHalted = false
				break
			}
		}
		if allHalted {
			return 0, fmt.Errorf("machine: RunAll: all %d CPUs halted with a timer pending at cycle %d — timers can never fire (StartThread first)",
				len(active), m.timerNext)
		}
	}
	var retired int64
	if m.cfg.SimWorkers > 1 && len(active) > 1 {
		err := m.runParallel(active, &retired)
		return retired, err
	}
	if _, err := m.runSerial(active, -1, &retired); err != nil {
		return retired, err
	}
	m.emitRunEnd(retired)
	return retired, nil
}

// emitRunEnd publishes the machine-level observability events of one
// completed run. Only the all-halted exit of a run reaches it, in both
// the serial and parallel engines, so a run emits exactly once.
func (m *Machine) emitRunEnd(retired int64) {
	if m.obs == nil {
		return
	}
	m.obsRetired += retired
	if t := m.obs.Trace(); t != nil {
		t.Counter("retired", 0, m.GlobalCycle(),
			map[string]float64{"instructions": float64(m.obsRetired)})
	}
	m.obs.Metrics().Counter("machine.runs").Inc()
}

// runSerial is the causal engine: it always steps the runnable CPU with
// the smallest (cycle, id), firing due timers first, until every active
// CPU halts (returns done=true). A non-negative maxGroups bounds how many
// issue groups are stepped before returning done=false — the bound only
// decides when stepping stops, never what a step computes, so a bounded
// stretch is byte-identical to the same span of an unbounded run. The
// parallel engine uses bounded stretches to run spans it cannot window.
func (m *Machine) runSerial(active []int, maxGroups int64, retired *int64) (bool, error) {
	for {
		best := -1
		runnable := 0
		var bc int64
		for _, id := range active {
			c := m.cpus[id]
			if c.Halted {
				continue
			}
			runnable++
			if best == -1 || c.Cycle < bc || (c.Cycle == bc && id < best) {
				best, bc = id, c.Cycle
			}
		}
		if best == -1 {
			return true, nil
		}
		c := m.cpus[best]
		if runnable == 1 {
			// Fast path: a single runnable CPU (every serial region and
			// 1-thread cell, and the tail of any parallel region) steps
			// without rescanning the active set. It breaks back to the
			// outer loop to fire a due timer, whose Fn may wake other CPUs.
			for !c.Halted && (m.timerNext == 0 || c.Cycle < m.timerNext) {
				if maxGroups == 0 {
					return false, nil
				}
				n, err := c.stepBundle()
				*retired += n
				if err != nil {
					return false, err
				}
				if *retired > m.cfg.MaxInstrPerRun {
					return false, fmt.Errorf("machine: instruction budget %d exceeded (runaway loop? PC=%d on CPU %d)",
						m.cfg.MaxInstrPerRun, c.PC, best)
				}
				if m.interrupt != nil {
					if err := m.pollInterrupt(n); err != nil {
						return false, fmt.Errorf("machine: run interrupted: %w", err)
					}
				}
				if maxGroups > 0 {
					maxGroups--
				}
			}
			if !c.Halted {
				m.fireTimers(c.Cycle)
			}
			continue
		}
		if maxGroups == 0 {
			return false, nil
		}
		// Fire any timer due before the next step.
		if m.timerNext != 0 && m.timerNext <= bc {
			m.fireTimers(bc)
		}
		n, err := c.stepBundle()
		if err != nil {
			return false, err
		}
		*retired += n
		if *retired > m.cfg.MaxInstrPerRun {
			return false, fmt.Errorf("machine: instruction budget %d exceeded (runaway loop? PC=%d on CPU %d)",
				m.cfg.MaxInstrPerRun, c.PC, best)
		}
		if m.interrupt != nil {
			if err := m.pollInterrupt(n); err != nil {
				return false, fmt.Errorf("machine: run interrupted: %w", err)
			}
		}
		if maxGroups > 0 {
			maxGroups--
		}
	}
}

// Run executes a single CPU until it halts.
func (m *Machine) Run(cpu int) (int64, error) {
	return m.RunAll([]int{cpu})
}

package machine

import (
	"math"
	"testing"

	"repro/internal/ia64"
)

// runSnippet executes instructions on a 1-CPU machine with the given
// register setup and returns the CPU for inspection.
func runSnippet(t *testing.T, setup func(rf *ia64.RegFile), instrs ...ia64.Instr) *CPU {
	t.Helper()
	img := ia64.NewImage()
	a := ia64.NewAsm(img, "snippet")
	for _, in := range instrs {
		a.Emit(in)
	}
	a.Emit(ia64.Instr{Op: ia64.OpHalt})
	entry, err := a.Close()
	if err != nil {
		t.Fatal(err)
	}
	m := testMachine(t, img, 1)
	m.StartThread(0, entry, 1, setup)
	if _, err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	return m.CPU(0)
}

func TestIntegerALUSemantics(t *testing.T) {
	c := runSnippet(t, func(rf *ia64.RegFile) {
		rf.SetGR(4, 100)
		rf.SetGR(5, 7)
	},
		ia64.Instr{Op: ia64.OpAdd, R1: 10, R2: 4, R3: 5},
		ia64.Instr{Op: ia64.OpSub, R1: 11, R2: 4, R3: 5},
		ia64.Instr{Op: ia64.OpMul, R1: 12, R2: 4, R3: 5},
		ia64.Instr{Op: ia64.OpAnd, R1: 13, R2: 4, R3: 5},
		ia64.Instr{Op: ia64.OpOr, R1: 14, R2: 4, R3: 5},
		ia64.Instr{Op: ia64.OpXor, R1: 15, R2: 4, R3: 5},
		ia64.Instr{Op: ia64.OpShlI, R1: 16, R2: 5, Imm: 3},
		ia64.Instr{Op: ia64.OpShrI, R1: 17, R2: 4, Imm: 2},
		ia64.Instr{Op: ia64.OpAddI, R1: 18, R2: 4, Imm: -30},
	)
	rf := &c.RF
	for _, tc := range []struct {
		reg  uint8
		want int64
	}{
		{10, 107}, {11, 93}, {12, 700}, {13, 100 & 7}, {14, 100 | 7},
		{15, 100 ^ 7}, {16, 56}, {17, 25}, {18, 70},
	} {
		if got := rf.GR(tc.reg); got != tc.want {
			t.Errorf("r%d = %d, want %d", tc.reg, got, tc.want)
		}
	}
}

func TestFloatSemantics(t *testing.T) {
	c := runSnippet(t, func(rf *ia64.RegFile) {
		rf.SetFR(4, 6.0)
		rf.SetFR(5, 1.5)
		rf.SetGR(4, -9)
	},
		ia64.Instr{Op: ia64.OpFAdd, R1: 10, R2: 4, R3: 5},
		ia64.Instr{Op: ia64.OpFSub, R1: 11, R2: 4, R3: 5},
		ia64.Instr{Op: ia64.OpFMul, R1: 12, R2: 4, R3: 5},
		ia64.Instr{Op: ia64.OpFDiv, R1: 13, R2: 4, R3: 5},
		ia64.Instr{Op: ia64.OpFNeg, R1: 14, R2: 5},
		ia64.Instr{Op: ia64.OpFMov, R1: 15, R2: 4},
		ia64.Instr{Op: ia64.OpFCvt, R1: 16, R2: 4},                // float(r4) = -9
		ia64.Instr{Op: ia64.OpFInt, R1: 20, R2: 5},                // int(f5) = 1
		ia64.Instr{Op: ia64.OpFma, R1: 17, R2: 4, R3: 5, Imm: 10}, // 6*1.5+7.5
		ia64.Instr{Op: ia64.OpFMovI, R1: 18, Imm: int64(math.Float64bits(2.25))},
	)
	rf := &c.RF
	for _, tc := range []struct {
		reg  uint8
		want float64
	}{
		{10, 7.5}, {11, 4.5}, {12, 9}, {13, 4}, {14, -1.5}, {15, 6},
		{16, -9}, {17, math.FMA(6, 1.5, 7.5)}, {18, 2.25},
	} {
		if got := rf.FR(tc.reg); got != tc.want {
			t.Errorf("f%d = %v, want %v", tc.reg, got, tc.want)
		}
	}
	if got := rf.GR(20); got != 1 {
		t.Errorf("fint = %d, want 1", got)
	}
}

func TestCompareRelations(t *testing.T) {
	rels := []struct {
		rel  ia64.CmpRel
		a, b int64
		want bool
	}{
		{ia64.CmpEQ, 5, 5, true}, {ia64.CmpEQ, 5, 6, false},
		{ia64.CmpNE, 5, 6, true}, {ia64.CmpNE, 5, 5, false},
		{ia64.CmpLT, 4, 5, true}, {ia64.CmpLT, 5, 5, false},
		{ia64.CmpLE, 5, 5, true}, {ia64.CmpLE, 6, 5, false},
		{ia64.CmpGT, 6, 5, true}, {ia64.CmpGT, 5, 5, false},
		{ia64.CmpGE, 5, 5, true}, {ia64.CmpGE, 4, 5, false},
	}
	for _, tc := range rels {
		c := runSnippet(t, func(rf *ia64.RegFile) {
			rf.SetGR(4, tc.a)
			rf.SetGR(5, tc.b)
		}, ia64.Instr{Op: ia64.OpCmp, Rel: tc.rel, P1: 6, P2: 7, R2: 4, R3: 5})
		if got := c.RF.PR(6); got != tc.want {
			t.Errorf("cmp.%v(%d,%d) = %v, want %v", tc.rel, tc.a, tc.b, got, tc.want)
		}
		if got := c.RF.PR(7); got == tc.want {
			t.Errorf("cmp.%v complementary predicate not inverted", tc.rel)
		}
	}
}

func TestFCmpAndPredicatedStore(t *testing.T) {
	img := ia64.NewImage()
	a := ia64.NewAsm(img, "fcmp")
	a.Emit(ia64.Instr{Op: ia64.OpFCmp, Rel: ia64.CmpLT, P1: 6, P2: 7, R2: 4, R3: 5})
	// Only the true predicate's store lands.
	a.Emit(ia64.Instr{Op: ia64.OpSt, R2: 8, R3: 10, QP: 6})
	a.Emit(ia64.Instr{Op: ia64.OpSt, R2: 9, R3: 10, QP: 7})
	a.Emit(ia64.Instr{Op: ia64.OpHalt})
	entry, _ := a.Close()
	m := testMachine(t, img, 1)
	addrT := m.Memory().MustAlloc("t", 64, 64)
	addrF := m.Memory().MustAlloc("f", 64, 64)
	m.StartThread(0, entry, 1, func(rf *ia64.RegFile) {
		rf.SetFR(4, 1.0)
		rf.SetFR(5, 2.0) // 1 < 2: p6 true
		rf.SetGR(8, int64(addrT))
		rf.SetGR(9, int64(addrF))
		rf.SetGR(10, 777)
	})
	if _, err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	if got := m.Memory().ReadI64(addrT); got != 777 {
		t.Fatalf("true-predicated store missing: %d", got)
	}
	if got := m.Memory().ReadI64(addrF); got != 0 {
		t.Fatalf("false-predicated store landed: %d", got)
	}
}

func TestLdBiasAcquiresOwnership(t *testing.T) {
	img := ia64.NewImage()
	a := ia64.NewAsm(img, "bias")
	a.Emit(ia64.Instr{Op: ia64.OpLd, R1: 10, R2: 8, Hint: ia64.HintBias})
	a.Emit(ia64.Instr{Op: ia64.OpHalt})
	entry, _ := a.Close()
	m := testMachine(t, img, 2)
	addr := m.Memory().MustAlloc("b", 128, 128)
	m.Memory().WriteI64(addr, 31337)
	// CPU1 holds the line first.
	m.Domain().Access(1, addr, 1 /* LoadFP */, 0)
	m.StartThread(0, entry, 1, func(rf *ia64.RegFile) { rf.SetGR(8, int64(addr)) })
	if _, err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	if got := m.CPU(0).RF.GR(10); got != 31337 {
		t.Fatalf("ld.bias loaded %d", got)
	}
	if st := m.Domain().Stats(0); st.CoherentMisses == 0 {
		t.Fatal("ld.bias did not invalidate the remote copy")
	}
}

func TestMovLCAndECForms(t *testing.T) {
	c := runSnippet(t, func(rf *ia64.RegFile) {
		rf.SetGR(4, 42)
	},
		ia64.Instr{Op: ia64.OpMovToLC, R2: 4},
		ia64.Instr{Op: ia64.OpMovFromLC, R1: 5},
		ia64.Instr{Op: ia64.OpMovToLCI, Imm: 9},
		ia64.Instr{Op: ia64.OpMovToECI, Imm: 3},
	)
	if got := c.RF.GR(5); got != 42 {
		t.Fatalf("mov from lc = %d", got)
	}
	if c.RF.LC != 9 || c.RF.EC != 3 {
		t.Fatalf("LC=%d EC=%d", c.RF.LC, c.RF.EC)
	}
}

func TestBrAlwaysAndBrRet(t *testing.T) {
	img := ia64.NewImage()
	a := ia64.NewAsm(img, "br")
	a.Br(ia64.BrAlways, 0, "over")
	a.Emit(ia64.Instr{Op: ia64.OpMovI, R1: 4, Imm: 666}) // skipped
	a.Label("over")
	a.Emit(ia64.Instr{Op: ia64.OpMovI, R1: 5, Imm: 1})
	a.Emit(ia64.Instr{Op: ia64.OpBr, Br: ia64.BrRet})
	a.Emit(ia64.Instr{Op: ia64.OpMovI, R1: 6, Imm: 2}) // after ret: skipped
	entry, _ := a.Close()
	m := testMachine(t, img, 1)
	m.StartThread(0, entry, 1, nil)
	if _, err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	rf := &m.CPU(0).RF
	if rf.GR(4) != 0 || rf.GR(5) != 1 || rf.GR(6) != 0 {
		t.Fatalf("r4=%d r5=%d r6=%d", rf.GR(4), rf.GR(5), rf.GR(6))
	}
	if !m.CPU(0).Halted {
		t.Fatal("br.ret did not halt the thread")
	}
}

func TestOutOfImagePCErrors(t *testing.T) {
	img := ia64.NewImage()
	a := ia64.NewAsm(img, "fall")
	a.Nop() // falls off the end of the image
	a.Nop()
	a.Nop()
	entry, _ := a.Close()
	m := testMachine(t, img, 1)
	m.StartThread(0, entry, 1, nil)
	if _, err := m.Run(0); err == nil {
		t.Fatal("running off the image end did not error")
	}
}

func TestDualBundleIssueTiming(t *testing.T) {
	// Six independent ALU instructions = two bundles = one cycle.
	var alu []ia64.Instr
	for i := 0; i < 6; i++ {
		alu = append(alu, ia64.Instr{Op: ia64.OpAddI, R1: uint8(10 + i), R2: 4, Imm: int64(i)})
	}
	c := runSnippet(t, func(rf *ia64.RegFile) { rf.SetGR(4, 1) }, alu...)
	// 1 cycle for the 6 ALU ops + 1 for the halt bundle (padded).
	if c.Cycle > 3 {
		t.Fatalf("6 ALU ops took %d cycles, want <= 3 (dual bundle issue)", c.Cycle)
	}
}

func TestPMUFrozenDuringNothing(t *testing.T) {
	// Freeze/unfreeze semantics across a run: freezing before the run
	// suppresses all counting.
	img := ia64.NewImage()
	a := ia64.NewAsm(img, "f")
	a.Emit(ia64.Instr{Op: ia64.OpAddI, R1: 4, R2: 4, Imm: 1})
	a.Emit(ia64.Instr{Op: ia64.OpHalt})
	entry, _ := a.Close()
	m := testMachine(t, img, 1)
	m.PMU(0).Program(0, 2 /* EvInstRetired */, 0)
	m.PMU(0).Freeze()
	m.StartThread(0, entry, 1, nil)
	if _, err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	if _, v := m.PMU(0).Read(0); v != 0 {
		t.Fatalf("frozen PMU counted %d", v)
	}
}

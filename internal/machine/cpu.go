package machine

import (
	"fmt"
	"math"

	"repro/internal/hpm"
	"repro/internal/ia64"
	"repro/internal/mem"
)

// CPU is one in-order Itanium-2-like processor. The timing model issues one
// bundle (three slots) per cycle and blocks on demand memory accesses;
// lfetch prefetches are non-blocking. FP and ALU latencies are folded into
// the issue cycle — a deliberate simplification documented in DESIGN.md:
// the paper's phenomena are memory-system effects, and uniform compute
// scaling cancels out of the normalized metrics the paper reports.
type CPU struct {
	ID       int
	RF       ia64.RegFile
	PC       int
	Cycle    int64
	Halted   bool
	ThreadID int

	PMU *hpm.PMU

	InstRetired int64

	m      *Machine
	dec    []ia64.Instr
	decGen uint64

	// wx, when non-nil, diverts this CPU's execution into the parallel
	// window engine: memory operations and taken branches go through the
	// window context (recording a functional log, or rebuilding register
	// state from one) instead of the coherence domain and PMU, which only
	// the serial replay may touch. Real CPUs keep wx nil, so the serial
	// hot path pays one predictable branch per diverted site — the same
	// cost class as the interrupt-poll guard.
	wx *windowCtx
}

func newCPU(m *Machine, id int) *CPU {
	c := &CPU{ID: id, Halted: true, m: m, PMU: hpm.NewPMU(id)}
	return c
}

// refillDecode mirrors the image into the CPU's decode cache when the
// binary has been patched or extended. The generation probe is a lock-free
// atomic load — it runs once per issue group — and resynchronization after
// a patch re-decodes only the journaled slots, not the whole image.
func (c *CPU) refillDecode() {
	if c.m.img.Generation() == c.decGen {
		return
	}
	c.dec, c.decGen = c.m.img.SyncDecode(c.dec, c.decGen)
}

// feedMemEvents translates the event deltas of one memory access into PMU
// events. Only non-zero events are offered; PMU.Add ignores zero counts, so
// skipping them is behavior-preserving and keeps the common all-zero case
// (cache hits) to a single struct compare in the caller.
func (c *CPU) feedMemEvents(ev *mem.EventDelta) {
	p := c.PMU
	if ev.L2Miss != 0 {
		p.Add(hpm.EvL2Misses, int64(ev.L2Miss))
	}
	if ev.L3Miss != 0 {
		p.Add(hpm.EvL3Misses, int64(ev.L3Miss))
	}
	if ev.Writebacks != 0 {
		p.Add(hpm.EvL3Writebacks, int64(ev.Writebacks))
	}
	if ev.BusMemory != 0 {
		p.Add(hpm.EvBusMemory, int64(ev.BusMemory))
	}
	if ev.BusRdHit != 0 {
		p.Add(hpm.EvBusRdHit, int64(ev.BusRdHit))
	}
	if ev.BusRdHitm != 0 {
		p.Add(hpm.EvBusRdHitm, int64(ev.BusRdHitm))
	}
	if ev.BusRdInvalAllHitm != 0 {
		p.Add(hpm.EvBusRdInvalAllHitm, int64(ev.BusRdInvalAllHitm))
	}
	if coh := int64(ev.BusRdHitm) + int64(ev.BusRdInvalAllHitm); coh != 0 {
		p.Add(hpm.EvBusCoherent, coh)
	}
}

// issueBundles is the front-end width: two bundles (six slots) issue per
// cycle, as on Itanium 2.
const issueBundles = 2

// stepBundle executes one issue group — up to two bundles, ending early at
// a taken branch or halt — and charges one cycle plus any memory stalls.
// It returns the number of instructions retired.
func (c *CPU) stepBundle() (int64, error) {
	if c.Halted {
		return 0, nil
	}
	if c.wx == nil || c.wx.mode == wxRecord {
		// Rebuild mode must keep decoding the image generation the log
		// was recorded against, even if a patch has landed since.
		c.refillDecode()
	}
	startCycle := c.Cycle
	c.Cycle++ // issue cost of the group

	var retired int64
	bundles := 0
	for {
		if c.PC < 0 || c.PC >= len(c.dec) {
			return retired, fmt.Errorf("machine: CPU %d fetched out-of-image PC %d", c.ID, c.PC)
		}
		in := c.dec[c.PC]
		pc := c.PC
		c.PC++
		retired++

		if err := c.exec(in, pc); err != nil {
			return retired, err
		}
		if c.Halted || c.PC != pc+1 {
			break // halted or branch redirected fetch
		}
		if c.PC%ia64.BundleSlots == 0 {
			bundles++
			if bundles >= issueBundles {
				break
			}
		}
	}

	if c.wx != nil {
		// Shadow execution: the serial replay accounts InstRetired and the
		// PMU events at the exact serial point when the group commits.
		c.wx.endGroup(c, retired)
		return retired, nil
	}
	c.InstRetired += retired
	c.PMU.Add(hpm.EvInstRetired, retired)
	c.PMU.Add(hpm.EvCPUCycles, c.Cycle-startCycle)
	return retired, nil
}

// exec applies one instruction's architectural and timing effects.
func (c *CPU) exec(in ia64.Instr, pc int) error {
	rf := &c.RF

	// Qualifying predicate: a false predicate turns everything except the
	// loop branches (which own their QP semantics) into a no-op slot.
	if in.QP != 0 && !rf.PR(in.QP) && !(in.Op == ia64.OpBr && (in.Br == ia64.BrCtop || in.Br == ia64.BrCloop || in.Br == ia64.BrWtop)) {
		return nil
	}

	switch in.Op {
	case ia64.OpNop:

	case ia64.OpAdd:
		rf.SetGR(in.R1, rf.GR(in.R2)+rf.GR(in.R3))
	case ia64.OpSub:
		rf.SetGR(in.R1, rf.GR(in.R2)-rf.GR(in.R3))
	case ia64.OpAddI:
		rf.SetGR(in.R1, rf.GR(in.R2)+in.Imm)
	case ia64.OpAnd:
		rf.SetGR(in.R1, rf.GR(in.R2)&rf.GR(in.R3))
	case ia64.OpOr:
		rf.SetGR(in.R1, rf.GR(in.R2)|rf.GR(in.R3))
	case ia64.OpXor:
		rf.SetGR(in.R1, rf.GR(in.R2)^rf.GR(in.R3))
	case ia64.OpShlI:
		rf.SetGR(in.R1, rf.GR(in.R2)<<uint(in.Imm&63))
	case ia64.OpShrI:
		rf.SetGR(in.R1, rf.GR(in.R2)>>uint(in.Imm&63))
	case ia64.OpMovI:
		rf.SetGR(in.R1, in.Imm)
	case ia64.OpMul:
		rf.SetGR(in.R1, rf.GR(in.R2)*rf.GR(in.R3))

	case ia64.OpCmp:
		c.setCmp(in, compare(in.Rel, rf.GR(in.R2), rf.GR(in.R3)))
	case ia64.OpCmpI:
		c.setCmp(in, compare(in.Rel, rf.GR(in.R2), in.Imm))
	case ia64.OpFCmp:
		c.setCmp(in, compareF(in.Rel, rf.FR(in.R2), rf.FR(in.R3)))

	case ia64.OpLd:
		kind := mem.LoadInt
		if in.Hint == ia64.HintBias {
			kind = mem.LoadBias
		}
		addr := uint64(rf.GR(in.R2))
		if c.wx != nil {
			v, err := c.wx.load(addr, pc, kind)
			if err != nil {
				return err
			}
			rf.SetGR(in.R1, int64(v))
			break
		}
		c.access(addr, kind, pc)
		rf.SetGR(in.R1, c.m.memory.ReadI64(addr))
	case ia64.OpLdf:
		addr := uint64(rf.GR(in.R2))
		if c.wx != nil {
			v, err := c.wx.load(addr, pc, mem.LoadFP)
			if err != nil {
				return err
			}
			rf.SetFR(in.R1, math.Float64frombits(v))
			break
		}
		c.access(addr, mem.LoadFP, pc)
		rf.SetFR(in.R1, c.m.memory.ReadF64(addr))
	case ia64.OpSt:
		addr := uint64(rf.GR(in.R2))
		if c.wx != nil {
			if err := c.wx.store(addr, pc, uint64(rf.GR(in.R3))); err != nil {
				return err
			}
			break
		}
		c.access(addr, mem.Store, pc)
		c.m.memory.WriteI64(addr, rf.GR(in.R3))
	case ia64.OpStf:
		addr := uint64(rf.GR(in.R2))
		if c.wx != nil {
			if err := c.wx.store(addr, pc, math.Float64bits(rf.FR(in.R3))); err != nil {
				return err
			}
			break
		}
		c.access(addr, mem.Store, pc)
		c.m.memory.WriteF64(addr, rf.FR(in.R3))
	case ia64.OpLfetch:
		addr := uint64(rf.GR(in.R2))
		// lfetch is non-faulting: silently drop out-of-memory targets.
		inRange := addr >= c.m.memory.PageSize() && addr+8 <= c.m.memory.Size()
		if c.wx != nil {
			c.wx.lfetch(addr, pc, in.Hint == ia64.HintExcl, inRange)
			break
		}
		if inRange {
			kind := mem.PrefShrd
			if in.Hint == ia64.HintExcl {
				kind = mem.PrefExcl
			}
			c.access(addr, kind, pc)
		}
		c.PMU.Add(hpm.EvPrefetchesRetired, 1)

	case ia64.OpFma:
		// fma.d is genuinely fused on IA-64: one rounding.
		rf.SetFR(in.R1, math.FMA(rf.FR(in.R2), rf.FR(in.R3), rf.FR(uint8(in.Imm))))
	case ia64.OpFAdd:
		rf.SetFR(in.R1, rf.FR(in.R2)+rf.FR(in.R3))
	case ia64.OpFSub:
		rf.SetFR(in.R1, rf.FR(in.R2)-rf.FR(in.R3))
	case ia64.OpFMul:
		rf.SetFR(in.R1, rf.FR(in.R2)*rf.FR(in.R3))
	case ia64.OpFDiv:
		rf.SetFR(in.R1, rf.FR(in.R2)/rf.FR(in.R3))
	case ia64.OpFMovI:
		rf.SetFR(in.R1, math.Float64frombits(uint64(in.Imm)))
	case ia64.OpFMov:
		rf.SetFR(in.R1, rf.FR(in.R2))
	case ia64.OpFNeg:
		rf.SetFR(in.R1, -rf.FR(in.R2))
	case ia64.OpFCvt:
		rf.SetFR(in.R1, float64(rf.GR(in.R2)))
	case ia64.OpFInt:
		rf.SetGR(in.R1, int64(rf.FR(in.R2)))

	case ia64.OpBr:
		c.branch(in, pc)

	case ia64.OpMovToLC:
		rf.LC = rf.GR(in.R2)
	case ia64.OpMovToLCI:
		rf.LC = in.Imm
	case ia64.OpMovToEC:
		rf.EC = rf.GR(in.R2)
	case ia64.OpMovToECI:
		rf.EC = in.Imm
	case ia64.OpMovFromLC:
		rf.SetGR(in.R1, rf.LC)
	case ia64.OpClrrrb:
		rf.ClearRRB()

	case ia64.OpHalt:
		c.Halted = true

	default:
		return fmt.Errorf("machine: CPU %d: unimplemented opcode %v at PC %d", c.ID, in.Op, pc)
	}
	return nil
}

// access routes a memory operation through the coherence domain, advances
// the cycle clock for blocking accesses, and feeds the PMU from the event
// deltas the access itself reports (no stats snapshotting on this path).
func (c *CPU) access(addr uint64, kind mem.AccessKind, pc int) mem.AccessResult {
	res := c.m.dom.Access(c.ID, addr, kind, c.Cycle)
	if res.Ev != (mem.EventDelta{}) {
		c.feedMemEvents(&res.Ev)
	}

	switch kind {
	case mem.LoadInt, mem.LoadFP, mem.LoadBias:
		c.PMU.Add(hpm.EvLoadsRetired, 1)
		c.PMU.RecordLoad(pc, addr, res.Latency)
	case mem.Store:
		c.PMU.Add(hpm.EvStoresRetired, 1)
	}
	if !kind.IsPrefetch() && res.Done > c.Cycle {
		c.Cycle = res.Done
	}
	return res
}

func (c *CPU) setCmp(in ia64.Instr, v bool) {
	c.RF.SetPR(in.P1, v)
	c.RF.SetPR(in.P2, !v)
}

// branch applies branch semantics and records taken branches in the BTB —
// the profile source COBRA's trace selector uses to discover loops.
func (c *CPU) branch(in ia64.Instr, pc int) {
	rf := &c.RF
	var taken bool
	switch in.Br {
	case ia64.BrCond:
		taken = rf.PR(in.QP)
	case ia64.BrAlways:
		taken = true
	case ia64.BrCloop:
		taken = rf.ExecCloop().Taken
	case ia64.BrCtop:
		taken = rf.ExecCtop().Taken
	case ia64.BrWtop:
		taken = rf.ExecWtop(rf.PR(in.QP)).Taken
	case ia64.BrRet:
		c.Halted = true
		return
	}
	if taken {
		c.PC = int(in.Imm)
		if c.wx != nil {
			c.wx.branch(pc, c.PC)
			return
		}
		c.PMU.RecordBranch(pc, c.PC)
		c.PMU.Add(hpm.EvTakenBranches, 1)
	}
}

func compare(rel ia64.CmpRel, a, b int64) bool {
	switch rel {
	case ia64.CmpEQ:
		return a == b
	case ia64.CmpNE:
		return a != b
	case ia64.CmpLT:
		return a < b
	case ia64.CmpLE:
		return a <= b
	case ia64.CmpGT:
		return a > b
	case ia64.CmpGE:
		return a >= b
	}
	return false
}

func compareF(rel ia64.CmpRel, a, b float64) bool {
	switch rel {
	case ia64.CmpEQ:
		return a == b
	case ia64.CmpNE:
		return a != b
	case ia64.CmpLT:
		return a < b
	case ia64.CmpLE:
		return a <= b
	case ia64.CmpGT:
		return a > b
	case ia64.CmpGE:
		return a >= b
	}
	return false
}

// Parallel window engine: shards per-CPU execution across host worker
// goroutines while producing simulations byte-identical to the serial
// causal engine.
//
// The key obstacle to parallelizing RunAll is that nothing in the timing
// domain is CPU-private: every miss, upgrade and writeback serializes
// through the interconnect's busy state in engine order, snoops mutate
// other CPUs' cache hierarchies, and PMU overflow delivers samples that
// charge cycles back to the clock that schedules the causal engine. Any
// scheme that lets two CPUs advance that state concurrently either
// diverges from the serial order (breaking the byte-identical contract)
// or reintroduces a global lock.
//
// What IS CPU-private is functional execution: register values, branch
// directions and store data depend only on a CPU's own registers and the
// values its loads observe — never on latencies. So the engine splits
// each window of execution into two phases:
//
//   - Record (parallel): every runnable CPU's shadow — a private CPU
//     struct with a copy of the architectural registers and its own
//     decode cache — executes up to `window` issue groups functionally.
//     Loads read committed memory overlaid with the CPU's own staged
//     stores; stores stage privately; nothing touches the coherence
//     domain, the PMU, or another CPU. Each memory operation and taken
//     branch is appended to a per-CPU log along with the values moved.
//
//   - Replay (serial): the causal engine runs unchanged — smallest
//     (cycle, id) first, timers fired at their exact cycles, instruction
//     budget and interrupt polls at their exact points — except that
//     instead of decoding and executing instructions it consumes logged
//     groups: performing the real Domain accesses (true latencies, MESI
//     transitions, bus contention, event deltas), feeding the PMU in
//     program order with the CPU's PC positioned as the serial engine
//     would have it (PMU overflow synchronously samples PC and charges
//     cycles), committing stores to memory, and advancing the real
//     cycle clock exactly as CPU.access does.
//
// A consumed group is correct iff the values its loads observed at record
// time equal what the serial engine would read at the group's commit
// point. A logged load can only be wrong if another CPU committed a store
// to the same word between the load's recording phase and its commit —
// detected with a store-conflict map (word -> last writer + commit
// sequence) checked before any of the group's effects are applied. On a
// conflict — or a mid-replay binary patch, which invalidates the decoded
// logs — the window aborts: architectural registers are reconstructed at
// each CPU's exact commit point (by functionally re-executing its
// consumed prefix against the logged load values), logs are discarded,
// and the span re-runs serially. Fork-join workloads synchronize on the
// host side, so aborts only occur on genuine simulated data races.
package machine

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/hpm"
	"repro/internal/mem"
)

// wxMode selects what a diverted CPU does with its memory operations.
type wxMode uint8

const (
	// wxRecord: shadow execution. Loads read committed memory overlaid
	// with the CPU's own staged stores; every memory operation and taken
	// branch is appended to the window log.
	wxRecord wxMode = iota
	// wxRebuild: functional re-execution of a log's consumed prefix.
	// Loads pop their recorded values; stores, prefetches and branches
	// pop for cursor alignment and do nothing — reconstructing register
	// state at a commit point without touching memory or the PMU.
	wxRebuild
)

type opKind uint8

const (
	opLoadInt opKind = iota
	opLoadBias
	opLoadFP // load kinds must stay first: validation tests kind <= opLoadFP
	opStore
	opLfetchShrd
	opLfetchExcl
	opLfetchSkip // out-of-range lfetch: retires in the PMU, no access
	opBranch     // taken branch; addr holds the target
)

// logOp is one recorded memory operation or taken branch.
type logOp struct {
	kind opKind
	pc   int32
	addr uint64
	val  uint64 // value loaded or stored (raw bits); unused for others
}

// logGroup is one recorded issue group.
type logGroup struct {
	endPC   int32
	retired int32
	nOps    int32
	halted  bool
	horizon int64 // commit sequence at this group's recording phase start
}

// errWindowStop aborts shadow recording at an operation the window engine
// cannot stage (an unaligned or out-of-range data access) or that would
// fault; the spot is re-executed — faulting identically if it must — on
// the serial engine.
var errWindowStop = errors.New("window recording stopped")

// windowCtx is one CPU's window state: its shadow CPU, staged stores, and
// recorded log with the replay cursors into it.
type windowCtx struct {
	mode wxMode
	m    *Machine
	cpu  *CPU // shadow (record mode) — real CPUs never get a windowCtx

	staged map[uint64]uint64 // own stores not yet committed by replay
	ops    []logOp
	groups []logGroup

	gCursor int // groups consumed (committed) by replay
	oCursor int // ops consumed by replay
	groupOp int // first op index of the group currently recording
	rxCur   int // rebuild pop cursor

	originPC int  // shadow PC when the log began (rebuild start point)
	horizon  int64
	stopped  bool // recording hit an unwindowable op or a fault
	dirty    bool // shadow is stale; resync from the real CPU first
	// stageStale: another CPU overwrote a word this CPU had written, so
	// the staged overlay may no longer reflect what future loads should
	// observe. Recording pauses until the log drains (which clears the
	// staged map) rather than risk recording against the stale overlay.
	stageStale bool
}

func (w *windowCtx) pending() int { return len(w.groups) - w.gCursor }

func (w *windowCtx) load(addr uint64, pc int, kind mem.AccessKind) (uint64, error) {
	if w.mode == wxRebuild {
		if w.rxCur >= len(w.ops) {
			return 0, errWindowStop
		}
		op := &w.ops[w.rxCur]
		w.rxCur++
		return op.val, nil
	}
	if addr&7 != 0 || !w.m.memory.InRange(addr) {
		// Unaligned accesses can straddle staging granules and bad
		// addresses fault; both re-execute serially.
		return 0, errWindowStop
	}
	v, ok := w.staged[addr]
	if !ok {
		v = w.m.memory.ReadU64(addr)
	}
	k := opLoadInt
	switch kind {
	case mem.LoadBias:
		k = opLoadBias
	case mem.LoadFP:
		k = opLoadFP
	}
	w.ops = append(w.ops, logOp{kind: k, pc: int32(pc), addr: addr, val: v})
	return v, nil
}

func (w *windowCtx) store(addr uint64, pc int, val uint64) error {
	if w.mode == wxRebuild {
		w.rxCur++
		return nil
	}
	if addr&7 != 0 || !w.m.memory.InRange(addr) {
		return errWindowStop
	}
	w.staged[addr] = val
	w.ops = append(w.ops, logOp{kind: opStore, pc: int32(pc), addr: addr, val: val})
	return nil
}

func (w *windowCtx) lfetch(addr uint64, pc int, excl, inRange bool) {
	if w.mode == wxRebuild {
		w.rxCur++
		return
	}
	k := opLfetchSkip
	if inRange {
		k = opLfetchShrd
		if excl {
			k = opLfetchExcl
		}
	}
	w.ops = append(w.ops, logOp{kind: k, pc: int32(pc), addr: addr})
}

func (w *windowCtx) branch(pc, target int) {
	if w.mode == wxRebuild {
		w.rxCur++
		return
	}
	w.ops = append(w.ops, logOp{kind: opBranch, pc: int32(pc), addr: uint64(target)})
}

func (w *windowCtx) endGroup(c *CPU, retired int64) {
	if w.mode == wxRebuild {
		return
	}
	w.groups = append(w.groups, logGroup{
		endPC:   int32(c.PC),
		retired: int32(retired),
		nOps:    int32(len(w.ops) - w.groupOp),
		halted:  c.Halted,
		horizon: w.horizon,
	})
	w.groupOp = len(w.ops)
}

// winWrite records the last committed writer of a word this window.
type winWrite struct {
	cpu int32
	seq int64
}

// defaultWindowGroups is the per-CPU recording quantum: how many issue
// groups a shadow runs ahead of the serial replay. Large enough to
// amortize the phase barrier over thousands of simulated instructions,
// small enough that a window replays in well under a millisecond of host
// time (cancellation latency) and the retained logs stay compact.
const defaultWindowGroups = 512

// maxOpsPerGroup bounds ops per issue group: at most 6 instructions
// (2 bundles x 3 slots) each logging at most one operation.
const maxOpsPerGroup = 6

// parEngine is the per-machine parallel window engine. Buffers persist
// across runs; worker goroutines live only for the duration of one
// runParallel call.
type parEngine struct {
	m       *Machine
	workers int
	window  int // issue groups per CPU per recording phase
	running bool

	scs []*windowCtx // indexed by CPU id
	rb  *CPU         // scratch CPU for rebuildRF

	winStores map[uint64]winWrite
	commitSeq int64

	work  [][]int // per-worker CPU ids for the current record phase
	start []chan struct{}
	quit  chan struct{}
	wg     sync.WaitGroup
	exited sync.WaitGroup
}

func newParEngine(m *Machine) *parEngine {
	w := m.cfg.SimWorkers
	if w > len(m.cpus) {
		w = len(m.cpus)
	}
	p := &parEngine{
		m:         m,
		workers:   w,
		window:    defaultWindowGroups,
		winStores: make(map[uint64]winWrite, 1024),
		work:      make([][]int, w),
		start:     make([]chan struct{}, w),
	}
	for i := range p.start {
		p.start[i] = make(chan struct{}, 1)
	}
	logCap := 4 * p.window // room for a retained tail plus a fresh window
	for i := range m.cpus {
		sc := &windowCtx{
			mode:   wxRecord,
			m:      m,
			staged: make(map[uint64]uint64, 256),
			ops:    make([]logOp, 0, maxOpsPerGroup*logCap),
			groups: make([]logGroup, 0, logCap),
			dirty:  true,
		}
		sc.cpu = &CPU{ID: i, m: m, Halted: true, wx: sc}
		p.scs = append(p.scs, sc)
	}
	p.rb = &CPU{m: m, Halted: true}
	return p
}

func (m *Machine) ensurePar() *parEngine {
	if m.par == nil {
		m.par = newParEngine(m)
	}
	return m.par
}

// beginRun invalidates all window state: shadows resync from the real
// CPUs before recording, because host code (thread starts, workload
// setup) mutates machine state freely between RunAll invocations.
func (p *parEngine) beginRun() {
	for _, sc := range p.scs {
		sc.dirty = true
		sc.stopped = false
		p.resetLog(sc)
	}
	clear(p.winStores)
	p.commitSeq = 0
}

func (p *parEngine) resetLog(sc *windowCtx) {
	sc.ops = sc.ops[:0]
	sc.groups = sc.groups[:0]
	sc.gCursor, sc.oCursor, sc.groupOp, sc.rxCur = 0, 0, 0, 0
	clear(sc.staged)
	sc.stageStale = false
	sc.originPC = sc.cpu.PC
}

func (p *parEngine) startWorkers() {
	p.quit = make(chan struct{})
	p.exited.Add(p.workers)
	for w := 0; w < p.workers; w++ {
		go p.worker(w, p.quit)
	}
}

// stopWorkers tears the pool down and waits for every goroutine to exit,
// so back-to-back RunAll calls never have two pools listening on the same
// start channels.
func (p *parEngine) stopWorkers() {
	close(p.quit)
	p.exited.Wait()
}

func (p *parEngine) worker(w int, quit <-chan struct{}) {
	defer p.exited.Done()
	for {
		select {
		case <-quit:
			return
		case <-p.start[w]:
			for _, id := range p.work[w] {
				p.recordCPU(id)
			}
			p.wg.Done()
		}
	}
}

// recordPhase tops up the window logs of every recordable CPU in
// parallel. The WaitGroup barrier orders all shadow reads of committed
// memory strictly between replay phases, so recording needs no atomics:
// workers only read machine state the replay is not mutating.
func (p *parEngine) recordPhase(active []int) {
	for w := range p.work {
		p.work[w] = p.work[w][:0]
	}
	started := 0
	for _, id := range active {
		real := p.m.cpus[id]
		sc := p.scs[id]
		if real.Halted || sc.stopped || sc.stageStale {
			continue
		}
		if sc.pending() >= p.window || len(sc.groups)+1 > cap(sc.groups) {
			continue
		}
		sc.horizon = p.commitSeq
		p.work[id%p.workers] = append(p.work[id%p.workers], id)
	}
	for w := range p.work {
		if len(p.work[w]) > 0 {
			p.wg.Add(1)
			started++
			p.start[w] <- struct{}{}
		}
	}
	if started > 0 {
		p.wg.Wait()
	}
}

// recordCPU runs one CPU's shadow forward, appending to its log. Runs on
// a worker goroutine; touches only the shadow, its log, committed memory
// (reads), and the image decode journal (reads) — all quiescent during a
// record phase.
func (p *parEngine) recordCPU(id int) {
	sc := p.scs[id]
	real := p.m.cpus[id]
	if sc.dirty {
		sc.cpu.RF = real.RF
		sc.cpu.PC = real.PC
		sc.cpu.Halted = real.Halted
		p.resetLog(sc)
		sc.stopped = false
		sc.dirty = false
	}
	for sc.pending() < p.window &&
		len(sc.groups) < cap(sc.groups) &&
		len(sc.ops)+maxOpsPerGroup <= cap(sc.ops) &&
		!sc.cpu.Halted {
		if _, err := sc.cpu.stepBundle(); err != nil {
			sc.ops = sc.ops[:sc.groupOp] // drop the aborted group's ops
			sc.stopped = true
			break
		}
	}
}

// consumeGroup validates and commits the next logged group of c: the
// serial-replay equivalent of one stepBundle call. Returns ok=false if a
// logged load conflicts with a cross-CPU store committed this window, in
// which case nothing was applied.
func (p *parEngine) consumeGroup(c *CPU, sc *windowCtx) (int64, bool) {
	g := &sc.groups[sc.gCursor]
	ops := sc.ops[sc.oCursor : sc.oCursor+int(g.nOps)]
	myID := int32(c.ID)

	// Validate every load before applying any effect: a logged value is
	// stale iff another CPU committed the word after this group's
	// recording phase began.
	for i := range ops {
		op := &ops[i]
		if op.kind > opLoadFP {
			continue
		}
		if e, ok := p.winStores[op.addr]; ok && e.cpu != myID && e.seq > g.horizon {
			return 0, false
		}
	}

	m := p.m
	startCycle := c.Cycle
	c.Cycle++ // issue cost of the group, as stepBundle charges it
	for i := range ops {
		op := &ops[i]
		switch op.kind {
		case opLoadInt, opLoadBias, opLoadFP:
			// The CPU's PC must track what the serial engine would show at
			// each PMU feed: overflow synchronously captures SamplePC.
			c.PC = int(op.pc) + 1
			kind := mem.LoadInt
			if op.kind == opLoadBias {
				kind = mem.LoadBias
			} else if op.kind == opLoadFP {
				kind = mem.LoadFP
			}
			res := m.dom.Access(c.ID, op.addr, kind, c.Cycle)
			if res.Ev != (mem.EventDelta{}) {
				c.feedMemEvents(&res.Ev)
			}
			c.PMU.Add(hpm.EvLoadsRetired, 1)
			c.PMU.RecordLoad(int(op.pc), op.addr, res.Latency)
			if res.Done > c.Cycle {
				c.Cycle = res.Done
			}
		case opStore:
			c.PC = int(op.pc) + 1
			res := m.dom.Access(c.ID, op.addr, mem.Store, c.Cycle)
			if res.Ev != (mem.EventDelta{}) {
				c.feedMemEvents(&res.Ev)
			}
			c.PMU.Add(hpm.EvStoresRetired, 1)
			if res.Done > c.Cycle {
				c.Cycle = res.Done
			}
			if e, ok := p.winStores[op.addr]; ok && e.cpu != myID {
				// Cross-CPU write-write sharing on this word: any other
				// CPU still holding staged stores may now carry a stale
				// overlay for it. Pause their recording until they drain.
				p.markStagedStale(myID)
			}
			m.memory.WriteU64(op.addr, op.val)
			p.commitSeq++
			p.winStores[op.addr] = winWrite{cpu: myID, seq: p.commitSeq}
		case opLfetchShrd, opLfetchExcl:
			c.PC = int(op.pc) + 1
			kind := mem.PrefShrd
			if op.kind == opLfetchExcl {
				kind = mem.PrefExcl
			}
			res := m.dom.Access(c.ID, op.addr, kind, c.Cycle)
			if res.Ev != (mem.EventDelta{}) {
				c.feedMemEvents(&res.Ev)
			}
			c.PMU.Add(hpm.EvPrefetchesRetired, 1)
		case opLfetchSkip:
			c.PC = int(op.pc) + 1
			c.PMU.Add(hpm.EvPrefetchesRetired, 1)
		case opBranch:
			c.PC = int(op.addr)
			c.PMU.RecordBranch(int(op.pc), c.PC)
			c.PMU.Add(hpm.EvTakenBranches, 1)
		}
	}
	c.PC = int(g.endPC)
	n := int64(g.retired)
	c.InstRetired += n
	c.PMU.Add(hpm.EvInstRetired, n)
	c.PMU.Add(hpm.EvCPUCycles, c.Cycle-startCycle)
	if g.halted {
		c.Halted = true
	}
	sc.gCursor++
	sc.oCursor += int(g.nOps)
	return n, true
}

func (p *parEngine) markStagedStale(committer int32) {
	for i, sc := range p.scs {
		if int32(i) != committer && len(sc.staged) != 0 {
			sc.stageStale = true
		}
	}
}

// replayWindow consumes logged groups in exact serial order until the
// minimum-cycle runnable CPU has nothing logged (the window is over) or
// every CPU halts (done=true). Timers, the instruction budget, and the
// interrupt poll fire at exactly the points the serial engine fires them.
func (p *parEngine) replayWindow(active []int, retired *int64) (bool, error) {
	m := p.m
	for {
		best := -1
		var bc int64
		for _, id := range active {
			c := m.cpus[id]
			if c.Halted {
				continue
			}
			if best == -1 || c.Cycle < bc || (c.Cycle == bc && id < best) {
				best, bc = id, c.Cycle
			}
		}
		if best == -1 {
			return true, nil
		}
		c := m.cpus[best]
		sc := p.scs[best]
		if sc.gCursor == len(sc.groups) {
			// The next CPU in serial order has nothing logged: the window
			// is over. If it stopped recording (fault or unwindowable op)
			// the remaining logs must go too — the serial engine takes
			// over from the exact commit point of every CPU.
			if sc.stopped {
				if err := p.abortWindow(active); err != nil {
					return false, err
				}
			}
			return false, nil
		}
		if m.timerNext != 0 && m.timerNext <= c.Cycle {
			gen := m.img.Generation()
			m.fireTimers(c.Cycle)
			if m.img.Generation() != gen {
				// A timer patched the binary; the pending logs were
				// decoded from the pre-patch image and are void.
				if err := p.abortWindow(active); err != nil {
					return false, err
				}
				return false, nil
			}
		}
		n, ok := p.consumeGroup(c, sc)
		if !ok {
			// A cross-CPU store raced a logged load: genuine simulated
			// data race. Nothing of the group was applied; re-run the
			// span serially from the exact commit point.
			if err := p.abortWindow(active); err != nil {
				return false, err
			}
			return false, nil
		}
		if sc.gCursor == len(sc.groups) && !sc.stopped {
			// Drained cleanly: the shadow registers are exactly the
			// serial machine's at this point. Adopt them and restart the
			// log here.
			c.RF = sc.cpu.RF
			p.resetLog(sc)
		}
		*retired += n
		if *retired > m.cfg.MaxInstrPerRun {
			if err := p.abortWindow(active); err != nil {
				return false, err
			}
			return false, fmt.Errorf("machine: instruction budget %d exceeded (runaway loop? PC=%d on CPU %d)",
				m.cfg.MaxInstrPerRun, c.PC, best)
		}
		if m.interrupt != nil {
			if err := m.pollInterrupt(n); err != nil {
				if aerr := p.abortWindow(active); aerr != nil {
					return false, aerr
				}
				return false, fmt.Errorf("machine: run interrupted: %w", err)
			}
		}
	}
}

// abortWindow materializes every CPU's architectural registers at its
// exact commit point and discards all window state. After it returns the
// real CPUs are byte-identical to a serial machine stopped at the same
// point, so execution can continue on either engine.
func (p *parEngine) abortWindow(active []int) error {
	for _, id := range active {
		sc := p.scs[id]
		c := p.m.cpus[id]
		switch {
		case sc.gCursor == 0:
			// Nothing consumed: the real registers are already at the
			// log's origin (or there is no log at all).
		case sc.gCursor == len(sc.groups) && !sc.stopped:
			c.RF = sc.cpu.RF
		default:
			if err := p.rebuildRF(c, sc); err != nil {
				return err
			}
		}
		p.resetLog(sc)
		sc.dirty = true
		// sc.stopped is preserved: runParallel uses it to route the
		// faulting span through the serial engine.
	}
	clear(p.winStores)
	return nil
}

// rebuildRF reconstructs c's registers at its current commit point by
// functionally re-executing the consumed prefix of its log from the log's
// origin, with loads observing their recorded values. Deterministic by
// construction: identical register inputs and load values reproduce the
// identical instruction stream.
func (p *parEngine) rebuildRF(c *CPU, sc *windowCtx) error {
	rb := p.rb
	rb.ID = c.ID
	rb.RF = c.RF
	rb.PC = sc.originPC
	rb.Cycle = 0
	rb.Halted = false
	// Borrow the shadow's decode cache: it still holds the image
	// generation the log was recorded against, even if a patch landed
	// during replay.
	rb.dec, rb.decGen = sc.cpu.dec, sc.cpu.decGen
	sc.mode = wxRebuild
	sc.rxCur = 0
	rb.wx = sc
	defer func() {
		sc.mode = wxRecord
		rb.wx = nil
		rb.dec = nil
	}()
	for g := 0; g < sc.gCursor; g++ {
		if _, err := rb.stepBundle(); err != nil {
			return fmt.Errorf("machine: window rebuild diverged on CPU %d: %w", c.ID, err)
		}
	}
	if sc.rxCur != sc.oCursor || rb.PC != c.PC {
		return fmt.Errorf("machine: window rebuild inconsistent on CPU %d (PC %d want %d, ops %d want %d)",
			c.ID, rb.PC, c.PC, sc.rxCur, sc.oCursor)
	}
	c.RF = rb.RF
	return nil
}

// runParallel is RunAll's engine when cfg.SimWorkers > 1 and more than
// one CPU is active: record/replay windows while several CPUs are
// runnable, with bounded serial stretches for the spans windowing cannot
// express (single-runnable regions, faulting or unwindowable code).
func (m *Machine) runParallel(active []int, retired *int64) error {
	p := m.ensurePar()
	if p.running {
		// Re-entrant RunAll (a timer running a nested region): the serial
		// engine is always correct.
		done, err := m.runSerial(active, -1, retired)
		if err != nil {
			return err
		}
		_ = done
		m.emitRunEnd(*retired)
		return nil
	}
	p.running = true
	p.beginRun()
	p.startWorkers()
	defer func() {
		p.stopWorkers()
		p.running = false
	}()
	for {
		runnable := 0
		needSerial := false
		allEmpty := true
		for _, id := range active {
			c := m.cpus[id]
			if c.Halted {
				continue
			}
			runnable++
			sc := p.scs[id]
			if sc.pending() > 0 {
				allEmpty = false
			}
			if sc.stopped && sc.pending() == 0 {
				needSerial = true
			}
		}
		if runnable == 0 {
			m.emitRunEnd(*retired)
			return nil
		}
		if allEmpty && len(p.winStores) != 0 {
			// No pending logs means no outstanding load horizons: every
			// conflict entry is dead, and with no staged stores alive the
			// write-write sharing tracker has nothing to protect either.
			// Dropping the map here bounds it by stores-per-window instead
			// of stores-per-run.
			clear(p.winStores)
		}
		// Barrier-aware cancellation: poll at every window boundary so
		// reaction latency is bounded by one window regardless of the
		// retired-instruction cadence.
		if m.interrupt != nil {
			if err := m.interrupt(); err != nil {
				return fmt.Errorf("machine: run interrupted: %w", err)
			}
		}
		if (runnable == 1 || needSerial) && allEmpty {
			// Spans the window engine cannot cover run on the serial
			// engine in bounded stretches: single-runnable regions step
			// without parallel overhead, and stopped shadows (faults,
			// unwindowable ops) re-execute — and fault — exactly where
			// the serial engine would.
			done, err := m.runSerial(active, int64(p.window), retired)
			for _, id := range active {
				sc := p.scs[id]
				sc.dirty = true
				sc.stopped = false
			}
			if err != nil {
				return err
			}
			if done {
				m.emitRunEnd(*retired)
				return nil
			}
			continue
		}
		p.recordPhase(active)
		done, err := p.replayWindow(active, retired)
		if err != nil {
			return err
		}
		if done {
			m.emitRunEnd(*retired)
			return nil
		}
	}
}

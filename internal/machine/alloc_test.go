package machine

import (
	"testing"

	"repro/internal/ia64"
	"repro/internal/obs"
)

// The simulator's per-instruction path must not allocate: steady-state
// throughput on the figure sweeps is bounded by this loop, and a single
// allocation per simulated instruction shows up as hundreds of megabytes
// of garbage per sweep. These regression tests pin the load/store and
// prefetch paths at zero allocations per stepped bundle group.

// warmSteps runs the CPU long enough to take the one-time allocations:
// decode-cache fill, sparse-memory chunk materialization, and cache/MSHR
// warm-up.
func warmSteps(t *testing.T, c *CPU, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if _, err := c.stepBundle(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestZeroAllocsLoadStorePath(t *testing.T) {
	img := ia64.NewImage()
	a := ia64.NewAsm(img, "ldst")
	a.Label("top")
	a.Emit(ia64.Instr{Op: ia64.OpLd, R1: 11, R2: 8})
	a.Emit(ia64.Instr{Op: ia64.OpSt, R2: 9, R3: 11})
	a.Emit(ia64.Instr{Op: ia64.OpAdd, R1: 12, R2: 12, R3: 11})
	a.Br(ia64.BrAlways, 0, "top")
	entry, err := a.Close()
	if err != nil {
		t.Fatal(err)
	}
	m := testMachine(t, img, 1)
	src := m.Memory().MustAlloc("src", 4096, 128)
	dst := m.Memory().MustAlloc("dst", 4096, 128)
	m.StartThread(0, entry, 1, func(rf *ia64.RegFile) {
		rf.SetGR(8, int64(src))
		rf.SetGR(9, int64(dst))
	})
	c := m.CPU(0)
	warmSteps(t, c, 64)

	avg := testing.AllocsPerRun(2000, func() {
		if _, err := c.stepBundle(); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Fatalf("load/store path allocates %.2f objects per bundle group, want 0", avg)
	}
}

func TestZeroAllocsPrefetchPath(t *testing.T) {
	img := ia64.NewImage()
	a := ia64.NewAsm(img, "pf")
	a.Label("top")
	a.Emit(ia64.Instr{Op: ia64.OpLfetch, R2: 8, Hint: ia64.HintNT1})
	a.Emit(ia64.Instr{Op: ia64.OpAddI, R1: 8, R2: 8, Imm: 128})
	a.Br(ia64.BrAlways, 0, "top")
	entry, err := a.Close()
	if err != nil {
		t.Fatal(err)
	}
	m := testMachine(t, img, 1)
	// Large enough that the advancing prefetch stream stays in range for
	// the whole measured run: every step issues real Domain prefetches
	// (L2/L3 misses, MSHR claims, bus transactions), not the non-faulting
	// drop path.
	buf := m.Memory().MustAlloc("buf", 4<<20, 128)
	m.StartThread(0, entry, 1, func(rf *ia64.RegFile) { rf.SetGR(8, int64(buf)) })
	c := m.CPU(0)
	warmSteps(t, c, 64)

	avg := testing.AllocsPerRun(2000, func() {
		if _, err := c.stepBundle(); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Fatalf("prefetch path allocates %.2f objects per bundle group, want 0", avg)
	}
}

// Observability must be free when idle: attaching an Observer whose
// surfaces are all disabled (the production default — cobra.New installs
// the machine's observer even when no -trace/-metrics flag was given) must
// not add a single allocation to the per-instruction path.
func TestZeroAllocsLoadStorePathWithObserver(t *testing.T) {
	img := ia64.NewImage()
	a := ia64.NewAsm(img, "ldst-obs")
	a.Label("top")
	a.Emit(ia64.Instr{Op: ia64.OpLd, R1: 11, R2: 8})
	a.Emit(ia64.Instr{Op: ia64.OpSt, R2: 9, R3: 11})
	a.Emit(ia64.Instr{Op: ia64.OpAdd, R1: 12, R2: 12, R3: 11})
	a.Br(ia64.BrAlways, 0, "top")
	entry, err := a.Close()
	if err != nil {
		t.Fatal(err)
	}
	m := testMachine(t, img, 1)
	m.SetObserver(obs.New(obs.Config{}))
	src := m.Memory().MustAlloc("src", 4096, 128)
	dst := m.Memory().MustAlloc("dst", 4096, 128)
	m.StartThread(0, entry, 1, func(rf *ia64.RegFile) {
		rf.SetGR(8, int64(src))
		rf.SetGR(9, int64(dst))
	})
	c := m.CPU(0)
	warmSteps(t, c, 64)

	avg := testing.AllocsPerRun(2000, func() {
		if _, err := c.stepBundle(); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Fatalf("load/store path with observer allocates %.2f objects per bundle group, want 0", avg)
	}
}

// The steady-state parallel window path — one record phase across worker
// goroutines plus one serial replay of the logged groups — must also be
// allocation-free: it runs thousands of times per simulated second, and
// the whole point of the engine is throughput. Log buffers, staging maps
// and the conflict map are pre-sized and recycled; this pins that.
func TestZeroAllocsSteadyWindowPath(t *testing.T) {
	img := ia64.NewImage()
	a := ia64.NewAsm(img, "ldst-win")
	a.Label("top")
	a.Emit(ia64.Instr{Op: ia64.OpLd, R1: 11, R2: 8})
	a.Emit(ia64.Instr{Op: ia64.OpSt, R2: 9, R3: 11})
	a.Emit(ia64.Instr{Op: ia64.OpAdd, R1: 12, R2: 12, R3: 11})
	a.Br(ia64.BrAlways, 0, "top")
	entry, err := a.Close()
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(2)
	cfg.Mem.MemBytes = 32 << 20
	cfg.SimWorkers = 2
	cfg.MaxInstrPerRun = 1 << 60
	m, err := New(cfg, img)
	if err != nil {
		t.Fatal(err)
	}
	for id := 0; id < 2; id++ {
		src := m.Memory().MustAlloc("src", 4096, 128)
		dst := m.Memory().MustAlloc("dst", 4096, 128)
		m.StartThread(id, entry, id+1, func(rf *ia64.RegFile) {
			rf.SetGR(8, int64(src))
			rf.SetGR(9, int64(dst))
		})
	}
	p := m.ensurePar()
	p.beginRun()
	p.startWorkers()
	defer p.stopWorkers()
	active := []int{0, 1}
	var retired int64
	window := func() {
		p.recordPhase(active)
		if _, err := p.replayWindow(active, &retired); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 8; i++ {
		window() // warm: decode caches, chunks, log capacity, conflict map
	}
	avg := testing.AllocsPerRun(50, window)
	if avg != 0 {
		t.Fatalf("steady-state window path allocates %.2f objects per window, want 0", avg)
	}
}

package machine

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/hpm"
	"repro/internal/ia64"
	"repro/internal/mem"
)

func testMachine(t *testing.T, img *ia64.Image, ncpu int) *Machine {
	t.Helper()
	cfg := DefaultConfig(ncpu)
	cfg.Mem.MemBytes = 32 << 20
	m, err := New(cfg, img)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// asmSumLoop builds: sum ints mem[base .. base+8*n) into r9 via a cloop.
func asmSumLoop(img *ia64.Image) int {
	a := ia64.NewAsm(img, "sum")
	// r8 = base (set by caller), r10 = n-1 for LC
	a.Emit(ia64.Instr{Op: ia64.OpMovToLC, R2: 10})
	a.Emit(ia64.Instr{Op: ia64.OpMovI, R1: 9, Imm: 0})
	a.Label("top")
	a.Emit(ia64.Instr{Op: ia64.OpLd, R1: 11, R2: 8})
	a.Emit(ia64.Instr{Op: ia64.OpAdd, R1: 9, R2: 9, R3: 11})
	a.Emit(ia64.Instr{Op: ia64.OpAddI, R1: 8, R2: 8, Imm: 8})
	a.Br(ia64.BrCloop, 0, "top")
	a.Emit(ia64.Instr{Op: ia64.OpHalt})
	entry, err := a.Close()
	if err != nil {
		panic(err)
	}
	return entry
}

func TestCountedLoopSum(t *testing.T) {
	img := ia64.NewImage()
	entry := asmSumLoop(img)
	m := testMachine(t, img, 1)

	base := m.Memory().MustAlloc("a", 8*10, 128)
	want := int64(0)
	for i := 0; i < 10; i++ {
		m.Memory().WriteI64(base+uint64(8*i), int64(i*3))
		want += int64(i * 3)
	}
	m.StartThread(0, entry, 1, func(rf *ia64.RegFile) {
		rf.SetGR(8, int64(base))
		rf.SetGR(10, 9) // LC = n-1
	})
	if _, err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	if got := m.CPU(0).RF.GR(9); got != want {
		t.Fatalf("sum = %d, want %d", got, want)
	}
}

// asmDaxpyCtop builds a software-pipelined y[i] += a*x[i] with rotating FP
// registers, structurally mirroring the paper's Figure 2.
func asmDaxpyCtop(img *ia64.Image) int {
	a := ia64.NewAsm(img, "daxpy_swp")
	// Inputs: r8=&x, r9=&y, r10=n, f6=a. Two pipeline stages: load(p16),
	// compute+store(p17). f32 rotates: value loaded under p16 is read as
	// f33 one rotation later.
	a.Emit(ia64.Instr{Op: ia64.OpClrrrb})
	a.Emit(ia64.Instr{Op: ia64.OpAddI, R1: 10, R2: 10, Imm: -1})
	a.Emit(ia64.Instr{Op: ia64.OpMovToLC, R2: 10})
	a.Emit(ia64.Instr{Op: ia64.OpMovToECI, Imm: 2})
	// Prime the first stage predicate (p16 = true) before entering the
	// kernel, as "mov pr.rot = 1<<16" does in real SWP prologues.
	a.Emit(ia64.Instr{Op: ia64.OpCmpI, Rel: ia64.CmpEQ, P1: 16, P2: 0, R2: 0, Imm: 0})
	a.Emit(ia64.Instr{Op: ia64.OpMovI, R1: 11, Imm: 0}) // store cursor lags
	a.Label("top")
	// Stage 1 (p16): load x[i], y[i]
	a.Emit(ia64.Instr{Op: ia64.OpLdf, R1: 32, R2: 8, QP: 16}) // f32 = x[i]
	a.Emit(ia64.Instr{Op: ia64.OpLdf, R1: 40, R2: 9, QP: 16}) // f40 = y[i]
	a.Emit(ia64.Instr{Op: ia64.OpAddI, R1: 8, R2: 8, Imm: 8, QP: 16})
	// Stage 2 (p17): y' = a*x + y, store (addresses lag one element)
	a.Emit(ia64.Instr{Op: ia64.OpFma, R1: 48, R2: 6, R3: 33, Imm: 41, QP: 17}) // f48 = a*f33+f41
	a.Emit(ia64.Instr{Op: ia64.OpStf, R2: 12, R3: 48, QP: 17})
	a.Emit(ia64.Instr{Op: ia64.OpAddI, R1: 12, R2: 12, Imm: 8, QP: 17})
	// y cursor for loads advances under p16; store cursor r12 initialized
	// to &y and advances under p17.
	a.Emit(ia64.Instr{Op: ia64.OpAddI, R1: 9, R2: 9, Imm: 8, QP: 16})
	a.Br(ia64.BrCtop, 0, "top")
	a.Emit(ia64.Instr{Op: ia64.OpHalt})
	entry, err := a.Close()
	if err != nil {
		panic(err)
	}
	return entry
}

func TestSoftwarePipelinedDaxpy(t *testing.T) {
	img := ia64.NewImage()
	entry := asmDaxpyCtop(img)
	m := testMachine(t, img, 1)

	const n = 37
	x := m.Memory().MustAlloc("x", 8*n, 128)
	y := m.Memory().MustAlloc("y", 8*n, 128)
	for i := 0; i < n; i++ {
		m.Memory().WriteF64(x+uint64(8*i), float64(i))
		m.Memory().WriteF64(y+uint64(8*i), float64(2*i))
	}
	m.StartThread(0, entry, 1, func(rf *ia64.RegFile) {
		rf.SetGR(8, int64(x))
		rf.SetGR(9, int64(y))
		rf.SetGR(10, n)
		rf.SetGR(12, int64(y))
		rf.SetFR(6, 3.0)
	})
	if _, err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		want := 3.0*float64(i) + float64(2*i)
		if got := m.Memory().ReadF64(y + uint64(8*i)); got != want {
			t.Fatalf("y[%d] = %v, want %v", i, got, want)
		}
	}
}

func TestPredicationSkipsInstructions(t *testing.T) {
	img := ia64.NewImage()
	a := ia64.NewAsm(img, "pred")
	a.Emit(ia64.Instr{Op: ia64.OpCmpI, Rel: ia64.CmpLT, P1: 2, P2: 3, R2: 8, Imm: 10}) // r8<10 ?
	a.Emit(ia64.Instr{Op: ia64.OpMovI, R1: 20, Imm: 111, QP: 2})
	a.Emit(ia64.Instr{Op: ia64.OpMovI, R1: 21, Imm: 222, QP: 3})
	a.Emit(ia64.Instr{Op: ia64.OpHalt})
	entry, err := a.Close()
	if err != nil {
		t.Fatal(err)
	}
	m := testMachine(t, img, 1)
	m.StartThread(0, entry, 1, func(rf *ia64.RegFile) { rf.SetGR(8, 5) })
	if _, err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	rf := &m.CPU(0).RF
	if rf.GR(20) != 111 || rf.GR(21) != 0 {
		t.Fatalf("r20=%d r21=%d, want 111, 0", rf.GR(20), rf.GR(21))
	}
}

func TestBranchCondAndBTB(t *testing.T) {
	img := ia64.NewImage()
	a := ia64.NewAsm(img, "br")
	a.Emit(ia64.Instr{Op: ia64.OpMovI, R1: 8, Imm: 0})
	a.Label("top")
	a.Emit(ia64.Instr{Op: ia64.OpAddI, R1: 8, R2: 8, Imm: 1})
	a.Emit(ia64.Instr{Op: ia64.OpCmpI, Rel: ia64.CmpLT, P1: 2, P2: 0, R2: 8, Imm: 3})
	a.Br(ia64.BrCond, 2, "top")
	a.Emit(ia64.Instr{Op: ia64.OpHalt})
	entry, err := a.Close()
	if err != nil {
		t.Fatal(err)
	}
	m := testMachine(t, img, 1)
	m.StartThread(0, entry, 1, nil)
	if _, err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	if got := m.CPU(0).RF.GR(8); got != 3 {
		t.Fatalf("r8 = %d, want 3", got)
	}
	btb := m.PMU(0).ReadBTB()
	if len(btb) != 2 {
		t.Fatalf("BTB entries = %d, want 2 taken branches", len(btb))
	}
	for _, e := range btb {
		if e.TargetPC != entry+1 {
			t.Fatalf("BTB target = %d, want %d", e.TargetPC, entry+1)
		}
		if e.BranchPC <= e.TargetPC {
			t.Fatal("loop branch must be backward")
		}
	}
}

func TestMemoryStallsAdvanceClock(t *testing.T) {
	img := ia64.NewImage()
	a := ia64.NewAsm(img, "ld")
	a.Emit(ia64.Instr{Op: ia64.OpLdf, R1: 32, R2: 8})
	a.Emit(ia64.Instr{Op: ia64.OpHalt})
	entry, _ := a.Close()
	m := testMachine(t, img, 1)
	addr := m.Memory().MustAlloc("a", 128, 128)
	m.StartThread(0, entry, 1, func(rf *ia64.RegFile) { rf.SetGR(8, int64(addr)) })
	if _, err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	if c := m.CPU(0).Cycle; c < m.Config().Mem.Lat.Memory {
		t.Fatalf("cycle %d below memory latency %d: cold miss did not stall", c, m.Config().Mem.Lat.Memory)
	}
}

func TestPrefetchDoesNotStall(t *testing.T) {
	img := ia64.NewImage()
	a := ia64.NewAsm(img, "pf")
	a.Emit(ia64.Instr{Op: ia64.OpLfetch, R2: 8, Hint: ia64.HintNT1})
	a.Emit(ia64.Instr{Op: ia64.OpHalt})
	entry, _ := a.Close()
	m := testMachine(t, img, 1)
	addr := m.Memory().MustAlloc("a", 128, 128)
	m.StartThread(0, entry, 1, func(rf *ia64.RegFile) { rf.SetGR(8, int64(addr)) })
	if _, err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	if c := m.CPU(0).Cycle; c >= m.Config().Mem.Lat.Memory {
		t.Fatalf("cycle %d: prefetch stalled the CPU", c)
	}
	// But the line was installed.
	if s := m.Domain().Probe(0, addr); s == mem.Invalid {
		t.Fatal("prefetched line not installed")
	}
}

func TestLfetchOutOfRangeIsNonFaulting(t *testing.T) {
	img := ia64.NewImage()
	a := ia64.NewAsm(img, "pfbad")
	a.Emit(ia64.Instr{Op: ia64.OpLfetch, R2: 8, Hint: ia64.HintNT1})
	a.Emit(ia64.Instr{Op: ia64.OpHalt})
	entry, _ := a.Close()
	m := testMachine(t, img, 1)
	m.StartThread(0, entry, 1, func(rf *ia64.RegFile) { rf.SetGR(8, 1<<40) })
	if _, err := m.Run(0); err != nil {
		t.Fatalf("lfetch to wild address faulted: %v", err)
	}
}

func TestPatchTakesEffectMidRun(t *testing.T) {
	// Rewrite the loop body's lfetch to NOP via a timer while the loop is
	// running — the core COBRA deployment mechanism.
	img := ia64.NewImage()
	a := ia64.NewAsm(img, "looppf")
	a.Emit(ia64.Instr{Op: ia64.OpMovToLCI, Imm: 999})
	a.Label("top")
	pfSlot := a.Emit(ia64.Instr{Op: ia64.OpLfetch, R2: 8, Hint: ia64.HintNT1})
	a.Emit(ia64.Instr{Op: ia64.OpAddI, R1: 8, R2: 8, Imm: 128})
	a.Br(ia64.BrCloop, 0, "top")
	a.Emit(ia64.Instr{Op: ia64.OpHalt})
	entry, _ := a.Close()
	m := testMachine(t, img, 1)
	addr := m.Memory().MustAlloc("a", 1<<20, 128)

	patched := false
	m.AddTimer(&Timer{NextAt: 500, Fn: func(now int64) int64 {
		if _, err := img.Patch(entry+pfSlot, ia64.Instr{Op: ia64.OpNop}); err != nil {
			t.Errorf("patch: %v", err)
		}
		patched = true
		return 0 // one-shot
	}})

	m.StartThread(0, entry, 1, func(rf *ia64.RegFile) { rf.SetGR(8, int64(addr)) })
	if _, err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	if !patched {
		t.Fatal("timer never fired")
	}
	// Prefetch count must be well below the 1000 iterations.
	st := m.Domain().Stats(0)
	if st.Prefetches >= 1000 {
		t.Fatalf("prefetches = %d: patch had no effect", st.Prefetches)
	}
	if st.Prefetches == 0 {
		t.Fatal("prefetches = 0: patch applied before any execution?")
	}
}

func TestTimersFireInRegistrationOrderAtEqualCycles(t *testing.T) {
	// Three timers: two due at the same cycle (must fire in registration
	// order) and one due earlier (must fire first). The dispatch contract is
	// what keeps COBRA runs reproducible when several optimizer threads
	// share a deadline.
	img := ia64.NewImage()
	entry := asmSumLoop(img)
	m := testMachine(t, img, 1)
	base := m.Memory().MustAlloc("a", 8*512, 128)

	var order []string
	m.AddTimer(&Timer{NextAt: 700, Fn: func(now int64) int64 {
		order = append(order, "A@700")
		return 0
	}})
	m.AddTimer(&Timer{NextAt: 700, Fn: func(now int64) int64 {
		order = append(order, "B@700")
		return 0
	}})
	m.AddTimer(&Timer{NextAt: 200, Fn: func(now int64) int64 {
		order = append(order, "C@200")
		return 0
	}})

	m.StartThread(0, entry, 1, func(rf *ia64.RegFile) {
		rf.SetGR(8, int64(base))
		rf.SetGR(10, 511)
	})
	if _, err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	want := "C@200,A@700,B@700"
	got := strings.Join(order, ",")
	if got != want {
		t.Fatalf("timer firing order = %s, want %s", got, want)
	}
}

func TestTimerRegisteredByTimerFnIsNotLost(t *testing.T) {
	// A timer Fn that registers a new timer mid-dispatch (as the COBRA
	// runtime does when it spins up a phase-specific optimizer) must not be
	// dropped by the dispatch pass's compaction.
	img := ia64.NewImage()
	entry := asmSumLoop(img)
	m := testMachine(t, img, 1)
	base := m.Memory().MustAlloc("a", 8*512, 128)

	childFired := false
	m.AddTimer(&Timer{NextAt: 200, Fn: func(now int64) int64 {
		m.AddTimer(&Timer{NextAt: now + 100, Fn: func(now int64) int64 {
			childFired = true
			return 0
		}})
		return 0
	}})
	m.StartThread(0, entry, 1, func(rf *ia64.RegFile) {
		rf.SetGR(8, int64(base))
		rf.SetGR(10, 511)
	})
	if _, err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	if !childFired {
		t.Fatal("timer registered from within a timer Fn never fired")
	}
}

func TestRunAllHaltedCPUsWithPendingTimerIsError(t *testing.T) {
	img := ia64.NewImage()
	a := ia64.NewAsm(img, "halt")
	a.Emit(ia64.Instr{Op: ia64.OpHalt})
	entry, _ := a.Close()
	m := testMachine(t, img, 1)
	m.AddTimer(&Timer{NextAt: 1000, Fn: func(now int64) int64 { return now + 1000 }})

	// All CPUs halted (no StartThread) + a pending timer: the timer can
	// never fire, so RunAll must refuse instead of silently succeeding.
	if _, err := m.RunAll([]int{0}); err == nil {
		t.Fatal("RunAll succeeded with all CPUs halted and a timer pending")
	}

	// After starting a thread the same call must succeed, even though the
	// timer is still pending when the CPU halts at the end of the run.
	m.StartThread(0, entry, 1, nil)
	if _, err := m.RunAll([]int{0}); err != nil {
		t.Fatalf("RunAll with a runnable CPU: %v", err)
	}

	// An empty active set is a no-op, never an error.
	if n, err := m.RunAll(nil); err != nil || n != 0 {
		t.Fatalf("RunAll(nil) = %d, %v", n, err)
	}
}

func TestRunAllDeterministic(t *testing.T) {
	run := func() int64 {
		img := ia64.NewImage()
		entry := asmSumLoop(img)
		m := testMachine(t, img, 2)
		base0 := m.Memory().MustAlloc("a0", 8*64, 128)
		base1 := m.Memory().MustAlloc("a1", 8*64, 128)
		m.StartThread(0, entry, 1, func(rf *ia64.RegFile) {
			rf.SetGR(8, int64(base0))
			rf.SetGR(10, 63)
		})
		m.StartThread(1, entry, 2, func(rf *ia64.RegFile) {
			rf.SetGR(8, int64(base1))
			rf.SetGR(10, 63)
		})
		if _, err := m.RunAll([]int{0, 1}); err != nil {
			t.Fatal(err)
		}
		return m.GlobalCycle()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("non-deterministic: %d vs %d cycles", a, b)
	}
}

func TestRunawayLoopDetected(t *testing.T) {
	img := ia64.NewImage()
	a := ia64.NewAsm(img, "spin")
	a.Label("top")
	a.Br(ia64.BrAlways, 0, "top")
	entry, _ := a.Close()
	cfg := DefaultConfig(1)
	cfg.Mem.MemBytes = 1 << 20
	cfg.MaxInstrPerRun = 10000
	m, err := New(cfg, img)
	if err != nil {
		t.Fatal(err)
	}
	m.StartThread(0, entry, 1, nil)
	if _, err := m.Run(0); err == nil {
		t.Fatal("runaway loop not detected")
	}
}

func TestSyncClocksBarrier(t *testing.T) {
	img := ia64.NewImage()
	img.Append(ia64.Instr{Op: ia64.OpHalt})
	m := testMachine(t, img, 4)
	m.CPU(2).Cycle = 1000
	m.SyncClocks(m.GlobalCycle())
	for i := 0; i < 4; i++ {
		if m.CPU(i).Cycle != 1000 {
			t.Fatalf("CPU %d cycle = %d after barrier", i, m.CPU(i).Cycle)
		}
	}
}

func TestInstRetiredCounted(t *testing.T) {
	img := ia64.NewImage()
	entry := asmSumLoop(img)
	m := testMachine(t, img, 1)
	base := m.Memory().MustAlloc("a", 8*4, 128)
	m.StartThread(0, entry, 1, func(rf *ia64.RegFile) {
		rf.SetGR(8, int64(base))
		rf.SetGR(10, 3)
	})
	n, err := m.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 || n != m.CPU(0).InstRetired {
		t.Fatalf("retired = %d vs CPU count %d", n, m.CPU(0).InstRetired)
	}
	if _, v := m.PMU(0).Read(0); v != 0 {
		// Counter 0 unprogrammed: reading must be 0.
		t.Fatalf("unprogrammed counter = %d", v)
	}
}

func TestPMUSeesMemoryEvents(t *testing.T) {
	img := ia64.NewImage()
	a := ia64.NewAsm(img, "mems")
	a.Emit(ia64.Instr{Op: ia64.OpLdf, R1: 32, R2: 8})
	a.Emit(ia64.Instr{Op: ia64.OpHalt})
	entry, _ := a.Close()
	m := testMachine(t, img, 1)
	m.PMU(0).Program(0, hpm.EvL3Misses, 0)
	m.PMU(0).Program(1, hpm.EvBusMemory, 0)
	addr := m.Memory().MustAlloc("a", 128, 128)
	m.StartThread(0, entry, 1, func(rf *ia64.RegFile) { rf.SetGR(8, int64(addr)) })
	if _, err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	if _, v := m.PMU(0).Read(0); v != 1 {
		t.Fatalf("L3 miss counter = %d, want 1", v)
	}
	if _, v := m.PMU(0).Read(1); v != 1 {
		t.Fatalf("bus counter = %d, want 1", v)
	}
}

func TestDEARCapturesDelinquentLoad(t *testing.T) {
	img := ia64.NewImage()
	a := ia64.NewAsm(img, "dear")
	ldSlot := a.Emit(ia64.Instr{Op: ia64.OpLdf, R1: 32, R2: 8})
	a.Emit(ia64.Instr{Op: ia64.OpHalt})
	entry, _ := a.Close()
	m := testMachine(t, img, 1)
	m.PMU(0).SetDEARFilter(100, 1) // memory-latency loads only
	addr := m.Memory().MustAlloc("a", 128, 128)
	m.StartThread(0, entry, 1, func(rf *ia64.RegFile) { rf.SetGR(8, int64(addr)) })
	if _, err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	s := m.PMU(0).ReadDEAR()
	if !s.Valid || s.PC != entry+ldSlot || s.Addr != addr {
		t.Fatalf("DEAR = %+v, want capture of load at %d addr %#x", s, entry+ldSlot, addr)
	}
}

// TestInterruptAbortsRun: an installed interrupt poll that starts
// returning an error stops RunAll mid-loop with that error wrapped — the
// mechanism a service uses to cancel a session without waiting for the
// program to halt.
func TestInterruptAbortsRun(t *testing.T) {
	img := ia64.NewImage()
	entry := asmSumLoop(img)
	m := testMachine(t, img, 1)

	const n = 1 << 16 // long enough to cross several poll intervals
	base := m.Memory().MustAlloc("a", 8*n, 128)
	m.StartThread(0, entry, 1, func(rf *ia64.RegFile) {
		rf.SetGR(8, int64(base))
		rf.SetGR(10, n-1)
	})
	stop := errors.New("cancelled by host")
	polls := 0
	m.SetInterrupt(func() error {
		polls++
		if polls >= 2 {
			return stop
		}
		return nil
	}, 10_000)
	_, err := m.Run(0)
	if !errors.Is(err, stop) {
		t.Fatalf("interrupted run: err = %v, want wrapped %v", err, stop)
	}
	if polls != 2 {
		t.Fatalf("poll count = %d, want 2 (every ~10k instructions)", polls)
	}
	if !strings.Contains(err.Error(), "run interrupted") {
		t.Fatalf("error does not say the run was interrupted: %v", err)
	}
}

// TestInterruptQuietDoesNotPerturbSimulation: a poll that never fires an
// error must leave the simulated outcome (cycles, registers) bit-identical
// to an uninstrumented run — cancellation support must be free when unused.
func TestInterruptQuietDoesNotPerturbSimulation(t *testing.T) {
	run := func(withPoll bool) (int64, int64) {
		img := ia64.NewImage()
		entry := asmSumLoop(img)
		m := testMachine(t, img, 1)
		const n = 4096
		base := m.Memory().MustAlloc("a", 8*n, 128)
		for i := 0; i < n; i++ {
			m.Memory().WriteI64(base+uint64(8*i), int64(i))
		}
		m.StartThread(0, entry, 1, func(rf *ia64.RegFile) {
			rf.SetGR(8, int64(base))
			rf.SetGR(10, n-1)
		})
		if withPoll {
			m.SetInterrupt(func() error { return nil }, 1000)
		}
		if _, err := m.Run(0); err != nil {
			t.Fatal(err)
		}
		return m.GlobalCycle(), m.CPU(0).RF.GR(9)
	}
	c0, s0 := run(false)
	c1, s1 := run(true)
	if c0 != c1 || s0 != s1 {
		t.Fatalf("quiet interrupt perturbed the run: cycles %d vs %d, sum %d vs %d", c0, c1, s0, s1)
	}
}

package machine

import (
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"repro/internal/hpm"
	"repro/internal/ia64"
	"repro/internal/mem"
)

// The parallel window engine's contract is byte-identical results: every
// architectural register, every memory word, every PMU counter, every
// cycle count must match the serial engine exactly — for race-free
// programs, for programs with genuine cross-CPU sharing (conflict
// aborts), for mid-run binary patches, and for faulting code. These tests
// run the same scenario on both engines and compare everything.

// parSnapshot is everything observable about a finished machine.
type parSnapshot struct {
	RF      []ia64.RegFile
	PC      []int
	Cycle   []int64
	Retired []int64
	Halted  []bool
	PMU     []string
	DEAR    []hpm.DEARSample
	BTB     [][]hpm.BranchPair
	Stats   []mem.CPUStats
	Global  int64
	Mem     map[uint64]int64
}

func snapshotAll(m *Machine) *parSnapshot {
	s := &parSnapshot{Global: m.GlobalCycle(), Mem: map[uint64]int64{}}
	for id := 0; id < m.NumCPUs(); id++ {
		c := m.CPU(id)
		s.RF = append(s.RF, c.RF)
		s.PC = append(s.PC, c.PC)
		s.Cycle = append(s.Cycle, c.Cycle)
		s.Retired = append(s.Retired, c.InstRetired)
		s.Halted = append(s.Halted, c.Halted)
		var pmu string
		for _, ctr := range c.PMU.ReadAll() {
			pmu += fmt.Sprintf("%d=%d/%d;", ctr.Event, ctr.Value, ctr.Period)
		}
		s.PMU = append(s.PMU, pmu)
		s.DEAR = append(s.DEAR, c.PMU.ReadDEAR())
		s.BTB = append(s.BTB, c.PMU.ReadBTB())
		s.Stats = append(s.Stats, m.Domain().Stats(id))
	}
	for _, seg := range m.Memory().Segments() {
		for off := uint64(0); off+8 <= seg.Size; off += 8 {
			s.Mem[seg.Base+off] = m.Memory().ReadI64(seg.Base + off)
		}
	}
	return s
}

// parScenario builds a machine, starts its threads, and returns the
// active CPU set. Run once per engine on a fresh image.
type parScenario func(t *testing.T, workers int) (*Machine, []int)

// runBothEngines runs the scenario serially and at several worker counts
// and requires bit-identical outcomes (including identical errors).
func runBothEngines(t *testing.T, build parScenario) {
	t.Helper()
	type outcome struct {
		snap *parSnapshot
		n    int64
		err  string
	}
	run := func(workers int) outcome {
		m, active := build(t, workers)
		n, err := m.RunAll(active)
		o := outcome{snap: snapshotAll(m), n: n}
		if err != nil {
			o.err = err.Error()
		}
		return o
	}
	base := run(0)
	for _, w := range []int{2, 3, 8} {
		got := run(w)
		if got.err != base.err {
			t.Fatalf("workers=%d: err = %q, want %q", w, got.err, base.err)
		}
		if got.n != base.n {
			t.Fatalf("workers=%d: retired = %d, want %d", w, got.n, base.n)
		}
		if !reflect.DeepEqual(got.snap, base.snap) {
			diffSnapshots(t, w, base.snap, got.snap)
		}
	}
}

func diffSnapshots(t *testing.T, workers int, want, got *parSnapshot) {
	t.Helper()
	for id := range want.RF {
		if want.RF[id] != got.RF[id] {
			t.Errorf("workers=%d cpu%d: register file differs", workers, id)
		}
		if want.PC[id] != got.PC[id] || want.Cycle[id] != got.Cycle[id] ||
			want.Retired[id] != got.Retired[id] || want.Halted[id] != got.Halted[id] {
			t.Errorf("workers=%d cpu%d: pc/cycle/retired/halted = %d/%d/%d/%v, want %d/%d/%d/%v",
				workers, id, got.PC[id], got.Cycle[id], got.Retired[id], got.Halted[id],
				want.PC[id], want.Cycle[id], want.Retired[id], want.Halted[id])
		}
		if want.PMU[id] != got.PMU[id] {
			t.Errorf("workers=%d cpu%d: PMU %s, want %s", workers, id, got.PMU[id], want.PMU[id])
		}
		if want.DEAR[id] != got.DEAR[id] {
			t.Errorf("workers=%d cpu%d: DEAR differs", workers, id)
		}
		if !reflect.DeepEqual(want.BTB[id], got.BTB[id]) {
			t.Errorf("workers=%d cpu%d: BTB differs", workers, id)
		}
		if want.Stats[id] != got.Stats[id] {
			t.Errorf("workers=%d cpu%d: domain stats = %+v, want %+v", workers, id, got.Stats[id], want.Stats[id])
		}
	}
	if want.Global != got.Global {
		t.Errorf("workers=%d: global cycle = %d, want %d", workers, got.Global, want.Global)
	}
	for a, v := range want.Mem {
		if got.Mem[a] != v {
			t.Errorf("workers=%d: mem[%#x] = %d, want %d", workers, a, got.Mem[a], v)
		}
	}
	t.FailNow()
}

func parMachine(t *testing.T, img *ia64.Image, ncpu, workers int) *Machine {
	t.Helper()
	cfg := DefaultConfig(ncpu)
	cfg.Mem.MemBytes = 32 << 20
	cfg.SimWorkers = workers
	m, err := New(cfg, img)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestParallelMatchesSerialDisjoint: race-free CPUs summing private
// arrays, halting at staggered times (exercising the drain and the
// single-runnable serial-stretch tail).
func TestParallelMatchesSerialDisjoint(t *testing.T) {
	runBothEngines(t, func(t *testing.T, workers int) (*Machine, []int) {
		img := ia64.NewImage()
		entry := asmSumLoop(img)
		m := parMachine(t, img, 4, workers)
		active := []int{0, 1, 2, 3}
		for _, id := range active {
			base := m.Memory().MustAlloc("a", 8*2100, 128)
			for i := 0; i < 2100; i++ {
				m.Memory().WriteI64(base+uint64(8*i), int64(i*3+id))
			}
			n := 1500 + 137*id // staggered halt cycles
			m.StartThread(id, entry, id+1, func(rf *ia64.RegFile) {
				rf.SetGR(8, int64(base))
				rf.SetGR(10, int64(n))
			})
		}
		return m, active
	})
}

// asmShareLoop: each CPU publishes its running sum to its own word and
// folds in a neighbour's word every iteration — genuine cross-CPU
// read-write sharing, the conflict-abort worst case. The serial engine's
// interleaving is the definition of correct; the window engine must
// reproduce it exactly.
func asmShareLoop(img *ia64.Image) int {
	a := ia64.NewAsm(img, "share")
	// r8 = &own, r9 = &neighbour, r10 = LC, r11 = sum, r12 = scratch
	a.Emit(ia64.Instr{Op: ia64.OpMovToLC, R2: 10})
	a.Emit(ia64.Instr{Op: ia64.OpMovI, R1: 11, Imm: 0})
	a.Label("top")
	a.Emit(ia64.Instr{Op: ia64.OpSt, R2: 8, R3: 11})
	a.Emit(ia64.Instr{Op: ia64.OpLd, R1: 12, R2: 9})
	a.Emit(ia64.Instr{Op: ia64.OpAdd, R1: 11, R2: 11, R3: 12})
	a.Emit(ia64.Instr{Op: ia64.OpAddI, R1: 11, R2: 11, Imm: 1})
	a.Br(ia64.BrCloop, 0, "top")
	a.Emit(ia64.Instr{Op: ia64.OpHalt})
	entry, err := a.Close()
	if err != nil {
		panic(err)
	}
	return entry
}

func TestParallelMatchesSerialSharing(t *testing.T) {
	runBothEngines(t, func(t *testing.T, workers int) (*Machine, []int) {
		img := ia64.NewImage()
		entry := asmShareLoop(img)
		const ncpu = 4
		m := parMachine(t, img, ncpu, workers)
		shared := m.Memory().MustAlloc("shared", 8*ncpu, 128)
		active := []int{0, 1, 2, 3}
		for _, id := range active {
			own := shared + uint64(8*id)
			nb := shared + uint64(8*((id+1)%ncpu))
			m.StartThread(id, entry, id+1, func(rf *ia64.RegFile) {
				rf.SetGR(8, int64(own))
				rf.SetGR(9, int64(nb))
				rf.SetGR(10, int64(900+31*id))
			})
		}
		return m, active
	})
}

// TestParallelMatchesSerialPatchTimer: a timer patches a prefetch out of
// the shared loop body mid-run. The image-generation change must abort
// the in-flight window so no CPU ever replays stale decodes.
func TestParallelMatchesSerialPatchTimer(t *testing.T) {
	runBothEngines(t, func(t *testing.T, workers int) (*Machine, []int) {
		img := ia64.NewImage()
		a := ia64.NewAsm(img, "looppf")
		a.Emit(ia64.Instr{Op: ia64.OpMovToLCI, Imm: 1999})
		a.Label("top")
		pfSlot := a.Emit(ia64.Instr{Op: ia64.OpLfetch, R2: 8, Hint: ia64.HintNT1})
		a.Emit(ia64.Instr{Op: ia64.OpAddI, R1: 8, R2: 8, Imm: 128})
		a.Emit(ia64.Instr{Op: ia64.OpLd, R1: 11, R2: 9})
		a.Emit(ia64.Instr{Op: ia64.OpAdd, R1: 12, R2: 12, R3: 11})
		a.Br(ia64.BrCloop, 0, "top")
		a.Emit(ia64.Instr{Op: ia64.OpHalt})
		entry, err := a.Close()
		if err != nil {
			t.Fatal(err)
		}
		m := parMachine(t, img, 2, workers)
		m.AddTimer(&Timer{NextAt: 5000, Fn: func(now int64) int64 {
			if _, err := img.Patch(entry+pfSlot, ia64.Instr{Op: ia64.OpNop}); err != nil {
				t.Errorf("patch: %v", err)
			}
			return 0
		}})
		for id := 0; id < 2; id++ {
			buf := m.Memory().MustAlloc("buf", 1<<20, 128)
			word := m.Memory().MustAlloc("w", 8, 128)
			m.Memory().WriteI64(word, int64(7+id))
			m.StartThread(id, entry, id+1, func(rf *ia64.RegFile) {
				rf.SetGR(8, int64(buf))
				rf.SetGR(9, int64(word))
			})
		}
		return m, []int{0, 1}
	})
}

// TestParallelMatchesSerialUnaligned: one CPU issues unaligned loads
// (straddling staging granules), which the recorder cannot window — the
// spot must re-execute on the serial engine with identical results.
func TestParallelMatchesSerialUnaligned(t *testing.T) {
	runBothEngines(t, func(t *testing.T, workers int) (*Machine, []int) {
		img := ia64.NewImage()
		entry := asmSumLoop(img)
		m := parMachine(t, img, 2, workers)
		active := []int{0, 1}
		for _, id := range active {
			base := m.Memory().MustAlloc("a", 8*600+4, 128)
			if id == 1 {
				base += 4 // every load misaligned on CPU 1
			}
			m.StartThread(id, entry, id+1, func(rf *ia64.RegFile) {
				rf.SetGR(8, int64(base))
				rf.SetGR(10, 511)
			})
		}
		return m, active
	})
}

// TestParallelMatchesSerialBadPC: a computed branch jumps outside the
// image mid-run. The error — and the machine state left behind — must be
// identical to the serial engine's.
func TestParallelMatchesSerialBadPC(t *testing.T) {
	runBothEngines(t, func(t *testing.T, workers int) (*Machine, []int) {
		img := ia64.NewImage()
		entry := asmSumLoop(img)

		// CPU 1 runs a short loop, then falls off the end of the image.
		a := ia64.NewAsm(img, "fall")
		a.Emit(ia64.Instr{Op: ia64.OpMovToLCI, Imm: 700})
		a.Label("top")
		a.Emit(ia64.Instr{Op: ia64.OpAddI, R1: 11, R2: 11, Imm: 1})
		a.Br(ia64.BrCloop, 0, "top")
		fall, err := a.Close()
		if err != nil {
			t.Fatal(err)
		}

		m := parMachine(t, img, 2, workers)
		base := m.Memory().MustAlloc("a", 8*4096, 128)
		m.StartThread(0, entry, 1, func(rf *ia64.RegFile) {
			rf.SetGR(8, int64(base))
			rf.SetGR(10, 4000)
		})
		m.StartThread(1, fall, 2, nil)
		return m, []int{0, 1}
	})
}

// TestParallelMatchesSerialBudget: the instruction budget must trip at
// the same retired count, with the same error text, on both engines.
func TestParallelMatchesSerialBudget(t *testing.T) {
	runBothEngines(t, func(t *testing.T, workers int) (*Machine, []int) {
		img := ia64.NewImage()
		a := ia64.NewAsm(img, "spin")
		a.Label("top")
		a.Emit(ia64.Instr{Op: ia64.OpAddI, R1: 11, R2: 11, Imm: 1})
		a.Br(ia64.BrAlways, 0, "top")
		entry, err := a.Close()
		if err != nil {
			t.Fatal(err)
		}
		cfg := DefaultConfig(2)
		cfg.Mem.MemBytes = 1 << 20
		cfg.MaxInstrPerRun = 25_000
		cfg.SimWorkers = workers
		m, err := New(cfg, img)
		if err != nil {
			t.Fatal(err)
		}
		m.StartThread(0, entry, 1, nil)
		m.StartThread(1, entry, 2, nil)
		return m, []int{0, 1}
	})
}

// TestParallelInterruptBarrierAware: cancellation must be honoured at
// every window boundary even when the retired-instruction poll cadence
// would never fire — reaction latency is bounded by one window, not by
// the poll interval (the cobrad session-cancel regression).
func TestParallelInterruptBarrierAware(t *testing.T) {
	img := ia64.NewImage()
	entry := asmSumLoop(img)
	m := parMachine(t, img, 2, 2)
	p := m.ensurePar()
	p.window = 64 // small window: several boundaries even in a short run

	base0 := m.Memory().MustAlloc("a0", 8*65536, 128)
	base1 := m.Memory().MustAlloc("a1", 8*65536, 128)
	m.StartThread(0, entry, 1, func(rf *ia64.RegFile) {
		rf.SetGR(8, int64(base0))
		rf.SetGR(10, 65535)
	})
	m.StartThread(1, entry, 2, func(rf *ia64.RegFile) {
		rf.SetGR(8, int64(base1))
		rf.SetGR(10, 65535)
	})

	stop := errors.New("session cancelled")
	polls := 0
	// Interval far beyond the program length: the per-instruction cadence
	// alone would run the program to completion without ever polling.
	m.SetInterrupt(func() error {
		polls++
		if polls >= 3 {
			return stop
		}
		return nil
	}, 1<<60)

	n, err := m.RunAll([]int{0, 1})
	if !errors.Is(err, stop) {
		t.Fatalf("err = %v, want wrapped %v", err, stop)
	}
	if !strings.Contains(err.Error(), "run interrupted") {
		t.Fatalf("error does not say the run was interrupted: %v", err)
	}
	// Three boundary polls at a 64-group window: the run must have been
	// cut short after a handful of windows, far below the full program.
	maxRetired := int64(3 * 2 * 64 * 8)
	if n <= 0 || n > maxRetired {
		t.Fatalf("retired %d instructions before honouring cancel, want (0, %d]", n, maxRetired)
	}
}

// TestParallelInterruptQuietIdentical: a poll that never fires must leave
// the parallel outcome bit-identical to the serial one even though the
// parallel engine polls extra times at window boundaries.
func TestParallelInterruptQuietIdentical(t *testing.T) {
	runBothEngines(t, func(t *testing.T, workers int) (*Machine, []int) {
		img := ia64.NewImage()
		entry := asmSumLoop(img)
		m := parMachine(t, img, 2, workers)
		active := []int{0, 1}
		for _, id := range active {
			base := m.Memory().MustAlloc("a", 8*3000, 128)
			m.StartThread(id, entry, id+1, func(rf *ia64.RegFile) {
				rf.SetGR(8, int64(base))
				rf.SetGR(10, 2500)
			})
		}
		m.SetInterrupt(func() error { return nil }, 1000)
		return m, active
	})
}

// TestParallelRunAllReusable: back-to-back RunAll calls on one machine
// (the fork-join pattern every workload uses) must keep producing
// serial-identical results — shadow state must never leak across runs.
func TestParallelRunAllReusable(t *testing.T) {
	runBothEngines(t, func(t *testing.T, workers int) (*Machine, []int) {
		img := ia64.NewImage()
		entry := asmShareLoop(img)
		const ncpu = 3
		m := parMachine(t, img, ncpu, workers)
		shared := m.Memory().MustAlloc("shared", 8*ncpu, 128)
		for round := 0; round < 3; round++ {
			for id := 0; id < ncpu; id++ {
				own := shared + uint64(8*id)
				nb := shared + uint64(8*((id+1)%ncpu))
				m.StartThread(id, entry, id+1, func(rf *ia64.RegFile) {
					rf.SetGR(8, int64(own))
					rf.SetGR(9, int64(nb))
					rf.SetGR(10, int64(300+17*id+50*round))
				})
			}
			if _, err := m.RunAll([]int{0, 1, 2}); err != nil {
				t.Fatal(err)
			}
		}
		// Final round is the one the harness compares.
		for id := 0; id < ncpu; id++ {
			own := shared + uint64(8*id)
			nb := shared + uint64(8*((id+1)%ncpu))
			m.StartThread(id, entry, id+1, func(rf *ia64.RegFile) {
				rf.SetGR(8, int64(own))
				rf.SetGR(9, int64(nb))
				rf.SetGR(10, 400)
			})
		}
		return m, []int{0, 1, 2}
	})
}

package compiler

import (
	"repro/internal/ia64"
	"repro/internal/loopir"
)

// refInfo is one array reference found in a loop body.
type refInfo struct {
	array string
	index loopir.IntExpr
	store bool
}

func collectRefs(stmts []loopir.Stmt) []refInfo {
	var out []refInfo
	var walkI func(loopir.IntExpr)
	var walkF func(loopir.FloatExpr)
	walkI = func(e loopir.IntExpr) {
		switch ex := e.(type) {
		case loopir.IBin:
			walkI(ex.A)
			walkI(ex.B)
		case loopir.ILoad:
			walkI(ex.Index)
			out = append(out, refInfo{array: ex.Array, index: ex.Index})
		}
	}
	walkF = func(e loopir.FloatExpr) {
		switch ex := e.(type) {
		case loopir.FBin:
			walkF(ex.A)
			walkF(ex.B)
		case loopir.FLoad:
			walkI(ex.Index)
			out = append(out, refInfo{array: ex.Array, index: ex.Index})
		case loopir.FFromInt:
			walkI(ex.E)
		}
	}
	for _, s := range stmts {
		switch st := s.(type) {
		case loopir.FStore:
			walkF(st.Val)
			walkI(st.Index)
			out = append(out, refInfo{array: st.Array, index: st.Index, store: true})
		case loopir.IStore:
			walkI(st.Val)
			walkI(st.Index)
			out = append(out, refInfo{array: st.Array, index: st.Index, store: true})
		case loopir.SetF:
			walkF(st.Val)
		case loopir.SetI:
			walkI(st.Val)
		}
	}
	return out
}

// pfStream is one prefetch stream: a representative cursor for an
// (array, stride) pair.
type pfStream struct {
	array  string
	stride int64
	rep    *cursor
}

// lowerFor dispatches a For to its lowering strategy.
func (g *fnGen) lowerFor(st loopir.For) {
	innermost := !containsLoop(st.Body)
	switch {
	case !innermost || st.Hint == loopir.HintNoOpt:
		g.lowerCondLoop(st)
	case st.Hint == loopir.HintCounted || !g.opt.EnableSWP:
		g.lowerCountedLoop(st, ia64.BrCloop)
	default:
		if loads, store, ok := g.matchTwoStage(st); ok {
			g.lowerTwoStage(st, loads, store)
		} else {
			g.lowerCountedLoop(st, ia64.BrCtop)
		}
	}
}

// loopPreamble materializes the loop variable (= Lo) and emits the
// trip-count guard branching to skipLabel when the range is empty. It
// returns the loop variable register and a register holding Hi (an anon
// named register the caller must release).
func (g *fnGen) loopPreamble(st loopir.For, skipLabel string) (rv, rh uint8, rhName string) {
	var err error
	rv, err = g.namedGR(st.Var)
	if err != nil {
		g.fail("%v", err)
		return
	}
	lo, relLo := g.evalI(st.Lo, nil)
	g.emit(ia64.Instr{Op: ia64.OpAddI, R1: rv, R2: lo, Imm: 0})
	relLo()
	rhName = "·hi·" + st.Var
	rh, err = g.namedGR(rhName)
	if err != nil {
		g.fail("%v", err)
		return
	}
	hi, relHi := g.evalI(st.Hi, nil)
	g.emit(ia64.Instr{Op: ia64.OpAddI, R1: rh, R2: hi, Imm: 0})
	relHi()
	g.emit(ia64.Instr{Op: ia64.OpCmp, Rel: ia64.CmpGE, P1: guardPred, P2: 0, R2: rv, R3: rh})
	g.asm.Br(ia64.BrCond, guardPred, skipLabel)
	return
}

// setLC emits LC = hi - var - 1 for counted loops.
func (g *fnGen) setLC(rv, rh uint8) {
	t, err := g.intTemps.get()
	if err != nil {
		g.fail("%v", err)
		return
	}
	g.emit(ia64.Instr{Op: ia64.OpSub, R1: t, R2: rh, R3: rv})
	g.emit(ia64.Instr{Op: ia64.OpAddI, R1: t, R2: t, Imm: -1})
	g.emit(ia64.Instr{Op: ia64.OpMovToLC, R2: t})
	g.intTemps.put(t)
}

// buildCursors creates cursor registers for every affine stream in body,
// initialized for var = Lo (the loop variable register must already hold
// Lo). It returns the cursors in creation order plus the deduplicated
// prefetch streams.
func (g *fnGen) buildCursors(st loopir.For, lc *loopCtx) ([]*cursor, []*pfStream) {
	refs := collectRefs(st.Body)
	var order []*cursor
	var streams []*pfStream
	seenStream := map[string]bool{}
	for _, ref := range refs {
		form, ok := loopir.Affine(ref.index, st.Var, lc.assigned)
		if !ok {
			continue // gather/scatter: no cursor, generic addressing
		}
		baseSans, _ := loopir.SplitConst(form.Base)
		key := cursorKey(ref.array, form.Stride, baseSans)
		if _, dup := lc.cursors[key]; dup {
			continue
		}
		cur := g.makeCursor(ref.array, form.Stride, baseSans, key)
		if cur == nil {
			return order, streams
		}
		lc.cursors[key] = cur
		order = append(order, cur)
		if form.Stride != 0 && g.opt.Prefetch && st.Hint != loopir.HintNoOpt {
			sk := cursorStreamKey(ref.array, form.Stride)
			if !seenStream[sk] {
				seenStream[sk] = true
				streams = append(streams, &pfStream{array: ref.array, stride: form.Stride, rep: cur})
			}
		}
	}
	return order, streams
}

func cursorStreamKey(array string, stride int64) string {
	return cursorKey(array, stride, loopir.IConst(0))
}

// makeCursor allocates and initializes a cursor register to
// base + 8*(stride*var + baseSans), assuming the loop variable currently
// holds Lo.
func (g *fnGen) makeCursor(array string, stride int64, baseSans loopir.IntExpr, key string) *cursor {
	regName := "·cur" + key
	reg, err := g.namedGR(regName)
	if err != nil {
		g.fail("%v", err)
		return nil
	}
	// Evaluate stride*var + baseSans directly (var register holds Lo).
	var e loopir.IntExpr = baseSans
	if stride != 0 {
		e = loopir.IAdd(loopir.IMul(loopir.I(stride), loopir.IVar(g.curVarName)), baseSans)
	}
	idx, relIdx := g.evalI(e, nil)
	t, err := g.intTemps.get()
	if err != nil {
		g.fail("%v", err)
		return nil
	}
	g.emit(ia64.Instr{Op: ia64.OpShlI, R1: t, R2: idx, Imm: 3})
	relIdx()
	b, err := g.intTemps.get()
	if err != nil {
		g.fail("%v", err)
		return nil
	}
	g.emit(ia64.Instr{Op: ia64.OpMovI, R1: b, Imm: int64(g.bases[array])})
	g.emit(ia64.Instr{Op: ia64.OpAdd, R1: reg, R2: t, R3: b})
	g.intTemps.put(t)
	g.intTemps.put(b)
	return &cursor{key: key, array: array, stride: stride, reg: reg, regName: regName}
}

// emitProloguePrefetches emits the lfetch burst ahead of a loop entry
// (Figure 2's six prefetches before .b1_22) and records their slots.
func (g *fnGen) emitProloguePrefetches(streams []*pfStream, rec map[int]string) {
	if !g.opt.Prefetch {
		return
	}
	line := int64(g.opt.LineBytes)
	for _, s := range streams {
		for k := 0; k < g.opt.ProloguePrefetches; k++ {
			off := int64(k) * line
			if s.stride < 0 {
				off = -off
			}
			t, err := g.intTemps.get()
			if err != nil {
				g.fail("%v", err)
				return
			}
			g.emit(ia64.Instr{Op: ia64.OpAddI, R1: t, R2: s.rep.reg, Imm: off})
			pc := g.emit(ia64.Instr{Op: ia64.OpLfetch, R2: t, Hint: g.opt.PrefetchHint})
			g.intTemps.put(t)
			rec[pc] = s.array
		}
	}
}

// emitSteadyPrefetches emits the per-iteration lfetch per stream targeting
// PrefetchDistanceLines ahead, and records slot -> array.
func (g *fnGen) emitSteadyPrefetches(streams []*pfStream, qp uint8, rec map[int]string) {
	if !g.opt.Prefetch {
		return
	}
	dist := int64(g.opt.PrefetchDistanceLines) * int64(g.opt.LineBytes)
	for _, s := range streams {
		off := dist
		if s.stride < 0 {
			off = -off
		}
		t, err := g.intTemps.get()
		if err != nil {
			g.fail("%v", err)
			return
		}
		g.emit(ia64.Instr{Op: ia64.OpAddI, R1: t, R2: s.rep.reg, Imm: off, QP: qp})
		pc := g.emit(ia64.Instr{Op: ia64.OpLfetch, R2: t, Hint: g.opt.PrefetchHint, QP: qp})
		g.intTemps.put(t)
		rec[pc] = s.array
	}
}

// advanceCursors bumps every cursor by its per-iteration byte stride.
func (g *fnGen) advanceCursors(curs []*cursor, qp uint8) {
	for _, c := range curs {
		if c.stride == 0 {
			continue
		}
		g.emit(ia64.Instr{Op: ia64.OpAddI, R1: c.reg, R2: c.reg, Imm: c.stride * loopir.ElemBytes, QP: qp})
	}
}

// curVarName is set while lowering a loop so makeCursor can reference the
// loop variable.

// lowerCondLoop emits a compare-and-branch loop (outer loops and
// HintNoOpt): no LC, no rotation, no prefetching.
func (g *fnGen) lowerCondLoop(st loopir.For) {
	skip := g.label(".Ls")
	top := g.label(".Lt")
	rv, rh, rhName := g.loopPreamble(st, skip)
	if g.err != nil {
		return
	}
	g.asm.PadToBundle()
	g.asm.Label(top)
	head := g.asm.Len()
	g.stmtsCtx(st.Body, nil)
	g.emit(ia64.Instr{Op: ia64.OpAddI, R1: rv, R2: rv, Imm: 1})
	g.emit(ia64.Instr{Op: ia64.OpCmp, Rel: ia64.CmpLT, P1: latchPred, P2: 0, R2: rv, R3: rh})
	br := g.asm.Br(ia64.BrCond, latchPred, top)
	g.asm.Label(skip)
	g.loops = append(g.loops, LoopInfo{
		Var: st.Var, Kind: ia64.BrCond, Head: head, BranchPC: br,
		PrefetchPCs: map[int]string{}, ProloguePCs: map[int]string{},
		StoredArrays: storedArrays(st.Body),
	})
	g.releaseGR(rhName)
	g.releaseGR(st.Var)
}

// lowerCountedLoop emits a cloop (plain counted) or single-stage ctop
// (software-pipelined) innermost loop with cursors and prefetch streams.
func (g *fnGen) lowerCountedLoop(st loopir.For, kind ia64.BrKind) {
	skip := g.label(".Ls")
	top := g.label(".Lt")
	rv, rh, rhName := g.loopPreamble(st, skip)
	if g.err != nil {
		return
	}
	g.setLC(rv, rh)
	g.releaseGR(rhName)

	g.curVarName = st.Var
	lc := &loopCtx{
		varName:  st.Var,
		varReg:   rv,
		assigned: loopir.AssignedVars(st.Body),
		cursors:  map[string]*cursor{},
		swp:      kind == ia64.BrCtop,
	}
	curs, streams := g.buildCursors(st, lc)
	prologue := map[int]string{}
	g.emitProloguePrefetches(streams, prologue)

	qp := uint8(0)
	if kind == ia64.BrCtop {
		qp = stagePred0
		g.emit(ia64.Instr{Op: ia64.OpClrrrb})
		g.emit(ia64.Instr{Op: ia64.OpMovToECI, Imm: 1})
		// Prime the stage predicate: p16 = true.
		g.emit(ia64.Instr{Op: ia64.OpCmpI, Rel: ia64.CmpEQ, P1: stagePred0, P2: 0, R2: 0, Imm: 0})
	}
	g.asm.PadToBundle()
	g.asm.Label(top)
	head := g.asm.Len()
	g.stmtsCtx(st.Body, lc)
	steady := map[int]string{}
	g.emitSteadyPrefetches(streams, qp, steady)
	g.advanceCursors(curs, qp)
	g.emit(ia64.Instr{Op: ia64.OpAddI, R1: rv, R2: rv, Imm: 1, QP: qp})
	br := g.asm.Br(kind, 0, top)
	g.asm.Label(skip)
	g.loops = append(g.loops, LoopInfo{
		Var: st.Var, Kind: kind, Head: head, BranchPC: br,
		PrefetchPCs: steady, ProloguePCs: prologue,
		StoredArrays: storedArrays(st.Body),
	})
	for i := len(curs) - 1; i >= 0; i-- {
		g.releaseGR(curs[i].regName)
	}
	g.releaseGR(st.Var)
	g.curVarName = ""
}

// matchTwoStage recognizes the Figure 2 pattern: an innermost loop whose
// body is a single float store of an expression over unit-affine loads —
// lowered as a genuinely two-stage software pipeline with rotating
// registers (loads one iteration ahead of compute+store).
func (g *fnGen) matchTwoStage(st loopir.For) ([]loopir.FLoad, *loopir.FStore, bool) {
	if len(st.Body) != 1 {
		return nil, nil, false
	}
	fs, ok := st.Body[0].(loopir.FStore)
	if !ok {
		return nil, nil, false
	}
	assigned := map[string]bool{st.Var: true}
	if _, ok := loopir.Affine(fs.Index, st.Var, assigned); !ok {
		return nil, nil, false
	}
	var loads []loopir.FLoad
	seen := map[string]bool{}
	var walk func(e loopir.FloatExpr) bool
	walk = func(e loopir.FloatExpr) bool {
		switch ex := e.(type) {
		case loopir.FConst, loopir.FVar:
			return true
		case loopir.FBin:
			return walk(ex.A) && walk(ex.B)
		case loopir.FLoad:
			if _, ok := loopir.Affine(ex.Index, st.Var, assigned); !ok {
				return false
			}
			if !seen[refKey(ex)] {
				seen[refKey(ex)] = true
				loads = append(loads, ex)
			}
			return len(loads) <= 6
		}
		return false
	}
	if !walk(fs.Val) {
		return nil, nil, false
	}
	return loads, &fs, true
}

// lowerTwoStage emits the Figure 2 shape: stage 1 (p16) issues the loads
// into rotating registers and runs the prefetch streams; stage 2 (p17),
// one rotation behind, computes and stores. EC=2 drains the pipeline.
func (g *fnGen) lowerTwoStage(st loopir.For, loads []loopir.FLoad, store *loopir.FStore) {
	skip := g.label(".Ls")
	top := g.label(".Lt")
	rv, rh, rhName := g.loopPreamble(st, skip)
	if g.err != nil {
		return
	}
	g.setLC(rv, rh)
	g.releaseGR(rhName)

	g.curVarName = st.Var
	assigned := map[string]bool{st.Var: true}
	lc := &loopCtx{
		varName: st.Var, varReg: rv, assigned: assigned,
		swp: true, stage2loads: map[string]uint8{},
	}

	// One cursor per load reference (constant offsets folded into the
	// cursor) and a separate cursor for the store, which advances a
	// rotation later.
	var loadCurs []*cursor
	var streams []*pfStream
	seenStream := map[string]bool{}
	for i, ld := range loads {
		form, _ := loopir.Affine(ld.Index, st.Var, assigned)
		cur := g.makeCursor(ld.Array, form.Stride, form.Base, "·2s·"+refKey(ld))
		if cur == nil {
			return
		}
		loadCurs = append(loadCurs, cur)
		lc.stage2loads[refKey(ld)] = uint8(33 + 2*i) // read rotated by one
		if g.opt.Prefetch && form.Stride != 0 {
			sk := cursorStreamKey(ld.Array, form.Stride)
			if !seenStream[sk] {
				seenStream[sk] = true
				streams = append(streams, &pfStream{array: ld.Array, stride: form.Stride, rep: cur})
			}
		}
	}
	sform, _ := loopir.Affine(store.Index, st.Var, assigned)
	storeCur := g.makeCursor(store.Array, sform.Stride, sform.Base, "·2sw·"+store.Array)
	if storeCur == nil {
		return
	}
	if g.opt.Prefetch && sform.Stride != 0 {
		sk := cursorStreamKey(store.Array, sform.Stride)
		if !seenStream[sk] {
			seenStream[sk] = true
			streams = append(streams, &pfStream{array: store.Array, stride: sform.Stride, rep: storeCur})
		}
	}

	prologue := map[int]string{}
	g.emitProloguePrefetches(streams, prologue)

	g.emit(ia64.Instr{Op: ia64.OpClrrrb})
	g.emit(ia64.Instr{Op: ia64.OpMovToECI, Imm: 2})
	g.emit(ia64.Instr{Op: ia64.OpCmpI, Rel: ia64.CmpEQ, P1: stagePred0, P2: 0, R2: 0, Imm: 0})

	g.asm.PadToBundle()
	g.asm.Label(top)
	head := g.asm.Len()

	// Stage 1 (p16): loads into rotating registers + prefetch + advance.
	for i := range loads {
		g.emit(ia64.Instr{Op: ia64.OpLdf, R1: uint8(32 + 2*i), R2: loadCurs[i].reg, QP: stagePred0})
	}
	steady := map[int]string{}
	g.emitSteadyPrefetches(streams, stagePred0, steady)
	g.advanceCursors(loadCurs, stagePred0)
	g.emit(ia64.Instr{Op: ia64.OpAddI, R1: rv, R2: rv, Imm: 1, QP: stagePred0})

	// Stage 2 (p17): compute from rotated registers, store, advance.
	lc.qpOverride = stagePred1
	v, relV := g.evalF(store.Val, lc)
	g.emit(ia64.Instr{Op: ia64.OpStf, R2: storeCur.reg, R3: v, QP: stagePred1})
	relV()
	g.advanceCursors([]*cursor{storeCur}, stagePred1)
	lc.qpOverride = 0

	br := g.asm.Br(ia64.BrCtop, 0, top)
	g.asm.Label(skip)
	g.loops = append(g.loops, LoopInfo{
		Var: st.Var, Kind: ia64.BrCtop, Head: head, BranchPC: br,
		PrefetchPCs: steady, ProloguePCs: prologue,
		StoredArrays: []string{store.Array},
	})
	g.releaseGR(storeCur.regName)
	for i := len(loadCurs) - 1; i >= 0; i-- {
		g.releaseGR(loadCurs[i].regName)
	}
	g.releaseGR(st.Var)
	g.curVarName = ""
}

// Package compiler lowers loopir programs to IA-64-like binaries in the
// style of Intel's icc 9.1 at -O3 -openmp, the compiler the paper
// evaluates against: innermost loops are software-pipelined with br.ctop
// and rotating registers, other counted loops use br.cloop, do-while loops
// use br.wtop, and — crucially for COBRA — every streaming array reference
// gets aggressive data prefetching: a burst of prologue lfetch.nt1
// instructions plus one steady-state lfetch per stream per iteration
// targeting a configurable distance (default 9 cache lines, as measured in
// the paper's Figure 2) ahead of the current reference.
//
// The compiler is deliberately oblivious to multiprocessor data sharing,
// as static compilers are: prefetches run past the end of each thread's
// iteration chunk into the neighbouring thread's data, which is the
// coherent-miss pathology COBRA repairs at run time.
package compiler

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/ia64"
	"repro/internal/loopir"
	"repro/internal/mem"
)

// Options control code generation.
type Options struct {
	// Prefetch enables lfetch insertion (icc default at -O2 and above).
	Prefetch bool
	// PrefetchDistanceLines is how many cache lines ahead the steady-state
	// prefetches target (paper Fig. 2: 9 lines = 1152 bytes).
	PrefetchDistanceLines int
	// ProloguePrefetches is the lfetch burst emitted before a loop entry
	// covering the lines between the entry and the steady-state distance
	// (Fig. 2 shows such a burst before the DAXPY kernel).
	ProloguePrefetches int
	// PrefetchHint is the completer on generated prefetches.
	PrefetchHint ia64.Hint
	// LineBytes is the cache line size prefetch distances are computed in.
	LineBytes int
	// EnableSWP allows software pipelining of innermost loops.
	EnableSWP bool
}

// DefaultOptions mirrors icc -O3: aggressive prefetch, SWP on.
func DefaultOptions() Options {
	return Options{
		Prefetch:              true,
		PrefetchDistanceLines: 9,
		ProloguePrefetches:    9,
		PrefetchHint:          ia64.HintNT1,
		LineBytes:             128,
		EnableSWP:             true,
	}
}

// ArrayMap maps array names to their base addresses in simulated memory.
type ArrayMap map[string]uint64

// AllocArrays allocates every array of prog in m, line-aligned.
func AllocArrays(m *mem.Memory, prog *loopir.Program) (ArrayMap, error) {
	bases := ArrayMap{}
	for _, a := range prog.Arrays {
		base, err := m.Alloc(prog.Name+"."+a.Name, a.Bytes(), 128)
		if err != nil {
			return nil, err
		}
		bases[a.Name] = base
	}
	return bases, nil
}

// LoopInfo is the compiler's ground truth about one generated loop, used
// by tests and reports (COBRA itself never sees it — it rediscovers loops
// from BTB profiles).
type LoopInfo struct {
	Func     string
	Var      string
	Kind     ia64.BrKind // ctop, cloop, wtop, or cond (HintNoOpt / outer)
	Head     int         // absolute slot of the loop body entry
	BranchPC int         // absolute slot of the closing branch
	// PrefetchPCs are the steady-state lfetch slots inside the body,
	// mapped to the array each targets.
	PrefetchPCs map[int]string
	// ProloguePCs are the burst lfetch slots in the preheader.
	ProloguePCs map[int]string
	// StoredArrays are arrays written inside the loop.
	StoredArrays []string
}

// CompiledFunc describes one lowered function.
type CompiledFunc struct {
	Fn        ia64.Func
	IntArgs   map[string]uint8 // parameter name -> general register
	FloatArgs map[string]uint8 // parameter name -> floating register
	Loops     []LoopInfo
}

// Result is the outcome of compiling a program.
type Result struct {
	Prog  *loopir.Program
	Opt   Options
	Funcs map[string]*CompiledFunc
}

// Compile lowers every function of prog into img, with array references
// resolved against bases.
func Compile(img *ia64.Image, prog *loopir.Program, bases ArrayMap, opt Options) (*Result, error) {
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	for _, a := range prog.Arrays {
		if _, ok := bases[a.Name]; !ok {
			return nil, fmt.Errorf("compiler: array %q has no base address", a.Name)
		}
	}
	if opt.LineBytes == 0 {
		opt.LineBytes = 128
	}
	res := &Result{Prog: prog, Opt: opt, Funcs: map[string]*CompiledFunc{}}
	for _, f := range prog.Funcs {
		cf, err := compileFunc(img, prog, f, bases, opt)
		if err != nil {
			return nil, fmt.Errorf("compiler: %s.%s: %w", prog.Name, f.Name, err)
		}
		res.Funcs[f.Name] = cf
	}
	return res, nil
}

// StaticCounts aggregates Table 1 statistics over the compiled functions
// of one program.
func (r *Result) StaticCounts(img *ia64.Image) ia64.StaticCounts {
	var c ia64.StaticCounts
	for _, cf := range r.Funcs {
		c.Lfetch += img.OpCount(cf.Fn.Entry, cf.Fn.End, func(in ia64.Instr) bool { return in.Op == ia64.OpLfetch })
		c.BrCtop += img.OpCount(cf.Fn.Entry, cf.Fn.End, func(in ia64.Instr) bool { return in.Op == ia64.OpBr && in.Br == ia64.BrCtop })
		c.BrCloop += img.OpCount(cf.Fn.Entry, cf.Fn.End, func(in ia64.Instr) bool { return in.Op == ia64.OpBr && in.Br == ia64.BrCloop })
		c.BrWtop += img.OpCount(cf.Fn.Entry, cf.Fn.End, func(in ia64.Instr) bool { return in.Op == ia64.OpBr && in.Br == ia64.BrWtop })
	}
	return c
}

// Register conventions (documented for binder authors):
//
//	r8, r9, r10   int parameters (parallel regions: lo, hi, tid)
//	r8..r23       named integer values (params, locals, loop variables,
//	              stream cursors)
//	r24..r31      integer expression temporaries
//	f6..f19       named floats (params, locals, accumulators)
//	f20..f31      float expression temporaries
//	f32+2k        rotating registers of two-stage pipelined loops
//	p2..p15       general predicates; p16+ SWP stage predicates
const (
	firstNamedGR = 8
	lastNamedGR  = 23
	firstTempGR  = 24
	lastTempGR   = 31

	firstNamedFR = 6
	lastNamedFR  = 19
	firstTempFR  = 20
	lastTempFR   = 31

	guardPred  = 2 // preheader trip-count guard
	latchPred  = 3 // compare-and-branch loop latch
	condPred   = 4 // while-loop condition
	stagePred0 = 16
	stagePred1 = 17
)

// fnGen is the per-function code generator state.
type fnGen struct {
	prog  *loopir.Program
	fn    *loopir.Func
	bases ArrayMap
	opt   Options
	asm   *ia64.Asm

	intRegs   map[string]uint8
	floatRegs map[string]uint8
	nextGR    uint8
	nextFR    uint8

	intTemps   tempAlloc
	floatTemps tempAlloc

	labelN     int
	loops      []LoopInfo // relative PCs until close
	curVarName string     // loop variable of the loop currently being lowered
	err        error
}

type tempAlloc struct {
	first, last uint8
	used        [16]bool
	name        string
}

func (t *tempAlloc) get() (uint8, error) {
	for i := range t.used {
		if !t.used[i] && t.first+uint8(i) <= t.last {
			t.used[i] = true
			return t.first + uint8(i), nil
		}
	}
	return 0, fmt.Errorf("out of %s temporaries", t.name)
}

func (t *tempAlloc) put(r uint8) {
	if r >= t.first && r <= t.last {
		t.used[r-t.first] = false
	}
}

func (t *tempAlloc) owns(r uint8) bool { return r >= t.first && r <= t.last }

func compileFunc(img *ia64.Image, prog *loopir.Program, f *loopir.Func, bases ArrayMap, opt Options) (*CompiledFunc, error) {
	g := &fnGen{
		prog: prog, fn: f, bases: bases, opt: opt,
		asm:        ia64.NewAsm(img, f.Name),
		intRegs:    map[string]uint8{},
		floatRegs:  map[string]uint8{},
		nextGR:     firstNamedGR,
		nextFR:     firstNamedFR,
		intTemps:   tempAlloc{first: firstTempGR, last: lastTempGR, name: "integer"},
		floatTemps: tempAlloc{first: firstTempFR, last: lastTempFR, name: "float"},
	}
	for _, p := range f.AllIntParams() {
		if _, err := g.namedGR(p); err != nil {
			return nil, err
		}
	}
	for _, p := range f.FloatParams {
		if _, err := g.namedFR(p); err != nil {
			return nil, err
		}
	}
	g.stmtsCtx(f.Body, nil)
	g.emit(ia64.Instr{Op: ia64.OpHalt})
	if g.err != nil {
		return nil, g.err
	}
	entry, err := g.asm.Close()
	if err != nil {
		return nil, err
	}
	fn, _ := img.LookupFunc(f.Name)

	cf := &CompiledFunc{
		Fn:        fn,
		IntArgs:   g.intRegs,
		FloatArgs: g.floatRegs,
	}
	for _, li := range g.loops {
		li.Func = f.Name
		li.Head += entry
		li.BranchPC += entry
		abs := func(rel map[int]string) map[int]string {
			out := make(map[int]string, len(rel))
			for pc, arr := range rel {
				out[pc+entry] = arr
			}
			return out
		}
		li.PrefetchPCs = abs(li.PrefetchPCs)
		li.ProloguePCs = abs(li.ProloguePCs)
		cf.Loops = append(cf.Loops, li)
	}
	sort.Slice(cf.Loops, func(i, j int) bool { return cf.Loops[i].Head < cf.Loops[j].Head })
	return cf, nil
}

func (g *fnGen) fail(format string, args ...any) {
	if g.err == nil {
		g.err = fmt.Errorf(format, args...)
	}
}

func (g *fnGen) emit(in ia64.Instr) int { return g.asm.Emit(in) }

func (g *fnGen) label(prefix string) string {
	g.labelN++
	return fmt.Sprintf("%s%d", prefix, g.labelN)
}

// namedGR returns (allocating if new) the general register of a named int.
func (g *fnGen) namedGR(name string) (uint8, error) {
	if r, ok := g.intRegs[name]; ok {
		return r, nil
	}
	if g.nextGR > lastNamedGR {
		return 0, fmt.Errorf("out of general registers for %q", name)
	}
	r := g.nextGR
	g.nextGR++
	g.intRegs[name] = r
	return r, nil
}

// anonGR allocates an unnamed loop-scoped register (cursor, bound).
func (g *fnGen) anonGR(tag string) (uint8, error) {
	return g.namedGR(fmt.Sprintf("·%s%d", tag, len(g.intRegs)))
}

// releaseGR frees a named register for reuse after a loop body closes.
func (g *fnGen) releaseGR(name string) {
	if r, ok := g.intRegs[name]; ok {
		delete(g.intRegs, name)
		if r == g.nextGR-1 {
			g.nextGR--
		}
	}
}

func (g *fnGen) namedFR(name string) (uint8, error) {
	if r, ok := g.floatRegs[name]; ok {
		return r, nil
	}
	if g.nextFR > lastNamedFR {
		return 0, fmt.Errorf("out of floating registers for %q", name)
	}
	r := g.nextFR
	g.nextFR++
	g.floatRegs[name] = r
	return r, nil
}

// stmtsCtx lowers a statement list within loop context lc (nil outside
// innermost loops).
func (g *fnGen) stmtsCtx(list []loopir.Stmt, lc *loopCtx) {
	for _, s := range list {
		if g.err != nil {
			return
		}
		switch st := s.(type) {
		case loopir.For:
			if lc != nil {
				g.fail("nested loop inside an innermost lowering")
				return
			}
			g.lowerFor(st)
		case loopir.While:
			if lc != nil {
				g.fail("nested while inside an innermost lowering")
				return
			}
			g.lowerWhile(st)
		case loopir.FStore:
			g.lowerFStore(st, lc)
		case loopir.IStore:
			g.lowerIStore(st, lc)
		case loopir.SetF:
			g.lowerSetF(st, lc)
		case loopir.SetI:
			g.lowerSetI(st, lc)
		default:
			g.fail("unsupported statement %T", s)
		}
	}
}

func (g *fnGen) lowerSetF(st loopir.SetF, lc *loopCtx) {
	dst, err := g.namedFR(st.Name)
	if err != nil {
		g.fail("%v", err)
		return
	}
	r, rel := g.evalF(st.Val, lc)
	g.emit(ia64.Instr{Op: ia64.OpFMov, R1: dst, R2: r, QP: g.qp(lc)})
	rel()
}

func (g *fnGen) lowerSetI(st loopir.SetI, lc *loopCtx) {
	dst, err := g.namedGR(st.Name)
	if err != nil {
		g.fail("%v", err)
		return
	}
	r, rel := g.evalI(st.Val, lc)
	g.emit(ia64.Instr{Op: ia64.OpAddI, R1: dst, R2: r, Imm: 0, QP: g.qp(lc)})
	rel()
}

func (g *fnGen) lowerFStore(st loopir.FStore, lc *loopCtx) {
	v, relV := g.evalF(st.Val, lc)
	addr, relA := g.arrayAddr(st.Array, st.Index, lc)
	g.emit(ia64.Instr{Op: ia64.OpStf, R2: addr, R3: v, QP: g.qp(lc)})
	relA()
	relV()
}

func (g *fnGen) lowerIStore(st loopir.IStore, lc *loopCtx) {
	v, relV := g.evalI(st.Val, lc)
	addr, relA := g.arrayAddr(st.Array, st.Index, lc)
	g.emit(ia64.Instr{Op: ia64.OpSt, R2: addr, R3: v, QP: g.qp(lc)})
	relA()
	relV()
}

// qp returns the stage predicate qualifying body instructions of a
// software-pipelined loop, or 0 outside one.
func (g *fnGen) qp(lc *loopCtx) uint8 {
	if lc == nil {
		return 0
	}
	if lc.qpOverride != 0 {
		return lc.qpOverride
	}
	if lc.swp {
		return stagePred0
	}
	return 0
}

// lowerWhile emits a do-while as a (trivially) pipelined while loop closed
// by br.wtop — the third loop form of the paper's Table 1.
func (g *fnGen) lowerWhile(st loopir.While) {
	if containsLoop(st.Body) {
		g.fail("while loops must be innermost")
		return
	}
	top := g.label(".wt")
	g.emit(ia64.Instr{Op: ia64.OpClrrrb})
	g.emit(ia64.Instr{Op: ia64.OpMovToECI, Imm: 1})
	g.asm.PadToBundle()
	g.asm.Label(top)
	head := g.asm.Len()
	g.stmtsCtx(st.Body, nil)
	// Evaluate the continuation condition into the wtop predicate.
	a, relA := g.evalI(st.Cond.A, nil)
	b, relB := g.evalI(st.Cond.B, nil)
	g.emit(ia64.Instr{Op: ia64.OpCmp, Rel: relOf(st.Cond.Rel), P1: condPred, P2: 0, R2: a, R3: b})
	relA()
	relB()
	br := g.asm.Br(ia64.BrWtop, condPred, top)
	g.loops = append(g.loops, LoopInfo{
		Kind: ia64.BrWtop, Head: head, BranchPC: br,
		PrefetchPCs: map[int]string{}, ProloguePCs: map[int]string{},
		StoredArrays: storedArrays(st.Body),
	})
}

func relOf(r loopir.Rel) ia64.CmpRel {
	switch r {
	case loopir.EQ:
		return ia64.CmpEQ
	case loopir.NE:
		return ia64.CmpNE
	case loopir.LT:
		return ia64.CmpLT
	case loopir.LE:
		return ia64.CmpLE
	case loopir.GT:
		return ia64.CmpGT
	}
	return ia64.CmpGE
}

func containsLoop(stmts []loopir.Stmt) bool {
	for _, s := range stmts {
		switch st := s.(type) {
		case loopir.For:
			return true
		case loopir.While:
			return true
		default:
			_ = st
		}
	}
	return false
}

func storedArrays(stmts []loopir.Stmt) []string {
	seen := map[string]bool{}
	var out []string
	var walk func([]loopir.Stmt)
	walk = func(ss []loopir.Stmt) {
		for _, s := range ss {
			switch st := s.(type) {
			case loopir.FStore:
				if !seen[st.Array] {
					seen[st.Array] = true
					out = append(out, st.Array)
				}
			case loopir.IStore:
				if !seen[st.Array] {
					seen[st.Array] = true
					out = append(out, st.Array)
				}
			case loopir.For:
				walk(st.Body)
			case loopir.While:
				walk(st.Body)
			}
		}
	}
	walk(stmts)
	sort.Strings(out)
	return out
}

// fconstBits returns the encoding immediate for a float constant.
func fconstBits(v float64) int64 { return int64(math.Float64bits(v)) }

package compiler

import (
	"strings"
	"testing"

	"repro/internal/ia64"
	"repro/internal/loopir"
	"repro/internal/machine"
	"repro/internal/openmp"
)

// daxpyIR is the paper's Figure 1 kernel.
func daxpyIR(n int64) *loopir.Program {
	return &loopir.Program{
		Name: "daxpy",
		Arrays: []loopir.Array{
			{Name: "x", Kind: loopir.F64, Elems: n},
			{Name: "y", Kind: loopir.F64, Elems: n},
		},
		Funcs: []*loopir.Func{{
			Name:        "daxpy_body",
			Parallel:    true,
			FloatParams: []string{"a"},
			Body: []loopir.Stmt{
				loopir.For{Var: "i", Lo: loopir.V("lo"), Hi: loopir.V("hi"), Body: []loopir.Stmt{
					loopir.FStore{Array: "y", Index: loopir.V("i"),
						Val: loopir.FAdd(loopir.At("y", loopir.V("i")),
							loopir.FMul(loopir.FV("a"), loopir.At("x", loopir.V("i"))))},
				}},
			},
		}},
	}
}

// buildAndCompile sets up a machine and compiles prog into it.
func buildAndCompile(t *testing.T, prog *loopir.Program, ncpu int, opt Options) (*machine.Machine, *Result) {
	t.Helper()
	img := ia64.NewImage()
	cfg := machine.DefaultConfig(ncpu)
	cfg.Mem.MemBytes = 64 << 20
	m, err := machine.New(cfg, img)
	if err != nil {
		t.Fatal(err)
	}
	bases, err := AllocArrays(m.Memory(), prog)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Compile(img, prog, bases, opt)
	if err != nil {
		t.Fatal(err)
	}
	return m, res
}

func arrayBase(t *testing.T, m *machine.Machine, prog, name string) uint64 {
	t.Helper()
	for _, s := range m.Memory().Segments() {
		if s.Name == prog+"."+name {
			return s.Base
		}
	}
	t.Fatalf("array %s.%s not allocated", prog, name)
	return 0
}

func runDaxpy(t *testing.T, opt Options, nthreads int) (*machine.Machine, *Result) {
	t.Helper()
	const n = 512
	prog := daxpyIR(n)
	m, res := buildAndCompile(t, prog, nthreads, opt)
	x := arrayBase(t, m, "daxpy", "x")
	y := arrayBase(t, m, "daxpy", "y")
	for i := int64(0); i < n; i++ {
		m.Memory().WriteF64(x+uint64(8*i), float64(i))
		m.Memory().WriteF64(y+uint64(8*i), float64(3*i))
	}
	rt, err := openmp.NewRuntime(m, nthreads)
	if err != nil {
		t.Fatal(err)
	}
	cf := res.Funcs["daxpy_body"]
	err = rt.ParallelFor(cf.Fn, n, func(tid int, rf *ia64.RegFile) {
		rf.SetFR(cf.FloatArgs["a"], 2.0)
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < n; i++ {
		want := 3*float64(i) + 2*float64(i)
		if got := m.Memory().ReadF64(y + uint64(8*i)); got != want {
			t.Fatalf("y[%d] = %v, want %v", i, got, want)
		}
	}
	return m, res
}

func TestDaxpyCorrectSingleThread(t *testing.T) {
	runDaxpy(t, DefaultOptions(), 1)
}

func TestDaxpyCorrectFourThreads(t *testing.T) {
	runDaxpy(t, DefaultOptions(), 4)
}

func TestDaxpyCorrectWithoutPrefetch(t *testing.T) {
	opt := DefaultOptions()
	opt.Prefetch = false
	runDaxpy(t, opt, 2)
}

func TestDaxpyCorrectWithoutSWP(t *testing.T) {
	opt := DefaultOptions()
	opt.EnableSWP = false
	runDaxpy(t, opt, 2)
}

func TestDaxpyFig2Structure(t *testing.T) {
	// The generated DAXPY must mirror Figure 2: a two-stage ctop loop,
	// prologue lfetch burst, and steady-state lfetch.nt1 per stream.
	m, res := runDaxpy(t, DefaultOptions(), 1)
	cf := res.Funcs["daxpy_body"]
	if len(cf.Loops) != 1 {
		t.Fatalf("loops = %+v", cf.Loops)
	}
	li := cf.Loops[0]
	if li.Kind != ia64.BrCtop {
		t.Fatalf("loop kind = %v, want ctop (software pipelined)", li.Kind)
	}
	// Two streams (x and y) -> 2 steady prefetches, 12 prologue.
	if len(li.PrefetchPCs) != 2 {
		t.Fatalf("steady prefetches = %v, want 2 (x and y)", li.PrefetchPCs)
	}
	if len(li.ProloguePCs) != 2*DefaultOptions().ProloguePrefetches {
		t.Fatalf("prologue prefetches = %d, want %d", len(li.ProloguePCs), 2*DefaultOptions().ProloguePrefetches)
	}
	arrays := map[string]bool{}
	for _, a := range li.PrefetchPCs {
		arrays[a] = true
	}
	if !arrays["x"] || !arrays["y"] {
		t.Fatalf("steady prefetch arrays = %v", arrays)
	}
	// All generated prefetches carry the .nt1 completer.
	img := m.Image()
	for pc := range li.PrefetchPCs {
		in := img.Fetch(pc)
		if in.Op != ia64.OpLfetch || in.Hint != ia64.HintNT1 {
			t.Fatalf("slot %d = %v%v, want lfetch.nt1", pc, in.Op, in.Hint)
		}
	}
	// The loop uses rotating registers: there must be ldf targets >= f32.
	sawRotating := false
	for pc := li.Head; pc <= li.BranchPC; pc++ {
		if in := img.Fetch(pc); in.Op == ia64.OpLdf && in.R1 >= 32 {
			sawRotating = true
		}
	}
	if !sawRotating {
		t.Fatal("no rotating-register loads in the pipelined loop")
	}
}

func TestNoPrefetchOptionEmitsNoLfetch(t *testing.T) {
	opt := DefaultOptions()
	opt.Prefetch = false
	m, res := runDaxpy(t, opt, 1)
	if c := res.StaticCounts(m.Image()); c.Lfetch != 0 {
		t.Fatalf("lfetch count = %d with prefetch disabled", c.Lfetch)
	}
}

func TestStaticCountsDaxpy(t *testing.T) {
	m, res := runDaxpy(t, DefaultOptions(), 1)
	c := res.StaticCounts(m.Image())
	if c.BrCtop != 1 || c.BrCloop != 0 || c.BrWtop != 0 {
		t.Fatalf("branch counts = %+v", c)
	}
	want := 2 * (DefaultOptions().ProloguePrefetches + 1) // 2 streams * (prologue + steady)
	if c.Lfetch != want {
		t.Fatalf("lfetch = %d, want %d", c.Lfetch, want)
	}
}

// sumIR builds a reduction: partial[tid] = sum over [lo,hi) of x[i]*y[i].
func sumIR(n int64) *loopir.Program {
	return &loopir.Program{
		Name: "dot",
		Arrays: []loopir.Array{
			{Name: "x", Kind: loopir.F64, Elems: n},
			{Name: "y", Kind: loopir.F64, Elems: n},
			{Name: "partial", Kind: loopir.F64, Elems: 8},
		},
		Funcs: []*loopir.Func{{
			Name:     "dot_body",
			Parallel: true,
			Body: []loopir.Stmt{
				loopir.SetF{Name: "acc", Val: loopir.F(0)},
				loopir.For{Var: "i", Lo: loopir.V("lo"), Hi: loopir.V("hi"), Body: []loopir.Stmt{
					loopir.SetF{Name: "acc", Val: loopir.FAdd(loopir.FV("acc"),
						loopir.FMul(loopir.At("x", loopir.V("i")), loopir.At("y", loopir.V("i"))))},
				}},
				loopir.FStore{Array: "partial", Index: loopir.V("tid"), Val: loopir.FV("acc")},
			},
		}},
	}
}

func TestReductionLoop(t *testing.T) {
	const n = 300
	prog := sumIR(n)
	m, res := buildAndCompile(t, prog, 4, DefaultOptions())
	x := arrayBase(t, m, "dot", "x")
	y := arrayBase(t, m, "dot", "y")
	want := 0.0
	for i := int64(0); i < n; i++ {
		m.Memory().WriteF64(x+uint64(8*i), float64(i))
		m.Memory().WriteF64(y+uint64(8*i), 2.0)
		want += float64(i) * 2.0
	}
	rt, _ := openmp.NewRuntime(m, 4)
	cf := res.Funcs["dot_body"]
	if err := rt.ParallelFor(cf.Fn, n, nil); err != nil {
		t.Fatal(err)
	}
	p := arrayBase(t, m, "dot", "partial")
	got := 0.0
	for tIdx := 0; tIdx < 4; tIdx++ {
		got += m.Memory().ReadF64(p + uint64(8*tIdx))
	}
	if got != want {
		t.Fatalf("dot = %v, want %v", got, want)
	}
	// Reduction loops pipeline as single-stage ctop.
	if li := cf.Loops[0]; li.Kind != ia64.BrCtop {
		t.Fatalf("reduction loop kind = %v", li.Kind)
	}
}

// gatherIR: y[k] = x[col[k]] — CG-style sparse access.
func gatherIR(n int64) *loopir.Program {
	return &loopir.Program{
		Name: "gather",
		Arrays: []loopir.Array{
			{Name: "x", Kind: loopir.F64, Elems: n},
			{Name: "y", Kind: loopir.F64, Elems: n},
			{Name: "col", Kind: loopir.I64, Elems: n},
		},
		Funcs: []*loopir.Func{{
			Name:     "gather_body",
			Parallel: true,
			Body: []loopir.Stmt{
				loopir.For{Var: "k", Lo: loopir.V("lo"), Hi: loopir.V("hi"), Body: []loopir.Stmt{
					loopir.FStore{Array: "y", Index: loopir.V("k"),
						Val: loopir.At("x", loopir.IAt("col", loopir.V("k")))},
				}},
			},
		}},
	}
}

func TestGatherLoop(t *testing.T) {
	const n = 128
	prog := gatherIR(n)
	m, res := buildAndCompile(t, prog, 2, DefaultOptions())
	x := arrayBase(t, m, "gather", "x")
	y := arrayBase(t, m, "gather", "y")
	col := arrayBase(t, m, "gather", "col")
	for i := int64(0); i < n; i++ {
		m.Memory().WriteF64(x+uint64(8*i), float64(i*i))
		m.Memory().WriteI64(col+uint64(8*i), (i*7)%n)
	}
	rt, _ := openmp.NewRuntime(m, 2)
	cf := res.Funcs["gather_body"]
	if err := rt.ParallelFor(cf.Fn, n, nil); err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < n; i++ {
		j := (i * 7) % n
		if got := m.Memory().ReadF64(y + uint64(8*i)); got != float64(j*j) {
			t.Fatalf("y[%d] = %v, want %v", i, got, float64(j*j))
		}
	}
	// The gather itself is unprefetchable, but col[] and y[] stream.
	li := cf.Loops[0]
	pfArrays := map[string]bool{}
	for _, a := range li.PrefetchPCs {
		pfArrays[a] = true
	}
	if !pfArrays["col"] || !pfArrays["y"] || pfArrays["x"] {
		t.Fatalf("prefetched arrays = %v, want col+y only", pfArrays)
	}
}

// nestedIR: 2D relaxation u[i*w+j] = 0.5*(v[i*w+j-1] + v[i*w+j+1]).
func nestedIR(h, w int64) *loopir.Program {
	idx := loopir.IAdd(loopir.IMul(loopir.V("i"), loopir.I(w)), loopir.V("j"))
	return &loopir.Program{
		Name: "stencil",
		Arrays: []loopir.Array{
			{Name: "u", Kind: loopir.F64, Elems: h * w},
			{Name: "v", Kind: loopir.F64, Elems: h * w},
		},
		Funcs: []*loopir.Func{{
			Name:     "relax",
			Parallel: true,
			Body: []loopir.Stmt{
				loopir.For{Var: "i", Lo: loopir.V("lo"), Hi: loopir.V("hi"), Body: []loopir.Stmt{
					loopir.For{Var: "j", Lo: loopir.I(1), Hi: loopir.I(w - 1), Body: []loopir.Stmt{
						loopir.FStore{Array: "u", Index: idx,
							Val: loopir.FMul(loopir.F(0.5),
								loopir.FAdd(loopir.At("v", loopir.ISub(idx, loopir.I(1))),
									loopir.At("v", loopir.IAdd(idx, loopir.I(1)))))},
					}},
				}},
			},
		}},
	}
}

func TestNestedStencilLoop(t *testing.T) {
	const h, w = 8, 32
	prog := nestedIR(h, w)
	m, res := buildAndCompile(t, prog, 2, DefaultOptions())
	u := arrayBase(t, m, "stencil", "u")
	v := arrayBase(t, m, "stencil", "v")
	for i := int64(0); i < h*w; i++ {
		m.Memory().WriteF64(v+uint64(8*i), float64(i))
	}
	rt, _ := openmp.NewRuntime(m, 2)
	cf := res.Funcs["relax"]
	if err := rt.ParallelFor(cf.Fn, h, nil); err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < h; i++ {
		for j := int64(1); j < w-1; j++ {
			k := i*w + j
			want := 0.5 * (float64(k-1) + float64(k+1))
			if got := m.Memory().ReadF64(u + uint64(8*k)); got != want {
				t.Fatalf("u[%d,%d] = %v, want %v", i, j, got, want)
			}
		}
	}
	// Outer loop lowers to compare-and-branch, inner to a counted form.
	if len(cf.Loops) != 2 {
		t.Fatalf("loops = %+v", cf.Loops)
	}
	var outer, inner LoopInfo
	for _, li := range cf.Loops {
		if li.Var == "i" {
			outer = li
		} else {
			inner = li
		}
	}
	if outer.Kind != ia64.BrCond {
		t.Fatalf("outer kind = %v, want cond", outer.Kind)
	}
	if inner.Kind != ia64.BrCtop && inner.Kind != ia64.BrCloop {
		t.Fatalf("inner kind = %v", inner.Kind)
	}
	// Stencil refs v[k-1], v[k+1] share one cursor; u[k] another: 2 streams.
	if len(inner.PrefetchPCs) != 2 {
		t.Fatalf("inner steady prefetches = %v, want 2", inner.PrefetchPCs)
	}
}

func TestCountedHint(t *testing.T) {
	prog := daxpyIR(64)
	prog.Funcs[0].Body[0] = loopir.For{
		Var: "i", Lo: loopir.V("lo"), Hi: loopir.V("hi"), Hint: loopir.HintCounted,
		Body: prog.Funcs[0].Body[0].(loopir.For).Body,
	}
	m, res := buildAndCompile(t, prog, 1, DefaultOptions())
	_ = m
	if li := res.Funcs["daxpy_body"].Loops[0]; li.Kind != ia64.BrCloop {
		t.Fatalf("kind = %v, want cloop under HintCounted", li.Kind)
	}
}

func TestNoOptHintSkipsPrefetch(t *testing.T) {
	prog := daxpyIR(64)
	prog.Funcs[0].Body[0] = loopir.For{
		Var: "i", Lo: loopir.V("lo"), Hi: loopir.V("hi"), Hint: loopir.HintNoOpt,
		Body: prog.Funcs[0].Body[0].(loopir.For).Body,
	}
	m, res := buildAndCompile(t, prog, 1, DefaultOptions())
	if c := res.StaticCounts(m.Image()); c.Lfetch != 0 {
		t.Fatalf("lfetch = %d under HintNoOpt", c.Lfetch)
	}
}

// whileIR: geometric halving: n = n >> 1 while n > 1, counting steps.
func whileIR() *loopir.Program {
	return &loopir.Program{
		Name:   "halve",
		Arrays: []loopir.Array{{Name: "out", Kind: loopir.I64, Elems: 8}},
		Funcs: []*loopir.Func{{
			Name:      "halve_body",
			IntParams: []string{"n"},
			Body: []loopir.Stmt{
				loopir.SetI{Name: "steps", Val: loopir.I(0)},
				loopir.While{
					Body: []loopir.Stmt{
						loopir.SetI{Name: "n", Val: loopir.IShr(loopir.V("n"), loopir.I(1))},
						loopir.SetI{Name: "steps", Val: loopir.IAdd(loopir.V("steps"), loopir.I(1))},
					},
					Cond: loopir.Cond{Rel: loopir.GT, A: loopir.V("n"), B: loopir.I(1)},
				},
				loopir.IStore{Array: "out", Index: loopir.I(0), Val: loopir.V("steps")},
			},
		}},
	}
}

func TestWhileLoopWtop(t *testing.T) {
	prog := whileIR()
	m, res := buildAndCompile(t, prog, 1, DefaultOptions())
	cf := res.Funcs["halve_body"]
	if li := cf.Loops[0]; li.Kind != ia64.BrWtop {
		t.Fatalf("while kind = %v, want wtop", li.Kind)
	}
	out := arrayBase(t, m, "halve", "out")
	m.StartThread(0, cf.Fn.Entry, 0, func(rf *ia64.RegFile) {
		rf.SetGR(cf.IntArgs["n"], 64)
	})
	if _, err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	if got := m.Memory().ReadI64(out); got != 6 {
		t.Fatalf("steps = %d, want 6 (64 -> 1)", got)
	}
}

func TestCompileRejectsMissingBase(t *testing.T) {
	prog := daxpyIR(64)
	img := ia64.NewImage()
	if _, err := Compile(img, prog, ArrayMap{"x": 4096}, DefaultOptions()); err == nil {
		t.Fatal("accepted missing array base")
	}
}

func TestCompileRejectsInvalidProgram(t *testing.T) {
	prog := daxpyIR(64)
	prog.Funcs[0].Body = []loopir.Stmt{loopir.FStore{Array: "zzz", Index: loopir.I(0), Val: loopir.F(0)}}
	img := ia64.NewImage()
	if _, err := Compile(img, prog, ArrayMap{"x": 4096, "y": 8192}, DefaultOptions()); err == nil {
		t.Fatal("accepted invalid program")
	}
}

func TestEmptyIterationSpaceSkipsLoop(t *testing.T) {
	const n = 16
	prog := daxpyIR(n)
	m, res := buildAndCompile(t, prog, 1, DefaultOptions())
	y := arrayBase(t, m, "daxpy", "y")
	m.Memory().WriteF64(y, 7)
	cf := res.Funcs["daxpy_body"]
	// lo == hi: the guard must skip the whole loop.
	m.StartThread(0, cf.Fn.Entry, 0, func(rf *ia64.RegFile) {
		rf.SetGR(openmp.RegLo, 5)
		rf.SetGR(openmp.RegHi, 5)
		rf.SetFR(cf.FloatArgs["a"], 2)
	})
	if _, err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	if got := m.Memory().ReadF64(y); got != 7 {
		t.Fatalf("empty loop wrote memory: y[0] = %v", got)
	}
}

func TestDisasmDumpShowsFig2Shape(t *testing.T) {
	m, res := runDaxpy(t, DefaultOptions(), 1)
	var sb strings.Builder
	ia64.DumpFunc(&sb, m.Image(), res.Funcs["daxpy_body"].Fn)
	out := sb.String()
	for _, want := range []string{"lfetch.nt1", "br.ctop", "fma.d", "(p16)", "(p17)"} {
		if !strings.Contains(out, want) {
			t.Errorf("disassembly missing %q", want)
		}
	}
}

package compiler

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/ia64"
	"repro/internal/loopir"
	"repro/internal/openmp"
)

// Property: for randomly generated expression trees, the compiled binary
// computes exactly (bit-for-bit) what a host-side interpreter of the IR
// computes, both in straight-line code and inside a software-pipelined
// loop body.

// exprEnv is the interpreter state: the arrays and the loop variable.
type exprEnv struct {
	ints   map[string][]int64
	floats map[string][]float64
	vars   map[string]int64
}

func (e *exprEnv) evalI(x loopir.IntExpr) int64 {
	switch ex := x.(type) {
	case loopir.IConst:
		return int64(ex)
	case loopir.IVar:
		return e.vars[string(ex)]
	case loopir.IBin:
		a, b := e.evalI(ex.A), e.evalI(ex.B)
		switch ex.Op {
		case loopir.Add:
			return a + b
		case loopir.Sub:
			return a - b
		case loopir.Mul:
			return a * b
		case loopir.And:
			return a & b
		case loopir.Or:
			return a | b
		case loopir.Xor:
			return a ^ b
		case loopir.Shl:
			return a << uint(b&63)
		case loopir.Shr:
			return a >> uint(b&63)
		}
	case loopir.ILoad:
		return e.ints[ex.Array][e.evalI(ex.Index)]
	}
	panic("unhandled int expr")
}

func (e *exprEnv) evalF(x loopir.FloatExpr) float64 {
	switch ex := x.(type) {
	case loopir.FConst:
		return float64(ex)
	case loopir.FVar:
		return 0 // generator does not emit free float vars
	case loopir.FBin:
		// Mirror the compiler's fma fusion: a*b + c and c + a*b compute
		// fused on the simulated machine, so the interpreter must too.
		if ex.Op == loopir.Add {
			if mul, ok := ex.A.(loopir.FBin); ok && mul.Op == loopir.Mul {
				return math.FMA(e.evalF(mul.A), e.evalF(mul.B), e.evalF(ex.B))
			}
			if mul, ok := ex.B.(loopir.FBin); ok && mul.Op == loopir.Mul {
				return math.FMA(e.evalF(mul.A), e.evalF(mul.B), e.evalF(ex.A))
			}
		}
		if ex.Op == loopir.Sub {
			if mul, ok := ex.A.(loopir.FBin); ok && mul.Op == loopir.Mul {
				return math.FMA(e.evalF(mul.A), e.evalF(mul.B), -e.evalF(ex.B))
			}
		}
		a, b := e.evalF(ex.A), e.evalF(ex.B)
		switch ex.Op {
		case loopir.Add:
			return a + b
		case loopir.Sub:
			return a - b
		case loopir.Mul:
			return a * b
		case loopir.Div:
			return a / b
		}
	case loopir.FLoad:
		return e.floats[ex.Array][e.evalI(ex.Index)]
	case loopir.FFromInt:
		return float64(e.evalI(ex.E))
	}
	panic("unhandled float expr")
}

const propElems = 64

// boundIdx wraps an index expression into [0, propElems).
func boundIdx(e loopir.IntExpr) loopir.IntExpr {
	return loopir.IAnd(e, loopir.I(propElems-1))
}

// genIntExpr builds a random integer expression over loop variable "i".
func genIntExpr(r *rand.Rand, depth int) loopir.IntExpr {
	if depth <= 0 {
		switch r.Intn(3) {
		case 0:
			return loopir.I(int64(r.Intn(201) - 100))
		case 1:
			return loopir.V("i")
		default:
			return loopir.IAt("ia", boundIdx(loopir.V("i")))
		}
	}
	switch r.Intn(8) {
	case 0:
		return loopir.IAdd(genIntExpr(r, depth-1), genIntExpr(r, depth-1))
	case 1:
		return loopir.ISub(genIntExpr(r, depth-1), genIntExpr(r, depth-1))
	case 2:
		return loopir.IMul(genIntExpr(r, depth-1), genIntExpr(r, depth-1))
	case 3:
		return loopir.IAnd(genIntExpr(r, depth-1), genIntExpr(r, depth-1))
	case 4:
		return loopir.IBin{Op: loopir.Or, A: genIntExpr(r, depth-1), B: genIntExpr(r, depth-1)}
	case 5:
		return loopir.IBin{Op: loopir.Xor, A: genIntExpr(r, depth-1), B: genIntExpr(r, depth-1)}
	case 6:
		return loopir.IShl(genIntExpr(r, depth-1), loopir.I(int64(r.Intn(4))))
	default:
		return loopir.IAt("ia", boundIdx(genIntExpr(r, depth-1)))
	}
}

// genFloatExpr builds a random float expression over "i".
func genFloatExpr(r *rand.Rand, depth int) loopir.FloatExpr {
	if depth <= 0 {
		switch r.Intn(3) {
		case 0:
			return loopir.F(float64(r.Intn(41)-20) / 4)
		case 1:
			return loopir.At("fa", boundIdx(loopir.V("i")))
		default:
			return loopir.FFromInt{E: genIntExpr(r, 0)}
		}
	}
	switch r.Intn(5) {
	case 0:
		return loopir.FAdd(genFloatExpr(r, depth-1), genFloatExpr(r, depth-1))
	case 1:
		return loopir.FSub(genFloatExpr(r, depth-1), genFloatExpr(r, depth-1))
	case 2:
		return loopir.FMul(genFloatExpr(r, depth-1), genFloatExpr(r, depth-1))
	case 3:
		return loopir.FDiv(genFloatExpr(r, depth-1), genFloatExpr(r, depth-1))
	default:
		return loopir.At("fa", boundIdx(genIntExpr(r, depth-1)))
	}
}

// runExprProgram compiles "for i in [0,n): iout[i] = ie; fout[i] = fe" and
// executes it; hint selects the loop lowering.
func runExprProgram(t *testing.T, ie loopir.IntExpr, fe loopir.FloatExpr,
	hint loopir.LoopHint, ia []int64, fa []float64) ([]int64, []float64) {
	t.Helper()
	prog := &loopir.Program{
		Name: "prop",
		Arrays: []loopir.Array{
			{Name: "ia", Kind: loopir.I64, Elems: propElems},
			{Name: "fa", Kind: loopir.F64, Elems: propElems},
			{Name: "iout", Kind: loopir.I64, Elems: propElems},
			{Name: "fout", Kind: loopir.F64, Elems: propElems},
		},
		Funcs: []*loopir.Func{{
			Name:     "body",
			Parallel: true,
			Body: []loopir.Stmt{
				loopir.For{Var: "i", Lo: loopir.V("lo"), Hi: loopir.V("hi"), Hint: hint, Body: []loopir.Stmt{
					loopir.IStore{Array: "iout", Index: loopir.V("i"), Val: ie},
					loopir.FStore{Array: "fout", Index: loopir.V("i"), Val: fe},
				}},
			},
		}},
	}
	m, res := buildAndCompile(t, prog, 2, DefaultOptions())
	iaBase := arrayBase(t, m, "prop", "ia")
	faBase := arrayBase(t, m, "prop", "fa")
	for i := 0; i < propElems; i++ {
		m.Memory().WriteI64(iaBase+uint64(8*i), ia[i])
		m.Memory().WriteF64(faBase+uint64(8*i), fa[i])
	}
	rt, err := openmp.NewRuntime(m, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.ParallelFor(res.Funcs["body"].Fn, propElems, nil); err != nil {
		t.Fatal(err)
	}
	iout := make([]int64, propElems)
	fout := make([]float64, propElems)
	ioBase := arrayBase(t, m, "prop", "iout")
	foBase := arrayBase(t, m, "prop", "fout")
	for i := 0; i < propElems; i++ {
		iout[i] = m.Memory().ReadI64(ioBase + uint64(8*i))
		fout[i] = m.Memory().ReadF64(foBase + uint64(8*i))
	}
	return iout, fout
}

func TestCompiledExpressionsMatchInterpreter(t *testing.T) {
	r := rand.New(rand.NewSource(20260706))
	for trial := 0; trial < 30; trial++ {
		ia := make([]int64, propElems)
		fa := make([]float64, propElems)
		for i := range ia {
			ia[i] = int64(r.Intn(4001) - 2000)
			fa[i] = float64(r.Intn(2001)-1000) / 8
		}
		ie := genIntExpr(r, 3)
		fe := genFloatExpr(r, 3)
		hint := []loopir.LoopHint{loopir.HintAuto, loopir.HintCounted, loopir.HintNoOpt}[trial%3]

		iout, fout := runExprProgram(t, ie, fe, hint, ia, fa)

		env := &exprEnv{
			ints:   map[string][]int64{"ia": ia},
			floats: map[string][]float64{"fa": fa},
			vars:   map[string]int64{},
		}
		for i := 0; i < propElems; i++ {
			env.vars["i"] = int64(i)
			wantI := env.evalI(ie)
			wantF := env.evalF(fe)
			if iout[i] != wantI {
				t.Fatalf("trial %d (hint %v) i=%d: int = %d, want %d\nexpr: %#v",
					trial, hint, i, iout[i], wantI, ie)
			}
			if math.Float64bits(fout[i]) != math.Float64bits(wantF) {
				t.Fatalf("trial %d (hint %v) i=%d: float = %v, want %v\nexpr: %#v",
					trial, hint, i, fout[i], wantF, fe)
			}
		}
	}
}

// TestNegativeStrideStream checks descending-index streaming (the back
// substitution pattern of the CFD solvers) end to end.
func TestNegativeStrideStream(t *testing.T) {
	const n = 96
	prog := &loopir.Program{
		Name: "revcopy",
		Arrays: []loopir.Array{
			{Name: "src", Kind: loopir.F64, Elems: n},
			{Name: "dst", Kind: loopir.F64, Elems: n},
		},
		Funcs: []*loopir.Func{{
			Name:     "rev",
			Parallel: true,
			Body: []loopir.Stmt{
				loopir.For{Var: "i", Lo: loopir.V("lo"), Hi: loopir.V("hi"), Body: []loopir.Stmt{
					loopir.FStore{Array: "dst", Index: loopir.ISub(loopir.I(n-1), loopir.V("i")),
						Val: loopir.At("src", loopir.ISub(loopir.I(n-1), loopir.V("i")))},
				}},
			},
		}},
	}
	m, res := buildAndCompile(t, prog, 2, DefaultOptions())
	src := arrayBase(t, m, "revcopy", "src")
	for i := 0; i < n; i++ {
		m.Memory().WriteF64(src+uint64(8*i), float64(i)+0.5)
	}
	rt, _ := openmp.NewRuntime(m, 2)
	if err := rt.ParallelFor(res.Funcs["rev"].Fn, n, nil); err != nil {
		t.Fatal(err)
	}
	dst := arrayBase(t, m, "revcopy", "dst")
	for i := 0; i < n; i++ {
		if got := m.Memory().ReadF64(dst + uint64(8*i)); got != float64(i)+0.5 {
			t.Fatalf("dst[%d] = %v", i, got)
		}
	}
	// The negative-stride stream must still be prefetched (descending).
	li := res.Funcs["rev"].Loops[0]
	if len(li.PrefetchPCs) == 0 {
		t.Fatal("no steady prefetches on negative-stride streams")
	}
	img := m.Image()
	for pc := range li.PrefetchPCs {
		// The AddI computing the prefetch target must subtract.
		if in := img.Fetch(pc - 1); in.Op == ia64.OpAddI && in.Imm >= 0 {
			t.Fatalf("negative-stride prefetch offset = %d, want negative", in.Imm)
		}
	}
}

package compiler

import (
	"fmt"

	"repro/internal/ia64"
	"repro/internal/loopir"
)

// loopCtx carries the state of the innermost loop being lowered: the loop
// variable, the cursor registers maintained for affine array streams, and
// software-pipelining stage information.
type loopCtx struct {
	varName  string
	varReg   uint8
	assigned map[string]bool

	swp        bool  // body instructions carry the stage predicate
	qpOverride uint8 // stage predicate override (two-stage compute phase)

	cursors map[string]*cursor

	// stage2loads maps FLoad reference keys to the rotated register
	// holding the value loaded one iteration earlier (two-stage SWP).
	stage2loads map[string]uint8
}

// cursor is a register tracking the byte address of one affine array
// stream: base + 8*(stride*var + baseSans) + 8*constOff is reached by
// adding 8*constOff to the register at use time.
type cursor struct {
	key     string
	array   string
	stride  int64
	reg     uint8
	regName string
}

func cursorKey(array string, stride int64, baseSans loopir.IntExpr) string {
	return fmt.Sprintf("%s|%d|%s", array, stride, loopir.Key(baseSans))
}

// lookupCursor resolves an array index against the loop's cursors,
// returning the cursor and the residual constant element offset.
func (lc *loopCtx) lookupCursor(array string, index loopir.IntExpr) (*cursor, int64, bool) {
	if lc == nil || lc.cursors == nil {
		return nil, 0, false
	}
	form, ok := loopir.Affine(index, lc.varName, lc.assigned)
	if !ok {
		return nil, 0, false
	}
	baseSans, c := loopir.SplitConst(form.Base)
	cur, ok := lc.cursors[cursorKey(array, form.Stride, baseSans)]
	return cur, c, ok
}

// arrayAddr yields a register holding the byte address of array[index],
// plus a release function for any temporary it claimed.
func (g *fnGen) arrayAddr(array string, index loopir.IntExpr, lc *loopCtx) (uint8, func()) {
	qp := g.qp(lc)
	if cur, off, ok := lc.lookupCursor(array, index); ok {
		if off == 0 {
			return cur.reg, func() {}
		}
		t, err := g.intTemps.get()
		if err != nil {
			g.fail("%s: %v", g.fn.Name, err)
			return 0, func() {}
		}
		g.emit(ia64.Instr{Op: ia64.OpAddI, R1: t, R2: cur.reg, Imm: off * loopir.ElemBytes, QP: qp})
		return t, func() { g.intTemps.put(t) }
	}
	// Generic path: addr = base + (index << 3).
	idx, relIdx := g.evalI(index, lc)
	t, err := g.intTemps.get()
	if err != nil {
		g.fail("%s: %v", g.fn.Name, err)
		return 0, func() {}
	}
	g.emit(ia64.Instr{Op: ia64.OpShlI, R1: t, R2: idx, Imm: 3, QP: qp})
	relIdx()
	base, err := g.intTemps.get()
	if err != nil {
		g.fail("%s: %v", g.fn.Name, err)
		return 0, func() {}
	}
	g.emit(ia64.Instr{Op: ia64.OpMovI, R1: base, Imm: int64(g.bases[array]), QP: qp})
	g.emit(ia64.Instr{Op: ia64.OpAdd, R1: t, R2: t, R3: base, QP: qp})
	g.intTemps.put(base)
	return t, func() { g.intTemps.put(t) }
}

// evalI lowers an integer expression, returning the result register and a
// release function. Named registers are returned in place (never clobber
// the result of evalI without copying).
func (g *fnGen) evalI(e loopir.IntExpr, lc *loopCtx) (uint8, func()) {
	qp := g.qp(lc)
	noop := func() {}
	fail := func(err error) (uint8, func()) {
		g.fail("%s: %v", g.fn.Name, err)
		return 0, noop
	}
	switch ex := e.(type) {
	case loopir.IConst:
		t, err := g.intTemps.get()
		if err != nil {
			return fail(err)
		}
		g.emit(ia64.Instr{Op: ia64.OpMovI, R1: t, Imm: int64(ex), QP: qp})
		return t, func() { g.intTemps.put(t) }

	case loopir.IVar:
		r, err := g.namedGR(string(ex))
		if err != nil {
			return fail(err)
		}
		return r, noop

	case loopir.IBin:
		a, relA := g.evalI(ex.A, lc)
		// Shifts take immediate counts.
		if ex.Op == loopir.Shl || ex.Op == loopir.Shr {
			c, isC := constIntExpr(ex.B)
			if !isC {
				return fail(fmt.Errorf("shift by non-constant"))
			}
			t, err := g.intTemps.get()
			if err != nil {
				return fail(err)
			}
			op := ia64.OpShlI
			if ex.Op == loopir.Shr {
				op = ia64.OpShrI
			}
			g.emit(ia64.Instr{Op: op, R1: t, R2: a, Imm: c, QP: qp})
			relA()
			return t, func() { g.intTemps.put(t) }
		}
		// Constant right operand of +/- folds to addi.
		if c, isC := constIntExpr(ex.B); isC && (ex.Op == loopir.Add || ex.Op == loopir.Sub) {
			if ex.Op == loopir.Sub {
				c = -c
			}
			t, err := g.intTemps.get()
			if err != nil {
				return fail(err)
			}
			g.emit(ia64.Instr{Op: ia64.OpAddI, R1: t, R2: a, Imm: c, QP: qp})
			relA()
			return t, func() { g.intTemps.put(t) }
		}
		b, relB := g.evalI(ex.B, lc)
		var op ia64.Op
		switch ex.Op {
		case loopir.Add:
			op = ia64.OpAdd
		case loopir.Sub:
			op = ia64.OpSub
		case loopir.Mul:
			op = ia64.OpMul
		case loopir.And:
			op = ia64.OpAnd
		case loopir.Or:
			op = ia64.OpOr
		case loopir.Xor:
			op = ia64.OpXor
		default:
			return fail(fmt.Errorf("integer operator %v unsupported", ex.Op))
		}
		t, err := g.intTemps.get()
		if err != nil {
			return fail(err)
		}
		g.emit(ia64.Instr{Op: op, R1: t, R2: a, R3: b, QP: qp})
		relA()
		relB()
		return t, func() { g.intTemps.put(t) }

	case loopir.ILoad:
		addr, relAddr := g.arrayAddr(ex.Array, ex.Index, lc)
		t, err := g.intTemps.get()
		if err != nil {
			return fail(err)
		}
		g.emit(ia64.Instr{Op: ia64.OpLd, R1: t, R2: addr, QP: qp})
		relAddr()
		return t, func() { g.intTemps.put(t) }
	}
	return fail(fmt.Errorf("unknown int expression %T", e))
}

// evalF lowers a float expression.
func (g *fnGen) evalF(e loopir.FloatExpr, lc *loopCtx) (uint8, func()) {
	qp := g.qp(lc)
	noop := func() {}
	fail := func(err error) (uint8, func()) {
		g.fail("%s: %v", g.fn.Name, err)
		return 0, noop
	}
	switch ex := e.(type) {
	case loopir.FConst:
		t, err := g.floatTemps.get()
		if err != nil {
			return fail(err)
		}
		g.emit(ia64.Instr{Op: ia64.OpFMovI, R1: t, Imm: fconstBits(float64(ex)), QP: qp})
		return t, func() { g.floatTemps.put(t) }

	case loopir.FVar:
		r, err := g.namedFR(string(ex))
		if err != nil {
			return fail(err)
		}
		return r, noop

	case loopir.FBin:
		// fma fusion: a*b + c, a*b - c, and c + a*b lower to one fma.d,
		// as icc emits in Figure 2.
		if ex.Op == loopir.Add || ex.Op == loopir.Sub {
			if mul, okM := ex.A.(loopir.FBin); okM && mul.Op == loopir.Mul {
				return g.emitFma(mul.A, mul.B, ex.B, ex.Op == loopir.Sub, lc)
			}
			if mul, okM := ex.B.(loopir.FBin); okM && mul.Op == loopir.Mul && ex.Op == loopir.Add {
				return g.emitFma(mul.A, mul.B, ex.A, false, lc)
			}
		}
		a, relA := g.evalF(ex.A, lc)
		b, relB := g.evalF(ex.B, lc)
		var op ia64.Op
		switch ex.Op {
		case loopir.Add:
			op = ia64.OpFAdd
		case loopir.Sub:
			op = ia64.OpFSub
		case loopir.Mul:
			op = ia64.OpFMul
		case loopir.Div:
			op = ia64.OpFDiv
		default:
			return fail(fmt.Errorf("float operator %v unsupported", ex.Op))
		}
		t, err := g.floatTemps.get()
		if err != nil {
			return fail(err)
		}
		g.emit(ia64.Instr{Op: op, R1: t, R2: a, R3: b, QP: qp})
		relA()
		relB()
		return t, func() { g.floatTemps.put(t) }

	case loopir.FLoad:
		// Two-stage pipelined bodies read loads issued one iteration
		// earlier from rotated registers.
		if lc != nil && lc.stage2loads != nil {
			if r, ok := lc.stage2loads[refKey(ex)]; ok {
				return r, noop
			}
		}
		addr, relAddr := g.arrayAddr(ex.Array, ex.Index, lc)
		t, err := g.floatTemps.get()
		if err != nil {
			return fail(err)
		}
		g.emit(ia64.Instr{Op: ia64.OpLdf, R1: t, R2: addr, QP: qp})
		relAddr()
		return t, func() { g.floatTemps.put(t) }

	case loopir.FFromInt:
		r, relR := g.evalI(ex.E, lc)
		t, err := g.floatTemps.get()
		if err != nil {
			return fail(err)
		}
		g.emit(ia64.Instr{Op: ia64.OpFCvt, R1: t, R2: r, QP: qp})
		relR()
		return t, func() { g.floatTemps.put(t) }
	}
	return fail(fmt.Errorf("unknown float expression %T", e))
}

// emitFma lowers a*b ± c into a single fma.d (with fneg for the minus
// form, since fma has no subtract variant in our subset).
func (g *fnGen) emitFma(a, b, c loopir.FloatExpr, sub bool, lc *loopCtx) (uint8, func()) {
	qp := g.qp(lc)
	ra, relA := g.evalF(a, lc)
	rb, relB := g.evalF(b, lc)
	rc, relC := g.evalF(c, lc)
	t, err := g.floatTemps.get()
	if err != nil {
		g.fail("%s: %v", g.fn.Name, err)
		return 0, func() {}
	}
	if sub {
		// a*b - c == fma(a, b, -c)
		tn, err := g.floatTemps.get()
		if err != nil {
			g.fail("%s: %v", g.fn.Name, err)
			return 0, func() {}
		}
		g.emit(ia64.Instr{Op: ia64.OpFNeg, R1: tn, R2: rc, QP: qp})
		g.emit(ia64.Instr{Op: ia64.OpFma, R1: t, R2: ra, R3: rb, Imm: int64(tn), QP: qp})
		g.floatTemps.put(tn)
	} else {
		g.emit(ia64.Instr{Op: ia64.OpFma, R1: t, R2: ra, R3: rb, Imm: int64(rc), QP: qp})
	}
	relA()
	relB()
	relC()
	return t, func() { g.floatTemps.put(t) }
}

func refKey(f loopir.FLoad) string {
	return f.Array + "[" + loopir.Key(f.Index) + "]"
}

func constIntExpr(e loopir.IntExpr) (int64, bool) {
	form, ok := loopir.Affine(e, "", nil)
	if !ok || form.Stride != 0 {
		return 0, false
	}
	rest, c := loopir.SplitConst(form.Base)
	if k, isZero := rest.(loopir.IConst); isZero && int64(k) == 0 {
		return c, true
	}
	return 0, false
}

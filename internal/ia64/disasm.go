package ia64

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Disasm renders one instruction in an Itanium-flavoured assembly syntax,
// e.g. "(p16) lfetch.nt1 [r43]" or "br.ctop .loop".
func Disasm(in Instr) string {
	var b strings.Builder
	if in.QP != 0 {
		fmt.Fprintf(&b, "(p%d) ", in.QP)
	}
	switch in.Op {
	case OpNop:
		b.WriteString("nop")
	case OpAdd:
		fmt.Fprintf(&b, "add r%d=r%d,r%d", in.R1, in.R2, in.R3)
	case OpSub:
		fmt.Fprintf(&b, "sub r%d=r%d,r%d", in.R1, in.R2, in.R3)
	case OpAddI:
		fmt.Fprintf(&b, "add r%d=%d,r%d", in.R1, in.Imm, in.R2)
	case OpAnd:
		fmt.Fprintf(&b, "and r%d=r%d,r%d", in.R1, in.R2, in.R3)
	case OpOr:
		fmt.Fprintf(&b, "or r%d=r%d,r%d", in.R1, in.R2, in.R3)
	case OpXor:
		fmt.Fprintf(&b, "xor r%d=r%d,r%d", in.R1, in.R2, in.R3)
	case OpShlI:
		fmt.Fprintf(&b, "shl r%d=r%d,%d", in.R1, in.R2, in.Imm)
	case OpShrI:
		fmt.Fprintf(&b, "shr r%d=r%d,%d", in.R1, in.R2, in.Imm)
	case OpMovI:
		fmt.Fprintf(&b, "mov r%d=%d", in.R1, in.Imm)
	case OpMul:
		fmt.Fprintf(&b, "xma.l r%d=r%d,r%d", in.R1, in.R2, in.R3)
	case OpCmp:
		fmt.Fprintf(&b, "cmp.%s p%d,p%d=r%d,r%d", in.Rel, in.P1, in.P2, in.R2, in.R3)
	case OpCmpI:
		fmt.Fprintf(&b, "cmp.%s p%d,p%d=r%d,%d", in.Rel, in.P1, in.P2, in.R2, in.Imm)
	case OpLd:
		fmt.Fprintf(&b, "ld8%s r%d=[r%d]", in.Hint, in.R1, in.R2)
	case OpSt:
		fmt.Fprintf(&b, "st8 [r%d]=r%d", in.R2, in.R3)
	case OpLdf:
		fmt.Fprintf(&b, "ldfd r%d=[r%d]", in.R1, in.R2)
	case OpStf:
		fmt.Fprintf(&b, "stfd [r%d]=f%d", in.R2, in.R3)
	case OpLfetch:
		fmt.Fprintf(&b, "lfetch%s [r%d]", in.Hint, in.R2)
	case OpFma:
		fmt.Fprintf(&b, "fma.d f%d=f%d,f%d,f%d", in.R1, in.R2, in.R3, uint8(in.Imm))
	case OpFAdd:
		fmt.Fprintf(&b, "fadd f%d=f%d,f%d", in.R1, in.R2, in.R3)
	case OpFSub:
		fmt.Fprintf(&b, "fsub f%d=f%d,f%d", in.R1, in.R2, in.R3)
	case OpFMul:
		fmt.Fprintf(&b, "fmul f%d=f%d,f%d", in.R1, in.R2, in.R3)
	case OpFDiv:
		fmt.Fprintf(&b, "fdiv f%d=f%d,f%d", in.R1, in.R2, in.R3)
	case OpFMovI:
		fmt.Fprintf(&b, "fmov f%d=%g", in.R1, math.Float64frombits(uint64(in.Imm)))
	case OpFMov:
		fmt.Fprintf(&b, "fmov f%d=f%d", in.R1, in.R2)
	case OpFNeg:
		fmt.Fprintf(&b, "fneg f%d=f%d", in.R1, in.R2)
	case OpFCmp:
		fmt.Fprintf(&b, "fcmp.%s p%d,p%d=f%d,f%d", in.Rel, in.P1, in.P2, in.R2, in.R3)
	case OpFCvt:
		fmt.Fprintf(&b, "fcvt f%d=r%d", in.R1, in.R2)
	case OpFInt:
		fmt.Fprintf(&b, "fint r%d=f%d", in.R1, in.R2)
	case OpBr:
		fmt.Fprintf(&b, "br.%s %d", in.Br, in.Imm)
	case OpMovToLC:
		fmt.Fprintf(&b, "mov ar.lc=r%d", in.R2)
	case OpMovToLCI:
		fmt.Fprintf(&b, "mov ar.lc=%d", in.Imm)
	case OpMovToEC:
		fmt.Fprintf(&b, "mov ar.ec=r%d", in.R2)
	case OpMovToECI:
		fmt.Fprintf(&b, "mov ar.ec=%d", in.Imm)
	case OpMovFromLC:
		fmt.Fprintf(&b, "mov r%d=ar.lc", in.R1)
	case OpClrrrb:
		b.WriteString("clrrrb")
	case OpHalt:
		b.WriteString("halt")
	default:
		fmt.Fprintf(&b, "%s ?", in.Op)
	}
	return b.String()
}

// DumpFunc writes a disassembly listing of fn to w, three slots per bundle,
// marking bundle boundaries with braces as Itanium listings do.
func DumpFunc(w io.Writer, img *Image, fn Func) {
	fmt.Fprintf(w, "%s: // slots [%d,%d)\n", fn.Name, fn.Entry, fn.End)
	for pc := fn.Entry; pc < fn.End; pc++ {
		in := img.Fetch(pc)
		prefix := "  "
		if (pc-fn.Entry)%BundleSlots == 0 {
			prefix = "{ "
		}
		suffix := ""
		if (pc-fn.Entry)%BundleSlots == BundleSlots-1 || pc == fn.End-1 {
			suffix = " }"
		}
		fmt.Fprintf(w, "%s%5d: %s%s\n", prefix, pc, Disasm(in), suffix)
	}
}

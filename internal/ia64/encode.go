package ia64

import "fmt"

// Word is one half of an encoded instruction. Instructions encode into a
// fixed-width pair of words: word 0 packs the opcode and register/completer
// fields, word 1 holds the 64-bit immediate. The fixed width is what makes
// in-place binary patching safe — a rewritten instruction always fits the
// slot of the instruction it replaces, just as a 41-bit IA-64 syllable can
// be rewritten within its bundle.
type Word uint64

// Field layout of word 0 (LSB first):
//
//	bits  0..7   Op
//	bits  8..15  QP
//	bits 16..23  R1
//	bits 24..31  R2
//	bits 32..39  R3
//	bits 40..45  P1
//	bits 46..51  P2
//	bits 52..55  Hint
//	bits 56..59  Br
//	bits 60..63  Rel
const (
	shiftOp   = 0
	shiftQP   = 8
	shiftR1   = 16
	shiftR2   = 24
	shiftR3   = 32
	shiftP1   = 40
	shiftP2   = 46
	shiftHint = 52
	shiftBr   = 56
	shiftRel  = 60
)

// Encode packs an instruction into its two-word binary form.
func Encode(in Instr) (Word, Word) {
	var w Word
	w |= Word(in.Op) << shiftOp
	w |= Word(in.QP) << shiftQP
	w |= Word(in.R1) << shiftR1
	w |= Word(in.R2) << shiftR2
	w |= Word(in.R3) << shiftR3
	w |= Word(in.P1&0x3f) << shiftP1
	w |= Word(in.P2&0x3f) << shiftP2
	w |= Word(in.Hint&0xf) << shiftHint
	w |= Word(in.Br&0xf) << shiftBr
	w |= Word(in.Rel&0xf) << shiftRel
	return w, Word(uint64(in.Imm))
}

// Decode unpacks a two-word binary form into an instruction. It returns an
// error for opcodes outside the defined set so that a corrupted patch is
// detected rather than silently executed.
func Decode(w0, w1 Word) (Instr, error) {
	op := Op(w0 >> shiftOp & 0xff)
	if op >= opCount {
		return Instr{}, fmt.Errorf("ia64: invalid opcode %d in word %#x", op, uint64(w0))
	}
	in := Instr{
		Op:   op,
		QP:   uint8(w0 >> shiftQP),
		R1:   uint8(w0 >> shiftR1),
		R2:   uint8(w0 >> shiftR2),
		R3:   uint8(w0 >> shiftR3),
		P1:   uint8(w0 >> shiftP1 & 0x3f),
		P2:   uint8(w0 >> shiftP2 & 0x3f),
		Hint: Hint(w0 >> shiftHint & 0xf),
		Br:   BrKind(w0 >> shiftBr & 0xf),
		Rel:  CmpRel(w0 >> shiftRel & 0xf),
		Imm:  int64(w1),
	}
	if in.Hint > HintBias {
		return Instr{}, fmt.Errorf("ia64: invalid hint %d in word %#x", in.Hint, uint64(w0))
	}
	if in.Op == OpBr && in.Br > BrRet {
		return Instr{}, fmt.Errorf("ia64: invalid branch kind %d in word %#x", in.Br, uint64(w0))
	}
	return in, nil
}

// MustDecode decodes a word pair and panics on malformed encodings. It is
// used on paths where the words were produced by Encode.
func MustDecode(w0, w1 Word) Instr {
	in, err := Decode(w0, w1)
	if err != nil {
		panic(err)
	}
	return in
}

package ia64

import (
	"strings"
	"testing"
)

func TestImageAppendFetch(t *testing.T) {
	img := NewImage()
	start := img.Append(
		Instr{Op: OpMovI, R1: 4, Imm: 10},
		Instr{Op: OpLfetch, R2: 4, Hint: HintNT1},
	)
	if start != 0 {
		t.Fatalf("first append start = %d, want 0", start)
	}
	if img.Len() != 2 {
		t.Fatalf("Len = %d, want 2", img.Len())
	}
	if got := img.Fetch(1); got.Op != OpLfetch || got.Hint != HintNT1 {
		t.Fatalf("Fetch(1) = %+v", got)
	}
}

func TestImagePatchRewritesWordsAndBumpsGeneration(t *testing.T) {
	img := NewImage()
	img.Append(Instr{Op: OpLfetch, R2: 43, Hint: HintNT1})
	gen0 := img.Generation()
	w0Before, _ := img.Words(0)

	old, err := img.Patch(0, Instr{Op: OpNop})
	if err != nil {
		t.Fatal(err)
	}
	if old.Op != OpLfetch {
		t.Fatalf("Patch returned old op %v, want lfetch", old.Op)
	}
	if img.Generation() != gen0+1 {
		t.Fatalf("generation = %d, want %d", img.Generation(), gen0+1)
	}
	w0After, _ := img.Words(0)
	if w0After == w0Before {
		t.Fatal("Patch did not rewrite the encoded word")
	}
	if got := img.Fetch(0); got.Op != OpNop {
		t.Fatalf("Fetch after patch = %v, want nop", got.Op)
	}
}

func TestImagePatchUndo(t *testing.T) {
	img := NewImage()
	img.Append(Instr{Op: OpLfetch, R2: 43, Hint: HintNT1, QP: 16})
	orig := img.Fetch(0)
	old, err := img.Patch(0, Instr{Op: OpNop})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := img.Patch(0, old); err != nil {
		t.Fatal(err)
	}
	if got := img.Fetch(0); got != orig {
		t.Fatalf("undo mismatch: %+v vs %+v", got, orig)
	}
}

func TestImageCloneIsIndependent(t *testing.T) {
	img := NewImage()
	img.Append(Instr{Op: OpLfetch, R2: 43, Hint: HintNT1})
	img.AddFunc("f", 0, 1)

	cp := img.Clone()
	if cp.Len() != img.Len() {
		t.Fatalf("clone Len = %d, want %d", cp.Len(), img.Len())
	}
	if got := cp.Fetch(0); got.Op != OpLfetch || got.Hint != HintNT1 {
		t.Fatalf("clone Fetch(0) = %+v", got)
	}
	if _, ok := cp.LookupFunc("f"); !ok {
		t.Fatal("clone lost the function table")
	}
	w0, w1 := img.Words(0)
	cw0, cw1 := cp.Words(0)
	if w0 != cw0 || w1 != cw1 {
		t.Fatal("clone words differ from original")
	}

	// Patching the clone must not touch the original, and vice versa.
	if _, err := cp.Patch(0, Instr{Op: OpNop}); err != nil {
		t.Fatal(err)
	}
	if got := img.Fetch(0); got.Op != OpLfetch {
		t.Fatalf("original mutated by clone patch: %+v", got)
	}
	if _, err := img.Patch(0, Instr{Op: OpLfetch, R2: 43, Hint: HintExcl}); err != nil {
		t.Fatal(err)
	}
	if got := cp.Fetch(0); got.Op != OpNop {
		t.Fatalf("clone mutated by original patch: %+v", got)
	}
	// Appending to the clone must not grow the original.
	cp.Append(Instr{Op: OpHalt})
	if img.Len() != 1 {
		t.Fatalf("original Len = %d after clone append, want 1", img.Len())
	}
}

func TestImagePatchOutOfRange(t *testing.T) {
	img := NewImage()
	img.Append(Instr{Op: OpNop})
	if _, err := img.Patch(5, Instr{Op: OpNop}); err == nil {
		t.Fatal("Patch out of range succeeded")
	}
	if _, err := img.Patch(-1, Instr{Op: OpNop}); err == nil {
		t.Fatal("Patch at -1 succeeded")
	}
}

func TestImagePatchWordsValidates(t *testing.T) {
	img := NewImage()
	img.Append(Instr{Op: OpNop})
	if _, err := img.PatchWords(0, Word(0xff), 0); err == nil {
		t.Fatal("PatchWords accepted an invalid opcode")
	}
	// Valid words must apply.
	w0, w1 := Encode(Instr{Op: OpLfetch, R2: 10, Hint: HintExcl})
	if _, err := img.PatchWords(0, w0, w1); err != nil {
		t.Fatal(err)
	}
	if got := img.Fetch(0); got.Hint != HintExcl {
		t.Fatalf("hint = %v, want .excl", got.Hint)
	}
}

func TestImageFuncTable(t *testing.T) {
	img := NewImage()
	img.Append(Instr{Op: OpNop}, Instr{Op: OpNop}, Instr{Op: OpNop})
	img.AddFunc("a", 0, 3)
	img.Append(Instr{Op: OpHalt})
	img.AddFunc("b", 3, 4)

	if f, ok := img.LookupFunc("b"); !ok || f.Entry != 3 {
		t.Fatalf("LookupFunc(b) = %+v, %v", f, ok)
	}
	if f, ok := img.FuncAt(1); !ok || f.Name != "a" {
		t.Fatalf("FuncAt(1) = %+v, %v", f, ok)
	}
	if _, ok := img.FuncAt(99); ok {
		t.Fatal("FuncAt(99) found a function")
	}
	fs := img.Funcs()
	if len(fs) != 2 || fs[0].Name != "a" || fs[1].Name != "b" {
		t.Fatalf("Funcs() = %+v", fs)
	}
}

func TestCountStatic(t *testing.T) {
	img := NewImage()
	img.Append(
		Instr{Op: OpLfetch, Hint: HintNT1},
		Instr{Op: OpLfetch, Hint: HintExcl},
		Instr{Op: OpBr, Br: BrCtop},
		Instr{Op: OpBr, Br: BrCloop},
		Instr{Op: OpBr, Br: BrCloop},
		Instr{Op: OpBr, Br: BrWtop},
		Instr{Op: OpBr, Br: BrCond},
		Instr{Op: OpNop},
	)
	c := img.CountStatic()
	want := StaticCounts{Lfetch: 2, BrCtop: 1, BrCloop: 2, BrWtop: 1}
	if c != want {
		t.Fatalf("CountStatic = %+v, want %+v", c, want)
	}
}

func TestFetchRange(t *testing.T) {
	img := NewImage()
	img.Append(Instr{Op: OpNop}, Instr{Op: OpAdd, R1: 1}, Instr{Op: OpHalt})
	got := img.FetchRange(1, 10, nil)
	if len(got) != 2 || got[0].Op != OpAdd || got[1].Op != OpHalt {
		t.Fatalf("FetchRange = %+v", got)
	}
}

func TestAsmLabelsAndBranches(t *testing.T) {
	img := NewImage()
	// A preceding function shifts the base so fixups must be relocated.
	pre := NewAsm(img, "pre")
	pre.Nop()
	if _, err := pre.Close(); err != nil {
		t.Fatal(err)
	}

	a := NewAsm(img, "loop")
	a.Emit(Instr{Op: OpMovToLCI, Imm: 3})
	a.Label("top")
	a.Emit(Instr{Op: OpAddI, R1: 4, R2: 4, Imm: 1})
	a.Br(BrCloop, 0, "top")
	entry, err := a.Close()
	if err != nil {
		t.Fatal(err)
	}
	if entry%BundleSlots != 0 {
		t.Fatalf("entry %d not bundle aligned", entry)
	}
	// The branch target must be the absolute slot of "top".
	var br Instr
	for pc := entry; pc < img.Len(); pc++ {
		if in := img.Fetch(pc); in.Op == OpBr {
			br = in
			break
		}
	}
	if br.Op != OpBr {
		t.Fatal("no branch emitted")
	}
	wantTarget := int64(entry + 1)
	if br.Imm != wantTarget {
		t.Fatalf("branch target = %d, want %d", br.Imm, wantTarget)
	}
}

func TestAsmUndefinedLabel(t *testing.T) {
	img := NewImage()
	a := NewAsm(img, "bad")
	a.Br(BrAlways, 0, "nowhere")
	if _, err := a.Close(); err == nil {
		t.Fatal("Close accepted undefined label")
	}
}

func TestAsmDuplicateLabel(t *testing.T) {
	img := NewImage()
	a := NewAsm(img, "dup")
	a.Label("x")
	a.Nop()
	a.Label("x")
	if _, err := a.Close(); err == nil {
		t.Fatal("Close accepted duplicate label")
	}
}

func TestAsmPadsToBundle(t *testing.T) {
	img := NewImage()
	a := NewAsm(img, "pad")
	a.Nop() // 1 slot -> must pad to 3
	if _, err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if img.Len()%BundleSlots != 0 {
		t.Fatalf("image length %d not bundle aligned after Close", img.Len())
	}
}

func TestDisasmCoversCommonForms(t *testing.T) {
	cases := []struct {
		in   Instr
		want string
	}{
		{Instr{Op: OpLfetch, R2: 43, Hint: HintNT1, QP: 16}, "(p16) lfetch.nt1 [r43]"},
		{Instr{Op: OpLfetch, R2: 43, Hint: HintExcl}, "lfetch.excl [r43]"},
		{Instr{Op: OpFma, R1: 44, R2: 6, R3: 37, Imm: 43}, "fma.d f44=f6,f37,f43"},
		{Instr{Op: OpBr, Br: BrCtop, Imm: 12}, "br.ctop 12"},
		{Instr{Op: OpNop}, "nop"},
		{Instr{Op: OpLd, R1: 3, R2: 9, Hint: HintBias}, "ld8.bias r3=[r9]"},
	}
	for _, c := range cases {
		if got := Disasm(c.in); got != c.want {
			t.Errorf("Disasm(%+v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestDumpFunc(t *testing.T) {
	img := NewImage()
	a := NewAsm(img, "f")
	a.Emit(Instr{Op: OpLfetch, R2: 10, Hint: HintNT1})
	a.Emit(Instr{Op: OpHalt})
	if _, err := a.Close(); err != nil {
		t.Fatal(err)
	}
	fn, _ := img.LookupFunc("f")
	var sb strings.Builder
	DumpFunc(&sb, img, fn)
	out := sb.String()
	for _, want := range []string{"f:", "lfetch.nt1 [r10]", "halt"} {
		if !strings.Contains(out, want) {
			t.Errorf("DumpFunc output missing %q:\n%s", want, out)
		}
	}
}

// syncAll fully materializes a decode cache via SyncDecode from scratch.
func syncAll(img *Image) ([]Instr, uint64) {
	return img.SyncDecode(nil, 0)
}

func TestSyncDecodeIncrementalPatch(t *testing.T) {
	img := NewImage()
	for i := 0; i < 16; i++ {
		img.Append(Instr{Op: OpAddI, R1: uint8(i), R2: uint8(i), Imm: int64(i)})
	}
	dec, gen := syncAll(img)
	if len(dec) != 16 || gen != img.Generation() {
		t.Fatalf("initial sync: len=%d gen=%d (image gen %d)", len(dec), gen, img.Generation())
	}

	if _, err := img.Patch(5, Instr{Op: OpNop}); err != nil {
		t.Fatal(err)
	}
	if _, err := img.Patch(11, Instr{Op: OpMovI, R1: 7, Imm: 99}); err != nil {
		t.Fatal(err)
	}
	dec, gen = img.SyncDecode(dec, gen)
	if gen != img.Generation() {
		t.Fatalf("sync gen = %d, want %d", gen, img.Generation())
	}
	for pc := 0; pc < img.Len(); pc++ {
		if dec[pc] != img.Fetch(pc) {
			t.Fatalf("slot %d stale after incremental sync: %+v vs %+v", pc, dec[pc], img.Fetch(pc))
		}
	}

	// A second sync at the same generation is a no-op returning the same
	// backing array.
	dec2, gen2 := img.SyncDecode(dec, gen)
	if gen2 != gen || &dec2[0] != &dec[0] {
		t.Fatal("up-to-date sync must return the cache unchanged")
	}
}

func TestSyncDecodeCopiesAppendedTail(t *testing.T) {
	img := NewImage()
	img.Append(Instr{Op: OpNop}, Instr{Op: OpNop})
	dec, gen := syncAll(img)

	img.Append(Instr{Op: OpMovI, R1: 3, Imm: 42}, Instr{Op: OpHalt})
	if _, err := img.Patch(0, Instr{Op: OpMovI, R1: 1, Imm: 1}); err != nil {
		t.Fatal(err)
	}
	dec, gen = img.SyncDecode(dec, gen)
	if len(dec) != 4 {
		t.Fatalf("len = %d after append sync, want 4", len(dec))
	}
	for pc := 0; pc < 4; pc++ {
		if dec[pc] != img.Fetch(pc) {
			t.Fatalf("slot %d wrong after append+patch sync", pc)
		}
	}
	_ = gen
}

// TestSyncDecodeStatsCountsReplayedSlots pins the incremental-cost
// contract multi-version patching relies on: a variant switch is one
// entry-slot repoint, so a decode cache catches up by replaying exactly
// one journaled slot — and a cache that fell behind the journal reports
// the full-refetch sentinel instead.
func TestSyncDecodeStatsCountsReplayedSlots(t *testing.T) {
	img := NewImage()
	for i := 0; i < 16; i++ {
		img.Append(Instr{Op: OpAddI, R1: uint8(i), R2: uint8(i), Imm: int64(i)})
	}
	dec, gen := syncAll(img)

	// Up to date: nothing replayed.
	dec, gen, n := img.SyncDecodeStats(dec, gen)
	if n != 0 {
		t.Fatalf("up-to-date sync replayed %d slots, want 0", n)
	}

	// One dispatch-branch repoint (what VariantSet.Switch does).
	if _, err := img.Patch(0, Instr{Op: OpBr, Br: BrAlways, Imm: 8}); err != nil {
		t.Fatal(err)
	}
	dec, gen, n = img.SyncDecodeStats(dec, gen)
	if n != 1 {
		t.Fatalf("variant switch replayed %d slots, want exactly 1", n)
	}
	if dec[0] != img.Fetch(0) {
		t.Fatal("replayed slot is stale")
	}

	// Two switches between syncs: two replayed slots (same pc journaled
	// twice counts per record — the journal is a log, not a set).
	if _, err := img.Patch(0, Instr{Op: OpBr, Br: BrAlways, Imm: 12}); err != nil {
		t.Fatal(err)
	}
	if _, err := img.Patch(3, Instr{Op: OpNop}); err != nil {
		t.Fatal(err)
	}
	dec, gen, n = img.SyncDecodeStats(dec, gen)
	if n != 2 {
		t.Fatalf("two patches replayed %d slots, want 2", n)
	}

	// Journal overflow: full refetch reported as -1.
	for i := 0; i < plogMax+200; i++ {
		if _, err := img.Patch(i%16, Instr{Op: OpMovI, R1: uint8(i % 4), Imm: int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	dec, gen, n = img.SyncDecodeStats(dec, gen)
	if n != -1 {
		t.Fatalf("overflowed journal replayed %d, want -1 (full refetch)", n)
	}
	for pc := 0; pc < 16; pc++ {
		if dec[pc] != img.Fetch(pc) {
			t.Fatalf("slot %d stale after full refetch", pc)
		}
	}
	_ = gen
}

func TestSyncDecodeJournalOverflowFallsBackToFullFetch(t *testing.T) {
	img := NewImage()
	for i := 0; i < 8; i++ {
		img.Append(Instr{Op: OpNop})
	}
	dec, gen := syncAll(img)

	// Overflow the patch journal so the cache's generation predates
	// plogBase; SyncDecode must still produce an exact copy (full refetch).
	for i := 0; i < plogMax+200; i++ {
		if _, err := img.Patch(i%8, Instr{Op: OpMovI, R1: uint8(i % 4), Imm: int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	dec, gen = img.SyncDecode(dec, gen)
	if gen != img.Generation() {
		t.Fatalf("gen = %d, want %d", gen, img.Generation())
	}
	for pc := 0; pc < 8; pc++ {
		if dec[pc] != img.Fetch(pc) {
			t.Fatalf("slot %d stale after journal overflow", pc)
		}
	}
}

func TestCloneSyncsFromScratch(t *testing.T) {
	img := NewImage()
	img.Append(Instr{Op: OpMovI, R1: 2, Imm: 7}, Instr{Op: OpHalt})
	for i := 0; i < 3; i++ {
		if _, err := img.Patch(0, Instr{Op: OpMovI, R1: 2, Imm: int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	c := img.Clone()
	dec, gen := syncAll(c)
	if gen != c.Generation() || len(dec) != c.Len() {
		t.Fatalf("clone sync: len=%d gen=%d", len(dec), gen)
	}
	for pc := 0; pc < c.Len(); pc++ {
		if dec[pc] != c.Fetch(pc) {
			t.Fatalf("clone slot %d wrong", pc)
		}
	}
	// Patching the clone must not disturb the original's decode stream.
	if _, err := c.Patch(0, Instr{Op: OpNop}); err != nil {
		t.Fatal(err)
	}
	if img.Fetch(0).Op == OpNop {
		t.Fatal("patching clone mutated original")
	}
}

// TestCloneThenOverflowKeepsPlogBaseConsistent pins the interaction the
// journal-compaction path has with Clone: a decode cache attached to a
// clone taken from a heavily-patched original, kept in sync across the
// clone's own journal overflow, must stay an exact copy at every step —
// including an intermediate incremental sync whose generation falls
// between the clone generation and the compaction drop point.
func TestCloneThenOverflowKeepsPlogBaseConsistent(t *testing.T) {
	img := NewImage()
	for i := 0; i < 8; i++ {
		img.Append(Instr{Op: OpNop})
	}
	// Advance the original's generation well past zero (and through one
	// compaction) so the clone inherits a non-trivial generation.
	for i := 0; i < plogMax+17; i++ {
		if _, err := img.Patch(i%8, Instr{Op: OpMovI, R1: uint8(i % 4), Imm: int64(i)}); err != nil {
			t.Fatal(err)
		}
	}

	c := img.Clone()
	dec, gen := syncAll(c)
	if gen != c.Generation() {
		t.Fatalf("clone attach: gen = %d, want %d", gen, c.Generation())
	}

	verify := func(step string) {
		t.Helper()
		if gen != c.Generation() {
			t.Fatalf("%s: gen = %d, want %d", step, gen, c.Generation())
		}
		for pc := 0; pc < c.Len(); pc++ {
			if dec[pc] != c.Fetch(pc) {
				t.Fatalf("%s: slot %d stale: %+v vs %+v", step, pc, dec[pc], c.Fetch(pc))
			}
		}
	}

	// A few patches on the clone, then an incremental sync: the cache's
	// generation now sits a little above the clone generation.
	for i := 0; i < 5; i++ {
		if _, err := c.Patch(i, Instr{Op: OpMovI, R1: 9, Imm: int64(100 + i)}); err != nil {
			t.Fatal(err)
		}
	}
	dec, gen = c.SyncDecode(dec, gen)
	verify("pre-overflow incremental sync")

	// Overflow the clone's journal. The compaction drop point lands beyond
	// the cache's generation, so this sync must take the full-fetch path —
	// an incremental replay over the truncated journal would miss the
	// dropped records.
	for i := 0; i < plogMax+200; i++ {
		if _, err := c.Patch(i%8, Instr{Op: OpMovI, R1: uint8(i % 4), Imm: int64(1000 + i)}); err != nil {
			t.Fatal(err)
		}
	}
	dec, gen = c.SyncDecode(dec, gen)
	verify("post-overflow sync")

	// And the mirror direction: overflowing the original after the clone
	// was taken must not disturb a cache attached to the clone.
	for i := 0; i < plogMax+50; i++ {
		if _, err := img.Patch(i%8, Instr{Op: OpMovI, R1: 5, Imm: int64(5000 + i)}); err != nil {
			t.Fatal(err)
		}
	}
	dec, gen = c.SyncDecode(dec, gen)
	verify("after original overflowed")

	// A cache whose generation exactly equals plogBase is the boundary of
	// the incremental gate (complete history is available for gens >
	// plogBase, so have == plogBase qualifies): patch exactly once past the
	// boundary and re-sync.
	if _, err := c.Patch(3, Instr{Op: OpHalt}); err != nil {
		t.Fatal(err)
	}
	dec, gen = c.SyncDecode(dec, gen)
	verify("boundary incremental sync")
}

package ia64

// Register-file geometry, following Itanium:
//
//   - 128 general registers; r0 reads as zero; r32..r127 form the rotating
//     region used by software-pipelined loops.
//   - 128 floating-point registers; f0 reads 0.0 and f1 reads 1.0;
//     f32..f127 rotate.
//   - 64 predicate registers; p0 reads as true; p16..p63 rotate.
//   - Application registers LC (loop count) and EC (epilog count).
const (
	NumGR = 128
	NumFR = 128
	NumPR = 64

	RotGRBase = 32 // first rotating general register
	RotFRBase = 32 // first rotating floating register
	RotPRBase = 16 // first rotating predicate register

	rotGRSize = NumGR - RotGRBase
	rotFRSize = NumFR - RotFRBase
	rotPRSize = NumPR - RotPRBase
)

// RegFile is the architectural register state of one hardware thread
// context. Rotation is implemented with rename bases (rrb): a logical
// register in the rotating region maps to physical
// base + (logical-base+rrb) mod size. Executing br.ctop/br.wtop decrements
// the bases, which renames r32 to the physical register previously named
// r33 — the mechanism software pipelining relies on to shift loop stages.
type RegFile struct {
	gr [NumGR]int64
	fr [NumFR]float64
	pr [NumPR]bool

	LC int64 // ar.lc: loop count
	EC int64 // ar.ec: epilog count

	rrbGR int // general-register rename base (0..rotGRSize-1)
	rrbFR int
	rrbPR int
}

// Reset clears all register state including rename bases.
func (rf *RegFile) Reset() {
	*rf = RegFile{}
}

func (rf *RegFile) physGR(r uint8) int {
	if r < RotGRBase {
		return int(r)
	}
	return RotGRBase + (int(r)-RotGRBase+rf.rrbGR)%rotGRSize
}

func (rf *RegFile) physFR(r uint8) int {
	if r < RotFRBase {
		return int(r)
	}
	return RotFRBase + (int(r)-RotFRBase+rf.rrbFR)%rotFRSize
}

func (rf *RegFile) physPR(p uint8) int {
	if p < RotPRBase {
		return int(p)
	}
	return RotPRBase + (int(p)-RotPRBase+rf.rrbPR)%rotPRSize
}

// GR reads logical general register r. r0 always reads zero.
func (rf *RegFile) GR(r uint8) int64 {
	if r == 0 {
		return 0
	}
	return rf.gr[rf.physGR(r)]
}

// SetGR writes logical general register r. Writes to r0 are discarded.
func (rf *RegFile) SetGR(r uint8, v int64) {
	if r == 0 {
		return
	}
	rf.gr[rf.physGR(r)] = v
}

// FR reads logical floating register r. f0 reads 0.0, f1 reads 1.0.
func (rf *RegFile) FR(r uint8) float64 {
	switch r {
	case 0:
		return 0
	case 1:
		return 1
	}
	return rf.fr[rf.physFR(r)]
}

// SetFR writes logical floating register r. Writes to f0/f1 are discarded.
func (rf *RegFile) SetFR(r uint8, v float64) {
	if r <= 1 {
		return
	}
	rf.fr[rf.physFR(r)] = v
}

// PR reads logical predicate p. p0 always reads true.
func (rf *RegFile) PR(p uint8) bool {
	if p == 0 {
		return true
	}
	return rf.pr[rf.physPR(p)]
}

// SetPR writes logical predicate p. Writes to p0 are discarded.
func (rf *RegFile) SetPR(p uint8, v bool) {
	if p == 0 {
		return
	}
	rf.pr[rf.physPR(p)] = v
}

// Rotate decrements the rename bases by one, renaming rN to the physical
// register previously named rN+1 for every register in the rotating
// regions. It is invoked by br.ctop and br.wtop.
func (rf *RegFile) Rotate() {
	rf.rrbGR = (rf.rrbGR - 1 + rotGRSize) % rotGRSize
	rf.rrbFR = (rf.rrbFR - 1 + rotFRSize) % rotFRSize
	rf.rrbPR = (rf.rrbPR - 1 + rotPRSize) % rotPRSize
}

// ClearRRB resets all rename bases, as the clrrrb instruction does before
// entering a software-pipelined loop.
func (rf *RegFile) ClearRRB() {
	rf.rrbGR, rf.rrbFR, rf.rrbPR = 0, 0, 0
}

// BranchOutcome describes the architectural effect of executing a loop
// branch.
type BranchOutcome struct {
	Taken   bool
	Rotated bool
}

// ExecCtop applies br.ctop semantics: while LC is non-zero the branch is
// taken, LC decrements, registers rotate and the new p16 (the stage
// predicate feeding the pipeline) is set true. When LC reaches zero the
// epilog counter EC drains the pipeline with p16 false; the branch falls
// through on the final stage.
func (rf *RegFile) ExecCtop() BranchOutcome {
	var out BranchOutcome
	switch {
	case rf.LC > 0:
		rf.LC--
		out.Taken = true
		rf.Rotate()
		rf.SetPR(RotPRBase, true)
	case rf.EC > 1:
		rf.EC--
		out.Taken = true
		rf.Rotate()
		rf.SetPR(RotPRBase, false)
	default:
		if rf.EC > 0 {
			rf.EC--
		}
		rf.Rotate()
		rf.SetPR(RotPRBase, false)
	}
	out.Rotated = true
	return out
}

// ExecWtop applies (simplified) br.wtop semantics for pipelined while
// loops: the branch is taken while the qualifying predicate holds another
// iteration, then EC drains the epilog stages.
func (rf *RegFile) ExecWtop(qp bool) BranchOutcome {
	var out BranchOutcome
	switch {
	case qp:
		out.Taken = true
		rf.Rotate()
		rf.SetPR(RotPRBase, true)
	case rf.EC > 1:
		rf.EC--
		out.Taken = true
		rf.Rotate()
		rf.SetPR(RotPRBase, false)
	default:
		if rf.EC > 0 {
			rf.EC--
		}
		rf.Rotate()
		rf.SetPR(RotPRBase, false)
	}
	out.Rotated = true
	return out
}

// ExecCloop applies br.cloop semantics: taken while LC is non-zero, with no
// register rotation.
func (rf *RegFile) ExecCloop() BranchOutcome {
	if rf.LC > 0 {
		rf.LC--
		return BranchOutcome{Taken: true}
	}
	return BranchOutcome{}
}

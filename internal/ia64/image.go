package ia64

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// BundleSlots is the number of instruction slots per bundle. The compiler
// pads functions so bundle boundaries fall every three slots; the machine's
// front end issues at most two bundles per cycle, as on Itanium 2.
const BundleSlots = 3

// Func describes one function (or outlined OpenMP region, or runtime-
// generated trace) in an image.
type Func struct {
	Name  string
	Entry int // first slot index
	End   int // one past the last slot index
}

// Image is a program binary: a flat array of encoded instruction words plus
// a function table. The PC of an executing thread is a slot index into the
// image. Images are mutated at runtime by the COBRA patcher; a generation
// counter lets per-CPU decode caches detect staleness cheaply.
//
// Patching is guarded by a mutex so a concurrent optimization thread can
// rewrite code while simulated CPUs execute, mirroring the paper's
// user-mode optimizer sharing the address space of the running program.
// The generation counter is atomic so the executing CPUs' per-bundle
// staleness check is a single load with no lock traffic, and a bounded
// journal of patched slots lets a stale decode cache resynchronize by
// re-decoding only the words that actually changed instead of the whole
// image (see SyncDecode).
type Image struct {
	mu    sync.RWMutex
	words []Word // 2*i and 2*i+1 hold slot i
	dec   []Instr
	funcs []Func
	gen   atomic.Uint64

	// byEntry indexes funcs sorted by ascending Entry, and maxEnd[i] is
	// the largest End among funcs[byEntry[0..i]]. Together they make
	// FuncAt a binary search plus a bounded leftward walk: with disjoint
	// functions (the normal case) the walk visits at most one candidate,
	// and the prefix-max keeps lookups correct even if overlapping ranges
	// are ever registered.
	byEntry []int
	maxEnd  []int

	// plog journals Patch calls since generation plogBase: an entry per
	// patch, recording the generation that patch produced and the slot it
	// rewrote. Appends need no entries — they only extend the image, and
	// SyncDecode copies the tail positionally.
	plog     []patchRec
	plogBase uint64 // complete history is available for gens > plogBase
	// plogCap overrides the default plogMax journal bound when > 0
	// (SetPatchJournalBound).
	plogCap int
}

// patchRec is one patch journal entry.
type patchRec struct {
	gen uint64
	pc  int
}

// plogMax is the default patch-journal bound; once exceeded, the oldest
// half is dropped and decode caches older than the drop point fall back
// to a full re-fetch. The hint-rewrite engines patch a handful of slots
// per optimizer pass, so for them the journal never wraps between two
// executions of a CPU; heavier patch planes (block layout) can raise the
// bound per image with SetPatchJournalBound.
const plogMax = 512

// NewImage returns an empty image.
func NewImage() *Image {
	return &Image{}
}

// Clone returns a deep copy of the image: an independent binary whose
// encoded words, decode cache and function table share nothing with the
// original. A pristine compiled image can thus be cloned once per run and
// executed/patched concurrently without the runs observing each other —
// the basis of the workload build cache.
func (im *Image) Clone() *Image {
	im.mu.RLock()
	defer im.mu.RUnlock()
	c := &Image{
		words:   append([]Word(nil), im.words...),
		dec:     append([]Instr(nil), im.dec...),
		funcs:   append([]Func(nil), im.funcs...),
		byEntry: append([]int(nil), im.byEntry...),
		maxEnd:  append([]int(nil), im.maxEnd...),
		plogCap: im.plogCap,
	}
	c.gen.Store(im.gen.Load())
	// The clone starts with an empty journal: any decode cache attaching to
	// it syncs from generation 0 with a full fetch anyway.
	c.plogBase = c.gen.Load()
	return c
}

// Len returns the number of instruction slots in the image.
func (im *Image) Len() int {
	im.mu.RLock()
	defer im.mu.RUnlock()
	return len(im.dec)
}

// Generation returns the mutation generation counter. It increments on
// every Patch and Append, so a cached decode tagged with the current
// generation is exactly up to date. The load is lock-free: it sits on the
// simulator's per-bundle hot path.
func (im *Image) Generation() uint64 {
	return im.gen.Load()
}

// Append adds encoded instructions at the end of the image and returns the
// slot index of the first one.
func (im *Image) Append(instrs ...Instr) int {
	im.mu.Lock()
	defer im.mu.Unlock()
	return im.appendLocked(instrs)
}

func (im *Image) appendLocked(instrs []Instr) int {
	start := len(im.dec)
	for _, in := range instrs {
		w0, w1 := Encode(in)
		im.words = append(im.words, w0, w1)
		im.dec = append(im.dec, in)
	}
	im.gen.Add(1) // decode caches must observe the new slots
	return start
}

// AddFunc registers a function covering [entry, end).
func (im *Image) AddFunc(name string, entry, end int) {
	im.mu.Lock()
	defer im.mu.Unlock()
	im.funcs = append(im.funcs, Func{Name: name, Entry: entry, End: end})
	im.indexFunc(len(im.funcs) - 1)
}

// indexFunc inserts funcs[fi] into the sorted-by-entry FuncAt index and
// repairs the prefix-max-End array from the insertion point on. Caller
// holds im.mu.
func (im *Image) indexFunc(fi int) {
	entry := im.funcs[fi].Entry
	pos := sort.Search(len(im.byEntry), func(i int) bool {
		return im.funcs[im.byEntry[i]].Entry > entry
	})
	im.byEntry = append(im.byEntry, 0)
	copy(im.byEntry[pos+1:], im.byEntry[pos:])
	im.byEntry[pos] = fi
	im.maxEnd = append(im.maxEnd, 0)
	for i := pos; i < len(im.byEntry); i++ {
		e := im.funcs[im.byEntry[i]].End
		if i > 0 && im.maxEnd[i-1] > e {
			e = im.maxEnd[i-1]
		}
		im.maxEnd[i] = e
	}
}

// rebuildFuncIndex recomputes the FuncAt index from scratch. Caller
// holds im.mu.
func (im *Image) rebuildFuncIndex() {
	im.byEntry = im.byEntry[:0]
	im.maxEnd = im.maxEnd[:0]
	for i := range im.funcs {
		im.byEntry = append(im.byEntry, i)
	}
	sort.SliceStable(im.byEntry, func(a, b int) bool {
		return im.funcs[im.byEntry[a]].Entry < im.funcs[im.byEntry[b]].Entry
	})
	for i, fi := range im.byEntry {
		e := im.funcs[fi].End
		if i > 0 && im.maxEnd[i-1] > e {
			e = im.maxEnd[i-1]
		}
		im.maxEnd = append(im.maxEnd, e)
	}
}

// Funcs returns a copy of the function table in entry order.
func (im *Image) Funcs() []Func {
	im.mu.RLock()
	defer im.mu.RUnlock()
	fs := make([]Func, len(im.funcs))
	copy(fs, im.funcs)
	sort.Slice(fs, func(i, j int) bool { return fs[i].Entry < fs[j].Entry })
	return fs
}

// LookupFunc returns the function named name.
func (im *Image) LookupFunc(name string) (Func, bool) {
	im.mu.RLock()
	defer im.mu.RUnlock()
	for _, f := range im.funcs {
		if f.Name == name {
			return f, true
		}
	}
	return Func{}, false
}

// FuncAt returns the function containing slot pc. The lookup binary-
// searches the sorted-by-entry index (layout-style patching registers a
// code-cache func per deployed copy, so the table grows far beyond what
// the original linear scan was sized for), then walks left only while
// the prefix-max End still covers pc — one probe when functions are
// disjoint.
func (im *Image) FuncAt(pc int) (Func, bool) {
	im.mu.RLock()
	defer im.mu.RUnlock()
	i := sort.Search(len(im.byEntry), func(i int) bool {
		return im.funcs[im.byEntry[i]].Entry > pc
	}) - 1
	for ; i >= 0 && im.maxEnd[i] > pc; i-- {
		if f := im.funcs[im.byEntry[i]]; pc >= f.Entry && pc < f.End {
			return f, true
		}
	}
	return Func{}, false
}

// Fetch returns the decoded instruction at slot pc.
func (im *Image) Fetch(pc int) Instr {
	im.mu.RLock()
	defer im.mu.RUnlock()
	return im.dec[pc]
}

// FetchRange decodes slots [lo, hi) into dst, which is grown as needed, and
// returns it. It is the bulk fetch used to fill decode caches.
func (im *Image) FetchRange(lo, hi int, dst []Instr) []Instr {
	im.mu.RLock()
	defer im.mu.RUnlock()
	if hi > len(im.dec) {
		hi = len(im.dec)
	}
	dst = append(dst[:0], im.dec[lo:hi]...)
	return dst
}

// Words returns the raw encoded word pair of slot pc — the bytes a binary
// patcher reads before rewriting.
func (im *Image) Words(pc int) (Word, Word) {
	im.mu.RLock()
	defer im.mu.RUnlock()
	return im.words[2*pc], im.words[2*pc+1]
}

// Patch rewrites slot pc with the encoding of in. The write is validated by
// decoding the new words, the generation counter is bumped, and the previous
// instruction is returned so the caller can undo the patch.
func (im *Image) Patch(pc int, in Instr) (Instr, error) {
	w0, w1 := Encode(in)
	chk, err := Decode(w0, w1)
	if err != nil {
		return Instr{}, fmt.Errorf("ia64: refusing unencodable patch at slot %d: %w", pc, err)
	}
	im.mu.Lock()
	defer im.mu.Unlock()
	if pc < 0 || pc >= len(im.dec) {
		return Instr{}, fmt.Errorf("ia64: patch slot %d out of range [0,%d)", pc, len(im.dec))
	}
	old := im.dec[pc]
	im.words[2*pc], im.words[2*pc+1] = w0, w1
	im.dec[pc] = chk
	gen := im.gen.Add(1)
	im.plog = append(im.plog, patchRec{gen: gen, pc: pc})
	bound := plogMax
	if im.plogCap > 0 {
		bound = im.plogCap
	}
	if len(im.plog) > bound {
		drop := len(im.plog) / 2
		im.plogBase = im.plog[drop-1].gen
		im.plog = append(im.plog[:0], im.plog[drop:]...)
	}
	return old, nil
}

// SetPatchJournalBound overrides the patch-journal length bound (default
// plogMax). Strategies that patch many slots per optimizer pass — block-
// layout deployment patches an order of magnitude more than the hint
// rewrites plogMax was sized for — raise it so concurrently executing
// CPUs keep resynchronizing incrementally instead of silently falling
// back to full image refetches. Values below 2 are clamped to 2 (the
// overflow policy drops half the journal, which needs at least one
// surviving record).
func (im *Image) SetPatchJournalBound(n int) {
	im.mu.Lock()
	defer im.mu.Unlock()
	if n < 2 {
		n = 2
	}
	im.plogCap = n
}

// RemoveTail truncates the image to n slots, dropping every function
// whose entry lies at or beyond the cut. It exists so the patcher can
// unwind a partially deployed trace — emitted copy plus function-table
// entry — when the subsequent entry-slot redirect fails; it is not a
// general editing primitive, and callers must own the entire tail they
// cut. Removal resets the journal base to the post-removal generation:
// a later Append may reuse the freed slots with different content, and
// since appends are not journaled, a cache synced before the removal
// could otherwise resynchronize "incrementally" while still holding the
// removed tail. Forcing those caches onto the full-refetch path is the
// only correct option.
func (im *Image) RemoveTail(n int) {
	im.mu.Lock()
	defer im.mu.Unlock()
	if n < 0 || n >= len(im.dec) {
		return
	}
	im.words = im.words[:2*n]
	im.dec = im.dec[:n]
	kept := im.funcs[:0]
	for _, f := range im.funcs {
		if f.Entry < n {
			kept = append(kept, f)
		}
	}
	im.funcs = kept
	im.rebuildFuncIndex()
	im.plog = im.plog[:0]
	im.plogBase = im.gen.Add(1)
}

// SyncDecode brings a decode cache dst, last synchronized at generation
// have, up to date with the image, and returns the new cache and
// generation. When the patch journal still covers every generation after
// have, only the patched slots are re-decoded and appended slots copied;
// otherwise the whole image is fetched. Callers should test Generation()
// != have first — that check is lock-free.
func (im *Image) SyncDecode(dst []Instr, have uint64) ([]Instr, uint64) {
	dst, gen, _ := im.SyncDecodeStats(dst, have)
	return dst, gen
}

// SyncDecodeStats is SyncDecode with re-decode accounting: the third
// result is the number of patched slots replayed from the journal, or -1
// when the journal no longer covered the gap and the whole image was
// refetched. A resident-variant switch (one entry-slot repoint) must
// report exactly 1 — the cost model multi-version patching is built on.
func (im *Image) SyncDecodeStats(dst []Instr, have uint64) ([]Instr, uint64, int) {
	im.mu.RLock()
	defer im.mu.RUnlock()
	gen := im.gen.Load()
	if gen == have && len(dst) == len(im.dec) {
		return dst, gen, 0
	}
	if have >= im.plogBase && len(dst) <= len(im.dec) {
		redecoded := 0
		for _, p := range im.plog {
			if p.gen > have && p.pc < len(dst) {
				dst[p.pc] = im.dec[p.pc]
				redecoded++
			}
		}
		dst = append(dst, im.dec[len(dst):]...)
		return dst, gen, redecoded
	}
	dst = append(dst[:0], im.dec...)
	return dst, gen, -1
}

// PatchWords rewrites slot pc with raw words, validating them first. It is
// the lowest-level patch primitive (what a real binary patcher does).
func (im *Image) PatchWords(pc int, w0, w1 Word) (Instr, error) {
	in, err := Decode(w0, w1)
	if err != nil {
		return Instr{}, fmt.Errorf("ia64: invalid patch words at slot %d: %w", pc, err)
	}
	return im.Patch(pc, in)
}

// OpCount counts instructions in [lo, hi) matching keep. It backs the
// paper's Table 1 static statistics.
func (im *Image) OpCount(lo, hi int, keep func(Instr) bool) int {
	im.mu.RLock()
	defer im.mu.RUnlock()
	if hi > len(im.dec) {
		hi = len(im.dec)
	}
	n := 0
	for _, in := range im.dec[lo:hi] {
		if keep(in) {
			n++
		}
	}
	return n
}

// StaticCounts holds the per-binary static instruction statistics reported
// in Table 1 of the paper.
type StaticCounts struct {
	Lfetch  int // data prefetches
	BrCtop  int // software-pipelined counted loops
	BrCloop int // counted loops
	BrWtop  int // software-pipelined while loops
}

// CountStatic computes Table 1 statistics over the whole image.
func (im *Image) CountStatic() StaticCounts {
	im.mu.RLock()
	defer im.mu.RUnlock()
	var c StaticCounts
	for _, in := range im.dec {
		switch {
		case in.Op == OpLfetch:
			c.Lfetch++
		case in.Op == OpBr && in.Br == BrCtop:
			c.BrCtop++
		case in.Op == OpBr && in.Br == BrCloop:
			c.BrCloop++
		case in.Op == OpBr && in.Br == BrWtop:
			c.BrWtop++
		}
	}
	return c
}

package ia64

import (
	"fmt"
	"sort"
	"sync"
)

// BundleSlots is the number of instruction slots per bundle. The compiler
// pads functions so bundle boundaries fall every three slots; the machine's
// front end issues at most two bundles per cycle, as on Itanium 2.
const BundleSlots = 3

// Func describes one function (or outlined OpenMP region, or runtime-
// generated trace) in an image.
type Func struct {
	Name  string
	Entry int // first slot index
	End   int // one past the last slot index
}

// Image is a program binary: a flat array of encoded instruction words plus
// a function table. The PC of an executing thread is a slot index into the
// image. Images are mutated at runtime by the COBRA patcher; a generation
// counter lets per-CPU decode caches detect staleness cheaply.
//
// Patching is guarded by a mutex so a concurrent optimization thread can
// rewrite code while simulated CPUs execute, mirroring the paper's
// user-mode optimizer sharing the address space of the running program.
type Image struct {
	mu    sync.RWMutex
	words []Word // 2*i and 2*i+1 hold slot i
	dec   []Instr
	funcs []Func
	gen   uint64
}

// NewImage returns an empty image.
func NewImage() *Image {
	return &Image{}
}

// Clone returns a deep copy of the image: an independent binary whose
// encoded words, decode cache and function table share nothing with the
// original. A pristine compiled image can thus be cloned once per run and
// executed/patched concurrently without the runs observing each other —
// the basis of the workload build cache.
func (im *Image) Clone() *Image {
	im.mu.RLock()
	defer im.mu.RUnlock()
	return &Image{
		words: append([]Word(nil), im.words...),
		dec:   append([]Instr(nil), im.dec...),
		funcs: append([]Func(nil), im.funcs...),
		gen:   im.gen,
	}
}

// Len returns the number of instruction slots in the image.
func (im *Image) Len() int {
	im.mu.RLock()
	defer im.mu.RUnlock()
	return len(im.dec)
}

// Generation returns the patch generation counter. It increments on every
// Patch, so a cached decode tagged with an older generation must re-fetch.
func (im *Image) Generation() uint64 {
	im.mu.RLock()
	defer im.mu.RUnlock()
	return im.gen
}

// Append adds encoded instructions at the end of the image and returns the
// slot index of the first one.
func (im *Image) Append(instrs ...Instr) int {
	im.mu.Lock()
	defer im.mu.Unlock()
	return im.appendLocked(instrs)
}

func (im *Image) appendLocked(instrs []Instr) int {
	start := len(im.dec)
	for _, in := range instrs {
		w0, w1 := Encode(in)
		im.words = append(im.words, w0, w1)
		im.dec = append(im.dec, in)
	}
	im.gen++ // decode caches must observe the new slots
	return start
}

// AddFunc registers a function covering [entry, end).
func (im *Image) AddFunc(name string, entry, end int) {
	im.mu.Lock()
	defer im.mu.Unlock()
	im.funcs = append(im.funcs, Func{Name: name, Entry: entry, End: end})
}

// Funcs returns a copy of the function table in entry order.
func (im *Image) Funcs() []Func {
	im.mu.RLock()
	defer im.mu.RUnlock()
	fs := make([]Func, len(im.funcs))
	copy(fs, im.funcs)
	sort.Slice(fs, func(i, j int) bool { return fs[i].Entry < fs[j].Entry })
	return fs
}

// LookupFunc returns the function named name.
func (im *Image) LookupFunc(name string) (Func, bool) {
	im.mu.RLock()
	defer im.mu.RUnlock()
	for _, f := range im.funcs {
		if f.Name == name {
			return f, true
		}
	}
	return Func{}, false
}

// FuncAt returns the function containing slot pc.
func (im *Image) FuncAt(pc int) (Func, bool) {
	im.mu.RLock()
	defer im.mu.RUnlock()
	for _, f := range im.funcs {
		if pc >= f.Entry && pc < f.End {
			return f, true
		}
	}
	return Func{}, false
}

// Fetch returns the decoded instruction at slot pc.
func (im *Image) Fetch(pc int) Instr {
	im.mu.RLock()
	defer im.mu.RUnlock()
	return im.dec[pc]
}

// FetchRange decodes slots [lo, hi) into dst, which is grown as needed, and
// returns it. It is the bulk fetch used to fill decode caches.
func (im *Image) FetchRange(lo, hi int, dst []Instr) []Instr {
	im.mu.RLock()
	defer im.mu.RUnlock()
	if hi > len(im.dec) {
		hi = len(im.dec)
	}
	dst = append(dst[:0], im.dec[lo:hi]...)
	return dst
}

// Words returns the raw encoded word pair of slot pc — the bytes a binary
// patcher reads before rewriting.
func (im *Image) Words(pc int) (Word, Word) {
	im.mu.RLock()
	defer im.mu.RUnlock()
	return im.words[2*pc], im.words[2*pc+1]
}

// Patch rewrites slot pc with the encoding of in. The write is validated by
// decoding the new words, the generation counter is bumped, and the previous
// instruction is returned so the caller can undo the patch.
func (im *Image) Patch(pc int, in Instr) (Instr, error) {
	w0, w1 := Encode(in)
	chk, err := Decode(w0, w1)
	if err != nil {
		return Instr{}, fmt.Errorf("ia64: refusing unencodable patch at slot %d: %w", pc, err)
	}
	im.mu.Lock()
	defer im.mu.Unlock()
	if pc < 0 || pc >= len(im.dec) {
		return Instr{}, fmt.Errorf("ia64: patch slot %d out of range [0,%d)", pc, len(im.dec))
	}
	old := im.dec[pc]
	im.words[2*pc], im.words[2*pc+1] = w0, w1
	im.dec[pc] = chk
	im.gen++
	return old, nil
}

// PatchWords rewrites slot pc with raw words, validating them first. It is
// the lowest-level patch primitive (what a real binary patcher does).
func (im *Image) PatchWords(pc int, w0, w1 Word) (Instr, error) {
	in, err := Decode(w0, w1)
	if err != nil {
		return Instr{}, fmt.Errorf("ia64: invalid patch words at slot %d: %w", pc, err)
	}
	return im.Patch(pc, in)
}

// OpCount counts instructions in [lo, hi) matching keep. It backs the
// paper's Table 1 static statistics.
func (im *Image) OpCount(lo, hi int, keep func(Instr) bool) int {
	im.mu.RLock()
	defer im.mu.RUnlock()
	if hi > len(im.dec) {
		hi = len(im.dec)
	}
	n := 0
	for _, in := range im.dec[lo:hi] {
		if keep(in) {
			n++
		}
	}
	return n
}

// StaticCounts holds the per-binary static instruction statistics reported
// in Table 1 of the paper.
type StaticCounts struct {
	Lfetch  int // data prefetches
	BrCtop  int // software-pipelined counted loops
	BrCloop int // counted loops
	BrWtop  int // software-pipelined while loops
}

// CountStatic computes Table 1 statistics over the whole image.
func (im *Image) CountStatic() StaticCounts {
	im.mu.RLock()
	defer im.mu.RUnlock()
	var c StaticCounts
	for _, in := range im.dec {
		switch {
		case in.Op == OpLfetch:
			c.Lfetch++
		case in.Op == OpBr && in.Br == BrCtop:
			c.BrCtop++
		case in.Op == OpBr && in.Br == BrCloop:
			c.BrCloop++
		case in.Op == OpBr && in.Br == BrWtop:
			c.BrWtop++
		}
	}
	return c
}

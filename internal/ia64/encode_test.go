package ia64

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// randInstr generates a valid instruction with all fields in range.
func randInstr(r *rand.Rand) Instr {
	in := Instr{
		Op:   Op(r.Intn(int(opCount))),
		QP:   uint8(r.Intn(NumPR)),
		R1:   uint8(r.Intn(NumGR)),
		R2:   uint8(r.Intn(NumGR)),
		R3:   uint8(r.Intn(NumGR)),
		P1:   uint8(r.Intn(NumPR)),
		P2:   uint8(r.Intn(NumPR)),
		Hint: Hint(r.Intn(int(HintBias) + 1)),
		Rel:  CmpRel(r.Intn(int(CmpGE) + 1)),
		Imm:  r.Int63() - r.Int63(),
	}
	if in.Op == OpBr {
		in.Br = BrKind(r.Intn(int(BrRet) + 1))
	}
	return in
}

// Generate implements quick.Generator so testing/quick produces only
// encodable instructions.
func (Instr) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(randInstr(r))
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	roundTrip := func(in Instr) bool {
		w0, w1 := Encode(in)
		got, err := Decode(w0, w1)
		if err != nil {
			t.Logf("decode error: %v", err)
			return false
		}
		return got == in
	}
	if err := quick.Check(roundTrip, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeDeterministic(t *testing.T) {
	in := Instr{Op: OpLfetch, R2: 43, Hint: HintNT1}
	a0, a1 := Encode(in)
	b0, b1 := Encode(in)
	if a0 != b0 || a1 != b1 {
		t.Fatalf("encoding not deterministic: (%#x,%#x) vs (%#x,%#x)", a0, a1, b0, b1)
	}
}

func TestDecodeRejectsInvalidOpcode(t *testing.T) {
	if _, err := Decode(Word(0xff), 0); err == nil {
		t.Fatal("Decode accepted invalid opcode 0xff")
	}
}

func TestDecodeRejectsInvalidBranchKind(t *testing.T) {
	w0, w1 := Encode(Instr{Op: OpBr, Br: BrRet})
	w0 |= Word(0xf) << shiftBr // corrupt branch kind beyond BrRet
	if _, err := Decode(w0, w1); err == nil {
		t.Fatal("Decode accepted invalid branch kind")
	}
}

func TestHintSurvivesRewrite(t *testing.T) {
	// The optimizer's core operation: take an lfetch.nt1, flip the hint to
	// .excl, re-encode, decode. The result must differ only in the hint.
	orig := Instr{Op: OpLfetch, R2: 43, Hint: HintNT1, QP: 16}
	patched := orig
	patched.Hint = HintExcl
	w0, w1 := Encode(patched)
	got := MustDecode(w0, w1)
	if got.Hint != HintExcl {
		t.Fatalf("hint = %v, want .excl", got.Hint)
	}
	got.Hint = HintNT1
	if got != orig {
		t.Fatalf("rewrite changed more than the hint: %+v vs %+v", got, orig)
	}
}

func TestPredicateAndRegisterFieldBounds(t *testing.T) {
	// P fields are 6 bits; values 0..63 must round-trip exactly.
	for p := 0; p < NumPR; p++ {
		in := Instr{Op: OpCmp, P1: uint8(p), P2: uint8(63 - p)}
		w0, w1 := Encode(in)
		got := MustDecode(w0, w1)
		if got.P1 != in.P1 || got.P2 != in.P2 {
			t.Fatalf("p%d: got P1=%d P2=%d", p, got.P1, got.P2)
		}
	}
	for r := 0; r < NumGR; r++ {
		in := Instr{Op: OpAdd, R1: uint8(r), R2: uint8(127 - r), R3: uint8(r / 2)}
		w0, w1 := Encode(in)
		got := MustDecode(w0, w1)
		if got != in {
			t.Fatalf("r%d: round-trip mismatch %+v", r, got)
		}
	}
}

func TestImmediateExtremes(t *testing.T) {
	for _, imm := range []int64{0, 1, -1, 1<<62 - 1, -(1 << 62), 9e15} {
		in := Instr{Op: OpMovI, R1: 5, Imm: imm}
		w0, w1 := Encode(in)
		if got := MustDecode(w0, w1); got.Imm != imm {
			t.Fatalf("imm %d round-tripped to %d", imm, got.Imm)
		}
	}
}

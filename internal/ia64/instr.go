// Package ia64 models an IA-64 (Itanium 2) like instruction set in enough
// detail to support runtime binary optimization: instructions carry the
// completers and hints COBRA rewrites (lfetch .nt1/.excl, ld .bias), loops
// use the three Itanium branch forms (br.ctop, br.cloop, br.wtop), and the
// register file implements register rotation for software-pipelined loops.
//
// Code is held in an Image of fixed-width encoded words. A runtime optimizer
// patches a program by rewriting words in the image, exactly the operation
// the COBRA paper performs on Itanium binaries.
package ia64

import "fmt"

// Op is an instruction opcode.
type Op uint8

// Opcodes. The set is a compact subset of IA-64 sufficient for the code the
// loop-nest compiler generates and the COBRA optimizer rewrites.
const (
	OpNop Op = iota // no operation (also the target of "noprefetch" rewrites)

	// Integer ALU.
	OpAdd  // R1 = R2 + R3
	OpSub  // R1 = R2 - R3
	OpAddI // R1 = R2 + Imm
	OpAnd  // R1 = R2 & R3
	OpOr   // R1 = R2 | R3
	OpXor  // R1 = R2 ^ R3
	OpShlI // R1 = R2 << Imm
	OpShrI // R1 = R2 >> Imm (arithmetic)
	OpMovI // R1 = Imm
	OpMul  // R1 = R2 * R3 (xma.l equivalent)

	// Compare: writes predicate pair (P1 = cond, P2 = !cond).
	OpCmp  // cmp.crel R2, R3
	OpCmpI // cmp.crel R2, Imm

	// Memory.
	OpLd     // integer load: R1 = [R2]; Hint may carry .bias
	OpSt     // integer store: [R2] = R3
	OpLdf    // FP load: F1 = [R2] (bypasses L1D, as on Itanium 2)
	OpStf    // FP store: [R2] = F3
	OpLfetch // data prefetch: [R2]; Hint carries .nt1/.excl; non-faulting

	// Floating point.
	OpFma   // F1 = F2*F3 + F4 (4-operand; F4 encoded in R3 field)
	OpFAdd  // F1 = F2 + F3
	OpFSub  // F1 = F2 - F3
	OpFMul  // F1 = F2 * F3
	OpFDiv  // F1 = F2 / F3
	OpFMovI // F1 = float64frombits(Imm) (fp constant materialization)
	OpFMov  // F1 = F2
	OpFNeg  // F1 = -F2
	OpFCmp  // predicate pair = F2 crel F3
	OpFCvt  // F1 = float64(R2) (setf + fcvt folded)
	OpFInt  // R1 = int64(F2) (fcvt.fx + getf folded)

	// Branches. Imm holds the absolute target slot index.
	OpBr // qualified branch; BrKind selects cond/ctop/cloop/wtop/always/ret

	// Application registers for loop control.
	OpMovToLC   // ar.lc = R2
	OpMovToLCI  // ar.lc = Imm
	OpMovToEC   // ar.ec = R2
	OpMovToECI  // ar.ec = Imm
	OpMovFromLC // R1 = ar.lc
	OpClrrrb    // clear register rename bases

	// Simulation support.
	OpHalt // terminate the executing thread context (outlined-region return)

	opCount // sentinel
)

// BrKind selects the branch form carried by OpBr.
type BrKind uint8

const (
	BrCond   BrKind = iota // branch if QP predicate is true
	BrAlways               // unconditional branch (br.sptk)
	BrCloop                // counted loop: if LC != 0 { LC--; taken }
	BrCtop                 // modulo-scheduled counted loop (rotates registers)
	BrWtop                 // modulo-scheduled while loop (rotates registers)
	BrRet                  // return/halt marker for outlined regions
)

// Hint carries the memory-hint completer of a load or lfetch.
type Hint uint8

const (
	HintNone Hint = iota
	HintNT1       // lfetch.nt1: temporal locality at L2 (icc's default)
	HintNT2       // lfetch.nt2
	HintNTA       // lfetch.nta
	HintExcl      // lfetch.excl: acquire the line in Exclusive state
	HintBias      // ld.bias: integer load biased to Exclusive state
)

// CmpRel is the compare relation of OpCmp/OpCmpI/OpFCmp.
type CmpRel uint8

const (
	CmpEQ CmpRel = iota
	CmpNE
	CmpLT
	CmpLE
	CmpGT
	CmpGE
)

// Instr is one decoded instruction. Slot fields are interpreted per opcode;
// unused fields are zero. R fields address general registers for integer
// ops and floating registers for FP ops. P1/P2 are predicate targets of
// compares; QP is the qualifying predicate (0 = always true, as p0 on
// IA-64).
type Instr struct {
	Op   Op
	QP   uint8 // qualifying predicate register
	R1   uint8 // destination register
	R2   uint8 // source 1 / address register
	R3   uint8 // source 2 (or F4 addend for fma)
	P1   uint8 // predicate destination (cmp)
	P2   uint8 // complementary predicate destination (cmp)
	Hint Hint
	Br   BrKind
	Rel  CmpRel
	Imm  int64 // immediate / branch target slot index
}

// IsMemory reports whether the instruction accesses data memory.
func (in Instr) IsMemory() bool {
	switch in.Op {
	case OpLd, OpSt, OpLdf, OpStf, OpLfetch:
		return true
	}
	return false
}

// IsLoad reports whether the instruction is a demand load.
func (in Instr) IsLoad() bool { return in.Op == OpLd || in.Op == OpLdf }

// IsStore reports whether the instruction is a store.
func (in Instr) IsStore() bool { return in.Op == OpSt || in.Op == OpStf }

// IsBranch reports whether the instruction is a branch.
func (in Instr) IsBranch() bool { return in.Op == OpBr }

// IsLoopBranch reports whether the instruction closes one of the three
// Itanium loop forms the paper's Table 1 counts.
func (in Instr) IsLoopBranch() bool {
	return in.Op == OpBr && (in.Br == BrCloop || in.Br == BrCtop || in.Br == BrWtop)
}

// Rotates reports whether executing the branch rotates the register file.
func (in Instr) Rotates() bool {
	return in.Op == OpBr && (in.Br == BrCtop || in.Br == BrWtop)
}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

var opNames = [...]string{
	OpNop:       "nop",
	OpAdd:       "add",
	OpSub:       "sub",
	OpAddI:      "addi",
	OpAnd:       "and",
	OpOr:        "or",
	OpXor:       "xor",
	OpShlI:      "shli",
	OpShrI:      "shri",
	OpMovI:      "movi",
	OpMul:       "xma.l",
	OpCmp:       "cmp",
	OpCmpI:      "cmpi",
	OpLd:        "ld8",
	OpSt:        "st8",
	OpLdf:       "ldfd",
	OpStf:       "stfd",
	OpLfetch:    "lfetch",
	OpFma:       "fma.d",
	OpFAdd:      "fadd",
	OpFSub:      "fsub",
	OpFMul:      "fmul",
	OpFDiv:      "fdiv",
	OpFMovI:     "fmovi",
	OpFMov:      "fmov",
	OpFNeg:      "fneg",
	OpFCmp:      "fcmp",
	OpFCvt:      "fcvt",
	OpFInt:      "fint",
	OpBr:        "br",
	OpMovToLC:   "mov.lc",
	OpMovToLCI:  "movi.lc",
	OpMovToEC:   "mov.ec",
	OpMovToECI:  "movi.ec",
	OpMovFromLC: "mov.from.lc",
	OpClrrrb:    "clrrrb",
	OpHalt:      "halt",
}

func (b BrKind) String() string {
	switch b {
	case BrCond:
		return "cond"
	case BrAlways:
		return "sptk"
	case BrCloop:
		return "cloop"
	case BrCtop:
		return "ctop"
	case BrWtop:
		return "wtop"
	case BrRet:
		return "ret"
	}
	return fmt.Sprintf("br(%d)", uint8(b))
}

func (h Hint) String() string {
	switch h {
	case HintNone:
		return ""
	case HintNT1:
		return ".nt1"
	case HintNT2:
		return ".nt2"
	case HintNTA:
		return ".nta"
	case HintExcl:
		return ".excl"
	case HintBias:
		return ".bias"
	}
	return fmt.Sprintf(".h%d", uint8(h))
}

func (c CmpRel) String() string {
	switch c {
	case CmpEQ:
		return "eq"
	case CmpNE:
		return "ne"
	case CmpLT:
		return "lt"
	case CmpLE:
		return "le"
	case CmpGT:
		return "gt"
	case CmpGE:
		return "ge"
	}
	return fmt.Sprintf("rel(%d)", uint8(c))
}

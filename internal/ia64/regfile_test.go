package ia64

import (
	"testing"
	"testing/quick"
)

func TestGRZeroRegister(t *testing.T) {
	var rf RegFile
	rf.SetGR(0, 42)
	if got := rf.GR(0); got != 0 {
		t.Fatalf("r0 = %d, want 0", got)
	}
}

func TestFRConstantRegisters(t *testing.T) {
	var rf RegFile
	rf.SetFR(0, 3.14)
	rf.SetFR(1, 3.14)
	if rf.FR(0) != 0 {
		t.Fatalf("f0 = %v, want 0", rf.FR(0))
	}
	if rf.FR(1) != 1 {
		t.Fatalf("f1 = %v, want 1", rf.FR(1))
	}
}

func TestPRZeroPredicate(t *testing.T) {
	var rf RegFile
	rf.SetPR(0, false)
	if !rf.PR(0) {
		t.Fatal("p0 must always read true")
	}
}

func TestStaticRegistersDoNotRotate(t *testing.T) {
	var rf RegFile
	rf.SetGR(5, 55)
	rf.SetFR(6, 6.5)
	rf.SetPR(7, true)
	for i := 0; i < 10; i++ {
		rf.Rotate()
	}
	if rf.GR(5) != 55 || rf.FR(6) != 6.5 || !rf.PR(7) {
		t.Fatal("static (non-rotating) registers changed under rotation")
	}
}

func TestRotationRenamesByOne(t *testing.T) {
	// After one rotation, the value written to rN is visible at rN+1:
	// rotation renames registers so the previous iteration's r32 becomes
	// this iteration's r33 — the software pipelining contract.
	var rf RegFile
	rf.SetGR(32, 100)
	rf.SetFR(40, 2.5)
	rf.SetPR(20, true)
	rf.Rotate()
	if got := rf.GR(33); got != 100 {
		t.Fatalf("after rotation r33 = %d, want 100", got)
	}
	if got := rf.FR(41); got != 2.5 {
		t.Fatalf("after rotation f41 = %v, want 2.5", got)
	}
	if !rf.PR(21) {
		t.Fatal("after rotation p21 should hold the value written to p20")
	}
}

func TestRotationFullCycle(t *testing.T) {
	var rf RegFile
	rf.SetGR(32, 7)
	for i := 0; i < rotGRSize; i++ {
		rf.Rotate()
	}
	if got := rf.GR(32); got != 7 {
		t.Fatalf("after %d rotations r32 = %d, want 7 (full cycle)", rotGRSize, got)
	}
}

func TestClrrrbRestoresNames(t *testing.T) {
	var rf RegFile
	rf.SetGR(32, 1)
	rf.Rotate()
	rf.ClearRRB()
	if got := rf.GR(32); got != 1 {
		t.Fatalf("after clrrrb r32 = %d, want 1", got)
	}
}

func TestCtopCountedLoop(t *testing.T) {
	// LC=4, EC=3 models a 5-iteration pipelined loop with 3 stages: the
	// branch is taken LC + EC - 1 = 6 times then falls through.
	var rf RegFile
	rf.LC, rf.EC = 4, 3
	taken := 0
	for {
		out := rf.ExecCtop()
		if !out.Rotated {
			t.Fatal("ctop must rotate")
		}
		if !out.Taken {
			break
		}
		taken++
		if taken > 100 {
			t.Fatal("ctop never fell through")
		}
	}
	if taken != 6 {
		t.Fatalf("ctop taken %d times, want 6", taken)
	}
	if rf.LC != 0 || rf.EC != 0 {
		t.Fatalf("after loop LC=%d EC=%d, want 0,0", rf.LC, rf.EC)
	}
}

func TestCtopStagePredicates(t *testing.T) {
	// While LC > 0 the new p16 is true (a new iteration enters the
	// pipeline); during epilog drain p16 is false.
	var rf RegFile
	rf.LC, rf.EC = 2, 2
	rf.ExecCtop() // iteration 1: LC 2->1
	if !rf.PR(16) {
		t.Fatal("p16 should be true while LC > 0")
	}
	rf.ExecCtop() // iteration 2: LC 1->0
	if !rf.PR(16) {
		t.Fatal("p16 should be true on the final LC decrement")
	}
	rf.ExecCtop() // epilog: EC 2->1
	if rf.PR(16) {
		t.Fatal("p16 should be false during epilog")
	}
}

func TestCloopSemantics(t *testing.T) {
	var rf RegFile
	rf.LC = 3
	taken := 0
	for rf.ExecCloop().Taken {
		taken++
	}
	if taken != 3 {
		t.Fatalf("cloop taken %d times, want 3", taken)
	}
}

func TestCloopDoesNotRotate(t *testing.T) {
	var rf RegFile
	rf.LC = 1
	rf.SetGR(32, 9)
	rf.ExecCloop()
	if got := rf.GR(32); got != 9 {
		t.Fatalf("cloop rotated registers: r32 = %d, want 9", got)
	}
}

func TestWtopDrainsEpilog(t *testing.T) {
	var rf RegFile
	rf.EC = 3
	// Predicate true twice, then false: 2 kernel iterations + 2 epilog
	// takens (EC 3->2->1), then fall through.
	takens := 0
	for _, qp := range []bool{true, true, false, false, false} {
		out := rf.ExecWtop(qp)
		if out.Taken {
			takens++
		} else {
			break
		}
	}
	if takens != 4 {
		t.Fatalf("wtop taken %d times, want 4", takens)
	}
}

func TestRotationPropertyValuePreserved(t *testing.T) {
	// Property: for any rotating register r and rotation count k, a value
	// written to r before k rotations is read back at the logical register
	// r+k (mod rotating region), and is never lost.
	prop := func(rSeed uint8, kSeed uint8, v int64) bool {
		r := RotGRBase + int(rSeed)%rotGRSize
		k := int(kSeed) % rotGRSize
		var rf RegFile
		rf.SetGR(uint8(r), v)
		for i := 0; i < k; i++ {
			rf.Rotate()
		}
		logical := RotGRBase + ((r-RotGRBase)+k)%rotGRSize
		return rf.GR(uint8(logical)) == v
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestResetClearsEverything(t *testing.T) {
	var rf RegFile
	rf.SetGR(33, 1)
	rf.SetFR(33, 1)
	rf.SetPR(17, true)
	rf.LC, rf.EC = 5, 5
	rf.Rotate()
	rf.Reset()
	if rf.GR(33) != 0 || rf.FR(33) != 0 || rf.PR(17) || rf.LC != 0 || rf.EC != 0 {
		t.Fatal("Reset left state behind")
	}
	if rf.rrbGR != 0 || rf.rrbFR != 0 || rf.rrbPR != 0 {
		t.Fatal("Reset left rename bases behind")
	}
}

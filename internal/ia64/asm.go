package ia64

import "fmt"

// Asm assembles one function into an image, resolving label references to
// absolute slot indices. It is the back end used by the loop-nest compiler
// and by tests that hand-write code.
type Asm struct {
	img    *Image
	name   string
	instrs []Instr
	labels map[string]int // label -> relative slot
	fixups []fixup
	err    error
}

type fixup struct {
	slot  int
	label string
}

// NewAsm starts assembling a function that Close will append to img.
func NewAsm(img *Image, name string) *Asm {
	return &Asm{img: img, name: name, labels: make(map[string]int)}
}

// Emit appends one instruction and returns its relative slot index.
func (a *Asm) Emit(in Instr) int {
	a.instrs = append(a.instrs, in)
	return len(a.instrs) - 1
}

// Label binds name to the next slot to be emitted.
func (a *Asm) Label(name string) {
	if _, dup := a.labels[name]; dup {
		a.fail(fmt.Errorf("ia64: duplicate label %q in %s", name, a.name))
		return
	}
	a.labels[name] = len(a.instrs)
}

// Br emits a branch of the given kind, qualified by predicate qp, targeting
// label. The target is resolved at Close.
func (a *Asm) Br(kind BrKind, qp uint8, label string) int {
	slot := a.Emit(Instr{Op: OpBr, Br: kind, QP: qp})
	a.fixups = append(a.fixups, fixup{slot: slot, label: label})
	return slot
}

// Nop emits a no-op (bundle filler).
func (a *Asm) Nop() int { return a.Emit(Instr{Op: OpNop}) }

// PadToBundle emits NOPs until the next slot falls on a bundle boundary.
func (a *Asm) PadToBundle() {
	for len(a.instrs)%BundleSlots != 0 {
		a.Nop()
	}
}

// Len returns the number of slots emitted so far.
func (a *Asm) Len() int { return len(a.instrs) }

func (a *Asm) fail(err error) {
	if a.err == nil {
		a.err = err
	}
}

// Close resolves labels, appends the function to the image, registers it in
// the function table, and returns its entry slot.
func (a *Asm) Close() (int, error) {
	if a.err != nil {
		return 0, a.err
	}
	a.PadToBundle()
	// The entry offset is known only after append; resolve against a
	// placeholder base then relocate. Append under one lock would be
	// cleaner, but labels are function-relative so a two-step fixup works.
	base := a.img.Len()
	for _, fx := range a.fixups {
		rel, ok := a.labels[fx.label]
		if !ok {
			return 0, fmt.Errorf("ia64: undefined label %q in %s", fx.label, a.name)
		}
		a.instrs[fx.slot].Imm = int64(base + rel)
	}
	entry := a.img.Append(a.instrs...)
	if entry != base {
		return 0, fmt.Errorf("ia64: image grew concurrently while assembling %s", a.name)
	}
	a.img.AddFunc(a.name, entry, entry+len(a.instrs))
	return entry, nil
}

package ia64

import "testing"

// distinct returns an instruction whose encoding is unique per i, so a
// stale cache slot can never coincidentally match fresh content.
func distinct(i int) Instr {
	return Instr{Op: OpMovI, R1: uint8(i % 32), Imm: int64(1000 + i)}
}

func sameStream(t *testing.T, step string, got []Instr, img *Image) {
	t.Helper()
	if len(got) != img.Len() {
		t.Fatalf("%s: cache len %d, image len %d", step, len(got), img.Len())
	}
	for pc := range got {
		if got[pc] != img.Fetch(pc) {
			t.Fatalf("%s: slot %d stale: %+v vs %+v", step, pc, got[pc], img.Fetch(pc))
		}
	}
}

func TestFuncAtIndexOutOfOrderRegistration(t *testing.T) {
	img := NewImage()
	for i := 0; i < 40; i++ {
		img.Append(Instr{Op: OpNop})
	}
	// Register out of address order, as trace/layout emission does when
	// code-cache functions land after workload functions are re-sorted.
	img.AddFunc("c", 30, 40)
	img.AddFunc("a", 0, 10)
	img.AddFunc("b", 12, 20)

	cases := []struct {
		pc   int
		want string
		ok   bool
	}{
		{-1, "", false},
		{0, "a", true},
		{9, "a", true},
		{10, "", false}, // End is exclusive
		{11, "", false}, // gap between a and b
		{12, "b", true},
		{19, "b", true},
		{20, "", false},
		{29, "", false},
		{30, "c", true},
		{39, "c", true},
		{40, "", false},
		{1000, "", false},
	}
	check := func(im *Image, label string) {
		t.Helper()
		for _, c := range cases {
			f, ok := im.FuncAt(c.pc)
			if ok != c.ok || (ok && f.Name != c.want) {
				t.Fatalf("%s: FuncAt(%d) = (%q, %v), want (%q, %v)",
					label, c.pc, f.Name, ok, c.want, c.ok)
			}
		}
	}
	check(img, "original")
	check(img.Clone(), "clone") // Clone must carry the index, not just funcs
}

// TestFuncAtNestedRanges exercises the prefix-max-End walk-back: a pc
// inside an outer function but past an inner function's End must not stop
// at the inner entry (the rightmost Entry <= pc) and report a miss.
func TestFuncAtNestedRanges(t *testing.T) {
	img := NewImage()
	for i := 0; i < 100; i++ {
		img.Append(Instr{Op: OpNop})
	}
	img.AddFunc("outer", 0, 100)
	img.AddFunc("inner", 10, 20)

	f, ok := img.FuncAt(50)
	if !ok || f.Name != "outer" {
		t.Fatalf("FuncAt(50) = (%q, %v), want outer past inner's End", f.Name, ok)
	}
	f, ok = img.FuncAt(15)
	if !ok || 15 < f.Entry || 15 >= f.End {
		t.Fatalf("FuncAt(15) = (%+v, %v), want a containing function", f, ok)
	}
	f, ok = img.FuncAt(5)
	if !ok || f.Name != "outer" {
		t.Fatalf("FuncAt(5) = (%q, %v), want outer", f.Name, ok)
	}
}

// TestFuncAtMatchesLinearScan cross-checks the binary-search index against
// a brute-force scan over every pc around a gappy, out-of-order function
// table — the reference semantics FuncAt replaced.
func TestFuncAtMatchesLinearScan(t *testing.T) {
	img := NewImage()
	for i := 0; i < 64; i++ {
		img.Append(Instr{Op: OpNop})
	}
	// Non-overlapping, registered out of order, with gaps.
	img.AddFunc("f3", 40, 48)
	img.AddFunc("f0", 0, 7)
	img.AddFunc("f2", 20, 33)
	img.AddFunc("f1", 9, 14)
	img.AddFunc("f4", 50, 64)

	funcs := img.Funcs()
	for pc := -2; pc <= img.Len()+2; pc++ {
		var want Func
		wantOK := false
		for _, f := range funcs {
			if pc >= f.Entry && pc < f.End {
				want, wantOK = f, true
				break
			}
		}
		got, ok := img.FuncAt(pc)
		if ok != wantOK || got != want {
			t.Fatalf("FuncAt(%d) = (%+v, %v), linear scan says (%+v, %v)",
				pc, got, ok, want, wantOK)
		}
	}
}

// TestRemoveTailInvalidatesPreRemovalCaches pins the cache-coherence
// contract of code-cache unwinding: appends are not journaled, so after a
// RemoveTail the freed slots can be reused with different content at a
// matching length — a decode cache synced before the removal must be
// forced onto the full-refetch path (-1), never an incremental replay
// that would keep the removed tail alive.
func TestRemoveTailInvalidatesPreRemovalCaches(t *testing.T) {
	img := NewImage()
	for i := 0; i < 16; i++ {
		img.Append(distinct(i))
	}
	img.AddFunc("head", 0, 8)
	img.AddFunc("tail", 8, 16)

	dec, gen := syncAll(img)

	img.RemoveTail(8)
	if img.Len() != 8 {
		t.Fatalf("Len = %d after RemoveTail(8), want 8", img.Len())
	}
	if _, ok := img.FuncAt(12); ok {
		t.Fatal("FuncAt inside removed tail still resolves")
	}
	if f, ok := img.FuncAt(4); !ok || f.Name != "head" {
		t.Fatalf("FuncAt(4) = (%+v, %v), want head", f, ok)
	}
	if _, ok := img.LookupFunc("tail"); ok {
		t.Fatal("removed-tail function still registered")
	}

	// Reuse the freed slots with different content, restoring the exact
	// pre-removal length — the trap an incremental resync would fall into.
	for i := 0; i < 8; i++ {
		img.Append(distinct(100 + i))
	}
	img.AddFunc("tail2", 8, 16)

	dec, gen, n := img.SyncDecodeStats(dec, gen)
	if n != -1 {
		t.Fatalf("pre-removal cache resynced incrementally (n=%d), want -1 full refetch", n)
	}
	if gen != img.Generation() {
		t.Fatalf("gen = %d, want %d", gen, img.Generation())
	}
	sameStream(t, "after remove+reappend", dec, img)
	if f, ok := img.FuncAt(12); !ok || f.Name != "tail2" {
		t.Fatalf("FuncAt(12) = (%+v, %v), want tail2", f, ok)
	}
}

func TestRemoveTailOutOfRangeIsNoop(t *testing.T) {
	img := NewImage()
	img.Append(distinct(0), distinct(1))
	gen := img.Generation()
	img.RemoveTail(-1)
	img.RemoveTail(2)
	img.RemoveTail(7)
	if img.Len() != 2 || img.Generation() != gen {
		t.Fatalf("no-op RemoveTail changed image: len=%d gen=%d", img.Len(), img.Generation())
	}
}

// TestPatchJournalBoundaryAfterOverflowDrop runs a mirror model of the
// journal drop policy beside the real image and asserts the exact
// boundary: a cache synced at precisely plogBase (the generation of the
// last dropped record) still replays incrementally, one generation older
// falls back to a full refetch, and both paths produce byte-identical
// decode streams.
func TestPatchJournalBoundaryAfterOverflowDrop(t *testing.T) {
	const bound = 8
	img := NewImage()
	for i := 0; i < 24; i++ {
		img.Append(distinct(i))
	}
	img.SetPatchJournalBound(bound)

	snap := map[uint64][]Instr{}
	record := func() {
		snap[img.Generation()] = img.FetchRange(0, img.Len(), nil)
	}
	record()

	var entries []uint64 // mirror of the journal's generations
	var modelBase uint64 // mirror of plogBase
	drops := 0
	for k := 0; k < 40; k++ {
		if _, err := img.Patch((k*7)%24, distinct(500+k)); err != nil {
			t.Fatal(err)
		}
		entries = append(entries, img.Generation())
		record()
		if len(entries) > bound {
			drop := len(entries) / 2
			modelBase = entries[drop-1]
			entries = append(entries[:0], entries[drop:]...)
			drops++
		}
	}
	if drops < 2 {
		t.Fatalf("only %d journal drops; stress did not exercise compaction", drops)
	}

	cacheAt := func(g uint64) []Instr {
		s, ok := snap[g]
		if !ok {
			t.Fatalf("no snapshot at generation %d", g)
		}
		return append([]Instr(nil), s...)
	}

	// have == plogBase: the oldest generation the journal still covers.
	dec, gen, n := img.SyncDecodeStats(cacheAt(modelBase), modelBase)
	if n < 0 {
		t.Fatalf("sync at have==plogBase fell back to full refetch (n=%d)", n)
	}
	if n != len(entries) {
		t.Fatalf("sync at plogBase replayed %d slots, mirror journal has %d", n, len(entries))
	}
	if gen != img.Generation() {
		t.Fatalf("gen = %d, want %d", gen, img.Generation())
	}
	sameStream(t, "incremental at plogBase", dec, img)

	// have == plogBase-1: one generation past the journal's reach.
	dec2, _, n2 := img.SyncDecodeStats(cacheAt(modelBase-1), modelBase-1)
	if n2 != -1 {
		t.Fatalf("sync at plogBase-1 replayed %d, want -1", n2)
	}
	sameStream(t, "fallback at plogBase-1", dec2, img)
	for pc := range dec {
		if dec[pc] != dec2[pc] {
			t.Fatalf("slot %d differs between incremental and fallback paths", pc)
		}
	}
}

// TestSetPatchJournalBoundRaisesIncrementalWindow exercises both
// directions of the tunable: a raised bound keeps a cache incremental
// across more patches than the default journal survives, and a bound
// below the minimum clamps to 2 rather than disabling compaction.
func TestSetPatchJournalBoundRaisesIncrementalWindow(t *testing.T) {
	img := NewImage()
	for i := 0; i < 8; i++ {
		img.Append(distinct(i))
	}
	img.SetPatchJournalBound(2048)
	dec, gen := syncAll(img)
	total := plogMax + 200
	for i := 0; i < total; i++ {
		if _, err := img.Patch(i%8, distinct(100+i)); err != nil {
			t.Fatal(err)
		}
	}
	dec, gen, n := img.SyncDecodeStats(dec, gen)
	if n != total {
		t.Fatalf("raised bound replayed %d slots, want %d (no compaction)", n, total)
	}
	sameStream(t, "raised bound", dec, img)
	_ = gen

	img2 := NewImage()
	for i := 0; i < 4; i++ {
		img2.Append(distinct(i))
	}
	img2.SetPatchJournalBound(0) // clamps to 2
	dec2, gen2 := syncAll(img2)
	for i := 0; i < 3; i++ {
		if _, err := img2.Patch(i, distinct(50+i)); err != nil {
			t.Fatal(err)
		}
	}
	// Three patches against a bound of 2 drop the first record, so a
	// cache from before the first patch must full-refetch.
	dec2, _, n2 := img2.SyncDecodeStats(dec2, gen2)
	if n2 != -1 {
		t.Fatalf("clamped bound replayed %d, want -1 after compaction", n2)
	}
	sameStream(t, "clamped bound", dec2, img2)
}

// TestSyncDecodeStatsShortCacheEdges is the table-driven edge suite for
// the incremental path: patches landing beyond the cache's length must
// not be counted as replays (the positional tail copy delivers them), and
// interleaved appends must not desynchronize the replay accounting.
func TestSyncDecodeStatsShortCacheEdges(t *testing.T) {
	type step struct {
		patchPC int // -1: no patch
		appendN int
	}
	cases := []struct {
		name    string
		initial int
		steps   []step
		wantN   int
	}{
		{
			name:    "patch beyond cache length only",
			initial: 8,
			steps:   []step{{patchPC: -1, appendN: 4}, {patchPC: 10}},
			wantN:   0,
		},
		{
			name:    "in-range patches interleaved with appends and beyond-range patches",
			initial: 8,
			steps: []step{
				{patchPC: 2},
				{patchPC: -1, appendN: 2},
				{patchPC: 9},
				{patchPC: -1, appendN: 1},
				{patchPC: 1},
			},
			wantN: 2,
		},
		{
			name:    "same beyond-range slot journaled twice",
			initial: 6,
			steps: []step{
				{patchPC: -1, appendN: 2},
				{patchPC: 7},
				{patchPC: 7},
				{patchPC: 3},
			},
			wantN: 1,
		},
		{
			name:    "append only",
			initial: 4,
			steps:   []step{{patchPC: -1, appendN: 5}},
			wantN:   0,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			img := NewImage()
			for i := 0; i < tc.initial; i++ {
				img.Append(distinct(i))
			}
			dec, gen := syncAll(img)
			for si, s := range tc.steps {
				for i := 0; i < s.appendN; i++ {
					img.Append(distinct(200 + 10*si + i))
				}
				if s.patchPC >= 0 {
					if _, err := img.Patch(s.patchPC, distinct(300+10*si)); err != nil {
						t.Fatal(err)
					}
				}
			}
			dec, gen, n := img.SyncDecodeStats(dec, gen)
			if n != tc.wantN {
				t.Fatalf("replayed %d slots, want %d", n, tc.wantN)
			}
			if gen != img.Generation() {
				t.Fatalf("gen = %d, want %d", gen, img.Generation())
			}
			sameStream(t, "after steps", dec, img)
		})
	}
}

// TestSyncDecodeStatsCloneJournalBase pins the clone's journal base: a
// cache attaching at exactly the clone generation is up to date, stays
// incremental across the clone's own patches, and a cache claiming a
// pre-clone generation (whose history the clone never had) full-fetches.
func TestSyncDecodeStatsCloneJournalBase(t *testing.T) {
	img := NewImage()
	for i := 0; i < 8; i++ {
		img.Append(distinct(i))
	}
	for i := 0; i < 5; i++ {
		if _, err := img.Patch(i, distinct(40+i)); err != nil {
			t.Fatal(err)
		}
	}
	c := img.Clone()
	cloneGen := c.Generation()

	dec := c.FetchRange(0, c.Len(), nil)
	dec, gen, n := c.SyncDecodeStats(dec, cloneGen)
	if n != 0 || gen != cloneGen {
		t.Fatalf("sync at clone generation: n=%d gen=%d, want 0/%d", n, gen, cloneGen)
	}

	if _, err := c.Patch(3, distinct(77)); err != nil {
		t.Fatal(err)
	}
	dec, gen, n = c.SyncDecodeStats(dec, gen)
	if n != 1 {
		t.Fatalf("one clone patch replayed %d slots, want exactly 1", n)
	}
	sameStream(t, "clone incremental", dec, c)

	stale := make([]Instr, c.Len())
	stale, _, n = c.SyncDecodeStats(stale, cloneGen-1)
	if n != -1 {
		t.Fatalf("pre-clone generation replayed %d, want -1", n)
	}
	sameStream(t, "pre-clone fallback", stale, c)

	fresh, _, n := c.SyncDecodeStats(nil, 0)
	if n != -1 {
		t.Fatalf("nil cache replayed %d, want -1", n)
	}
	sameStream(t, "nil cache", fresh, c)
	_ = gen
}

package serve

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/workload"
)

// State is a session's lifecycle position. Transitions are strictly
// queued → running → (done | failed | cancelled), except that a session
// cancelled or timed out while still queued goes straight to cancelled,
// and a ledger hit goes straight to done.
type State string

const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether no further transition can happen.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// ArtifactConfig selects which observability artifacts a session records.
// Artifacts are held in memory and served over the session's artifact
// endpoints; a session requesting none runs with a nil observer and the
// simulator's zero-overhead disabled path.
type ArtifactConfig struct {
	Trace        bool `json:"trace,omitempty"`
	TraceSamples bool `json:"trace_samples,omitempty"`
	Metrics      bool `json:"metrics,omitempty"`
	Decisions    bool `json:"decisions,omitempty"`
	// Events enables the live SSE stream (GET /sessions/{id}/events):
	// window snapshots, optimizer-pass summaries and patch-lifecycle
	// transitions published while the session runs. The stream is fed by
	// the metrics and decisions surfaces, so requesting it implies both
	// (their artifacts become available too).
	Events bool `json:"events,omitempty"`
}

func (a ArtifactConfig) any() bool { return a.Trace || a.Metrics || a.Decisions || a.Events }

func (a ArtifactConfig) observer() *obs.Observer {
	if !a.any() {
		return nil
	}
	return obs.New(obs.Config{
		Trace:        a.Trace,
		SampleEvents: a.TraceSamples,
		Metrics:      a.Metrics || a.Events,
		Decisions:    a.Decisions || a.Events,
		Events:       a.Events,
	})
}

// SubmitRequest is the POST /sessions body: a workload spec plus
// service-level knobs.
type SubmitRequest struct {
	Spec
	// TimeoutMS bounds the session's wall-clock execution; 0 uses the
	// server default, and values above the server maximum are rejected.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Artifacts selects observability artifacts to record.
	Artifacts ArtifactConfig `json:"artifacts,omitempty"`
}

// session is the server-side record of one optimization session.
type session struct {
	id       string
	spec     Spec
	key      string
	name     string
	artifact ArtifactConfig
	observer *obs.Observer // non-nil iff artifacts requested; safe to read once terminal
	ctx      context.Context
	cancel   context.CancelFunc

	created time.Time

	// progressCycles is updated by the machine interrupt poll while the
	// simulation runs — the live-progress feed. Atomic because status
	// requests read it from HTTP goroutines mid-run.
	progressCycles atomic.Int64

	mu       sync.Mutex
	state    State
	started  time.Time
	finished time.Time
	result   *workload.Measurement
	errMsg   string
	cached   bool
}

// SessionInfo is the JSON view of a session.
type SessionInfo struct {
	ID    string `json:"id"`
	Name  string `json:"name"`
	State State  `json:"state"`
	Spec  Spec   `json:"spec"`
	// Key is the content hash shared with the cobra-run ledger namespace.
	Key       string         `json:"key"`
	Artifacts ArtifactConfig `json:"artifacts,omitempty"`
	Cached    bool           `json:"cached,omitempty"`
	CreatedAt string         `json:"created_at"`
	StartedAt string         `json:"started_at,omitempty"`
	DoneAt    string         `json:"done_at,omitempty"`
	// ProgressCycles is the simulated global cycle the session had
	// reached at the last interrupt poll — monotonic while running,
	// final at completion.
	ProgressCycles int64                 `json:"progress_cycles,omitempty"`
	Error          string                `json:"error,omitempty"`
	Result         *workload.Measurement `json:"result,omitempty"`
}

func rfc3339(t time.Time) string {
	if t.IsZero() {
		return ""
	}
	return t.UTC().Format(time.RFC3339Nano)
}

// info snapshots the session under its lock.
func (s *session) info() SessionInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	return SessionInfo{
		ID:             s.id,
		Name:           s.name,
		State:          s.state,
		Spec:           s.spec,
		Key:            s.key,
		Artifacts:      s.artifact,
		Cached:         s.cached,
		CreatedAt:      rfc3339(s.created),
		StartedAt:      rfc3339(s.started),
		DoneAt:         rfc3339(s.finished),
		ProgressCycles: s.progressCycles.Load(),
		Error:          s.errMsg,
		Result:         s.result,
	}
}

func (s *session) setRunning(now time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.state == StateQueued {
		s.state = StateRunning
		s.started = now
	}
}

// stateNow returns the current state.
func (s *session) stateNow() State {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state
}

// errNow returns the current error message.
func (s *session) errNow() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.errMsg
}

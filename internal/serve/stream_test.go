package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// sseEvent is one parsed text/event-stream record.
type sseEvent struct {
	id   int64
	kind string
	data []byte
}

// busData is the BusEvent envelope carried in every SSE data field,
// with the payload left raw for kind-specific decoding.
type busData struct {
	Seq   int64           `json:"seq"`
	Kind  string          `json:"kind"`
	Cycle int64           `json:"cycle"`
	Data  json.RawMessage `json:"data"`
}

// readSSE parses events off an open stream until EOF (bus closed /
// server evicted us) or stop returns true. Comment lines (keep-alives,
// gap markers) are returned separately.
func readSSE(t *testing.T, body io.Reader, stop func(sseEvent) bool) (events []sseEvent, comments []string) {
	t.Helper()
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	var cur sseEvent
	var data bytes.Buffer
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if data.Len() > 0 || cur.kind != "" {
				cur.data = append([]byte(nil), data.Bytes()...)
				events = append(events, cur)
				if stop != nil && stop(cur) {
					return events, comments
				}
			}
			cur, data = sseEvent{}, bytes.Buffer{}
		case strings.HasPrefix(line, ":"):
			comments = append(comments, line)
		case strings.HasPrefix(line, "id:"):
			n, err := strconv.ParseInt(strings.TrimSpace(line[3:]), 10, 64)
			if err != nil {
				t.Fatalf("bad id line %q: %v", line, err)
			}
			cur.id = n
		case strings.HasPrefix(line, "event:"):
			cur.kind = strings.TrimSpace(line[6:])
		case strings.HasPrefix(line, "data:"):
			data.WriteString(strings.TrimSpace(line[5:]))
		case strings.HasPrefix(line, "retry:"):
			// reconnect hint; nothing to check
		default:
			t.Fatalf("unexpected SSE line %q", line)
		}
	}
	return events, comments
}

// getStream opens an SSE endpoint and requires 200 text/event-stream.
func getStream(t *testing.T, url string, lastEventID string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	if lastEventID != "" {
		req.Header.Set("Last-Event-ID", lastEventID)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("GET %s: status %d, body %s", url, resp.StatusCode, b)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/event-stream") {
		t.Fatalf("content-type = %q", ct)
	}
	return resp
}

// checkFinite walks a decoded JSON value and fails on any NaN or Inf —
// the tracecheck-style structural gate for streamed telemetry. (Go's
// encoder rejects them at the source; this guards the contract from the
// consumer side.)
func checkFinite(t *testing.T, v any, path string) {
	t.Helper()
	switch x := v.(type) {
	case float64:
		if math.IsNaN(x) || math.IsInf(x, 0) {
			t.Fatalf("non-finite number at %s: %v", path, x)
		}
	case map[string]any:
		for k, e := range x {
			checkFinite(t, e, path+"."+k)
		}
	case []any:
		for i, e := range x {
			checkFinite(t, e, fmt.Sprintf("%s[%d]", path, i))
		}
	}
}

// TestStreamEquivalence is the live-telemetry acceptance test: follow a
// phased adaptive session's SSE stream to completion and require that
// the streamed events are a faithful, lossless replay of what the
// post-run artifacts record — decision transitions rebuild the decision
// report byte-for-byte, window events reproduce the metrics artifact's
// window snapshots, and every event is structurally valid JSON with
// strictly monotone ids and finite numbers.
func TestStreamEquivalence(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	info := submit(t, ts.URL, map[string]any{
		"workload": "phased",
		"threads":  4,
		"strategy": "adaptive",
		// events implies the metrics and decisions surfaces
		"artifacts": map[string]bool{"events": true},
	})

	// Follow the live stream to its end marker; the server closes the
	// connection once the session bus drains.
	resp := getStream(t, ts.URL+"/sessions/"+info.ID+"/events", "")
	defer resp.Body.Close()
	events, _ := readSSE(t, resp.Body, nil)
	if len(events) == 0 {
		t.Fatal("stream delivered no events")
	}

	var (
		lastID       int64
		decisions    []obs.Decision
		windows      []obs.WindowSnapshot
		deltaSum     = map[string]int64{}
		lastCounters map[string]int64
		passes       int
		end          *EndEvent
	)
	for i, ev := range events {
		if ev.id <= lastID {
			t.Fatalf("event %d: id %d not strictly monotone (prev %d)", i, ev.id, lastID)
		}
		lastID = ev.id
		var bd busData
		if err := json.Unmarshal(ev.data, &bd); err != nil {
			t.Fatalf("event %d: bad data JSON: %v\n%s", i, err, ev.data)
		}
		if bd.Seq != ev.id || bd.Kind != ev.kind {
			t.Fatalf("event %d: envelope (seq=%d kind=%s) disagrees with SSE framing (id=%d event=%s)",
				i, bd.Seq, bd.Kind, ev.id, ev.kind)
		}
		var decoded any
		if err := json.Unmarshal(ev.data, &decoded); err != nil {
			t.Fatal(err)
		}
		checkFinite(t, decoded, ev.kind)

		switch ev.kind {
		case obs.KindPass:
			passes++
		case obs.KindWindow:
			var we obs.WindowEvent
			if err := json.Unmarshal(bd.Data, &we); err != nil {
				t.Fatalf("window event: %v", err)
			}
			windows = append(windows, we.WindowSnapshot)
			for k, v := range we.CounterDeltas {
				deltaSum[k] += v
			}
			lastCounters = we.Counters
		case obs.KindDecision:
			var d obs.Decision
			if err := json.Unmarshal(bd.Data, &d); err != nil {
				t.Fatalf("decision event: %v", err)
			}
			decisions = append(decisions, d)
		case obs.KindEnd:
			var e EndEvent
			if err := json.Unmarshal(bd.Data, &e); err != nil {
				t.Fatalf("end event: %v", err)
			}
			end = &e
			if i != len(events)-1 {
				t.Fatalf("end marker at event %d of %d — events after the end", i, len(events))
			}
		default:
			t.Fatalf("event %d: unknown kind %q", i, ev.kind)
		}
	}
	if end == nil || end.State != StateDone {
		t.Fatalf("missing or non-done end marker: %+v", end)
	}
	if passes == 0 {
		t.Fatal("no optimizer-pass events streamed")
	}
	if len(decisions) == 0 {
		t.Fatal("adaptive phased run streamed no patch decisions")
	}

	// The session is terminal (we saw its end event); fetch artifacts.
	get := func(path string) []byte {
		resp, err := http.Get(ts.URL + path)
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %v status %d", path, err, resp.StatusCode)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return b
	}

	// Replaying the streamed transitions through a fresh DecisionLog must
	// rebuild the decisions artifact byte-for-byte: Record re-derives Seq
	// and From, so equality proves the stream is complete and in order.
	replay := obs.NewDecisionLog()
	for _, d := range decisions {
		replay.Record(d.Cycle, d.Region, d.Window, d.To, d.Reason, d.Evidence)
	}
	var replayed bytes.Buffer
	if err := replay.Explain(&replayed); err != nil {
		t.Fatal(err)
	}
	if artifact := get("/sessions/" + info.ID + "/artifacts/decisions"); !bytes.Equal(replayed.Bytes(), artifact) {
		t.Errorf("replayed decision report differs from artifact:\nreplayed:\n%s\nartifact:\n%s", replayed.Bytes(), artifact)
	}

	// Streamed window snapshots must equal the metrics artifact's window
	// series (same struct, so marshaling both is a byte-level comparison).
	var dump obs.Dump
	if err := json.Unmarshal(get("/sessions/"+info.ID+"/artifacts/metrics"), &dump); err != nil {
		t.Fatal(err)
	}
	wantWin, _ := json.Marshal(dump.Windows)
	gotWin, _ := json.Marshal(windows)
	if !bytes.Equal(gotWin, wantWin) {
		t.Errorf("streamed windows differ from metrics artifact:\nstreamed: %s\nartifact: %s", gotWin, wantWin)
	}

	// Counter deltas must integrate back to the final snapshot's
	// cumulative counters — no delta lost, none double-counted.
	for k, want := range lastCounters {
		if deltaSum[k] != want {
			t.Errorf("counter %s: delta sum %d != final cumulative %d", k, deltaSum[k], want)
		}
	}
	for k := range deltaSum {
		if _, ok := lastCounters[k]; !ok {
			t.Errorf("counter %s has deltas but no final value", k)
		}
	}
}

// TestStreamResume exercises Last-Event-ID / ?from resumption against a
// completed session: the bus history replays events after the resume
// point, and only those.
func TestStreamResume(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	// Long enough for several profiling windows, so the history holds a
	// pass/window/decision mix worth resuming into.
	info := submit(t, ts.URL, map[string]any{
		"workload": "daxpy", "threads": 4, "strategy": "adaptive",
		"daxpy_ws": 64 << 10, "daxpy_reps": 50,
		"artifacts": map[string]bool{"events": true},
	})
	waitTerminal(t, ts.URL, info.ID)

	url := ts.URL + "/sessions/" + info.ID + "/events"

	// Full replay from the start.
	resp := getStream(t, url+"?from=0", "")
	all, _ := readSSE(t, resp.Body, nil)
	resp.Body.Close()
	if len(all) < 3 {
		t.Fatalf("replay delivered %d events, want at least pass+window+end", len(all))
	}

	// Resume mid-stream: only events after the given seq return.
	mid := all[len(all)/2]
	resp = getStream(t, url, strconv.FormatInt(mid.id, 10))
	tail, _ := readSSE(t, resp.Body, nil)
	resp.Body.Close()
	if want := all[len(all)/2+1:]; len(tail) != len(want) {
		t.Fatalf("resume after %d: got %d events, want %d", mid.id, len(tail), len(want))
	} else {
		for i := range tail {
			if tail[i].id != want[i].id || !bytes.Equal(tail[i].data, want[i].data) {
				t.Fatalf("resumed event %d differs: id %d vs %d", i, tail[i].id, want[i].id)
			}
		}
	}

	// ?from overrides the header.
	resp = getStream(t, url+"?from="+strconv.FormatInt(all[len(all)-1].id-1, 10), "0")
	last, _ := readSSE(t, resp.Body, nil)
	resp.Body.Close()
	if len(last) != 1 || last[0].id != all[len(all)-1].id {
		t.Fatalf("?from override: got %d events", len(last))
	}

	// Garbage resume positions are a 400, not a stream.
	for _, q := range []string{"?from=abc", "?from=-1"} {
		resp, err := http.Get(url + q)
		if err != nil || resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: %v status %d, want 400", q, err, resp.StatusCode)
		}
		resp.Body.Close()
	}
}

// TestStreamNotEnabled: sessions without artifacts.events have no bus
// and answer 404 with a hint, as do unknown sessions.
func TestStreamNotEnabled(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	info := submit(t, ts.URL, shortSpec())
	waitTerminal(t, ts.URL, info.ID)

	resp, err := http.Get(ts.URL + "/sessions/" + info.ID + "/events")
	if err != nil || resp.StatusCode != http.StatusNotFound {
		t.Fatalf("events without opt-in: %v status %d, want 404", err, resp.StatusCode)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(b), "artifacts.events") {
		t.Fatalf("404 body gives no hint: %s", b)
	}

	resp, err = http.Get(ts.URL + "/sessions/nope/events")
	if err != nil || resp.StatusCode != http.StatusNotFound {
		t.Fatalf("events for unknown session: %v status %d", err, resp.StatusCode)
	}
	resp.Body.Close()
}

// TestEventszStream: the server-wide stream carries every session's
// state walk plus serve.* counter deltas, replayable from history.
func TestEventszStream(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	info := submit(t, ts.URL, shortSpec())
	waitTerminal(t, ts.URL, info.ID)

	resp := getStream(t, ts.URL+"/eventsz?from=0", "")
	defer resp.Body.Close()
	// The server bus stays open for the server's lifetime; stop once the
	// session's terminal event has replayed.
	sawDone := false
	events, _ := readSSE(t, resp.Body, func(ev sseEvent) bool {
		if ev.kind != obs.KindSession {
			return false
		}
		var bd busData
		if err := json.Unmarshal(ev.data, &bd); err != nil {
			return false
		}
		var se SessionEvent
		if err := json.Unmarshal(bd.Data, &se); err != nil {
			return false
		}
		sawDone = se.ID == info.ID && se.State == StateDone
		return sawDone
	})
	if !sawDone {
		t.Fatalf("never saw session %s reach done on /eventsz (%d events)", info.ID, len(events))
	}

	var states []State
	var serveDeltas int
	for _, ev := range events {
		var bd busData
		if err := json.Unmarshal(ev.data, &bd); err != nil {
			t.Fatal(err)
		}
		switch ev.kind {
		case obs.KindSession:
			var se SessionEvent
			if err := json.Unmarshal(bd.Data, &se); err != nil {
				t.Fatal(err)
			}
			if se.ID == info.ID {
				states = append(states, se.State)
			}
		case obs.KindServe:
			var sv ServeEvent
			if err := json.Unmarshal(bd.Data, &sv); err != nil {
				t.Fatal(err)
			}
			if len(sv.CounterDeltas) > 0 {
				serveDeltas++
			}
		}
	}
	want := []State{StateQueued, StateRunning, StateDone}
	if len(states) != len(want) {
		t.Fatalf("session state walk = %v, want %v", states, want)
	}
	for i := range want {
		if states[i] != want[i] {
			t.Fatalf("session state walk = %v, want %v", states, want)
		}
	}
	if serveDeltas == 0 {
		t.Fatal("no serve.* counter deltas streamed")
	}
}

// TestStreamSubscriberLimit: the configured subscriber bound answers
// excess stream requests with 429 + Retry-After instead of admitting an
// unbounded reader population.
func TestStreamSubscriberLimit(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, StreamSubscribers: 1})

	first := getStream(t, ts.URL+"/eventsz", "")
	defer first.Body.Close()

	resp, err := http.Get(ts.URL + "/eventsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second subscriber: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}

	// Releasing the first slot re-admits.
	first.Body.Close()
	waitFor429Clear(t, ts.URL+"/eventsz")
}

// waitFor429Clear retries until the stream admits a subscriber (slot
// release is asynchronous with the client-side Close).
func waitFor429Clear(t *testing.T, url string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		code := resp.StatusCode
		resp.Body.Close()
		if code == http.StatusOK {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("stream slot never freed after client close")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

package serve

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"repro/internal/cobra"
)

// TestSpecEngineStrategies: the pluggable strategy names validate, build
// an adaptive config bound to the named engine, and hash to session keys
// distinct from each other and from plain adaptive.
func TestSpecEngineStrategies(t *testing.T) {
	keys := map[string]string{}
	names := []string{"adaptive", "multiversion", "causal", "layout"}
	for _, name := range names {
		s := &Spec{Workload: "daxpy", Strategy: name}
		s.Normalize()
		if err := s.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		bc, err := s.buildConfig()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if bc.Cobra == nil || bc.Cobra.Strategy != cobra.StrategyAdaptive {
			t.Fatalf("%s: config not adaptive: %+v", name, bc.Cobra)
		}
		wantEngine := name
		if name == "adaptive" {
			wantEngine = "" // the built-in default, not a registry lookup
		}
		if bc.Cobra.Engine != wantEngine {
			t.Fatalf("%s: engine = %q, want %q", name, bc.Cobra.Engine, wantEngine)
		}
		key, err := s.Key()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		keys[name] = key
	}
	for i, a := range names {
		for _, b := range names[i+1:] {
			if keys[a] == keys[b] {
				t.Fatalf("strategies %s and %s share a ledger key: %v", a, b, keys)
			}
		}
	}
}

// TestSpecEngineKeyStability: the Engine field must be omitempty so every
// pre-engine spec (no engine selected) serializes — and therefore content-
// hashes — exactly as it did before the field existed.
func TestSpecEngineKeyStability(t *testing.T) {
	c := cobra.DefaultConfig(cobra.StrategyAdaptive)
	b, err := json.Marshal(c)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(b), "engine") {
		t.Fatalf("default config leaks the engine field into content hashes: %s", b)
	}
	// Same contract for the patch-journal bound tunable: at its zero value
	// (use the built-in default) it must not appear in the encoding, so
	// every pre-tunable spec keeps its historical ledger content hash.
	if strings.Contains(string(b), "patch_journal_bound") {
		t.Fatalf("default config leaks the journal bound into content hashes: %s", b)
	}
}

// TestSpecSimWorkers: sim_workers validates in [0, MaxSimWorkers],
// propagates to the machine config, and — because it selects an execution
// strategy rather than a machine model — never perturbs the session's
// ledger content hash: the same spec at any worker count shares one
// ledger entry.
func TestSpecSimWorkers(t *testing.T) {
	base := &Spec{Workload: "daxpy"}
	base.Normalize()
	if err := base.Validate(); err != nil {
		t.Fatal(err)
	}
	baseKey, err := base.Key()
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{1, 2, 8, MaxSimWorkers} {
		s := &Spec{Workload: "daxpy", SimWorkers: w}
		s.Normalize()
		if err := s.Validate(); err != nil {
			t.Fatalf("sim_workers=%d: %v", w, err)
		}
		bc, err := s.buildConfig()
		if err != nil {
			t.Fatalf("sim_workers=%d: %v", w, err)
		}
		if bc.Machine.SimWorkers != w {
			t.Fatalf("sim_workers=%d: machine config got %d", w, bc.Machine.SimWorkers)
		}
		key, err := s.Key()
		if err != nil {
			t.Fatalf("sim_workers=%d: %v", w, err)
		}
		if key != baseKey {
			t.Fatalf("sim_workers=%d forked the ledger key: %s != %s", w, key, baseKey)
		}
	}
	for _, w := range []int{-1, MaxSimWorkers + 1} {
		s := &Spec{Workload: "daxpy", SimWorkers: w}
		s.Normalize()
		if err := s.Validate(); err == nil {
			t.Fatalf("sim_workers=%d validated, want range error", w)
		}
	}
}

// TestSpecSimWorkersKeyStability: machine.Config must exclude SimWorkers
// from its JSON encoding (json:"-"), which is what KeyOf hashes — the
// mechanism behind the key equality asserted above.
func TestSpecSimWorkersKeyStability(t *testing.T) {
	s := &Spec{Workload: "daxpy", SimWorkers: 8}
	s.Normalize()
	bc, err := s.buildConfig()
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(bc.Machine)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(strings.ToLower(string(b)), "simworkers") {
		t.Fatalf("machine config leaks SimWorkers into content hashes: %s", b)
	}
}

// TestSpecBigNUMATopologies: the 16- and 32-CPU NUMA machines opened by
// the MaxThreads bump validate and build end-to-end with the expected
// CPU count.
func TestSpecBigNUMATopologies(t *testing.T) {
	for _, n := range []int{16, 32} {
		s := &Spec{Workload: "daxpy", Threads: n, Machine: "numa", SimWorkers: 4}
		s.Normalize()
		if err := s.Validate(); err != nil {
			t.Fatalf("numa threads=%d: %v", n, err)
		}
		bc, err := s.buildConfig()
		if err != nil {
			t.Fatalf("numa threads=%d: %v", n, err)
		}
		if bc.Machine.Mem.NumCPUs != n {
			t.Fatalf("numa threads=%d: machine has %d CPUs", n, bc.Machine.Mem.NumCPUs)
		}
	}
	s := &Spec{Workload: "daxpy", Threads: MaxThreads + 1, Machine: "numa"}
	s.Normalize()
	if err := s.Validate(); err == nil {
		t.Fatalf("threads=%d validated, want range error", MaxThreads+1)
	}
}

// TestSpecScenarioKeyStability: every scenario-matrix field (topology,
// placement, bind node, affinity, migration) must be omitempty all the
// way down into the hashed machine config, so a spec that leaves them
// unset serializes — and content-hashes — exactly as it did before the
// scenario matrix existed. "first-touch" is the same policy as unset and
// must share its key.
func TestSpecScenarioKeyStability(t *testing.T) {
	base := &Spec{Workload: "daxpy", Machine: "numa"}
	base.Normalize()
	baseKey, err := base.Key()
	if err != nil {
		t.Fatal(err)
	}
	bc, err := base.buildConfig()
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(bc)
	if err != nil {
		t.Fatal(err)
	}
	enc := strings.ToLower(string(b))
	for _, field := range []string{"nodes", "placement", "bindnode", "migrations", "affinity"} {
		if strings.Contains(enc, field) {
			t.Fatalf("default build config leaks %q into content hashes: %s", field, b)
		}
	}

	ft := &Spec{Workload: "daxpy", Machine: "numa", Placement: "first-touch"}
	ft.Normalize()
	ftKey, err := ft.Key()
	if err != nil {
		t.Fatal(err)
	}
	if ftKey != baseKey {
		t.Fatalf("placement=first-touch forked the ledger key: %s != %s", ftKey, baseKey)
	}

	// Every scenario knob must fork the key: they all change timing.
	variants := []*Spec{
		{Workload: "daxpy", Machine: "numa", Threads: 4, Topology: []NodeSpec{{CPUs: 1}, {CPUs: 3}}},
		{Workload: "daxpy", Machine: "numa", Placement: "interleave"},
		{Workload: "daxpy", Machine: "numa", Placement: "bind", BindNode: 1},
		{Workload: "daxpy", Machine: "numa", Affinity: []int{3, 2, 1, 0}},
		{Workload: "daxpy", Machine: "numa", MigrateAt: 1000, MigrateCPU: 0, MigrateNode: 1},
	}
	seen := map[string]string{baseKey: "base"}
	for i, v := range variants {
		v.Normalize()
		if err := v.Validate(); err != nil {
			t.Fatalf("variant %d: %v", i, err)
		}
		key, err := v.Key()
		if err != nil {
			t.Fatalf("variant %d: %v", i, err)
		}
		if prev, dup := seen[key]; dup {
			t.Fatalf("variant %d shares ledger key with %s", i, prev)
		}
		seen[key] = fmt.Sprintf("variant %d", i)
	}
}

// TestSpecIrregularWorkloads: the three irregular kernels validate, build
// and hash to distinct keys, on both machine models.
func TestSpecIrregularWorkloads(t *testing.T) {
	keys := map[string]bool{}
	for _, w := range []string{"pointerchase", "hashjoin", "spmv"} {
		for _, m := range []string{"smp", "numa"} {
			s := &Spec{Workload: w, Machine: m, Threads: 2}
			s.Normalize()
			if err := s.Validate(); err != nil {
				t.Fatalf("%s/%s: %v", w, m, err)
			}
			if _, err := s.buildWorkload(); err != nil {
				t.Fatalf("%s/%s: %v", w, m, err)
			}
			key, err := s.Key()
			if err != nil {
				t.Fatalf("%s/%s: %v", w, m, err)
			}
			if keys[key] {
				t.Fatalf("%s/%s: duplicate ledger key %s", w, m, key)
			}
			keys[key] = true
		}
	}
}

// TestSpecScenarioBuildConfig: the declarative fields land in the right
// places of the build config.
func TestSpecScenarioBuildConfig(t *testing.T) {
	s := &Spec{
		Workload: "spmv", Machine: "numa", Threads: 2,
		Topology:  []NodeSpec{{CPUs: 1, MemMB: 64}, {CPUs: 3}},
		Placement: "bind", BindNode: 1,
		Affinity:  []int{3, 0},
		MigrateAt: 5000, MigrateCPU: 3, MigrateNode: 0,
	}
	s.Normalize()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	bc, err := s.buildConfig()
	if err != nil {
		t.Fatal(err)
	}
	mc := bc.Machine.Mem
	if mc.NumCPUs != 4 || len(mc.Nodes) != 2 || mc.Nodes[0].MemBytes != 64<<20 {
		t.Fatalf("mem config shape wrong: %+v", mc)
	}
	if mc.Placement != "bind" || mc.BindNode != 1 {
		t.Fatalf("placement not mapped: %+v", mc)
	}
	if len(bc.Affinity) != 2 || bc.Affinity[0] != 3 {
		t.Fatalf("affinity not mapped: %v", bc.Affinity)
	}
	if len(bc.Machine.Migrations) != 1 || bc.Machine.Migrations[0].AtCycle != 5000 {
		t.Fatalf("migration not mapped: %+v", bc.Machine.Migrations)
	}
	if _, err := s.Instantiate(nil, nil); err != nil {
		t.Fatalf("instantiate: %v", err)
	}
}

package serve

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/cobra"
)

// TestSpecEngineStrategies: the pluggable strategy names validate, build
// an adaptive config bound to the named engine, and hash to session keys
// distinct from each other and from plain adaptive.
func TestSpecEngineStrategies(t *testing.T) {
	keys := map[string]string{}
	names := []string{"adaptive", "multiversion", "causal", "layout"}
	for _, name := range names {
		s := &Spec{Workload: "daxpy", Strategy: name}
		s.Normalize()
		if err := s.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		bc, err := s.buildConfig()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if bc.Cobra == nil || bc.Cobra.Strategy != cobra.StrategyAdaptive {
			t.Fatalf("%s: config not adaptive: %+v", name, bc.Cobra)
		}
		wantEngine := name
		if name == "adaptive" {
			wantEngine = "" // the built-in default, not a registry lookup
		}
		if bc.Cobra.Engine != wantEngine {
			t.Fatalf("%s: engine = %q, want %q", name, bc.Cobra.Engine, wantEngine)
		}
		key, err := s.Key()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		keys[name] = key
	}
	for i, a := range names {
		for _, b := range names[i+1:] {
			if keys[a] == keys[b] {
				t.Fatalf("strategies %s and %s share a ledger key: %v", a, b, keys)
			}
		}
	}
}

// TestSpecEngineKeyStability: the Engine field must be omitempty so every
// pre-engine spec (no engine selected) serializes — and therefore content-
// hashes — exactly as it did before the field existed.
func TestSpecEngineKeyStability(t *testing.T) {
	c := cobra.DefaultConfig(cobra.StrategyAdaptive)
	b, err := json.Marshal(c)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(b), "engine") {
		t.Fatalf("default config leaks the engine field into content hashes: %s", b)
	}
	// Same contract for the patch-journal bound tunable: at its zero value
	// (use the built-in default) it must not appear in the encoding, so
	// every pre-tunable spec keeps its historical ledger content hash.
	if strings.Contains(string(b), "patch_journal_bound") {
		t.Fatalf("default config leaks the journal bound into content hashes: %s", b)
	}
}

// TestSpecSimWorkers: sim_workers validates in [0, MaxSimWorkers],
// propagates to the machine config, and — because it selects an execution
// strategy rather than a machine model — never perturbs the session's
// ledger content hash: the same spec at any worker count shares one
// ledger entry.
func TestSpecSimWorkers(t *testing.T) {
	base := &Spec{Workload: "daxpy"}
	base.Normalize()
	if err := base.Validate(); err != nil {
		t.Fatal(err)
	}
	baseKey, err := base.Key()
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{1, 2, 8, MaxSimWorkers} {
		s := &Spec{Workload: "daxpy", SimWorkers: w}
		s.Normalize()
		if err := s.Validate(); err != nil {
			t.Fatalf("sim_workers=%d: %v", w, err)
		}
		bc, err := s.buildConfig()
		if err != nil {
			t.Fatalf("sim_workers=%d: %v", w, err)
		}
		if bc.Machine.SimWorkers != w {
			t.Fatalf("sim_workers=%d: machine config got %d", w, bc.Machine.SimWorkers)
		}
		key, err := s.Key()
		if err != nil {
			t.Fatalf("sim_workers=%d: %v", w, err)
		}
		if key != baseKey {
			t.Fatalf("sim_workers=%d forked the ledger key: %s != %s", w, key, baseKey)
		}
	}
	for _, w := range []int{-1, MaxSimWorkers + 1} {
		s := &Spec{Workload: "daxpy", SimWorkers: w}
		s.Normalize()
		if err := s.Validate(); err == nil {
			t.Fatalf("sim_workers=%d validated, want range error", w)
		}
	}
}

// TestSpecSimWorkersKeyStability: machine.Config must exclude SimWorkers
// from its JSON encoding (json:"-"), which is what KeyOf hashes — the
// mechanism behind the key equality asserted above.
func TestSpecSimWorkersKeyStability(t *testing.T) {
	s := &Spec{Workload: "daxpy", SimWorkers: 8}
	s.Normalize()
	bc, err := s.buildConfig()
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(bc.Machine)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(strings.ToLower(string(b)), "simworkers") {
		t.Fatalf("machine config leaks SimWorkers into content hashes: %s", b)
	}
}

// TestSpecBigNUMATopologies: the 16- and 32-CPU NUMA machines opened by
// the MaxThreads bump validate and build end-to-end with the expected
// CPU count.
func TestSpecBigNUMATopologies(t *testing.T) {
	for _, n := range []int{16, 32} {
		s := &Spec{Workload: "daxpy", Threads: n, Machine: "numa", SimWorkers: 4}
		s.Normalize()
		if err := s.Validate(); err != nil {
			t.Fatalf("numa threads=%d: %v", n, err)
		}
		bc, err := s.buildConfig()
		if err != nil {
			t.Fatalf("numa threads=%d: %v", n, err)
		}
		if bc.Machine.Mem.NumCPUs != n {
			t.Fatalf("numa threads=%d: machine has %d CPUs", n, bc.Machine.Mem.NumCPUs)
		}
	}
	s := &Spec{Workload: "daxpy", Threads: MaxThreads + 1, Machine: "numa"}
	s.Normalize()
	if err := s.Validate(); err == nil {
		t.Fatalf("threads=%d validated, want range error", MaxThreads+1)
	}
}

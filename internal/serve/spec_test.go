package serve

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/cobra"
)

// TestSpecEngineStrategies: the pluggable strategy names validate, build
// an adaptive config bound to the named engine, and hash to session keys
// distinct from each other and from plain adaptive.
func TestSpecEngineStrategies(t *testing.T) {
	keys := map[string]string{}
	for _, name := range []string{"adaptive", "multiversion", "causal"} {
		s := &Spec{Workload: "daxpy", Strategy: name}
		s.Normalize()
		if err := s.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		bc, err := s.buildConfig()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if bc.Cobra == nil || bc.Cobra.Strategy != cobra.StrategyAdaptive {
			t.Fatalf("%s: config not adaptive: %+v", name, bc.Cobra)
		}
		wantEngine := name
		if name == "adaptive" {
			wantEngine = "" // the built-in default, not a registry lookup
		}
		if bc.Cobra.Engine != wantEngine {
			t.Fatalf("%s: engine = %q, want %q", name, bc.Cobra.Engine, wantEngine)
		}
		key, err := s.Key()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		keys[name] = key
	}
	if keys["adaptive"] == keys["multiversion"] || keys["adaptive"] == keys["causal"] ||
		keys["multiversion"] == keys["causal"] {
		t.Fatalf("engine strategies share a ledger key: %v", keys)
	}
}

// TestSpecEngineKeyStability: the Engine field must be omitempty so every
// pre-engine spec (no engine selected) serializes — and therefore content-
// hashes — exactly as it did before the field existed.
func TestSpecEngineKeyStability(t *testing.T) {
	c := cobra.DefaultConfig(cobra.StrategyAdaptive)
	b, err := json.Marshal(c)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(b), "engine") {
		t.Fatalf("default config leaks the engine field into content hashes: %s", b)
	}
}

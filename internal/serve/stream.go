package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/obs"
)

// SSE streaming over the obs event plane.
//
// Two endpoints expose live telemetry as text/event-stream:
//
//	GET /sessions/{id}/events   one session's bus: pass summaries,
//	                            window snapshots (+ counter deltas),
//	                            patch-lifecycle decisions, end marker
//	GET /eventsz                the server-wide bus: session state
//	                            changes, serve.* counter deltas
//
// Every SSE record carries the bus sequence number as its id, the event
// kind as its event name, and the full obs.BusEvent JSON as its data,
// so `Last-Event-ID` (or ?from=N) resumes exactly where a dropped
// connection left off — the bus backfills from its bounded history and
// any unbridgeable gap shows up as a seq jump plus a `: gap` comment.
//
// Slow clients cannot back-pressure a simulation: subscribers read from
// bounded per-subscriber rings (overflow is dropped and accounted, not
// blocked on), subscriber counts are bounded (excess answered 429), and
// each network write runs under a deadline — a stalled reader is
// evicted, not waited for.

const (
	// streamHeartbeat paces comment keep-alives on idle streams, so
	// proxies do not sever them and dead clients are detected.
	streamHeartbeat = 10 * time.Second
	// streamWriteTimeout is the per-write deadline; a client that cannot
	// drain one event within it is evicted.
	streamWriteTimeout = 10 * time.Second
)

// handleSessionEvents is GET /sessions/{id}/events.
func (s *Server) handleSessionEvents(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no session %q", r.PathValue("id"))
		return
	}
	bus := sess.observer.Bus()
	if bus == nil {
		writeError(w, http.StatusNotFound,
			"session %s did not enable the event stream (submit with artifacts.events=true)", sess.id)
		return
	}
	s.streamBus(w, r, bus)
}

// handleEventsz is GET /eventsz: the server-wide stream.
func (s *Server) handleEventsz(w http.ResponseWriter, r *http.Request) {
	s.streamBus(w, r, s.bus)
}

// resumeSeq extracts the client's resume position: the SSE standard
// Last-Event-ID header, or an explicit ?from=N (0 = from the start).
func resumeSeq(r *http.Request) (int64, error) {
	v := r.Header.Get("Last-Event-ID")
	if q := r.URL.Query().Get("from"); q != "" {
		v = q
	}
	if v == "" {
		return 0, nil
	}
	n, err := strconv.ParseInt(v, 10, 64)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("bad resume position %q (want a non-negative event seq)", v)
	}
	return n, nil
}

// streamBus subscribes to bus and relays events to the client until the
// bus closes, the client disconnects, or the client stalls past the
// write deadline.
func (s *Server) streamBus(w http.ResponseWriter, r *http.Request, bus *obs.EventBus) {
	from, err := resumeSeq(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	sub, err := bus.Subscribe(from, 0)
	if err != nil {
		if errors.Is(err, obs.ErrTooManySubscribers) {
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, "stream subscriber limit reached; retry later")
			return
		}
		writeError(w, http.StatusInternalServerError, "subscribe: %v", err)
		return
	}
	defer sub.Close()

	h := w.Header()
	h.Set("Content-Type", "text/event-stream; charset=utf-8")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no") // defeat proxy buffering
	w.WriteHeader(http.StatusOK)

	flusher, _ := w.(http.Flusher)
	rc := http.NewResponseController(w)
	write := func(b []byte) bool {
		_ = rc.SetWriteDeadline(time.Now().Add(streamWriteTimeout))
		if _, err := w.Write(b); err != nil {
			return false // client gone or stalled: evict
		}
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}
	if !write([]byte("retry: 1000\n\n")) {
		return
	}

	var reportedDrops int64
	for {
		waitCtx, cancel := context.WithTimeout(r.Context(), streamHeartbeat)
		ev, err := sub.Next(waitCtx)
		cancel()
		switch {
		case err == nil:
			if d := sub.Dropped(); d != reportedDrops {
				reportedDrops = d
				if !write([]byte(fmt.Sprintf(": gap dropped=%d\n\n", d))) {
					return
				}
			}
			data, merr := json.Marshal(ev)
			if merr != nil {
				// Payloads are plain JSON-safe structs; a marshal failure is
				// a programming error in an emitter — surface, don't hang.
				s.logf("serve: stream marshal seq %d: %v", ev.Seq, merr)
				continue
			}
			if !write([]byte(fmt.Sprintf("id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Kind, data))) {
				return
			}
		case errors.Is(err, context.DeadlineExceeded) && r.Context().Err() == nil:
			if !write([]byte(": keep-alive\n\n")) {
				return
			}
		default:
			// Bus closed (stream complete — the end marker was a real
			// event, already delivered) or client disconnected.
			return
		}
	}
}

package serve

import (
	"fmt"

	"repro/internal/cobra"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/npb"
	"repro/internal/obs"
	"repro/internal/sched"
	_ "repro/internal/strategy" // register the multiversion, causal and layout engines
	"repro/internal/workload"
)

// Spec is the portable description of one optimization session: which
// workload to run, on which machine model, at what scale, under which
// COBRA strategy. It is the JSON request body of the cobrad service and
// the parsed flag set of the cobra-run CLI — both front ends build their
// scheduler job through the same Spec methods, so a session served by
// cobrad is byte-identical to the equivalent batch invocation, including
// its run-ledger content hash.
type Spec struct {
	// Workload is daxpy, phased, an irregular kernel (pointerchase,
	// hashjoin, spmv), or an NPB benchmark (bt, sp, lu, ft, mg, cg, ep,
	// is). Empty defaults to daxpy.
	Workload string `json:"workload"`
	// Threads is the worker thread count; 0 defaults to 4. Without an
	// explicit topology this is also the CPU count.
	Threads int `json:"threads,omitempty"`
	// Machine is smp (front-side bus) or numa (Altix-like); empty
	// defaults to smp.
	Machine string `json:"machine,omitempty"`
	// Topology declares an explicit — possibly asymmetric — NUMA node
	// list (machine must be numa). Empty keeps the uniform legacy shape.
	Topology []NodeSpec `json:"topology,omitempty"`
	// Placement is the page-placement policy: first-touch (default,
	// normalized to empty so legacy content hashes are preserved),
	// interleave, or bind. Non-first-touch requires machine numa.
	Placement string `json:"placement,omitempty"`
	// BindNode is the home node for placement=bind (0 otherwise).
	BindNode int `json:"bind_node,omitempty"`
	// Affinity pins OpenMP thread i to CPU Affinity[i]; nil keeps the
	// identity binding. Must name Threads distinct CPUs of the topology.
	Affinity []int `json:"affinity,omitempty"`
	// MigrateAt, when > 0, remaps CPU MigrateCPU to node MigrateNode at
	// that machine cycle — the mid-run migration scenario (numa only).
	MigrateAt   int64 `json:"migrate_at,omitempty"`
	MigrateCPU  int   `json:"migrate_cpu,omitempty"`
	MigrateNode int   `json:"migrate_node,omitempty"`
	// Strategy is off, monitor, noprefetch, excl, adaptive or bias, or
	// one of the pluggable engines (multiversion, causal, layout) which
	// run the adaptive trigger under that strategy engine; empty defaults
	// to off.
	Strategy string `json:"strategy,omitempty"`
	// ClassS selects class-S-scaled NPB sizes (nil/true) vs tiny (false).
	ClassS *bool `json:"class_s,omitempty"`
	// DaxpyWS is the DAXPY working-set size in bytes; 0 defaults to 128 KiB.
	DaxpyWS int64 `json:"daxpy_ws,omitempty"`
	// DaxpyReps is the DAXPY outer repetition count; 0 defaults to 100.
	DaxpyReps int `json:"daxpy_reps,omitempty"`
	// SimWorkers is the host worker-goroutine count for the simulator's
	// parallel window engine; 0 or 1 runs the serial engine. Results are
	// byte-identical at any value, so it deliberately does NOT contribute
	// to the session's ledger content hash (machine.Config excludes it
	// from hashing): the same session at different worker counts shares
	// one ledger entry.
	SimWorkers int `json:"sim_workers,omitempty"`
}

// NodeSpec declares one NUMA node of an explicit topology: its CPU count
// and, optionally, a memory capacity in MiB (0 = unbounded). Capacity
// only constrains placement=bind, which spills to the nearest node with
// free pages once the bind node fills.
type NodeSpec struct {
	CPUs  int   `json:"cpus"`
	MemMB int64 `json:"mem_mb,omitempty"`
}

// Bounds enforced by Validate. They bound a single session's memory and
// runtime, which is what lets cobrad promise that a bounded queue of
// validated sessions cannot OOM the process.
const (
	// MaxThreads was 16 until the parallel window engine made big-machine
	// configs affordable; 32 opens the 16- and 32-CPU NUMA topologies.
	MaxThreads    = 32
	MaxSimWorkers = 32
	MinDaxpyWS    = 4 << 10
	MaxDaxpyWS    = 64 << 20
	MaxDaxpyReps  = 100_000
	// MinTopologyMemMB is the floor on total declared capacity when every
	// node of a topology is capacity-bounded: a session's arrays have to
	// fit somewhere, so an all-bounded topology below this is rejected as
	// a capacity overflow before any machine is built.
	MinTopologyMemMB = 16
)

var npbNames = func() map[string]bool {
	m := map[string]bool{}
	for _, n := range npb.Names {
		m[n] = true
	}
	return m
}()

// Normalize fills defaults in place; the zero Spec normalizes to the
// cobra-run CLI's defaults (daxpy, 4 threads, smp, strategy off).
func (s *Spec) Normalize() {
	if s.Workload == "" {
		s.Workload = "daxpy"
	}
	if s.Threads == 0 {
		s.Threads = 4
	}
	if s.Machine == "" {
		s.Machine = "smp"
	}
	if s.Strategy == "" {
		s.Strategy = "off"
	}
	// first-touch is the policy the simulator has always had; canonicalize
	// to the empty string so the mem.Config field stays omitempty and every
	// pre-matrix spec keeps its historical ledger content hash.
	if s.Placement == "first-touch" {
		s.Placement = ""
	}
	if s.Workload == "daxpy" {
		if s.DaxpyWS == 0 {
			s.DaxpyWS = 128 << 10
		}
		if s.DaxpyReps == 0 {
			s.DaxpyReps = 100
		}
	}
}

// Validate reports the first problem with a normalized spec, with enough
// context for an HTTP 400 body to be actionable.
func (s *Spec) Validate() error {
	switch {
	case s.Workload == "daxpy", s.Workload == "phased", npbNames[s.Workload],
		s.Workload == "pointerchase", s.Workload == "hashjoin", s.Workload == "spmv":
	default:
		return fmt.Errorf("unknown workload %q (want daxpy, phased, pointerchase, hashjoin, spmv, or one of %v)", s.Workload, npb.Names)
	}
	if s.Threads < 1 || s.Threads > MaxThreads {
		return fmt.Errorf("threads %d out of range [1, %d]", s.Threads, MaxThreads)
	}
	if s.Machine != "smp" && s.Machine != "numa" {
		return fmt.Errorf("unknown machine %q (want smp or numa)", s.Machine)
	}
	if err := s.validateScenario(); err != nil {
		return err
	}
	if s.SimWorkers < 0 || s.SimWorkers > MaxSimWorkers {
		return fmt.Errorf("sim_workers %d out of range [0, %d]", s.SimWorkers, MaxSimWorkers)
	}
	switch s.Strategy {
	case "off", "monitor", "noprefetch", "excl", "adaptive", "bias",
		"multiversion", "causal", "layout":
	default:
		return fmt.Errorf("unknown strategy %q (want off, monitor, noprefetch, excl, adaptive, bias, multiversion, causal or layout)", s.Strategy)
	}
	if s.Workload == "daxpy" {
		if s.DaxpyWS < MinDaxpyWS || s.DaxpyWS > MaxDaxpyWS {
			return fmt.Errorf("daxpy_ws %d out of range [%d, %d]", s.DaxpyWS, MinDaxpyWS, MaxDaxpyWS)
		}
		if s.DaxpyWS%8 != 0 {
			return fmt.Errorf("daxpy_ws %d not a multiple of 8", s.DaxpyWS)
		}
		if s.DaxpyReps < 1 || s.DaxpyReps > MaxDaxpyReps {
			return fmt.Errorf("daxpy_reps %d out of range [1, %d]", s.DaxpyReps, MaxDaxpyReps)
		}
	}
	return nil
}

// validateScenario checks the scenario-matrix fields: topology shape,
// placement policy, affinity map and migration point. Every rejection
// here is a 400 in cobrad before any machine memory is allocated.
func (s *Spec) validateScenario() error {
	if len(s.Topology) > 0 {
		if s.Machine != "numa" {
			return fmt.Errorf("topology requires machine numa, not %q", s.Machine)
		}
		total, bounded, totalMB := 0, true, int64(0)
		for i, n := range s.Topology {
			if n.CPUs < 1 {
				return fmt.Errorf("topology node %d has %d CPUs (want >= 1)", i, n.CPUs)
			}
			if n.MemMB < 0 {
				return fmt.Errorf("topology node %d has negative mem_mb %d", i, n.MemMB)
			}
			total += n.CPUs
			if n.MemMB == 0 {
				bounded = false
			}
			totalMB += n.MemMB
		}
		if total > mem.MaxTopologyCPUs {
			return fmt.Errorf("topology has %d CPUs (max %d)", total, mem.MaxTopologyCPUs)
		}
		if total < s.Threads {
			return fmt.Errorf("topology has %d CPUs for %d threads", total, s.Threads)
		}
		if bounded && totalMB < MinTopologyMemMB {
			return fmt.Errorf("topology capacity %d MiB overflows: every node is bounded and the total is below %d MiB", totalMB, MinTopologyMemMB)
		}
	}
	switch s.Placement {
	case "", "first-touch", "interleave", "bind":
	default:
		return fmt.Errorf("unknown placement %q (want first-touch, interleave or bind)", s.Placement)
	}
	if s.Placement != "" && s.Placement != "first-touch" && s.Machine != "numa" {
		return fmt.Errorf("placement %q requires machine numa", s.Placement)
	}
	numNodes := len(s.Topology)
	if numNodes == 0 && s.Machine == "numa" {
		numNodes = mem.AltixNUMA(s.numCPUs()).NumNodes()
	}
	if s.Placement == "bind" {
		if s.BindNode < 0 || s.BindNode >= numNodes {
			return fmt.Errorf("bind_node %d out of range [0, %d)", s.BindNode, numNodes)
		}
	} else if s.BindNode != 0 {
		return fmt.Errorf("bind_node %d set without placement bind", s.BindNode)
	}
	if s.Affinity != nil {
		if len(s.Affinity) != s.Threads {
			return fmt.Errorf("affinity names %d CPUs for %d threads", len(s.Affinity), s.Threads)
		}
		seen := make(map[int]bool, len(s.Affinity))
		for t, cpu := range s.Affinity {
			if cpu < 0 || cpu >= s.numCPUs() {
				return fmt.Errorf("affinity[%d] = CPU %d of %d", t, cpu, s.numCPUs())
			}
			if seen[cpu] {
				return fmt.Errorf("affinity binds CPU %d twice", cpu)
			}
			seen[cpu] = true
		}
	}
	switch {
	case s.MigrateAt < 0:
		return fmt.Errorf("migrate_at %d negative", s.MigrateAt)
	case s.MigrateAt == 0:
		if s.MigrateCPU != 0 || s.MigrateNode != 0 {
			return fmt.Errorf("migrate_cpu/migrate_node set without migrate_at")
		}
	default:
		if s.Machine != "numa" {
			return fmt.Errorf("migration requires machine numa")
		}
		if s.MigrateCPU < 0 || s.MigrateCPU >= s.numCPUs() {
			return fmt.Errorf("migrate_cpu %d out of range [0, %d)", s.MigrateCPU, s.numCPUs())
		}
		if s.MigrateNode < 0 || s.MigrateNode >= numNodes {
			return fmt.Errorf("migrate_node %d out of range [0, %d)", s.MigrateNode, numNodes)
		}
	}
	return nil
}

// numCPUs is the machine's CPU count: the topology's total when declared,
// the thread count otherwise (the legacy one-CPU-per-thread shape).
func (s *Spec) numCPUs() int {
	if len(s.Topology) == 0 {
		return s.Threads
	}
	total := 0
	for _, n := range s.Topology {
		total += n.CPUs
	}
	return total
}

// memNodes maps the declared topology to mem.NodeConfig (nil when the
// spec keeps the uniform legacy shape).
func (s *Spec) memNodes() []mem.NodeConfig {
	if len(s.Topology) == 0 {
		return nil
	}
	nodes := make([]mem.NodeConfig, len(s.Topology))
	for i, n := range s.Topology {
		nodes[i] = mem.NodeConfig{CPUs: n.CPUs, MemBytes: uint64(n.MemMB) << 20}
	}
	return nodes
}

func (s *Spec) classS() bool { return s.ClassS == nil || *s.ClassS }

// params returns the typed parameter value that contributes to the
// session's content hash — the same values cobra-run has always hashed,
// so ledger entries are shared between the CLI and the service.
func (s *Spec) params() any {
	switch {
	case s.Workload == "daxpy":
		return workload.DaxpyParams{WorkingSetBytes: s.DaxpyWS, OuterReps: s.DaxpyReps}
	case s.Workload == "phased":
		return workload.PhasedDaxpyParams{}
	case s.Workload == "pointerchase":
		return workload.PointerChaseParams{}.WithDefaults()
	case s.Workload == "hashjoin":
		return workload.HashJoinParams{}.WithDefaults()
	case s.Workload == "spmv":
		return workload.SpmvParams{}.WithDefaults()
	default:
		class := npb.ClassT
		if s.classS() {
			class = npb.ClassS
		}
		return npb.Params{Class: class}
	}
}

// buildWorkload constructs the workload program. Deterministic: a pure
// function of the spec.
func (s *Spec) buildWorkload() (*workload.Workload, error) {
	switch p := s.params().(type) {
	case workload.DaxpyParams:
		return workload.Daxpy(p), nil
	case workload.PhasedDaxpyParams:
		return workload.PhasedDaxpy(p), nil
	case workload.PointerChaseParams:
		return workload.PointerChase(p), nil
	case workload.HashJoinParams:
		return workload.HashJoin(p), nil
	case workload.SpmvParams:
		return workload.Spmv(p), nil
	case npb.Params:
		return npb.Build(s.Workload, p)
	}
	panic("unreachable")
}

// buildConfig assembles the machine + strategy configuration.
func (s *Spec) buildConfig() (workload.BuildConfig, error) {
	var bc workload.BuildConfig
	switch {
	case s.Machine == "smp":
		bc = workload.SMPConfig(s.Threads)
	case s.Machine == "numa" && len(s.Topology) > 0:
		bc = workload.NUMANodesConfig(s.Threads, s.memNodes())
	case s.Machine == "numa":
		bc = workload.NUMAConfig(s.Threads)
	default:
		return bc, fmt.Errorf("unknown machine %q", s.Machine)
	}
	// Scenario-matrix knobs. All the underlying config fields are
	// omitempty, so a spec that leaves them at their defaults hashes to
	// the historical ledger key.
	if s.Placement != "" && s.Placement != "first-touch" {
		bc.Machine.Mem.Placement = mem.PlacementPolicy(s.Placement)
		bc.Machine.Mem.BindNode = s.BindNode
	}
	if s.Affinity != nil {
		bc.Affinity = append([]int(nil), s.Affinity...)
	}
	if s.MigrateAt > 0 {
		bc.Machine.Migrations = []machine.Migration{
			{AtCycle: s.MigrateAt, CPU: s.MigrateCPU, Node: s.MigrateNode},
		}
	}
	// Execution strategy, not machine model: hashed-out of the ledger key.
	bc.Machine.SimWorkers = s.SimWorkers
	switch s.Strategy {
	case "off":
	case "monitor":
		c := cobra.DefaultConfig(cobra.StrategyOff)
		bc.Cobra = &c
	case "noprefetch":
		c := cobra.DefaultConfig(cobra.StrategyNoprefetch)
		bc.Cobra = &c
	case "excl":
		c := cobra.DefaultConfig(cobra.StrategyExcl)
		bc.Cobra = &c
	case "adaptive":
		c := cobra.DefaultConfig(cobra.StrategyAdaptive)
		bc.Cobra = &c
	case "bias":
		c := cobra.DefaultConfig(cobra.StrategyBias)
		bc.Cobra = &c
	case "multiversion", "causal", "layout":
		// Pluggable engines run the adaptive trigger with candidate
		// generation, judging and deployment delegated to the named
		// registry engine. The Engine field is omitempty, so every
		// pre-engine spec keeps its historical ledger content hash.
		c := cobra.DefaultConfig(cobra.StrategyAdaptive)
		c.Engine = s.Strategy
		bc.Cobra = &c
	default:
		return bc, fmt.Errorf("unknown strategy %q", s.Strategy)
	}
	return bc, nil
}

// Key is the session's content hash. It reproduces the historical
// cobra-run job key exactly — KeyOf("cobra-run", workload, params,
// buildConfig) — so service sessions and batch runs share one run-ledger
// namespace.
func (s *Spec) Key() (string, error) {
	bc, err := s.buildConfig()
	if err != nil {
		return "", err
	}
	return sched.KeyOf("cobra-run", s.Workload, s.params(), bc), nil
}

// Name is the human-readable job label ("daxpy/t=4/smp/off").
func (s *Spec) Name() string {
	return fmt.Sprintf("%s/t=%d/%s/%s", s.Workload, s.Threads, s.Machine, s.Strategy)
}

// workloadKey identifies the compiled program content for the build
// cache, using the same conventions as internal/experiment so a shared
// cache reuses compiles across the service and sweep paths.
func (s *Spec) workloadKey() string {
	switch {
	case s.Workload == "daxpy":
		return sched.KeyOf("daxpy", s.params())
	case s.Workload == "phased":
		return sched.KeyOf("phased", s.params())
	case s.Workload == "pointerchase", s.Workload == "hashjoin", s.Workload == "spmv":
		return sched.KeyOf(s.Workload, s.params())
	default:
		return sched.KeyOf("npb", s.Workload, s.params())
	}
}

// Instantiate builds the full session stack: workload program, machine
// (cloned from the cache's pristine compiled image when cache is non-nil,
// compiled fresh otherwise), OpenMP runtime, optional COBRA, optional
// observer. Each call returns an independent instance — concurrent
// sessions share no mutable state.
func (s *Spec) Instantiate(cache *workload.BuildCache, o *obs.Observer) (*workload.Instance, error) {
	w, err := s.buildWorkload()
	if err != nil {
		return nil, err
	}
	bc, err := s.buildConfig()
	if err != nil {
		return nil, err
	}
	bc.Obs = o
	if cache != nil {
		return cache.Build(s.workloadKey(), w, bc)
	}
	return workload.Build(w, bc)
}

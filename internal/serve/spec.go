package serve

import (
	"fmt"

	"repro/internal/cobra"
	"repro/internal/npb"
	"repro/internal/obs"
	"repro/internal/sched"
	_ "repro/internal/strategy" // register the multiversion, causal and layout engines
	"repro/internal/workload"
)

// Spec is the portable description of one optimization session: which
// workload to run, on which machine model, at what scale, under which
// COBRA strategy. It is the JSON request body of the cobrad service and
// the parsed flag set of the cobra-run CLI — both front ends build their
// scheduler job through the same Spec methods, so a session served by
// cobrad is byte-identical to the equivalent batch invocation, including
// its run-ledger content hash.
type Spec struct {
	// Workload is daxpy, phased, or an NPB benchmark (bt, sp, lu, ft,
	// mg, cg, ep, is). Empty defaults to daxpy.
	Workload string `json:"workload"`
	// Threads is the worker thread (= CPU) count; 0 defaults to 4.
	Threads int `json:"threads,omitempty"`
	// Machine is smp (front-side bus) or numa (Altix-like); empty
	// defaults to smp.
	Machine string `json:"machine,omitempty"`
	// Strategy is off, monitor, noprefetch, excl, adaptive or bias, or
	// one of the pluggable engines (multiversion, causal, layout) which
	// run the adaptive trigger under that strategy engine; empty defaults
	// to off.
	Strategy string `json:"strategy,omitempty"`
	// ClassS selects class-S-scaled NPB sizes (nil/true) vs tiny (false).
	ClassS *bool `json:"class_s,omitempty"`
	// DaxpyWS is the DAXPY working-set size in bytes; 0 defaults to 128 KiB.
	DaxpyWS int64 `json:"daxpy_ws,omitempty"`
	// DaxpyReps is the DAXPY outer repetition count; 0 defaults to 100.
	DaxpyReps int `json:"daxpy_reps,omitempty"`
	// SimWorkers is the host worker-goroutine count for the simulator's
	// parallel window engine; 0 or 1 runs the serial engine. Results are
	// byte-identical at any value, so it deliberately does NOT contribute
	// to the session's ledger content hash (machine.Config excludes it
	// from hashing): the same session at different worker counts shares
	// one ledger entry.
	SimWorkers int `json:"sim_workers,omitempty"`
}

// Bounds enforced by Validate. They bound a single session's memory and
// runtime, which is what lets cobrad promise that a bounded queue of
// validated sessions cannot OOM the process.
const (
	// MaxThreads was 16 until the parallel window engine made big-machine
	// configs affordable; 32 opens the 16- and 32-CPU NUMA topologies.
	MaxThreads    = 32
	MaxSimWorkers = 32
	MinDaxpyWS    = 4 << 10
	MaxDaxpyWS    = 64 << 20
	MaxDaxpyReps  = 100_000
)

var npbNames = func() map[string]bool {
	m := map[string]bool{}
	for _, n := range npb.Names {
		m[n] = true
	}
	return m
}()

// Normalize fills defaults in place; the zero Spec normalizes to the
// cobra-run CLI's defaults (daxpy, 4 threads, smp, strategy off).
func (s *Spec) Normalize() {
	if s.Workload == "" {
		s.Workload = "daxpy"
	}
	if s.Threads == 0 {
		s.Threads = 4
	}
	if s.Machine == "" {
		s.Machine = "smp"
	}
	if s.Strategy == "" {
		s.Strategy = "off"
	}
	if s.Workload == "daxpy" {
		if s.DaxpyWS == 0 {
			s.DaxpyWS = 128 << 10
		}
		if s.DaxpyReps == 0 {
			s.DaxpyReps = 100
		}
	}
}

// Validate reports the first problem with a normalized spec, with enough
// context for an HTTP 400 body to be actionable.
func (s *Spec) Validate() error {
	switch {
	case s.Workload == "daxpy", s.Workload == "phased", npbNames[s.Workload]:
	default:
		return fmt.Errorf("unknown workload %q (want daxpy, phased, or one of %v)", s.Workload, npb.Names)
	}
	if s.Threads < 1 || s.Threads > MaxThreads {
		return fmt.Errorf("threads %d out of range [1, %d]", s.Threads, MaxThreads)
	}
	if s.Machine != "smp" && s.Machine != "numa" {
		return fmt.Errorf("unknown machine %q (want smp or numa)", s.Machine)
	}
	if s.SimWorkers < 0 || s.SimWorkers > MaxSimWorkers {
		return fmt.Errorf("sim_workers %d out of range [0, %d]", s.SimWorkers, MaxSimWorkers)
	}
	switch s.Strategy {
	case "off", "monitor", "noprefetch", "excl", "adaptive", "bias",
		"multiversion", "causal", "layout":
	default:
		return fmt.Errorf("unknown strategy %q (want off, monitor, noprefetch, excl, adaptive, bias, multiversion, causal or layout)", s.Strategy)
	}
	if s.Workload == "daxpy" {
		if s.DaxpyWS < MinDaxpyWS || s.DaxpyWS > MaxDaxpyWS {
			return fmt.Errorf("daxpy_ws %d out of range [%d, %d]", s.DaxpyWS, MinDaxpyWS, MaxDaxpyWS)
		}
		if s.DaxpyWS%8 != 0 {
			return fmt.Errorf("daxpy_ws %d not a multiple of 8", s.DaxpyWS)
		}
		if s.DaxpyReps < 1 || s.DaxpyReps > MaxDaxpyReps {
			return fmt.Errorf("daxpy_reps %d out of range [1, %d]", s.DaxpyReps, MaxDaxpyReps)
		}
	}
	return nil
}

func (s *Spec) classS() bool { return s.ClassS == nil || *s.ClassS }

// params returns the typed parameter value that contributes to the
// session's content hash — the same values cobra-run has always hashed,
// so ledger entries are shared between the CLI and the service.
func (s *Spec) params() any {
	switch {
	case s.Workload == "daxpy":
		return workload.DaxpyParams{WorkingSetBytes: s.DaxpyWS, OuterReps: s.DaxpyReps}
	case s.Workload == "phased":
		return workload.PhasedDaxpyParams{}
	default:
		class := npb.ClassT
		if s.classS() {
			class = npb.ClassS
		}
		return npb.Params{Class: class}
	}
}

// buildWorkload constructs the workload program. Deterministic: a pure
// function of the spec.
func (s *Spec) buildWorkload() (*workload.Workload, error) {
	switch p := s.params().(type) {
	case workload.DaxpyParams:
		return workload.Daxpy(p), nil
	case workload.PhasedDaxpyParams:
		return workload.PhasedDaxpy(p), nil
	case npb.Params:
		return npb.Build(s.Workload, p)
	}
	panic("unreachable")
}

// buildConfig assembles the machine + strategy configuration.
func (s *Spec) buildConfig() (workload.BuildConfig, error) {
	var bc workload.BuildConfig
	switch s.Machine {
	case "smp":
		bc = workload.SMPConfig(s.Threads)
	case "numa":
		bc = workload.NUMAConfig(s.Threads)
	default:
		return bc, fmt.Errorf("unknown machine %q", s.Machine)
	}
	// Execution strategy, not machine model: hashed-out of the ledger key.
	bc.Machine.SimWorkers = s.SimWorkers
	switch s.Strategy {
	case "off":
	case "monitor":
		c := cobra.DefaultConfig(cobra.StrategyOff)
		bc.Cobra = &c
	case "noprefetch":
		c := cobra.DefaultConfig(cobra.StrategyNoprefetch)
		bc.Cobra = &c
	case "excl":
		c := cobra.DefaultConfig(cobra.StrategyExcl)
		bc.Cobra = &c
	case "adaptive":
		c := cobra.DefaultConfig(cobra.StrategyAdaptive)
		bc.Cobra = &c
	case "bias":
		c := cobra.DefaultConfig(cobra.StrategyBias)
		bc.Cobra = &c
	case "multiversion", "causal", "layout":
		// Pluggable engines run the adaptive trigger with candidate
		// generation, judging and deployment delegated to the named
		// registry engine. The Engine field is omitempty, so every
		// pre-engine spec keeps its historical ledger content hash.
		c := cobra.DefaultConfig(cobra.StrategyAdaptive)
		c.Engine = s.Strategy
		bc.Cobra = &c
	default:
		return bc, fmt.Errorf("unknown strategy %q", s.Strategy)
	}
	return bc, nil
}

// Key is the session's content hash. It reproduces the historical
// cobra-run job key exactly — KeyOf("cobra-run", workload, params,
// buildConfig) — so service sessions and batch runs share one run-ledger
// namespace.
func (s *Spec) Key() (string, error) {
	bc, err := s.buildConfig()
	if err != nil {
		return "", err
	}
	return sched.KeyOf("cobra-run", s.Workload, s.params(), bc), nil
}

// Name is the human-readable job label ("daxpy/t=4/smp/off").
func (s *Spec) Name() string {
	return fmt.Sprintf("%s/t=%d/%s/%s", s.Workload, s.Threads, s.Machine, s.Strategy)
}

// workloadKey identifies the compiled program content for the build
// cache, using the same conventions as internal/experiment so a shared
// cache reuses compiles across the service and sweep paths.
func (s *Spec) workloadKey() string {
	switch {
	case s.Workload == "daxpy":
		return sched.KeyOf("daxpy", s.params())
	case s.Workload == "phased":
		return sched.KeyOf("phased", s.params())
	default:
		return sched.KeyOf("npb", s.Workload, s.params())
	}
}

// Instantiate builds the full session stack: workload program, machine
// (cloned from the cache's pristine compiled image when cache is non-nil,
// compiled fresh otherwise), OpenMP runtime, optional COBRA, optional
// observer. Each call returns an independent instance — concurrent
// sessions share no mutable state.
func (s *Spec) Instantiate(cache *workload.BuildCache, o *obs.Observer) (*workload.Instance, error) {
	w, err := s.buildWorkload()
	if err != nil {
		return nil, err
	}
	bc, err := s.buildConfig()
	if err != nil {
		return nil, err
	}
	bc.Obs = o
	if cache != nil {
		return cache.Build(s.workloadKey(), w, bc)
	}
	return workload.Build(w, bc)
}

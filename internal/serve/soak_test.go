package serve

import (
	"context"
	"io"
	"net/http"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestSoak drives an in-process cobrad with concurrent clients for a
// wall-clock duration, mixing short sessions, ledger hits, cancellations
// and rejected submissions, then checks the service's accounting
// invariants. It is the `make soak-smoke` payload and is skipped unless
// COBRAD_SOAK is set to a duration (e.g. COBRAD_SOAK=30s).
//
// Methodology (documented in EXPERIMENTS.md): the point of the soak is
// not throughput — it is that under sustained concurrent load with
// deliberate cancellations and backpressure, (a) every submitted session
// reaches exactly one terminal state, (b) the session ledger only ever
// records completed runs, (c) no worker panics, and (d) the retained
// session store stays bounded. Run it under -race to turn the same load
// into a data-race probe.
//
// The telemetry plane soaks alongside: background scrapers hammer
// /metricsz, followers tail /eventsz for the whole run, and sessions
// submitted with artifacts.events=true get their SSE stream followed to
// completion — every followed stream must deliver strictly monotone ids
// with zero drops (the event volume sits far below the subscriber
// buffer bound) and end with the end marker.
func TestSoak(t *testing.T) {
	durStr := os.Getenv("COBRAD_SOAK")
	if durStr == "" {
		t.Skip("set COBRAD_SOAK=30s to run the soak test (see `make soak-smoke`)")
	}
	dur, err := time.ParseDuration(durStr)
	if err != nil {
		t.Fatalf("bad COBRAD_SOAK duration %q: %v", durStr, err)
	}

	srv, ts := newTestServer(t, Config{
		Workers:     4,
		QueueDepth:  8,
		LedgerDir:   t.TempDir(),
		MaxSessions: 64,
		Logf:        t.Logf,
	})

	// A small rotation of specs: repeats hit the ledger, distinct sizes
	// exercise the build cache, the adaptive entry exercises COBRA, and the
	// sim_workers entries run the parallel window engine under soak load.
	// The last entry repeats the second spec at sim_workers=4: both hash to
	// one ledger key (worker count is execution strategy, not machine
	// model), so the soak also exercises serial and parallel runs sharing
	// a ledger entry.
	specs := []map[string]any{
		{"workload": "daxpy", "threads": 1, "daxpy_ws": 8 << 10, "daxpy_reps": 3},
		{"workload": "daxpy", "threads": 2, "daxpy_ws": 16 << 10, "daxpy_reps": 3},
		{"workload": "daxpy", "threads": 4, "daxpy_ws": 32 << 10, "daxpy_reps": 2,
			"strategy": "adaptive", "artifacts": map[string]bool{"metrics": true, "events": true}},
		{"workload": "daxpy", "threads": 2, "daxpy_ws": 24 << 10, "daxpy_reps": 2,
			"sim_workers": 2},
		{"workload": "daxpy", "threads": 2, "daxpy_ws": 16 << 10, "daxpy_reps": 3,
			"sim_workers": 4},
		// Scenario-matrix cells: an irregular workload on an asymmetric
		// topology under each non-default placement policy, plus one
		// mid-run migration — the declarative machine-shape plane under
		// sustained concurrent load.
		{"workload": "hashjoin", "threads": 2, "machine": "numa",
			"topology": []map[string]any{{"cpus": 1}, {"cpus": 2}}, "placement": "interleave"},
		{"workload": "spmv", "threads": 2, "machine": "numa",
			"topology": []map[string]any{{"cpus": 2}, {"cpus": 1}}, "placement": "bind", "bind_node": 1},
		{"workload": "pointerchase", "threads": 2, "machine": "numa",
			"migrate_at": 50_000, "migrate_cpu": 0, "migrate_node": 0},
	}

	const (
		clients  = 6
		scrapers = 3 // background /metricsz readers
		tailers  = 2 // background /eventsz stream followers
	)
	deadline := time.Now().Add(dur)
	var submitted, rejected, cancelledByUs, streamedEvents atomic.Int64

	// auditStream checks the telemetry contract on one followed stream:
	// strictly monotone ids and no drop gaps (event volume is far below
	// the subscriber buffer bound, so any gap is a bug, not load).
	auditStream := func(who string, events []sseEvent, comments []string) {
		var last int64
		for _, ev := range events {
			if ev.id <= last {
				t.Errorf("%s: id %d after %d — not strictly monotone", who, ev.id, last)
				return
			}
			last = ev.id
		}
		for _, c := range comments {
			if strings.Contains(c, "gap") {
				t.Errorf("%s: dropped events below the buffer bound: %s", who, c)
			}
		}
		streamedEvents.Add(int64(len(events)))
	}

	// Background load on the telemetry plane for the whole soak.
	bgCtx, stopBG := context.WithCancel(context.Background())
	var bg sync.WaitGroup
	for i := 0; i < scrapers; i++ {
		bg.Add(1)
		go func() {
			defer bg.Done()
			for bgCtx.Err() == nil {
				r, err := http.Get(ts.URL + "/metricsz")
				if err == nil {
					io.Copy(io.Discard, r.Body)
					r.Body.Close()
				}
				time.Sleep(time.Millisecond)
			}
		}()
	}
	for i := 0; i < tailers; i++ {
		bg.Add(1)
		go func(i int) {
			defer bg.Done()
			req, err := http.NewRequestWithContext(bgCtx, http.MethodGet, ts.URL+"/eventsz", nil)
			if err != nil {
				t.Error(err)
				return
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				return // soak ended before the stream opened
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("eventsz tailer %d: status %d", i, resp.StatusCode)
				return
			}
			// Reads until ctx cancellation severs the connection.
			events, comments := readSSE(t, resp.Body, nil)
			auditStream("eventsz tailer", events, comments)
		}(i)
	}

	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for iter := 0; time.Now().Before(deadline); iter++ {
				// Every 7th iteration per client submits a session that would
				// run for minutes and cancels it mid-flight — the interrupt
				// poll must stop it promptly and keep it out of the ledger.
				cancelIter := iter%7 == 3
				specIdx := (c + iter) % len(specs)
				body := specs[specIdx]
				followStream := !cancelIter && specIdx == 2 // the events-enabled spec
				if cancelIter {
					body = longSpec()
				}
				resp := postJSON(t, ts.URL+"/sessions", body)
				if resp.StatusCode == http.StatusTooManyRequests {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					rejected.Add(1)
					time.Sleep(10 * time.Millisecond)
					continue
				}
				if resp.StatusCode != http.StatusAccepted {
					b, _ := io.ReadAll(resp.Body)
					resp.Body.Close()
					t.Errorf("client %d: submit status %d: %s", c, resp.StatusCode, b)
					return
				}
				info := decodeBody[SessionInfo](t, resp)
				submitted.Add(1)
				if cancelIter {
					r := postJSON(t, ts.URL+"/sessions/"+info.ID+"/cancel", nil)
					io.Copy(io.Discard, r.Body)
					r.Body.Close()
					cancelledByUs.Add(1)
				}
				if followStream {
					// Follow the session's SSE stream to its end marker; the
					// server closes the connection when the session bus drains.
					r, err := http.Get(ts.URL + "/sessions/" + info.ID + "/events")
					if err != nil {
						t.Errorf("client %d: follow %s: %v", c, info.ID, err)
						return
					}
					if r.StatusCode != http.StatusOK {
						b, _ := io.ReadAll(r.Body)
						r.Body.Close()
						t.Errorf("client %d: follow %s: status %d: %s", c, info.ID, r.StatusCode, b)
						return
					}
					events, comments := readSSE(t, r.Body, nil)
					r.Body.Close()
					if len(events) == 0 || events[len(events)-1].kind != obs.KindEnd {
						t.Errorf("client %d: session %s stream did not end with the end marker (%d events)",
							c, info.ID, len(events))
					}
					auditStream("session follower", events, comments)
				}
				done := waitTerminal(t, ts.URL, info.ID)
				if done.State == StateFailed {
					t.Errorf("client %d: session %s failed: %s", c, info.ID, done.Error)
					return
				}
				// Occasionally read the service metrics mid-flight — the
				// endpoint shares the registry with worker goroutines.
				if iter%11 == 5 {
					r, err := http.Get(ts.URL + "/metricsz")
					if err == nil {
						io.Copy(io.Discard, r.Body)
						r.Body.Close()
					}
				}
			}
		}(c)
	}
	wg.Wait()
	stopBG()
	bg.Wait()

	// Drain and audit: the terminal-state counters must account for every
	// submitted session exactly once, with no panics.
	if err := srv.Shutdown(contextWithTimeout(t, 60*time.Second)); err != nil {
		t.Fatalf("post-soak drain: %v", err)
	}
	resp, err := http.Get(ts.URL + "/metricsz")
	if err != nil {
		t.Fatal(err)
	}
	dump := decodeBody[obs.Dump](t, resp)
	cnt := dump.Counters
	total := cnt["serve.completed"] + cnt["serve.failed"] + cnt["serve.cancelled"]
	if cnt["serve.submitted"] != submitted.Load() {
		t.Errorf("server saw %d submissions, clients made %d", cnt["serve.submitted"], submitted.Load())
	}
	if total != cnt["serve.submitted"] {
		t.Errorf("terminal states %d != submitted %d: a session leaked or double-finished (counters %v)",
			total, cnt["serve.submitted"], cnt)
	}
	if cnt["serve.panics"] != 0 {
		t.Errorf("%d worker panics during soak", cnt["serve.panics"])
	}
	if cnt["serve.failed"] != 0 {
		t.Errorf("%d failed sessions during soak (counters %v)", cnt["serve.failed"], cnt)
	}
	if n, err := srv.Ledger().Len(); err != nil || n == 0 || n > len(specs) {
		t.Errorf("ledger has %d entries (err %v), want 1..%d (one per distinct spec that completed)",
			n, err, len(specs))
	}
	t.Logf("soak: %s, %d clients: submitted=%d completed=%d cancelled=%d (client-cancels=%d) rejected429=%d ledger_hits=%d streamed_events=%d",
		dur, clients, cnt["serve.submitted"], cnt["serve.completed"], cnt["serve.cancelled"],
		cancelledByUs.Load(), rejected.Load(), cnt["serve.ledger_hits"], streamedEvents.Load())
}

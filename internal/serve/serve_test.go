package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/workload"
)

// newTestServer starts a Server behind an httptest listener. The server
// is drained at test end (with a generous deadline) so no simulation
// goroutines outlive the test.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Logf == nil {
		cfg.Logf = t.Logf
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.cancelLive() // tests may leave long sessions running deliberately
		_ = srv.Shutdown(ctx)
		ts.Close()
	})
	return srv, ts
}

func contextWithTimeout(t *testing.T, d time.Duration) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), d)
	t.Cleanup(cancel)
	return ctx
}

// shortSpec is a session that finishes in well under a second.
func shortSpec() map[string]any {
	return map[string]any{
		"workload":   "daxpy",
		"threads":    2,
		"daxpy_ws":   8 << 10,
		"daxpy_reps": 3,
	}
}

// longSpec is a session that runs for many seconds unless cancelled —
// the interrupt poll (every ~50k instructions) stops it promptly.
func longSpec() map[string]any {
	return map[string]any{
		"workload":   "daxpy",
		"threads":    2,
		"daxpy_ws":   4 << 20,
		"daxpy_reps": 50_000,
	}
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(body); err != nil {
		t.Fatalf("encode: %v", err)
	}
	resp, err := http.Post(url, "application/json", &buf)
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	return resp
}

func decodeBody[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	defer resp.Body.Close()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("decode %s response: %v", resp.Request.URL, err)
	}
	return v
}

// submit POSTs a session and requires 202.
func submit(t *testing.T, base string, body any) SessionInfo {
	t.Helper()
	resp := postJSON(t, base+"/sessions", body)
	if resp.StatusCode != http.StatusAccepted {
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("submit: status %d, body %s", resp.StatusCode, b)
	}
	return decodeBody[SessionInfo](t, resp)
}

func getInfo(t *testing.T, base, id string) SessionInfo {
	t.Helper()
	resp, err := http.Get(base + "/sessions/" + id)
	if err != nil {
		t.Fatalf("GET session: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("GET session %s: status %d, body %s", id, resp.StatusCode, b)
	}
	return decodeBody[SessionInfo](t, resp)
}

// waitFor polls the session until pred holds or the deadline passes.
func waitFor(t *testing.T, base, id string, pred func(SessionInfo) bool, what string) SessionInfo {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		info := getInfo(t, base, id)
		if pred(info) {
			return info
		}
		if time.Now().After(deadline) {
			t.Fatalf("session %s: timed out waiting for %s (state %s, err %q)", id, what, info.State, info.Error)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func waitTerminal(t *testing.T, base, id string) SessionInfo {
	t.Helper()
	return waitFor(t, base, id, func(i SessionInfo) bool { return i.State.Terminal() }, "terminal state")
}

// TestSessionLifecycle walks one session through the full API surface:
// submit, poll to completion, result document, all three artifacts,
// service metrics.
func TestSessionLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	body := shortSpec()
	body["strategy"] = "adaptive"
	body["artifacts"] = map[string]bool{"trace": true, "metrics": true, "decisions": true}

	info := submit(t, ts.URL, body)
	if info.ID == "" || info.Key == "" {
		t.Fatalf("submit response missing id/key: %+v", info)
	}
	if info.Name != "daxpy/t=2/smp/adaptive" {
		t.Fatalf("name = %q", info.Name)
	}

	done := waitTerminal(t, ts.URL, info.ID)
	if done.State != StateDone {
		t.Fatalf("state = %s (err %q), want done", done.State, done.Error)
	}
	if done.Result == nil || done.Result.Cycles <= 0 {
		t.Fatalf("missing result: %+v", done.Result)
	}
	if done.ProgressCycles != done.Result.Cycles {
		t.Errorf("final progress %d != result cycles %d", done.ProgressCycles, done.Result.Cycles)
	}
	if done.StartedAt == "" || done.DoneAt == "" {
		t.Errorf("missing timestamps: started=%q done=%q", done.StartedAt, done.DoneAt)
	}

	// Result endpoint serves the bare measurement.
	resp, err := http.Get(ts.URL + "/sessions/" + info.ID + "/result")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("GET result: %v status %d", err, resp.StatusCode)
	}
	meas := decodeBody[workload.Measurement](t, resp)
	if meas.Cycles != done.Result.Cycles {
		t.Fatalf("result endpoint cycles %d != session %d", meas.Cycles, done.Result.Cycles)
	}

	// Artifacts: trace and metrics are JSON documents, decisions is text.
	for _, kind := range []string{"trace", "metrics", "decisions"} {
		resp, err := http.Get(ts.URL + "/sessions/" + info.ID + "/artifacts/" + kind)
		if err != nil {
			t.Fatalf("GET artifact %s: %v", kind, err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("artifact %s: status %d, body %s", kind, resp.StatusCode, b)
		}
		if len(b) == 0 {
			t.Fatalf("artifact %s: empty body", kind)
		}
		if kind != "decisions" && !json.Valid(b) {
			t.Fatalf("artifact %s: invalid JSON", kind)
		}
	}
	resp, err = http.Get(ts.URL + "/sessions/" + info.ID + "/artifacts/bogus")
	if err != nil || resp.StatusCode != http.StatusNotFound {
		t.Fatalf("bogus artifact: %v status %d, want 404", err, resp.StatusCode)
	}
	resp.Body.Close()

	// Listing contains the session (without the heavy result payload).
	resp, err = http.Get(ts.URL + "/sessions")
	if err != nil {
		t.Fatalf("GET sessions: %v", err)
	}
	list := decodeBody[struct {
		Sessions []SessionInfo `json:"sessions"`
	}](t, resp)
	if len(list.Sessions) != 1 || list.Sessions[0].ID != info.ID || list.Sessions[0].Result != nil {
		t.Fatalf("listing = %+v", list.Sessions)
	}

	// Service metrics reflect the completed session.
	resp, err = http.Get(ts.URL + "/metricsz")
	if err != nil {
		t.Fatalf("GET metricsz: %v", err)
	}
	dump := decodeBody[obs.Dump](t, resp)
	if dump.Counters["serve.submitted"] != 1 || dump.Counters["serve.completed"] != 1 {
		t.Fatalf("metrics counters = %v", dump.Counters)
	}
}

// TestSessionMatchesBatchPath is the core acceptance test: a session run
// through the service produces byte-identical result and artifact
// documents to the equivalent batch (cobra-run) invocation, which builds
// its job through the same Spec.
func TestSessionMatchesBatchPath(t *testing.T) {
	spec := Spec{Workload: "daxpy", Threads: 4, Machine: "smp", Strategy: "adaptive",
		DaxpyWS: 64 << 10, DaxpyReps: 50}
	spec.Normalize()

	// Batch path: exactly what cmd/cobra-run does with the same flags.
	batchObs := obs.New(obs.Config{Trace: true, Metrics: true, Decisions: true})
	inst, err := spec.Instantiate(nil, batchObs)
	if err != nil {
		t.Fatalf("batch instantiate: %v", err)
	}
	batchMeas, err := inst.Measure()
	if err != nil {
		t.Fatalf("batch measure: %v", err)
	}
	var batchResult bytes.Buffer
	enc := json.NewEncoder(&batchResult)
	enc.SetIndent("", "  ")
	if err := enc.Encode(batchMeas); err != nil {
		t.Fatal(err)
	}
	var batchTrace, batchMetrics, batchDecisions bytes.Buffer
	if err := batchObs.Trace().WriteJSON(&batchTrace); err != nil {
		t.Fatal(err)
	}
	if err := batchObs.Metrics().WriteJSON(&batchMetrics); err != nil {
		t.Fatal(err)
	}
	if err := batchObs.Decisions().Explain(&batchDecisions); err != nil {
		t.Fatal(err)
	}

	// Service path: same spec over HTTP.
	_, ts := newTestServer(t, Config{Workers: 2})
	info := submit(t, ts.URL, map[string]any{
		"workload": spec.Workload, "threads": spec.Threads, "strategy": spec.Strategy,
		"daxpy_ws": spec.DaxpyWS, "daxpy_reps": spec.DaxpyReps,
		"artifacts": map[string]bool{"trace": true, "metrics": true, "decisions": true},
	})
	wantKey, err := spec.Key()
	if err != nil {
		t.Fatal(err)
	}
	if info.Key != wantKey {
		t.Fatalf("session key %s != batch job key %s — ledger namespaces diverged", info.Key, wantKey)
	}
	done := waitTerminal(t, ts.URL, info.ID)
	if done.State != StateDone {
		t.Fatalf("state = %s (err %q)", done.State, done.Error)
	}

	get := func(path string) []byte {
		resp, err := http.Get(ts.URL + path)
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %v status %d", path, err, resp.StatusCode)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return b
	}
	if got := get("/sessions/" + info.ID + "/result"); !bytes.Equal(got, batchResult.Bytes()) {
		t.Errorf("result document differs from batch path:\nservice: %s\nbatch:   %s", got, batchResult.Bytes())
	}
	if got := get("/sessions/" + info.ID + "/artifacts/trace"); !bytes.Equal(got, batchTrace.Bytes()) {
		t.Errorf("trace artifact differs from batch path (%d vs %d bytes)", len(got), batchTrace.Len())
	}
	if got := get("/sessions/" + info.ID + "/artifacts/metrics"); !bytes.Equal(got, batchMetrics.Bytes()) {
		t.Errorf("metrics artifact differs from batch path:\nservice: %s\nbatch:   %s", got, batchMetrics.Bytes())
	}
	if got := get("/sessions/" + info.ID + "/artifacts/decisions"); !bytes.Equal(got, batchDecisions.Bytes()) {
		t.Errorf("decision report differs from batch path (%d vs %d bytes)", len(got), batchDecisions.Len())
	}
}

// TestConcurrentClients hammers the server with parallel clients running
// distinct configurations; every session must complete with a result.
func TestConcurrentClients(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 4, QueueDepth: 32})
	const n = 8
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := map[string]any{
				"workload":   "daxpy",
				"threads":    1 + i%4,
				"daxpy_ws":   int64(8<<10) + int64(i)*1024,
				"daxpy_reps": 3,
			}
			resp := postJSON(t, ts.URL+"/sessions", body)
			if resp.StatusCode != http.StatusAccepted {
				b, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				errs <- fmt.Errorf("client %d: submit status %d: %s", i, resp.StatusCode, b)
				return
			}
			info := decodeBody[SessionInfo](t, resp)
			done := waitTerminal(t, ts.URL, info.ID)
			if done.State != StateDone || done.Result == nil {
				errs <- fmt.Errorf("client %d: state %s err %q", i, done.State, done.Error)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestBackpressureFullQueue fills the worker and the queue with
// long-running sessions; the next submission must get 429 + Retry-After
// rather than queueing unboundedly.
func TestBackpressureFullQueue(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1})

	running := submit(t, ts.URL, longSpec())
	waitFor(t, ts.URL, running.ID, func(i SessionInfo) bool { return i.State == StateRunning }, "running")
	queued := submit(t, ts.URL, longSpec())

	resp := postJSON(t, ts.URL+"/sessions", longSpec())
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third submit: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After header")
	}
	body := decodeBody[errorBody](t, resp)
	if !strings.Contains(body.Error, "queue full") {
		t.Fatalf("429 body = %q", body.Error)
	}

	// Live progress is observable while the first session runs.
	waitFor(t, ts.URL, running.ID, func(i SessionInfo) bool { return i.ProgressCycles > 0 }, "progress")

	// Cancel both; the rejected one left no record behind.
	for _, id := range []string{running.ID, queued.ID} {
		resp := postJSON(t, ts.URL+"/sessions/"+id+"/cancel", nil)
		resp.Body.Close()
		info := waitTerminal(t, ts.URL, id)
		if info.State != StateCancelled {
			t.Errorf("session %s: state %s, want cancelled", id, info.State)
		}
	}
}

// TestCancelMidRun cancels a session mid-simulation and proves the
// ledger never records it.
func TestCancelMidRun(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 1, LedgerDir: t.TempDir()})

	info := submit(t, ts.URL, longSpec())
	waitFor(t, ts.URL, info.ID, func(i SessionInfo) bool { return i.State == StateRunning && i.ProgressCycles > 0 }, "running with progress")

	resp, err := http.NewRequest(http.MethodDelete, ts.URL+"/sessions/"+info.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	r, err := http.DefaultClient.Do(resp)
	if err != nil || r.StatusCode != http.StatusAccepted {
		t.Fatalf("DELETE: %v status %d", err, r.StatusCode)
	}
	r.Body.Close()

	done := waitTerminal(t, ts.URL, info.ID)
	if done.State != StateCancelled {
		t.Fatalf("state = %s (err %q), want cancelled", done.State, done.Error)
	}
	if n, err := srv.Ledger().Len(); err != nil || n != 0 {
		t.Fatalf("ledger has %d entries (err %v) after cancelled session, want 0", n, err)
	}
	// The result endpoint reports the cancellation, not a result.
	rr, err := http.Get(ts.URL + "/sessions/" + info.ID + "/result")
	if err != nil || rr.StatusCode != http.StatusConflict {
		t.Fatalf("GET result of cancelled session: %v status %d, want 409", err, rr.StatusCode)
	}
	rr.Body.Close()
}

// TestCancelQueuedSession cancels a session that never started; it must
// reach cancelled without ever running.
func TestCancelQueuedSession(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	blocker := submit(t, ts.URL, longSpec())
	waitFor(t, ts.URL, blocker.ID, func(i SessionInfo) bool { return i.State == StateRunning }, "running")

	queued := submit(t, ts.URL, shortSpec())
	resp := postJSON(t, ts.URL+"/sessions/"+queued.ID+"/cancel", nil)
	resp.Body.Close()
	done := waitTerminal(t, ts.URL, queued.ID)
	if done.State != StateCancelled {
		t.Fatalf("queued session state = %s, want cancelled", done.State)
	}
	if done.StartedAt != "" {
		t.Fatalf("cancelled-while-queued session has StartedAt=%q, want never started", done.StartedAt)
	}

	resp = postJSON(t, ts.URL+"/sessions/"+blocker.ID+"/cancel", nil)
	resp.Body.Close()
	waitTerminal(t, ts.URL, blocker.ID)
}

// TestSessionTimeout submits a long session with a tiny timeout; it must
// fail with a timeout error rather than run forever.
func TestSessionTimeout(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	body := longSpec()
	body["timeout_ms"] = 100
	info := submit(t, ts.URL, body)
	done := waitTerminal(t, ts.URL, info.ID)
	if done.State != StateFailed || !strings.Contains(done.Error, "timeout") {
		t.Fatalf("state = %s err %q, want failed with timeout", done.State, done.Error)
	}
}

// TestRequestValidation exercises the 400 paths: malformed body, unknown
// fields, out-of-range specs. Nothing is admitted.
func TestRequestValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	cases := []struct {
		name string
		body string
	}{
		{"malformed", `{"workload": `},
		{"unknown field", `{"workload": "daxpy", "wrokload": "typo"}`},
		{"unknown workload", `{"workload": "quicksort"}`},
		{"threads too high", `{"workload": "daxpy", "threads": 64}`},
		{"negative threads", `{"workload": "daxpy", "threads": -1}`},
		{"ws too large", `{"workload": "daxpy", "daxpy_ws": 1073741824}`},
		{"ws misaligned", `{"workload": "daxpy", "daxpy_ws": 8193}`},
		{"bad strategy", `{"workload": "daxpy", "strategy": "yolo"}`},
		{"bad machine", `{"workload": "daxpy", "machine": "tpu"}`},
		{"timeout too large", `{"workload": "daxpy", "timeout_ms": 86400000}`},
		{"negative timeout", `{"workload": "daxpy", "timeout_ms": -5}`},
		{"topology on smp", `{"workload": "daxpy", "topology": [{"cpus": 2}, {"cpus": 2}]}`},
		{"topology zero-cpu node", `{"workload": "daxpy", "machine": "numa", "threads": 2, "topology": [{"cpus": 2}, {"cpus": 0}]}`},
		{"topology too few cpus", `{"workload": "daxpy", "machine": "numa", "threads": 4, "topology": [{"cpus": 1}, {"cpus": 1}]}`},
		{"topology too many cpus", `{"workload": "daxpy", "machine": "numa", "threads": 4, "topology": [{"cpus": 63}, {"cpus": 63}]}`},
		{"capacity overflow", `{"workload": "daxpy", "machine": "numa", "threads": 2, "topology": [{"cpus": 1, "mem_mb": 4}, {"cpus": 1, "mem_mb": 4}]}`},
		{"unknown placement", `{"workload": "daxpy", "machine": "numa", "placement": "random"}`},
		{"placement on smp", `{"workload": "daxpy", "placement": "interleave"}`},
		{"bind node out of range", `{"workload": "daxpy", "machine": "numa", "placement": "bind", "bind_node": 9}`},
		{"bind node without bind", `{"workload": "daxpy", "machine": "numa", "bind_node": 1}`},
		{"affinity wrong length", `{"workload": "daxpy", "threads": 2, "affinity": [0]}`},
		{"affinity duplicate cpu", `{"workload": "daxpy", "threads": 2, "affinity": [1, 1]}`},
		{"affinity cpu out of range", `{"workload": "daxpy", "threads": 2, "affinity": [0, 7]}`},
		{"migration on smp", `{"workload": "daxpy", "migrate_at": 100, "migrate_cpu": 0, "migrate_node": 0}`},
		{"migration cpu out of range", `{"workload": "daxpy", "machine": "numa", "threads": 2, "migrate_at": 100, "migrate_cpu": 5, "migrate_node": 0}`},
		{"migration without cycle", `{"workload": "daxpy", "machine": "numa", "migrate_cpu": 1}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+"/sessions", "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				b, _ := io.ReadAll(resp.Body)
				t.Fatalf("status %d, body %s, want 400", resp.StatusCode, b)
			}
		})
	}
	resp, err := http.Get(ts.URL + "/sessions")
	if err != nil {
		t.Fatal(err)
	}
	list := decodeBody[struct {
		Sessions []SessionInfo `json:"sessions"`
	}](t, resp)
	if len(list.Sessions) != 0 {
		t.Fatalf("rejected submissions left %d session records", len(list.Sessions))
	}
}

// TestShutdownDrains submits k sessions, immediately begins shutdown,
// and requires every session to reach done with its ledger entry
// persisted — the SIGTERM drain guarantee.
func TestShutdownDrains(t *testing.T) {
	ledgerDir := t.TempDir()
	srv, err := New(Config{Workers: 2, QueueDepth: 8, LedgerDir: ledgerDir, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	const k = 3
	ids := make([]string, k)
	for i := range ids {
		body := shortSpec()
		body["daxpy_ws"] = int64(16<<10) + int64(i)*1024 // distinct keys
		ids[i] = submit(t, ts.URL, body).ID
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}

	// Post-drain: all k sessions done, ledger persisted, intake closed.
	for _, id := range ids {
		info := getInfo(t, ts.URL, id)
		if info.State != StateDone {
			t.Errorf("session %s after drain: state %s (err %q), want done", id, info.State, info.Error)
		}
	}
	if n, err := srv.Ledger().Len(); err != nil || n != k {
		t.Errorf("ledger has %d entries (err %v) after drain, want %d", n, err, k)
	}
	resp := postJSON(t, ts.URL+"/sessions", shortSpec())
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("submit after shutdown: status %d, want 503", resp.StatusCode)
	}
}

// TestShutdownDeadlineCancelsInFlight proves the other half of the drain
// contract: when the deadline expires first, in-flight sessions are
// force-cancelled and still reach a terminal state.
func TestShutdownDeadlineCancelsInFlight(t *testing.T) {
	srv, err := New(Config{Workers: 1, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	info := submit(t, ts.URL, longSpec())
	waitFor(t, ts.URL, info.ID, func(i SessionInfo) bool { return i.State == StateRunning }, "running")

	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	if err := srv.Shutdown(ctx); err == nil {
		t.Fatal("Shutdown returned nil; expected deadline error with a long session in flight")
	}
	if got := getInfo(t, ts.URL, info.ID); got.State != StateCancelled {
		t.Fatalf("in-flight session after forced drain: state %s, want cancelled", got.State)
	}
}

// TestLedgerHitAnswersRepeatSession proves service sessions share the
// batch ledger namespace: the second identical session is answered from
// the ledger without re-executing.
func TestLedgerHitAnswersRepeatSession(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, LedgerDir: t.TempDir()})
	first := submit(t, ts.URL, shortSpec())
	done := waitTerminal(t, ts.URL, first.ID)
	if done.State != StateDone || done.Cached {
		t.Fatalf("first run: state %s cached %v", done.State, done.Cached)
	}

	second := submit(t, ts.URL, shortSpec())
	redone := waitTerminal(t, ts.URL, second.ID)
	if redone.State != StateDone || !redone.Cached {
		t.Fatalf("second run: state %s cached %v, want done from ledger", redone.State, redone.Cached)
	}
	if redone.Result == nil || redone.Result.Cycles != done.Result.Cycles {
		t.Fatalf("ledger-served result differs: %+v vs %+v", redone.Result, done.Result)
	}
	// Artifacts exist only for executed sessions.
	resp, err := http.Get(ts.URL + "/sessions/" + second.ID + "/artifacts/trace")
	if err != nil || resp.StatusCode != http.StatusNotFound {
		t.Fatalf("artifact of ledger-served session: %v status %d, want 404", err, resp.StatusCode)
	}
	resp.Body.Close()
}

// TestSessionRetentionEviction bounds the retained-session map: old
// finished sessions are evicted, and a store full of live sessions
// rejects with 429.
func TestSessionRetentionEviction(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 8, MaxSessions: 2})

	a := submit(t, ts.URL, shortSpec())
	waitTerminal(t, ts.URL, a.ID)
	b := submit(t, ts.URL, shortSpec())
	waitTerminal(t, ts.URL, b.ID)

	// Third submission evicts the oldest finished record (a).
	c := submit(t, ts.URL, shortSpec())
	waitTerminal(t, ts.URL, c.ID)
	resp, err := http.Get(ts.URL + "/sessions/" + a.ID)
	if err != nil || resp.StatusCode != http.StatusNotFound {
		t.Fatalf("evicted session: %v status %d, want 404", err, resp.StatusCode)
	}
	resp.Body.Close()

	// Fill the store with live sessions: further submissions get 429.
	d := submit(t, ts.URL, longSpec())
	e := submit(t, ts.URL, longSpec())
	resp = postJSON(t, ts.URL+"/sessions", longSpec())
	if resp.StatusCode != http.StatusTooManyRequests {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("submit into full live store: status %d body %s, want 429", resp.StatusCode, b)
	}
	resp.Body.Close()
	for _, id := range []string{d.ID, e.ID} {
		r := postJSON(t, ts.URL+"/sessions/"+id+"/cancel", nil)
		r.Body.Close()
		waitTerminal(t, ts.URL, id)
	}
}

// TestSessionSimWorkersByteIdentical: the same session run serially and
// under the parallel window engine returns byte-identical result
// documents and shares one ledger key. Also checks the server-wide
// Config.SimWorkers default is applied to sessions that don't set one.
func TestSessionSimWorkersByteIdentical(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, SimWorkers: 4})
	base := map[string]any{
		"workload": "daxpy", "threads": 4, "daxpy_ws": 16 << 10, "daxpy_reps": 5,
		"strategy": "adaptive",
	}
	fetch := func(extra map[string]any) (SessionInfo, []byte) {
		body := map[string]any{}
		for k, v := range base {
			body[k] = v
		}
		for k, v := range extra {
			body[k] = v
		}
		info := submit(t, ts.URL, body)
		done := waitTerminal(t, ts.URL, info.ID)
		if done.State != StateDone {
			t.Fatalf("state = %s (err %q)", done.State, done.Error)
		}
		resp, err := http.Get(ts.URL + "/sessions/" + info.ID + "/result")
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("result: %v status %d", err, resp.StatusCode)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return info, b
	}

	// sim_workers -1 opts out of the server default and forces serial.
	// (Validate rejects -1, so normalize it here the way handleSubmit
	// would have to; instead submit an explicit 1 — serial engine.)
	serialInfo, serialRes := fetch(map[string]any{"sim_workers": 1})
	for _, w := range []int{2, 8} {
		info, res := fetch(map[string]any{"sim_workers": w})
		if info.Key != serialInfo.Key {
			t.Errorf("sim_workers=%d forked the ledger key: %s != %s", w, info.Key, serialInfo.Key)
		}
		if !bytes.Equal(res, serialRes) {
			t.Errorf("sim_workers=%d result differs from serial:\nparallel: %s\nserial:   %s", w, res, serialRes)
		}
	}
	// No sim_workers in the request: the server default (4) applies, and
	// the result is still byte-identical to serial.
	defInfo, defRes := fetch(nil)
	if defInfo.Key != serialInfo.Key {
		t.Errorf("server-default sim_workers forked the ledger key")
	}
	if !bytes.Equal(defRes, serialRes) {
		t.Errorf("server-default sim_workers result differs from serial")
	}
}

// TestListFilterAndSort: GET /sessions?state=S returns only matching
// sessions, the listing is stable-sorted by submission time, and an
// unknown state filter is a 400.
func TestListFilterAndSort(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})

	list := func(query string) []SessionInfo {
		resp, err := http.Get(ts.URL + "/sessions" + query)
		if err != nil {
			t.Fatalf("GET /sessions%s: %v", query, err)
		}
		if resp.StatusCode != http.StatusOK {
			b, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			t.Fatalf("GET /sessions%s: status %d, body %s", query, resp.StatusCode, b)
		}
		return decodeBody[struct {
			Sessions []SessionInfo `json:"sessions"`
		}](t, resp).Sessions
	}
	ids := func(infos []SessionInfo) []string {
		out := make([]string, len(infos))
		for i, s := range infos {
			out[i] = s.ID
		}
		return out
	}

	// One runner occupying the single worker, two queued behind it.
	runner := submit(t, ts.URL, longSpec())
	waitFor(t, ts.URL, runner.ID, func(i SessionInfo) bool { return i.State == StateRunning }, "running")
	q1 := submit(t, ts.URL, shortSpec())
	spec2 := shortSpec()
	spec2["threads"] = 3
	q2 := submit(t, ts.URL, spec2)

	if got := ids(list("?state=running")); len(got) != 1 || got[0] != runner.ID {
		t.Fatalf("running filter = %v", got)
	}
	queued := ids(list("?state=queued"))
	if len(queued) != 2 || queued[0] != q1.ID || queued[1] != q2.ID {
		t.Fatalf("queued filter = %v, want [%s %s] in submission order", queued, q1.ID, q2.ID)
	}
	if all := ids(list("")); len(all) != 3 || all[0] != runner.ID || all[1] != q1.ID || all[2] != q2.ID {
		t.Fatalf("unfiltered listing = %v, want submission order", all)
	}

	resp, err := http.Get(ts.URL + "/sessions?state=bogus")
	if err != nil || resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bogus filter: %v status %d, want 400", err, resp.StatusCode)
	}
	body := decodeBody[errorBody](t, resp)
	if !strings.Contains(body.Error, "queued") {
		t.Fatalf("400 body does not list valid states: %q", body.Error)
	}

	// Drive everything terminal and check the terminal filters.
	cancel := postJSON(t, ts.URL+"/sessions/"+runner.ID+"/cancel", nil)
	cancel.Body.Close()
	for _, id := range []string{runner.ID, q1.ID, q2.ID} {
		waitTerminal(t, ts.URL, id)
	}
	if got := ids(list("?state=cancelled")); len(got) != 1 || got[0] != runner.ID {
		t.Fatalf("cancelled filter = %v", got)
	}
	done := ids(list("?state=done"))
	if len(done) != 2 || done[0] != q1.ID || done[1] != q2.ID {
		t.Fatalf("done filter = %v, want [%s %s]", done, q1.ID, q2.ID)
	}
	if got := ids(list("?state=failed")); len(got) != 0 {
		t.Fatalf("failed filter = %v, want empty", got)
	}
}

// Package serve is the cobrad optimization service: an HTTP front end
// that accepts optimization-session requests (workload × machine ×
// strategy × scale), runs them as cancellable sessions on a shared
// internal/sched pool — each session executing on its own machine
// instance with an ia64.Image cloned from a shared workload.BuildCache —
// and exposes results, live progress and internal/obs artifacts over
// JSON endpoints.
//
// Production hardening is part of the contract, not an afterthought:
//
//   - The session queue is bounded; a full queue answers 429 with
//     Retry-After instead of growing without bound.
//   - Every session carries a context with a wall-clock timeout and can
//     be cancelled while queued or mid-simulation (via the machine
//     interrupt poll); the run ledger never records a cancelled session.
//   - Requests are validated against explicit bounds before any memory
//     is committed.
//   - Workers are panic-isolated: a session that panics fails alone.
//   - Shutdown drains running sessions, persists their ledger entries,
//     and force-cancels only when the drain deadline expires.
//
// The batch CLI (cmd/cobra-run) builds its job through the same Spec
// type, so a session served by cobrad is byte-identical — result and
// artifacts — to the equivalent batch invocation, and the two share one
// run-ledger namespace.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/workload"
)

// Config configures a Server. The zero value is a sensible single-host
// deployment: GOMAXPROCS workers, a 2×workers queue, 2-minute default /
// 10-minute maximum session timeouts, no persistent ledger.
type Config struct {
	// Workers is the session worker-pool size; <= 0 means GOMAXPROCS.
	Workers int
	// QueueDepth bounds submitted-but-unstarted sessions; <= 0 means
	// 2×Workers. A full queue rejects submissions with 429.
	QueueDepth int
	// DefaultTimeout bounds a session that does not request a timeout
	// (0 = 2m). MaxTimeout caps what a request may ask for (0 = 10m).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// LedgerDir, when non-empty, opens a persistent run ledger there:
	// sessions whose content hash is recorded are answered from it, and
	// completed sessions are recorded for future runs — the same
	// namespace cobra-run -incremental uses.
	LedgerDir string
	// MaxSessions bounds retained session records (<= 0 means 1024).
	// Oldest finished sessions are evicted first; if every retained
	// session is still live, submissions are rejected with 429 — the
	// memory guard that keeps a hammered server from growing without
	// bound.
	MaxSessions int
	// SimWorkers is the default sim_workers for sessions that do not set
	// one: the simulator's parallel window engine worker count. Results
	// and ledger keys are identical at any value, so operators can turn
	// it on fleet-wide without invalidating recorded measurements.
	SimWorkers int
	// StreamSubscribers bounds concurrent SSE subscribers on the
	// server-wide /eventsz stream and on each session's event stream
	// (<= 0 means obs.DefaultBusSubscribers). The bound is what keeps a
	// subscriber stampede from holding goroutines: excess subscribers
	// are answered 429, and every admitted one reads from its own
	// bounded ring, so no reader can back-pressure a simulation.
	StreamSubscribers int
	// Logf receives service diagnostics (nil discards).
	Logf func(format string, args ...any)
}

// Server is the cobrad service core. It is an http.Handler; cmd/cobrad
// mounts it on an http.Server and wires OS signals to Shutdown.
type Server struct {
	cfg    Config
	pool   *sched.Pool[workload.Measurement]
	ledger *sched.Ledger
	cache  *workload.BuildCache
	mux    *http.ServeMux

	mu       sync.Mutex
	sessions map[string]*session
	order    []string // session ids in submission order
	nextID   int64

	// metricsMu guards the registry: obs.Registry is single-goroutine by
	// design (one per machine instance); the service shares one across
	// HTTP and worker goroutines, so every touch goes through the lock.
	// lastServe (same lock) is the counter baseline of the previous
	// KindServe bus event, so /eventsz carries deltas, not levels.
	metricsMu sync.Mutex
	metrics   *obs.Registry
	lastServe map[string]int64

	// bus is the server-wide event plane behind GET /eventsz:
	// admissions, session state changes and serve.* counter deltas. The
	// bus locks internally and its publishers never block, so HTTP
	// handlers and worker callbacks publish directly.
	bus *obs.EventBus

	draining atomic.Bool
}

// New builds and starts a server (its worker pool starts immediately).
func New(cfg Config) (*Server, error) {
	if cfg.DefaultTimeout <= 0 {
		cfg.DefaultTimeout = 2 * time.Minute
	}
	if cfg.MaxTimeout <= 0 {
		cfg.MaxTimeout = 10 * time.Minute
	}
	if cfg.MaxSessions <= 0 {
		cfg.MaxSessions = 1024
	}
	s := &Server{
		cfg:       cfg,
		cache:     workload.NewBuildCache(),
		sessions:  map[string]*session{},
		metrics:   obs.NewRegistry(),
		lastServe: map[string]int64{},
		bus:       obs.NewEventBus(0, cfg.StreamSubscribers),
	}
	if cfg.LedgerDir != "" {
		led, err := sched.OpenLedger(cfg.LedgerDir)
		if err != nil {
			return nil, err
		}
		s.ledger = led
	}
	s.pool = sched.NewPool[workload.Measurement](sched.PoolOptions{
		Workers:    cfg.Workers,
		QueueDepth: cfg.QueueDepth,
		Ledger:     s.ledger,
		Logf:       s.logf,
	})
	s.routes()
	return s, nil
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// metric runs fn with the metrics registry under its lock.
func (s *Server) metric(fn func(r *obs.Registry)) {
	s.metricsMu.Lock()
	defer s.metricsMu.Unlock()
	fn(s.metrics)
}

func (s *Server) routes() {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metricsz", s.handleMetricsz)
	mux.HandleFunc("GET /eventsz", s.handleEventsz)
	mux.HandleFunc("POST /sessions", s.handleSubmit)
	mux.HandleFunc("GET /sessions", s.handleList)
	mux.HandleFunc("GET /sessions/{id}", s.handleGet)
	mux.HandleFunc("GET /sessions/{id}/result", s.handleResult)
	mux.HandleFunc("GET /sessions/{id}/events", s.handleSessionEvents)
	mux.HandleFunc("POST /sessions/{id}/cancel", s.handleCancel)
	mux.HandleFunc("DELETE /sessions/{id}", s.handleCancel)
	mux.HandleFunc("GET /sessions/{id}/artifacts/{kind}", s.handleArtifact)
	s.mux = mux
}

// ServeHTTP makes the server mountable directly.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

type errorBody struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorBody{Error: fmt.Sprintf(format, args...)})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	state := "ok"
	if s.draining.Load() {
		state = "draining"
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": state})
}

func (s *Server) handleMetricsz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	retained := len(s.sessions)
	s.mu.Unlock()
	s.metricsMu.Lock()
	s.metrics.Gauge("serve.queue_depth").Set(float64(s.pool.QueueLen()))
	s.metrics.Gauge("serve.running").Set(float64(s.pool.Running()))
	s.metrics.Gauge("serve.sessions_retained").Set(float64(retained))
	hits, misses := s.cache.Stats()
	s.metrics.Gauge("serve.build_cache_hits").Set(float64(hits))
	s.metrics.Gauge("serve.build_cache_misses").Set(float64(misses))
	d := s.metrics.Dump()
	s.metricsMu.Unlock()
	writeJSON(w, http.StatusOK, d)
}

// handleSubmit is POST /sessions: validate, admit, enqueue.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "server is draining; not accepting sessions")
		return
	}
	var req SubmitRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.metric(func(m *obs.Registry) { m.Counter("serve.rejected_invalid").Inc() })
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if req.Spec.SimWorkers == 0 {
		req.Spec.SimWorkers = s.cfg.SimWorkers
	}
	req.Spec.Normalize()
	if err := req.Spec.Validate(); err != nil {
		s.metric(func(m *obs.Registry) { m.Counter("serve.rejected_invalid").Inc() })
		writeError(w, http.StatusBadRequest, "invalid spec: %v", err)
		return
	}
	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMS != 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
		if timeout <= 0 || timeout > s.cfg.MaxTimeout {
			s.metric(func(m *obs.Registry) { m.Counter("serve.rejected_invalid").Inc() })
			writeError(w, http.StatusBadRequest, "timeout_ms %d out of range (0, %d]", req.TimeoutMS, s.cfg.MaxTimeout.Milliseconds())
			return
		}
	}
	key, err := req.Spec.Key()
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid spec: %v", err)
		return
	}

	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	sess := &session{
		spec:     req.Spec,
		key:      key,
		name:     req.Spec.Name(),
		artifact: req.Artifacts,
		observer: req.Artifacts.observer(),
		ctx:      ctx,
		cancel:   cancel,
		created:  time.Now(),
		state:    StateQueued,
	}

	if !s.admit(sess) {
		cancel()
		s.metric(func(m *obs.Registry) { m.Counter("serve.rejected_retained_full").Inc() })
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "session store full (%d live sessions retained); retry later", s.cfg.MaxSessions)
		return
	}

	err = s.pool.Submit(ctx, s.sessionJob(sess), func(res sched.Result[workload.Measurement]) {
		s.finishSession(sess, res)
	})
	if err != nil {
		s.forget(sess.id)
		cancel()
		switch {
		case errors.Is(err, sched.ErrQueueFull):
			s.metric(func(m *obs.Registry) { m.Counter("serve.rejected_queue_full").Inc() })
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, "session queue full (%d queued, %d running); retry later",
				s.pool.QueueLen(), s.pool.Running())
		case errors.Is(err, sched.ErrPoolClosed):
			writeError(w, http.StatusServiceUnavailable, "server is draining; not accepting sessions")
		default:
			writeError(w, http.StatusInternalServerError, "submit: %v", err)
		}
		return
	}
	// A cancelled or expired session that is still queued would otherwise
	// stay "queued" until a worker dequeues it (possibly much later on a
	// wedged pool). Finish it eagerly; the terminal-state guard in
	// finishSession makes this race-safe against the worker's callback.
	context.AfterFunc(ctx, func() {
		if sess.stateNow() == StateQueued {
			s.finishSession(sess, sched.Result[workload.Measurement]{Err: ctx.Err()})
		}
	})
	s.metric(func(m *obs.Registry) { m.Counter("serve.submitted").Inc() })
	s.publishSession(sess, StateQueued)
	writeJSON(w, http.StatusAccepted, sess.info())
}

// SessionEvent is the obs.KindSession payload on the /eventsz stream:
// one event per session state change, with the instantaneous queue
// depth and running count attached.
type SessionEvent struct {
	ID         string `json:"id"`
	Name       string `json:"name"`
	Key        string `json:"key"`
	State      State  `json:"state"`
	Cached     bool   `json:"cached,omitempty"`
	Error      string `json:"error,omitempty"`
	QueueDepth int    `json:"queue_depth"`
	Running    int    `json:"running"`
}

// ServeEvent is the obs.KindServe payload: serve.* counter deltas since
// the previous ServeEvent — the streaming form of diffing consecutive
// /metricsz scrapes.
type ServeEvent struct {
	CounterDeltas map[string]int64 `json:"counter_deltas,omitempty"`
	QueueDepth    int              `json:"queue_depth"`
	Running       int              `json:"running"`
}

// publishSession emits a session state change (and any accumulated
// serve.* counter deltas) onto the server-wide bus.
func (s *Server) publishSession(sess *session, state State) {
	queued, running := s.pool.QueueLen(), s.pool.Running()
	ev := SessionEvent{
		ID: sess.id, Name: sess.name, Key: sess.key, State: state,
		QueueDepth: queued, Running: running,
	}
	if state.Terminal() {
		sess.mu.Lock()
		ev.Cached, ev.Error = sess.cached, sess.errMsg
		sess.mu.Unlock()
	}
	s.bus.Publish(obs.KindSession, 0, ev)

	s.metricsMu.Lock()
	var deltas map[string]int64
	for _, name := range s.metrics.CounterNames() {
		if !strings.HasPrefix(name, "serve.") {
			continue
		}
		v := s.metrics.Counter(name).Value()
		if d := v - s.lastServe[name]; d != 0 {
			if deltas == nil {
				deltas = map[string]int64{}
			}
			deltas[name] = d
			s.lastServe[name] = v
		}
	}
	s.metricsMu.Unlock()
	if deltas != nil {
		s.bus.Publish(obs.KindServe, 0, ServeEvent{
			CounterDeltas: deltas, QueueDepth: queued, Running: running,
		})
	}
}

// sessionJob builds the scheduler job executing one session. The job key
// is the spec's content hash, so a ledger-backed server answers repeated
// configurations from the recorded measurement exactly like
// cobra-run -incremental.
func (s *Server) sessionJob(sess *session) sched.Job[workload.Measurement] {
	return sched.Job[workload.Measurement]{
		Key:  sess.key,
		Name: sess.name,
		RunCtx: func(ctx context.Context) (workload.Measurement, error) {
			sess.setRunning(time.Now())
			s.publishSession(sess, StateRunning)
			inst, err := sess.spec.Instantiate(s.cache, sess.observer)
			if err != nil {
				return workload.Measurement{}, err
			}
			m := inst.Ctx.M
			// The interrupt poll is the cancellation path into the
			// simulator and the live-progress feed out of it: it reads
			// the global cycle for status requests and aborts the run
			// when the session context dies. It never mutates simulation
			// state, so artifacts stay byte-identical to a batch run.
			m.SetInterrupt(func() error {
				sess.progressCycles.Store(m.GlobalCycle())
				return ctx.Err()
			}, 0)
			meas, err := inst.Measure()
			if err == nil {
				sess.progressCycles.Store(meas.Cycles)
			}
			return meas, err
		},
	}
}

// finishSession maps a scheduler result onto the session record.
func (s *Server) finishSession(sess *session, res sched.Result[workload.Measurement]) {
	defer sess.cancel()
	now := time.Now()
	var pe *sched.PanicError
	sess.mu.Lock()
	if sess.state.Terminal() {
		// Already finished by the other path (eager queued-cancellation vs
		// worker callback) — first writer wins, and wins exactly once.
		sess.mu.Unlock()
		return
	}
	sess.finished = now
	switch {
	case res.Cached:
		v := res.Value
		sess.state = StateDone
		sess.cached = true
		sess.result = &v
		sess.progressCycles.Store(v.Cycles)
	case res.Err == nil:
		v := res.Value
		sess.state = StateDone
		sess.result = &v
	case errors.Is(res.Err, context.Canceled):
		sess.state = StateCancelled
		sess.errMsg = "session cancelled"
	case errors.Is(res.Err, context.DeadlineExceeded):
		sess.state = StateFailed
		sess.errMsg = fmt.Sprintf("session timeout exceeded: %v", res.Err)
	case errors.As(res.Err, &pe):
		sess.state = StateFailed
		sess.errMsg = fmt.Sprintf("internal error: %v", pe)
	default:
		sess.state = StateFailed
		sess.errMsg = res.Err.Error()
	}
	state := sess.state
	sess.mu.Unlock()

	s.metric(func(m *obs.Registry) {
		switch state {
		case StateDone:
			m.Counter("serve.completed").Inc()
			if res.Cached {
				m.Counter("serve.ledger_hits").Inc()
			} else {
				m.Histogram("serve.session_cycles").Observe(float64(res.Value.Cycles))
				m.Histogram("serve.session_wall_ms").Observe(float64(res.Elapsed.Milliseconds()))
			}
		case StateCancelled:
			m.Counter("serve.cancelled").Inc()
		case StateFailed:
			m.Counter("serve.failed").Inc()
			if pe != nil {
				m.Counter("serve.panics").Inc()
			}
		}
	})
	if pe != nil {
		s.logf("serve: session %s panicked: %v\n%s", sess.id, pe.Value, pe.Stack)
	}
	// Terminate the session's live stream: subscribers receive every
	// buffered event, then the end marker, then ErrBusClosed. Closing
	// here (the single place every session reaches exactly once) is what
	// lets stream followers treat "end" as the completeness signal.
	if b := sess.observer.Bus(); b != nil {
		b.Publish(obs.KindEnd, 0, EndEvent{State: state, Error: sess.errNow()})
		b.Close()
	}
	s.publishSession(sess, state)
}

// EndEvent is the obs.KindEnd payload closing a session stream.
type EndEvent struct {
	State State  `json:"state"`
	Error string `json:"error,omitempty"`
}

// admit registers the session under a fresh id, evicting the oldest
// finished sessions beyond the retention bound. It refuses (false) only
// when the store is full of live sessions.
func (s *Server) admit(sess *session) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.sessions) >= s.cfg.MaxSessions {
		evicted := false
		for i := 0; i < len(s.order) && len(s.sessions) >= s.cfg.MaxSessions; i++ {
			id := s.order[i]
			old, ok := s.sessions[id]
			if !ok || !old.stateNow().Terminal() {
				continue
			}
			delete(s.sessions, id)
			s.order = append(s.order[:i], s.order[i+1:]...)
			i--
			evicted = true
		}
		if !evicted && len(s.sessions) >= s.cfg.MaxSessions {
			return false
		}
	}
	s.nextID++
	sess.id = fmt.Sprintf("s-%06d", s.nextID)
	s.sessions[sess.id] = sess
	s.order = append(s.order, sess.id)
	return true
}

// forget drops a session that never made it into the pool.
func (s *Server) forget(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.sessions, id)
	for i, oid := range s.order {
		if oid == id {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
}

func (s *Server) lookup(id string) (*session, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sess, ok := s.sessions[id]
	return sess, ok
}

// handleList is GET /sessions[?state=...]: every retained session, in a
// stable submission-time order so a dashboard poller sees a steady list,
// optionally filtered to one lifecycle state.
func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	var filter State
	if q := r.URL.Query().Get("state"); q != "" {
		filter = State(q)
		switch filter {
		case StateQueued, StateRunning, StateDone, StateFailed, StateCancelled:
		default:
			writeError(w, http.StatusBadRequest,
				"unknown state %q (want queued, running, done, failed or cancelled)", q)
			return
		}
	}
	s.mu.Lock()
	sessions := make([]*session, 0, len(s.order))
	for _, id := range s.order {
		if sess, ok := s.sessions[id]; ok {
			sessions = append(sessions, sess)
		}
	}
	s.mu.Unlock()
	infos := make([]SessionInfo, 0, len(sessions))
	for _, sess := range sessions {
		info := sess.info()
		if filter != "" && info.State != filter {
			continue
		}
		info.Result = nil // keep the listing light; fetch one session for its result
		infos = append(infos, info)
	}
	// s.order is already submission order, but make the contract explicit
	// (and robust against future eviction reshuffles): stable sort by
	// creation time, tie-broken by id.
	sort.SliceStable(infos, func(i, j int) bool {
		if infos[i].CreatedAt != infos[j].CreatedAt {
			return infos[i].CreatedAt < infos[j].CreatedAt
		}
		return infos[i].ID < infos[j].ID
	})
	writeJSON(w, http.StatusOK, map[string]any{"sessions": infos})
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no session %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, sess.info())
}

// handleResult serves the bare Measurement JSON — the document that is
// byte-compared against the batch CLI path in the e2e suite.
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no session %q", r.PathValue("id"))
		return
	}
	info := sess.info()
	switch {
	case info.Result != nil:
		writeJSON(w, http.StatusOK, info.Result)
	case info.State.Terminal():
		writeError(w, http.StatusConflict, "session %s %s: %s", info.ID, info.State, info.Error)
	default:
		writeError(w, http.StatusConflict, "session %s still %s", info.ID, info.State)
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no session %q", r.PathValue("id"))
		return
	}
	sess.cancel()
	writeJSON(w, http.StatusAccepted, map[string]string{"id": sess.id, "status": "cancellation requested"})
}

// handleArtifact serves one in-memory observability artifact of a
// terminal session: trace (Chrome trace_event JSON), metrics (registry
// dump) or decisions (Explain report, text).
func (s *Server) handleArtifact(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no session %q", r.PathValue("id"))
		return
	}
	info := sess.info()
	if !info.State.Terminal() {
		writeError(w, http.StatusConflict, "session %s still %s; artifacts are available once it finishes", info.ID, info.State)
		return
	}
	if info.Cached {
		writeError(w, http.StatusNotFound, "session %s was answered from the run ledger; artifacts exist only for executed sessions", info.ID)
		return
	}
	kind := r.PathValue("kind")
	o := sess.observer
	switch kind {
	case "trace":
		if o.Trace() == nil {
			writeError(w, http.StatusNotFound, "session %s did not request a trace artifact", info.ID)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = o.Trace().WriteJSON(w)
	case "metrics":
		if o.Metrics() == nil {
			writeError(w, http.StatusNotFound, "session %s did not request a metrics artifact", info.ID)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = o.Metrics().WriteJSON(w)
	case "decisions":
		if o.Decisions() == nil {
			writeError(w, http.StatusNotFound, "session %s did not request a decision log", info.ID)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = o.Decisions().Explain(w)
	default:
		writeError(w, http.StatusNotFound, "unknown artifact %q (want trace, metrics or decisions)", kind)
	}
}

// Shutdown drains the service: intake stops (submissions answer 503),
// queued and running sessions execute to completion with their ledger
// entries persisted, and every session record reaches a terminal state
// before Shutdown returns. If ctx expires first, the remaining sessions
// are force-cancelled (their interrupt polls abort the simulations) and
// Shutdown waits for the workers to unwind before returning ctx's error.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	err := s.pool.Shutdown(ctx)
	if err != nil {
		// Deadline expired mid-drain: cancel everything still live and
		// wait for the workers — the interrupt poll guarantees prompt
		// unwinding, and finishSession still runs for each, so no session
		// is left in a non-terminal state.
		s.cancelLive()
		s.pool.Wait()
	}
	// Every session is terminal now; end the server-wide stream so
	// /eventsz followers unblock instead of waiting out their heartbeat.
	s.bus.Publish(obs.KindEnd, 0, nil)
	s.bus.Close()
	s.logf("serve: drained (%s)", s.drainSummary())
	return err
}

// cancelLive cancels every non-terminal session's context.
func (s *Server) cancelLive() {
	s.mu.Lock()
	live := make([]*session, 0)
	for _, sess := range s.sessions {
		if !sess.stateNow().Terminal() {
			live = append(live, sess)
		}
	}
	s.mu.Unlock()
	for _, sess := range live {
		sess.cancel()
	}
}

func (s *Server) drainSummary() string {
	s.metricsMu.Lock()
	defer s.metricsMu.Unlock()
	parts := []string{}
	for _, name := range []string{"serve.submitted", "serve.completed", "serve.failed", "serve.cancelled"} {
		parts = append(parts, fmt.Sprintf("%s=%d", strings.TrimPrefix(name, "serve."), s.metrics.Counter(name).Value()))
	}
	return strings.Join(parts, " ")
}

// Ledger exposes the server's run ledger (nil when not configured) —
// used by cmd/cobrad logging and the e2e suite.
func (s *Server) Ledger() *sched.Ledger { return s.ledger }

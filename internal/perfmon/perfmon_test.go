package perfmon

import (
	"testing"

	"repro/internal/hpm"
	"repro/internal/ia64"
	"repro/internal/machine"
)

// loopImage builds a long counted loop with a load per iteration.
func loopImage(iters int64) (*ia64.Image, int) {
	img := ia64.NewImage()
	a := ia64.NewAsm(img, "work")
	a.Emit(ia64.Instr{Op: ia64.OpMovToLCI, Imm: iters})
	a.Label("top")
	a.Emit(ia64.Instr{Op: ia64.OpLd, R1: 9, R2: 8})
	a.Emit(ia64.Instr{Op: ia64.OpAddI, R1: 8, R2: 8, Imm: 8})
	a.Br(ia64.BrCloop, 0, "top")
	a.Emit(ia64.Instr{Op: ia64.OpHalt})
	entry, err := a.Close()
	if err != nil {
		panic(err)
	}
	return img, entry
}

func testSetup(t *testing.T, iters int64, cfg Config) (*machine.Machine, *Driver, int) {
	t.Helper()
	img, entry := loopImage(iters)
	mcfg := machine.DefaultConfig(2)
	mcfg.Mem.MemBytes = 32 << 20
	m, err := machine.New(mcfg, img)
	if err != nil {
		t.Fatal(err)
	}
	d := NewDriver(cfg, m)
	return m, d, entry
}

func TestSamplesDelivered(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CyclePeriod = 1000
	m, d, entry := testSetup(t, 5000, cfg)

	var got []Sample
	d.Attach(0, func(s Sample) { got = append(got, s) })

	base := m.Memory().MustAlloc("a", 8*8192, 128)
	m.StartThread(0, entry, 7, func(rf *ia64.RegFile) { rf.SetGR(8, int64(base)) })
	if _, err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 {
		t.Fatal("no samples delivered")
	}
	s := got[0]
	if s.CPU != 0 || s.ThreadID != 7 || s.PID != cfg.PID {
		t.Fatalf("sample ids = %+v", s)
	}
	if s.PC < entry || s.PC > entry+8 {
		t.Fatalf("sample PC %d outside loop [%d,%d]", s.PC, entry, entry+8)
	}
	if s.Counters[0].Event != hpm.EvCPUCycles {
		t.Fatalf("slot 0 event = %v", s.Counters[0].Event)
	}
	// Sample indices increase monotonically.
	for i := 1; i < len(got); i++ {
		if got[i].Index <= got[i-1].Index {
			t.Fatal("sample indices not monotonic")
		}
	}
	if d.KSBLen() != len(got) {
		t.Fatalf("KSB has %d samples, handlers saw %d", d.KSBLen(), len(got))
	}
}

func TestSamplingChargesOverhead(t *testing.T) {
	run := func(overhead int64) int64 {
		cfg := DefaultConfig()
		cfg.CyclePeriod = 500
		cfg.SampleOverhead = overhead
		m, d, entry := testSetup(t, 20000, cfg)
		d.Attach(0, func(Sample) {})
		base := m.Memory().MustAlloc("a", 8*32768, 128)
		m.StartThread(0, entry, 1, func(rf *ia64.RegFile) { rf.SetGR(8, int64(base)) })
		if _, err := m.Run(0); err != nil {
			t.Fatal(err)
		}
		return m.CPU(0).Cycle
	}
	free := run(0)
	costly := run(500)
	if costly <= free {
		t.Fatalf("sampling overhead invisible: %d vs %d cycles", costly, free)
	}
}

func TestUnmonitoredCPUStillSamplesToKSB(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CyclePeriod = 1000
	m, d, entry := testSetup(t, 3000, cfg)
	// No handler attached: samples must still land in the KSB.
	base := m.Memory().MustAlloc("a", 8*8192, 128)
	m.StartThread(0, entry, 1, func(rf *ia64.RegFile) { rf.SetGR(8, int64(base)) })
	if _, err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	if d.KSBLen() == 0 {
		t.Fatal("KSB empty without handler")
	}
	drained := d.DrainKSB()
	if len(drained) == 0 || d.KSBLen() != 0 {
		t.Fatal("DrainKSB did not drain")
	}
}

func TestBTBInSamples(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CyclePeriod = 2000
	m, d, entry := testSetup(t, 10000, cfg)
	var last Sample
	d.Attach(0, func(s Sample) { last = s })
	base := m.Memory().MustAlloc("a", 8*16384, 128)
	m.StartThread(0, entry, 1, func(rf *ia64.RegFile) { rf.SetGR(8, int64(base)) })
	if _, err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(last.BTB) != hpm.BTBEntries {
		t.Fatalf("BTB entries in sample = %d, want %d", len(last.BTB), hpm.BTBEntries)
	}
	// All BTB entries point at the loop: backward branch to entry+1.
	for _, e := range last.BTB {
		if e.TargetPC != entry+1 {
			t.Fatalf("BTB target %d, want %d", e.TargetPC, entry+1)
		}
	}
}

func TestDetach(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CyclePeriod = 500
	m, d, entry := testSetup(t, 5000, cfg)
	n := 0
	d.Attach(0, func(Sample) { n++ })
	d.Detach(0)
	base := m.Memory().MustAlloc("a", 8*8192, 128)
	m.StartThread(0, entry, 1, func(rf *ia64.RegFile) { rf.SetGR(8, int64(base)) })
	if _, err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("detached handler received %d samples", n)
	}
}

func TestDriverString(t *testing.T) {
	_, d, _ := testSetup(t, 1, DefaultConfig())
	if d.String() == "" {
		t.Fatal("empty driver description")
	}
}

// Package perfmon models the perfmon sampling kernel driver of the paper
// (§3): it programs each CPU's PMU for overflow-driven sampling, and on
// every overflow captures a sample record — PC, process/thread/CPU ids, the
// four performance counters, the eight BTB addresses (four branch/target
// pairs) and the latest DEAR capture — into a Kernel Sampling Buffer, then
// notifies the registered monitoring thread, which copies the record into
// its User Sampling Buffer.
//
// The sampling interrupt plus copy costs simulated time: each delivered
// sample charges the sampled CPU a configurable overhead, so COBRA's
// monitoring cost is visible in the measured execution times, as it is on
// real hardware.
package perfmon

import (
	"fmt"

	"repro/internal/hpm"
	"repro/internal/obs"
)

// Sample is one sampling-driver record (paper §3.1: "Each sample consists
// of a sample index, PC address, process ID, thread ID, processor ID, four
// performance counters, eight BTB entries, data cache miss instruction
// address, miss latency, and miss data cache line address").
type Sample struct {
	Index    int64
	PC       int
	PID      int
	ThreadID int
	CPU      int
	Cycle    int64

	Counters [hpm.NumCounters]hpm.Counter
	BTB      []hpm.BranchPair
	DEAR     hpm.DEARSample
}

// Context is the view of the machine the driver needs: the architectural
// state it snapshots into samples and the clock it charges overhead to.
// *machine.Machine satisfies it.
type Context interface {
	NumCPUs() int
	PMU(cpu int) *hpm.PMU
	SamplePC(cpu int) int
	SampleThreadID(cpu int) int
	SampleCycle(cpu int) int64
	ChargeCycles(cpu int, n int64)
}

// Handler receives samples for one monitored CPU — COBRA attaches one
// monitoring thread per working thread here.
type Handler func(Sample)

// Config controls the sampling setup.
type Config struct {
	// CyclePeriod is the CPU_CYCLES overflow sampling period. Larger
	// periods lower overhead and profile resolution together (§3.1: BTB
	// profiles keep overhead low even at modest rates).
	CyclePeriod int64
	// DEARMinLatency is the DEAR latency filter in cycles.
	DEARMinLatency int64
	// DEAREvery decimates qualifying DEAR captures.
	DEAREvery int64
	// SampleOverhead cycles charged to the CPU per delivered sample.
	SampleOverhead int64
	// PID stamped into samples.
	PID int
}

// DefaultConfig returns the sampling configuration used by the COBRA
// runtime: cycle-based sampling with a DEAR filter just above the L3 hit
// latency (first-level filter of §4).
func DefaultConfig() Config {
	return Config{
		CyclePeriod:    20000,
		DEARMinLatency: 13, // drop loads satisfied by L3 hits (12 cycles)
		DEAREvery:      1,
		SampleOverhead: 200,
		PID:            1,
	}
}

// Driver is the sampling driver instance for one machine.
type Driver struct {
	cfg      Config
	ctx      Context
	ksb      []Sample // kernel sampling buffer (shared memory area)
	ksbCap   int
	handlers []Handler
	nextIdx  int64
	dropped  int64

	// Observability: sampleTrace is non-nil only when per-sample instants
	// were explicitly enabled (they are dense — one event per delivered
	// sample); the counters are nil-safe and track delivery and overflow.
	sampleTrace *obs.Tracer
	cSamples    *obs.Counter
	cKSBDropped *obs.Counter
}

// NewDriver initializes sampling on every CPU of ctx. The four counters
// are programmed as: 0=CPU_CYCLES (sampling), 1=L2_MISSES,
// 2=IA64_INST_RETIRED, 3=BUS_COHERENT_SNOOPS (RD_HITM +
// RD_INVAL_ALL_HITM via unit mask) — the mix COBRA's trigger and
// patch-evaluation metrics need simultaneously.
func NewDriver(cfg Config, ctx Context) *Driver {
	if cfg.CyclePeriod <= 0 {
		cfg.CyclePeriod = DefaultConfig().CyclePeriod
	}
	d := &Driver{cfg: cfg, ctx: ctx, ksbCap: 1 << 16}
	d.handlers = make([]Handler, ctx.NumCPUs())
	for cpu := 0; cpu < ctx.NumCPUs(); cpu++ {
		pmu := ctx.PMU(cpu)
		pmu.Program(0, hpm.EvCPUCycles, cfg.CyclePeriod)
		pmu.Program(1, hpm.EvL2Misses, 0)
		pmu.Program(2, hpm.EvInstRetired, 0)
		pmu.Program(3, hpm.EvBusCoherent, 0)
		pmu.SetDEARFilter(cfg.DEARMinLatency, max64(cfg.DEAREvery, 1))
		cpu := cpu
		pmu.SetOverflowHandler(func(slot int, ev hpm.Event) {
			if ev == hpm.EvCPUCycles {
				d.capture(cpu)
			}
		})
	}
	return d
}

// SetObserver attaches an observability sink (nil detaches): delivered
// and dropped sample counts go to the metrics registry, and — only when
// the observer was built with SampleEvents — one instant event per
// delivered sample goes to the tracer, on the sampled CPU's track.
func (d *Driver) SetObserver(o *obs.Observer) {
	d.sampleTrace = o.SampleTrace()
	reg := o.Metrics()
	d.cSamples = reg.Counter("perfmon.samples")
	d.cKSBDropped = reg.Counter("perfmon.ksb_dropped")
}

// Attach registers the monitoring-thread handler for cpu (one monitoring
// thread per working thread, created when the working thread forks).
func (d *Driver) Attach(cpu int, h Handler) {
	d.handlers[cpu] = h
}

// Detach removes the handler for cpu.
func (d *Driver) Detach(cpu int) { d.handlers[cpu] = nil }

// capture snapshots the PMU state of cpu into the KSB and signals the
// monitoring thread.
func (d *Driver) capture(cpu int) {
	pmu := d.ctx.PMU(cpu)
	s := Sample{
		Index:    d.nextIdx,
		PC:       d.ctx.SamplePC(cpu),
		PID:      d.cfg.PID,
		ThreadID: d.ctx.SampleThreadID(cpu),
		CPU:      cpu,
		Cycle:    d.ctx.SampleCycle(cpu),
		Counters: pmu.ReadAll(),
		BTB:      pmu.ReadBTB(),
		DEAR:     pmu.ReadDEAR(),
	}
	d.nextIdx++
	if len(d.ksb) < d.ksbCap {
		d.ksb = append(d.ksb, s)
	} else {
		d.dropped++
		d.cKSBDropped.Inc()
	}
	d.cSamples.Inc()
	if d.sampleTrace != nil {
		d.sampleTrace.Instant("perfmon", "sample", cpu, s.Cycle, map[string]any{
			"pc": s.PC, "thread": s.ThreadID,
		})
	}
	d.ctx.ChargeCycles(cpu, d.cfg.SampleOverhead)
	if h := d.handlers[cpu]; h != nil {
		h(s)
	}
}

// KSBLen returns the number of samples held in the kernel sampling buffer.
func (d *Driver) KSBLen() int { return len(d.ksb) }

// Dropped returns the number of samples lost to KSB overflow.
func (d *Driver) Dropped() int64 { return d.dropped }

// DrainKSB returns and clears the kernel sampling buffer (used by offline
// analysis tools; the online path is the per-CPU handlers).
func (d *Driver) DrainKSB() []Sample {
	out := d.ksb
	d.ksb = nil
	return out
}

// String describes the sampling setup.
func (d *Driver) String() string {
	return fmt.Sprintf("perfmon{period=%d dearMinLat=%d overhead=%d}",
		d.cfg.CyclePeriod, d.cfg.DEARMinLatency, d.cfg.SampleOverhead)
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

package cobra

import (
	"testing"

	"repro/internal/ia64"
	"repro/internal/mem"
)

// branchyOffsets are the interesting absolute pcs of buildBranchyImage.
type branchyOffsets struct {
	head   int // loop head (taken target of the latch)
	skipBr int // conditional branch over the cold block
	cold   int // fall-through block the hot path skips
	hot    int // taken target of skipBr
	latch  int // backward conditional branch to head
}

// buildBranchyImage assembles a loop with a conditional skip — the
// smallest CFG where hot-path-first reordering differs from address
// order:
//
//	entry:  movi r9 = 7                  (straight-line pre block, B0)
//	head:   and r8 = r20 & r9            (B1)
//	        cmp p4,p5 = r8 != 0
//	   (p4) br.cond hot                  ; hot path skips cold
//	cold:   addi r21 += 1                (B2, fall-through, rarely run)
//	hot:    addi r20 -= 1                (B3)
//	        cmp p6,p7 = r20 > 0
//	   (p6) br.cond head                 ; latch
//	        halt                         (outside the region)
func buildBranchyImage(t *testing.T) (*ia64.Image, Region, branchyOffsets) {
	t.Helper()
	img := ia64.NewImage()
	a := ia64.NewAsm(img, "k")
	a.Emit(ia64.Instr{Op: ia64.OpMovI, R1: 9, Imm: 7})
	a.Label("head")
	head := a.Emit(ia64.Instr{Op: ia64.OpAnd, R1: 8, R2: 20, R3: 9})
	a.Emit(ia64.Instr{Op: ia64.OpCmpI, P1: 4, P2: 5, R2: 8, Rel: ia64.CmpNE})
	skipBr := a.Br(ia64.BrCond, 4, "hot")
	cold := a.Emit(ia64.Instr{Op: ia64.OpAddI, R1: 21, R2: 21, Imm: 1})
	a.Label("hot")
	hot := a.Emit(ia64.Instr{Op: ia64.OpAddI, R1: 20, R2: 20, Imm: -1})
	a.Emit(ia64.Instr{Op: ia64.OpCmpI, P1: 6, P2: 7, R2: 20, Rel: ia64.CmpGT})
	latch := a.Br(ia64.BrCond, 6, "head")
	a.Emit(ia64.Instr{Op: ia64.OpHalt})
	entry, err := a.Close()
	if err != nil {
		t.Fatal(err)
	}
	off := branchyOffsets{
		head: entry + head, skipBr: entry + skipBr, cold: entry + cold,
		hot: entry + hot, latch: entry + latch,
	}
	region := Region{
		Key:   LoopKey{Head: off.head, BranchPC: off.latch},
		Start: entry, End: off.latch, FuncName: "k",
	}
	return img, region, off
}

func branchyAnalyzer(img *ia64.Image) *Analyzer {
	return NewAnalyzer(img, mem.NewMemory(1<<20, 16<<10))
}

func TestPartitionBlocksLeaders(t *testing.T) {
	img, region, off := buildBranchyImage(t)
	blocks := branchyAnalyzer(img).PartitionBlocks(region)
	want := []BasicBlock{
		{Start: region.Start, End: off.head - 1}, // pre block
		{Start: off.head, End: off.skipBr},       // head..skip branch
		{Start: off.cold, End: off.cold},         // cold fall-through
		{Start: off.hot, End: off.latch},         // hot..latch
	}
	if len(blocks) != len(want) {
		t.Fatalf("blocks = %+v, want %+v", blocks, want)
	}
	for i := range want {
		if blocks[i] != want[i] {
			t.Fatalf("block %d = %+v, want %+v", i, blocks[i], want[i])
		}
	}
}

// TestBuildLayoutHotPathFirst feeds a profile where the skip branch is
// hot: the hot block must be glued right after the branch block and the
// never-observed cold block spilled behind the hot traces.
func TestBuildLayoutHotPathFirst(t *testing.T) {
	img, region, off := buildBranchyImage(t)
	edges := map[BranchEdge]int64{
		{From: off.skipBr, To: off.hot}: 70,
		{From: off.latch, To: off.head}: 79,
	}
	spec := branchyAnalyzer(img).BuildLayout(region, edges)

	wantOrder := []int{0, 1, 3, 2}
	if len(spec.Order) != len(wantOrder) {
		t.Fatalf("order = %v, want %v", spec.Order, wantOrder)
	}
	for i := range wantOrder {
		if spec.Order[i] != wantOrder[i] {
			t.Fatalf("order = %v, want %v", spec.Order, wantOrder)
		}
	}
	if spec.Hot != 3 {
		t.Fatalf("hot = %d, want 3 (cold block spilled)", spec.Hot)
	}
	if spec.Identity() {
		t.Fatal("hot-path order reported as identity")
	}
	if spec.Coverage != 1.0 {
		t.Fatalf("coverage = %v, want 1.0 (every observed edge stays hot)", spec.Coverage)
	}
	if !spec.PlacesBefore(off.head, off.latch) {
		t.Fatal("loop head placed after its latch — patch would be unjudgeable")
	}
	if spec.PlacesBefore(off.latch, off.head) {
		t.Fatal("PlacesBefore not antisymmetric for distinct blocks")
	}
}

// TestBuildLayoutSingleBlockIsIdentity: a region with no internal control
// flow partitions into one block, whose only order is the identity — the
// engine must see Identity() and skip deployment.
func TestBuildLayoutSingleBlockIsIdentity(t *testing.T) {
	img := ia64.NewImage()
	a := ia64.NewAsm(img, "tiny")
	a.Label("top")
	a.Emit(ia64.Instr{Op: ia64.OpAddI, R1: 20, R2: 20, Imm: -1})
	br := a.Br(ia64.BrCloop, 0, "top")
	a.Emit(ia64.Instr{Op: ia64.OpHalt})
	entry, err := a.Close()
	if err != nil {
		t.Fatal(err)
	}
	region := Region{
		Key:   LoopKey{Head: entry, BranchPC: entry + br},
		Start: entry, End: entry + br, FuncName: "tiny",
	}
	spec := branchyAnalyzer(img).BuildLayout(region, map[BranchEdge]int64{
		{From: entry + br, To: entry}: 100,
	})
	if len(spec.Blocks) != 1 || !spec.Identity() {
		t.Fatalf("spec = %+v, want single identity block", spec)
	}
}

// TestEmitLayoutConnectorsAndRemap deploys the hot-path order and checks
// the emitted copy: the skip branch remapped to the relocated hot block,
// a connector re-establishing the broken fall-through into the cold
// block, a region-exit connector, and a trace-relative ActiveKey.
func TestEmitLayoutConnectorsAndRemap(t *testing.T) {
	img, region, off := buildBranchyImage(t)
	edges := map[BranchEdge]int64{
		{From: off.skipBr, To: off.hot}: 70,
		{From: off.latch, To: off.head}: 79,
	}
	an := branchyAnalyzer(img)
	spec := an.BuildLayout(region, edges)

	p := NewPatcher(img, true)
	set, err := p.DeployLayout(region, spec)
	if err != nil {
		t.Fatal(err)
	}
	if set.Active() != -1 {
		t.Fatalf("fresh layout set active = %d, want -1 (undispatched)", set.Active())
	}
	v := set.Variants[0]
	fn, ok := img.FuncAt(v.TraceEntry)
	if !ok || fn.Name != "cobra.layout1" {
		t.Fatalf("layout func = (%+v, %v), want cobra.layout1", fn, ok)
	}

	// New placement: [B0][B1][B3][B2]; block lengths from the partition.
	b := spec.Blocks
	newB1 := v.TraceEntry + b[0].Len()
	newB3 := newB1 + b[1].Len() + 1 // +1: connector after B1's fall-through
	newB2 := newB3 + b[3].Len() + 1 // +1: region-exit connector after B3

	// The copied skip branch targets the relocated hot block.
	skip := img.Fetch(newB1 + (off.skipBr - b[1].Start))
	if skip.Op != ia64.OpBr || skip.Br != ia64.BrCond || int(skip.Imm) != newB3 {
		t.Fatalf("copied skip branch = %+v, want br.cond -> %d", skip, newB3)
	}
	// Connector after B1 restores the fall-through into the cold block.
	connB1 := img.Fetch(newB1 + b[1].Len())
	if connB1.Op != ia64.OpBr || connB1.Br != ia64.BrAlways || int(connB1.Imm) != newB2 {
		t.Fatalf("B1 connector = %+v, want br.sptk -> %d", connB1, newB2)
	}
	// The copied latch targets the relocated head.
	latch := img.Fetch(newB3 + (off.latch - b[3].Start))
	if latch.Op != ia64.OpBr || latch.Br != ia64.BrCond || int(latch.Imm) != newB1 {
		t.Fatalf("copied latch = %+v, want br.cond -> %d", latch, newB1)
	}
	// B3 falls off the end of the loop: connector to the region exit.
	connB3 := img.Fetch(newB3 + b[3].Len())
	if connB3.Op != ia64.OpBr || connB3.Br != ia64.BrAlways || int(connB3.Imm) != region.End+1 {
		t.Fatalf("B3 exit connector = %+v, want br.sptk -> %d", connB3, region.End+1)
	}
	// The cold block ends the copy with its own exit connector.
	connB2 := img.Fetch(newB2 + b[2].Len())
	if connB2.Op != ia64.OpBr || connB2.Br != ia64.BrAlways || int(connB2.Imm) != newB3 {
		t.Fatalf("B2 connector = %+v, want br.sptk -> %d (back to hot block)", connB2, newB3)
	}
	if v.ActiveKey.Head != newB1 || v.ActiveKey.BranchPC != newB3+(off.latch-b[3].Start) {
		t.Fatalf("ActiveKey = %+v, want {%d %d}", v.ActiveKey, newB1, newB3+(off.latch-b[3].Start))
	}
}

// TestDeployLayoutSwitchRoundTrip drives the layout through the variant
// dispatch lifecycle: engage, roll back to original, re-engage — each
// transition one entry-slot patch.
func TestDeployLayoutSwitchRoundTrip(t *testing.T) {
	img, region, off := buildBranchyImage(t)
	an := branchyAnalyzer(img)
	spec := an.BuildLayout(region, map[BranchEdge]int64{
		{From: off.skipBr, To: off.hot}: 10,
		{From: off.latch, To: off.head}: 11,
	})
	origEntry := img.Fetch(region.Start)

	p := NewPatcher(img, true)
	set, err := p.DeployLayout(region, spec)
	if err != nil {
		t.Fatal(err)
	}
	if in := img.Fetch(region.Start); in != origEntry {
		t.Fatal("deploy alone must not touch dispatch")
	}
	if err := p.Switch(set, 0); err != nil {
		t.Fatal(err)
	}
	in := img.Fetch(region.Start)
	if in.Op != ia64.OpBr || in.Br != ia64.BrAlways || int(in.Imm) != set.Variants[0].TraceEntry {
		t.Fatalf("entry after engage = %+v, want br -> %d", in, set.Variants[0].TraceEntry)
	}
	ap := set.ActivePatch()
	if ap == nil || ap.Rewrite != RewriteLayout || ap.ActiveKey != set.Variants[0].ActiveKey {
		t.Fatalf("ActivePatch = %+v, want layout rewrite with trace-relative key", ap)
	}
	if err := p.Switch(set, -1); err != nil {
		t.Fatal(err)
	}
	if in := img.Fetch(region.Start); in != origEntry {
		t.Fatalf("entry after rollback = %+v, want original %+v", in, origEntry)
	}
	if err := p.Switch(set, 0); err != nil {
		t.Fatal(err)
	}
	if in := img.Fetch(region.Start); int(in.Imm) != set.Variants[0].TraceEntry {
		t.Fatal("re-engage did not redirect")
	}
}

func TestDeployLayoutRequiresTraceCache(t *testing.T) {
	img, region, off := buildBranchyImage(t)
	spec := branchyAnalyzer(img).BuildLayout(region, map[BranchEdge]int64{
		{From: off.skipBr, To: off.hot}: 1,
	})
	p := NewPatcher(img, false)
	if _, err := p.DeployLayout(region, spec); err == nil {
		t.Fatal("in-place patcher accepted a layout deployment")
	}
}

// TestEmitLayoutRejectsMidBlockTarget: a malformed partition that hides a
// branch target inside a block must be rejected, not silently emitted
// with a stale absolute target.
func TestEmitLayoutRejectsMidBlockTarget(t *testing.T) {
	img, region, _ := buildBranchyImage(t)
	p := NewPatcher(img, true)
	spec := LayoutSpec{
		Blocks: []BasicBlock{{Start: region.Start, End: region.End}},
		Order:  []int{0},
		Hot:    1,
	}
	if _, err := p.emitLayout(region, spec); err == nil {
		t.Fatal("emitLayout accepted a branch target hidden mid-block")
	}
}

package cobra

import (
	"fmt"
	"sort"

	"repro/internal/ia64"
)

// BOLT-style basic-block layout (Panchenko et al., arXiv:1807.06735)
// over the running binary: partition a hot region into basic blocks,
// order them hot-path-first from the BTB taken-edge profile with greedy
// extended-trace selection, and emit the reordered copy into the code
// cache — hot blocks contiguous from the trace entry, never-observed
// blocks spilled behind the hot traces, branch targets fixed up, and
// br.sptk connectors re-establishing every fall-through edge the
// reordering broke. The copy is deployed as a resident single-variant
// set, so dispatch, judgement and rollback ride the exact one-word
// entry-patch machinery multi-version patching uses.

// BasicBlock is one block of a region partition, an inclusive slot range
// in original image addresses.
type BasicBlock struct {
	Start, End int
}

// Len returns the block's slot count.
func (b BasicBlock) Len() int { return b.End - b.Start + 1 }

// PartitionBlocks splits region r into basic blocks. Leaders are the
// region start, every in-region branch target, and every slot following
// a branch or halt; each block runs from its leader to the slot before
// the next one. Every branch therefore terminates its block and every
// in-region branch target is some block's first slot — the invariant
// emitLayout's target relocation relies on.
func (a *Analyzer) PartitionBlocks(r Region) []BasicBlock {
	leaders := map[int]bool{r.Start: true}
	for pc := r.Start; pc <= r.End && pc < a.img.Len(); pc++ {
		in := a.img.Fetch(pc)
		switch {
		case in.IsBranch():
			if t := int(in.Imm); in.Br != ia64.BrRet && t >= r.Start && t <= r.End {
				leaders[t] = true
			}
			if pc+1 <= r.End {
				leaders[pc+1] = true
			}
		case in.Op == ia64.OpHalt:
			if pc+1 <= r.End {
				leaders[pc+1] = true
			}
		}
	}
	starts := make([]int, 0, len(leaders))
	for pc := range leaders {
		starts = append(starts, pc)
	}
	sort.Ints(starts)
	blocks := make([]BasicBlock, len(starts))
	for i, s := range starts {
		end := r.End
		if i+1 < len(starts) {
			end = starts[i+1] - 1
		}
		blocks[i] = BasicBlock{Start: s, End: end}
	}
	return blocks
}

// LayoutSpec is a computed placement of a region's basic blocks. Order
// is a permutation of block indices in their new physical order —
// Order[0] is always the entry block. The first Hot entries are the hot
// extended traces grown from observed edges; the rest are never-observed
// blocks spilled behind them in address order. Coverage is the share of
// observed in-region edge weight with both endpoints in the hot part.
type LayoutSpec struct {
	Blocks   []BasicBlock
	Order    []int
	Hot      int
	Coverage float64
}

// Identity reports whether the placement equals the original address
// order — deploying it would pay dispatch cost for nothing.
func (s LayoutSpec) Identity() bool {
	for i, b := range s.Order {
		if b != i {
			return false
		}
	}
	return true
}

// blockOf returns the index of the block containing pc, or -1.
func (s LayoutSpec) blockOf(pc int) int {
	for i, b := range s.Blocks {
		if pc >= b.Start && pc <= b.End {
			return i
		}
	}
	return -1
}

// PlacesBefore reports whether the block holding slot a comes no later
// than the block holding slot b in the computed order. Layout engines
// use it to guard the loop key: if the reordered copy placed the loop
// head after its latch, the latch's taken edge would turn forward and
// the profiler (which keys loops on backward pairs) could never observe
// the relocated loop again — the patch would be unjudgeable.
func (s LayoutSpec) PlacesBefore(a, b int) bool {
	ba, bb := s.blockOf(a), s.blockOf(b)
	if ba < 0 || bb < 0 {
		return false
	}
	pa, pb := -1, -1
	for pos, blk := range s.Order {
		if blk == ba {
			pa = pos
		}
		if blk == bb {
			pb = pos
		}
	}
	return pa >= 0 && pa <= pb
}

// layoutSuccs describes a block's possible intra-region successors.
type layoutSuccs struct {
	taken int // block index of the taken target, -1 if none in-region
	fall  int // block index of the fall-through, -1 if none
}

// successors computes the intra-region successor blocks of block i: the
// taken target of its terminating branch (if it lands in the region) and
// the fall-through block (unless the terminator is unconditional or a
// halt). leaderAt maps leader slots to block indices.
func (a *Analyzer) successors(blocks []BasicBlock, i int, leaderAt map[int]int) layoutSuccs {
	s := layoutSuccs{taken: -1, fall: -1}
	last := a.img.Fetch(blocks[i].End)
	if last.Op == ia64.OpHalt || (last.IsBranch() && last.Br == ia64.BrRet) {
		return s
	}
	if last.IsBranch() {
		if t, ok := leaderAt[int(last.Imm)]; ok {
			s.taken = t
		}
		if last.Br == ia64.BrAlways {
			return s
		}
	}
	if i+1 < len(blocks) {
		s.fall = i + 1
	}
	return s
}

// BuildLayout computes a hot-path-first block order for region r from a
// taken-edge profile (counts keyed by BranchEdge in original image
// addresses; edges with endpoints outside the region are ignored). The
// ordering is greedy extended-trace selection à la BOLT: start a trace
// at the entry block, repeatedly extend it with its hottest unplaced
// successor — fall-through edges weighted by the successor's block heat,
// taken edges by their observed count — seed the next trace at the
// hottest remaining observed block, and finally spill never-observed
// blocks behind the hot traces in address order. A block whose
// terminator simply falls through keeps its successor glued to it
// whenever possible, so reordering never inserts connectors the
// original code did not need.
func (a *Analyzer) BuildLayout(r Region, edges map[BranchEdge]int64) LayoutSpec {
	blocks := a.PartitionBlocks(r)
	spec := LayoutSpec{Blocks: blocks}
	n := len(blocks)
	if n == 0 {
		return spec
	}
	leaderAt := make(map[int]int, n)
	for i, b := range blocks {
		leaderAt[b.Start] = i
	}

	// Block heat: observed weight entering (taken edges to the leader)
	// plus leaving (taken edges from the block's branch). Sums over the
	// edge map are order-independent, so map iteration cannot leak into
	// the order.
	heat := make([]int64, n)
	var totalW int64
	inRegion := func(pc int) bool { return pc >= r.Start && pc <= r.End }
	for e, c := range edges {
		if !inRegion(e.From) || !inRegion(e.To) {
			continue
		}
		totalW += c
		if t, ok := leaderAt[e.To]; ok {
			heat[t] += c
		}
		if fb := spec.blockOf(e.From); fb >= 0 && blocks[fb].End == e.From {
			heat[fb] += c
		}
	}

	placed := make([]bool, n)
	order := make([]int, 0, n)
	order = append(order, 0) // the entry block anchors the first trace
	placed[0] = true
	cur := 0
	for {
		succ := a.successors(blocks, cur, leaderAt)
		next := -1
		var bestW int64 = -1
		mandatory := false
		// Fall-through first so ties keep the original adjacency (no
		// connector needed); a straight-line block's successor is
		// mandatory regardless of heat — separating them would only
		// insert a connector for nothing.
		if succ.fall >= 0 && !placed[succ.fall] {
			next, bestW = succ.fall, heat[succ.fall]
			mandatory = !a.img.Fetch(blocks[cur].End).IsBranch()
		}
		if !mandatory && succ.taken >= 0 && !placed[succ.taken] {
			if w := edges[BranchEdge{From: blocks[cur].End, To: blocks[succ.taken].Start}]; w > bestW {
				next, bestW = succ.taken, w
			}
		}
		if next < 0 || (!mandatory && bestW <= 0) {
			// Trace ended: cold successors stay out of the hot part.
			// Seed the next trace at the hottest unplaced observed block
			// (ties to the lowest index).
			next = -1
			bestW = 0
			for i := 0; i < n; i++ {
				if !placed[i] && heat[i] > bestW {
					next, bestW = i, heat[i]
				}
			}
			if next < 0 {
				break // only never-observed blocks remain
			}
		}
		order = append(order, next)
		placed[next] = true
		cur = next
	}
	spec.Hot = len(order)
	for i := 0; i < n; i++ {
		if !placed[i] {
			order = append(order, i)
		}
	}
	spec.Order = order

	if totalW > 0 {
		hotPos := make(map[int]bool, spec.Hot)
		for _, b := range order[:spec.Hot] {
			hotPos[b] = true
		}
		var hotW int64
		for e, c := range edges {
			if !inRegion(e.From) || !inRegion(e.To) {
				continue
			}
			fb, tb := spec.blockOf(e.From), spec.blockOf(e.To)
			if fb >= 0 && tb >= 0 && hotPos[fb] && hotPos[tb] {
				hotW += c
			}
		}
		spec.Coverage = float64(hotW) / float64(totalW)
	}
	return spec
}

// emitLayout appends a reordered copy of region r to the code cache per
// spec and returns its variant descriptor. Block-terminating branches
// keep their instructions with in-region targets remapped to the
// relocated blocks; wherever a block's fall-through successor is not the
// physically next block of the new placement — including the region exit
// after the final block, since the copy lives at the end of the image —
// a br.sptk connector re-establishes the original control flow. The
// region entry is not redirected: DeployLayout and VariantSet.Switch own
// dispatch.
func (p *Patcher) emitLayout(r Region, spec LayoutSpec) (Variant, error) {
	n := len(spec.Blocks)
	if n == 0 || len(spec.Order) != n {
		return Variant{}, fmt.Errorf("cobra: layout of region [%d,%d]: empty or incomplete block order", r.Start, r.End)
	}
	if spec.Blocks[0].Start != r.Start || spec.Order[0] != 0 {
		return Variant{}, fmt.Errorf("cobra: layout of region [%d,%d]: entry block must lead the order", r.Start, r.End)
	}
	entry := p.img.Len()

	// Pass 1: placement offsets and connector decisions. A block needs a
	// connector when control can fall off its end but the block that
	// originally followed it is not the next one emitted.
	off := make([]int, n)
	conn := make([]bool, n)
	cursor := 0
	for pos, b := range spec.Order {
		off[b] = cursor
		cursor += spec.Blocks[b].Len()
		last := p.img.Fetch(spec.Blocks[b].End)
		fallsThrough := true
		switch {
		case last.Op == ia64.OpHalt:
			fallsThrough = false
		case last.IsBranch() && (last.Br == ia64.BrAlways || last.Br == ia64.BrRet):
			fallsThrough = false
		}
		if fallsThrough && (b == n-1 || pos+1 >= len(spec.Order) || spec.Order[pos+1] != b+1) {
			conn[b] = true
			cursor++
		}
	}

	leaderAt := make(map[int]int, n)
	for i, b := range spec.Blocks {
		leaderAt[b.Start] = i
	}
	newPC := func(b int) int { return entry + off[b] }

	// Pass 2: emit, remapping in-region branch targets to the relocated
	// leaders. Targets outside the region stay absolute, exactly as in
	// emitTrace.
	trace := make([]ia64.Instr, 0, cursor)
	for _, b := range spec.Order {
		blk := spec.Blocks[b]
		for pc := blk.Start; pc <= blk.End; pc++ {
			in := p.img.Fetch(pc)
			if in.IsBranch() && in.Br != ia64.BrRet && int(in.Imm) >= r.Start && int(in.Imm) <= r.End {
				tb, ok := leaderAt[int(in.Imm)]
				if !ok {
					return Variant{}, fmt.Errorf("cobra: layout of region [%d,%d]: branch at %d targets mid-block slot %d", r.Start, r.End, pc, in.Imm)
				}
				in.Imm = int64(newPC(tb))
			}
			trace = append(trace, in)
		}
		if conn[b] {
			target := int64(r.End + 1)
			if b < n-1 {
				target = int64(newPC(b + 1))
			}
			trace = append(trace, ia64.Instr{Op: ia64.OpBr, Br: ia64.BrAlways, Imm: target})
		}
	}

	hb, ok := leaderAt[r.Key.Head]
	if !ok {
		return Variant{}, fmt.Errorf("cobra: layout of region [%d,%d]: loop head %d is not a block leader", r.Start, r.End, r.Key.Head)
	}
	lb := spec.blockOf(r.Key.BranchPC)
	if lb < 0 {
		return Variant{}, fmt.Errorf("cobra: layout of region [%d,%d]: latch %d outside the partition", r.Start, r.End, r.Key.BranchPC)
	}

	p.nLayouts++
	name := fmt.Sprintf("cobra.layout%d", p.nLayouts)
	p.img.Append(trace...)
	p.img.AddFunc(name, entry, entry+len(trace))
	return Variant{
		Rewrite:    RewriteLayout,
		TraceEntry: entry,
		ActiveKey: LoopKey{
			Head:     newPC(hb),
			BranchPC: newPC(lb) + (r.Key.BranchPC - spec.Blocks[lb].Start),
		},
	}, nil
}

// DeployLayout emits the reordered copy of r as a resident single-
// variant set: undispatched (Active() == -1) until Switch(vs, 0) engages
// it, restorable with Switch(vs, -1). Judging, re-engagement and
// rollback thus cost one journaled one-word entry patch each, identical
// to multi-version dispatch. Requires trace mode — the copy has nowhere
// to live in an in-place patcher.
func (p *Patcher) DeployLayout(r Region, spec LayoutSpec) (*VariantSet, error) {
	if !p.useTrace {
		return nil, fmt.Errorf("cobra: layout deployment requires the trace cache")
	}
	if p.entryRedirected(r) {
		return nil, fmt.Errorf("cobra: region [%d,%d] entry already in code cache: %w", r.Start, r.End, ErrAlreadyPatched)
	}
	vs := &VariantSet{Region: r, active: -1, entrySaved: p.img.Fetch(r.Start)}
	v, err := p.emitLayout(r, spec)
	if err != nil {
		return nil, err
	}
	vs.Variants = append(vs.Variants, v)
	return vs, nil
}

package cobra

import (
	"errors"
	"testing"

	"repro/internal/ia64"
)

// failOn returns a patchHook that fails slot writes at the given pcs and
// forwards everything else to the image.
func failOn(img *ia64.Image, failErr error, pcs ...int) func(int, ia64.Instr) (ia64.Instr, error) {
	bad := map[int]bool{}
	for _, pc := range pcs {
		bad[pc] = true
	}
	return func(pc int, in ia64.Instr) (ia64.Instr, error) {
		if bad[pc] {
			return ia64.Instr{}, failErr
		}
		return img.Patch(pc, in)
	}
}

// TestDeployTraceUnwindsOnFailedRedirect pins the orphaned-trace fix: if
// the entry redirect fails after the trace was emitted, the emitted copy,
// its function-table entry and the trace counter must all be unwound —
// otherwise every failed deploy leaks an unreachable trace and burns a
// trace name.
func TestDeployTraceUnwindsOnFailedRedirect(t *testing.T) {
	img, _, region, pfs := buildLoopImage(t)
	p := NewPatcher(img, true)
	preLen := img.Len()

	failErr := errors.New("redirect refused")
	p.patchHook = failOn(img, failErr, region.Start)
	if _, err := p.Deploy(region, pfs, RewriteNop); !errors.Is(err, failErr) {
		t.Fatalf("deploy error = %v, want %v", err, failErr)
	}
	if img.Len() != preLen {
		t.Fatalf("image len %d after failed redirect, want %d (trace leaked)", img.Len(), preLen)
	}
	if _, ok := img.FuncAt(preLen); ok {
		t.Fatal("orphaned trace still in function table")
	}
	if _, ok := img.LookupFunc("cobra.trace1"); ok {
		t.Fatal("trace name registered despite unwind")
	}
	if in := img.Fetch(region.Start); in.IsBranch() {
		t.Fatal("entry redirected despite failed patch")
	}

	// Retry without the fault: the unwind left the patcher reusable, the
	// counter unleaked (this is still trace 1) and the cache compact.
	p.patchHook = nil
	patch, err := p.Deploy(region, pfs, RewriteNop)
	if err != nil {
		t.Fatal(err)
	}
	if patch.TraceEntry != preLen {
		t.Fatalf("retry trace entry %d, want %d (cache not compact)", patch.TraceEntry, preLen)
	}
	if f, ok := img.FuncAt(patch.TraceEntry); !ok || f.Name != "cobra.trace1" {
		t.Fatalf("retry trace func = (%+v, %v), want cobra.trace1", f, ok)
	}
}

// TestRollbackRetainsFailedSlotsForRetry pins the partial-rollback fix:
// a slot whose restore fails must keep its saved original in the patch
// (rather than the patch being cleared wholesale), so a later retry can
// still restore it — clearing would lose the only copy of the original
// word and leave the region permanently corrupted.
func TestRollbackRetainsFailedSlotsForRetry(t *testing.T) {
	img, _, region, pfs := buildLoopImage(t)
	p := NewPatcher(img, false)
	patch, err := p.Deploy(region, pfs, RewriteNop)
	if err != nil {
		t.Fatal(err)
	}

	stuck := pfs[1]
	failErr := errors.New("slot stuck")
	p.patchHook = failOn(img, failErr, stuck)
	if err := p.Rollback(patch); !errors.Is(err, failErr) {
		t.Fatalf("rollback error = %v, want %v", err, failErr)
	}
	if len(patch.Slots) != 1 || patch.Slots[0] != stuck {
		t.Fatalf("patch.Slots = %v after partial failure, want [%d]", patch.Slots, stuck)
	}
	if len(patch.saved) != 1 || patch.saved[0].Op != ia64.OpLfetch {
		t.Fatalf("patch.saved = %+v, want the stuck slot's original lfetch", patch.saved)
	}
	if img.Fetch(pfs[0]).Op != ia64.OpLfetch || img.Fetch(pfs[2]).Op != ia64.OpLfetch {
		t.Fatal("restorable slots were not restored")
	}
	if img.Fetch(stuck).Op != ia64.OpNop {
		t.Fatal("stuck slot changed despite failing patch")
	}

	// Retry once the fault clears: the retained entry restores the slot
	// and the patch finally empties.
	p.patchHook = nil
	if err := p.Rollback(patch); err != nil {
		t.Fatal(err)
	}
	if patch.Slots != nil || patch.saved != nil {
		t.Fatalf("patch not cleared after successful retry: %v", patch.Slots)
	}
	if img.Fetch(stuck).Op != ia64.OpLfetch {
		t.Fatal("stuck slot not restored on retry")
	}
}

// TestRollbackPreservesMultipleFailedSlotsInOrder checks that when
// several restores fail, the surviving entries come back in original
// slot order (the loop walks newest-first) with saved words aligned.
func TestRollbackPreservesMultipleFailedSlotsInOrder(t *testing.T) {
	img, _, region, pfs := buildLoopImage(t)
	p := NewPatcher(img, false)
	patch, err := p.Deploy(region, pfs, RewriteNop)
	if err != nil {
		t.Fatal(err)
	}
	saved := append([]ia64.Instr(nil), patch.saved...)

	failErr := errors.New("two slots stuck")
	p.patchHook = failOn(img, failErr, pfs[0], pfs[2])
	if err := p.Rollback(patch); !errors.Is(err, failErr) {
		t.Fatalf("rollback error = %v, want %v", err, failErr)
	}
	if len(patch.Slots) != 2 || patch.Slots[0] != pfs[0] || patch.Slots[1] != pfs[2] {
		t.Fatalf("patch.Slots = %v, want [%d %d] in slot order", patch.Slots, pfs[0], pfs[2])
	}
	if patch.saved[0] != saved[0] || patch.saved[1] != saved[2] {
		t.Fatalf("saved words misaligned with surviving slots: %+v", patch.saved)
	}
	if img.Fetch(pfs[1]).Op != ia64.OpLfetch {
		t.Fatal("middle slot should have been restored")
	}

	p.patchHook = nil
	if err := p.Rollback(patch); err != nil {
		t.Fatal(err)
	}
	for _, pc := range pfs {
		if img.Fetch(pc).Op != ia64.OpLfetch {
			t.Fatalf("slot %d not restored after retry", pc)
		}
	}
}

// TestTraceRelocatesBranchTargetingRegionEntry covers the relocation
// edge where a backward branch targets the region entry slot itself —
// the same slot deployTrace later overwrites with the dispatch branch.
// The copy must branch to the trace-local entry, never back through the
// original (now redirected) slot.
func TestTraceRelocatesBranchTargetingRegionEntry(t *testing.T) {
	img := ia64.NewImage()
	a := ia64.NewAsm(img, "g")
	a.Label("top")
	pf := a.Emit(ia64.Instr{Op: ia64.OpLfetch, R2: 24, Hint: ia64.HintNT1})
	a.Emit(ia64.Instr{Op: ia64.OpAddI, R1: 24, R2: 24, Imm: 8})
	br := a.Br(ia64.BrCloop, 0, "top")
	a.Emit(ia64.Instr{Op: ia64.OpHalt})
	entry, err := a.Close()
	if err != nil {
		t.Fatal(err)
	}
	region := Region{
		Key:   LoopKey{Head: entry, BranchPC: entry + br},
		Start: entry, End: entry + br, FuncName: "g",
	}

	p := NewPatcher(img, true)
	patch, err := p.Deploy(region, []int{entry + pf}, RewriteNop)
	if err != nil {
		t.Fatal(err)
	}
	loopBr := img.Fetch(patch.TraceEntry + br)
	if loopBr.Op != ia64.OpBr || loopBr.Br != ia64.BrCloop {
		t.Fatalf("slot at trace offset %d = %+v, want the copied cloop", br, loopBr)
	}
	if int(loopBr.Imm) != patch.TraceEntry {
		t.Fatalf("copied loop branch targets %d, want trace entry %d (would re-enter the dispatch branch)",
			loopBr.Imm, patch.TraceEntry)
	}
	if patch.ActiveKey.Head != patch.TraceEntry || patch.ActiveKey.BranchPC != patch.TraceEntry+br {
		t.Fatalf("ActiveKey = %+v, want trace-relative {%d %d}", patch.ActiveKey, patch.TraceEntry, patch.TraceEntry+br)
	}
}

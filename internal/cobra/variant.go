package cobra

import (
	"fmt"

	"repro/internal/ia64"
)

// VariantSpec names one rewrite of a region for DeployVariants.
type VariantSpec struct {
	Rewrite Rewrite
	// Slots are the instruction addresses the rewrite targets (the same
	// selection Deploy takes).
	Slots []int
}

// Variant is one resident rewritten copy of a region in the code cache.
type Variant struct {
	Rewrite Rewrite
	// TraceEntry is the code-cache entry of this copy.
	TraceEntry int
	// ActiveKey is the loop key the copy reports through the BTB while
	// dispatched (trace-relative relocation of the region key).
	ActiveKey LoopKey
	// RewrittenPrefetches counts instructions changed in this copy.
	RewrittenPrefetches int
}

// VariantSet is a multi-version patch (Meng et al., profile-guided
// multi-version binary rewriting): several rewrites of one region live
// in the code cache at once, and the controller moves between them — or
// back to the original code — by repointing the single dispatch branch
// at the region entry. A phase change costs one one-word patch instead
// of a rollback + redeploy cycle through the patch journal.
type VariantSet struct {
	Region   Region
	Variants []Variant
	// active is the dispatched variant index, -1 when the entry runs the
	// original code.
	active int
	// entrySaved is the original region-entry instruction, restored on
	// Switch(-1).
	entrySaved ia64.Instr
}

// Active returns the dispatched variant index (-1 = original code).
func (vs *VariantSet) Active() int { return vs.active }

// ActiveVariant returns the dispatched variant, or nil at the original.
func (vs *VariantSet) ActiveVariant() *Variant {
	if vs.active < 0 {
		return nil
	}
	return &vs.Variants[vs.active]
}

// ActivePatch renders the current dispatch as a *Patch so the resident
// variant plugs into the RegionState / trace-span machinery patches use.
// Nil when the original code is dispatched.
func (vs *VariantSet) ActivePatch() *Patch {
	v := vs.ActiveVariant()
	if v == nil {
		return nil
	}
	return &Patch{
		Region:  vs.Region,
		Rewrite: v.Rewrite,
		Slots:   []int{vs.Region.Start},
		saved:   []ia64.Instr{vs.entrySaved},

		TraceEntry:          v.TraceEntry,
		ActiveKey:           v.ActiveKey,
		RewrittenPrefetches: v.RewrittenPrefetches,
	}
}

// DeployVariants emits every spec's rewritten copy of region r into the
// code cache, resident but undispatched: the set starts at the original
// code (Active() == -1) and Switch engages a variant. Requires trace
// mode — resident variants have nowhere to live in an in-place patcher.
func (p *Patcher) DeployVariants(r Region, specs []VariantSpec) (*VariantSet, error) {
	if !p.useTrace {
		return nil, fmt.Errorf("cobra: variant table requires the trace cache")
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("cobra: empty variant table for region [%d,%d]: %w", r.Start, r.End, ErrNoRewritableSlots)
	}
	if p.entryRedirected(r) {
		return nil, fmt.Errorf("cobra: region [%d,%d] entry already in code cache: %w", r.Start, r.End, ErrAlreadyPatched)
	}
	vs := &VariantSet{Region: r, active: -1, entrySaved: p.img.Fetch(r.Start)}
	for _, spec := range specs {
		v, err := p.emitTrace(r, spec.Slots, spec.Rewrite)
		if err != nil {
			// Earlier copies stay in the cache unreachable, exactly like
			// rolled-back traces; dispatch was never touched.
			return nil, fmt.Errorf("cobra: variant %s: %w", spec.Rewrite, err)
		}
		vs.Variants = append(vs.Variants, v)
	}
	return vs, nil
}

// Switch repoints the region's dispatch branch at variant idx, or back
// to the original code for idx -1. Switching to the already-active
// target is a no-op. Each actual switch is a single one-word patch of
// the entry slot — one patch-journal record, one slot for SyncDecode to
// replay.
func (p *Patcher) Switch(vs *VariantSet, idx int) error {
	if idx < -1 || idx >= len(vs.Variants) {
		return fmt.Errorf("cobra: variant %d of %d: %w", idx, len(vs.Variants), ErrUnknownVariant)
	}
	if idx == vs.active {
		return nil
	}
	in := vs.entrySaved
	if idx >= 0 {
		in = ia64.Instr{Op: ia64.OpBr, Br: ia64.BrAlways, Imm: int64(vs.Variants[idx].TraceEntry)}
	}
	if _, err := p.patchSlot(vs.Region.Start, in); err != nil {
		return err
	}
	vs.active = idx
	return nil
}

package cobra

import (
	"errors"
	"fmt"

	"repro/internal/ia64"
)

// Sentinel causes of Deploy / DeployVariants / Switch failures, so
// strategy engines and cobra-verify triage can branch on cause with
// errors.Is instead of string matching.
var (
	// ErrNoRewritableSlots: no slot the rewrite applies to — the slot
	// list was empty, or every named instruction is inapplicable (wrong
	// opcode, or already in rewritten form).
	ErrNoRewritableSlots = errors.New("no rewritable slots")
	// ErrAlreadyPatched: the region entry is already redirected into the
	// code cache; deploying again would trace the dispatch branch itself.
	ErrAlreadyPatched = errors.New("region already patched")
	// ErrUnknownVariant: a Switch named a variant index outside the set.
	ErrUnknownVariant = errors.New("unknown variant")
)

// Rewrite is the kind of prefetch rewrite the optimizer applies.
type Rewrite uint8

const (
	RewriteNop    Rewrite = iota // noprefetch: lfetch -> nop
	RewriteExcl                  // lfetch -> lfetch.excl
	RewriteBias                  // ld8 -> ld8.bias (§4's exclusive-load hint)
	RewriteLayout                // BOLT-style basic-block reordering of the region copy
)

func (r Rewrite) String() string {
	switch r {
	case RewriteNop:
		return "nop"
	case RewriteExcl:
		return "excl"
	case RewriteBias:
		return "bias"
	case RewriteLayout:
		return "layout"
	}
	return "?"
}

// applicable reports whether the rewrite can act on the instruction. The
// prefetch rewrites act on lfetch sites; the bias rewrite acts on plain
// integer loads (the paper: .bias is unsupported on speculative, check,
// acquire and floating-point loads, so ordinary ld8 is the entire domain).
// RewriteLayout is a whole-region transform (emitLayout), never a
// per-instruction one, so it applies to no single instruction.
func (r Rewrite) applicable(in ia64.Instr) bool {
	switch r {
	case RewriteNop, RewriteExcl:
		return in.Op == ia64.OpLfetch
	case RewriteBias:
		return in.Op == ia64.OpLd && in.Hint == ia64.HintNone
	}
	return false
}

// apply transforms an applicable instruction.
func (r Rewrite) apply(in ia64.Instr) ia64.Instr {
	switch r {
	case RewriteNop:
		return ia64.Instr{Op: ia64.OpNop, QP: in.QP}
	case RewriteExcl:
		in.Hint = ia64.HintExcl
		return in
	case RewriteBias:
		in.Hint = ia64.HintBias
		return in
	}
	return in
}

// Patch records one deployed optimization so it can be rolled back.
type Patch struct {
	Region  Region
	Rewrite Rewrite
	// Slots actually rewritten (in-place mode: the lfetch slots; trace
	// mode: the redirected entry slot).
	Slots []int
	// saved holds the original instructions of Slots.
	saved []ia64.Instr
	// TraceEntry is the code-cache entry when deployed as a trace.
	TraceEntry int
	// ActiveKey is the loop key the patched loop reports through the BTB
	// after deployment: the original key for in-place patches, the
	// trace-relative key after a trace redirection. The controller uses it
	// to evaluate the patch only in windows where the loop actually ran.
	ActiveKey LoopKey
	// RewrittenPrefetches counts lfetch sites changed.
	RewrittenPrefetches int
}

// Patcher deploys and rolls back binary optimizations. In trace mode it
// copies the region into a code cache appended to the image, rewrites the
// prefetches in the copy, relocates intra-region branch targets, and
// redirects the original region entry with a single branch — the paper's
// "optimized binary traces are stored in a trace cache in the same address
// space ... the binary program is then patched and redirected to the
// optimized traces". In-place mode rewrites the lfetch words directly.
type Patcher struct {
	img      *ia64.Image
	useTrace bool
	nTraces  int
	nLayouts int
	// cacheStart is the first slot of the code cache: everything appended
	// by this patcher lives at or beyond it. The optimizer must never
	// treat its own traces as optimization candidates.
	cacheStart int
	// patchHook, when set, intercepts every slot write the patcher makes.
	// Tests use it to force failure paths: slot patching in this ISA model
	// cannot fail on encoding (word1 carries the full immediate) and the
	// patcher only writes in-range slots, so the error handling around
	// redirects and rollbacks is otherwise unreachable.
	patchHook func(pc int, in ia64.Instr) (ia64.Instr, error)
}

// NewPatcher builds a patcher over the running image.
func NewPatcher(img *ia64.Image, useTrace bool) *Patcher {
	return &Patcher{img: img, useTrace: useTrace, cacheStart: img.Len()}
}

// patchSlot is the single point through which the patcher rewrites image
// slots (see patchHook).
func (p *Patcher) patchSlot(pc int, in ia64.Instr) (ia64.Instr, error) {
	if p.patchHook != nil {
		return p.patchHook(pc, in)
	}
	return p.img.Patch(pc, in)
}

// InCodeCache reports whether pc lies in patcher-emitted code.
func (p *Patcher) InCodeCache(pc int) bool { return pc >= p.cacheStart }

// Deploy applies rewrite to the given lfetch slots of region r.
func (p *Patcher) Deploy(r Region, lfetchSlots []int, rw Rewrite) (*Patch, error) {
	if len(lfetchSlots) == 0 {
		return nil, fmt.Errorf("cobra: nothing to rewrite in region [%d,%d]: %w", r.Start, r.End, ErrNoRewritableSlots)
	}
	if p.useTrace {
		return p.deployTrace(r, lfetchSlots, rw)
	}
	return p.deployInPlace(r, lfetchSlots, rw)
}

func (p *Patcher) deployInPlace(r Region, slots []int, rw Rewrite) (*Patch, error) {
	patch := &Patch{Region: r, Rewrite: rw}
	for _, pc := range slots {
		in := p.img.Fetch(pc)
		if !rw.applicable(in) {
			continue // already rewritten by an earlier pass
		}
		old, err := p.patchSlot(pc, rw.apply(in))
		if err != nil {
			p.rollbackSlots(patch)
			return nil, err
		}
		patch.Slots = append(patch.Slots, pc)
		patch.saved = append(patch.saved, old)
		patch.RewrittenPrefetches++
	}
	if patch.RewrittenPrefetches == 0 {
		return nil, fmt.Errorf("cobra: no applicable instruction among %d slots: %w", len(slots), ErrNoRewritableSlots)
	}
	patch.TraceEntry = -1
	patch.ActiveKey = r.Key
	return patch, nil
}

// entryRedirected reports whether the region entry already dispatches
// into patcher-emitted code.
func (p *Patcher) entryRedirected(r Region) bool {
	in := p.img.Fetch(r.Start)
	return in.IsBranch() && p.InCodeCache(int(in.Imm))
}

// emitTrace builds one rewritten copy of [r.Start, r.End] and appends it
// to the code cache, returning its variant descriptor. The region entry
// is not redirected — deployTrace and VariantSet.Switch own dispatch.
func (p *Patcher) emitTrace(r Region, slots []int, rw Rewrite) (Variant, error) {
	rewriteAt := map[int]bool{}
	for _, pc := range slots {
		rewriteAt[pc] = true
	}
	n := r.End - r.Start + 1
	trace := make([]ia64.Instr, 0, n+1)
	rewritten := 0
	for pc := r.Start; pc <= r.End; pc++ {
		in := p.img.Fetch(pc)
		if rewriteAt[pc] && rw.applicable(in) {
			in = rw.apply(in)
			rewritten++
		}
		trace = append(trace, in)
	}
	if rewritten == 0 {
		return Variant{}, fmt.Errorf("cobra: no applicable instruction among %d slots: %w", len(slots), ErrNoRewritableSlots)
	}

	p.nTraces++
	name := fmt.Sprintf("cobra.trace%d", p.nTraces)
	entry := p.img.Len()
	// Relocate intra-region branch targets to the trace copy; targets
	// outside the region (the guard's skip label, etc.) stay absolute.
	for i := range trace {
		in := &trace[i]
		if in.IsBranch() && int(in.Imm) >= r.Start && int(in.Imm) <= r.End {
			in.Imm = in.Imm - int64(r.Start) + int64(entry)
		}
	}
	// Fall-through continues after the original region.
	trace = append(trace, ia64.Instr{Op: ia64.OpBr, Br: ia64.BrAlways, Imm: int64(r.End + 1)})
	p.img.Append(trace...)
	p.img.AddFunc(name, entry, entry+len(trace))
	return Variant{
		Rewrite:    rw,
		TraceEntry: entry,
		ActiveKey: LoopKey{
			Head:     r.Key.Head - r.Start + entry,
			BranchPC: r.Key.BranchPC - r.Start + entry,
		},
		RewrittenPrefetches: rewritten,
	}, nil
}

// deployTrace emits the optimized copy of [r.Start, r.End] into the code
// cache and redirects r.Start to it.
func (p *Patcher) deployTrace(r Region, slots []int, rw Rewrite) (*Patch, error) {
	if p.entryRedirected(r) {
		return nil, fmt.Errorf("cobra: region [%d,%d] entry already in code cache: %w", r.Start, r.End, ErrAlreadyPatched)
	}
	preLen := p.img.Len()
	preTraces := p.nTraces
	v, err := p.emitTrace(r, slots, rw)
	if err != nil {
		return nil, err
	}
	// Redirect: one-word patch at the region entry.
	old, err := p.patchSlot(r.Start, ia64.Instr{Op: ia64.OpBr, Br: ia64.BrAlways, Imm: int64(v.TraceEntry)})
	if err != nil {
		// The redirect never landed, so the emitted copy is unreachable —
		// but unlike a rolled-back trace it was never live either, and
		// leaving it would leak the trace, its function-table entry and the
		// bumped trace counter on every failed deploy. Cut the image back
		// to its pre-emit length and reclaim the name.
		p.img.RemoveTail(preLen)
		p.nTraces = preTraces
		return nil, err
	}
	return &Patch{
		Region: r, Rewrite: rw,
		Slots: []int{r.Start}, saved: []ia64.Instr{old},
		TraceEntry:          v.TraceEntry,
		ActiveKey:           v.ActiveKey,
		RewrittenPrefetches: v.RewrittenPrefetches,
	}, nil
}

// Rollback restores the original instructions of a deployed patch. Trace
// copies remain in the code cache (unreachable), as on a real system.
func (p *Patcher) Rollback(patch *Patch) error {
	return p.rollbackSlots(patch)
}

// rollbackSlots restores the saved instructions of a patch, newest slot
// first. On success the slot lists are cleared; on partial failure the
// entries that could not be restored keep their saved originals (in the
// original slot order) so the caller can retry the rollback later —
// unconditionally clearing them would lose the only copy of the original
// words and leave the region permanently corrupted.
func (p *Patcher) rollbackSlots(patch *Patch) error {
	var firstErr error
	var failedSlots []int
	var failedSaved []ia64.Instr
	for i := len(patch.Slots) - 1; i >= 0; i-- {
		if _, err := p.patchSlot(patch.Slots[i], patch.saved[i]); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			failedSlots = append(failedSlots, patch.Slots[i])
			failedSaved = append(failedSaved, patch.saved[i])
		}
	}
	if firstErr != nil {
		// The loop collected failures in reverse; flip back to slot order.
		for i, j := 0, len(failedSlots)-1; i < j; i, j = i+1, j-1 {
			failedSlots[i], failedSlots[j] = failedSlots[j], failedSlots[i]
			failedSaved[i], failedSaved[j] = failedSaved[j], failedSaved[i]
		}
		patch.Slots = failedSlots
		patch.saved = failedSaved
		return firstErr
	}
	patch.Slots = nil
	patch.saved = nil
	return nil
}

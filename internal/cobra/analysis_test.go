package cobra

import (
	"testing"

	"repro/internal/ia64"
	"repro/internal/mem"
)

// buildLoopImage assembles a function shaped like compiler output:
//
//	entry:  cursor init (movi base; add), prologue lfetch
//	head:   ldf, lfetch (cursor+dist via temp), cursor advance, br.cloop head
func buildLoopImage(t *testing.T) (*ia64.Image, *mem.Memory, Region, []int) {
	t.Helper()
	memory := mem.NewMemory(1<<20, 16<<10)
	xBase := memory.MustAlloc("prog.x", 4096, 128)
	yBase := memory.MustAlloc("prog.y", 4096, 128)

	img := ia64.NewImage()
	a := ia64.NewAsm(img, "f")
	a.Emit(ia64.Instr{Op: ia64.OpMovToLCI, Imm: 31})
	// x cursor r12 = xBase + (r8 << 3)
	a.Emit(ia64.Instr{Op: ia64.OpShlI, R1: 24, R2: 8, Imm: 3})
	a.Emit(ia64.Instr{Op: ia64.OpMovI, R1: 25, Imm: int64(xBase)})
	a.Emit(ia64.Instr{Op: ia64.OpAdd, R1: 12, R2: 24, R3: 25})
	// y cursor r13 = yBase + (r8 << 3)
	a.Emit(ia64.Instr{Op: ia64.OpMovI, R1: 25, Imm: int64(yBase)})
	a.Emit(ia64.Instr{Op: ia64.OpAdd, R1: 13, R2: 24, R3: 25})
	// prologue prefetch for y
	proSlot := a.Emit(ia64.Instr{Op: ia64.OpAddI, R1: 24, R2: 13, Imm: 0})
	proPF := a.Emit(ia64.Instr{Op: ia64.OpLfetch, R2: 24, Hint: ia64.HintNT1})
	_ = proSlot
	a.Label("head")
	ld := a.Emit(ia64.Instr{Op: ia64.OpLdf, R1: 32, R2: 13})
	a.Emit(ia64.Instr{Op: ia64.OpAddI, R1: 24, R2: 12, Imm: 1152})
	pfX := a.Emit(ia64.Instr{Op: ia64.OpLfetch, R2: 24, Hint: ia64.HintNT1})
	a.Emit(ia64.Instr{Op: ia64.OpAddI, R1: 24, R2: 13, Imm: 1152})
	pfY := a.Emit(ia64.Instr{Op: ia64.OpLfetch, R2: 24, Hint: ia64.HintNT1})
	a.Emit(ia64.Instr{Op: ia64.OpStf, R2: 13, R3: 40})
	a.Emit(ia64.Instr{Op: ia64.OpAddI, R1: 12, R2: 12, Imm: 8})
	a.Emit(ia64.Instr{Op: ia64.OpAddI, R1: 13, R2: 13, Imm: 8})
	br := a.Br(ia64.BrCloop, 0, "head")
	a.Emit(ia64.Instr{Op: ia64.OpHalt})
	entry, err := a.Close()
	if err != nil {
		t.Fatal(err)
	}
	_ = ld
	key := LoopKey{Head: entry + 8, BranchPC: entry + br}
	return img, memory, Region{Key: key, Start: entry, End: entry + br, FuncName: "f"},
		[]int{entry + proPF, entry + pfX, entry + pfY}
}

func TestRegionWideningIncludesPrologue(t *testing.T) {
	img, memory, want, _ := buildLoopImage(t)
	an := NewAnalyzer(img, memory)
	r := an.RegionFor(want.Key)
	if r.Start != want.Start {
		t.Fatalf("region start = %d, want %d (function entry: straight-line preheader)", r.Start, want.Start)
	}
	if r.End != want.End {
		t.Fatalf("region end = %d, want %d", r.End, want.End)
	}
}

func TestPrefetchDiscovery(t *testing.T) {
	img, memory, region, pfs := buildLoopImage(t)
	an := NewAnalyzer(img, memory)
	got := an.Prefetches(region)
	if len(got) != 3 {
		t.Fatalf("prefetches = %v, want 3 (%v)", got, pfs)
	}
	for i, pc := range pfs {
		if got[i] != pc {
			t.Fatalf("prefetch[%d] = %d, want %d", i, got[i], pc)
		}
	}
}

func TestResolvePrefetchTargets(t *testing.T) {
	img, memory, region, pfs := buildLoopImage(t)
	an := NewAnalyzer(img, memory)
	targets := an.PrefetchTargets(region)
	if len(targets) != 3 {
		t.Fatalf("resolved %d targets, want 3: %v", len(targets), targets)
	}
	if targets[pfs[0]].Name != "prog.y" { // prologue prefetch streams y
		t.Fatalf("prologue target = %v", targets[pfs[0]])
	}
	if targets[pfs[1]].Name != "prog.x" {
		t.Fatalf("x steady target = %v", targets[pfs[1]])
	}
	if targets[pfs[2]].Name != "prog.y" {
		t.Fatalf("y steady target = %v", targets[pfs[2]])
	}
}

func TestStoredSegments(t *testing.T) {
	img, memory, region, _ := buildLoopImage(t)
	an := NewAnalyzer(img, memory)
	stored := an.StoredSegments(region)
	if !stored["prog.y"] || stored["prog.x"] {
		t.Fatalf("stored = %v, want y only", stored)
	}
}

func TestPatcherInPlaceAndRollback(t *testing.T) {
	img, memory, region, pfs := buildLoopImage(t)
	_ = memory
	p := NewPatcher(img, false)
	patch, err := p.Deploy(region, pfs, RewriteNop)
	if err != nil {
		t.Fatal(err)
	}
	if patch.RewrittenPrefetches != 3 || patch.TraceEntry != -1 {
		t.Fatalf("patch = %+v", patch)
	}
	for _, pc := range pfs {
		if in := img.Fetch(pc); in.Op != ia64.OpNop {
			t.Fatalf("slot %d = %v, want nop", pc, in.Op)
		}
	}
	if err := p.Rollback(patch); err != nil {
		t.Fatal(err)
	}
	for _, pc := range pfs {
		if in := img.Fetch(pc); in.Op != ia64.OpLfetch {
			t.Fatalf("slot %d not restored: %v", pc, in.Op)
		}
	}
}

func TestPatcherExclRewriteKeepsOperands(t *testing.T) {
	img, _, region, pfs := buildLoopImage(t)
	p := NewPatcher(img, false)
	before := img.Fetch(pfs[1])
	if _, err := p.Deploy(region, pfs[1:2], RewriteExcl); err != nil {
		t.Fatal(err)
	}
	after := img.Fetch(pfs[1])
	if after.Hint != ia64.HintExcl || after.R2 != before.R2 || after.Op != ia64.OpLfetch {
		t.Fatalf("excl rewrite mangled instruction: %+v", after)
	}
}

func TestPatcherTraceDeploy(t *testing.T) {
	img, _, region, pfs := buildLoopImage(t)
	lenBefore := img.Len()
	p := NewPatcher(img, true)
	patch, err := p.Deploy(region, pfs, RewriteNop)
	if err != nil {
		t.Fatal(err)
	}
	if patch.TraceEntry < lenBefore {
		t.Fatalf("trace entry %d not in code cache (image was %d slots)", patch.TraceEntry, lenBefore)
	}
	// Entry slot redirected to the trace.
	if in := img.Fetch(region.Start); in.Op != ia64.OpBr || in.Br != ia64.BrAlways || int(in.Imm) != patch.TraceEntry {
		t.Fatalf("entry not redirected: %+v", in)
	}
	// Original body otherwise untouched (prefetches still there).
	for _, pc := range pfs {
		if img.Fetch(pc).Op != ia64.OpLfetch {
			t.Fatal("trace deploy modified original body")
		}
	}
	// Trace: backward branch relocated to trace-local head; prefetches
	// rewritten; ends with a branch back after the region.
	traceFn, ok := img.FuncAt(patch.TraceEntry)
	if !ok {
		t.Fatal("trace not registered in function table")
	}
	nops, lfetches := 0, 0
	var loopBr, exitBr ia64.Instr
	for pc := traceFn.Entry; pc < traceFn.End; pc++ {
		in := img.Fetch(pc)
		switch {
		case in.Op == ia64.OpNop:
			nops++
		case in.Op == ia64.OpLfetch:
			lfetches++
		case in.Op == ia64.OpBr && in.Br == ia64.BrCloop:
			loopBr = in
		case in.Op == ia64.OpBr && in.Br == ia64.BrAlways:
			exitBr = in
		}
	}
	if lfetches != 0 || nops < 3 {
		t.Fatalf("trace rewrite incomplete: %d lfetch, %d nop", lfetches, nops)
	}
	if int(loopBr.Imm) < traceFn.Entry || int(loopBr.Imm) >= traceFn.End {
		t.Fatalf("trace loop branch targets %d outside trace [%d,%d)", loopBr.Imm, traceFn.Entry, traceFn.End)
	}
	if int(exitBr.Imm) != region.End+1 {
		t.Fatalf("trace exit targets %d, want %d", exitBr.Imm, region.End+1)
	}
	// Rollback restores the entry word.
	if err := p.Rollback(patch); err != nil {
		t.Fatal(err)
	}
	if in := img.Fetch(region.Start); in.IsBranch() {
		t.Fatal("rollback did not restore entry")
	}
}

func TestDeployRejectsEmptySelection(t *testing.T) {
	img, _, region, _ := buildLoopImage(t)
	p := NewPatcher(img, false)
	if _, err := p.Deploy(region, nil, RewriteNop); err == nil {
		t.Fatal("deploy with no slots succeeded")
	}
}

func TestDeploySkipsAlreadyPatchedSlots(t *testing.T) {
	img, _, region, pfs := buildLoopImage(t)
	p := NewPatcher(img, false)
	if _, err := p.Deploy(region, pfs, RewriteNop); err != nil {
		t.Fatal(err)
	}
	// All lfetches already gone: second deploy must fail cleanly.
	if _, err := p.Deploy(region, pfs, RewriteExcl); err == nil {
		t.Fatal("second deploy over nopped slots succeeded")
	}
}

package cobra_test

import (
	"testing"

	"repro/internal/cobra"
	"repro/internal/ia64"
	ir "repro/internal/loopir"
	"repro/internal/workload"
)

// daxpySmallWS is the paper's motivating case: a working set that fits in
// the L2 caches, run on multiple threads, where aggressive prefetching
// past chunk boundaries causes coherent misses.
func daxpyMeasure(t *testing.T, threads int, strategy *cobra.Config, reps int) workload.Measurement {
	t.Helper()
	w := workload.Daxpy(workload.DaxpyParams{WorkingSetBytes: 128 << 10, OuterReps: reps})
	bc := workload.SMPConfig(threads)
	bc.Cobra = strategy
	inst, err := workload.Build(w, bc)
	if err != nil {
		t.Fatal(err)
	}
	m, err := inst.Measure()
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func cfg(s cobra.Strategy) *cobra.Config {
	c := cobra.DefaultConfig(s)
	return &c
}

func TestCobraNoprefetchPatchesDaxpy(t *testing.T) {
	m := daxpyMeasure(t, 4, cfg(cobra.StrategyNoprefetch), 40)
	if m.Cobra.SamplesSeen == 0 {
		t.Fatal("no samples reached the optimizer")
	}
	if m.Cobra.Triggers == 0 {
		t.Fatal("coherent-pressure trigger never fired")
	}
	if m.Cobra.PatchesApplied == 0 {
		t.Fatal("no patches applied")
	}
	if m.Cobra.PrefetchesNopped == 0 {
		t.Fatal("no prefetches removed")
	}
	if m.Cobra.TracesEmitted == 0 {
		t.Fatal("trace-cache deployment expected by default config")
	}
}

func TestCobraNoprefetchImprovesDaxpy(t *testing.T) {
	// The headline result: with a cache-resident working set on 4 threads,
	// removing the boundary-crossing prefetches at run time beats the
	// statically prefetched baseline (paper Fig. 3a: up to 52%).
	base := daxpyMeasure(t, 4, nil, 40)
	opt := daxpyMeasure(t, 4, cfg(cobra.StrategyNoprefetch), 40)
	if opt.Cycles >= base.Cycles {
		t.Fatalf("noprefetch (%d cycles) not faster than baseline (%d)", opt.Cycles, base.Cycles)
	}
	// And it must reduce dirty-snoop traffic.
	if opt.Mem.BusRdHitm+opt.Mem.BusRdInvalAllHitm >= base.Mem.BusRdHitm+base.Mem.BusRdInvalAllHitm {
		t.Fatalf("coherent events not reduced: %d vs %d",
			opt.Mem.BusRdHitm+opt.Mem.BusRdInvalAllHitm, base.Mem.BusRdHitm+base.Mem.BusRdInvalAllHitm)
	}
}

func TestCobraExclReducesUpgradeStalls(t *testing.T) {
	base := daxpyMeasure(t, 4, nil, 40)
	opt := daxpyMeasure(t, 4, cfg(cobra.StrategyExcl), 40)
	if opt.Cobra.PrefetchesExcl == 0 {
		t.Fatal("no prefetches converted to .excl")
	}
	// The excl rewrite converts blocking store upgrades into non-blocking
	// exclusive prefetches (paper Fig. 3b: 14-18% at 128K).
	if opt.Cycles >= base.Cycles {
		t.Fatalf("prefetch.excl (%d cycles) not faster than baseline (%d)", opt.Cycles, base.Cycles)
	}
}

func TestCobraOffOnlyMonitors(t *testing.T) {
	m := daxpyMeasure(t, 2, cfg(cobra.StrategyOff), 10)
	if m.Cobra.PatchesApplied != 0 {
		t.Fatal("StrategyOff applied patches")
	}
	if m.Cobra.SamplesSeen == 0 {
		t.Fatal("StrategyOff did not monitor")
	}
}

func TestCobraSingleThreadNoTrigger(t *testing.T) {
	// One thread has no coherent misses: the trigger must stay silent and
	// the binary untouched (adaptivity = not patching when unneeded).
	m := daxpyMeasure(t, 1, cfg(cobra.StrategyNoprefetch), 10)
	if m.Cobra.PatchesApplied != 0 {
		t.Fatalf("patched a single-threaded run: %+v", m.Cobra)
	}
}

func TestCobraResultsStillCorrect(t *testing.T) {
	// Daxpy's Verify hook runs inside Measure; with patching active the
	// numeric results must be unchanged (prefetches are non-binding).
	daxpyMeasure(t, 4, cfg(cobra.StrategyNoprefetch), 12)
	daxpyMeasure(t, 4, cfg(cobra.StrategyExcl), 12)
	daxpyMeasure(t, 4, cfg(cobra.StrategyAdaptive), 12)
}

func TestCobraInPlaceMode(t *testing.T) {
	c := cobra.DefaultConfig(cobra.StrategyNoprefetch)
	c.UseTraceCache = false
	m := daxpyMeasure(t, 4, &c, 40)
	if m.Cobra.PatchesApplied == 0 || m.Cobra.TracesEmitted != 0 {
		t.Fatalf("in-place mode stats: %+v", m.Cobra)
	}
}

func TestCobraAdaptiveKeepsBeneficialPatch(t *testing.T) {
	m := daxpyMeasure(t, 4, cfg(cobra.StrategyAdaptive), 60)
	if m.Cobra.PatchesApplied == 0 {
		t.Fatal("adaptive never patched")
	}
	// For the small working set, noprefetch helps, so the patch should
	// survive evaluation (no rollback).
	if m.Cobra.PatchesRolledBack != 0 {
		t.Fatalf("beneficial patch rolled back: %+v", m.Cobra)
	}
}

func TestCobraDeterministic(t *testing.T) {
	a := daxpyMeasure(t, 4, cfg(cobra.StrategyNoprefetch), 20)
	b := daxpyMeasure(t, 4, cfg(cobra.StrategyNoprefetch), 20)
	if a.Cycles != b.Cycles || a.Cobra != b.Cobra {
		t.Fatalf("non-deterministic COBRA runs:\n%+v\n%+v", a, b)
	}
}

func TestCobraPatchedBinaryStillDecodes(t *testing.T) {
	w := workload.Daxpy(workload.DaxpyParams{WorkingSetBytes: 128 << 10, OuterReps: 30})
	bc := workload.SMPConfig(4)
	bc.Cobra = cfg(cobra.StrategyNoprefetch)
	inst, err := workload.Build(w, bc)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Run(); err != nil {
		t.Fatal(err)
	}
	img := inst.Ctx.M.Image()
	for pc := 0; pc < img.Len(); pc++ {
		w0, w1 := img.Words(pc)
		if _, err := ia64.Decode(w0, w1); err != nil {
			t.Fatalf("slot %d undecodable after patching: %v", pc, err)
		}
	}
}

// rotatingCounters is a workload whose threads read-modify-write integer
// chunks whose ownership rotates between threads every repetition: each
// load finds the line Modified in the previous owner's cache and a store
// follows immediately — the exact pattern the ld.bias extension (§4)
// collapses from two coherence transactions (read + upgrade) into one
// ownership read. The chunk index is masked, so the compiler sees no
// affine stream and emits no prefetches: only the bias rewrite can help.
func rotatingCounters(reps int) *workload.Workload {
	const n = 4096
	prog := &ir.Program{
		Name:   "counters",
		Arrays: []ir.Array{{Name: "cnt", Kind: ir.I64, Elems: n}},
		Funcs: []*ir.Func{{
			Name:      "bump",
			Parallel:  true,
			IntParams: []string{"off"},
			Body: []ir.Stmt{
				ir.For{Var: "i", Lo: ir.V("lo"), Hi: ir.V("hi"), Body: []ir.Stmt{
					ir.SetI{Name: "x", Val: ir.IAnd(ir.IAdd(ir.V("i"), ir.V("off")), ir.I(n-1))},
					ir.IStore{Array: "cnt", Index: ir.V("x"),
						Val: ir.IAdd(ir.IAt("cnt", ir.V("x")), ir.I(1))},
				}},
			},
		}},
	}
	return &workload.Workload{
		Name: "counters",
		Prog: prog,
		Run: func(c *workload.Ctx) error {
			for r := 0; r < reps; r++ {
				off := int64((r % 4) * (n / 4))
				err := c.ParallelFor("bump", n, func(tid int, rf *ia64.RegFile) {
					rf.SetGR(c.Res.Funcs["bump"].IntArgs["off"], off)
				})
				if err != nil {
					return err
				}
			}
			return nil
		},
	}
}

func TestCobraBiasOnRotatingCounters(t *testing.T) {
	measure := func(cfg *cobra.Config) workload.Measurement {
		bc := workload.SMPConfig(4)
		bc.Cobra = cfg
		inst, err := workload.Build(rotatingCounters(60), bc)
		if err != nil {
			t.Fatal(err)
		}
		m, err := inst.Measure()
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	base := measure(nil)
	cfgB := cobra.DefaultConfig(cobra.StrategyBias)
	opt := measure(&cfgB)
	if opt.Cobra.LoadsBiased == 0 {
		t.Fatalf("no loads biased: %+v", opt.Cobra)
	}
	// ld.bias merges the read and the ownership acquisition: the upgrade
	// transactions at the stores must drop substantially.
	if opt.Mem.BusUpgrades >= base.Mem.BusUpgrades {
		t.Fatalf("upgrades not reduced: %d vs %d", opt.Mem.BusUpgrades, base.Mem.BusUpgrades)
	}
	if opt.Cycles >= base.Cycles {
		t.Fatalf("ld.bias (%d cycles) not faster than baseline (%d)", opt.Cycles, base.Cycles)
	}
}

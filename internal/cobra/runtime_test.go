package cobra

import (
	"testing"

	"repro/internal/hpm"
	"repro/internal/ia64"
	"repro/internal/obs"
	"repro/internal/perfmon"
)

// fakeContext satisfies perfmon.Context without a full machine, for
// runtime unit tests that never execute code.
type fakeContext struct {
	pmus []*hpm.PMU
}

func newFakeContext(n int) *fakeContext {
	c := &fakeContext{}
	for i := 0; i < n; i++ {
		c.pmus = append(c.pmus, hpm.NewPMU(i))
	}
	return c
}

func (c *fakeContext) NumCPUs() int                  { return len(c.pmus) }
func (c *fakeContext) PMU(cpu int) *hpm.PMU          { return c.pmus[cpu] }
func (c *fakeContext) SamplePC(cpu int) int          { return 0 }
func (c *fakeContext) SampleThreadID(cpu int) int    { return cpu }
func (c *fakeContext) SampleCycle(cpu int) int64     { return 0 }
func (c *fakeContext) ChargeCycles(cpu int, n int64) {}

func TestChooseRewriteEscalation(t *testing.T) {
	r := &Runtime{cfg: DefaultConfig(StrategyAdaptive)}
	st := &RegionState{}
	rw, ok := r.chooseRewrite(st)
	if !ok || rw != RewriteNop {
		t.Fatalf("first choice = %v,%v, want nop", rw, ok)
	}
	st.TriedNop = true
	rw, ok = r.chooseRewrite(st)
	if !ok || rw != RewriteExcl {
		t.Fatalf("second choice = %v,%v, want excl", rw, ok)
	}
	st.TriedExcl = true
	if _, ok := r.chooseRewrite(st); ok {
		t.Fatal("third choice should be exhausted")
	}
}

func TestChooseRewriteBlockedRegion(t *testing.T) {
	for _, s := range []Strategy{StrategyNoprefetch, StrategyExcl, StrategyAdaptive} {
		r := &Runtime{cfg: DefaultConfig(s)}
		st := &RegionState{Blocked: true}
		if _, ok := r.chooseRewrite(st); ok {
			t.Fatalf("strategy %v patched a blocked region", s)
		}
	}
}

func TestChooseRewriteFixedStrategies(t *testing.T) {
	rNop := &Runtime{cfg: DefaultConfig(StrategyNoprefetch)}
	if rw, ok := rNop.chooseRewrite(&RegionState{}); !ok || rw != RewriteNop {
		t.Fatal("noprefetch strategy must choose nop")
	}
	rExcl := &Runtime{cfg: DefaultConfig(StrategyExcl)}
	if rw, ok := rExcl.chooseRewrite(&RegionState{}); !ok || rw != RewriteExcl {
		t.Fatal("excl strategy must choose excl")
	}
	rOff := &Runtime{cfg: DefaultConfig(StrategyOff)}
	if _, ok := rOff.chooseRewrite(&RegionState{}); ok {
		t.Fatal("off strategy chose a rewrite")
	}
}

func TestRewriteApply(t *testing.T) {
	in := mustLfetch()
	nop := RewriteNop.apply(in)
	if nop.Op.String() != "nop" || nop.QP != in.QP {
		t.Fatalf("nop rewrite = %+v", nop)
	}
	excl := RewriteExcl.apply(in)
	if excl.Op != in.Op || excl.Hint.String() != ".excl" || excl.R2 != in.R2 {
		t.Fatalf("excl rewrite = %+v", excl)
	}
	if RewriteNop.String() != "nop" || RewriteExcl.String() != "excl" {
		t.Fatal("rewrite names")
	}
}

// TestTriggerHorizonSuppressesClusters replays the failure mode that
// motivated the horizon: windows alternating between quiet (few misses,
// clustered coherent events) and busy (streaming misses) must not trigger,
// while sustained coherent pressure must.
func TestTriggerHorizonSuppressesClusters(t *testing.T) {
	ctx := newFakeContext(1)
	// A Runtime without machine/timer: drive optimizePass by hand.
	r := &Runtime{
		cfg:     DefaultConfig(StrategyOff),
		driver:  perfmon.NewDriver(perfmon.DefaultConfig(), ctx),
		usbs:    make([]*USB, 1),
		prof:    NewProfiler(180),
		regions: map[LoopKey]*RegionState{},
		stats:   newStatCounters(obs.NewRegistry()),
	}
	r.usbs[0] = &USB{CPU: 0}

	cum := struct{ cyc, l2m, instr, hitm int64 }{}
	push := func(cyc, l2m, hitm int64) {
		cum.cyc += cyc
		cum.l2m += l2m
		cum.instr += cyc / 2
		cum.hitm += hitm
		var s perfmon.Sample
		s.CPU = 0
		s.Counters[0] = hpm.Counter{Event: hpm.EvCPUCycles, Value: cum.cyc}
		s.Counters[1] = hpm.Counter{Event: hpm.EvL2Misses, Value: cum.l2m}
		s.Counters[2] = hpm.Counter{Event: hpm.EvInstRetired, Value: cum.instr}
		s.Counters[3] = hpm.Counter{Event: hpm.EvBusCoherent, Value: cum.hitm}
		r.usbs[0].Push(s)
	}
	push(1000, 0, 0) // baseline sample

	// Alternating quiet-cluster / busy-streaming windows: aggregate share
	// stays low, so no trigger.
	for i := 0; i < 8; i++ {
		if i%2 == 0 {
			push(100_000, 40, 36) // cluster: high share in isolation
		} else {
			push(100_000, 8000, 0) // streaming: dilutes the aggregate
		}
		r.optimizePass(int64(i+1) * 50_000)
	}
	if got := r.Stats().Triggers; got != 0 {
		t.Fatalf("clustered pattern triggered %d times", got)
	}

	// Sustained coherent pressure: every window coherent-heavy.
	for i := 0; i < 4; i++ {
		push(100_000, 120, 90)
		r.optimizePass(int64(i+100) * 50_000)
	}
	if r.Stats().Triggers == 0 {
		t.Fatal("sustained coherent pressure never triggered")
	}
}

func TestStatsSnapshot(t *testing.T) {
	r := &Runtime{stats: newStatCounters(obs.NewRegistry())}
	r.stats.patchesApplied.Add(3)
	s := r.Stats()
	s.PatchesApplied = 99
	if r.Stats().PatchesApplied != 3 {
		t.Fatal("Stats returned a live reference")
	}
}

func TestStrategyNames(t *testing.T) {
	want := map[Strategy]string{
		StrategyOff:        "off",
		StrategyNoprefetch: "noprefetch",
		StrategyExcl:       "prefetch.excl",
		StrategyAdaptive:   "adaptive",
	}
	for s, n := range want {
		if s.String() != n {
			t.Errorf("%d.String() = %q, want %q", s, s.String(), n)
		}
	}
}

func TestDefaultConfigSanity(t *testing.T) {
	c := DefaultConfig(StrategyNoprefetch)
	if c.OptimizeInterval <= 0 || c.CoherentLatency <= 0 ||
		c.CoherentShareThreshold <= 0 || c.EvaluateWindows <= 0 {
		t.Fatalf("default config has zero knobs: %+v", c)
	}
	if c.CoherentLatency <= c.Sampling.DEARMinLatency {
		t.Fatal("second-level DEAR filter must exceed the first-level filter")
	}
}

// mustLfetch builds the canonical lfetch.nt1 instruction used by rewrite
// tests.
func mustLfetch() ia64.Instr {
	return ia64.Instr{Op: ia64.OpLfetch, R2: 43, Hint: ia64.HintNT1, QP: 16}
}

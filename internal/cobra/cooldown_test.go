package cobra

import (
	"testing"

	"repro/internal/ia64"
	"repro/internal/obs"
)

// buildLfetchLoop assembles a minimal patchable loop — an lfetch followed
// by a counted backward branch — and returns the image, its region, and
// the lfetch slot.
func buildLfetchLoop(t *testing.T) (*ia64.Image, Region, int) {
	t.Helper()
	img := ia64.NewImage()
	a := ia64.NewAsm(img, "loop")
	a.Label("top")
	lf := a.Emit(ia64.Instr{Op: ia64.OpLfetch, R2: 4, Hint: ia64.HintNT1})
	a.Nop()
	br := a.Br(ia64.BrCloop, 0, "top")
	a.Emit(ia64.Instr{Op: ia64.OpHalt})
	entry, err := a.Close()
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	key := LoopKey{Head: entry, BranchPC: entry + br}
	r := Region{Key: key, Start: entry, End: entry + br, FuncName: "loop"}
	return img, r, entry + lf
}

// TestCooldownUntilMatchesEarliestRedeploy pins the window-vs-cycle
// contract of the rollback cooldown: the CooldownUntil evidence recorded
// with a rolled_back decision must equal the cycle of the earliest
// optimizer pass at which the region's cooldown has expired. Before the
// fix, the per-pass decrement ran after evaluatePatches in the same pass
// that set the cooldown, so the region became deployable one full
// OptimizeInterval before the cycle the decision log advertised.
func TestCooldownUntilMatchesEarliestRedeploy(t *testing.T) {
	img, region, lfetchSlot := buildLfetchLoop(t)

	cfg := DefaultConfig(StrategyAdaptive)
	cfg.MinLoopSamples = 0 // every window counts as loop-active
	cfg.EvaluateWindows = 2

	o := obs.New(obs.Config{Decisions: true})
	r := &Runtime{
		cfg:     cfg,
		patcher: NewPatcher(img, false),
		prof:    NewProfiler(cfg.CoherentLatency),
		regions: map[LoopKey]*RegionState{},
		stats:   newStatCounters(obs.NewRegistry()),
		obs:     o,
	}

	patch, err := r.patcher.Deploy(region, []int{lfetchSlot}, RewriteNop)
	if err != nil {
		t.Fatalf("deploy: %v", err)
	}
	// An absurd baseline guarantees the judgement regresses: the synthetic
	// windows retire nothing, so activeAgg.IPC() is 0.
	r.regions[region.Key] = &RegionState{Patch: patch, Rewrite: RewriteNop, Baseline: 10}
	// The patch bypassed deployOptimizations; record its lifecycle prefix
	// so the replayed state machine starts from a legal deployed state.
	o.Decisions().Record(0, uint64(region.Key.Head), 0, obs.StateCandidate, "test", obs.Evidence{})
	o.Decisions().Record(0, uint64(region.Key.Head), 0, obs.StateDeployed, "test", obs.Evidence{})

	interval := cfg.OptimizeInterval
	var rolledBackAt, cooldownUntil int64
	var clearedAt int64
	for pass := int64(1); pass <= 8; pass++ {
		now := pass * interval
		r.optimizePass(now)
		st := r.regions[region.Key]
		if rolledBackAt == 0 {
			for _, d := range o.Decisions().Decisions() {
				if d.To == obs.StateRolledBack {
					rolledBackAt = d.Cycle
					cooldownUntil = d.Evidence.CooldownUntil
				}
			}
			if rolledBackAt != 0 && st.Cooldown == 0 {
				t.Fatalf("cooldown already expired in the pass that set it (cycle %d)", now)
			}
			continue
		}
		// After the pass's decrement, cooldown==0 means deployOptimizations
		// would have accepted the region this pass.
		if st.Cooldown == 0 {
			clearedAt = now
			break
		}
	}
	if rolledBackAt == 0 {
		t.Fatal("patch was never rolled back")
	}
	if cooldownUntil <= rolledBackAt {
		t.Fatalf("CooldownUntil %d not after rollback cycle %d", cooldownUntil, rolledBackAt)
	}
	if clearedAt == 0 {
		t.Fatal("cooldown never expired")
	}
	if clearedAt != cooldownUntil {
		t.Fatalf("region deployable at cycle %d, decision log promised CooldownUntil %d",
			clearedAt, cooldownUntil)
	}
	if v := o.Decisions().Violations(); len(v) != 0 {
		t.Fatalf("lifecycle violations: %v", v)
	}
}

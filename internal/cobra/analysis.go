package cobra

import (
	"repro/internal/ia64"
	"repro/internal/mem"
)

// Region is a candidate optimization region: a loop body discovered from
// BTB profiles, widened to include its straight-line preheader so the
// prologue prefetch burst is covered too.
type Region struct {
	Key      LoopKey
	Start    int // widened region start (preheader)
	End      int // inclusive: the loop branch slot
	FuncName string
}

// Analyzer performs the binary analysis of §4: loop boundary construction,
// prefetch discovery inside loop bodies, and association of prefetches and
// stores with the data structures delinquent loads touch — all from the
// binary image and the process memory map, never from compiler metadata.
type Analyzer struct {
	img    *ia64.Image
	memory *mem.Memory
}

// NewAnalyzer builds an analyzer over the running process image.
func NewAnalyzer(img *ia64.Image, memory *mem.Memory) *Analyzer {
	return &Analyzer{img: img, memory: memory}
}

// ValidLoop checks a BTB-discovered backward branch pair for structural
// sanity before it is treated as a loop: the branch and its target must
// lie within the same function of the running binary. Without this check,
// a branch inside a code-cache trace that targets its original function
// (the trace's loop-exit path) would masquerade as a loop spanning
// arbitrary code.
func (a *Analyzer) ValidLoop(k LoopKey) bool {
	fn, ok := a.img.FuncAt(k.Head)
	if !ok {
		return false
	}
	return k.BranchPC >= fn.Entry && k.BranchPC < fn.End
}

// RegionFor widens a BTB-discovered loop [head, branch] backwards over its
// straight-line preheader: scanning from head toward the function entry
// until a branch (another control transfer) is found. The prologue
// prefetches icc emits before software-pipelined loops live there.
func (a *Analyzer) RegionFor(k LoopKey) Region {
	start := k.Head
	lo := 0
	fname := ""
	if fn, ok := a.img.FuncAt(k.Head); ok {
		lo = fn.Entry
		fname = fn.Name
	}
	for pc := k.Head - 1; pc >= lo; pc-- {
		in := a.img.Fetch(pc)
		if in.IsBranch() || in.Op == ia64.OpHalt {
			break
		}
		start = pc
	}
	return Region{Key: k, Start: start, End: k.BranchPC, FuncName: fname}
}

// Contains reports whether pc falls inside the region.
func (r Region) Contains(pc int) bool { return pc >= r.Start && pc <= r.End }

// ContainsLoopPC reports whether pc is inside the loop body proper.
func (r Region) ContainsLoopPC(pc int) bool { return pc >= r.Key.Head && pc <= r.Key.BranchPC }

// Prefetches returns the slots of all lfetch instructions in the region
// (prologue burst + steady state).
func (a *Analyzer) Prefetches(r Region) []int {
	var out []int
	for pc := r.Start; pc <= r.End && pc < a.img.Len(); pc++ {
		if a.img.Fetch(pc).Op == ia64.OpLfetch {
			out = append(out, pc)
		}
	}
	return out
}

// writtenGR returns the general register written by in, or -1.
func writtenGR(in ia64.Instr) int {
	switch in.Op {
	case ia64.OpAdd, ia64.OpSub, ia64.OpAddI, ia64.OpAnd, ia64.OpOr, ia64.OpXor,
		ia64.OpShlI, ia64.OpShrI, ia64.OpMovI, ia64.OpMul, ia64.OpLd, ia64.OpFInt,
		ia64.OpMovFromLC:
		return int(in.R1)
	}
	return -1
}

// ResolveSegment walks reaching definitions of reg backwards from slot pc
// (exclusive) down to slot lo, following address arithmetic until it finds
// the immediate that materialized an array base, and returns the memory
// segment it points into. This is how the optimizer associates a prefetch
// or store instruction with a data structure: the same def-use walk a
// binary optimizer performs on real IA-64 code.
func (a *Analyzer) ResolveSegment(lo, pc int, reg uint8, depth int) (mem.Segment, bool) {
	if depth <= 0 {
		return mem.Segment{}, false
	}
	for i := pc - 1; i >= lo; i-- {
		in := a.img.Fetch(i)
		if writtenGR(in) != int(reg) {
			continue
		}
		switch in.Op {
		case ia64.OpMovI:
			return a.memory.SegmentFor(uint64(in.Imm))
		case ia64.OpAddI:
			if in.R2 == reg {
				continue // self-update (cursor advance): keep walking back
			}
			reg = in.R2
			return a.ResolveSegment(lo, i, reg, depth-1)
		case ia64.OpAdd:
			// Two operands: an address chain and an offset chain. Try both.
			if seg, ok := a.ResolveSegment(lo, i, in.R2, depth-1); ok {
				return seg, true
			}
			return a.ResolveSegment(lo, i, in.R3, depth-1)
		case ia64.OpShlI, ia64.OpShrI, ia64.OpMul, ia64.OpSub:
			// Index arithmetic, not a base pointer: follow the first source.
			if in.R2 == reg {
				continue
			}
			return a.ResolveSegment(lo, i, in.R2, depth-1)
		case ia64.OpLd:
			return mem.Segment{}, false // loaded pointer: give up
		default:
			return mem.Segment{}, false
		}
	}
	return mem.Segment{}, false
}

// PrefetchTargets maps each lfetch slot in the region to the memory
// segment (array) it streams over, where resolvable.
func (a *Analyzer) PrefetchTargets(r Region) map[int]mem.Segment {
	lo := 0
	if fn, ok := a.img.FuncAt(r.Start); ok {
		lo = fn.Entry
	}
	out := map[int]mem.Segment{}
	for _, pc := range a.Prefetches(r) {
		in := a.img.Fetch(pc)
		if seg, ok := a.ResolveSegment(lo, pc, in.R2, 12); ok {
			out[pc] = seg
		}
	}
	return out
}

// StoredSegments returns the segments written by store instructions inside
// the loop body — the "store soon follows the load" evidence that makes a
// prefetch worth converting to lfetch.excl.
func (a *Analyzer) StoredSegments(r Region) map[string]bool {
	lo := 0
	if fn, ok := a.img.FuncAt(r.Start); ok {
		lo = fn.Entry
	}
	out := map[string]bool{}
	for pc := r.Start; pc <= r.End && pc < a.img.Len(); pc++ {
		in := a.img.Fetch(pc)
		if !in.IsStore() {
			continue
		}
		if seg, ok := a.ResolveSegment(lo, pc, in.R2, 12); ok {
			out[seg.Name] = true
		}
	}
	return out
}

// SegmentOfAddr returns the segment containing a DEAR data address.
func (a *Analyzer) SegmentOfAddr(addr uint64) (mem.Segment, bool) {
	return a.memory.SegmentFor(addr)
}

package cobra

import (
	"errors"
	"testing"

	"repro/internal/ia64"
)

func TestDeployVariantsAndSwitch(t *testing.T) {
	img, region, lfetchSlot := buildLfetchLoop(t)
	orig := img.Fetch(region.Start)
	p := NewPatcher(img, true)

	vs, err := p.DeployVariants(region, []VariantSpec{
		{Rewrite: RewriteNop, Slots: []int{lfetchSlot}},
		{Rewrite: RewriteExcl, Slots: []int{lfetchSlot}},
	})
	if err != nil {
		t.Fatalf("DeployVariants: %v", err)
	}
	if len(vs.Variants) != 2 {
		t.Fatalf("resident variants = %d, want 2", len(vs.Variants))
	}
	if vs.Active() != -1 || vs.ActivePatch() != nil {
		t.Fatal("fresh variant set must dispatch the original code")
	}
	// Deployment must not touch dispatch: entry unchanged.
	if img.Fetch(region.Start) != orig {
		t.Fatal("DeployVariants modified the region entry")
	}
	// Each variant is a distinct registered trace carrying its rewrite.
	seen := map[int]bool{}
	for i, v := range vs.Variants {
		if seen[v.TraceEntry] {
			t.Fatalf("variant %d shares a trace entry", i)
		}
		seen[v.TraceEntry] = true
		fn, ok := img.FuncAt(v.TraceEntry)
		if !ok {
			t.Fatalf("variant %d not registered as a function", i)
		}
		if v.ActiveKey.Head < fn.Entry || v.ActiveKey.BranchPC >= fn.End {
			t.Fatalf("variant %d ActiveKey %+v outside trace [%d,%d)", i, v.ActiveKey, fn.Entry, fn.End)
		}
	}

	// Switch to nop: entry becomes a branch into variant 0's trace.
	if err := p.Switch(vs, 0); err != nil {
		t.Fatalf("Switch(0): %v", err)
	}
	in := img.Fetch(region.Start)
	if !in.IsBranch() || int(in.Imm) != vs.Variants[0].TraceEntry {
		t.Fatalf("entry after Switch(0) = %+v", in)
	}
	if ap := vs.ActivePatch(); ap == nil || ap.Rewrite != RewriteNop || ap.TraceEntry != vs.Variants[0].TraceEntry {
		t.Fatalf("ActivePatch after Switch(0) = %+v", vs.ActivePatch())
	}

	// Switch mid-phase to excl: still a single-word repoint.
	genBefore := img.Generation()
	if err := p.Switch(vs, 1); err != nil {
		t.Fatalf("Switch(1): %v", err)
	}
	if img.Generation() != genBefore+1 {
		t.Fatalf("switch cost %d image generations, want 1", img.Generation()-genBefore)
	}
	if in := img.Fetch(region.Start); int(in.Imm) != vs.Variants[1].TraceEntry {
		t.Fatalf("entry after Switch(1) = %+v", in)
	}

	// Switching to the active variant is a free no-op.
	genBefore = img.Generation()
	if err := p.Switch(vs, 1); err != nil || img.Generation() != genBefore {
		t.Fatalf("idempotent switch: err=%v gens=%d", err, img.Generation()-genBefore)
	}

	// Back to the original code: entry restored exactly.
	if err := p.Switch(vs, -1); err != nil {
		t.Fatalf("Switch(-1): %v", err)
	}
	if img.Fetch(region.Start) != orig {
		t.Fatal("Switch(-1) did not restore the original entry")
	}
	if vs.Active() != -1 || vs.ActivePatch() != nil {
		t.Fatal("Switch(-1) must report the original as active")
	}
}

func TestDeployVariantsErrors(t *testing.T) {
	img, region, lfetchSlot := buildLfetchLoop(t)
	p := NewPatcher(img, true)

	if _, err := p.DeployVariants(region, nil); !errors.Is(err, ErrNoRewritableSlots) {
		t.Fatalf("empty table error = %v, want ErrNoRewritableSlots", err)
	}
	if _, err := p.DeployVariants(region, []VariantSpec{{Rewrite: RewriteBias, Slots: []int{lfetchSlot}}}); !errors.Is(err, ErrNoRewritableSlots) {
		t.Fatalf("inapplicable variant error = %v, want ErrNoRewritableSlots", err)
	}

	inPlace := NewPatcher(img, false)
	if _, err := inPlace.DeployVariants(region, []VariantSpec{{Rewrite: RewriteNop, Slots: []int{lfetchSlot}}}); err == nil {
		t.Fatal("in-place patcher accepted a variant table")
	}

	vs, err := p.DeployVariants(region, []VariantSpec{{Rewrite: RewriteNop, Slots: []int{lfetchSlot}}})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Switch(vs, 0); err != nil {
		t.Fatal(err)
	}
	// Redirected entry: both deploy paths must refuse with the sentinel.
	if _, err := p.DeployVariants(region, []VariantSpec{{Rewrite: RewriteExcl, Slots: []int{lfetchSlot}}}); !errors.Is(err, ErrAlreadyPatched) {
		t.Fatalf("redeploy over dispatched variant = %v, want ErrAlreadyPatched", err)
	}
	if _, err := p.Deploy(region, []int{lfetchSlot}, RewriteExcl); !errors.Is(err, ErrAlreadyPatched) {
		t.Fatalf("Deploy over dispatched variant = %v, want ErrAlreadyPatched", err)
	}
	if err := p.Switch(vs, 2); !errors.Is(err, ErrUnknownVariant) {
		t.Fatalf("out-of-range switch = %v, want ErrUnknownVariant", err)
	}
	if err := p.Switch(vs, -2); !errors.Is(err, ErrUnknownVariant) {
		t.Fatalf("negative switch = %v, want ErrUnknownVariant", err)
	}
}

func TestDeploySentinelErrors(t *testing.T) {
	img, region, lfetchSlot := buildLfetchLoop(t)
	for _, useTrace := range []bool{false, true} {
		p := NewPatcher(img, useTrace)
		if _, err := p.Deploy(region, nil, RewriteNop); !errors.Is(err, ErrNoRewritableSlots) {
			t.Fatalf("trace=%v: empty slots error = %v, want ErrNoRewritableSlots", useTrace, err)
		}
		// Bias targets plain integer loads; an lfetch slot is inapplicable.
		if _, err := p.Deploy(region, []int{lfetchSlot}, RewriteBias); !errors.Is(err, ErrNoRewritableSlots) {
			t.Fatalf("trace=%v: inapplicable error = %v, want ErrNoRewritableSlots", useTrace, err)
		}
	}
}

// TestVariantSwitchExecutesVariantCode runs the loop through each
// dispatch state and checks the executed instruction stream actually
// changes: the nop variant performs no prefetches, the excl variant
// prefetches exclusively, and restoring the original brings back the
// plain lfetch.
func TestVariantSwitchExecutesVariantCode(t *testing.T) {
	img, region, lfetchSlot := buildLfetchLoop(t)
	p := NewPatcher(img, true)
	vs, err := p.DeployVariants(region, []VariantSpec{
		{Rewrite: RewriteNop, Slots: []int{lfetchSlot}},
		{Rewrite: RewriteExcl, Slots: []int{lfetchSlot}},
	})
	if err != nil {
		t.Fatal(err)
	}
	fetchAt := func(pc int) ia64.Instr { return img.Fetch(pc) }
	// The dispatched code path starts at the entry; follow one branch hop
	// if the entry is a redirect.
	firstBody := func() ia64.Instr {
		in := fetchAt(region.Start)
		if in.IsBranch() && p.InCodeCache(int(in.Imm)) {
			return fetchAt(int(in.Imm))
		}
		return in
	}
	if in := firstBody(); in.Op != ia64.OpLfetch || in.Hint != ia64.HintNT1 {
		t.Fatalf("original body starts with %+v", in)
	}
	if err := p.Switch(vs, 0); err != nil {
		t.Fatal(err)
	}
	if in := firstBody(); in.Op != ia64.OpNop {
		t.Fatalf("nop variant body starts with %+v", in)
	}
	if err := p.Switch(vs, 1); err != nil {
		t.Fatal(err)
	}
	if in := firstBody(); in.Op != ia64.OpLfetch || in.Hint != ia64.HintExcl {
		t.Fatalf("excl variant body starts with %+v", in)
	}
	if err := p.Switch(vs, -1); err != nil {
		t.Fatal(err)
	}
	if in := firstBody(); in.Op != ia64.OpLfetch || in.Hint != ia64.HintNT1 {
		t.Fatalf("restored body starts with %+v", in)
	}
}

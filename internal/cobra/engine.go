package cobra

import (
	"fmt"
	"sort"

	"repro/internal/obs"
)

// Engine is a pluggable optimization strategy: the policy layer between
// profiling and patching. Each optimizer pass the runtime calls Judge
// with the fresh profile window (re-evaluate outstanding patches,
// commit/abandon), and Propose when the coherent-pressure trigger fired
// over the rolling horizon (generate and deploy new candidates). All
// machine state is reached through the Control facade, so an engine can
// live outside this package (see internal/strategy).
type Engine interface {
	// Name is the registry name the engine was built under.
	Name() string
	// Judge re-evaluates every outstanding patch against its pre-patch
	// baselines. Called every pass, before the trigger decision.
	Judge(c *Control, win Window, now int64)
	// Propose reacts to a fired trigger: select regions from the horizon
	// aggregate agg and deploy new optimizations.
	Propose(c *Control, agg Window, now int64)
}

// EngineFactory builds an engine instance for one runtime.
type EngineFactory func(cfg Config) Engine

var engineRegistry = map[string]EngineFactory{}

// RegisterEngine adds a strategy engine to the registry. The default
// "prefetch" engine registers here; external packages (internal/strategy)
// register theirs from init so importing the package is enough to make
// its engines selectable by name.
func RegisterEngine(name string, f EngineFactory) {
	if name == "" || f == nil {
		panic("cobra: RegisterEngine with empty name or nil factory")
	}
	if _, dup := engineRegistry[name]; dup {
		panic(fmt.Sprintf("cobra: engine %q registered twice", name))
	}
	engineRegistry[name] = f
}

// EngineNames returns the registered engine names, sorted.
func EngineNames() []string {
	names := make([]string, 0, len(engineRegistry))
	for n := range engineRegistry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// NewEngine builds the named engine ("" selects the default prefetch
// engine).
func NewEngine(name string, cfg Config) (Engine, error) {
	if name == "" {
		name = "prefetch"
	}
	f, ok := engineRegistry[name]
	if !ok {
		return nil, fmt.Errorf("cobra: unknown strategy engine %q (have %v)", name, EngineNames())
	}
	return f(cfg), nil
}

func init() {
	RegisterEngine("prefetch", func(Config) Engine { return prefetchEngine{} })
}

// prefetchEngine is the historical built-in policy — nop / lfetch.excl /
// ld8.bias rewrites chosen by the Strategy precedence, destructive
// patch/rollback lifecycle — extracted behind the Engine interface. It
// delegates to the runtime's original evaluatePatches and
// deployOptimizations bodies, so its behavior is bit-identical to the
// pre-registry control loop (the results/ goldens pin this).
type prefetchEngine struct{}

func (prefetchEngine) Name() string { return "prefetch" }

func (prefetchEngine) Judge(c *Control, win Window, now int64) {
	c.r.evaluatePatches(win, now)
}

func (prefetchEngine) Propose(c *Control, agg Window, now int64) {
	c.r.deployOptimizations(agg, now)
}

// SortLoopKeys orders loop keys by full (Head, BranchPC) identity —
// engines must iterate candidate maps in this order so map iteration
// never leaks into trace or decision emission.
func SortLoopKeys(keys []LoopKey) { sortLoopKeys(keys) }

// Control is the machine-state facade handed to strategy engines: the
// profiling, analysis and patching components plus the per-region
// adaptive state, with helpers for the bookkeeping every engine needs
// (window accumulation, baselines, counters) so policies stay policy.
type Control struct {
	r *Runtime
}

// Control returns the engine facade of this runtime.
func (r *Runtime) Control() *Control { return &Control{r: r} }

// Config returns the runtime configuration.
func (c *Control) Config() Config { return c.r.cfg }

// Profiler exposes the aggregated system-wide profile.
func (c *Control) Profiler() *Profiler { return c.r.prof }

// Analyzer exposes binary analysis (regions, prefetch sites, segments).
func (c *Control) Analyzer() *Analyzer { return c.r.analyzer }

// Patcher exposes the binary patcher (in-place, trace, variant table).
func (c *Control) Patcher() *Patcher { return c.r.patcher }

// Observer returns the observability sink (nil-safe accessors).
func (c *Control) Observer() *obs.Observer { return c.r.obs }

// WindowOrdinal is the ordinal of the profiling window being processed.
func (c *Control) WindowOrdinal() int { return c.r.windows }

// GlobalIPC is the smoothed whole-program IPC baseline.
func (c *Control) GlobalIPC() float64 { return c.r.globalEMA }

// Region returns the adaptive state of a loop, creating it on first use.
func (c *Control) Region(k LoopKey) *RegionState {
	st := c.r.regions[k]
	if st == nil {
		st = &RegionState{}
		c.r.regions[k] = st
	}
	return st
}

// PatchedKeys returns the keys of regions with a live patch, in address
// order (map order must never leak into traces or decision logs).
func (c *Control) PatchedKeys() []LoopKey {
	var keys []LoopKey
	for k, st := range c.r.regions {
		if st.Patch == nil || len(st.Patch.Slots) == 0 {
			continue
		}
		keys = append(keys, k)
	}
	sortLoopKeys(keys)
	return keys
}

// AnyUnjudged reports whether any live patch still awaits its first
// judgement — engines stage deployments behind it so a regressing
// rewrite is caught before it is compounded.
func (c *Control) AnyUnjudged() bool {
	for _, st := range c.r.regions {
		if st.Patch != nil && len(st.Patch.Slots) > 0 && !st.Judged {
			return true
		}
	}
	return false
}

// CandidateLoads maps each hot loop to the delinquent loads it contains
// (§4's selection pipeline). When the trigger fired but no load could be
// pinpointed by the DEAR, every hot loop becomes a candidate with nil
// loads — the paper's loop-boundary fallback.
func (c *Control) CandidateLoads() map[LoopKey][]Delinquent {
	loops := c.r.prof.HotLoops(c.r.cfg.MinLoopSamples)
	if len(loops) == 0 {
		return nil
	}
	delinq := c.r.prof.DelinquentLoads(c.r.cfg.MinDelinquentSamples)
	regionLoads := map[LoopKey][]Delinquent{}
	for _, d := range delinq {
		for _, ls := range loops {
			if d.PC >= ls.Key.Head && d.PC <= ls.Key.BranchPC {
				regionLoads[ls.Key] = append(regionLoads[ls.Key], d)
				break // loops are sorted hottest-first
			}
		}
	}
	if len(regionLoads) == 0 {
		for _, ls := range loops {
			regionLoads[ls.Key] = nil
		}
	}
	return regionLoads
}

// SelectPrefetches applies the §4 association filters for a rewrite.
func (c *Control) SelectPrefetches(region Region, loads []Delinquent, rw Rewrite) []int {
	return c.r.selectPrefetches(region, loads, rw)
}

// ObserveWindow folds one profile window into a patched region's
// judgement aggregates and reports whether enough loop-active windows
// accumulated to judge. Active windows are those in which the patched
// loop actually ran (phase-fair comparison); the global aggregate
// catches patches that speed their own loop while slowing a downstream
// phase.
func (c *Control) ObserveWindow(st *RegionState, win Window) bool {
	st.GlobalAgg.Cycles += win.Cycles
	st.GlobalAgg.Instr += win.Instr
	if c.r.prof.LoopActivity(st.Patch.ActiveKey) >= c.r.cfg.MinLoopSamples {
		st.ActiveWindows++
		st.ActiveAgg.Samples += win.Samples
		st.ActiveAgg.Cycles += win.Cycles
		st.ActiveAgg.Instr += win.Instr
		st.ActiveAgg.L2Misses += win.L2Misses
		st.ActiveAgg.BusHitm += win.BusHitm
	}
	return st.ActiveWindows >= c.r.cfg.EvaluateWindows
}

// Regressed applies the rollback criterion to the accumulated judgement
// aggregates: the patch regressed if either the loop-active IPC or the
// whole-program IPC fell more than the tolerance below its baseline.
func (c *Control) Regressed(st *RegionState) bool {
	tol := c.r.cfg.RollbackTolerance
	return st.ActiveAgg.IPC() < st.Baseline*(1-tol) ||
		st.GlobalAgg.IPC() < st.GlobalBase*(1-tol)
}

// JudgeEvidence builds the decision-log evidence for a judgement of st.
func (c *Control) JudgeEvidence(st *RegionState) obs.Evidence {
	return obs.Evidence{
		BaselineIPC:       st.Baseline,
		PatchedIPC:        st.ActiveAgg.IPC(),
		GlobalBaselineIPC: st.GlobalBase,
		GlobalIPC:         st.GlobalAgg.IPC(),
		Tolerance:         c.r.cfg.RollbackTolerance,
		ActiveWindows:     st.ActiveWindows,
		Rewrite:           st.Rewrite.String(),
	}
}

// ResetJudgement marks st judged and clears the aggregates so the next
// judgement period starts fresh.
func (c *Control) ResetJudgement(st *RegionState) {
	st.Judged = true
	st.ActiveWindows = 0
	st.ActiveAgg = Window{}
	st.GlobalAgg = Window{}
}

// ArmJudgement (re)arms the judgement of a freshly deployed or switched
// patch: baselines are (re)anchored on the unbiased pre-patch EMAs, with
// the trigger window as fallback when the loop was never profiled
// unpatched.
func (c *Control) ArmJudgement(st *RegionState, win Window, now int64) {
	st.Baseline = st.PreIPC
	if st.Baseline == 0 {
		st.Baseline = win.IPC()
	}
	st.GlobalBase = c.r.globalEMA
	st.Judged = false
	st.ActiveWindows = 0
	st.ActiveAgg = Window{}
	st.GlobalAgg = Window{}
	st.DeployedAt = now
}

// ArmCooldown starts the post-rollback cooldown of st and returns the
// cycle at which the region becomes deployable again (the CooldownUntil
// evidence the decision log advertises).
func (c *Control) ArmCooldown(st *RegionState, now int64) int64 {
	st.Cooldown = c.r.cfg.EvaluateWindows
	return now + int64(st.Cooldown)*c.r.cfg.OptimizeInterval
}

// CountDeploy charges a deployment to the activity counters.
func (c *Control) CountDeploy(patch *Patch, rw Rewrite) {
	c.r.stats.patchesApplied.Inc()
	if patch.TraceEntry >= 0 {
		c.r.stats.tracesEmitted.Inc()
	}
	switch rw {
	case RewriteNop:
		c.r.stats.prefetchesNopped.Add(int64(patch.RewrittenPrefetches))
	case RewriteExcl:
		c.r.stats.prefetchesExcl.Add(int64(patch.RewrittenPrefetches))
	case RewriteBias:
		c.r.stats.loadsBiased.Add(int64(patch.RewrittenPrefetches))
	}
}

// CountRollback charges a rollback to the activity counters.
func (c *Control) CountRollback() { c.r.stats.patchesRolledBack.Inc() }

// CountSwitch charges a variant switch to the activity counters.
func (c *Control) CountSwitch() { c.r.stats.variantSwitches.Inc() }

// CountTraces charges n emitted code-cache traces (multi-version deploys
// emit several per patch event).
func (c *Control) CountTraces(n int) { c.r.stats.tracesEmitted.Add(int64(n)) }

package cobra

import (
	"testing"

	"repro/internal/ia64"
	"repro/internal/mem"
)

// buildIntRMWImage assembles a loop doing an integer read-modify-write:
// ld8 r10=[r13]; add; st8 [r13]=r10 — the load-then-store-to-same-line
// pattern ld8.bias targets.
func buildIntRMWImage(t *testing.T) (*ia64.Image, *mem.Memory, Region, int) {
	t.Helper()
	memory := mem.NewMemory(1<<20, 16<<10)
	base := memory.MustAlloc("prog.cnt", 4096, 128)

	img := ia64.NewImage()
	a := ia64.NewAsm(img, "rmw")
	a.Emit(ia64.Instr{Op: ia64.OpMovToLCI, Imm: 31})
	a.Emit(ia64.Instr{Op: ia64.OpMovI, R1: 13, Imm: int64(base)})
	a.Label("head")
	ld := a.Emit(ia64.Instr{Op: ia64.OpLd, R1: 10, R2: 13})
	a.Emit(ia64.Instr{Op: ia64.OpAddI, R1: 10, R2: 10, Imm: 1})
	a.Emit(ia64.Instr{Op: ia64.OpSt, R2: 13, R3: 10})
	a.Emit(ia64.Instr{Op: ia64.OpAddI, R1: 13, R2: 13, Imm: 8})
	br := a.Br(ia64.BrCloop, 0, "head")
	a.Emit(ia64.Instr{Op: ia64.OpHalt})
	entry, err := a.Close()
	if err != nil {
		t.Fatal(err)
	}
	key := LoopKey{Head: entry + 2, BranchPC: entry + br}
	region := Region{Key: key, Start: entry, End: entry + br, FuncName: "rmw"}
	return img, memory, region, entry + ld
}

func TestRewriteBiasApplicability(t *testing.T) {
	ld := ia64.Instr{Op: ia64.OpLd, R1: 10, R2: 13}
	if !RewriteBias.applicable(ld) {
		t.Fatal("bias rejects a plain ld8")
	}
	biased := RewriteBias.apply(ld)
	if biased.Hint != ia64.HintBias || biased.Op != ia64.OpLd || biased.R1 != ld.R1 {
		t.Fatalf("bias rewrite = %+v", biased)
	}
	// Not applicable twice, nor to other instructions.
	if RewriteBias.applicable(biased) {
		t.Fatal("bias reapplied to an already-biased load")
	}
	if RewriteBias.applicable(ia64.Instr{Op: ia64.OpLdf}) {
		t.Fatal("bias applied to an FP load (unsupported on IA-64)")
	}
	if RewriteBias.applicable(ia64.Instr{Op: ia64.OpLfetch}) {
		t.Fatal("bias applied to a prefetch")
	}
	if RewriteNop.applicable(ld) || RewriteExcl.applicable(ld) {
		t.Fatal("prefetch rewrites applied to a demand load")
	}
}

func TestPatcherDeploysBiasInPlace(t *testing.T) {
	img, _, region, ldPC := buildIntRMWImage(t)
	p := NewPatcher(img, false)
	patch, err := p.Deploy(region, []int{ldPC}, RewriteBias)
	if err != nil {
		t.Fatal(err)
	}
	if patch.RewrittenPrefetches != 1 {
		t.Fatalf("rewritten = %d", patch.RewrittenPrefetches)
	}
	if in := img.Fetch(ldPC); in.Hint != ia64.HintBias {
		t.Fatalf("load hint = %v, want .bias", in.Hint)
	}
	if err := p.Rollback(patch); err != nil {
		t.Fatal(err)
	}
	if in := img.Fetch(ldPC); in.Hint != ia64.HintNone {
		t.Fatal("rollback did not restore the load")
	}
}

func TestPatcherDeploysBiasTrace(t *testing.T) {
	img, _, region, ldPC := buildIntRMWImage(t)
	p := NewPatcher(img, true)
	patch, err := p.Deploy(region, []int{ldPC}, RewriteBias)
	if err != nil {
		t.Fatal(err)
	}
	// Original untouched beyond the redirect; trace carries the .bias.
	if in := img.Fetch(ldPC); in.Hint != ia64.HintNone {
		t.Fatal("trace deploy modified the original load")
	}
	fn, ok := img.FuncAt(patch.TraceEntry)
	if !ok {
		t.Fatal("trace not registered")
	}
	found := false
	for pc := fn.Entry; pc < fn.End; pc++ {
		if in := img.Fetch(pc); in.Op == ia64.OpLd && in.Hint == ia64.HintBias {
			found = true
		}
	}
	if !found {
		t.Fatal("no biased load in the trace")
	}
	// ActiveKey relocation points into the trace.
	if patch.ActiveKey.Head < fn.Entry || patch.ActiveKey.BranchPC >= fn.End {
		t.Fatalf("ActiveKey %+v outside trace [%d,%d)", patch.ActiveKey, fn.Entry, fn.End)
	}
}

func TestStrategyBiasChoosesBias(t *testing.T) {
	r := &Runtime{cfg: DefaultConfig(StrategyBias)}
	rw, ok := r.chooseRewrite(&RegionState{})
	if !ok || rw != RewriteBias {
		t.Fatalf("choice = %v,%v", rw, ok)
	}
	if StrategyBias.String() != "ld.bias" {
		t.Fatalf("name = %q", StrategyBias.String())
	}
}

package cobra

import (
	"sort"

	"repro/internal/hpm"
	"repro/internal/perfmon"
)

// USB is a User Sampling Buffer: the per-monitoring-thread store a
// monitoring thread copies kernel samples into (paper §3.1). The
// optimization thread drains USBs on each pass.
type USB struct {
	CPU     int
	samples []perfmon.Sample
	total   int64
}

// Push appends a sample (called by the monitoring thread).
func (u *USB) Push(s perfmon.Sample) {
	u.samples = append(u.samples, s)
	u.total++
}

// Drain returns and clears buffered samples.
func (u *USB) Drain() []perfmon.Sample {
	out := u.samples
	u.samples = nil
	return out
}

// Total returns the lifetime sample count.
func (u *USB) Total() int64 { return u.total }

// LoopKey identifies a loop discovered from BTB profiles: the backward
// taken branch and its target.
type LoopKey struct {
	Head     int // branch target (loop body entry)
	BranchPC int // backward branch address
}

// LoopStat is the observation count of one loop.
type LoopStat struct {
	Key   LoopKey
	Count int64
}

// BranchEdge is one taken control transfer observed through the BTB:
// branch slot → target slot, in image addresses. Unlike LoopKey it keeps
// forward branches too — the raw material of basic-block layout.
type BranchEdge struct {
	From int
	To   int
}

// EdgeStat is the observation count of one taken edge.
type EdgeStat struct {
	Edge  BranchEdge
	Count int64
}

// Delinquent aggregates DEAR captures of one load instruction that passed
// the coherent-latency filter.
type Delinquent struct {
	PC       int
	Count    int64
	TotalLat int64
	LastAddr uint64
}

// AvgLatency returns the mean observed latency.
func (d Delinquent) AvgLatency() int64 {
	if d.Count == 0 {
		return 0
	}
	return d.TotalLat / d.Count
}

// Window is one aggregation window's system-wide profile: counter deltas
// summed over all threads plus the loop and delinquent-load histograms.
type Window struct {
	Cycles   int64
	Instr    int64
	L2Misses int64
	BusHitm  int64
	Samples  int64
}

// IPC is retired instructions per cycle — the progress metric the
// re-adaptation controller compares before and after a patch. Unlike
// miss-per-cycle ratios it cannot be "improved" by simply running slower.
func (w Window) IPC() float64 {
	if w.Cycles == 0 {
		return 0
	}
	return float64(w.Instr) / float64(w.Cycles)
}

// CoherentShare returns the fraction of cache misses that are coherent
// (dirty-snoop) events. The paper's noprefetch filter requires coherent
// misses to dominate before removing prefetches — removing prefetches that
// hide plain capacity misses would regress (§5.2.1's filtering heuristic).
func (w Window) CoherentShare() float64 {
	if w.L2Misses == 0 {
		return 0
	}
	return float64(w.BusHitm) / float64(w.L2Misses)
}

// MissRate returns combined coherence+capacity pressure per kilocycle.
// It is a diagnostic metric only: the re-adaptation controller judges
// patches on IPC (see Window.IPC), which cannot be gamed by running
// slower.
func (w Window) MissRate() float64 {
	if w.Cycles == 0 {
		return 0
	}
	return float64(w.BusHitm+w.L2Misses) * 1000 / float64(w.Cycles)
}

// Profiler aggregates samples from all monitoring threads into system-wide
// loop and delinquent-load histograms (the paper's system-wide profile
// analysis: "optimization decisions are based on profiles collected from
// multiple threads").
type Profiler struct {
	coherentLatency int64

	prev map[int][hpm.NumCounters]hpm.Counter // last counter snapshot per CPU

	window     Window
	loops      map[LoopKey]int64
	edges      map[BranchEdge]int64
	delinquent map[int]*Delinquent
}

// NewProfiler creates a profiler with the given DEAR coherent-latency
// threshold (second-level filter).
func NewProfiler(coherentLatency int64) *Profiler {
	return &Profiler{
		coherentLatency: coherentLatency,
		prev:            map[int][hpm.NumCounters]hpm.Counter{},
		loops:           map[LoopKey]int64{},
		edges:           map[BranchEdge]int64{},
		delinquent:      map[int]*Delinquent{},
	}
}

// Add folds one sample into the current window.
func (p *Profiler) Add(s perfmon.Sample) {
	p.window.Samples++

	// Counter deltas vs the previous sample from the same CPU.
	if prev, ok := p.prev[s.CPU]; ok {
		for i := 0; i < hpm.NumCounters; i++ {
			d := s.Counters[i].Value - prev[i].Value
			if d < 0 {
				d = 0
			}
			switch s.Counters[i].Event {
			case hpm.EvCPUCycles:
				p.window.Cycles += d
			case hpm.EvL2Misses:
				p.window.L2Misses += d
			case hpm.EvInstRetired:
				p.window.Instr += d
			case hpm.EvBusCoherent:
				p.window.BusHitm += d
			}
		}
	}
	p.prev[s.CPU] = s.Counters

	// BTB: backward taken branches are loop latches; every taken pair
	// (forward skips included) also feeds the edge profile block layout
	// consumes.
	for _, b := range s.BTB {
		if b.TargetPC <= b.BranchPC {
			p.loops[LoopKey{Head: b.TargetPC, BranchPC: b.BranchPC}]++
		}
		p.edges[BranchEdge{From: b.BranchPC, To: b.TargetPC}]++
	}

	// DEAR: second-level latency filter isolates coherent misses.
	if s.DEAR.Valid && s.DEAR.Latency >= p.coherentLatency {
		d := p.delinquent[s.DEAR.PC]
		if d == nil {
			d = &Delinquent{PC: s.DEAR.PC}
			p.delinquent[s.DEAR.PC] = d
		}
		d.Count++
		d.TotalLat += s.DEAR.Latency
		d.LastAddr = s.DEAR.Addr
	}
}

// Window returns the current window totals.
func (p *Profiler) Window() Window { return p.window }

// LoopActivity returns the observation count of one loop in the current
// window (0 if unseen).
func (p *Profiler) LoopActivity(k LoopKey) int64 { return p.loops[k] }

// HotLoops returns loops observed at least minSamples times, hottest
// first.
func (p *Profiler) HotLoops(minSamples int64) []LoopStat {
	var out []LoopStat
	for k, c := range p.loops {
		if c >= minSamples {
			out = append(out, LoopStat{Key: k, Count: c})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		if out[i].Key.Head != out[j].Key.Head {
			return out[i].Key.Head < out[j].Key.Head
		}
		return out[i].Key.BranchPC < out[j].Key.BranchPC
	})
	return out
}

// TakenEdges returns every taken branch edge observed in the current
// window with its count, ordered by (From, To) so engines can fold the
// window profile into their own accumulators without map iteration order
// leaking into decisions.
func (p *Profiler) TakenEdges() []EdgeStat {
	out := make([]EdgeStat, 0, len(p.edges))
	for e, c := range p.edges {
		out = append(out, EdgeStat{Edge: e, Count: c})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Edge.From != out[j].Edge.From {
			return out[i].Edge.From < out[j].Edge.From
		}
		return out[i].Edge.To < out[j].Edge.To
	})
	return out
}

// DelinquentLoads returns loads with at least minSamples coherent-latency
// captures, most frequent first.
func (p *Profiler) DelinquentLoads(minSamples int64) []Delinquent {
	var out []Delinquent
	for _, d := range p.delinquent {
		if d.Count >= minSamples {
			out = append(out, *d)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].PC < out[j].PC
	})
	return out
}

// ResetWindow clears window totals and histograms but keeps per-CPU
// counter baselines so the next window's deltas stay correct.
func (p *Profiler) ResetWindow() {
	p.window = Window{}
	p.loops = map[LoopKey]int64{}
	p.edges = map[BranchEdge]int64{}
	p.delinquent = map[int]*Delinquent{}
}

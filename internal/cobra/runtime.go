package cobra

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/perfmon"
)

// Stats summarizes the runtime's activity for reports and tests.
type Stats struct {
	SamplesSeen       int64
	OptimizerPasses   int64
	Triggers          int64
	PatchesApplied    int64
	PatchesRolledBack int64
	PrefetchesNopped  int64
	PrefetchesExcl    int64
	LoadsBiased       int64
	TracesEmitted     int64
	VariantSwitches   int64
}

// statCounters backs the Stats counters with the metrics registry, so a
// run with metrics enabled exports them under "cobra.*" alongside the
// window gauges while Stats() keeps its value-snapshot contract. With
// observability disabled the counters live in a private registry; either
// way the individual *obs.Counter handles are nil-safe.
type statCounters struct {
	samplesSeen       *obs.Counter
	optimizerPasses   *obs.Counter
	triggers          *obs.Counter
	patchesApplied    *obs.Counter
	patchesRolledBack *obs.Counter
	prefetchesNopped  *obs.Counter
	prefetchesExcl    *obs.Counter
	loadsBiased       *obs.Counter
	tracesEmitted     *obs.Counter
	variantSwitches   *obs.Counter
}

func newStatCounters(reg *obs.Registry) statCounters {
	return statCounters{
		samplesSeen:       reg.Counter("cobra.samples_seen"),
		optimizerPasses:   reg.Counter("cobra.optimizer_passes"),
		triggers:          reg.Counter("cobra.triggers"),
		patchesApplied:    reg.Counter("cobra.patches_applied"),
		patchesRolledBack: reg.Counter("cobra.patches_rolled_back"),
		prefetchesNopped:  reg.Counter("cobra.prefetches_nopped"),
		prefetchesExcl:    reg.Counter("cobra.prefetches_excl"),
		loadsBiased:       reg.Counter("cobra.loads_biased"),
		tracesEmitted:     reg.Counter("cobra.traces_emitted"),
		variantSwitches:   reg.Counter("cobra.variant_switches"),
	}
}

func (c statCounters) snapshot() Stats {
	return Stats{
		SamplesSeen:       c.samplesSeen.Value(),
		OptimizerPasses:   c.optimizerPasses.Value(),
		Triggers:          c.triggers.Value(),
		PatchesApplied:    c.patchesApplied.Value(),
		PatchesRolledBack: c.patchesRolledBack.Value(),
		PrefetchesNopped:  c.prefetchesNopped.Value(),
		PrefetchesExcl:    c.prefetchesExcl.Value(),
		LoadsBiased:       c.loadsBiased.Value(),
		TracesEmitted:     c.tracesEmitted.Value(),
		VariantSwitches:   c.variantSwitches.Value(),
	}
}

// RegionState tracks one optimized (or previously optimized) loop for
// the adaptive controller. It is the evidence record strategy engines
// judge over; engine-specific state (variant tables, predictions) lives
// in the engines themselves, keyed by LoopKey.
type RegionState struct {
	Patch    *Patch
	Rewrite  Rewrite
	Baseline float64 // pre-patch IPC (loop-active windows)
	// ActiveWindows counts post-patch windows in which the patched loop
	// actually executed; ActiveAgg accumulates their profile. Judging only
	// loop-active windows keeps the before/after comparison phase-fair in
	// programs that alternate kernels. GlobalAgg accumulates every
	// post-patch window, catching patches that speed up their own loop
	// while slowing a downstream phase (e.g. removed prefetches that had
	// been warming the next kernel's data).
	ActiveWindows int
	ActiveAgg     Window
	GlobalAgg     Window
	GlobalBase    float64 // pre-patch whole-program IPC
	// PreIPC is an exponential moving average of whole-window IPC over
	// the windows in which this loop ran, maintained while the loop is
	// unpatched. It is the unbiased baseline a deployed patch is judged
	// against — the trigger windows themselves are the program's worst
	// moments and would flatter any patch.
	PreIPC    float64
	Judged    bool // at least one post-deployment judgement happened
	TriedNop  bool
	TriedExcl bool
	Blocked   bool // regressed under a fixed strategy: never re-patch
	Cooldown  int
	// DeployedAt is the cycle the current patch was deployed — the start
	// of the patch-active span in the trace.
	DeployedAt int64
}

// Runtime is one COBRA instance attached to a running machine: the
// optimization thread (a simulated-time timer), the per-working-thread
// monitoring threads (perfmon handlers feeding USBs), and the optimizer
// state.
type Runtime struct {
	cfg      Config
	m        *machine.Machine
	driver   *perfmon.Driver
	usbs     []*USB
	prof     *Profiler
	analyzer *Analyzer
	patcher  *Patcher

	// engine is the strategy engine driving judgement and deployment.
	// Nil (hand-built test Runtimes) lazily defaults to the prefetch
	// engine, the pre-registry behavior.
	engine Engine

	regions   map[LoopKey]*RegionState
	horizon   []Window
	globalEMA float64 // smoothed whole-program IPC
	stats     statCounters

	// obs is the observability sink (nil-safe: a zero Runtime records
	// nothing). windows is the ordinal of the next profiling window and
	// lastPass the cycle of the previous optimizer pass — together they
	// anchor window spans and metric snapshots in the cycle domain.
	obs      *obs.Observer
	windows  int
	lastPass int64

	// selfCheckViolations latches decision-log lifecycle violations found
	// by the per-pass replay when Config.SelfCheck is set.
	selfCheckViolations []string
}

// emaAlpha is the smoothing factor of the pre-patch IPC baselines.
const emaAlpha = 0.3

// triggerHorizon is the number of optimizer windows aggregated for the
// trigger decision.
const triggerHorizon = 3

// New attaches COBRA to a machine. The instance starts monitoring as
// working threads fork (call MonitorThread from the OpenMP runtime's
// OnFork hook) and optimizes on its own simulated-time schedule.
func New(m *machine.Machine, cfg Config) *Runtime {
	if cfg.OptimizeInterval <= 0 {
		cfg.OptimizeInterval = DefaultConfig(cfg.Strategy).OptimizeInterval
	}
	if cfg.Obs == nil {
		cfg.Obs = m.Observer()
	}
	if cfg.PatchJournalBound > 0 {
		m.Image().SetPatchJournalBound(cfg.PatchJournalBound)
	}
	// The Stats counters always live in a registry: the observer's when
	// metrics are enabled (so they export with everything else), a private
	// one otherwise.
	reg := cfg.Obs.Metrics()
	if reg == nil {
		reg = obs.NewRegistry()
	}
	r := &Runtime{
		cfg:      cfg,
		m:        m,
		driver:   perfmon.NewDriver(cfg.Sampling, m),
		usbs:     make([]*USB, m.NumCPUs()),
		prof:     NewProfiler(cfg.CoherentLatency),
		analyzer: NewAnalyzer(m.Image(), m.Memory()),
		patcher:  NewPatcher(m.Image(), cfg.UseTraceCache),
		regions:  map[LoopKey]*RegionState{},
		stats:    newStatCounters(reg),
		obs:      cfg.Obs,
	}
	eng, err := NewEngine(cfg.Engine, cfg)
	if err != nil {
		// Engine names are validated at the serve/CLI boundary; reaching
		// here with an unknown name is a programming error.
		panic(err)
	}
	r.engine = eng
	r.driver.SetObserver(cfg.Obs)
	m.AddTimer(&machine.Timer{
		NextAt: cfg.OptimizeInterval,
		Fn: func(now int64) int64 {
			r.optimizePass(now)
			return now + r.cfg.OptimizeInterval
		},
	})
	return r
}

// Driver exposes the sampling driver (for tests and tools).
func (r *Runtime) Driver() *perfmon.Driver { return r.driver }

// USB returns the user sampling buffer attached to cpu, nil before the
// working thread on that CPU forked. Fault-injection harnesses use it to
// interpose on the monitor path: re-Attach a perfmon handler that drops or
// corrupts samples before forwarding into the real buffer.
func (r *Runtime) USB(cpu int) *USB { return r.usbs[cpu] }

// SelfCheckViolations returns the decision-log lifecycle violations caught
// by the per-pass replay. Always empty unless Config.SelfCheck is set and
// an illegal state transition was recorded.
func (r *Runtime) SelfCheckViolations() []string { return r.selfCheckViolations }

// Stats returns a snapshot of the runtime's activity counters.
func (r *Runtime) Stats() Stats { return r.stats.snapshot() }

// Observer returns the observability sink (nil when disabled).
func (r *Runtime) Observer() *obs.Observer { return r.obs }

// Explain writes the patch-decision audit report. Without an observer
// with decisions enabled it reports that nothing was recorded.
func (r *Runtime) Explain() string {
	var b strings.Builder
	if err := r.obs.Decisions().Explain(&b); err != nil {
		return err.Error()
	}
	return b.String()
}

// ActivePatches returns the currently deployed patches.
func (r *Runtime) ActivePatches() []*Patch {
	var out []*Patch
	for _, st := range r.regions {
		if st.Patch != nil && len(st.Patch.Slots) > 0 {
			out = append(out, st.Patch)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Region.Start != out[j].Region.Start {
			return out[i].Region.Start < out[j].Region.Start
		}
		return out[i].Region.End < out[j].Region.End
	})
	return out
}

// sortLoopKeys orders loop keys by full (Head, BranchPC) identity. Two
// distinct keys can share a Head (one loop entry, two backward branches),
// and sort.Slice is not stable, so a Head-only comparison would let map
// iteration order leak into trace/decision emission.
func sortLoopKeys(keys []LoopKey) {
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Head != keys[j].Head {
			return keys[i].Head < keys[j].Head
		}
		return keys[i].BranchPC < keys[j].BranchPC
	})
}

// MonitorThread creates the monitoring thread for a working thread: a USB
// plus a perfmon handler copying samples into it. Wire it to
// openmp.Runtime.OnFork — "a monitoring thread is created when a working
// thread is forked" (§3).
func (r *Runtime) MonitorThread(tid, cpu int) {
	if r.usbs[cpu] != nil {
		return
	}
	u := &USB{CPU: cpu}
	r.usbs[cpu] = u
	r.driver.Attach(cpu, u.Push)
}

// engineOrDefault resolves the strategy engine, defaulting hand-built
// Runtimes (unit tests) to the prefetch engine New would have selected.
func (r *Runtime) engineOrDefault() Engine {
	if r.engine == nil {
		r.engine = prefetchEngine{}
	}
	return r.engine
}

// optimizePass is the optimization thread's periodic body: drain USBs,
// aggregate the system-wide profile, evaluate outstanding patches, and
// deploy new optimizations when coherent pressure warrants.
func (r *Runtime) optimizePass(now int64) {
	r.stats.optimizerPasses.Inc()
	tr := r.obs.Trace()

	// Age region cooldowns at the top of the pass, before this pass's
	// evaluation can start a new one. Decrementing after evaluatePatches
	// consumed one window of a fresh cooldown in the very pass that set it,
	// so a region rolled back with EvaluateWindows=N could redeploy after
	// N-1 intervals while the decision log's CooldownUntil evidence claimed
	// the full N — the earliest redeploy pass now lands exactly on
	// CooldownUntil.
	for _, st := range r.regions {
		if st.Cooldown > 0 {
			st.Cooldown--
		}
	}

	for _, u := range r.usbs {
		if u == nil {
			continue
		}
		drained := u.Drain()
		for _, s := range drained {
			r.prof.Add(s)
		}
		r.stats.samplesSeen.Add(int64(len(drained)))
		if tr != nil && len(drained) > 0 {
			tr.Instant("monitor", "usb drain", obs.TIDOptimizer, now, map[string]any{
				"cpu": u.CPU, "samples": len(drained),
			})
		}
	}
	win := r.prof.Window()

	// Both the trigger and patch evaluation are judged over a rolling
	// horizon of windows rather than a single window: coherent misses
	// cluster at phase boundaries (barriers, chunk edges), and a cluster
	// caught in one quiet window must not masquerade as sustained
	// coherent pressure — nor hide a sustained regression.
	r.horizon = append(r.horizon, win)
	if len(r.horizon) > triggerHorizon {
		r.horizon = r.horizon[1:]
	}
	var agg Window
	for _, hw := range r.horizon {
		agg.Samples += hw.Samples
		agg.Cycles += hw.Cycles
		agg.Instr += hw.Instr
		agg.L2Misses += hw.L2Misses
		agg.BusHitm += hw.BusHitm
	}
	// Maintain the unbiased pre-patch baselines: whole-program IPC, and
	// per hot loop the IPC of windows it ran in.
	if win.Cycles > 0 {
		if r.globalEMA == 0 {
			r.globalEMA = win.IPC()
		} else {
			r.globalEMA = (1-emaAlpha)*r.globalEMA + emaAlpha*win.IPC()
		}
	}
	for _, ls := range r.prof.HotLoops(r.cfg.MinLoopSamples) {
		st := r.regions[ls.Key]
		if st == nil {
			st = &RegionState{}
			r.regions[ls.Key] = st
		}
		if st.Patch == nil && win.Cycles > 0 {
			if st.PreIPC == 0 {
				st.PreIPC = win.IPC()
			} else {
				st.PreIPC = (1-emaAlpha)*st.PreIPC + emaAlpha*win.IPC()
			}
		}
	}

	// Continuous re-adaptation: every outstanding patch is periodically
	// re-judged against its pre-patch baseline metric and rolled back on
	// regression, whichever strategy deployed it. Only windows in which
	// the patched loop actually ran count towards the judgement. The
	// policy is the strategy engine's: the default prefetch engine
	// blacklists a rolled-back region under fixed strategies and
	// escalates to the other rewrite in adaptive mode.
	eng := r.engineOrDefault()
	ctl := r.Control()
	eng.Judge(ctl, win, now)

	evaluated := len(r.horizon) == triggerHorizon && agg.Samples > 0
	fired := evaluated &&
		agg.BusHitm >= r.cfg.MinCoherentEvents &&
		agg.CoherentShare() >= r.cfg.CoherentShareThreshold
	if tr != nil && evaluated {
		tr.Instant("trigger", "trigger eval", obs.TIDOptimizer, now, map[string]any{
			"coherent_share": agg.CoherentShare(), "bus_hitm": agg.BusHitm,
			"fired": fired,
		})
	}
	if fired {
		r.stats.triggers.Inc()
		if r.cfg.Strategy != StrategyOff {
			eng.Propose(ctl, agg, now)
		}
	}

	if tr != nil {
		tr.Span("window", fmt.Sprintf("window %d", r.windows), obs.TIDOptimizer,
			r.lastPass, now, map[string]any{
				"samples": win.Samples, "ipc": win.IPC(),
				"coherent_share": win.CoherentShare(),
				"l2_misses":      win.L2Misses, "bus_hitm": win.BusHitm,
			})
	}
	if reg := r.obs.Metrics(); reg != nil {
		reg.Gauge("cobra.window_ipc").Set(win.IPC())
		reg.Gauge("cobra.window_coherent_share").Set(win.CoherentShare())
		reg.Gauge("cobra.global_ipc_ema").Set(r.globalEMA)
		reg.Histogram("cobra.window_samples").Observe(float64(win.Samples))
		reg.Histogram("cobra.pass_cycles").Observe(float64(now - r.lastPass))
		reg.Snapshot(r.windows, now)
	}
	// Live telemetry: every pass publishes its rolling window view to
	// the event bus, independent of whether the full metrics registry is
	// enabled — the bus is what cobra-top's rolling-IPC display and the
	// SSE session stream tail while the run executes. Guarded so a
	// disabled bus costs nothing.
	if bus := r.obs.Bus(); bus != nil {
		bus.Publish(obs.KindPass, now, obs.PassEvent{
			Window:        r.windows,
			Cycle:         now,
			IPC:           win.IPC(),
			CoherentShare: win.CoherentShare(),
			Samples:       win.Samples,
			GlobalIPCEMA:  r.globalEMA,
		})
	}
	// Online lifecycle oracle: with SelfCheck on, every pass replays the
	// decision log through the legality checker so a fuzz or fault-injection
	// run fails at the pass that recorded the illegal transition, not in a
	// post-mortem.
	if r.cfg.SelfCheck && len(r.selfCheckViolations) == 0 {
		r.selfCheckViolations = r.obs.Decisions().Violations()
	}

	r.windows++
	r.lastPass = now
	r.prof.ResetWindow()
}

func (r *Runtime) evaluatePatches(win Window, now int64) {
	// Iterate regions in address order: map order would scramble the trace
	// and decision log across otherwise-identical runs (judgements are
	// per-region independent, so ordering cannot change outcomes).
	var keys []LoopKey
	for k, st := range r.regions {
		if st.Patch == nil || len(st.Patch.Slots) == 0 {
			continue
		}
		keys = append(keys, k)
	}
	if len(keys) == 0 {
		return
	}
	sortLoopKeys(keys)
	tr := r.obs.Trace()
	dl := r.obs.Decisions()

	ctl := r.Control()
	for _, k := range keys {
		st := r.regions[k]
		if !ctl.ObserveWindow(st, win) {
			continue
		}
		regressed := ctl.Regressed(st)
		var ev obs.Evidence
		if tr != nil || dl != nil {
			ev = ctl.JudgeEvidence(st)
		}
		ctl.ResetJudgement(st) // keep judging periodically
		if regressed {
			// Regression: roll the patch back and remember what failed so
			// re-adaptation can escalate to the other rewrite.
			if err := r.patcher.Rollback(st.Patch); err == nil {
				r.stats.patchesRolledBack.Inc()
			}
			st.Patch = nil
			ev.CooldownUntil = ctl.ArmCooldown(st, now)
			if tr != nil {
				tr.Span("patch", fmt.Sprintf("active %s @%#x", ev.Rewrite, k.Head),
					obs.TIDPatch, st.DeployedAt, now, map[string]any{"region": k.Head})
				tr.Instant("patch", fmt.Sprintf("rolled back @%#x", k.Head),
					obs.TIDPatch, now, map[string]any{
						"region": k.Head, "baseline_ipc": ev.BaselineIPC,
						"patched_ipc": ev.PatchedIPC,
					})
			}
			dl.Record(now, uint64(k.Head), r.windows, obs.StateRolledBack, "regressed", ev)
			if r.cfg.Strategy != StrategyAdaptive {
				st.Blocked = true // fixed strategy: leave the loop alone
				dl.Record(now, uint64(k.Head), r.windows, obs.StateBlocked, "fixed_strategy", ev)
				if tr != nil {
					tr.Instant("patch", fmt.Sprintf("blocked @%#x", k.Head),
						obs.TIDPatch, now, map[string]any{"region": k.Head})
				}
			}
		} else {
			reason := "within_tolerance"
			if ev.PatchedIPC >= ev.BaselineIPC {
				reason = "improved"
			}
			if tr != nil {
				tr.Instant("patch", fmt.Sprintf("kept @%#x", k.Head),
					obs.TIDPatch, now, map[string]any{
						"region": k.Head, "baseline_ipc": ev.BaselineIPC,
						"patched_ipc": ev.PatchedIPC,
					})
			}
			dl.Record(now, uint64(k.Head), r.windows, obs.StateKept, reason, ev)
		}
	}
}

// deployOptimizations implements §4's selection pipeline. win is the
// trigger-horizon aggregate; now anchors trace events and decisions.
func (r *Runtime) deployOptimizations(win Window, now int64) {
	ctl := r.Control()
	// DEAR pinpoints coherent misses on the load side; sharing induced
	// purely by prefetch/store traffic (DAXPY's boundary pathology) shows
	// up in the BUS_* counters but not in the DEAR — CandidateLoads falls
	// back to the paper's loop-boundary heuristic in that case.
	regionLoads := ctl.CandidateLoads()
	if len(regionLoads) == 0 {
		return
	}

	// Stage deployment: while any patch is still awaiting its evaluation
	// windows, hold off on new ones, and never deploy more than a couple
	// per pass — a regressing rewrite must be caught and rolled back
	// before it is compounded across the whole program.
	if ctl.AnyUnjudged() {
		return
	}
	const maxDeploysPerPass = 2
	deployed := 0
	tr := r.obs.Trace()
	dl := r.obs.Decisions()

	var keys []LoopKey
	for k := range regionLoads {
		keys = append(keys, k)
	}
	sortLoopKeys(keys)

	for _, k := range keys {
		if deployed >= maxDeploysPerPass {
			break
		}
		if r.patcher.InCodeCache(k.Head) || r.patcher.InCodeCache(k.BranchPC) {
			continue // never re-optimize our own traces
		}
		if !r.analyzer.ValidLoop(k) {
			continue // spurious cross-function branch pair
		}
		st := r.regions[k]
		if st == nil {
			st = &RegionState{}
			r.regions[k] = st
		}
		if st.Patch != nil && len(st.Patch.Slots) > 0 {
			continue // already optimized
		}
		if st.Cooldown > 0 {
			continue
		}
		rw, ok := r.chooseRewrite(st)
		if !ok {
			// A previously rolled-back region with no rewrite left to try
			// ends the lifecycle; record the terminal state once.
			if dl != nil && dl.State(uint64(k.Head)) == obs.StateRolledBack {
				reason := "rewrites_exhausted"
				if r.cfg.Strategy != StrategyAdaptive {
					reason = "fixed_strategy"
				}
				dl.Record(now, uint64(k.Head), r.windows, obs.StateBlocked, reason, obs.Evidence{
					CoherentShare: win.CoherentShare(), BusHitm: uint64(win.BusHitm),
				})
				if tr != nil {
					tr.Instant("patch", fmt.Sprintf("blocked @%#x", k.Head),
						obs.TIDPatch, now, map[string]any{"region": k.Head, "reason": reason})
				}
			}
			continue
		}
		// Trigger evidence selected this region: it becomes a lifecycle
		// candidate even if a deploy-time check below still skips it.
		var ev obs.Evidence
		if tr != nil || dl != nil {
			ev = obs.Evidence{
				CoherentShare: win.CoherentShare(),
				BusHitm:       uint64(win.BusHitm),
				Rewrite:       rw.String(),
			}
			reason := "trigger"
			if dl.State(uint64(k.Head)) == obs.StateRolledBack {
				reason = "escalate"
			}
			dl.Record(now, uint64(k.Head), r.windows, obs.StateCandidate, reason, ev)
			if tr != nil {
				tr.Instant("patch", fmt.Sprintf("candidate %s @%#x", ev.Rewrite, k.Head),
					obs.TIDPatch, now, map[string]any{
						"region": k.Head, "coherent_share": win.CoherentShare(),
					})
			}
		}
		region := r.analyzer.RegionFor(k)
		slots := r.selectPrefetches(region, regionLoads[k], rw)
		if len(slots) == 0 {
			continue
		}
		patch, err := r.patcher.Deploy(region, slots, rw)
		if err != nil {
			continue
		}
		st.Patch = patch
		st.Rewrite = rw
		ctl.ArmJudgement(st, win, now)
		deployed++
		ctl.CountDeploy(patch, rw)
		switch rw {
		case RewriteNop:
			st.TriedNop = true
		case RewriteExcl:
			st.TriedExcl = true
		}
		if tr != nil || dl != nil {
			ev.BaselineIPC = st.Baseline
			ev.GlobalBaselineIPC = st.GlobalBase
			dl.Record(now, uint64(k.Head), r.windows, obs.StateDeployed, "deploy", ev)
			if tr != nil {
				tr.Instant("patch", fmt.Sprintf("deployed %s @%#x", ev.Rewrite, k.Head),
					obs.TIDPatch, now, map[string]any{
						"region": k.Head, "slots": len(patch.Slots),
						"rewritten":    patch.RewrittenPrefetches,
						"trace":        patch.TraceEntry >= 0,
						"baseline_ipc": st.Baseline,
					})
			}
		}
	}
}

// chooseRewrite picks the rewrite for a region under the configured
// strategy. Adaptive mode tries noprefetch first and escalates to
// lfetch.excl after a rollback.
func (r *Runtime) chooseRewrite(st *RegionState) (Rewrite, bool) {
	if st.Blocked {
		return 0, false
	}
	switch r.cfg.Strategy {
	case StrategyNoprefetch:
		return RewriteNop, true
	case StrategyExcl:
		return RewriteExcl, true
	case StrategyAdaptive:
		if !st.TriedNop {
			return RewriteNop, true
		}
		if !st.TriedExcl {
			return RewriteExcl, true
		}
		return 0, false
	case StrategyBias:
		return RewriteBias, true
	}
	return 0, false
}

// selectPrefetches applies the association filters of §4: only prefetches
// streaming over the data structures whose loads miss coherently are
// touched, and lfetch.excl additionally requires the loop to store into
// that structure ("if a store operation soon follows the load ... it will
// not trigger an invalidation"). When binary analysis cannot resolve a
// target, the paper's coarser loop-boundary heuristic is used: every
// prefetch in the region.
func (r *Runtime) selectPrefetches(region Region, loads []Delinquent, rw Rewrite) []int {
	// The bias rewrite targets the delinquent loads themselves (their PCs
	// come straight from the DEAR), restricted to loads of data the loop
	// also stores — "if a store operation soon follows the load" (§4). It
	// needs no prefetches in the loop at all.
	if rw == RewriteBias {
		stored := r.analyzer.StoredSegments(region)
		var out []int
		for _, d := range loads {
			if !region.Contains(d.PC) {
				continue
			}
			if seg, ok := r.analyzer.SegmentOfAddr(d.LastAddr); !ok || !stored[seg.Name] {
				continue
			}
			out = append(out, d.PC)
		}
		return out
	}

	targets := r.analyzer.PrefetchTargets(region)
	all := r.analyzer.Prefetches(region)
	if len(all) == 0 {
		return nil
	}

	delinqSegs := map[string]bool{}
	for _, d := range loads {
		if seg, ok := r.analyzer.SegmentOfAddr(d.LastAddr); ok {
			delinqSegs[seg.Name] = true
		}
	}

	var want func(seg mem.Segment, known bool) bool
	switch rw {
	case RewriteNop:
		want = func(seg mem.Segment, known bool) bool {
			return !known || len(delinqSegs) == 0 || delinqSegs[seg.Name]
		}
	case RewriteExcl:
		stored := r.analyzer.StoredSegments(region)
		want = func(seg mem.Segment, known bool) bool {
			if !known {
				return false
			}
			if len(stored) > 0 && !stored[seg.Name] {
				return false
			}
			return len(delinqSegs) == 0 || delinqSegs[seg.Name]
		}
	}

	var out []int
	for _, pc := range all {
		seg, known := targets[pc]
		if want(seg, known) {
			out = append(out, pc)
		}
	}
	if len(out) == 0 && rw == RewriteNop {
		out = all // loop-boundary fallback
	}
	return out
}

// String describes the runtime configuration.
func (r *Runtime) String() string {
	return fmt.Sprintf("cobra{strategy=%s interval=%d trace=%v}",
		r.cfg.Strategy, r.cfg.OptimizeInterval, r.cfg.UseTraceCache)
}

// Package cobra implements COBRA (Continuous Binary Re-Adaptation), the
// paper's runtime binary optimization framework for multithreaded
// applications, on top of the simulated Itanium 2 machine:
//
//   - one monitoring thread per working thread copies perfmon samples
//     (counters, BTB, DEAR) into a per-thread User Sampling Buffer;
//   - a single optimization thread periodically aggregates the per-thread
//     profiles into a system-wide view, detects intensive coherent memory
//     traffic from the BUS_* events, pinpoints the delinquent loads with
//     two-level DEAR latency filtering (§4), rediscovers the loops
//     containing them from BTB branch pairs, and locates the lfetch
//     instructions inside those loops by walking the binary;
//   - the optimizer rewrites the selected prefetches — to NOPs
//     (noprefetch) or to lfetch.excl (exclusive-hint prefetch) — either by
//     patching the binary in place or by emitting an optimized trace into
//     a code cache and redirecting the original entry to it;
//   - in adaptive mode the controller keeps watching the patched loops and
//     rolls a patch back when the observed memory behaviour regresses,
//     re-adapting as program phases change.
package cobra

import (
	"repro/internal/obs"
	"repro/internal/perfmon"
)

// Strategy selects the optimization the runtime applies when it detects
// coherent-miss pressure.
type Strategy uint8

const (
	// StrategyOff monitors only (profiling overhead, no patches).
	StrategyOff Strategy = iota
	// StrategyNoprefetch rewrites selected prefetches to NOPs, removing
	// the unnecessary coherent misses aggressive prefetching causes.
	StrategyNoprefetch
	// StrategyExcl rewrites selected prefetches to lfetch.excl so lines
	// that will be written arrive in Exclusive state.
	StrategyExcl
	// StrategyAdaptive lets the controller choose per loop and roll back
	// on regression: noprefetch first, escalating to lfetch.excl if
	// noprefetch regresses.
	StrategyAdaptive
	// StrategyBias rewrites delinquent integer loads themselves to
	// ld8.bias, acquiring the line exclusively when a store follows — the
	// §4 optimization the paper describes but leaves unimplemented
	// because of the hint's narrow applicability (an extension here).
	StrategyBias
)

func (s Strategy) String() string {
	switch s {
	case StrategyOff:
		return "off"
	case StrategyNoprefetch:
		return "noprefetch"
	case StrategyExcl:
		return "prefetch.excl"
	case StrategyAdaptive:
		return "adaptive"
	case StrategyBias:
		return "ld.bias"
	}
	return "?"
}

// Config tunes the runtime.
type Config struct {
	Strategy Strategy

	// Engine names the strategy engine from the registry ("" selects the
	// default "prefetch" engine — the historical nop/excl/bias policy
	// steered by Strategy). omitempty keeps scheduler/ledger content
	// hashes of pre-engine configurations byte-stable.
	Engine string `json:"engine,omitempty"`

	// Sampling configures the perfmon driver (period, DEAR filter,
	// per-sample overhead).
	Sampling perfmon.Config

	// OptimizeInterval is the simulated-cycle period of the optimization
	// thread's aggregation/decision pass.
	OptimizeInterval int64

	// CoherentShareThreshold gates optimization: coherent snoop events
	// must be a significant share of all cache misses, so prefetches
	// hiding plain capacity misses are left alone (§5.2.1's filtering
	// heuristic).
	CoherentShareThreshold float64

	// MinCoherentEvents is the absolute number of dirty-snoop events a
	// window must contain before the trigger may fire, so a handful of
	// events in an otherwise quiet window (a barrier, a phase boundary)
	// cannot masquerade as high coherent pressure.
	MinCoherentEvents int64

	// CoherentLatency is the second-level DEAR filter (§4): loads slower
	// than this are classified coherent misses (ordinary memory loads on
	// the SMP run 120–150 cycles; coherent misses 180–200+).
	CoherentLatency int64

	// MinLoopSamples is the number of BTB observations required before a
	// backward branch is accepted as a hot loop.
	MinLoopSamples int64

	// MinDelinquentSamples is the number of DEAR captures required before
	// a load is considered delinquent.
	MinDelinquentSamples int64

	// UseTraceCache deploys optimizations as redirected traces in a code
	// cache (the paper's design); false patches prefetches in place.
	UseTraceCache bool

	// PatchJournalBound, when > 0, overrides the image's patch-journal
	// length bound (ia64.Image.SetPatchJournalBound). Patch-heavy engines
	// such as layout raise it so executing CPUs keep resynchronizing
	// their decode caches incrementally instead of falling back to full
	// refetches. omitempty keeps scheduler/ledger content hashes of
	// configurations predating the knob byte-stable.
	PatchJournalBound int `json:"patch_journal_bound,omitempty"`

	// RollbackTolerance: a patch is rolled back when IPC over the
	// patched loop's active windows falls more than this fraction below
	// the pre-patch baseline.
	RollbackTolerance float64

	// EvaluateWindows (adaptive): optimizer passes to wait before judging
	// a patch.
	EvaluateWindows int

	// Obs, when non-nil, receives the runtime's trace events, metrics and
	// patch decisions. Excluded from JSON so scheduler content hashes of a
	// configuration are identical with and without observability attached.
	Obs *obs.Observer `json:"-"`

	// SelfCheck replays the decision log's lifecycle state machine at the
	// end of every optimizer pass and latches any violation (see
	// Runtime.SelfCheckViolations). A verification knob, not an experiment
	// parameter: excluded from JSON so scheduler content hashes are
	// unchanged, and requires an observer with decisions enabled to have
	// anything to replay.
	SelfCheck bool `json:"-"`
}

// DefaultConfig returns the configuration used throughout the evaluation.
func DefaultConfig(strategy Strategy) Config {
	return Config{
		Strategy:               strategy,
		Sampling:               perfmon.DefaultConfig(),
		OptimizeInterval:       50_000,
		CoherentShareThreshold: 0.15,
		MinCoherentEvents:      24,
		CoherentLatency:        180,
		MinLoopSamples:         4,
		MinDelinquentSamples:   2,
		UseTraceCache:          true,
		RollbackTolerance:      0.03,
		EvaluateWindows:        2,
	}
}

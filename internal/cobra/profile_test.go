package cobra

import (
	"testing"

	"repro/internal/hpm"
	"repro/internal/perfmon"
)

func mkSample(cpu int, cycles, l2m, instr, hitm int64) perfmon.Sample {
	var s perfmon.Sample
	s.CPU = cpu
	s.Counters[0] = hpm.Counter{Event: hpm.EvCPUCycles, Value: cycles}
	s.Counters[1] = hpm.Counter{Event: hpm.EvL2Misses, Value: l2m}
	s.Counters[2] = hpm.Counter{Event: hpm.EvInstRetired, Value: instr}
	s.Counters[3] = hpm.Counter{Event: hpm.EvBusCoherent, Value: hitm}
	return s
}

func TestProfilerCounterDeltas(t *testing.T) {
	p := NewProfiler(180)
	p.Add(mkSample(0, 1000, 10, 20, 2))
	p.Add(mkSample(0, 3000, 30, 60, 12))
	w := p.Window()
	if w.Cycles != 2000 || w.L2Misses != 20 || w.Instr != 40 || w.BusHitm != 10 {
		t.Fatalf("window = %+v", w)
	}
	if got := w.IPC(); got != 0.02 {
		t.Fatalf("IPC = %v, want 0.02", got)
	}
}

func TestProfilerPerCPUBaselines(t *testing.T) {
	p := NewProfiler(180)
	p.Add(mkSample(0, 1000, 0, 10, 0))
	p.Add(mkSample(1, 5000, 0, 50, 0)) // first sample from CPU1: baseline only
	p.Add(mkSample(1, 6000, 0, 55, 0))
	w := p.Window()
	if w.Cycles != 1000 || w.Instr != 5 {
		t.Fatalf("window mixed baselines across CPUs: %+v", w)
	}
}

func TestProfilerResetKeepsBaselines(t *testing.T) {
	p := NewProfiler(180)
	p.Add(mkSample(0, 1000, 0, 10, 0))
	p.ResetWindow()
	p.Add(mkSample(0, 1500, 0, 12, 0))
	w := p.Window()
	if w.Cycles != 500 || w.Instr != 2 {
		t.Fatalf("deltas wrong after reset: %+v", w)
	}
}

func TestProfilerLoopDiscovery(t *testing.T) {
	p := NewProfiler(180)
	s := mkSample(0, 100, 0, 0, 0)
	s.BTB = []hpm.BranchPair{
		{BranchPC: 50, TargetPC: 40}, // backward: loop
		{BranchPC: 50, TargetPC: 40},
		{BranchPC: 10, TargetPC: 90}, // forward: not a loop
	}
	p.Add(s)
	loops := p.HotLoops(2)
	if len(loops) != 1 || loops[0].Key != (LoopKey{Head: 40, BranchPC: 50}) || loops[0].Count != 2 {
		t.Fatalf("loops = %+v", loops)
	}
	if got := p.HotLoops(3); len(got) != 0 {
		t.Fatalf("min-samples filter failed: %+v", got)
	}
}

func TestProfilerDelinquentFilter(t *testing.T) {
	p := NewProfiler(180)
	s := mkSample(0, 100, 0, 0, 0)
	s.DEAR = hpm.DEARSample{PC: 7, Addr: 0x4000, Latency: 150, Valid: true}
	p.Add(s) // below coherent threshold: filtered
	s.DEAR.Latency = 200
	p.Add(s)
	p.Add(s)
	dl := p.DelinquentLoads(2)
	if len(dl) != 1 || dl[0].PC != 7 || dl[0].Count != 2 || dl[0].AvgLatency() != 200 {
		t.Fatalf("delinquent = %+v", dl)
	}
}

func TestUSB(t *testing.T) {
	u := &USB{CPU: 3}
	u.Push(perfmon.Sample{Index: 1})
	u.Push(perfmon.Sample{Index: 2})
	got := u.Drain()
	if len(got) != 2 || u.Total() != 2 {
		t.Fatalf("drain = %v, total = %d", got, u.Total())
	}
	if len(u.Drain()) != 0 {
		t.Fatal("second drain non-empty")
	}
}

func TestWindowMetrics(t *testing.T) {
	w := Window{Cycles: 1000, Instr: 500, L2Misses: 5, BusHitm: 5}
	if got := w.IPC(); got != 0.5 {
		t.Fatalf("IPC = %v, want 0.5", got)
	}
	if got := w.MissRate(); got != 10 {
		t.Fatalf("miss rate = %v, want 10 per kilocycle", got)
	}
	var empty Window
	if empty.IPC() != 0 || empty.MissRate() != 0 {
		t.Fatal("empty window miss rate")
	}
}

// Package hpm models the Itanium 2 hardware performance monitoring unit
// (PMU) that COBRA's monitoring threads sample: four programmable event
// counters with overflow-driven sampling, the Branch Trace Buffer (BTB)
// holding the last four taken branch/target pairs, and the Data Event
// Address Registers (DEAR) that capture (instruction, data address,
// latency) tuples for long-latency loads with a programmable latency
// filter — the mechanism §4 of the paper uses to separate coherent misses
// from ordinary memory misses.
package hpm

// Event identifies a monitorable performance event. The set mirrors the
// events the paper names plus the bookkeeping events any PMU provides.
type Event uint8

const (
	EvNone Event = iota
	EvCPUCycles
	EvInstRetired
	EvL2Misses
	EvL3Misses
	EvL3Writebacks
	EvBusMemory         // BUS_MEMORY: all system bus transactions
	EvBusRdHit          // BUS_RD_HIT: snooped clean in another cache
	EvBusRdHitm         // BUS_RD_HITM: snooped Modified in another cache
	EvBusRdInvalAllHitm // BUS_RD_INVAL_ALL_HITM: ownership read snooped Modified
	EvBusCoherent       // BUS_RD_HITM + BUS_RD_INVAL_ALL_HITM (combined unit mask)
	EvLoadsRetired
	EvStoresRetired
	EvPrefetchesRetired
	EvTakenBranches

	NumEvents
)

func (e Event) String() string {
	if int(e) < len(eventNames) {
		return eventNames[e]
	}
	return "EV_?"
}

var eventNames = [...]string{
	EvNone:              "NONE",
	EvCPUCycles:         "CPU_CYCLES",
	EvInstRetired:       "IA64_INST_RETIRED",
	EvL2Misses:          "L2_MISSES",
	EvL3Misses:          "L3_MISSES",
	EvL3Writebacks:      "L3_WRITEBACKS",
	EvBusMemory:         "BUS_MEMORY",
	EvBusRdHit:          "BUS_RD_HIT",
	EvBusRdHitm:         "BUS_RD_HITM",
	EvBusRdInvalAllHitm: "BUS_RD_INVAL_ALL_HITM",
	EvBusCoherent:       "BUS_COHERENT_SNOOPS",
	EvLoadsRetired:      "LOADS_RETIRED",
	EvStoresRetired:     "STORES_RETIRED",
	EvPrefetchesRetired: "PREFETCHES_RETIRED",
	EvTakenBranches:     "BR_TAKEN",
}

// NumCounters is the number of programmable counters (PMD4-7 on Itanium 2).
const NumCounters = 4

// BTBEntries is the depth of the branch trace buffer: four branch/target
// pairs, read out as eight addresses per sample (paper §3.1).
const BTBEntries = 4

// Counter is one programmable performance counter.
type Counter struct {
	Event  Event
	Value  int64
	Period int64 // sampling period; 0 disables overflow
	armed  int64 // countdown to next overflow
}

// BranchPair is one BTB entry.
type BranchPair struct {
	BranchPC int
	TargetPC int
}

// DEARSample is one data-event-address-register capture.
type DEARSample struct {
	PC      int    // instruction address of the missing load
	Addr    uint64 // data address
	Latency int64  // observed load latency in cycles
	Valid   bool
}

// OverflowHandler is invoked synchronously when a programmed counter
// crosses its sampling period. slot identifies the counter.
type OverflowHandler func(slot int, ev Event)

// PMU is the per-CPU performance monitoring unit.
type PMU struct {
	CPU int

	counters [NumCounters]Counter

	btb    [BTBEntries]BranchPair
	btbPos int
	btbLen int

	dearMinLatency int64 // latency filter: record only loads at least this slow
	dearEvery      int64 // record every Nth qualifying load (deterministic decimation)
	dearCount      int64
	dear           DEARSample

	overflow OverflowHandler
	frozen   bool

	// slotOf[ev] is 1+slot of the counter tracking ev, or 0. At most one
	// counter may track a given event; this makes Add O(1), which matters
	// because the machine feeds every retired instruction through it.
	slotOf [NumEvents]int8
}

// NewPMU returns a PMU for the given CPU with all counters idle.
func NewPMU(cpu int) *PMU { return &PMU{CPU: cpu, dearEvery: 1} }

// Program configures counter slot to count ev, overflowing every period
// events (0 = count without sampling). Programming clears the counter.
// A PMU tracks each event in at most one counter; programming an event
// already assigned elsewhere moves it.
func (p *PMU) Program(slot int, ev Event, period int64) {
	old := p.counters[slot].Event
	if old != EvNone && int(p.slotOf[old]) == slot+1 {
		p.slotOf[old] = 0
	}
	if prev := p.slotOf[ev]; ev != EvNone && prev != 0 {
		p.counters[prev-1] = Counter{}
	}
	p.counters[slot] = Counter{Event: ev, Period: period, armed: period}
	if ev != EvNone {
		p.slotOf[ev] = int8(slot + 1)
	}
}

// SetOverflowHandler registers the sampling driver's overflow callback.
func (p *PMU) SetOverflowHandler(h OverflowHandler) { p.overflow = h }

// SetDEARFilter programs the DEAR latency threshold and decimation: only
// loads with latency >= minLatency are eligible, and every Nth eligible
// load is captured. The latency filter is the paper's tool for skipping
// L2-misses-that-hit-L3 (threshold just above L3 hit latency) and for
// isolating coherent misses (threshold above memory latency).
func (p *PMU) SetDEARFilter(minLatency, every int64) {
	if every <= 0 {
		every = 1
	}
	p.dearMinLatency = minLatency
	p.dearEvery = every
	p.dearCount = 0
	p.dear = DEARSample{}
}

// Freeze stops all counting (PMC freeze bit); Unfreeze resumes.
func (p *PMU) Freeze()   { p.frozen = true }
func (p *PMU) Unfreeze() { p.frozen = false }

// Add counts n occurrences of ev, firing overflow handlers as periods
// cross. The untracked-event check comes first: it is the common case on
// the simulator's per-instruction path (unmonitored runs program no
// counters), and none of the checks' order is observable.
func (p *PMU) Add(ev Event, n int64) {
	slot := p.slotOf[ev]
	if slot == 0 || p.frozen || n == 0 {
		return
	}
	c := &p.counters[slot-1]
	c.Value += n
	if c.Period > 0 {
		c.armed -= n
		for c.armed <= 0 {
			c.armed += c.Period
			if p.overflow != nil {
				p.overflow(int(slot-1), ev)
			}
		}
	}
}

// Read returns the current value of counter slot.
func (p *PMU) Read(slot int) (Event, int64) {
	return p.counters[slot].Event, p.counters[slot].Value
}

// ReadAll snapshots all four counters.
func (p *PMU) ReadAll() [NumCounters]Counter {
	return p.counters
}

// RecordBranch pushes a taken branch into the BTB ring.
func (p *PMU) RecordBranch(brPC, targetPC int) {
	if p.frozen {
		return
	}
	p.btb[p.btbPos] = BranchPair{BranchPC: brPC, TargetPC: targetPC}
	p.btbPos = (p.btbPos + 1) % BTBEntries
	if p.btbLen < BTBEntries {
		p.btbLen++
	}
}

// ReadBTB returns the last taken branches, oldest first.
func (p *PMU) ReadBTB() []BranchPair {
	out := make([]BranchPair, 0, p.btbLen)
	for i := 0; i < p.btbLen; i++ {
		idx := (p.btbPos - p.btbLen + i + BTBEntries*2) % BTBEntries
		out = append(out, p.btb[idx])
	}
	return out
}

// RecordLoad offers a demand-load completion to the DEAR. Loads below the
// latency threshold are ignored; qualifying loads are decimated by the
// programmed rate, and the most recent capture is held until read.
func (p *PMU) RecordLoad(pc int, addr uint64, latency int64) {
	if p.frozen || latency < p.dearMinLatency {
		return
	}
	p.dearCount++
	if p.dearCount%p.dearEvery != 0 {
		return
	}
	p.dear = DEARSample{PC: pc, Addr: addr, Latency: latency, Valid: true}
}

// ReadDEAR returns the latest DEAR capture and clears its valid bit.
func (p *PMU) ReadDEAR() DEARSample {
	s := p.dear
	p.dear.Valid = false
	return s
}

// Reset clears all counters, the BTB and the DEAR but keeps programming.
func (p *PMU) Reset() {
	for i := range p.counters {
		p.counters[i].Value = 0
		p.counters[i].armed = p.counters[i].Period
	}
	p.btbPos, p.btbLen = 0, 0
	p.dear = DEARSample{}
	p.dearCount = 0
}

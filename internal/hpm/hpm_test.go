package hpm

import (
	"testing"
	"testing/quick"
)

func TestCounterCountsOnlyItsEvent(t *testing.T) {
	p := NewPMU(0)
	p.Program(0, EvL3Misses, 0)
	p.Program(1, EvCPUCycles, 0)
	p.Add(EvL3Misses, 3)
	p.Add(EvCPUCycles, 100)
	p.Add(EvBusMemory, 5) // not programmed anywhere
	if _, v := p.Read(0); v != 3 {
		t.Fatalf("L3 counter = %d, want 3", v)
	}
	if _, v := p.Read(1); v != 100 {
		t.Fatalf("cycle counter = %d, want 100", v)
	}
}

func TestOverflowFiresPerPeriod(t *testing.T) {
	p := NewPMU(0)
	p.Program(2, EvCPUCycles, 100)
	fires := 0
	p.SetOverflowHandler(func(slot int, ev Event) {
		if slot != 2 || ev != EvCPUCycles {
			t.Fatalf("overflow slot=%d ev=%v", slot, ev)
		}
		fires++
	})
	p.Add(EvCPUCycles, 250) // crosses 100 and 200
	if fires != 2 {
		t.Fatalf("overflows = %d, want 2", fires)
	}
	p.Add(EvCPUCycles, 50) // reaches 300
	if fires != 3 {
		t.Fatalf("overflows = %d, want 3", fires)
	}
}

func TestOverflowPropertyCountMatchesPeriods(t *testing.T) {
	prop := func(increments []uint8, periodSeed uint8) bool {
		period := int64(periodSeed%50) + 1
		p := NewPMU(0)
		p.Program(0, EvInstRetired, period)
		fires := int64(0)
		p.SetOverflowHandler(func(int, Event) { fires++ })
		total := int64(0)
		for _, inc := range increments {
			n := int64(inc % 17)
			p.Add(EvInstRetired, n)
			total += n
		}
		return fires == total/period
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestFreezeStopsCounting(t *testing.T) {
	p := NewPMU(0)
	p.Program(0, EvCPUCycles, 0)
	p.Freeze()
	p.Add(EvCPUCycles, 10)
	p.RecordBranch(1, 2)
	p.RecordLoad(3, 0x100, 1000)
	if _, v := p.Read(0); v != 0 {
		t.Fatal("counter advanced while frozen")
	}
	if len(p.ReadBTB()) != 0 {
		t.Fatal("BTB recorded while frozen")
	}
	if p.ReadDEAR().Valid {
		t.Fatal("DEAR recorded while frozen")
	}
	p.Unfreeze()
	p.Add(EvCPUCycles, 10)
	if _, v := p.Read(0); v != 10 {
		t.Fatal("counter did not resume after unfreeze")
	}
}

func TestBTBKeepsLastFourOldestFirst(t *testing.T) {
	p := NewPMU(0)
	for i := 1; i <= 6; i++ {
		p.RecordBranch(i*10, i*10+1)
	}
	got := p.ReadBTB()
	if len(got) != BTBEntries {
		t.Fatalf("BTB len = %d, want %d", len(got), BTBEntries)
	}
	for i, want := range []int{30, 40, 50, 60} {
		if got[i].BranchPC != want {
			t.Fatalf("BTB[%d] = %+v, want branch %d", i, got[i], want)
		}
	}
}

func TestBTBPartialFill(t *testing.T) {
	p := NewPMU(0)
	p.RecordBranch(7, 3)
	got := p.ReadBTB()
	if len(got) != 1 || got[0] != (BranchPair{7, 3}) {
		t.Fatalf("BTB = %+v", got)
	}
}

func TestDEARLatencyFilter(t *testing.T) {
	p := NewPMU(0)
	p.SetDEARFilter(13, 1) // drop loads served within 12 cycles (L3 hits)
	p.RecordLoad(100, 0x1000, 12)
	if p.ReadDEAR().Valid {
		t.Fatal("DEAR captured a load below the latency threshold")
	}
	p.RecordLoad(200, 0x2000, 190)
	s := p.ReadDEAR()
	if !s.Valid || s.PC != 200 || s.Addr != 0x2000 || s.Latency != 190 {
		t.Fatalf("DEAR = %+v", s)
	}
}

func TestDEARReadClearsValid(t *testing.T) {
	p := NewPMU(0)
	p.SetDEARFilter(0, 1)
	p.RecordLoad(1, 2, 3)
	if !p.ReadDEAR().Valid {
		t.Fatal("first read invalid")
	}
	if p.ReadDEAR().Valid {
		t.Fatal("second read still valid")
	}
}

func TestDEARDecimation(t *testing.T) {
	p := NewPMU(0)
	p.SetDEARFilter(0, 3) // every 3rd qualifying load
	p.RecordLoad(1, 0, 50)
	p.RecordLoad(2, 0, 50)
	if p.ReadDEAR().Valid {
		t.Fatal("captured before decimation count reached")
	}
	p.RecordLoad(3, 0, 50)
	if s := p.ReadDEAR(); !s.Valid || s.PC != 3 {
		t.Fatalf("DEAR = %+v, want capture of PC 3", s)
	}
}

func TestDEARKeepsLatest(t *testing.T) {
	p := NewPMU(0)
	p.SetDEARFilter(0, 1)
	p.RecordLoad(1, 0x10, 100)
	p.RecordLoad(2, 0x20, 200)
	if s := p.ReadDEAR(); s.PC != 2 {
		t.Fatalf("DEAR kept PC %d, want latest (2)", s.PC)
	}
}

func TestResetKeepsProgramming(t *testing.T) {
	p := NewPMU(0)
	p.Program(0, EvL3Misses, 10)
	p.Add(EvL3Misses, 5)
	p.RecordBranch(1, 2)
	p.Reset()
	if _, v := p.Read(0); v != 0 {
		t.Fatal("Reset did not clear counter value")
	}
	if ev, _ := p.Read(0); ev != EvL3Misses {
		t.Fatal("Reset cleared counter programming")
	}
	if len(p.ReadBTB()) != 0 {
		t.Fatal("Reset did not clear BTB")
	}
	// Overflow countdown restarts from the full period.
	fires := 0
	p.SetOverflowHandler(func(int, Event) { fires++ })
	p.Add(EvL3Misses, 9)
	if fires != 0 {
		t.Fatal("overflow fired early after Reset")
	}
	p.Add(EvL3Misses, 1)
	if fires != 1 {
		t.Fatal("overflow did not fire at full period after Reset")
	}
}

func TestEventNames(t *testing.T) {
	if EvBusRdInvalAllHitm.String() != "BUS_RD_INVAL_ALL_HITM" {
		t.Fatalf("name = %q", EvBusRdInvalAllHitm.String())
	}
	if Event(200).String() != "EV_?" {
		t.Fatalf("out-of-range name = %q", Event(200).String())
	}
}

package experiment

import (
	"strings"
	"testing"

	"repro/internal/npb"
	"repro/internal/workload"
)

func TestFigure3Quick(t *testing.T) {
	cells, err := Figure3('a', QuickDaxpyScale())
	if err != nil {
		t.Fatal(err)
	}
	// 1 working set x 2 thread counts x 2 variants.
	if len(cells) != 4 {
		t.Fatalf("cells = %d, want 4", len(cells))
	}
	// The 1-thread prefetch cell is the normalization anchor.
	if cells[0].Variant != workload.VariantPrefetch || cells[0].Threads != 1 {
		t.Fatalf("first cell = %+v", cells[0])
	}
	if cells[0].Normalized != 1.0 {
		t.Fatalf("anchor normalized = %v, want 1.0", cells[0].Normalized)
	}
	for _, c := range cells {
		if c.Cycles <= 0 || c.Normalized <= 0 {
			t.Fatalf("bad cell %+v", c)
		}
	}
}

func TestFigure3BadPanel(t *testing.T) {
	if _, err := Figure3('x', QuickDaxpyScale()); err == nil {
		t.Fatal("accepted bad panel")
	}
}

func TestTable1Tiny(t *testing.T) {
	rows, err := Table1(npb.ClassT)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(npb.Names) {
		t.Fatalf("rows = %d, want %d", len(rows), len(npb.Names))
	}
	byName := map[string]Table1Row{}
	for _, r := range rows {
		byName[r.Bench] = r
	}
	// EP is the lightest prefetcher, as in the paper.
	for _, heavy := range []string{"bt", "sp", "mg", "cg", "ft", "lu"} {
		if byName[heavy].Lfetch <= byName["ep"].Lfetch {
			t.Errorf("%s lfetch %d not above ep %d", heavy, byName[heavy].Lfetch, byName["ep"].Lfetch)
		}
	}
}

func TestRunNPBQuick(t *testing.T) {
	res, err := RunNPB(SMP4, npb.ClassT, []string{"cg", "mg"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 2*len(Strategies) {
		t.Fatalf("cells = %d", len(res.Cells))
	}
	for _, b := range []string{"cg", "mg"} {
		if s := res.Speedup(b, Baseline); s != 1.0 {
			t.Errorf("%s baseline speedup = %v, want 1", b, s)
		}
		for _, s := range []StrategyLabel{NoPrefetch, Excl} {
			if v := res.Speedup(b, s); v <= 0 {
				t.Errorf("%s %s speedup = %v", b, s, v)
			}
			if v := res.NormL3(b, s); v <= 0 {
				t.Errorf("%s %s L3 = %v", b, s, v)
			}
			if v := res.NormBus(b, s); v <= 0 {
				t.Errorf("%s %s bus = %v", b, s, v)
			}
		}
	}
	if avg := res.Average(res.Speedup, Baseline); avg != 1.0 {
		t.Errorf("avg baseline speedup = %v", avg)
	}
	if _, ok := res.Cell("cg", NoPrefetch); !ok {
		t.Error("Cell lookup failed")
	}
	if _, ok := res.Cell("nope", Baseline); ok {
		t.Error("Cell found a missing benchmark")
	}
	if got := res.Benches(); len(got) != 2 || got[0] != "cg" {
		t.Errorf("Benches = %v", got)
	}
}

func TestMachineKinds(t *testing.T) {
	if SMP4.Threads() != 4 || Altix8.Threads() != 8 {
		t.Fatal("thread counts wrong")
	}
	if !strings.Contains(Altix8.String(), "NUMA") {
		t.Fatalf("Altix name = %q", Altix8.String())
	}
	cfg := Altix8.config()
	if !cfg.Machine.Mem.NUMA || cfg.Machine.Mem.CPUsPerNode != 2 {
		t.Fatal("Altix config not cc-NUMA 2-per-node")
	}
}

func TestCobraForLabels(t *testing.T) {
	if cobraFor(Baseline, SMP4) != nil {
		t.Fatal("baseline must run without COBRA")
	}
	if cobraFor(NoPrefetch, SMP4) == nil || cobraFor(Excl, SMP4) == nil {
		t.Fatal("optimized strategies must attach COBRA")
	}
	if smp, numa := cobraFor(NoPrefetch, SMP4), cobraFor(NoPrefetch, Altix8); numa.CoherentLatency <= smp.CoherentLatency {
		t.Fatal("NUMA coherent-latency filter must exceed the SMP's")
	}
}

// Package experiment assembles the paper's experiments: each public
// function regenerates the data behind one table or figure of the
// evaluation (§5), returning structured rows the report package renders in
// the paper's format.
package experiment

import (
	"fmt"

	"repro/internal/cobra"
	"repro/internal/npb"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/workload"
)

// Options configure how a sweep executes on the internal/sched worker
// pool. The zero value runs with GOMAXPROCS workers, no persistent
// ledger, no progress hooks, and a private build cache — and, because
// every cell is an independent deterministic simulation, produces output
// bit-identical to a serial run.
type Options struct {
	// Jobs is the worker-pool size; <= 0 means GOMAXPROCS.
	Jobs int
	// Ledger, when non-nil, skips cells whose content hash is already
	// recorded and reuses the recorded measurement (-incremental mode).
	Ledger *sched.Ledger
	// Hooks observe per-cell progress and timing.
	Hooks sched.Hooks
	// Cache is the compiled-binary artifact cache. Nil uses a cache
	// private to the call; pass a shared one to reuse compiles across
	// sweeps in one process.
	Cache *workload.BuildCache
	// ArtifactDir, when non-empty, attaches a per-cell observer (trace,
	// metrics, decision log) to every executed measurement job and dumps
	// its artifacts there, file names keyed by the cell's content hash so
	// they line up with run-ledger entries. Cached cells write nothing —
	// their artifacts are from the run that recorded them.
	ArtifactDir string
}

func (o Options) schedOptions() sched.Options {
	return sched.Options{Workers: o.Jobs, Ledger: o.Ledger, Hooks: o.Hooks, ArtifactDir: o.ArtifactDir}
}

func (o Options) buildCache() *workload.BuildCache {
	if o.Cache != nil {
		return o.Cache
	}
	return workload.NewBuildCache()
}

// MachineKind selects one of the paper's two platforms.
type MachineKind uint8

const (
	// SMP4 is the 4-processor Itanium 2 server (front-side bus, MESI).
	SMP4 MachineKind = iota
	// Altix8 is the SGI Altix cc-NUMA system, 8 processors in 2-CPU nodes.
	Altix8
)

func (m MachineKind) String() string {
	if m == SMP4 {
		return "4-way SMP"
	}
	return "SGI Altix cc-NUMA"
}

// Threads returns the thread count the paper uses on each platform.
func (m MachineKind) Threads() int {
	if m == SMP4 {
		return 4
	}
	return 8
}

// Config builds the workload.BuildConfig for the platform.
func (m MachineKind) config() workload.BuildConfig {
	if m == SMP4 {
		return workload.SMPConfig(m.Threads())
	}
	return workload.NUMAConfig(m.Threads())
}

// Strategy labels the three prefetch strategies of §5.2.
type StrategyLabel string

const (
	Baseline   StrategyLabel = "prefetch"
	NoPrefetch StrategyLabel = "noprefetch"
	Excl       StrategyLabel = "prefetch.excl"
)

// Strategies is the reporting order of the paper's figures.
var Strategies = []StrategyLabel{Baseline, NoPrefetch, Excl}

// cobraFor returns the COBRA configuration implementing a strategy at run
// time (nil for the baseline, which runs unmonitored). The DEAR coherent
// threshold is platform-specific, exactly as §4 derives it from measured
// latencies: above the memory latency of the machine, so only loads served
// by another CPU's cache qualify. On the Altix, remote *memory* loads
// reach ~385 cycles, so the coherent filter must sit above that.
func cobraFor(s StrategyLabel, m MachineKind) *cobra.Config {
	var c cobra.Config
	switch s {
	case NoPrefetch:
		c = cobra.DefaultConfig(cobra.StrategyNoprefetch)
	case Excl:
		c = cobra.DefaultConfig(cobra.StrategyExcl)
	default:
		return nil
	}
	if m == Altix8 {
		c.CoherentLatency = 420
	}
	return &c
}

// ---- Figure 3: DAXPY kernel ----

// DaxpyCell is one bar of Figure 3: a (threads, variant) pair at one
// working-set size, normalized to the single-thread prefetch baseline of
// that size.
type DaxpyCell struct {
	WSBytes    int64
	Threads    int
	Variant    workload.Variant
	Cycles     int64
	Normalized float64 // vs the 1-thread prefetch run at this working set
}

// DaxpyScale controls Figure 3's cost.
type DaxpyScale struct {
	WorkingSets []int64
	Threads     []int
	// RepsFor returns the outer repetition count for a working set.
	RepsFor func(ws int64) int
}

// DefaultDaxpyScale reproduces Figure 3's sweep (repetitions scaled down
// from the paper's 10^6; all reported numbers are ratios).
func DefaultDaxpyScale() DaxpyScale {
	return DaxpyScale{
		WorkingSets: []int64{128 << 10, 512 << 10, 2 << 20},
		Threads:     []int{1, 2, 4},
		RepsFor: func(ws int64) int {
			if ws >= 2<<20 {
				return 12
			}
			return 120
		},
	}
}

// QuickDaxpyScale is a cheap variant for tests.
func QuickDaxpyScale() DaxpyScale {
	return DaxpyScale{
		WorkingSets: []int64{128 << 10},
		Threads:     []int{1, 2},
		RepsFor:     func(int64) int { return 24 },
	}
}

// daxpyJob builds the scheduler job measuring one Figure 3 cell. The key
// hashes the full cell identity (kernel parameters, variant, machine and
// compiler config), so equal cells dedup within a sweep — the 1-thread
// prefetch normalization anchor and the (1, prefetch) bar are one job —
// and ledger entries survive exactly as long as the configuration is
// unchanged.
func daxpyJob(cache *workload.BuildCache, ws int64, threads, reps int, v workload.Variant, withObs bool) sched.Job[workload.Measurement] {
	p := workload.DaxpyParams{WorkingSetBytes: ws, OuterReps: reps}
	bc := workload.SMPConfig(threads)
	// The observer is created inside Run (one per executed cell, never
	// shared across concurrent jobs) and read back by the Artifacts hook,
	// which the scheduler always calls after Run on the same worker.
	var o *obs.Observer
	job := sched.Job[workload.Measurement]{
		Key:  sched.KeyOf("daxpy-cell", p, int(v), bc),
		Name: fmt.Sprintf("daxpy/ws=%dK/t=%d/%s", ws>>10, threads, v),
		Run: func() (workload.Measurement, error) {
			if withObs {
				o = obs.New(obs.Config{Trace: true, Metrics: true, Decisions: true})
				bc.Obs = o
			}
			w := workload.Daxpy(p)
			inst, err := cache.Build(sched.KeyOf("daxpy", p), w, bc)
			if err != nil {
				return workload.Measurement{}, err
			}
			if _, err := workload.ApplyVariant(inst, v); err != nil {
				return workload.Measurement{}, err
			}
			return inst.Measure()
		},
	}
	if withObs {
		key := job.Key
		job.Artifacts = func(dir string) error { return obs.WriteArtifacts(dir, key, o) }
	}
	return job
}

// Figure3 regenerates Figure 3(a) (prefetch vs noprefetch) or 3(b)
// (prefetch vs prefetch.excl): normalized DAXPY execution time across
// working sets and thread counts on the 4-way SMP. The variants are
// produced by static binary rewriting of the compiled prefetch binary, as
// in the paper.
func Figure3(panel byte, scale DaxpyScale) ([]DaxpyCell, error) {
	return Figure3Sched(panel, scale, Options{})
}

// Figure3Sched is Figure3 on the scheduler: every (working set, threads,
// variant) cell is an independent job; the per-working-set normalization
// anchors are folded into the same run by key dedup.
func Figure3Sched(panel byte, scale DaxpyScale, opt Options) ([]DaxpyCell, error) {
	var alt workload.Variant
	switch panel {
	case 'a':
		alt = workload.VariantNoPrefetch
	case 'b':
		alt = workload.VariantExcl
	default:
		return nil, fmt.Errorf("experiment: figure 3 panel %q", panel)
	}
	cache := opt.buildCache()
	// Job layout per working set: the 1-thread prefetch anchor first, then
	// the cells in reporting order (scheduling order does not affect the
	// output — results come back indexed).
	var jobs []sched.Job[workload.Measurement]
	for _, ws := range scale.WorkingSets {
		reps := scale.RepsFor(ws)
		jobs = append(jobs, daxpyJob(cache, ws, 1, reps, workload.VariantPrefetch, opt.ArtifactDir != ""))
		for _, th := range scale.Threads {
			for _, v := range []workload.Variant{workload.VariantPrefetch, alt} {
				jobs = append(jobs, daxpyJob(cache, ws, th, reps, v, opt.ArtifactDir != ""))
			}
		}
	}
	results := sched.Run(jobs, opt.schedOptions())
	if err := sched.FirstErr(results); err != nil {
		return nil, err
	}
	var cells []DaxpyCell
	i := 0
	for _, ws := range scale.WorkingSets {
		base1 := results[i].Value
		i++
		for _, th := range scale.Threads {
			for _, v := range []workload.Variant{workload.VariantPrefetch, alt} {
				m := results[i].Value
				i++
				// Guard the normalization: a degenerate zero-cycle baseline
				// must report 0, not divide into NaN/Inf that poisons the
				// emitted table.
				norm := 0.0
				if base1.Cycles != 0 {
					norm = float64(m.Cycles) / float64(base1.Cycles)
				}
				cells = append(cells, DaxpyCell{
					WSBytes: ws, Threads: th, Variant: v, Cycles: m.Cycles,
					Normalized: norm,
				})
			}
		}
	}
	return cells, nil
}

// ---- Table 1: static counts ----

// Table1Row is one row of Table 1: static instruction statistics of a
// compiled NPB binary.
type Table1Row struct {
	Bench   string
	Lfetch  int
	BrCtop  int
	BrCloop int
	BrWtop  int
}

// Table1 compiles every NPB benchmark and counts the prefetches and loop
// branches in the generated binaries.
func Table1(class npb.Class) ([]Table1Row, error) {
	return Table1Sched(class, Options{})
}

// Table1Sched is Table1 on the scheduler: one compile-and-count job per
// benchmark.
func Table1Sched(class npb.Class, opt Options) ([]Table1Row, error) {
	cache := opt.buildCache()
	p := npb.Params{Class: class}
	bc := workload.SMPConfig(1)
	var jobs []sched.Job[Table1Row]
	for _, name := range npb.Names {
		name := name
		jobs = append(jobs, sched.Job[Table1Row]{
			Key:  sched.KeyOf("table1", name, p, bc),
			Name: fmt.Sprintf("table1/%s.%s", name, class),
			Run: func() (Table1Row, error) {
				w, err := npb.Build(name, p)
				if err != nil {
					return Table1Row{}, err
				}
				inst, err := cache.Build(sched.KeyOf("npb", name, p), w, bc)
				if err != nil {
					return Table1Row{}, err
				}
				c := inst.Ctx.Res.StaticCounts(inst.Ctx.M.Image())
				return Table1Row{
					Bench: name, Lfetch: c.Lfetch,
					BrCtop: c.BrCtop, BrCloop: c.BrCloop, BrWtop: c.BrWtop,
				}, nil
			},
		})
	}
	results := sched.Run(jobs, opt.schedOptions())
	if err := sched.FirstErr(results); err != nil {
		return nil, err
	}
	rows := make([]Table1Row, len(results))
	for i, r := range results {
		rows[i] = r.Value
	}
	return rows, nil
}

// ---- Figures 5, 6, 7: NPB under COBRA ----

// NPBCell is one benchmark × strategy measurement.
type NPBCell struct {
	Bench    string
	Strategy StrategyLabel
	workload.Measurement
}

// NPBResult is a full platform sweep: the data behind Figures 5(x), 6(x)
// and 7(x) for one machine.
type NPBResult struct {
	Machine MachineKind
	Threads int
	Cells   []NPBCell
}

// RunNPB measures every result benchmark under the three strategies on a
// platform. The baseline runs without COBRA; noprefetch and prefetch.excl
// run under COBRA with the corresponding strategy, so the reported numbers
// include all monitoring and optimization overhead, as in the paper.
func RunNPB(machine MachineKind, class npb.Class, benches []string) (*NPBResult, error) {
	return RunNPBSched(machine, class, benches, Options{})
}

// npbJob builds the scheduler job measuring one (benchmark, strategy)
// cell. The build config carries the full machine, compiler and COBRA
// configuration, so the content hash changes with any of them. The three
// strategies of one benchmark share a compiled artifact through the build
// cache: COBRA attaches at run time and never alters the compile.
func npbJob(cache *workload.BuildCache, machine MachineKind, class npb.Class, name string, s StrategyLabel, withObs bool) sched.Job[workload.Measurement] {
	p := npb.Params{Class: class}
	bc := machine.config()
	bc.Cobra = cobraFor(s, machine)
	var o *obs.Observer
	job := sched.Job[workload.Measurement]{
		Key:  sched.KeyOf("npb-cell", name, p, bc),
		Name: fmt.Sprintf("%s/%s.%s/%s", machineShort(machine), name, class, s),
		Run: func() (workload.Measurement, error) {
			if withObs {
				o = obs.New(obs.Config{Trace: true, Metrics: true, Decisions: true})
				bc.Obs = o
			}
			w, err := npb.Build(name, p)
			if err != nil {
				return workload.Measurement{}, err
			}
			inst, err := cache.Build(sched.KeyOf("npb", name, p), w, bc)
			if err != nil {
				return workload.Measurement{}, err
			}
			return inst.Measure()
		},
	}
	if withObs {
		key := job.Key
		job.Artifacts = func(dir string) error { return obs.WriteArtifacts(dir, key, o) }
	}
	return job
}

func machineShort(m MachineKind) string {
	if m == SMP4 {
		return "smp"
	}
	return "numa"
}

// RunNPBSched is RunNPB on the scheduler: one job per (benchmark,
// strategy) cell, results assembled in the paper's reporting order
// regardless of completion order.
func RunNPBSched(machine MachineKind, class npb.Class, benches []string, opt Options) (*NPBResult, error) {
	if benches == nil {
		benches = npb.ResultNames
	}
	cache := opt.buildCache()
	var jobs []sched.Job[workload.Measurement]
	for _, name := range benches {
		for _, s := range Strategies {
			jobs = append(jobs, npbJob(cache, machine, class, name, s, opt.ArtifactDir != ""))
		}
	}
	results := sched.Run(jobs, opt.schedOptions())
	res := &NPBResult{Machine: machine, Threads: machine.Threads()}
	i := 0
	for _, name := range benches {
		for _, s := range Strategies {
			r := results[i]
			i++
			if r.Err != nil {
				return nil, fmt.Errorf("%s/%s: %w", name, s, r.Err)
			}
			res.Cells = append(res.Cells, NPBCell{Bench: name, Strategy: s, Measurement: r.Value})
		}
	}
	return res, nil
}

// Cell returns the measurement for (bench, strategy).
func (r *NPBResult) Cell(bench string, s StrategyLabel) (NPBCell, bool) {
	for _, c := range r.Cells {
		if c.Bench == bench && c.Strategy == s {
			return c, true
		}
	}
	return NPBCell{}, false
}

// Benches lists the benchmarks present, in insertion order.
func (r *NPBResult) Benches() []string {
	var out []string
	seen := map[string]bool{}
	for _, c := range r.Cells {
		if !seen[c.Bench] {
			seen[c.Bench] = true
			out = append(out, c.Bench)
		}
	}
	return out
}

// Speedup returns execution-time speedup of strategy s over the baseline
// for bench (Figure 5's metric: > 1 is faster).
func (r *NPBResult) Speedup(bench string, s StrategyLabel) float64 {
	base, ok1 := r.Cell(bench, Baseline)
	c, ok2 := r.Cell(bench, s)
	if !ok1 || !ok2 || c.Cycles == 0 {
		return 0
	}
	return float64(base.Cycles) / float64(c.Cycles)
}

// NormL3 returns strategy s's L3 misses normalized to baseline (Figure 6).
func (r *NPBResult) NormL3(bench string, s StrategyLabel) float64 {
	base, ok1 := r.Cell(bench, Baseline)
	c, ok2 := r.Cell(bench, s)
	if !ok1 || !ok2 || base.Mem.L3Misses == 0 {
		return 0
	}
	return float64(c.Mem.L3Misses) / float64(base.Mem.L3Misses)
}

// NormBus returns strategy s's system memory transactions normalized to
// baseline (Figure 7).
func (r *NPBResult) NormBus(bench string, s StrategyLabel) float64 {
	base, ok1 := r.Cell(bench, Baseline)
	c, ok2 := r.Cell(bench, s)
	if !ok1 || !ok2 || base.Mem.BusMemory == 0 {
		return 0
	}
	return float64(c.Mem.BusMemory) / float64(base.Mem.BusMemory)
}

// Average returns the arithmetic mean of metric over the benchmarks (the
// "avg" bar of each figure).
func (r *NPBResult) Average(metric func(bench string, s StrategyLabel) float64, s StrategyLabel) float64 {
	benches := r.Benches()
	if len(benches) == 0 {
		return 0
	}
	sum := 0.0
	for _, b := range benches {
		sum += metric(b, s)
	}
	return sum / float64(len(benches))
}

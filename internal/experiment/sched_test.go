package experiment_test

import (
	"path/filepath"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/experiment"
	"repro/internal/npb"
	"repro/internal/report"
	"repro/internal/sched"
	"repro/internal/workload"
)

// TestRunNPBParityAcrossWorkerCounts is the determinism contract of the
// scheduler port: the same sweep under jobs=1 and jobs=8 must produce
// byte-identical serialized rows. Each cell is an independent determin-
// istic simulation, so worker count and completion order must be
// unobservable in the output.
func TestRunNPBParityAcrossWorkerCounts(t *testing.T) {
	benches := []string{"cg", "mg"}
	serial, err := experiment.RunNPBSched(experiment.SMP4, npb.ClassT, benches, experiment.Options{Jobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := experiment.RunNPBSched(experiment.SMP4, npb.ClassT, benches, experiment.Options{Jobs: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial.Cells, parallel.Cells) {
		t.Fatalf("jobs=1 and jobs=8 cells differ:\n%+v\n%+v", serial.Cells, parallel.Cells)
	}
	var s1, s8 strings.Builder
	report.CSV(&s1, serial)
	report.CSV(&s8, parallel)
	if s1.String() != s8.String() {
		t.Fatalf("serialized rows differ:\n%s\n---\n%s", s1.String(), s8.String())
	}
}

func TestFigure3ParityAcrossWorkerCounts(t *testing.T) {
	scale := experiment.QuickDaxpyScale()
	serial, err := experiment.Figure3Sched('a', scale, experiment.Options{Jobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := experiment.Figure3Sched('a', scale, experiment.Options{Jobs: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("jobs=1 and jobs=8 cells differ:\n%+v\n%+v", serial, parallel)
	}
}

func TestTable1ParityAcrossWorkerCounts(t *testing.T) {
	serial, err := experiment.Table1Sched(npb.ClassT, experiment.Options{Jobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := experiment.Table1Sched(npb.ClassT, experiment.Options{Jobs: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("jobs=1 and jobs=8 rows differ:\n%+v\n%+v", serial, parallel)
	}
}

// TestRunNPBSharesCompiles checks the artifact cache: the three strategies
// of one benchmark differ only in the attached COBRA runtime, so a sweep
// of B benchmarks × 3 strategies compiles exactly B binaries.
func TestRunNPBSharesCompiles(t *testing.T) {
	cache := workload.NewBuildCache()
	_, err := experiment.RunNPBSched(experiment.SMP4, npb.ClassT, []string{"cg", "mg"}, experiment.Options{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	hits, misses := cache.Stats()
	if misses != 2 {
		t.Errorf("misses = %d, want 2 (one compile per benchmark)", misses)
	}
	if hits != 4 {
		t.Errorf("hits = %d, want 4 (two extra strategies per benchmark)", hits)
	}
}

// TestIncrementalLedgerSkipsUnchangedCells exercises -incremental end to
// end: a rerun against the same ledger executes nothing and reproduces
// the recorded measurements exactly.
func TestIncrementalLedgerSkipsUnchangedCells(t *testing.T) {
	led, err := sched.OpenLedger(filepath.Join(t.TempDir(), "ledger"))
	if err != nil {
		t.Fatal(err)
	}
	var executed, cached atomic.Int64
	opt := experiment.Options{
		Ledger: led,
		Hooks: sched.Hooks{
			Started: func(sched.Event) { executed.Add(1) },
			Cached:  func(sched.Event) { cached.Add(1) },
		},
	}
	cold, err := experiment.RunNPBSched(experiment.SMP4, npb.ClassT, []string{"mg"}, opt)
	if err != nil {
		t.Fatal(err)
	}
	if executed.Load() == 0 || cached.Load() != 0 {
		t.Fatalf("cold run: executed=%d cached=%d", executed.Load(), cached.Load())
	}
	coldExecuted := executed.Load()

	warm, err := experiment.RunNPBSched(experiment.SMP4, npb.ClassT, []string{"mg"}, opt)
	if err != nil {
		t.Fatal(err)
	}
	if executed.Load() != coldExecuted {
		t.Fatalf("warm run re-executed cells: %d -> %d", coldExecuted, executed.Load())
	}
	if cached.Load() != coldExecuted {
		t.Fatalf("warm run cached %d cells, want %d", cached.Load(), coldExecuted)
	}
	if !reflect.DeepEqual(cold.Cells, warm.Cells) {
		t.Fatalf("ledger round trip changed the cells:\n%+v\n%+v", cold.Cells, warm.Cells)
	}

	// A config change must invalidate: the NUMA sweep shares no keys.
	executed.Store(0)
	cached.Store(0)
	if _, err := experiment.RunNPBSched(experiment.Altix8, npb.ClassT, []string{"mg"}, opt); err != nil {
		t.Fatal(err)
	}
	if cached.Load() != 0 {
		t.Fatalf("NUMA sweep hit SMP ledger entries: %d", cached.Load())
	}
	if executed.Load() == 0 {
		t.Fatal("NUMA sweep executed nothing")
	}
}

package obs

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestBusNilSafety(t *testing.T) {
	var b *EventBus
	if b.Enabled() {
		t.Fatal("nil bus claims enabled")
	}
	if seq := b.Publish(KindPass, 1, nil); seq != 0 {
		t.Fatalf("nil Publish returned seq %d", seq)
	}
	if b.LastSeq() != 0 || b.Subscribers() != 0 {
		t.Fatal("nil bus reports state")
	}
	if _, err := b.Subscribe(0, 0); !errors.Is(err, ErrBusDisabled) {
		t.Fatalf("nil Subscribe err = %v, want ErrBusDisabled", err)
	}
	b.Close() // must not panic

	// A nil observer (and one built without Events) exposes a nil bus.
	var o *Observer
	if o.Bus() != nil {
		t.Fatal("nil observer has a bus")
	}
	if New(Config{Metrics: true}).Bus() != nil {
		t.Fatal("events-disabled observer has a bus")
	}
	if New(Config{Events: true}).Bus() == nil {
		t.Fatal("events-enabled observer lacks a bus")
	}
}

func TestBusNilPublishZeroAlloc(t *testing.T) {
	var b *EventBus
	if n := testing.AllocsPerRun(100, func() {
		b.Publish(KindPass, 1, nil)
	}); n != 0 {
		t.Fatalf("disabled-bus Publish allocates %.1f/op, want 0", n)
	}
}

func TestBusPublishSubscribe(t *testing.T) {
	b := NewEventBus(0, 0)
	sub, err := b.Subscribe(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 5; i++ {
		if seq := b.Publish(KindPass, int64(i*10), i); seq != int64(i) {
			t.Fatalf("publish %d assigned seq %d", i, seq)
		}
	}
	for i := 1; i <= 5; i++ {
		ev, ok := sub.TryNext()
		if !ok {
			t.Fatalf("event %d missing", i)
		}
		if ev.Seq != int64(i) || ev.Cycle != int64(i*10) || ev.Data.(int) != i {
			t.Fatalf("event %d = %+v", i, ev)
		}
	}
	if _, ok := sub.TryNext(); ok {
		t.Fatal("extra event")
	}
	if d := sub.Dropped(); d != 0 {
		t.Fatalf("dropped = %d", d)
	}
}

// TestBusSlowSubscriberDrops: a stalled subscriber loses its oldest
// events to the ring bound — counted, never blocking the publisher —
// while keeping the most recent ones.
func TestBusSlowSubscriberDrops(t *testing.T) {
	b := NewEventBus(0, 0)
	sub, _ := b.Subscribe(0, 4)
	done := make(chan struct{})
	go func() { // publisher must not block regardless of the reader
		defer close(done)
		for i := 0; i < 100; i++ {
			b.Publish(KindPass, int64(i), i)
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("publisher blocked on a stalled subscriber")
	}
	if d := sub.Dropped(); d != 96 {
		t.Fatalf("dropped = %d, want 96", d)
	}
	ev, ok := sub.TryNext()
	if !ok || ev.Seq != 97 {
		t.Fatalf("first surviving seq = %d (ok=%v), want 97 (newest 4 retained)", ev.Seq, ok)
	}
}

// TestBusZeroDropsBelowBound: a consumer that keeps up within the ring
// bound sees a gapless, strictly monotone sequence.
func TestBusZeroDropsBelowBound(t *testing.T) {
	b := NewEventBus(0, 0)
	sub, _ := b.Subscribe(0, 256)
	const n = 256
	for i := 0; i < n; i++ {
		b.Publish(KindPass, int64(i), nil)
	}
	for want := int64(1); want <= n; want++ {
		ev, ok := sub.TryNext()
		if !ok || ev.Seq != want {
			t.Fatalf("seq %d: got %d ok=%v", want, ev.Seq, ok)
		}
	}
	if sub.Dropped() != 0 {
		t.Fatalf("dropped = %d below the bound", sub.Dropped())
	}
}

func TestBusResumeFromHistory(t *testing.T) {
	b := NewEventBus(64, 0)
	for i := 0; i < 10; i++ {
		b.Publish(KindPass, int64(i), i)
	}
	// Resume after seq 6: events 7..10 replay.
	sub, err := b.Subscribe(6, 0)
	if err != nil {
		t.Fatal(err)
	}
	for want := int64(7); want <= 10; want++ {
		ev, ok := sub.TryNext()
		if !ok || ev.Seq != want {
			t.Fatalf("resume: want seq %d, got %d ok=%v", want, ev.Seq, ok)
		}
	}
	if sub.Dropped() != 0 {
		t.Fatalf("resume within history dropped %d", sub.Dropped())
	}
	// New events keep flowing to the resumed subscriber.
	b.Publish(KindPass, 11, nil)
	if ev, ok := sub.TryNext(); !ok || ev.Seq != 11 {
		t.Fatalf("live after resume: %v %v", ev, ok)
	}
}

func TestBusResumeGapBeyondHistory(t *testing.T) {
	b := NewEventBus(8, 0)
	for i := 0; i < 20; i++ { // history retains seqs 13..20
		b.Publish(KindPass, int64(i), nil)
	}
	sub, _ := b.Subscribe(2, 0)
	if d := sub.Dropped(); d != 10 { // 3..12 evicted
		t.Fatalf("gap dropped = %d, want 10", d)
	}
	ev, ok := sub.TryNext()
	if !ok || ev.Seq != 13 {
		t.Fatalf("first after gap = %d ok=%v, want 13", ev.Seq, ok)
	}
}

// TestBusReplayExceedsBuffer: resuming a bus whose retained history is
// larger than the subscriber buffer must replay the whole history
// losslessly (the ring grows to fit the backfill) instead of the
// backfill overwriting its own head.
func TestBusReplayExceedsBuffer(t *testing.T) {
	b := NewEventBus(4096, 0)
	const n = 3000 // > DefaultSubscriberBuffer, < history cap
	for i := 1; i <= n; i++ {
		b.Publish(KindPass, int64(i), nil)
	}
	b.Close()
	sub, err := b.Subscribe(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d := sub.Dropped(); d != 0 {
		t.Fatalf("replay within history dropped %d", d)
	}
	for want := int64(1); want <= n; want++ {
		ev, ok := sub.TryNext()
		if !ok || ev.Seq != want {
			t.Fatalf("replay seq %d: got %d ok=%v", want, ev.Seq, ok)
		}
	}
	if _, err := sub.Next(context.Background()); !errors.Is(err, ErrBusClosed) {
		t.Fatalf("after full replay err = %v, want ErrBusClosed", err)
	}

	// A live subscriber resuming mid-stream grows only to the pending
	// backfill, and further live events still obey the requested bound.
	b2 := NewEventBus(0, 0)
	for i := 1; i <= 50; i++ {
		b2.Publish(KindPass, int64(i), nil)
	}
	sub2, _ := b2.Subscribe(0, 8) // 50-event backfill > 8-slot ring
	for want := int64(1); want <= 50; want++ {
		ev, ok := sub2.TryNext()
		if !ok || ev.Seq != want {
			t.Fatalf("live backfill seq %d: got %d ok=%v", want, ev.Seq, ok)
		}
	}
	if sub2.Dropped() != 0 {
		t.Fatalf("live backfill dropped %d", sub2.Dropped())
	}
}

func TestBusSubscriberLimit(t *testing.T) {
	b := NewEventBus(0, 2)
	s1, err1 := b.Subscribe(0, 0)
	_, err2 := b.Subscribe(0, 0)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if _, err := b.Subscribe(0, 0); !errors.Is(err, ErrTooManySubscribers) {
		t.Fatalf("third Subscribe err = %v", err)
	}
	s1.Close() // freeing a slot re-admits
	if _, err := b.Subscribe(0, 0); err != nil {
		t.Fatalf("Subscribe after Close: %v", err)
	}
}

func TestBusCloseDrainsThenEnds(t *testing.T) {
	b := NewEventBus(0, 0)
	sub, _ := b.Subscribe(0, 0)
	b.Publish(KindDecision, 5, "d1")
	b.Close()
	if seq := b.Publish(KindDecision, 6, "d2"); seq != 0 {
		t.Fatalf("publish after close assigned seq %d", seq)
	}
	ctx := context.Background()
	ev, err := sub.Next(ctx)
	if err != nil || ev.Seq != 1 {
		t.Fatalf("buffered event after close: %v %v", ev, err)
	}
	if _, err := sub.Next(ctx); !errors.Is(err, ErrBusClosed) {
		t.Fatalf("Next after drain err = %v, want ErrBusClosed", err)
	}
	// Subscribing to a closed bus still replays retained history.
	late, err := b.Subscribe(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ev, ok := late.TryNext(); !ok || ev.Seq != 1 {
		t.Fatalf("late subscriber replay: %v %v", ev, ok)
	}
	if _, err := late.Next(ctx); !errors.Is(err, ErrBusClosed) {
		t.Fatalf("late Next err = %v", err)
	}
}

func TestBusNextBlocksAndWakes(t *testing.T) {
	b := NewEventBus(0, 0)
	sub, _ := b.Subscribe(0, 0)
	got := make(chan BusEvent, 1)
	go func() {
		ev, err := sub.Next(context.Background())
		if err == nil {
			got <- ev
		}
	}()
	time.Sleep(10 * time.Millisecond)
	b.Publish(KindPass, 42, nil)
	select {
	case ev := <-got:
		if ev.Cycle != 42 {
			t.Fatalf("woke with %+v", ev)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Next never woke")
	}

	// Context cancellation unblocks a waiting Next.
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := sub.Next(ctx)
		errc <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Next ignored ctx")
	}
}

// TestBusConcurrent hammers one bus from several publishers and
// subscribers; run under -race this is the data-race probe, and each
// subscriber must observe strictly increasing seqs.
func TestBusConcurrent(t *testing.T) {
	b := NewEventBus(0, 0)
	const pubs, subs, perPub = 4, 4, 500
	var wg sync.WaitGroup
	for i := 0; i < subs; i++ {
		sub, err := b.Subscribe(0, perPub*pubs)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			var last int64
			for {
				ev, err := sub.Next(context.Background())
				if err != nil {
					return // bus closed
				}
				if ev.Seq <= last {
					t.Errorf("seq went %d -> %d", last, ev.Seq)
					return
				}
				last = ev.Seq
			}
		}()
	}
	var pwg sync.WaitGroup
	for p := 0; p < pubs; p++ {
		pwg.Add(1)
		go func(p int) {
			defer pwg.Done()
			for i := 0; i < perPub; i++ {
				b.Publish(KindPass, int64(i), p)
			}
		}(p)
	}
	pwg.Wait()
	b.Close()
	wg.Wait()
	if got := b.LastSeq(); got != pubs*perPub {
		t.Fatalf("LastSeq = %d, want %d", got, pubs*perPub)
	}
}

// TestRegistrySnapshotPublishes pins the Registry → bus contract: one
// KindWindow event per snapshot, carrying the snapshot plus counter
// deltas against the previous window.
func TestRegistrySnapshotPublishes(t *testing.T) {
	o := New(Config{Metrics: true, Events: true})
	reg, bus := o.Metrics(), o.Bus()
	sub, _ := bus.Subscribe(0, 0)

	reg.Counter("x").Add(3)
	reg.Gauge("g").Set(1.5)
	reg.Snapshot(0, 100)
	reg.Counter("x").Add(2)
	reg.Snapshot(1, 200)
	reg.Snapshot(2, 300) // no change: no deltas

	want := []struct {
		window int
		cycle  int64
		deltas map[string]int64
	}{
		{0, 100, map[string]int64{"x": 3}},
		{1, 200, map[string]int64{"x": 2}},
		{2, 300, nil},
	}
	for i, w := range want {
		ev, ok := sub.TryNext()
		if !ok || ev.Kind != KindWindow {
			t.Fatalf("event %d: %+v ok=%v", i, ev, ok)
		}
		we := ev.Data.(WindowEvent)
		if we.Window != w.window || we.Cycle != w.cycle {
			t.Fatalf("event %d: window %d cycle %d", i, we.Window, we.Cycle)
		}
		if len(we.CounterDeltas) != len(w.deltas) {
			t.Fatalf("event %d deltas = %v, want %v", i, we.CounterDeltas, w.deltas)
		}
		for k, v := range w.deltas {
			if we.CounterDeltas[k] != v {
				t.Fatalf("event %d delta %s = %d, want %d", i, k, we.CounterDeltas[k], v)
			}
		}
		if we.Gauges["g"] != 1.5 {
			t.Fatalf("event %d gauge missing: %v", i, we.Gauges)
		}
	}
}

// TestDecisionLogPublishes pins the DecisionLog → bus contract: every
// Record publishes the exact Decision it appended.
func TestDecisionLogPublishes(t *testing.T) {
	o := New(Config{Decisions: true, Events: true})
	dl, bus := o.Decisions(), o.Bus()
	sub, _ := bus.Subscribe(0, 0)

	dl.Record(100, 0x40, 1, StateCandidate, "trigger", Evidence{BusHitm: 7})
	dl.Record(110, 0x40, 1, StateDeployed, "deploy", Evidence{Rewrite: "nop"})

	for i, want := range dl.Decisions() {
		ev, ok := sub.TryNext()
		if !ok || ev.Kind != KindDecision {
			t.Fatalf("event %d: %+v ok=%v", i, ev, ok)
		}
		if got := ev.Data.(Decision); got != want {
			t.Fatalf("event %d = %+v, want %+v", i, got, want)
		}
		if ev.Cycle != want.Cycle {
			t.Fatalf("event %d cycle %d != %d", i, ev.Cycle, want.Cycle)
		}
	}
}

package obs

import (
	"os"
	"path/filepath"
	"strings"
)

// WriteArtifacts dumps every enabled surface of o into dir, prefixing
// file names with key (typically the scheduler's content hash, truncated
// to 16 hex chars) so artifacts line up with run-ledger entries:
//
//	<dir>/<key>.trace.json     Chrome trace_event JSON (Perfetto)
//	<dir>/<key>.metrics.json   metrics registry dump
//	<dir>/<key>.decisions.txt  Explain() audit report
//
// Disabled surfaces write nothing. A nil observer writes nothing and
// returns nil.
func WriteArtifacts(dir, key string, o *Observer) error {
	if o == nil {
		return nil
	}
	if len(key) > 16 {
		key = key[:16]
	}
	if key == "" {
		key = "run"
	}
	key = sanitize(key)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	if t := o.Trace(); t != nil {
		if err := t.WriteFile(filepath.Join(dir, key+".trace.json")); err != nil {
			return err
		}
	}
	if m := o.Metrics(); m != nil {
		if err := m.WriteFile(filepath.Join(dir, key+".metrics.json")); err != nil {
			return err
		}
	}
	if d := o.Decisions(); d != nil {
		f, err := os.Create(filepath.Join(dir, key+".decisions.txt"))
		if err != nil {
			return err
		}
		if err := d.Explain(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

// sanitize keeps key usable as a file-name prefix.
func sanitize(key string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
			return r
		}
		return '_'
	}, key)
}

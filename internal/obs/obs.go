// Package obs is the observability layer of the COBRA control loop: a
// cycle-domain event tracer, a metrics registry, and a patch-decision log
// that together turn the sample → trigger → patch → judge → roll-back
// pipeline from a black box of nine counters into inspectable artifacts.
//
// Three design rules govern every type here:
//
//  1. Cycle domain. Simulated machine cycles are the clock, never host
//     wall time: two runs of the same configuration produce byte-identical
//     traces and metric snapshots, so observability artifacts can be
//     diffed across PRs exactly like the results/ tables.
//  2. Nil safety. A nil *Observer (and nil *Tracer, *Registry,
//     *DecisionLog) is the disabled state; every method is safe to call
//     on a nil receiver and does nothing. Instrumented code guards
//     argument construction behind a single pointer check, so a disabled
//     observer adds zero allocations to the simulator's hot path (pinned
//     by AllocsPerRun tests in internal/machine).
//  3. One observer per instance. The simulator is single-goroutine per
//     machine, and so is its observer. Concurrent experiment cells each
//     get their own Observer (see the sched artifact hooks); none of the
//     artifact types here lock. The one exception is the EventBus — the
//     live telemetry plane — whose subscribers drain from other
//     goroutines; it locks internally and its publishers never block.
package obs

import "fmt"

// Config selects which observability surfaces an Observer enables.
type Config struct {
	// Trace enables the cycle-domain event tracer.
	Trace bool
	// TraceCap bounds the buffered event count (0 = default 1<<20).
	// Events beyond the cap are counted as dropped, never reallocated.
	TraceCap int
	// SampleEvents additionally records one instant event per delivered
	// perfmon sample — dense; useful for inspecting sampling behaviour,
	// too noisy for routine patch-lifecycle traces.
	SampleEvents bool
	// Metrics enables the metrics registry (window snapshots, histograms).
	Metrics bool
	// Decisions enables the patch-decision audit log.
	Decisions bool
	// Events enables the live event bus: decision transitions, window
	// snapshots and control-loop pass summaries publish to subscribers
	// during the run instead of only materializing as artifacts at the
	// end. The bus feeds off the metrics and decisions surfaces, so
	// enable those too for the full stream.
	Events bool
	// EventHistory bounds the bus's retained-event ring used for
	// subscriber resume (0 = DefaultBusHistory).
	EventHistory int
	// EventSubscribers bounds concurrent bus subscriptions
	// (0 = DefaultBusSubscribers).
	EventSubscribers int
}

// Observer bundles the three observability surfaces. A nil *Observer is
// fully disabled; each accessor returns nil for a disabled surface.
type Observer struct {
	trace        *Tracer
	sampleEvents bool
	metrics      *Registry
	decisions    *DecisionLog
	bus          *EventBus
}

// New builds an observer with the configured surfaces enabled. A config
// enabling nothing returns a non-nil observer whose accessors all return
// nil — equivalent to a nil observer, occasionally convenient for tests.
func New(cfg Config) *Observer {
	o := &Observer{sampleEvents: cfg.SampleEvents}
	if cfg.Trace {
		o.trace = NewTracer(cfg.TraceCap)
	}
	if cfg.Metrics {
		o.metrics = NewRegistry()
	}
	if cfg.Decisions {
		o.decisions = NewDecisionLog()
	}
	if cfg.Events {
		o.bus = NewEventBus(cfg.EventHistory, cfg.EventSubscribers)
		o.metrics.AttachBus(o.bus)
		o.decisions.AttachBus(o.bus)
	}
	return o
}

// Trace returns the event tracer, or nil when tracing is disabled.
func (o *Observer) Trace() *Tracer {
	if o == nil {
		return nil
	}
	return o.trace
}

// SampleTrace returns the tracer only when per-sample instants were
// requested — the perfmon driver reads this so dense sample events stay
// opt-in.
func (o *Observer) SampleTrace() *Tracer {
	if o == nil || !o.sampleEvents {
		return nil
	}
	return o.trace
}

// Metrics returns the metrics registry, or nil when disabled.
func (o *Observer) Metrics() *Registry {
	if o == nil {
		return nil
	}
	return o.metrics
}

// Decisions returns the patch-decision log, or nil when disabled.
func (o *Observer) Decisions() *DecisionLog {
	if o == nil {
		return nil
	}
	return o.decisions
}

// Bus returns the live event bus, or nil when disabled.
func (o *Observer) Bus() *EventBus {
	if o == nil {
		return nil
	}
	return o.bus
}

// LabelTracks names the standard tracks of a machine trace: one row per
// CPU plus the synthetic regions/optimizer/patch tracks. No-op when the
// observer has no tracer.
func (o *Observer) LabelTracks(numCPUs int) {
	t := o.Trace()
	if t == nil {
		return
	}
	for i := 0; i < numCPUs; i++ {
		t.ThreadName(i, fmt.Sprintf("cpu%d", i))
	}
	t.ThreadName(TIDRegions, "openmp regions")
	t.ThreadName(TIDOptimizer, "cobra optimizer")
	t.ThreadName(TIDPatch, "patch lifecycle")
}

// Track (thread) ids of the trace. CPUs use their id directly; the
// synthetic tracks sit far above any plausible CPU count so Perfetto
// groups them below the per-CPU rows.
const (
	// PID is the single trace process id (one simulated machine).
	PID = 1
	// TIDRegions carries the OpenMP fork-join region spans.
	TIDRegions = 900
	// TIDOptimizer carries the COBRA optimization thread: window spans,
	// USB drains, trigger evaluations.
	TIDOptimizer = 1000
	// TIDPatch carries the patch lifecycle: candidate, deployed, judged,
	// kept / rolled back / blocked.
	TIDPatch = 1001
)

package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Event is one Chrome trace_event record. TS and Dur are simulated
// machine cycles (the trace_event "ts" unit is nominally microseconds;
// Perfetto renders whatever integers it is given, so one tick = one
// cycle). Ph is the phase: "X" complete span, "i" instant, "C" counter,
// "M" metadata.
type Event struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   int64          `json:"ts"`
	Dur  int64          `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	S    string         `json:"s,omitempty"` // instant scope ("t" = thread)
	Args map[string]any `json:"args,omitempty"`
}

// Tracer records cycle-domain events into a bounded buffer and exports
// them in Chrome trace_event JSON, loadable directly in Perfetto or
// chrome://tracing. A nil *Tracer is the disabled state: every method is
// a no-op. The tracer is not safe for concurrent use; the simulator is
// single-goroutine per machine and each instance owns its tracer.
type Tracer struct {
	max     int
	dropped int64
	meta    []Event // thread-name metadata, emitted ahead of events
	events  []Event
}

// DefaultTraceCap bounds the event buffer when no cap is configured.
const DefaultTraceCap = 1 << 20

// NewTracer returns an enabled tracer buffering at most max events
// (0 = DefaultTraceCap). The cap bounds memory on long runs; events past
// it are counted in Dropped, never silently lost.
func NewTracer(max int) *Tracer {
	if max <= 0 {
		max = DefaultTraceCap
	}
	return &Tracer{max: max}
}

// Enabled reports whether events will be recorded.
func (t *Tracer) Enabled() bool { return t != nil }

func (t *Tracer) add(e Event) {
	if t == nil {
		return
	}
	if len(t.events) >= t.max {
		t.dropped++
		return
	}
	e.PID = PID
	t.events = append(t.events, e)
}

// Instant records a zero-duration event at cycle on track tid.
func (t *Tracer) Instant(cat, name string, tid int, cycle int64, args map[string]any) {
	t.add(Event{Name: name, Cat: cat, Ph: "i", TS: cycle, TID: tid, S: "t", Args: args})
}

// Span records a complete span covering [start, end] cycles on track tid.
// An end before start is clamped to a zero-length span at start.
func (t *Tracer) Span(cat, name string, tid int, start, end int64, args map[string]any) {
	if end < start {
		end = start
	}
	t.add(Event{Name: name, Cat: cat, Ph: "X", TS: start, Dur: end - start, TID: tid, Args: args})
}

// Counter records counter-track values at cycle; each key of series
// becomes one series of the named counter track.
func (t *Tracer) Counter(name string, tid int, cycle int64, series map[string]float64) {
	if t == nil || len(series) == 0 {
		return
	}
	args := make(map[string]any, len(series))
	for k, v := range series {
		args[k] = v
	}
	t.add(Event{Name: name, Ph: "C", TS: cycle, TID: tid, Args: args})
}

// ThreadName labels track tid in the viewer (a trace_event metadata
// record). Metadata does not count against the event cap.
func (t *Tracer) ThreadName(tid int, name string) {
	if t == nil {
		return
	}
	t.meta = append(t.meta, Event{
		Name: "thread_name", Ph: "M", PID: PID, TID: tid,
		Args: map[string]any{"name": name},
	})
}

// Len returns the number of buffered (non-metadata) events.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	return len(t.events)
}

// Dropped returns how many events the cap discarded.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	return t.dropped
}

// Events exposes the buffered events for tests and invariant checks.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	return t.events
}

// WriteJSON writes the trace in Chrome trace_event JSON object format,
// one event per line (line-diffable goldens, still a single valid JSON
// document). Output is deterministic: events appear in emission order
// and map-valued args serialize with sorted keys.
func (t *Tracer) WriteJSON(w io.Writer) error {
	if t == nil {
		_, err := io.WriteString(w, `{"displayTimeUnit":"ns","traceEvents":[]}`+"\n")
		return err
	}
	if _, err := fmt.Fprintf(w, "{\"displayTimeUnit\":\"ns\",\n\"otherData\":{\"clockDomain\":\"simulated-cycles\",\"dropped\":%d},\n\"traceEvents\":[\n", t.dropped); err != nil {
		return err
	}
	n := len(t.meta) + len(t.events)
	write := func(i int, e Event) error {
		b, err := json.Marshal(e)
		if err != nil {
			return err
		}
		if i < n-1 {
			b = append(b, ',')
		}
		b = append(b, '\n')
		_, err = w.Write(b)
		return err
	}
	for i, e := range t.meta {
		if err := write(i, e); err != nil {
			return err
		}
	}
	for i, e := range t.events {
		if err := write(len(t.meta)+i, e); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "]}\n")
	return err
}

// WriteFile writes the trace JSON to path.
func (t *Tracer) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

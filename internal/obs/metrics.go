package obs

import (
	"encoding/json"
	"io"
	"math"
	"os"
	"sort"
)

// Registry holds named counters, gauges, and histograms, and per-window
// snapshots of all of them. A nil *Registry is the disabled state. Like
// the tracer it is single-goroutine: one registry per machine instance.
type Registry struct {
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	snapshots  []WindowSnapshot

	// bus, when attached, receives one KindWindow event per Snapshot —
	// the live counterpart of the Windows time series in the dump.
	bus *EventBus
}

// NewRegistry returns an empty enabled registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Enabled reports whether the registry records anything.
func (r *Registry) Enabled() bool { return r != nil }

// AttachBus routes every future Snapshot to b as a live KindWindow
// event (nil-safe on both sides; attaching nil detaches).
func (r *Registry) AttachBus(b *EventBus) {
	if r != nil {
		r.bus = b
	}
}

// Counter is a monotonically increasing int64. A nil *Counter (from a
// nil registry) is a no-op, so instrumented code can hold counters
// unconditionally.
type Counter struct {
	name string
	v    int64
}

// Counter returns the named counter, creating it on first use. Returns
// nil when the registry is disabled.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{name: name}
		r.counters[name] = c
	}
	return c
}

// Add increments the counter by d.
func (c *Counter) Add(d int64) {
	if c != nil {
		c.v += d
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge is a last-value-wins float64.
type Gauge struct {
	name string
	v    float64
	set  bool
}

// Gauge returns the named gauge, creating it on first use. Returns nil
// when the registry is disabled.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{name: name}
		r.gauges[name] = g
	}
	return g
}

// Set records the gauge's current value.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.v, g.set = v, true
	}
}

// Value returns the last set value (0 for a nil or never-set gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return g.v
}

// Histogram accumulates float64 observations, keeping count/sum/min/max
// and power-of-two buckets over the observation magnitude. Buckets are
// enough to see the shape of cycle-domain latencies without configuring
// bounds per metric.
type Histogram struct {
	name    string
	count   int64
	sum     float64
	min     float64
	max     float64
	buckets map[int]int64 // key: ceil(log2(v)) clamped at 0; -1 for v <= 0
}

// Histogram returns the named histogram, creating it on first use.
// Returns nil when the registry is disabled.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	h, ok := r.histograms[name]
	if !ok {
		h = &Histogram{name: name, buckets: make(map[int]int64)}
		r.histograms[name] = h
	}
	return h
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	h.buckets[bucketOf(v)]++
}

func bucketOf(v float64) int {
	if v <= 0 {
		return -1
	}
	b := int(math.Ceil(math.Log2(v)))
	if b < 0 {
		b = 0
	}
	return b
}

// Count returns the number of observations (0 for nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count
}

// Mean returns the mean observation (0 when empty or nil).
func (h *Histogram) Mean() float64 {
	if h == nil || h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Quantile estimates the q-quantile (q in [0, 1]) by linear
// interpolation inside the power-of-two bucket holding the target rank,
// clamped to the observed [min, max]. The pow2 bounds cap the relative
// error at the bucket width — coarse, but configuration-free and exact
// at the extremes, which is what a latency dashboard needs. Returns 0
// on a nil or empty histogram.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil || h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(h.count)
	// Buckets in ascending key order: -1 (v <= 0), then 0, 1, 2, ...
	keys := make([]int, 0, len(h.buckets))
	for k := range h.buckets {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	var cum float64
	for _, k := range keys {
		c := float64(h.buckets[k])
		if cum+c >= rank {
			var lo, hi float64
			switch {
			case k < 0:
				lo, hi = math.Min(h.min, 0), 0
			case k == 0:
				lo, hi = 0, 1
			default:
				hi = float64(int64(1) << uint(k))
				lo = hi / 2
			}
			pos := 0.0
			if c > 0 {
				pos = (rank - cum) / c
			}
			v := lo + pos*(hi-lo)
			return math.Min(math.Max(v, h.min), h.max)
		}
		cum += c
	}
	return h.max
}

// HistogramStat is the exported summary of one histogram. P50/P95/P99
// are quantile estimates interpolated from the pow2 buckets (see
// Histogram.Quantile); they surface in every registry dump — /metricsz,
// WriteJSON, window snapshots.
type HistogramStat struct {
	Count   int64            `json:"count"`
	Sum     float64          `json:"sum"`
	Min     float64          `json:"min"`
	Max     float64          `json:"max"`
	Mean    float64          `json:"mean"`
	P50     float64          `json:"p50"`
	P95     float64          `json:"p95"`
	P99     float64          `json:"p99"`
	Buckets map[string]int64 `json:"buckets,omitempty"` // "le_2^k" -> count
}

func (h *Histogram) stat() HistogramStat {
	s := HistogramStat{
		Count: h.count, Sum: h.sum, Min: h.min, Max: h.max, Mean: h.Mean(),
		P50: h.Quantile(0.50), P95: h.Quantile(0.95), P99: h.Quantile(0.99),
	}
	if len(h.buckets) > 0 {
		s.Buckets = make(map[string]int64, len(h.buckets))
		for k, n := range h.buckets {
			s.Buckets[bucketLabel(k)] = n
		}
	}
	return s
}

func bucketLabel(k int) string {
	if k < 0 {
		return "le_0"
	}
	// label by the inclusive upper bound 2^k
	v := int64(1) << uint(k)
	return "le_" + itoa(v)
}

func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// WindowSnapshot freezes every metric value at the end of one profiling
// window. Snapshots are what make the registry diffable: the JSON dump is
// a time series in the cycle domain.
type WindowSnapshot struct {
	Window     int                      `json:"window"`
	Cycle      int64                    `json:"cycle"`
	Counters   map[string]int64         `json:"counters,omitempty"`
	Gauges     map[string]float64       `json:"gauges,omitempty"`
	Histograms map[string]HistogramStat `json:"histograms,omitempty"`
}

// Snapshot records the current value of every metric as the snapshot for
// window (an ordinal) closing at cycle.
func (r *Registry) Snapshot(window int, cycle int64) {
	if r == nil {
		return
	}
	s := WindowSnapshot{Window: window, Cycle: cycle}
	if len(r.counters) > 0 {
		s.Counters = make(map[string]int64, len(r.counters))
		for n, c := range r.counters {
			s.Counters[n] = c.v
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]float64, len(r.gauges))
		for n, g := range r.gauges {
			if g.set {
				s.Gauges[n] = g.v
			}
		}
	}
	if len(r.histograms) > 0 {
		s.Histograms = make(map[string]HistogramStat, len(r.histograms))
		for n, h := range r.histograms {
			if h.count > 0 {
				s.Histograms[n] = h.stat()
			}
		}
	}
	r.snapshots = append(r.snapshots, s)
	if r.bus != nil {
		ev := WindowEvent{WindowSnapshot: s}
		if n := len(r.snapshots); n >= 2 && len(s.Counters) > 0 {
			prev := r.snapshots[n-2].Counters
			ev.CounterDeltas = make(map[string]int64, len(s.Counters))
			for name, v := range s.Counters {
				if d := v - prev[name]; d != 0 {
					ev.CounterDeltas[name] = d
				}
			}
			if len(ev.CounterDeltas) == 0 {
				ev.CounterDeltas = nil
			}
		} else if len(s.Counters) > 0 {
			ev.CounterDeltas = s.Counters
		}
		r.bus.Publish(KindWindow, cycle, ev)
	}
}

// Snapshots returns the recorded per-window snapshots.
func (r *Registry) Snapshots() []WindowSnapshot {
	if r == nil {
		return nil
	}
	return r.snapshots
}

// Dump is the exported JSON shape of a registry: final values plus the
// per-window time series.
type Dump struct {
	Counters   map[string]int64         `json:"counters,omitempty"`
	Gauges     map[string]float64       `json:"gauges,omitempty"`
	Histograms map[string]HistogramStat `json:"histograms,omitempty"`
	Windows    []WindowSnapshot         `json:"windows,omitempty"`
}

func (r *Registry) dump() Dump {
	d := Dump{Windows: r.snapshots}
	if len(r.counters) > 0 {
		d.Counters = make(map[string]int64, len(r.counters))
		for n, c := range r.counters {
			d.Counters[n] = c.v
		}
	}
	if len(r.gauges) > 0 {
		d.Gauges = make(map[string]float64, len(r.gauges))
		for n, g := range r.gauges {
			if g.set {
				d.Gauges[n] = g.v
			}
		}
	}
	if len(r.histograms) > 0 {
		d.Histograms = make(map[string]HistogramStat, len(r.histograms))
		for n, h := range r.histograms {
			if h.count > 0 {
				d.Histograms[n] = h.stat()
			}
		}
	}
	return d
}

// Dump snapshots the registry into its exported JSON shape: final values
// plus the per-window time series. A nil registry dumps the zero Dump.
// This is the programmatic form of WriteJSON — service endpoints
// (/metricsz) embed it in larger response bodies, and callers that hold a
// lock around a shared registry can snapshot under it and serialize
// outside it.
func (r *Registry) Dump() Dump {
	if r == nil {
		return Dump{}
	}
	return r.dump()
}

// WriteJSON writes the registry dump as indented JSON. encoding/json
// serializes maps with sorted keys, so output is deterministic.
func (r *Registry) WriteJSON(w io.Writer) error {
	var d Dump
	if r != nil {
		d = r.dump()
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

// WriteFile writes the registry dump to path.
func (r *Registry) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// CounterNames returns the sorted names of all registered counters.
func (r *Registry) CounterNames() []string {
	if r == nil {
		return nil
	}
	names := make([]string, 0, len(r.counters))
	for n := range r.counters {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

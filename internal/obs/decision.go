package obs

import (
	"fmt"
	"io"
	"strings"
)

// PatchState is one state of the patch lifecycle state machine that the
// COBRA runtime walks per region: Candidate → Deployed → judged →
// Kept / RolledBack, with RolledBack regions either re-entering as a
// Candidate under an escalated rewrite or ending Blocked. Multi-version
// strategies add Switched: the dispatch branch of a region with several
// resident variants flipped to a different variant (or re-engaged a
// resident variant after a rollback) without a patch/rollback cycle.
type PatchState string

const (
	// StateCandidate: the trigger fired and the region was selected for
	// patching (it may still be skipped by deploy-time checks).
	StateCandidate PatchState = "candidate"
	// StateDeployed: a rewrite was installed (trace cache or in place).
	StateDeployed PatchState = "deployed"
	// StateKept: the judge compared post-patch IPC against baseline and
	// kept the patch.
	StateKept PatchState = "kept"
	// StateRolledBack: the judge measured a regression and reverted.
	StateRolledBack PatchState = "rolled_back"
	// StateBlocked: the region exhausted its rewrites and is barred from
	// further patching.
	StateBlocked PatchState = "blocked"
	// StateSwitched: the region's dispatch branch moved to another
	// resident variant (multi-version patching) — a one-slot repoint,
	// not a rollback + redeploy.
	StateSwitched PatchState = "switched"
)

// LegalTransition reports whether the lifecycle may move from to next.
// An empty from means the region is entering the lifecycle (only
// candidate is legal). Kept patches are re-judged every evaluation
// horizon, so kept→kept and kept→rolled_back are legal. Switched is
// judged exactly like Deployed, can chain (variant after variant), and
// a RolledBack region with resident variants may re-engage one
// (rolled_back→switched) instead of redeploying.
func LegalTransition(from, to PatchState) bool {
	switch from {
	case "":
		return to == StateCandidate
	case StateCandidate:
		return to == StateDeployed || to == StateCandidate
	case StateDeployed:
		return to == StateKept || to == StateRolledBack || to == StateSwitched
	case StateKept:
		return to == StateKept || to == StateRolledBack || to == StateSwitched
	case StateSwitched:
		return to == StateKept || to == StateRolledBack || to == StateSwitched
	case StateRolledBack:
		return to == StateCandidate || to == StateBlocked || to == StateSwitched
	case StateBlocked:
		return false
	}
	return false
}

// Evidence is the measurement basis for one lifecycle decision — the
// numbers the runtime actually compared, recorded at decision time.
type Evidence struct {
	// BaselineIPC is the region's pre-patch IPC EMA.
	BaselineIPC float64 `json:"baseline_ipc,omitempty"`
	// PatchedIPC is the region's post-patch IPC over the judgement windows.
	PatchedIPC float64 `json:"patched_ipc,omitempty"`
	// GlobalBaselineIPC / GlobalIPC are the machine-wide equivalents; a
	// patch is rolled back if either the region or the whole machine
	// regressed beyond tolerance.
	GlobalBaselineIPC float64 `json:"global_baseline_ipc,omitempty"`
	GlobalIPC         float64 `json:"global_ipc,omitempty"`
	// Tolerance is the rollback tolerance in effect (fraction of baseline).
	Tolerance float64 `json:"tolerance,omitempty"`
	// ActiveWindows counts profiling windows the patch was active for
	// when judged.
	ActiveWindows int `json:"active_windows,omitempty"`
	// CoherentShare / BusHitm are the trigger evidence: share of coherent
	// misses and raw BUS_HITM count over the trigger horizon.
	CoherentShare float64 `json:"coherent_share,omitempty"`
	BusHitm       uint64  `json:"bus_hitm,omitempty"`
	// CooldownUntil is the cycle until which the region is in post-
	// rollback cooldown (0 = none).
	CooldownUntil int64 `json:"cooldown_until,omitempty"`
	// Rewrite names the rewrite kind in effect (nop/excl/bias...).
	Rewrite string `json:"rewrite,omitempty"`
	// PredictedIPC / PredictedDelta record a causal what-if experiment:
	// the whole-program IPC the strategy predicted the patch would reach,
	// and the predicted absolute delta over baseline. Judged decisions on
	// the same region carry them forward so Explain can show
	// predicted-vs-actual.
	PredictedIPC   float64 `json:"predicted_ipc,omitempty"`
	PredictedDelta float64 `json:"predicted_delta,omitempty"`
	// Variant / Variants describe multi-version patching: which resident
	// variant the dispatch branch points at, and how many are resident.
	Variant  string `json:"variant,omitempty"`
	Variants int    `json:"variants,omitempty"`
	// Blocks / HotBlocks / HotCoverage describe a block-layout deployment:
	// the region's basic-block count, how many lead the reordered copy as
	// the hot extended traces, and the share of observed taken-edge weight
	// those hot blocks cover.
	Blocks      int     `json:"blocks,omitempty"`
	HotBlocks   int     `json:"hot_blocks,omitempty"`
	HotCoverage float64 `json:"hot_coverage,omitempty"`
}

// Decision is one entry of the patch-decision audit trail.
type Decision struct {
	// Seq orders decisions; Cycle is the machine cycle of the decision.
	Seq   int   `json:"seq"`
	Cycle int64 `json:"cycle"`
	// Region is the loop head address of the region, Window the ordinal
	// of the profiling window the decision fell in.
	Region uint64 `json:"region"`
	Window int    `json:"window,omitempty"`
	// From and To are the lifecycle states; From is empty on entry.
	From PatchState `json:"from,omitempty"`
	To   PatchState `json:"to"`
	// Reason is a short machine-greppable cause ("trigger", "regressed",
	// "improved", "rewrites_exhausted", ...).
	Reason string `json:"reason"`
	// Evidence holds the measurements behind the decision.
	Evidence Evidence `json:"evidence"`
}

// DecisionLog records lifecycle decisions per region and can validate
// that every region's history is a legal state-machine walk. A nil
// *DecisionLog is the disabled state.
type DecisionLog struct {
	decisions []Decision
	last      map[uint64]PatchState

	// bus, when attached, receives every recorded decision as a live
	// KindDecision event at the instant Record runs — the streaming
	// counterpart of the post-run audit trail.
	bus *EventBus
}

// NewDecisionLog returns an empty enabled log.
func NewDecisionLog() *DecisionLog {
	return &DecisionLog{last: make(map[uint64]PatchState)}
}

// Enabled reports whether the log records anything.
func (l *DecisionLog) Enabled() bool { return l != nil }

// AttachBus routes every future Record to b as a live KindDecision
// event (nil-safe on both sides; attaching nil detaches).
func (l *DecisionLog) AttachBus(b *EventBus) {
	if l != nil {
		l.bus = b
	}
}

// Record appends a decision. From is filled in from the region's last
// recorded state so callers only name the destination.
func (l *DecisionLog) Record(cycle int64, region uint64, window int, to PatchState, reason string, ev Evidence) {
	if l == nil {
		return
	}
	d := Decision{
		Seq:      len(l.decisions),
		Cycle:    cycle,
		Region:   region,
		Window:   window,
		From:     l.last[region],
		To:       to,
		Reason:   reason,
		Evidence: ev,
	}
	l.decisions = append(l.decisions, d)
	l.last[region] = to
	if l.bus != nil {
		l.bus.Publish(KindDecision, cycle, d)
	}
}

// Decisions returns the full audit trail in record order.
func (l *DecisionLog) Decisions() []Decision {
	if l == nil {
		return nil
	}
	return l.decisions
}

// State returns the last recorded lifecycle state for region ("" if the
// region never entered the lifecycle).
func (l *DecisionLog) State(region uint64) PatchState {
	if l == nil {
		return ""
	}
	return l.last[region]
}

// Violations replays every region's decision history through
// LegalTransition and returns a description of each illegal step. An
// empty result means the audit trail is a valid state-machine walk.
func (l *DecisionLog) Violations() []string {
	if l == nil {
		return nil
	}
	var out []string
	state := make(map[uint64]PatchState)
	for _, d := range l.decisions {
		from := state[d.Region]
		if d.From != from {
			out = append(out, fmt.Sprintf("seq %d region %#x: recorded from=%q but replay says %q", d.Seq, d.Region, d.From, from))
		}
		if !LegalTransition(from, d.To) {
			out = append(out, fmt.Sprintf("seq %d region %#x: illegal transition %q -> %q (%s)", d.Seq, d.Region, from, d.To, d.Reason))
		}
		state[d.Region] = d.To
	}
	return out
}

// Explain writes the human-readable audit report: one chronological line
// per decision with its evidence, then a per-region final-state summary.
func (l *DecisionLog) Explain(w io.Writer) error {
	if l == nil || len(l.decisions) == 0 {
		_, err := io.WriteString(w, "no patch decisions recorded\n")
		return err
	}
	var b strings.Builder
	b.WriteString("patch decision audit trail (cycle domain)\n")
	b.WriteString("==========================================\n")
	for _, d := range l.decisions {
		from := string(d.From)
		if from == "" {
			from = "-"
		}
		fmt.Fprintf(&b, "[%3d] cycle %-12d region %#x  %s -> %s  (%s)\n",
			d.Seq, d.Cycle, d.Region, from, d.To, d.Reason)
		ev := d.Evidence
		if ev.Rewrite != "" {
			fmt.Fprintf(&b, "      rewrite=%s", ev.Rewrite)
			if ev.ActiveWindows > 0 {
				fmt.Fprintf(&b, " active_windows=%d", ev.ActiveWindows)
			}
			b.WriteString("\n")
		}
		if ev.Variant != "" {
			fmt.Fprintf(&b, "      variant=%s resident=%d\n", ev.Variant, ev.Variants)
		} else if ev.Variants > 0 {
			fmt.Fprintf(&b, "      resident=%d\n", ev.Variants)
		}
		if ev.Blocks > 0 {
			fmt.Fprintf(&b, "      layout: blocks=%d hot=%d coverage=%.2f\n",
				ev.Blocks, ev.HotBlocks, ev.HotCoverage)
		}
		if ev.BusHitm > 0 || ev.CoherentShare > 0 {
			fmt.Fprintf(&b, "      trigger: coherent_share=%.4f bus_hitm=%d\n", ev.CoherentShare, ev.BusHitm)
		}
		if ev.BaselineIPC > 0 || ev.PatchedIPC > 0 {
			fmt.Fprintf(&b, "      ipc: baseline=%.4f patched=%.4f global=%.4f->%.4f tol=%.2f%%\n",
				ev.BaselineIPC, ev.PatchedIPC, ev.GlobalBaselineIPC, ev.GlobalIPC, ev.Tolerance*100)
		}
		if ev.PredictedIPC > 0 {
			if ev.PatchedIPC > 0 {
				fmt.Fprintf(&b, "      what-if: predicted=%.4f (+%.4f) actual=%.4f\n",
					ev.PredictedIPC, ev.PredictedDelta, ev.PatchedIPC)
			} else {
				fmt.Fprintf(&b, "      what-if: predicted=%.4f (+%.4f)\n",
					ev.PredictedIPC, ev.PredictedDelta)
			}
		}
		if ev.CooldownUntil > 0 {
			fmt.Fprintf(&b, "      cooldown_until=%d\n", ev.CooldownUntil)
		}
	}
	b.WriteString("\nfinal region states\n")
	b.WriteString("-------------------\n")
	// Deterministic order: walk decisions and report each region at its
	// first appearance.
	seen := make(map[uint64]bool)
	for _, d := range l.decisions {
		if seen[d.Region] {
			continue
		}
		seen[d.Region] = true
		fmt.Fprintf(&b, "region %#x: %s\n", d.Region, l.last[d.Region])
	}
	if v := l.Violations(); len(v) > 0 {
		b.WriteString("\nLIFECYCLE VIOLATIONS\n")
		for _, s := range v {
			b.WriteString("  " + s + "\n")
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestNilSafety drives every exported method through nil receivers —
// the disabled state must be inert, not a panic.
func TestNilSafety(t *testing.T) {
	var o *Observer
	if o.Trace() != nil || o.SampleTrace() != nil || o.Metrics() != nil || o.Decisions() != nil {
		t.Fatal("nil observer must return nil surfaces")
	}

	var tr *Tracer
	tr.Instant("c", "n", 1, 10, nil)
	tr.Span("c", "n", 1, 10, 20, nil)
	tr.Counter("n", 1, 10, map[string]float64{"v": 1})
	tr.ThreadName(1, "cpu0")
	if tr.Enabled() || tr.Len() != 0 || tr.Dropped() != 0 || tr.Events() != nil {
		t.Fatal("nil tracer must report disabled/empty")
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatalf("nil tracer WriteJSON: %v", err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("nil tracer output not valid JSON: %v", err)
	}

	var reg *Registry
	reg.Counter("c").Add(5)
	reg.Counter("c").Inc()
	reg.Gauge("g").Set(1.5)
	reg.Histogram("h").Observe(3)
	reg.Snapshot(0, 100)
	if reg.Enabled() || reg.Counter("c").Value() != 0 || reg.Gauge("g").Value() != 0 ||
		reg.Histogram("h").Count() != 0 || reg.Snapshots() != nil || reg.CounterNames() != nil {
		t.Fatal("nil registry must report disabled/zero")
	}
	buf.Reset()
	if err := reg.WriteJSON(&buf); err != nil {
		t.Fatalf("nil registry WriteJSON: %v", err)
	}

	var dl *DecisionLog
	dl.Record(10, 0x100, 0, StateCandidate, "trigger", Evidence{})
	if dl.Enabled() || dl.Decisions() != nil || dl.State(0x100) != "" || dl.Violations() != nil {
		t.Fatal("nil decision log must report disabled/empty")
	}
	buf.Reset()
	if err := dl.Explain(&buf); err != nil {
		t.Fatalf("nil decision log Explain: %v", err)
	}

	if err := WriteArtifacts(t.TempDir(), "k", nil); err != nil {
		t.Fatalf("nil observer WriteArtifacts: %v", err)
	}
}

func TestObserverConfig(t *testing.T) {
	o := New(Config{Trace: true, Metrics: true, Decisions: true})
	if o.Trace() == nil || o.Metrics() == nil || o.Decisions() == nil {
		t.Fatal("enabled surfaces must be non-nil")
	}
	if o.SampleTrace() != nil {
		t.Fatal("SampleTrace must be nil unless SampleEvents is set")
	}
	o2 := New(Config{Trace: true, SampleEvents: true})
	if o2.SampleTrace() != o2.Trace() {
		t.Fatal("SampleTrace must alias the tracer when SampleEvents is set")
	}
	o3 := New(Config{})
	if o3.Trace() != nil || o3.Metrics() != nil || o3.Decisions() != nil {
		t.Fatal("empty config must enable nothing")
	}
}

// TestTraceJSON checks the exported document is valid JSON in Chrome
// trace_event object format with the recorded events intact.
func TestTraceJSON(t *testing.T) {
	tr := NewTracer(0)
	tr.ThreadName(0, "cpu0")
	tr.Span("window", "window 0", TIDOptimizer, 0, 50_000, map[string]any{"ipc": 1.5})
	tr.Instant("trigger", "trigger", TIDOptimizer, 50_000, map[string]any{"region": "0x100"})
	tr.Counter("ipc", 0, 50_000, map[string]float64{"cpu0": 1.5})

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var doc struct {
		DisplayTimeUnit string  `json:"displayTimeUnit"`
		TraceEvents     []Event `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace output not valid JSON: %v\n%s", err, buf.String())
	}
	if len(doc.TraceEvents) != 4 {
		t.Fatalf("got %d events, want 4 (1 meta + 3)", len(doc.TraceEvents))
	}
	// Metadata first, then events in emission order.
	if doc.TraceEvents[0].Ph != "M" {
		t.Fatalf("first event must be metadata, got ph=%q", doc.TraceEvents[0].Ph)
	}
	span := doc.TraceEvents[1]
	if span.Ph != "X" || span.TS != 0 || span.Dur != 50_000 || span.PID != PID || span.TID != TIDOptimizer {
		t.Fatalf("bad span event: %+v", span)
	}
	if doc.TraceEvents[2].Ph != "i" || doc.TraceEvents[2].S != "t" {
		t.Fatalf("bad instant event: %+v", doc.TraceEvents[2])
	}
	if doc.TraceEvents[3].Ph != "C" {
		t.Fatalf("bad counter event: %+v", doc.TraceEvents[3])
	}
}

func TestTraceCapAndDrop(t *testing.T) {
	tr := NewTracer(3)
	for i := 0; i < 5; i++ {
		tr.Instant("c", "e", 0, int64(i), nil)
	}
	if tr.Len() != 3 {
		t.Fatalf("Len = %d, want 3", tr.Len())
	}
	if tr.Dropped() != 2 {
		t.Fatalf("Dropped = %d, want 2", tr.Dropped())
	}
	// Metadata is exempt from the cap.
	tr.ThreadName(7, "late")
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"dropped":2`) {
		t.Fatalf("dropped count missing from otherData:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), `"late"`) {
		t.Fatal("metadata recorded after cap must still be written")
	}
}

func TestSpanClampsNegativeDuration(t *testing.T) {
	tr := NewTracer(0)
	tr.Span("c", "n", 0, 100, 50, nil)
	e := tr.Events()[0]
	if e.TS != 100 || e.Dur != 0 {
		t.Fatalf("want zero-length span at 100, got ts=%d dur=%d", e.TS, e.Dur)
	}
}

func TestRegistryMetrics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("triggers")
	c.Add(2)
	c.Inc()
	if c.Value() != 3 {
		t.Fatalf("counter = %d, want 3", c.Value())
	}
	if r.Counter("triggers") != c {
		t.Fatal("Counter must return the same instance per name")
	}
	r.Gauge("ipc").Set(1.25)
	if got := r.Gauge("ipc").Value(); got != 1.25 {
		t.Fatalf("gauge = %v, want 1.25", got)
	}
	h := r.Histogram("window_cycles")
	for _, v := range []float64{10, 100, 1000} {
		h.Observe(v)
	}
	if h.Count() != 3 {
		t.Fatalf("hist count = %d, want 3", h.Count())
	}
	if got, want := h.Mean(), 370.0; got != want {
		t.Fatalf("hist mean = %v, want %v", got, want)
	}

	r.Snapshot(0, 50_000)
	c.Inc()
	r.Snapshot(1, 100_000)
	snaps := r.Snapshots()
	if len(snaps) != 2 {
		t.Fatalf("got %d snapshots, want 2", len(snaps))
	}
	if snaps[0].Counters["triggers"] != 3 || snaps[1].Counters["triggers"] != 4 {
		t.Fatalf("snapshots must freeze counter values: %+v", snaps)
	}
	if snaps[1].Window != 1 || snaps[1].Cycle != 100_000 {
		t.Fatalf("snapshot window/cycle wrong: %+v", snaps[1])
	}

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var d Dump
	if err := json.Unmarshal(buf.Bytes(), &d); err != nil {
		t.Fatalf("registry dump not valid JSON: %v", err)
	}
	if d.Counters["triggers"] != 4 || len(d.Windows) != 2 {
		t.Fatalf("bad dump: %+v", d)
	}
	if got := r.CounterNames(); len(got) != 1 || got[0] != "triggers" {
		t.Fatalf("CounterNames = %v", got)
	}
}

func TestLegalTransitions(t *testing.T) {
	legal := [][2]PatchState{
		{"", StateCandidate},
		{StateCandidate, StateDeployed},
		{StateCandidate, StateCandidate},
		{StateDeployed, StateKept},
		{StateDeployed, StateRolledBack},
		{StateKept, StateKept},
		{StateKept, StateRolledBack},
		{StateRolledBack, StateCandidate},
		{StateRolledBack, StateBlocked},
		{StateDeployed, StateSwitched},
		{StateKept, StateSwitched},
		{StateSwitched, StateSwitched},
		{StateSwitched, StateKept},
		{StateSwitched, StateRolledBack},
		{StateRolledBack, StateSwitched},
	}
	for _, tc := range legal {
		if !LegalTransition(tc[0], tc[1]) {
			t.Errorf("%q -> %q should be legal", tc[0], tc[1])
		}
	}
	illegal := [][2]PatchState{
		{"", StateDeployed},
		{"", StateKept},
		{StateCandidate, StateKept},
		{StateDeployed, StateCandidate},
		{StateDeployed, StateBlocked},
		{StateKept, StateCandidate},
		{StateKept, StateBlocked},
		{StateRolledBack, StateDeployed},
		{StateBlocked, StateCandidate},
		{StateBlocked, StateBlocked},
		{"", StateSwitched},
		{StateCandidate, StateSwitched},
		{StateSwitched, StateCandidate},
		{StateSwitched, StateBlocked},
		{StateBlocked, StateSwitched},
	}
	for _, tc := range illegal {
		if LegalTransition(tc[0], tc[1]) {
			t.Errorf("%q -> %q should be illegal", tc[0], tc[1])
		}
	}
}

func TestDecisionLogAuditTrail(t *testing.T) {
	l := NewDecisionLog()
	const region = uint64(0x4000_1000)
	l.Record(100, region, 0, StateCandidate, "trigger", Evidence{CoherentShare: 0.3, BusHitm: 40})
	l.Record(100, region, 0, StateDeployed, "deploy", Evidence{Rewrite: "nop"})
	l.Record(200, region, 2, StateRolledBack, "regressed", Evidence{
		BaselineIPC: 1.4, PatchedIPC: 1.1, Tolerance: 0.03, ActiveWindows: 2, Rewrite: "nop",
	})
	l.Record(300, region, 4, StateCandidate, "escalate", Evidence{Rewrite: "excl"})
	l.Record(300, region, 4, StateDeployed, "deploy", Evidence{Rewrite: "excl"})
	l.Record(400, region, 6, StateKept, "improved", Evidence{
		BaselineIPC: 1.4, PatchedIPC: 1.6, ActiveWindows: 2, Rewrite: "excl",
	})

	if got := l.State(region); got != StateKept {
		t.Fatalf("final state = %q, want kept", got)
	}
	if v := l.Violations(); len(v) != 0 {
		t.Fatalf("legal history reported violations: %v", v)
	}
	ds := l.Decisions()
	if len(ds) != 6 {
		t.Fatalf("got %d decisions, want 6", len(ds))
	}
	// From chaining: each decision's From is the prior To.
	if ds[0].From != "" || ds[2].From != StateDeployed || ds[3].From != StateRolledBack {
		t.Fatalf("From chaining broken: %+v", ds)
	}

	var buf bytes.Buffer
	if err := l.Explain(&buf); err != nil {
		t.Fatal(err)
	}
	report := buf.String()
	for _, want := range []string{"candidate", "deployed", "rolled_back", "kept", "coherent_share=0.3000", "baseline=1.4000", "region 0x40001000: kept"} {
		if !strings.Contains(report, want) {
			t.Errorf("Explain report missing %q:\n%s", want, report)
		}
	}
	if strings.Contains(report, "VIOLATIONS") {
		t.Errorf("legal history must not print violations:\n%s", report)
	}
}

func TestDecisionLogDetectsIllegalWalk(t *testing.T) {
	l := NewDecisionLog()
	l.Record(10, 0x100, 0, StateKept, "bogus", Evidence{}) // "" -> kept is illegal
	l.Record(20, 0x100, 0, StateBlocked, "bogus", Evidence{})
	v := l.Violations()
	if len(v) != 2 {
		t.Fatalf("want 2 violations, got %v", v)
	}
	var buf bytes.Buffer
	if err := l.Explain(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "LIFECYCLE VIOLATIONS") {
		t.Fatalf("Explain must surface violations:\n%s", buf.String())
	}
}

func TestWriteArtifacts(t *testing.T) {
	o := New(Config{Trace: true, Metrics: true, Decisions: true})
	o.Trace().Instant("c", "e", 0, 1, nil)
	o.Metrics().Counter("x").Inc()
	o.Decisions().Record(1, 0x100, 0, StateCandidate, "trigger", Evidence{})

	dir := t.TempDir()
	key := "0123456789abcdef0123456789abcdef" // full hash — must truncate
	if err := WriteArtifacts(dir, key, o); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"0123456789abcdef.trace.json",
		"0123456789abcdef.metrics.json",
		"0123456789abcdef.decisions.txt",
	} {
		b, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("missing artifact %s: %v", name, err)
		}
		if len(b) == 0 {
			t.Fatalf("artifact %s is empty", name)
		}
		if strings.HasSuffix(name, ".json") {
			var v any
			if err := json.Unmarshal(b, &v); err != nil {
				t.Fatalf("artifact %s not valid JSON: %v", name, err)
			}
		}
	}

	// Trace-only observer writes only the trace artifact.
	o2 := New(Config{Trace: true})
	o2.Trace().Instant("c", "e", 0, 1, nil)
	dir2 := t.TempDir()
	if err := WriteArtifacts(dir2, "key/../evil", o2); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir2)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "key_.._evil.trace.json" {
		t.Fatalf("unexpected artifacts: %v", entries)
	}
}

// TestRegistryDumpSnapshot: the exported Dump mirrors WriteJSON's shape —
// final values plus windows — and is nil-safe, so the service /metricsz
// endpoint can embed it without special cases.
func TestRegistryDumpSnapshot(t *testing.T) {
	var nilReg *Registry
	if d := nilReg.Dump(); d.Counters != nil || d.Gauges != nil || len(d.Windows) != 0 {
		t.Fatalf("nil registry dump not zero: %+v", d)
	}
	r := NewRegistry()
	r.Counter("serve.sessions").Add(3)
	r.Gauge("serve.queue_depth").Set(2)
	r.Histogram("serve.cycles").Observe(100)
	r.Snapshot(1, 5000)
	d := r.Dump()
	if d.Counters["serve.sessions"] != 3 {
		t.Fatalf("counter in dump = %d, want 3", d.Counters["serve.sessions"])
	}
	if d.Gauges["serve.queue_depth"] != 2 {
		t.Fatalf("gauge in dump = %v, want 2", d.Gauges["serve.queue_depth"])
	}
	if h, ok := d.Histograms["serve.cycles"]; !ok || h.Count != 1 {
		t.Fatalf("histogram in dump = %+v, want count 1", h)
	}
	if len(d.Windows) != 1 || d.Windows[0].Cycle != 5000 {
		t.Fatalf("windows in dump = %+v, want one at cycle 5000", d.Windows)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	t.Run("empty and nil", func(t *testing.T) {
		var h *Histogram
		if h.Quantile(0.5) != 0 {
			t.Fatal("nil histogram quantile != 0")
		}
		if q := NewRegistry().Histogram("h").Quantile(0.5); q != 0 {
			t.Fatalf("empty histogram quantile = %v", q)
		}
	})

	t.Run("single value pins all quantiles", func(t *testing.T) {
		h := NewRegistry().Histogram("h")
		h.Observe(7)
		for _, q := range []float64{0, 0.5, 0.99, 1} {
			if got := h.Quantile(q); got != 7 {
				t.Fatalf("Quantile(%v) = %v, want 7 (min==max clamp)", q, got)
			}
		}
	})

	t.Run("interpolates within a bucket", func(t *testing.T) {
		h := NewRegistry().Histogram("h")
		// 100 observations spread over (4, 8]: one pow2 bucket.
		for i := 1; i <= 100; i++ {
			h.Observe(4 + 4*float64(i)/100)
		}
		// p50 should land mid-bucket, near 6; interpolation is linear in
		// the bucket so the error bound is the clamp, not the estimate.
		if p50 := h.Quantile(0.50); p50 < 5.5 || p50 > 6.5 {
			t.Fatalf("p50 = %v, want ~6", p50)
		}
		if p99 := h.Quantile(0.99); p99 < 7.5 || p99 > 8 {
			t.Fatalf("p99 = %v, want near 8", p99)
		}
	})

	t.Run("monotone across buckets and clamped to extremes", func(t *testing.T) {
		h := NewRegistry().Histogram("h")
		for _, v := range []float64{-2, 0.5, 0.5, 3, 3, 3, 40, 40, 900} {
			h.Observe(v)
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.05 {
			v := h.Quantile(q)
			if v < prev {
				t.Fatalf("Quantile not monotone: q=%v gives %v after %v", q, v, prev)
			}
			if v < -2 || v > 900 {
				t.Fatalf("Quantile(%v) = %v escapes [min, max]", q, v)
			}
			prev = v
		}
		if h.Quantile(1) != 900 {
			t.Fatalf("p100 = %v, want max", h.Quantile(1))
		}
	})

	t.Run("stat carries p50/p95/p99 into dumps", func(t *testing.T) {
		r := NewRegistry()
		h := r.Histogram("lat")
		for i := 1; i <= 1000; i++ {
			h.Observe(float64(i))
		}
		var buf bytes.Buffer
		if err := r.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		var d Dump
		if err := json.Unmarshal(buf.Bytes(), &d); err != nil {
			t.Fatal(err)
		}
		s, ok := d.Histograms["lat"]
		if !ok {
			t.Fatal("histogram missing from dump")
		}
		if s.P50 != h.Quantile(0.50) || s.P95 != h.Quantile(0.95) || s.P99 != h.Quantile(0.99) {
			t.Fatalf("dump quantiles %v/%v/%v disagree with Quantile()", s.P50, s.P95, s.P99)
		}
		if !(s.P50 < s.P95 && s.P95 < s.P99 && s.P99 <= 1000) {
			t.Fatalf("quantile ordering broken: p50=%v p95=%v p99=%v", s.P50, s.P95, s.P99)
		}
		// With 1000 uniform observations the pow2 estimate for p50 must at
		// least land in the right bucket (256, 512].
		if s.P50 <= 256 || s.P50 > 512 {
			t.Fatalf("p50 = %v, want within (256, 512]", s.P50)
		}
	})
}

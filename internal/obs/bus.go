package obs

import (
	"context"
	"errors"
	"sync"
)

// EventBus is the live telemetry plane of the obs layer: a bounded,
// drop-accounted publish/subscribe fan-out that lets the decision log,
// the metrics registry and the control loop publish lifecycle and
// window events *while the run executes*, instead of only materializing
// artifacts after it ends.
//
// The bus is the one obs type that locks: publishers are the single
// simulation goroutine (or, for a server-wide bus, HTTP handlers), but
// subscribers drain from arbitrary goroutines (SSE handlers, cobra-top).
// Three properties carry the rest of the obs layer's contract over:
//
//   - Nil safety: a nil *EventBus is the disabled state; Publish on it
//     is a no-op and allocates nothing, so instrumented code can hold a
//     bus handle unconditionally and a disabled run stays zero-cost.
//   - Publishers never block. Every subscriber owns a bounded ring
//     buffer; a stalled reader overwrites its own oldest events (each
//     overwrite counted in Dropped) and can never back-pressure the
//     simulator.
//   - Monotonic sequence numbers. Every published event gets the next
//     seq (from 1), kept in a bounded history ring so a reconnecting
//     subscriber can resume from the last seq it saw (SSE
//     Last-Event-ID); gaps are visible as seq jumps and counted.
type EventBus struct {
	mu      sync.Mutex
	nextSeq int64
	closed  bool

	// history is a ring of the most recent events, for resume/backfill.
	history []BusEvent
	hStart  int // index of the oldest retained event
	hLen    int

	subs    map[*Subscription]struct{}
	maxSubs int
}

// BusEvent is one live telemetry event. Data is a typed payload (one of
// the Kind* documented shapes) that serializes to the SSE data field.
type BusEvent struct {
	// Seq is the bus-assigned monotonic sequence number, from 1.
	Seq int64 `json:"seq"`
	// Kind tags the payload shape (KindPass, KindWindow, ...).
	Kind string `json:"kind"`
	// Cycle anchors simulation-domain events in simulated cycles
	// (0 for service-domain events).
	Cycle int64 `json:"cycle,omitempty"`
	// Data is the payload; nil for marker events like KindEnd.
	Data any `json:"data,omitempty"`
}

// Event kinds published by this repo's emitters.
const (
	// KindPass: one control-loop optimizer pass closed a profiling
	// window (payload PassEvent) — published by cobra.Runtime.
	KindPass = "pass"
	// KindWindow: the metrics registry snapshotted a window (payload
	// WindowEvent: the WindowSnapshot plus counter deltas).
	KindWindow = "window"
	// KindDecision: the decision log recorded a patch-lifecycle
	// transition (payload Decision).
	KindDecision = "decision"
	// KindSession: a cobrad session changed state (payload defined by
	// internal/serve).
	KindSession = "session"
	// KindServe: cobrad server-wide counter deltas and queue depth
	// (payload defined by internal/serve).
	KindServe = "serve"
	// KindEnd: the stream is complete; no further events will be
	// published (the bus closes right after).
	KindEnd = "end"
)

// PassEvent is the KindPass payload: the rolling per-window view of the
// control loop, published every optimizer pass even when the full
// metrics registry is disabled.
type PassEvent struct {
	Window        int     `json:"window"`
	Cycle         int64   `json:"cycle"`
	IPC           float64 `json:"ipc"`
	CoherentShare float64 `json:"coherent_share"`
	Samples       int64   `json:"samples"`
	GlobalIPCEMA  float64 `json:"global_ipc_ema"`
}

// WindowEvent is the KindWindow payload: the registry's WindowSnapshot
// for the window that just closed, plus the counter deltas against the
// previous snapshot — the "/metricsz deltas" a live dashboard wants
// without diffing consecutive scrapes itself.
type WindowEvent struct {
	WindowSnapshot
	CounterDeltas map[string]int64 `json:"counter_deltas,omitempty"`
}

// Bus sizing defaults.
const (
	// DefaultBusHistory bounds the retained-event ring used for resume.
	DefaultBusHistory = 1 << 13
	// DefaultBusSubscribers bounds concurrent subscriptions per bus.
	DefaultBusSubscribers = 32
	// DefaultSubscriberBuffer is the per-subscriber ring capacity.
	DefaultSubscriberBuffer = 1 << 10
)

var (
	// ErrBusClosed is returned by Subscription.Next once the bus is
	// closed and every buffered event has been drained.
	ErrBusClosed = errors.New("obs: event bus closed")
	// ErrBusDisabled is returned by Subscribe on a nil bus.
	ErrBusDisabled = errors.New("obs: event bus disabled")
	// ErrTooManySubscribers is returned by Subscribe at the bound.
	ErrTooManySubscribers = errors.New("obs: too many bus subscribers")
)

// NewEventBus returns an enabled bus retaining historyCap events for
// resume (0 = DefaultBusHistory) and admitting at most maxSubs
// concurrent subscribers (0 = DefaultBusSubscribers).
func NewEventBus(historyCap, maxSubs int) *EventBus {
	if historyCap <= 0 {
		historyCap = DefaultBusHistory
	}
	if maxSubs <= 0 {
		maxSubs = DefaultBusSubscribers
	}
	return &EventBus{
		history: make([]BusEvent, historyCap),
		subs:    map[*Subscription]struct{}{},
		maxSubs: maxSubs,
	}
}

// Enabled reports whether publishing records anything.
func (b *EventBus) Enabled() bool { return b != nil }

// Publish assigns the next sequence number to one event and fans it out
// to every subscriber ring. It never blocks on slow consumers, is a
// no-op on a nil or closed bus, and returns the assigned seq (0 when
// disabled or closed).
func (b *EventBus) Publish(kind string, cycle int64, data any) int64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return 0
	}
	b.nextSeq++
	ev := BusEvent{Seq: b.nextSeq, Kind: kind, Cycle: cycle, Data: data}
	// Retain in the history ring, overwriting the oldest entry once full.
	if b.hLen < len(b.history) {
		b.history[(b.hStart+b.hLen)%len(b.history)] = ev
		b.hLen++
	} else {
		b.history[b.hStart] = ev
		b.hStart = (b.hStart + 1) % len(b.history)
	}
	for sub := range b.subs {
		sub.push(ev)
	}
	return ev.Seq
}

// LastSeq returns the sequence number of the most recently published
// event (0 when none, or on a nil bus).
func (b *EventBus) LastSeq() int64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.nextSeq
}

// Subscribers returns the current subscription count.
func (b *EventBus) Subscribers() int {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.subs)
}

// Subscribe registers a subscriber whose ring buffers at most buf
// events (0 = DefaultSubscriberBuffer), backfilled with every retained
// event with seq > fromSeq (0 = from the beginning); when the backfill
// alone exceeds buf the ring is sized to hold it (bounded by the
// history capacity), so a resume never truncates retained history.
// Events older than the history ring retains are counted in Dropped —
// the seq of the first delivered event exposes the gap. Subscribing to a closed bus
// succeeds and drains the retained history before Next reports
// ErrBusClosed, so a completed session's stream remains replayable.
func (b *EventBus) Subscribe(fromSeq int64, buf int) (*Subscription, error) {
	if b == nil {
		return nil, ErrBusDisabled
	}
	if buf <= 0 {
		buf = DefaultSubscriberBuffer
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(b.subs) >= b.maxSubs {
		return nil, ErrTooManySubscribers
	}
	s := &Subscription{
		bus:  b,
		ring: make([]BusEvent, buf),
		wake: make(chan struct{}, 1),
	}
	// Backfill from history. The oldest retained seq is
	// nextSeq - hLen + 1; anything between fromSeq and it was evicted.
	if b.hLen > 0 {
		oldest := b.nextSeq - int64(b.hLen) + 1
		if fromSeq+1 < oldest {
			s.dropped += oldest - fromSeq - 1
		}
		// A resume must replay every retained event after fromSeq, so
		// grow the ring to fit the backfill (bounded by the history cap)
		// rather than letting the replay overwrite its own head.
		if n := b.nextSeq - fromSeq; n > int64(buf) {
			if n > int64(b.hLen) {
				n = int64(b.hLen)
			}
			if n > int64(buf) {
				s.ring = make([]BusEvent, n)
			}
		}
		for i := 0; i < b.hLen; i++ {
			ev := b.history[(b.hStart+i)%len(b.history)]
			if ev.Seq > fromSeq {
				s.push(ev)
			}
		}
	} else if fromSeq < b.nextSeq {
		s.dropped += b.nextSeq - fromSeq
	}
	if !b.closed {
		b.subs[s] = struct{}{}
	} else {
		s.busClosed = true
	}
	return s, nil
}

// Close marks the bus complete: no further events are accepted, and
// every subscriber's Next reports ErrBusClosed once its ring drains.
// Safe to call on a nil bus and idempotent.
func (b *EventBus) Close() {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.closed = true
	for sub := range b.subs {
		sub.busClosed = true
		sub.wakeup()
		delete(b.subs, sub)
	}
}

// Subscription is one subscriber's bounded view of the bus. All methods
// are safe to call from a single consumer goroutine concurrently with
// publishers.
type Subscription struct {
	bus  *EventBus
	wake chan struct{}

	// Guarded by bus.mu (push side) — the consumer side re-acquires it.
	ring      []BusEvent
	head, n   int
	dropped   int64
	busClosed bool
	closed    bool
}

// push appends one event, overwriting the oldest when full. Caller
// holds bus.mu.
func (s *Subscription) push(ev BusEvent) {
	if s.closed {
		return
	}
	if s.n == len(s.ring) {
		s.head = (s.head + 1) % len(s.ring)
		s.n--
		s.dropped++
	}
	s.ring[(s.head+s.n)%len(s.ring)] = ev
	s.n++
	s.wakeup()
}

func (s *Subscription) wakeup() {
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// TryNext pops the next buffered event without blocking.
func (s *Subscription) TryNext() (BusEvent, bool) {
	s.bus.mu.Lock()
	defer s.bus.mu.Unlock()
	if s.n == 0 {
		return BusEvent{}, false
	}
	ev := s.ring[s.head]
	s.head = (s.head + 1) % len(s.ring)
	s.n--
	return ev, true
}

// Next blocks until an event is available, the bus closes (ErrBusClosed,
// after the ring drains) or ctx is done (its error).
func (s *Subscription) Next(ctx context.Context) (BusEvent, error) {
	for {
		s.bus.mu.Lock()
		if s.n > 0 {
			ev := s.ring[s.head]
			s.head = (s.head + 1) % len(s.ring)
			s.n--
			s.bus.mu.Unlock()
			return ev, nil
		}
		done := s.busClosed || s.closed
		s.bus.mu.Unlock()
		if done {
			return BusEvent{}, ErrBusClosed
		}
		select {
		case <-s.wake:
		case <-ctx.Done():
			return BusEvent{}, ctx.Err()
		}
	}
}

// Dropped returns how many events this subscriber lost to ring
// overwrites plus any resume gap beyond the bus history.
func (s *Subscription) Dropped() int64 {
	s.bus.mu.Lock()
	defer s.bus.mu.Unlock()
	return s.dropped
}

// Close unregisters the subscription; pending events are discarded.
func (s *Subscription) Close() {
	s.bus.mu.Lock()
	defer s.bus.mu.Unlock()
	s.closed = true
	delete(s.bus.subs, s)
}

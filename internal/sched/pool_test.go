package sched

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestPoolRunsSubmittedJobs is the basic lifecycle: every submitted job
// executes exactly once and resolves through its done callback.
func TestPoolRunsSubmittedJobs(t *testing.T) {
	p := NewPool[int](PoolOptions{Workers: 3, QueueDepth: 16})
	var (
		mu  sync.Mutex
		got []int
		wg  sync.WaitGroup
	)
	for i := 0; i < 8; i++ {
		i := i
		wg.Add(1)
		err := p.Submit(context.Background(), Job[int]{
			Name: fmt.Sprintf("j%d", i),
			Run:  func() (int, error) { return i * i, nil },
		}, func(r Result[int]) {
			defer wg.Done()
			if r.Err != nil {
				t.Errorf("job %d failed: %v", i, r.Err)
			}
			mu.Lock()
			got = append(got, r.Value)
			mu.Unlock()
		})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	wg.Wait()
	if err := p.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if len(got) != 8 {
		t.Fatalf("resolved %d jobs, want 8", len(got))
	}
	sum := 0
	for _, v := range got {
		sum += v
	}
	if want := 0 + 1 + 4 + 9 + 16 + 25 + 36 + 49; sum != want {
		t.Fatalf("result sum = %d, want %d", sum, want)
	}
}

// TestPoolQueueBounds proves the backpressure contract: with every worker
// busy and the queue at capacity, Submit fails fast with ErrQueueFull
// instead of blocking or growing the queue.
func TestPoolQueueBounds(t *testing.T) {
	block := make(chan struct{})
	p := NewPool[int](PoolOptions{Workers: 1, QueueDepth: 2})
	defer func() {
		close(block)
		p.Shutdown(context.Background())
	}()

	started := make(chan struct{})
	ok := func() error {
		return p.Submit(context.Background(), Job[int]{
			Name: "blocker",
			Run: func() (int, error) {
				close(started)
				<-block
				return 0, nil
			},
		}, nil)
	}
	if err := ok(); err != nil {
		t.Fatal(err)
	}
	<-started // the single worker is now wedged
	for i := 0; i < 2; i++ {
		err := p.Submit(context.Background(), Job[int]{
			Name: "queued",
			Run:  func() (int, error) { <-block; return 0, nil },
		}, nil)
		if err != nil {
			t.Fatalf("queue slot %d: %v", i, err)
		}
	}
	err := p.Submit(context.Background(), Job[int]{Name: "overflow", Run: func() (int, error) { return 0, nil }}, nil)
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow submit: err = %v, want ErrQueueFull", err)
	}
	if p.QueueLen() != 2 || p.QueueCap() != 2 {
		t.Fatalf("queue len/cap = %d/%d, want 2/2", p.QueueLen(), p.QueueCap())
	}
}

// TestPoolSubmitAfterShutdown: intake closes the moment Shutdown begins.
func TestPoolSubmitAfterShutdown(t *testing.T) {
	p := NewPool[int](PoolOptions{Workers: 1})
	if err := p.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	err := p.Submit(context.Background(), Job[int]{Name: "late", Run: func() (int, error) { return 0, nil }}, nil)
	if !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("post-shutdown submit: err = %v, want ErrPoolClosed", err)
	}
}

// TestPoolCancelBeforeStart: a job whose context is cancelled while it is
// still queued never executes, resolves with the context's error, and —
// with a ledger attached — records nothing.
func TestPoolCancelBeforeStart(t *testing.T) {
	led, err := OpenLedger(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	block := make(chan struct{})
	started := make(chan struct{})
	p := NewPool[int](PoolOptions{Workers: 1, QueueDepth: 4, Ledger: led})
	defer p.Shutdown(context.Background())

	if err := p.Submit(context.Background(), Job[int]{
		Name: "blocker",
		Run:  func() (int, error) { close(started); <-block; return 0, nil },
	}, nil); err != nil {
		t.Fatal(err)
	}
	<-started

	ctx, cancel := context.WithCancel(context.Background())
	ran := atomic.Bool{}
	resolved := make(chan Result[int], 1)
	if err := p.Submit(ctx, Job[int]{
		Key:  KeyOf("cancel-before-start"),
		Name: "victim",
		Run:  func() (int, error) { ran.Store(true); return 42, nil },
	}, func(r Result[int]) { resolved <- r }); err != nil {
		t.Fatal(err)
	}
	cancel()     // while queued behind the blocker
	close(block) // release the worker
	r := <-resolved
	if !errors.Is(r.Err, context.Canceled) {
		t.Fatalf("cancelled-while-queued job: err = %v, want context.Canceled", r.Err)
	}
	if ran.Load() {
		t.Fatal("cancelled-while-queued job executed anyway")
	}
	if n, _ := led.Len(); n != 0 {
		t.Fatalf("ledger recorded %d entries for a run with no completed keyed job, want 0", n)
	}
}

// TestPoolCancelMidJob: a RunCtx job observing its context mid-execution
// resolves as cancelled, and the ledger never records it as complete —
// the invariant that makes -incremental safe under a service that kills
// sessions.
func TestPoolCancelMidJob(t *testing.T) {
	led, err := OpenLedger(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	p := NewPool[int](PoolOptions{Workers: 1, Ledger: led})
	defer p.Shutdown(context.Background())

	ctx, cancel := context.WithCancel(context.Background())
	entered := make(chan struct{})
	resolved := make(chan Result[int], 1)
	key := KeyOf("cancel-mid-job")
	if err := p.Submit(ctx, Job[int]{
		Key:  key,
		Name: "victim",
		RunCtx: func(jctx context.Context) (int, error) {
			close(entered)
			<-jctx.Done()
			return 0, jctx.Err()
		},
	}, func(r Result[int]) { resolved <- r }); err != nil {
		t.Fatal(err)
	}
	<-entered
	cancel()
	r := <-resolved
	if !errors.Is(r.Err, context.Canceled) {
		t.Fatalf("cancelled mid-job: err = %v, want context.Canceled", r.Err)
	}
	if hit, _ := led.Get(key, new(int)); hit {
		t.Fatal("ledger recorded a cancelled job as complete")
	}
}

// TestPoolCancelRacingCompletion: even when the job function returns a
// value and a nil error, a context cancelled during execution wins — the
// result is reported cancelled and stays out of the ledger. This pins the
// post-run context check in executeJob.
func TestPoolCancelRacingCompletion(t *testing.T) {
	led, err := OpenLedger(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	p := NewPool[int](PoolOptions{Workers: 1, Ledger: led})
	defer p.Shutdown(context.Background())

	ctx, cancel := context.WithCancel(context.Background())
	resolved := make(chan Result[int], 1)
	key := KeyOf("cancel-racing-completion")
	if err := p.Submit(ctx, Job[int]{
		Key:  key,
		Name: "racer",
		RunCtx: func(jctx context.Context) (int, error) {
			cancel() // cancellation lands, then the job "completes" anyway
			return 7, nil
		},
	}, func(r Result[int]) { resolved <- r }); err != nil {
		t.Fatal(err)
	}
	r := <-resolved
	if !errors.Is(r.Err, context.Canceled) {
		t.Fatalf("race: err = %v, want context.Canceled", r.Err)
	}
	if hit, _ := led.Get(key, new(int)); hit {
		t.Fatal("ledger recorded a job that completed after cancellation")
	}
}

// TestPoolPanicIsolation: a panicking job resolves with *PanicError and
// takes down neither its worker nor the process; the pool keeps serving.
func TestPoolPanicIsolation(t *testing.T) {
	var logged atomic.Int64
	p := NewPool[int](PoolOptions{Workers: 1, Logf: func(string, ...any) { logged.Add(1) }})
	defer p.Shutdown(context.Background())

	resolved := make(chan Result[int], 1)
	if err := p.Submit(context.Background(), Job[int]{
		Name: "bomber",
		Run:  func() (int, error) { panic("session bug") },
	}, func(r Result[int]) { resolved <- r }); err != nil {
		t.Fatal(err)
	}
	r := <-resolved
	var pe *PanicError
	if !errors.As(r.Err, &pe) {
		t.Fatalf("panicking job: err = %v (%T), want *PanicError", r.Err, r.Err)
	}
	if pe.Value != "session bug" || len(pe.Stack) == 0 {
		t.Fatalf("panic evidence incomplete: value=%v stack=%d bytes", pe.Value, len(pe.Stack))
	}
	if logged.Load() == 0 {
		t.Fatal("isolated panic was not logged")
	}

	// The same worker must still be alive to run the next job.
	if err := p.Submit(context.Background(), Job[int]{
		Name: "survivor",
		Run:  func() (int, error) { return 1, nil },
	}, func(r Result[int]) { resolved <- r }); err != nil {
		t.Fatal(err)
	}
	if r := <-resolved; r.Err != nil || r.Value != 1 {
		t.Fatalf("post-panic job: value=%d err=%v, want 1/nil", r.Value, r.Err)
	}
}

// TestPoolShutdownDrains: jobs queued before Shutdown all execute and all
// done callbacks fire before Shutdown returns — the drain the service
// relies on for SIGTERM.
func TestPoolShutdownDrains(t *testing.T) {
	p := NewPool[int](PoolOptions{Workers: 2, QueueDepth: 16})
	var resolvedCount atomic.Int64
	const n = 10
	for i := 0; i < n; i++ {
		if err := p.Submit(context.Background(), Job[int]{
			Name: fmt.Sprintf("drain%d", i),
			Run: func() (int, error) {
				time.Sleep(5 * time.Millisecond)
				return 0, nil
			},
		}, func(Result[int]) { resolvedCount.Add(1) }); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := resolvedCount.Load(); got != n {
		t.Fatalf("drained %d of %d jobs before Shutdown returned", got, n)
	}
}

// TestPoolShutdownDeadline: a Shutdown bounded by an expiring context
// reports the deadline while a wedged job still drains; cancelling the
// job's context then lets Wait unwind the workers.
func TestPoolShutdownDeadline(t *testing.T) {
	p := NewPool[int](PoolOptions{Workers: 1})
	ctx, cancel := context.WithCancel(context.Background())
	entered := make(chan struct{})
	if err := p.Submit(ctx, Job[int]{
		Name: "wedged",
		RunCtx: func(jctx context.Context) (int, error) {
			close(entered)
			<-jctx.Done()
			return 0, jctx.Err()
		},
	}, nil); err != nil {
		t.Fatal(err)
	}
	<-entered
	dctx, dcancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer dcancel()
	if err := p.Shutdown(dctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("bounded shutdown over a wedged job: err = %v, want DeadlineExceeded", err)
	}
	cancel()
	p.Wait() // must return now that the job observed its cancellation
}

// TestRunContextCancelSkipsQueuedJobs covers the batch scheduler under a
// context: cancelling during a run resolves not-yet-started jobs with the
// context error and records none of them in the ledger.
func TestRunContextCancelSkipsQueuedJobs(t *testing.T) {
	led, err := OpenLedger(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	entered := make(chan struct{})
	var jobs []Job[int]
	jobs = append(jobs, Job[int]{
		Key:  KeyOf("batch-cancel", 0),
		Name: "first",
		RunCtx: func(jctx context.Context) (int, error) {
			close(entered)
			<-jctx.Done()
			return 0, jctx.Err()
		},
	})
	for i := 1; i < 5; i++ {
		i := i
		jobs = append(jobs, Job[int]{
			Key:  KeyOf("batch-cancel", i),
			Name: fmt.Sprintf("queued%d", i),
			Run:  func() (int, error) { return i, nil },
		})
	}
	go func() {
		<-entered
		cancel()
	}()
	results := RunContext(ctx, jobs, Options{Workers: 1, Ledger: led})
	for i, r := range results {
		if !errors.Is(r.Err, context.Canceled) {
			t.Fatalf("job %d: err = %v, want context.Canceled", i, r.Err)
		}
	}
	if n, _ := led.Len(); n != 0 {
		t.Fatalf("ledger holds %d entries after a fully cancelled run, want 0", n)
	}
}

// TestLedgerRecoversCorruptEntry: truncated and garbage trailing entries
// — the crash-mid-write shapes — read as misses, are quarantined for
// triage, and the next Run re-executes and re-records the cell.
func TestLedgerRecoversCorruptEntry(t *testing.T) {
	dir := t.TempDir()
	led, err := OpenLedger(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := KeyOf("corrupt-entry")
	if err := led.Put(key, "cell", 42); err != nil {
		t.Fatal(err)
	}

	full, err := os.ReadFile(filepath.Join(dir, key+".json"))
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		data []byte
	}{
		{"truncated", full[:len(full)/2]},
		{"garbage", []byte("not json at all\x00\xff")},
		{"empty", nil},
		{"wrong-key", []byte(`{"v":1,"key":"deadbeef","name":"x","value":1}`)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(dir, key+".json")
			if err := os.WriteFile(path, tc.data, 0o644); err != nil {
				t.Fatal(err)
			}
			var out int
			hit, gerr := led.Get(key, &out)
			if hit {
				t.Fatal("corrupt entry reported as a hit")
			}
			if gerr == nil {
				t.Fatal("recovery was silent: want a descriptive error to log")
			}
			if !strings.Contains(gerr.Error(), "re-executing") {
				t.Fatalf("recovery error does not describe the recovery: %v", gerr)
			}
			if _, err := os.Stat(path); !os.IsNotExist(err) {
				t.Fatalf("corrupt entry still in place after recovery (stat err=%v)", err)
			}
			if _, err := os.Stat(path + ".corrupt"); err != nil {
				t.Fatalf("quarantine file missing: %v", err)
			}
			// A second Get is now a plain miss, silently.
			if hit, gerr := led.Get(key, &out); hit || gerr != nil {
				t.Fatalf("post-recovery Get = (%v, %v), want plain miss", hit, gerr)
			}
			os.Remove(path + ".corrupt")
		})
	}
}

// TestRunContinuesPastCorruptLedgerEntry is the end-to-end satellite fix:
// a sweep whose ledger grew a corrupt trailing entry logs, re-executes
// that cell, and completes — it must not fail the run.
func TestRunContinuesPastCorruptLedgerEntry(t *testing.T) {
	dir := t.TempDir()
	led, err := OpenLedger(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := KeyOf("sweep-cell")
	mk := func() []Job[int] {
		return []Job[int]{{Key: key, Name: "cell", Run: func() (int, error) { return 9, nil }}}
	}
	Run(mk(), Options{Ledger: led})
	// Corrupt the recorded entry as a killed write would.
	path := filepath.Join(dir, key+".json")
	if err := os.WriteFile(path, []byte(`{"v":1,"key":`), 0o644); err != nil {
		t.Fatal(err)
	}
	var logs []string
	res := Run(mk(), Options{Ledger: led, Logf: func(f string, a ...any) {
		logs = append(logs, fmt.Sprintf(f, a...))
	}})
	if res[0].Err != nil {
		t.Fatalf("run failed on a corrupt ledger entry: %v", res[0].Err)
	}
	if res[0].Cached {
		t.Fatal("corrupt entry served as a cache hit")
	}
	if res[0].Value != 9 {
		t.Fatalf("re-executed value = %d, want 9", res[0].Value)
	}
	if len(logs) == 0 {
		t.Fatal("recovery was not logged")
	}
	// The re-execution re-recorded the cell: next run is a clean hit.
	res = Run(mk(), Options{Ledger: led})
	if !res[0].Cached || res[0].Value != 9 {
		t.Fatalf("post-recovery run: cached=%v value=%d, want true/9", res[0].Cached, res[0].Value)
	}
}

package sched

import (
	"os"
	"path/filepath"
	"testing"
)

type payload struct {
	Bench  string
	Cycles int64
}

func TestLedgerRoundTrip(t *testing.T) {
	led, err := OpenLedger(filepath.Join(t.TempDir(), "nested", "ledger"))
	if err != nil {
		t.Fatal(err)
	}
	key := KeyOf("cell", 1)
	want := payload{Bench: "cg", Cycles: 123456789}
	if err := led.Put(key, "cg/noprefetch", want); err != nil {
		t.Fatal(err)
	}
	var got payload
	hit, err := led.Get(key, &got)
	if err != nil || !hit {
		t.Fatalf("Get = %v, %v", hit, err)
	}
	if got != want {
		t.Fatalf("got %+v, want %+v", got, want)
	}
}

func TestLedgerMiss(t *testing.T) {
	led, err := OpenLedger(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var got payload
	hit, err := led.Get(KeyOf("absent"), &got)
	if hit || err != nil {
		t.Fatalf("miss = %v, %v; want false, nil", hit, err)
	}
}

func TestLedgerCorruptEntryIsAMiss(t *testing.T) {
	led, err := OpenLedger(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := KeyOf("corrupt")
	if err := os.WriteFile(led.path(key), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	var got payload
	hit, err := led.Get(key, &got)
	if hit {
		t.Fatal("corrupt entry reported as hit")
	}
	if err == nil {
		t.Fatal("corrupt entry produced no diagnostic")
	}
}

func TestLedgerKeyMismatchIsAMiss(t *testing.T) {
	led, err := OpenLedger(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := led.Put(KeyOf("a"), "a", payload{Bench: "a"}); err != nil {
		t.Fatal(err)
	}
	// Copy a's entry file under b's key: the embedded key no longer
	// matches the filename, so it must not be trusted.
	data, err := os.ReadFile(led.path(KeyOf("a")))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(led.path(KeyOf("b")), data, 0o644); err != nil {
		t.Fatal(err)
	}
	var got payload
	hit, err := led.Get(KeyOf("b"), &got)
	if hit {
		t.Fatal("mismatched entry reported as hit")
	}
	if err == nil {
		t.Fatal("mismatched entry produced no diagnostic")
	}
}

func TestLedgerOverwrite(t *testing.T) {
	led, err := OpenLedger(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := KeyOf("cell")
	if err := led.Put(key, "x", payload{Cycles: 1}); err != nil {
		t.Fatal(err)
	}
	if err := led.Put(key, "x", payload{Cycles: 2}); err != nil {
		t.Fatal(err)
	}
	var got payload
	if hit, err := led.Get(key, &got); !hit || err != nil {
		t.Fatalf("Get = %v, %v", hit, err)
	}
	if got.Cycles != 2 {
		t.Fatalf("Cycles = %d, want the overwritten value 2", got.Cycles)
	}
	if n, err := led.Len(); err != nil || n != 1 {
		t.Fatalf("Len = %d, %v; want 1", n, err)
	}
}

package sched

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
)

func defaultWorkers() int { return runtime.GOMAXPROCS(0) }

// ErrQueueFull is returned by Pool.Submit when the bounded queue has no
// free slot. Service front ends translate it into backpressure (HTTP 429
// with Retry-After) instead of letting the queue grow without bound.
var ErrQueueFull = errors.New("sched: pool queue full")

// ErrPoolClosed is returned by Pool.Submit after Shutdown began: the pool
// drains what it has but accepts nothing new.
var ErrPoolClosed = errors.New("sched: pool closed")

// PoolOptions configure a Pool.
type PoolOptions struct {
	// Workers is the number of concurrent jobs; <= 0 means GOMAXPROCS.
	Workers int
	// QueueDepth bounds the number of submitted-but-unstarted jobs;
	// <= 0 means 2×Workers. A full queue rejects Submit with ErrQueueFull.
	QueueDepth int
	// Ledger, Hooks, ArtifactDir and Logf behave exactly as in Options;
	// Hooks events carry Total == 0 (a service pool has no fixed job count)
	// and Seq counts monotonically over the pool's lifetime.
	Ledger      *Ledger
	Hooks       Hooks
	ArtifactDir string
	Logf        func(format string, args ...any)
}

// Pool is the long-running form of Run: a fixed set of workers consuming
// a bounded queue of context-carrying jobs, built for service front ends
// (cmd/cobrad) that submit sessions continuously instead of in batches.
// It shares the batch scheduler's execution path — ledger reuse with
// corrupt-entry recovery, panic isolation, cancellation before and during
// execution, never recording a cancelled job as complete.
type Pool[T any] struct {
	opt   PoolOptions
	queue chan poolItem[T]
	wg    sync.WaitGroup

	mu     sync.Mutex
	closed bool

	queued  atomic.Int64
	running atomic.Int64
	seq     atomic.Int64 // lifetime count of jobs that reached a worker
}

type poolItem[T any] struct {
	ctx  context.Context
	job  Job[T]
	done func(Result[T])
}

// NewPool starts the workers and returns the pool. Callers must Shutdown
// to release them.
func NewPool[T any](opt PoolOptions) *Pool[T] {
	workers := opt.Workers
	if workers <= 0 {
		workers = defaultWorkers()
	}
	depth := opt.QueueDepth
	if depth <= 0 {
		depth = 2 * workers
	}
	p := &Pool[T]{opt: opt, queue: make(chan poolItem[T], depth)}
	for w := 0; w < workers; w++ {
		p.wg.Add(1)
		go p.worker()
	}
	return p
}

func (p *Pool[T]) worker() {
	defer p.wg.Done()
	sopt := Options{
		Ledger:      p.opt.Ledger,
		ArtifactDir: p.opt.ArtifactDir,
		Logf:        p.opt.Logf,
	}
	for it := range p.queue {
		p.queued.Add(-1)
		p.running.Add(1)
		seq := int(p.seq.Add(1))
		j := it.job
		r := executeJob(it.ctx, j, sopt, func() {
			p.emit(p.opt.Hooks.Started, Event{Seq: seq, Name: j.Name, Key: j.Key})
		})
		if r.Cached {
			p.emit(p.opt.Hooks.Cached, Event{Seq: seq, Name: j.Name, Key: j.Key})
		} else {
			p.emit(p.opt.Hooks.Finished, Event{Seq: seq, Name: j.Name, Key: j.Key, Elapsed: r.Elapsed, Err: r.Err})
		}
		p.running.Add(-1)
		if it.done != nil {
			it.done(r)
		}
	}
}

// emit serializes hook invocations, matching the batch scheduler's
// contract that hooks may write to a shared sink without locking.
func (p *Pool[T]) emit(hook func(Event), ev Event) {
	if hook == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	hook(ev)
}

// Submit enqueues one job without blocking. ctx governs the job's whole
// lifetime: cancelled while queued means the job never starts and done
// receives ctx's error; cancelled mid-run is observed by RunCtx jobs. The
// done callback (may be nil) runs on a worker goroutine after the job
// resolves. Submit fails fast with ErrQueueFull when the queue is at
// capacity and ErrPoolClosed after Shutdown began.
func (p *Pool[T]) Submit(ctx context.Context, j Job[T], done func(Result[T])) error {
	if ctx == nil {
		ctx = context.Background()
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrPoolClosed
	}
	select {
	case p.queue <- poolItem[T]{ctx: ctx, job: j, done: done}:
		p.queued.Add(1)
		return nil
	default:
		return ErrQueueFull
	}
}

// QueueLen reports jobs submitted but not yet picked up by a worker.
func (p *Pool[T]) QueueLen() int { return int(p.queued.Load()) }

// QueueCap reports the bounded queue's capacity.
func (p *Pool[T]) QueueCap() int { return cap(p.queue) }

// Running reports jobs currently executing (or resolving) on workers.
func (p *Pool[T]) Running() int { return int(p.running.Load()) }

// Shutdown stops intake and drains: queued jobs still execute (their own
// contexts permitting — a caller wanting to abandon the queue cancels
// those contexts first), running jobs finish, and every done callback
// fires before Shutdown returns nil. If ctx expires first, Shutdown
// returns its error with workers still draining; callers then cancel the
// outstanding job contexts and call Wait for the workers to unwind.
func (p *Pool[T]) Shutdown(ctx context.Context) error {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		close(p.queue)
	}
	p.mu.Unlock()
	done := make(chan struct{})
	go func() {
		p.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Wait blocks until every worker has exited. Only meaningful after
// Shutdown initiated the drain.
func (p *Pool[T]) Wait() { p.wg.Wait() }

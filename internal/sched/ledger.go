package sched

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// ledgerVersion is bumped when the entry envelope changes shape, so stale
// files from an older format read as misses instead of decoding garbage.
const ledgerVersion = 1

// entry is the on-disk envelope of one recorded job.
type entry struct {
	V     int             `json:"v"`
	Key   string          `json:"key"`
	Name  string          `json:"name"`
	Value json.RawMessage `json:"value"`
}

// Ledger is a persistent run ledger: one JSON file per job hash under a
// directory (results/ledger/ by convention). A recorded cell is skipped on
// rerun — the backbone of the cmd/* -incremental mode. Because keys are
// content hashes of the full cell configuration, any change to a workload,
// machine, strategy or scale produces a different key and re-executes.
type Ledger struct {
	dir string
	mu  sync.Mutex // serializes writes; reads are lock-free (files are
	// written atomically via rename)
}

// OpenLedger opens (creating if needed) a ledger directory.
func OpenLedger(dir string) (*Ledger, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("sched: open ledger: %w", err)
	}
	return &Ledger{dir: dir}, nil
}

// Dir returns the ledger directory.
func (l *Ledger) Dir() string { return l.dir }

func (l *Ledger) path(key string) string {
	return filepath.Join(l.dir, key+".json")
}

// Get looks up a recorded value by job key, decoding it into out (a
// pointer). It returns (false, nil) for a plain miss. A truncated,
// corrupt or mismatched entry — e.g. the trailing write of a run killed
// mid-flight — is recovered, not fatal: the bad file is quarantined
// (renamed to <key>.json.corrupt so the next run re-executes the cell and
// the evidence survives for triage), and Get reports (false, err) where
// err describes the recovery so callers can log it and continue.
func (l *Ledger) Get(key string, out any) (bool, error) {
	data, err := os.ReadFile(l.path(key))
	if err != nil {
		return false, nil
	}
	var e entry
	if err := json.Unmarshal(data, &e); err != nil {
		return false, l.quarantine(key, fmt.Errorf("truncated or corrupt JSON: %w", err))
	}
	if e.V != ledgerVersion || e.Key != key {
		return false, l.quarantine(key, fmt.Errorf("version/key mismatch (v=%d key=%.16s…)", e.V, e.Key))
	}
	if err := json.Unmarshal(e.Value, out); err != nil {
		return false, l.quarantine(key, fmt.Errorf("undecodable value: %w", err))
	}
	return true, nil
}

// quarantine moves a bad entry aside so it reads as a plain miss from now
// on, and wraps cause with what happened. Removal is the fallback when the
// rename itself fails; if even that fails the entry stays and every run
// will re-report it — still only a lost cache hit, never a failed run.
func (l *Ledger) quarantine(key string, cause error) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := os.Rename(l.path(key), l.path(key)+".corrupt"); err != nil {
		if rmErr := os.Remove(l.path(key)); rmErr != nil {
			return fmt.Errorf("ledger entry %s unreadable (%v) and could not be quarantined (%v): treating as a miss", key, cause, err)
		}
		return fmt.Errorf("ledger entry %s unreadable (%v): removed, re-executing", key, cause)
	}
	return fmt.Errorf("ledger entry %s unreadable (%v): quarantined as %s.json.corrupt, re-executing", key, cause, key)
}

// Put records a value under a job key, atomically (write to a temp file in
// the same directory, then rename).
func (l *Ledger) Put(key, name string, v any) error {
	raw, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("sched: ledger put %s: %w", key, err)
	}
	data, err := json.MarshalIndent(entry{V: ledgerVersion, Key: key, Name: name, Value: raw}, "", "  ")
	if err != nil {
		return fmt.Errorf("sched: ledger put %s: %w", key, err)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	tmp, err := os.CreateTemp(l.dir, ".put-*")
	if err != nil {
		return fmt.Errorf("sched: ledger put %s: %w", key, err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		return fmt.Errorf("sched: ledger put %s: %w", key, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("sched: ledger put %s: %w", key, err)
	}
	if err := os.Rename(tmp.Name(), l.path(key)); err != nil {
		return fmt.Errorf("sched: ledger put %s: %w", key, err)
	}
	return nil
}

// Len reports how many entries the ledger currently holds.
func (l *Ledger) Len() (int, error) {
	ents, err := os.ReadDir(l.dir)
	if err != nil {
		return 0, err
	}
	n := 0
	for _, e := range ents {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".json" {
			n++
		}
	}
	return n, nil
}

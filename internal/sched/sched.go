// Package sched executes experiment cells as independent jobs on a worker
// pool. Every figure and table of the reproduction is a sweep of fully
// deterministic simulations that share no state, so the scheduler can run
// them concurrently and still return results in deterministic input order
// regardless of completion order.
//
// Each Job carries a content-hash Key identifying the cell (workload ×
// machine × strategy × scale). The key serves two purposes: jobs submitted
// with the same key in one Run are executed once and share the result
// (dedup), and an optional persistent Ledger keyed by job hash lets
// unchanged cells be skipped entirely across process runs (incremental
// mode).
package sched

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
	"sync"
	"time"
)

// Job is one schedulable unit of work producing a value of type T.
type Job[T any] struct {
	// Key is the content-hash identity of the cell (see KeyOf). Jobs with
	// equal keys are assumed to produce identical values: within one Run
	// they execute once, and with a Ledger a previously recorded value is
	// reused across runs. An empty key disables both behaviours.
	Key string
	// Name is the human-readable label used by progress hooks.
	Name string
	// Run computes the cell. It must not share mutable state with other
	// jobs: the scheduler may invoke many Run functions concurrently.
	// Exactly one of Run and RunCtx must be set.
	Run func() (T, error)
	// RunCtx is the context-aware form of Run, for jobs that can be
	// cancelled mid-execution (long sessions on a service pool). The
	// context passed is the job's own context (Pool.Submit) or the run
	// context (RunContext). When both Run and RunCtx are set, RunCtx wins.
	RunCtx func(ctx context.Context) (T, error)
	// Artifacts, when non-nil and Options.ArtifactDir is set, is called
	// after a successful (non-cached) Run with the artifact directory —
	// the hook jobs use to dump per-cell observability artifacts (traces,
	// metrics, decision logs) keyed by the job's content hash. An error
	// surfaces as the job's Err: a cell whose evidence cannot be written
	// is treated as failed, not silently unobservable.
	Artifacts func(dir string) error
}

// PanicError is the job error produced when a Run panics: the scheduler
// isolates the panic to the owning job instead of tearing down the whole
// worker pool (and, for a service, the process).
type PanicError struct {
	Value any    // the recovered panic value
	Stack []byte // the panicking goroutine's stack
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("sched: job panicked: %v", e.Value)
}

// Result pairs a job with its outcome, in the input order of Run.
type Result[T any] struct {
	Name    string
	Key     string
	Value   T
	Err     error
	Cached  bool          // served from the ledger, not executed
	Elapsed time.Duration // execution time (zero when Cached)
}

// Event describes a job state change delivered to Hooks.
type Event struct {
	Seq     int    // 1-based count of jobs that have reached this state
	Total   int    // distinct jobs in this Run (after key dedup)
	Name    string // Job.Name
	Key     string // Job.Key
	Elapsed time.Duration
	Err     error
}

// Hooks observe job progress. Invocations are serialized by the scheduler,
// so hooks may write to a shared sink without locking; they run on worker
// goroutines and should be fast. Any field may be nil.
type Hooks struct {
	Started  func(Event) // a job began executing
	Finished func(Event) // a job finished executing (Err set on failure)
	Cached   func(Event) // a job was skipped: its ledger entry was reused
}

// Options configure one Run.
type Options struct {
	// Workers is the number of concurrent jobs; <= 0 means GOMAXPROCS.
	Workers int
	// Ledger, when non-nil, is consulted before executing a keyed job and
	// updated after a successful execution.
	Ledger *Ledger
	// Hooks receive progress callbacks.
	Hooks Hooks
	// ArtifactDir, when non-empty, enables the per-job Artifacts hooks
	// (each executed job with an Artifacts func receives this directory).
	ArtifactDir string
	// Logf, when non-nil, receives diagnostics the scheduler recovers
	// from rather than failing the run — ledger entries it had to
	// quarantine, panics it isolated. Nil discards them.
	Logf func(format string, args ...any)
}

func (o Options) logf(format string, args ...any) {
	if o.Logf != nil {
		o.Logf(format, args...)
	}
}

// executeJob runs one job under jctx with the shared hardening applied:
// ledger lookup (with corrupt-entry recovery), cancellation before and
// after execution, panic isolation, the artifact hook, and the ledger
// write. It is the single execution path shared by the batch Run and the
// service Pool; hooks and progress counters stay with the callers.
// onStart, when non-nil, fires exactly when real execution begins — never
// for a ledger hit or a pre-start cancellation.
func executeJob[T any](jctx context.Context, j Job[T], opt Options, onStart func()) Result[T] {
	r := Result[T]{Name: j.Name, Key: j.Key}
	// A job whose context is already done never starts — and is reported
	// as cancelled even if a ledger entry exists, so callers observe one
	// consistent outcome for cancellation regardless of cache state.
	if err := jctx.Err(); err != nil {
		r.Err = err
		return r
	}
	if j.Key != "" && opt.Ledger != nil {
		hit, err := opt.Ledger.Get(j.Key, &r.Value)
		if err != nil {
			// Recovered (corrupt entry quarantined by the ledger): log and
			// fall through to a fresh execution.
			opt.logf("sched: %v", err)
		}
		if hit {
			r.Cached = true
			return r
		}
	}
	if onStart != nil {
		onStart()
	}
	t0 := time.Now()
	func() {
		defer func() {
			if p := recover(); p != nil {
				r.Err = &PanicError{Value: p, Stack: debug.Stack()}
				opt.logf("sched: job %s panicked: %v\n%s", j.Name, p, r.Err.(*PanicError).Stack)
			}
		}()
		if j.RunCtx != nil {
			r.Value, r.Err = j.RunCtx(jctx)
		} else {
			r.Value, r.Err = j.Run()
		}
	}()
	// A run that raced with cancellation reports the cancellation: the
	// ledger must never record a cancelled job as complete, and callers
	// must never observe a "done" result for a session they cancelled.
	if r.Err == nil {
		if err := jctx.Err(); err != nil {
			r.Err = err
		}
	}
	if r.Err == nil && j.Artifacts != nil && opt.ArtifactDir != "" {
		if aerr := j.Artifacts(opt.ArtifactDir); aerr != nil {
			r.Err = fmt.Errorf("artifacts: %w", aerr)
		}
	}
	r.Elapsed = time.Since(t0)
	if r.Err == nil && j.Key != "" && opt.Ledger != nil {
		// Best effort: a ledger write failure only costs a
		// future cache hit, never the computed result.
		_ = opt.Ledger.Put(j.Key, j.Name, r.Value)
	}
	return r
}

// Run executes jobs on a worker pool and returns one Result per job, in
// input order regardless of completion order. Jobs sharing a key execute
// once; the later duplicates copy the first one's result. A job failure
// does not stop the others — callers decide by inspecting Result.Err (see
// FirstErr).
func Run[T any](jobs []Job[T], opt Options) []Result[T] {
	return RunContext(context.Background(), jobs, opt)
}

// RunContext is Run under a context: jobs that have not started when ctx
// is cancelled finish immediately with ctx's error, and running jobs that
// consult their context (RunCtx) observe the cancellation mid-execution.
// Cancelled jobs are never recorded in the ledger.
func RunContext[T any](ctx context.Context, jobs []Job[T], opt Options) []Result[T] {
	results := make([]Result[T], len(jobs))

	// Dedup by key: the first job with a key is the primary; later jobs
	// with the same key copy its result after the pool drains.
	primaries := make([]int, 0, len(jobs))
	dupOf := map[int]int{}
	firstByKey := map[string]int{}
	for i, j := range jobs {
		if j.Key != "" {
			if p, ok := firstByKey[j.Key]; ok {
				dupOf[i] = p
				continue
			}
			firstByKey[j.Key] = i
		}
		primaries = append(primaries, i)
	}

	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(primaries) {
		workers = len(primaries)
	}

	var (
		mu       sync.Mutex // serializes hooks and the progress counters
		started  int
		finished int
	)
	total := len(primaries)
	emit := func(hook func(Event), ev Event) {
		if hook == nil {
			return
		}
		hook(ev)
	}

	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				j := jobs[i]
				r := executeJob(ctx, j, opt, func() {
					mu.Lock()
					started++
					emit(opt.Hooks.Started, Event{Seq: started, Total: total, Name: j.Name, Key: j.Key})
					mu.Unlock()
				})
				results[i] = r
				mu.Lock()
				finished++
				if r.Cached {
					emit(opt.Hooks.Cached, Event{Seq: finished, Total: total, Name: j.Name, Key: j.Key})
				} else {
					emit(opt.Hooks.Finished, Event{Seq: finished, Total: total, Name: j.Name, Key: j.Key, Elapsed: r.Elapsed, Err: r.Err})
				}
				mu.Unlock()
			}
		}()
	}
	for _, i := range primaries {
		idx <- i
	}
	close(idx)
	wg.Wait()

	for i, p := range dupOf {
		results[i] = results[p]
		results[i].Name = jobs[i].Name
	}
	return results
}

// FirstErr returns the first failure in input order, wrapped with the
// failing job's name, or nil.
func FirstErr[T any](results []Result[T]) error {
	for _, r := range results {
		if r.Err != nil {
			return fmt.Errorf("%s: %w", r.Name, r.Err)
		}
	}
	return nil
}

// KeyOf derives a content-hash key from the given parts: each part is
// JSON-encoded (deterministically — Go sorts map keys) into a SHA-256 hash.
// Parts must be JSON-marshalable plain data; passing anything else is a
// programming error and panics.
func KeyOf(parts ...any) string {
	h := sha256.New()
	enc := json.NewEncoder(h)
	for _, p := range parts {
		if err := enc.Encode(p); err != nil {
			panic(fmt.Sprintf("sched: unhashable key part %T: %v", p, err))
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// ConsoleHooks returns hooks that print one progress line per job state
// change to w — the live progress display of the cmd/ front ends.
func ConsoleHooks(w io.Writer) Hooks {
	return Hooks{
		Started: func(ev Event) {
			fmt.Fprintf(w, "[%d/%d] run    %s\n", ev.Seq, ev.Total, ev.Name)
		},
		Finished: func(ev Event) {
			if ev.Err != nil {
				fmt.Fprintf(w, "[%d/%d] FAIL   %s: %v\n", ev.Seq, ev.Total, ev.Name, ev.Err)
				return
			}
			fmt.Fprintf(w, "[%d/%d] done   %s (%.2fs)\n", ev.Seq, ev.Total, ev.Name, ev.Elapsed.Seconds())
		},
		Cached: func(ev Event) {
			fmt.Fprintf(w, "[%d/%d] cached %s\n", ev.Seq, ev.Total, ev.Name)
		},
	}
}

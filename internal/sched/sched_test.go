package sched

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

// squareJobs builds n keyed jobs whose values depend on their index, with
// a tiny reversed-index delay so completion order differs from submission
// order under a multi-worker pool.
func squareJobs(n int, ran *atomic.Int64) []Job[int] {
	jobs := make([]Job[int], n)
	for i := 0; i < n; i++ {
		i := i
		jobs[i] = Job[int]{
			Key:  KeyOf("square", i),
			Name: fmt.Sprintf("square/%d", i),
			Run: func() (int, error) {
				if ran != nil {
					ran.Add(1)
				}
				time.Sleep(time.Duration(n-i) * 100 * time.Microsecond)
				return i * i, nil
			},
		}
	}
	return jobs
}

func TestRunDeterministicOrder(t *testing.T) {
	for _, workers := range []int{0, 1, 8} {
		results := Run(squareJobs(24, nil), Options{Workers: workers})
		if len(results) != 24 {
			t.Fatalf("workers=%d: %d results", workers, len(results))
		}
		for i, r := range results {
			if r.Err != nil {
				t.Fatalf("workers=%d job %d: %v", workers, i, r.Err)
			}
			if r.Value != i*i {
				t.Errorf("workers=%d: results[%d] = %d, want %d", workers, i, r.Value, i*i)
			}
			if r.Elapsed <= 0 {
				t.Errorf("workers=%d: job %d has no elapsed time", workers, i)
			}
		}
	}
}

func TestRunDedupByKey(t *testing.T) {
	var ran atomic.Int64
	mk := func(name string) Job[string] {
		return Job[string]{
			Key:  KeyOf("shared"),
			Name: name,
			Run: func() (string, error) {
				ran.Add(1)
				return "value", nil
			},
		}
	}
	results := Run([]Job[string]{mk("first"), mk("second"), mk("third")}, Options{Workers: 4})
	if got := ran.Load(); got != 1 {
		t.Fatalf("shared-key job ran %d times, want 1", got)
	}
	for i, r := range results {
		if r.Value != "value" || r.Err != nil {
			t.Errorf("result %d = %+v", i, r)
		}
	}
	// Duplicates keep their own names for reporting.
	if results[1].Name != "second" || results[2].Name != "third" {
		t.Errorf("duplicate names not preserved: %q, %q", results[1].Name, results[2].Name)
	}
}

func TestRunEmptyKeyNeverDedups(t *testing.T) {
	var ran atomic.Int64
	jobs := []Job[int]{
		{Name: "a", Run: func() (int, error) { ran.Add(1); return 1, nil }},
		{Name: "b", Run: func() (int, error) { ran.Add(1); return 2, nil }},
	}
	results := Run(jobs, Options{Workers: 2})
	if ran.Load() != 2 {
		t.Fatalf("unkeyed jobs ran %d times, want 2", ran.Load())
	}
	if results[0].Value != 1 || results[1].Value != 2 {
		t.Fatalf("results = %+v", results)
	}
}

func TestRunErrorIsolation(t *testing.T) {
	boom := errors.New("boom")
	jobs := []Job[int]{
		{Key: KeyOf(0), Name: "ok0", Run: func() (int, error) { return 10, nil }},
		{Key: KeyOf(1), Name: "bad", Run: func() (int, error) { return 0, boom }},
		{Key: KeyOf(2), Name: "ok2", Run: func() (int, error) { return 20, nil }},
	}
	results := Run(jobs, Options{Workers: 2})
	if results[0].Err != nil || results[2].Err != nil {
		t.Fatal("healthy jobs affected by a failing one")
	}
	if !errors.Is(results[1].Err, boom) {
		t.Fatalf("results[1].Err = %v", results[1].Err)
	}
	if err := FirstErr(results); err == nil || !errors.Is(err, boom) {
		t.Fatalf("FirstErr = %v", err)
	} else if got := err.Error(); got != "bad: boom" {
		t.Fatalf("FirstErr message = %q", got)
	}
	if err := FirstErr(results[:1]); err != nil {
		t.Fatalf("FirstErr on clean prefix = %v", err)
	}
}

func TestRunHooks(t *testing.T) {
	var started, finished atomic.Int64
	var lastSeq atomic.Int64
	opt := Options{
		Workers: 4,
		Hooks: Hooks{
			Started: func(ev Event) {
				started.Add(1)
				if ev.Total != 8 {
					t.Errorf("started total = %d", ev.Total)
				}
			},
			Finished: func(ev Event) {
				finished.Add(1)
				lastSeq.Store(int64(ev.Seq))
				if ev.Elapsed <= 0 {
					t.Errorf("finished %s without elapsed time", ev.Name)
				}
			},
		},
	}
	Run(squareJobs(8, nil), opt)
	if started.Load() != 8 || finished.Load() != 8 {
		t.Fatalf("hooks: started=%d finished=%d, want 8/8", started.Load(), finished.Load())
	}
	if lastSeq.Load() != 8 {
		t.Fatalf("final finished seq = %d, want 8", lastSeq.Load())
	}
}

func TestRunLedgerSkipsRecordedJobs(t *testing.T) {
	led, err := OpenLedger(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var ran atomic.Int64
	var cached atomic.Int64
	opt := Options{
		Workers: 4,
		Ledger:  led,
		Hooks:   Hooks{Cached: func(Event) { cached.Add(1) }},
	}
	first := Run(squareJobs(6, &ran), opt)
	if ran.Load() != 6 || cached.Load() != 0 {
		t.Fatalf("cold run: ran=%d cached=%d", ran.Load(), cached.Load())
	}
	second := Run(squareJobs(6, &ran), opt)
	if ran.Load() != 6 {
		t.Fatalf("warm run re-executed: ran=%d", ran.Load())
	}
	if cached.Load() != 6 {
		t.Fatalf("warm run cached hook fired %d times, want 6", cached.Load())
	}
	for i := range second {
		if !second[i].Cached {
			t.Errorf("warm result %d not marked cached", i)
		}
		if second[i].Value != first[i].Value {
			t.Errorf("warm result %d = %d, want %d", i, second[i].Value, first[i].Value)
		}
	}
	if n, err := led.Len(); err != nil || n != 6 {
		t.Fatalf("ledger entries = %d (%v), want 6", n, err)
	}
}

func TestRunFailuresAreNotLedgered(t *testing.T) {
	led, err := OpenLedger(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var ran atomic.Int64
	jobs := []Job[int]{{
		Key:  KeyOf("flaky"),
		Name: "flaky",
		Run:  func() (int, error) { ran.Add(1); return 0, errors.New("transient") },
	}}
	Run(jobs, Options{Ledger: led})
	Run(jobs, Options{Ledger: led})
	if ran.Load() != 2 {
		t.Fatalf("failed job ran %d times, want 2 (failures must not be cached)", ran.Load())
	}
}

func TestKeyOf(t *testing.T) {
	type cfg struct {
		A int
		B string
	}
	k1 := KeyOf("x", cfg{1, "y"}, 42)
	k2 := KeyOf("x", cfg{1, "y"}, 42)
	if k1 != k2 {
		t.Fatal("KeyOf not stable for equal inputs")
	}
	if KeyOf("x", cfg{2, "y"}, 42) == k1 {
		t.Fatal("KeyOf ignored a field change")
	}
	if KeyOf("x", cfg{1, "y"}) == k1 {
		t.Fatal("KeyOf ignored a dropped part")
	}
	if len(k1) != 64 {
		t.Fatalf("key length = %d, want 64 hex chars", len(k1))
	}
}

func TestRunArtifactsHook(t *testing.T) {
	led, err := OpenLedger(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	var calls atomic.Int64
	var gotDir atomic.Value
	mk := func() []Job[int] {
		return []Job[int]{{
			Key:  KeyOf("artifact-cell"),
			Name: "cell",
			Run:  func() (int, error) { return 7, nil },
			Artifacts: func(d string) error {
				calls.Add(1)
				gotDir.Store(d)
				return nil
			},
		}}
	}

	r := Run(mk(), Options{Ledger: led, ArtifactDir: dir})
	if r[0].Err != nil {
		t.Fatal(r[0].Err)
	}
	if calls.Load() != 1 {
		t.Fatalf("Artifacts called %d times on an executed job, want 1", calls.Load())
	}
	if gotDir.Load() != dir {
		t.Fatalf("Artifacts dir = %v, want %q", gotDir.Load(), dir)
	}

	// A ledger hit skips execution, so there is no observer state to dump:
	// the hook must not fire for cached jobs.
	r = Run(mk(), Options{Ledger: led, ArtifactDir: dir})
	if !r[0].Cached {
		t.Fatal("second run was not served from the ledger")
	}
	if calls.Load() != 1 {
		t.Fatalf("Artifacts called %d times after a cached run, want still 1", calls.Load())
	}
}

func TestRunArtifactsDisabledWithoutDir(t *testing.T) {
	jobs := []Job[int]{{
		Name:      "cell",
		Run:       func() (int, error) { return 1, nil },
		Artifacts: func(string) error { t.Error("Artifacts called with no ArtifactDir"); return nil },
	}}
	if r := Run(jobs, Options{}); r[0].Err != nil {
		t.Fatal(r[0].Err)
	}
}

func TestRunArtifactsErrorFailsJobAndSkipsLedger(t *testing.T) {
	led, err := OpenLedger(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var ran atomic.Int64
	mk := func() []Job[int] {
		return []Job[int]{{
			Key:       KeyOf("bad-artifacts"),
			Name:      "cell",
			Run:       func() (int, error) { ran.Add(1); return 7, nil },
			Artifacts: func(string) error { return errors.New("disk full") },
		}}
	}
	r := Run(mk(), Options{Ledger: led, ArtifactDir: t.TempDir()})
	if r[0].Err == nil {
		t.Fatal("artifact failure did not surface as job Err")
	}
	// The failed cell must not be ledgered: a rerun executes again.
	r = Run(mk(), Options{Ledger: led, ArtifactDir: t.TempDir()})
	if r[0].Cached {
		t.Fatal("artifact-failed job was served from the ledger")
	}
	if ran.Load() != 2 {
		t.Fatalf("job ran %d times, want 2", ran.Load())
	}
}

package mem

import "testing"

func smpDomain(t *testing.T, ncpu int) *Domain {
	t.Helper()
	cfg := Itanium2SMP(ncpu)
	cfg.MemBytes = 16 << 20
	m := NewMemory(cfg.MemBytes, cfg.PageSize)
	d, err := NewDomain(cfg, m)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func numaDomain(t *testing.T, ncpu int) *Domain {
	t.Helper()
	cfg := AltixNUMA(ncpu)
	cfg.MemBytes = 16 << 20
	m := NewMemory(cfg.MemBytes, cfg.PageSize)
	d, err := NewDomain(cfg, m)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

const testAddr = 0x40000

func TestColdMissThenHit(t *testing.T) {
	d := smpDomain(t, 2)
	r1 := d.Access(0, testAddr, LoadFP, 0)
	if r1.Level != LvlMemory || !r1.BusTxn {
		t.Fatalf("cold access = %+v, want memory fill", r1)
	}
	if r1.Latency < d.cfg.Lat.Memory {
		t.Fatalf("cold latency %d < memory latency %d", r1.Latency, d.cfg.Lat.Memory)
	}
	r2 := d.Access(0, testAddr, LoadFP, r1.Done)
	if r2.Level != LvlL2 {
		t.Fatalf("second access level = %v, want L2", r2.Level)
	}
	if r2.Latency != d.cfg.Lat.L2Hit {
		t.Fatalf("L2 hit latency = %d, want %d", r2.Latency, d.cfg.Lat.L2Hit)
	}
}

func TestExclusiveOnSoleReader(t *testing.T) {
	d := smpDomain(t, 2)
	d.Access(0, testAddr, LoadFP, 0)
	if s := d.Probe(0, testAddr); s != Exclusive {
		t.Fatalf("sole reader state = %v, want E", s)
	}
}

func TestSharedOnSecondReader(t *testing.T) {
	d := smpDomain(t, 2)
	d.Access(0, testAddr, LoadFP, 0)
	r := d.Access(1, testAddr, LoadFP, 0)
	if !r.Coherent {
		t.Fatal("second reader's miss not flagged coherent")
	}
	if s0, s1 := d.Probe(0, testAddr), d.Probe(1, testAddr); s0 != Shared || s1 != Shared {
		t.Fatalf("states = %v,%v, want S,S", s0, s1)
	}
	if d.Stats(1).BusRdHit != 1 {
		t.Fatalf("BusRdHit = %d, want 1", d.Stats(1).BusRdHit)
	}
}

func TestStoreInvalidatesOtherCopies(t *testing.T) {
	d := smpDomain(t, 2)
	d.Access(0, testAddr, LoadFP, 0)
	d.Access(1, testAddr, LoadFP, 0)
	// CPU1 writes: upgrade must invalidate CPU0's copy.
	r := d.Access(1, testAddr, Store, 100)
	if !r.Coherent {
		t.Fatal("upgrade not flagged coherent")
	}
	if s := d.Probe(0, testAddr); s != Invalid {
		t.Fatalf("CPU0 state after remote store = %v, want I", s)
	}
	if s := d.Probe(1, testAddr); s != Modified {
		t.Fatalf("CPU1 state = %v, want M", s)
	}
	if d.Stats(1).BusUpgrades != 1 {
		t.Fatalf("BusUpgrades = %d, want 1", d.Stats(1).BusUpgrades)
	}
	if d.Stats(0).InvalidationsReceived != 1 {
		t.Fatalf("InvalidationsReceived = %d, want 1", d.Stats(0).InvalidationsReceived)
	}
}

func TestReadOfModifiedLineIsHITM(t *testing.T) {
	d := smpDomain(t, 2)
	d.Access(0, testAddr, Store, 0) // CPU0 owns M
	r := d.Access(1, testAddr, LoadFP, 100)
	if r.Level != LvlRemote || !r.Coherent {
		t.Fatalf("read of remote M = %+v, want cache-to-cache", r)
	}
	if d.Stats(1).BusRdHitm != 1 {
		t.Fatalf("BusRdHitm = %d, want 1", d.Stats(1).BusRdHitm)
	}
	// Coherent miss latency must exceed a plain memory load (paper §4:
	// 180-200 vs 120-150 cycles).
	if r.Latency <= d.cfg.Lat.Memory {
		t.Fatalf("HITM latency %d not above memory latency %d", r.Latency, d.cfg.Lat.Memory)
	}
	// Both copies end Shared.
	if s0, s1 := d.Probe(0, testAddr), d.Probe(1, testAddr); s0 != Shared || s1 != Shared {
		t.Fatalf("states = %v,%v, want S,S", s0, s1)
	}
}

func TestStoreToRemoteModifiedIsInvalAllHitm(t *testing.T) {
	d := smpDomain(t, 2)
	d.Access(0, testAddr, Store, 0)
	r := d.Access(1, testAddr, Store, 100)
	if !r.Coherent {
		t.Fatal("RFO of remote M not coherent")
	}
	if d.Stats(1).BusRdInvalAllHitm != 1 {
		t.Fatalf("BusRdInvalAllHitm = %d, want 1", d.Stats(1).BusRdInvalAllHitm)
	}
	if s := d.Probe(0, testAddr); s != Invalid {
		t.Fatalf("previous owner state = %v, want I", s)
	}
}

func TestSilentEToMUpgrade(t *testing.T) {
	d := smpDomain(t, 2)
	d.Access(0, testAddr, LoadFP, 0) // E
	before := d.Stats(0).BusMemory
	d.Access(0, testAddr, Store, 50)
	if d.Stats(0).BusMemory != before {
		t.Fatal("E->M upgrade generated a bus transaction")
	}
	if s := d.Probe(0, testAddr); s != Modified {
		t.Fatalf("state = %v, want M", s)
	}
}

func TestPrefetchSharedInstallsLine(t *testing.T) {
	d := smpDomain(t, 2)
	r := d.Access(0, testAddr, PrefShrd, 0)
	if r.Done != 0 {
		t.Fatalf("prefetch blocked the CPU: done = %d", r.Done)
	}
	if !r.BusTxn {
		t.Fatal("prefetch miss issued no transaction")
	}
	// Demand load immediately after: partial hit, waits for the fill.
	r2 := d.Access(0, testAddr, LoadFP, 1)
	if r2.Level != LvlL2 {
		t.Fatalf("post-prefetch level = %v, want L2", r2.Level)
	}
	if r2.Done < r.Latency {
		t.Fatalf("demand completed at %d before fill at %d", r2.Done, r.Latency)
	}
	// Demand load long after: full hit.
	r3 := d.Access(0, testAddr, LoadFP, r.Latency+100)
	if r3.Latency != d.cfg.Lat.L2Hit {
		t.Fatalf("late demand latency = %d, want %d", r3.Latency, d.cfg.Lat.L2Hit)
	}
}

func TestPrefetchExclInstallsExclusive(t *testing.T) {
	d := smpDomain(t, 2)
	d.Access(0, testAddr, PrefExcl, 0)
	if s := d.Probe(0, testAddr); s != Exclusive {
		t.Fatalf("lfetch.excl installed %v, want E (ownership)", s)
	}
	// A subsequent store is then a pure L2 hit: no upgrade transaction.
	before := d.Stats(0).BusMemory
	d.Access(0, testAddr, Store, 500)
	if d.Stats(0).BusMemory != before {
		t.Fatal("store after lfetch.excl still paid a bus transaction")
	}
}

func TestPrefetchSharedThenStorePaysUpgrade(t *testing.T) {
	// The contrast with lfetch.excl: prefetch Shared while another CPU
	// holds a copy, then store -> upgrade transaction required.
	d := smpDomain(t, 2)
	d.Access(1, testAddr, LoadFP, 0) // CPU1 holds the line
	d.Access(0, testAddr, PrefShrd, 10)
	before := d.Stats(0).BusUpgrades
	d.Access(0, testAddr, Store, 500)
	if d.Stats(0).BusUpgrades != before+1 {
		t.Fatal("store after shared prefetch did not upgrade")
	}
}

func TestPrefetchDroppedWhenMSHRsFull(t *testing.T) {
	d := smpDomain(t, 1)
	n := d.cfg.MSHRs
	for i := 0; i <= n; i++ {
		d.Access(0, testAddr+uint64(i*4096), PrefShrd, 0) // distinct sets
	}
	st := d.Stats(0)
	if st.PrefetchesDropped != 1 {
		t.Fatalf("PrefetchesDropped = %d, want 1 (MSHRs=%d)", st.PrefetchesDropped, n)
	}
	// After the fills complete, MSHRs free up.
	r := d.Access(0, testAddr+uint64((n+2)*4096), PrefShrd, 10_000)
	if r.Dropped {
		t.Fatal("prefetch dropped after MSHRs drained")
	}
}

func TestPrefetchToPresentLineIsFree(t *testing.T) {
	d := smpDomain(t, 1)
	d.Access(0, testAddr, LoadFP, 0)
	before := d.Stats(0).BusMemory
	r := d.Access(0, testAddr, PrefShrd, 100)
	if r.BusTxn || d.Stats(0).BusMemory != before {
		t.Fatal("prefetch to a resident line generated traffic")
	}
}

func TestPrefetchExclUpgradesSharedResident(t *testing.T) {
	d := smpDomain(t, 2)
	d.Access(0, testAddr, LoadFP, 0)
	d.Access(1, testAddr, LoadFP, 0) // both Shared
	d.Access(0, testAddr, PrefExcl, 100)
	if s := d.Probe(0, testAddr); s != Exclusive {
		t.Fatalf("state after lfetch.excl on S = %v, want E", s)
	}
	if s := d.Probe(1, testAddr); s != Invalid {
		t.Fatalf("remote state = %v, want I", s)
	}
}

func TestWritebackOnL3Eviction(t *testing.T) {
	d := smpDomain(t, 1)
	// Dirty one line, then sweep enough lines through the same L3 set to
	// evict it. L3: 1.5MB 12-way 128B lines -> 1024 sets; same-set stride
	// = 1024*128 = 128KB.
	d.Access(0, testAddr, Store, 0)
	const stride = 1024 * 128
	now := int64(1000)
	for i := 1; i <= 12; i++ {
		d.Access(0, testAddr+uint64(i*stride), LoadFP, now)
		now += 500
	}
	if d.Stats(0).Writebacks == 0 {
		t.Fatal("no writeback after evicting a Modified line from L3")
	}
	if s := d.Probe(0, testAddr); s != Invalid {
		t.Fatalf("evicted line still present: %v", s)
	}
}

func TestInclusionL3EvictInvalidatesL2(t *testing.T) {
	d := smpDomain(t, 1)
	d.Access(0, testAddr, LoadFP, 0)
	const stride = 1024 * 128
	now := int64(1000)
	for i := 1; i <= 12; i++ {
		d.Access(0, testAddr+uint64(i*stride), LoadFP, now)
		now += 500
	}
	// The line must be gone from L2 as well (inclusive hierarchy).
	h := d.hiers[0]
	if h.l2.peek(testAddr) != nil {
		t.Fatal("L2 retained a line evicted from L3 (inclusion violated)")
	}
}

func TestBusContentionSerializesTransactions(t *testing.T) {
	d := smpDomain(t, 4)
	// Four CPUs issue misses at the same cycle: completion times must be
	// strictly increasing by at least the occupancy window.
	var dones []int64
	for c := 0; c < 4; c++ {
		r := d.Access(c, uint64(0x100000+c*0x10000), LoadFP, 0)
		dones = append(dones, r.Done)
	}
	occ := d.cfg.Lat.BusOccupancyData
	for i := 1; i < len(dones); i++ {
		if dones[i] < dones[i-1]+occ {
			t.Fatalf("transactions not serialized: %v (occupancy %d)", dones, occ)
		}
	}
}

func TestNUMARemoteCostsMoreThanLocal(t *testing.T) {
	d := numaDomain(t, 8)
	// First touch by CPU0 homes the page on node 0.
	local := d.Access(0, testAddr, Store, 0)
	// CPU6 (node 3) reads the dirty line: remote HITM.
	remote := d.Access(6, testAddr, LoadFP, 10_000)
	if remote.Latency <= local.Latency {
		t.Fatalf("remote HITM latency %d not above local fill %d", remote.Latency, local.Latency)
	}
	// And the remote HITM must exceed what the SMP charges for HITM.
	smp := smpDomain(t, 8)
	smp.Access(0, testAddr, Store, 0)
	smpRemote := smp.Access(6, testAddr, LoadFP, 10_000)
	if remote.Latency <= smpRemote.Latency {
		t.Fatalf("NUMA HITM %d not above SMP HITM %d", remote.Latency, smpRemote.Latency)
	}
}

func TestNUMAFirstTouchPlacement(t *testing.T) {
	d := numaDomain(t, 8)
	d.Access(5, testAddr, Store, 0) // CPU5 = node 2
	if n := d.Memory().PeekHomeNode(testAddr); n != 2 {
		t.Fatalf("home node = %d, want 2", n)
	}
	// Page already placed: a later toucher does not move it.
	d.Access(0, testAddr+8, LoadFP, 100)
	if n := d.Memory().PeekHomeNode(testAddr); n != 2 {
		t.Fatalf("home node moved to %d", n)
	}
}

func TestCoherentRatio(t *testing.T) {
	d := smpDomain(t, 2)
	d.Access(0, testAddr, LoadFP, 0)
	d.Access(1, testAddr, LoadFP, 0)        // coherent (BusRdHit)
	d.Access(1, testAddr+0x8000, LoadFP, 0) // not coherent
	st := d.Stats(1)
	if got := st.CoherentRatio(); got != 0.5 {
		t.Fatalf("CoherentRatio = %v, want 0.5", got)
	}
}

func TestStatsAddAndTotal(t *testing.T) {
	d := smpDomain(t, 2)
	d.Access(0, testAddr, LoadFP, 0)
	d.Access(1, testAddr+0x8000, Store, 0)
	tot := d.TotalStats()
	if tot.Loads != 1 || tot.Stores != 1 || tot.BusMemory != 2 {
		t.Fatalf("TotalStats = %+v", tot)
	}
}

func TestResetStats(t *testing.T) {
	d := smpDomain(t, 1)
	d.Access(0, testAddr, LoadFP, 0)
	d.ResetStats()
	if got := d.Stats(0); got != (CPUStats{}) {
		t.Fatalf("stats after reset: %+v", got)
	}
}

func TestLoadBiasAcquiresExclusive(t *testing.T) {
	d := smpDomain(t, 2)
	d.Access(1, testAddr, LoadFP, 0)
	d.Access(0, testAddr, LoadBias, 100)
	if s := d.Probe(0, testAddr); s != Exclusive {
		t.Fatalf("ld.bias state = %v, want E", s)
	}
	if s := d.Probe(1, testAddr); s != Invalid {
		t.Fatalf("remote state after ld.bias = %v, want I", s)
	}
}

func TestL1DServesIntegerLoads(t *testing.T) {
	d := smpDomain(t, 1)
	d.Access(0, testAddr, LoadInt, 0)
	r := d.Access(0, testAddr, LoadInt, 1000)
	if r.Level != LvlL1 || r.Latency != d.cfg.Lat.L1Hit {
		t.Fatalf("second int load = %+v, want L1 hit", r)
	}
	// FP loads bypass L1D: always at least L2 latency.
	rf := d.Access(0, testAddr, LoadFP, 2000)
	if rf.Level == LvlL1 {
		t.Fatal("FP load served by L1D")
	}
}

func TestConfigValidation(t *testing.T) {
	cfg := Itanium2SMP(4)
	cfg.L2.LineBytes = 64 // mismatch with L3
	m := NewMemory(1<<20, cfg.PageSize)
	if _, err := NewDomain(cfg, m); err == nil {
		t.Fatal("accepted mismatched coherence line sizes")
	}
}

package mem

import (
	"hash/fnv"
	"reflect"
	"testing"
)

// placementDomain builds a NUMA domain over an explicit node list with a
// placement policy installed.
func placementDomain(t *testing.T, nodes []NodeConfig, policy PlacementPolicy, bindNode int) (*Domain, *Memory) {
	t.Helper()
	total := 0
	for _, n := range nodes {
		total += n.CPUs
	}
	cfg := AltixNUMA(total)
	cfg.MemBytes = 16 << 20
	cfg.Nodes = nodes
	cfg.Placement = policy
	cfg.BindNode = bindNode
	m := NewMemory(cfg.MemBytes, cfg.PageSize)
	d, err := NewDomain(cfg, m)
	if err != nil {
		t.Fatal(err)
	}
	return d, m
}

// TestPlacementInterleaveRoundRobin: under interleave, page p homes on
// node p mod N regardless of which CPU touches it, and a contiguous page
// range spreads evenly (max imbalance one page) across every node count.
func TestPlacementInterleaveRoundRobin(t *testing.T) {
	for _, tc := range []struct {
		name  string
		nodes []NodeConfig
	}{
		{"2-uniform", []NodeConfig{{CPUs: 2}, {CPUs: 2}}},
		{"3-asymmetric", []NodeConfig{{CPUs: 1}, {CPUs: 4}, {CPUs: 2}}},
		{"4-uniform", []NodeConfig{{CPUs: 2}, {CPUs: 2}, {CPUs: 2}, {CPUs: 2}}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			_, m := placementDomain(t, tc.nodes, PlaceInterleave, 0)
			const pages = 100
			counts := make([]int, len(tc.nodes))
			for pg := uint64(1); pg <= pages; pg++ {
				addr := pg * 16384 // page size of the Altix config
				// Touch from an adversarial CPU: the last one, which under
				// first-touch would home everything on the last node.
				home := m.HomeNode(addr, totalCPUs(tc.nodes)-1)
				if want := int(pg % uint64(len(tc.nodes))); home != want {
					t.Fatalf("page %d homed on node %d, want %d", pg, home, want)
				}
				if peek := m.PeekHomeNode(addr); peek != home {
					t.Fatalf("page %d: PeekHomeNode %d != HomeNode %d", pg, peek, home)
				}
				counts[home]++
			}
			min, max := counts[0], counts[0]
			for _, c := range counts[1:] {
				if c < min {
					min = c
				}
				if c > max {
					max = c
				}
			}
			if max-min > 1 {
				t.Fatalf("interleave spread uneven: %v", counts)
			}
		})
	}
}

func totalCPUs(nodes []NodeConfig) int {
	total := 0
	for _, n := range nodes {
		total += n.CPUs
	}
	return total
}

// TestPlacementBindSpill: bind homes every page on the bind node until its
// declared capacity runs out, then spills in (hops, node-id) order, and
// the whole assignment replays identically after ResetPlacement.
func TestPlacementBindSpill(t *testing.T) {
	// Node capacities in pages (16 KiB Altix pages): node 1 holds 2,
	// node 0 holds 1, node 2 is unbounded. Fat-tree hops from node 1:
	// node 0 is 2 hops (1^0=1), node 2 is 4 hops (1^2=3), so the spill
	// order is [1, 0, 2].
	nodes := []NodeConfig{
		{CPUs: 2, MemBytes: 1 * 16384},
		{CPUs: 2, MemBytes: 2 * 16384},
		{CPUs: 2},
	}
	_, m := placementDomain(t, nodes, PlaceBind, 1)
	want := []int{1, 1, 0, 2, 2, 2}
	assign := func() []int {
		var got []int
		for pg := uint64(1); pg <= uint64(len(want)); pg++ {
			got = append(got, m.HomeNode(pg*16384, 0))
		}
		return got
	}
	got := assign()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("bind assignment = %v, want %v", got, want)
	}
	// Re-touching settled pages must not consume more capacity.
	if again := assign(); !reflect.DeepEqual(again, want) {
		t.Fatalf("bind re-read = %v, want %v", again, want)
	}
	// ResetPlacement restores both the page homes and the budgets.
	m.ResetPlacement()
	if replay := assign(); !reflect.DeepEqual(replay, want) {
		t.Fatalf("bind replay after reset = %v, want %v", replay, want)
	}
}

// TestPlacementBindExhaustionFallsBack: when every node's capacity is
// exhausted the page lands on the bind node — placement stays total and
// deterministic instead of faulting.
func TestPlacementBindExhaustionFallsBack(t *testing.T) {
	nodes := []NodeConfig{
		{CPUs: 1, MemBytes: 16384},
		{CPUs: 1, MemBytes: 16384},
	}
	_, m := placementDomain(t, nodes, PlaceBind, 0)
	homes := []int{}
	for pg := uint64(1); pg <= 4; pg++ {
		homes = append(homes, m.HomeNode(pg*16384, 0))
	}
	if want := []int{0, 1, 0, 0}; !reflect.DeepEqual(homes, want) {
		t.Fatalf("exhausted bind homes = %v, want %v", homes, want)
	}
}

// TestFirstTouchNodeListParity: a NUMA domain built from an explicit node
// list equal to the legacy uniform expansion behaves byte-identically to
// the legacy (NumCPUs, CPUsPerNode) domain — same access results, same
// counters, same home pages — pinned by a golden digest of the access
// stream so a regression in either path is caught even if both drift
// together.
func TestFirstTouchNodeListParity(t *testing.T) {
	const ncpu = 8
	legacyCfg := AltixNUMA(ncpu)
	legacyCfg.MemBytes = 16 << 20
	legacy := NewMemory(legacyCfg.MemBytes, legacyCfg.PageSize)
	dLegacy, err := NewDomain(legacyCfg, legacy)
	if err != nil {
		t.Fatal(err)
	}

	listCfg := AltixNUMA(ncpu)
	listCfg.MemBytes = 16 << 20
	listCfg.Nodes = legacyCfg.NodeList() // same shape, declared explicitly
	list := NewMemory(listCfg.MemBytes, listCfg.PageSize)
	dList, err := NewDomain(listCfg, list)
	if err != nil {
		t.Fatal(err)
	}

	// A deterministic mixed access stream: every CPU touches a strided,
	// partially overlapping working set with loads and stores.
	h := fnv.New64a()
	lcg := uint64(0x2545F4914F6CDD1D)
	now := int64(0)
	for i := 0; i < 2000; i++ {
		lcg = lcg*6364136223846793005 + 1442695040888963407
		cpu := int(lcg>>33) % ncpu
		addr := 16384 + (lcg>>17)%(4<<20)
		kind := LoadFP
		if lcg%3 == 0 {
			kind = Store
		}
		r1 := dLegacy.Access(cpu, addr, kind, now)
		r2 := dList.Access(cpu, addr, kind, now)
		if r1 != r2 {
			t.Fatalf("access %d (cpu %d, addr %#x): legacy %+v != node-list %+v", i, cpu, addr, r1, r2)
		}
		if h1, h2 := legacy.PeekHomeNode(addr), list.PeekHomeNode(addr); h1 != h2 {
			t.Fatalf("access %d: home %d != %d", i, h1, h2)
		}
		now += int64(r1.Latency)
		h.Write([]byte{byte(r1.Latency), byte(r1.Level), byte(legacy.PeekHomeNode(addr))})
	}
	if !reflect.DeepEqual(dLegacy.TotalStats(), dList.TotalStats()) {
		t.Fatalf("stats diverged:\nlegacy: %+v\nlist:   %+v", dLegacy.TotalStats(), dList.TotalStats())
	}
	// Golden digest of (latency, level, home) per access. If this changes,
	// the NUMA timing model changed: regenerate deliberately, alongside the
	// results/ goldens.
	const golden = uint64(0xe841e401e7109411)
	if g := h.Sum64(); g != golden {
		t.Fatalf("access-stream digest %#x, want %#x", g, golden)
	}
}

package mem

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// The MESI protocol invariants, checked against randomly generated access
// sequences:
//
//	I1 (single writer): at most one cache holds a line Modified or
//	    Exclusive, and then no other cache holds it at all.
//	I2 (no stale owners): immediately after a store by CPU c, c holds the
//	    line Modified and every other cache holds Invalid.
//	I3 (monotone counters): every statistic is non-negative and the
//	    hit/miss taxonomy is self-consistent.
//	I4 (data integrity): the timing model never corrupts values — a value
//	    stored is the value loaded, regardless of the coherence traffic
//	    in between.

// accessOp is one randomized step.
type accessOp struct {
	CPU  uint8
	Line uint8
	Kind uint8
}

func kindOf(k uint8) AccessKind {
	switch k % 5 {
	case 0:
		return LoadInt
	case 1:
		return LoadFP
	case 2:
		return Store
	case 3:
		return PrefShrd
	default:
		return PrefExcl
	}
}

func checkStates(t *testing.T, d *Domain, ncpu int, addr uint64) bool {
	t.Helper()
	owners, holders := 0, 0
	for c := 0; c < ncpu; c++ {
		switch d.Probe(c, addr) {
		case Modified, Exclusive:
			owners++
			holders++
		case Shared:
			holders++
		}
	}
	if owners > 1 {
		t.Logf("line %#x: %d exclusive owners", addr, owners)
		return false
	}
	if owners == 1 && holders > 1 {
		t.Logf("line %#x: owner coexists with %d holders", addr, holders)
		return false
	}
	return true
}

func TestMESIInvariantsUnderRandomTraffic(t *testing.T) {
	const ncpu = 4
	const nlines = 24
	prop := func(ops []accessOp) bool {
		cfg := Itanium2SMP(ncpu)
		cfg.MemBytes = 8 << 20
		m := NewMemory(cfg.MemBytes, cfg.PageSize)
		d, err := NewDomain(cfg, m)
		if err != nil {
			t.Fatal(err)
		}
		base := m.MustAlloc("inv", nlines*128, 128)
		now := int64(0)
		for _, op := range ops {
			cpu := int(op.CPU) % ncpu
			addr := base + uint64(op.Line%nlines)*128
			kind := kindOf(op.Kind)
			res := d.Access(cpu, addr, kind, now)
			if res.Done < now {
				t.Logf("time ran backwards: %d -> %d", now, res.Done)
				return false
			}
			now += 10
			// I2: a store leaves exactly one Modified copy.
			if kind == Store {
				if s := d.Probe(cpu, addr); s != Modified {
					t.Logf("store left state %v", s)
					return false
				}
				for c := 0; c < ncpu; c++ {
					if c != cpu && d.Probe(c, addr) != Invalid {
						t.Logf("store left a remote copy in %v", d.Probe(c, addr))
						return false
					}
				}
			}
			// I1 over every line.
			for l := 0; l < nlines; l++ {
				if !checkStates(t, d, ncpu, base+uint64(l)*128) {
					return false
				}
			}
		}
		// I3: counter sanity.
		for c := 0; c < ncpu; c++ {
			st := d.Stats(c)
			if st.L2Misses < 0 || st.L3Misses < 0 || st.BusMemory < 0 ||
				st.Writebacks < 0 || st.DemandLatencyTotal < 0 {
				t.Logf("negative counter: %+v", st)
				return false
			}
			if st.L3Misses > st.L2Misses {
				t.Logf("L3 misses %d exceed L2 misses %d", st.L3Misses, st.L2Misses)
				return false
			}
		}
		return true
	}
	cfgq := &quick.Config{
		MaxCount: 60,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			n := 20 + r.Intn(60)
			ops := make([]accessOp, n)
			for i := range ops {
				ops[i] = accessOp{CPU: uint8(r.Intn(255)), Line: uint8(r.Intn(255)), Kind: uint8(r.Intn(255))}
			}
			vals[0] = reflect.ValueOf(ops)
		},
	}
	if err := quick.Check(prop, cfgq); err != nil {
		t.Fatal(err)
	}
}

func TestDataIntegrityUnderCoherenceTraffic(t *testing.T) {
	// I4: values written by interleaved stores from many CPUs are read
	// back exactly, with prefetch traffic mixed in.
	const ncpu = 4
	cfg := Itanium2SMP(ncpu)
	cfg.MemBytes = 8 << 20
	m := NewMemory(cfg.MemBytes, cfg.PageSize)
	d, err := NewDomain(cfg, m)
	if err != nil {
		t.Fatal(err)
	}
	base := m.MustAlloc("data", 64*128, 128)
	r := rand.New(rand.NewSource(42))
	want := map[uint64]int64{}
	now := int64(0)
	for i := 0; i < 4000; i++ {
		cpu := r.Intn(ncpu)
		addr := base + uint64(r.Intn(64*16))*8
		switch r.Intn(4) {
		case 0:
			v := r.Int63()
			d.Access(cpu, addr, Store, now)
			m.WriteI64(addr, v)
			want[addr] = v
		case 1:
			d.Access(cpu, addr, LoadInt, now)
			if w, ok := want[addr]; ok && m.ReadI64(addr) != w {
				t.Fatalf("addr %#x = %d, want %d", addr, m.ReadI64(addr), w)
			}
		case 2:
			d.Access(cpu, addr, PrefShrd, now)
		case 3:
			d.Access(cpu, addr, PrefExcl, now)
		}
		now += 7
	}
	for addr, w := range want {
		if got := m.ReadI64(addr); got != w {
			t.Fatalf("final addr %#x = %d, want %d", addr, got, w)
		}
	}
}

func TestEvictionNeverLosesOwnership(t *testing.T) {
	// Dirty lines evicted from L3 are written back and leave no cached
	// copy; a subsequent access by another CPU must come from memory, not
	// find a stale owner.
	d := smpDomain(t, 2)
	d.Access(0, testAddr, Store, 0)
	// Force eviction by sweeping the same L3 set.
	const stride = 1024 * 128
	now := int64(1000)
	for i := 1; i <= 13; i++ {
		d.Access(0, testAddr+uint64(i*stride), LoadFP, now)
		now += 300
	}
	if s := d.Probe(0, testAddr); s != Invalid {
		t.Fatalf("evicted line still %v in owner", s)
	}
	r := d.Access(1, testAddr, LoadFP, now)
	if r.Level == LvlRemote {
		t.Fatal("read after eviction was served cache-to-cache")
	}
	if d.Stats(0).Writebacks == 0 {
		t.Fatal("dirty eviction produced no writeback")
	}
}

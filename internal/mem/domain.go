package mem

import "fmt"

// Config describes one coherent machine memory system.
type Config struct {
	NumCPUs     int
	CPUsPerNode int  // CPUs sharing a NUMA node (ignored unless NUMA)
	NUMA        bool // cc-NUMA topology instead of a single shared bus

	// Nodes, when non-empty, declares the machine shape explicitly —
	// per-node CPU count and memory capacity, supporting asymmetric
	// NUMA topologies — overriding the uniform (NumCPUs, CPUsPerNode)
	// expansion. The declared CPUs must sum to NumCPUs. omitempty keeps
	// every legacy configuration's JSON encoding (and therefore every
	// scheduler/ledger content hash) byte-identical.
	Nodes []NodeConfig `json:",omitempty"`

	// Placement selects the page-placement policy (placement.go). The
	// zero value is first-touch, the only pre-matrix behaviour.
	Placement PlacementPolicy `json:",omitempty"`

	// BindNode is the target node of the bind policy (ignored otherwise).
	BindNode int `json:",omitempty"`

	L1D CacheConfig // integer loads only (FP bypasses L1D on Itanium 2)
	L2  CacheConfig
	L3  CacheConfig

	MSHRs int // outstanding misses per CPU; excess prefetches are dropped

	Lat LatencyParams

	PageSize uint64 // NUMA first-touch granularity
	MemBytes uint64 // simulated physical memory size
}

// Itanium2SMP returns the configuration of the paper's 4-way Itanium 2 SMP
// server: 16 KB L1D, 256 KB L2, 1.5 MB L3, 128-byte L2/L3 lines, MESI over
// a 6.4 GB/s front-side bus.
func Itanium2SMP(numCPUs int) Config {
	return Config{
		NumCPUs:     numCPUs,
		CPUsPerNode: numCPUs,
		NUMA:        false,
		L1D:         CacheConfig{Name: "L1D", SizeBytes: 16 << 10, LineBytes: 64, Assoc: 4, HitLatency: 1},
		L2:          CacheConfig{Name: "L2", SizeBytes: 256 << 10, LineBytes: 128, Assoc: 8, HitLatency: 5},
		L3:          CacheConfig{Name: "L3", SizeBytes: 1536 << 10, LineBytes: 128, Assoc: 12, HitLatency: 12},
		MSHRs:       16,
		Lat: LatencyParams{
			// L2Hit is the *effective* blocking cost of an L2 hit: the
			// real 5-6 cycle latency is largely hidden by the in-order
			// pipeline's load-use scheduling, which this single-number
			// model approximates with a small stall.
			L1Hit: 1, L2Hit: 1, L3Hit: 12,
			Memory: 140, C2C: 190, Upgrade: 110, HopPenalty: 0,
			BusOccupancyData: 20, BusOccupancyCtl: 6,
		},
		PageSize: 16 << 10,
		MemBytes: 256 << 20,
	}
}

// AltixNUMA returns the configuration of the SGI Altix cc-NUMA system used
// in the paper: 2-CPU nodes joined by a fat-tree, with remote accesses and
// coherent misses costing substantially more than on the SMP.
func AltixNUMA(numCPUs int) Config {
	c := Itanium2SMP(numCPUs)
	c.CPUsPerNode = 2
	c.NUMA = true
	c.L3.SizeBytes = 3 << 20 // Altix 1.5 GHz parts carried larger L3s
	c.L3.Assoc = 12
	c.Lat = LatencyParams{
		L1Hit: 1, L2Hit: 1, L3Hit: 12,
		// Remote cache-line intervention on the Altix costs far more than
		// a remote memory fetch (the directory must forward to the owner
		// and retrieve dirty data), which is also what separates the DEAR
		// latency bands the optimizer's second-level filter relies on.
		Memory: 145, C2C: 300, Upgrade: 130,
		HopPenalty: 60, // each fat-tree hop adds substantial latency
		// NUMAlink moves a 128-byte line in ~40ns (~60 CPU cycles): far
		// less headroom than the front-side bus, so useless prefetch
		// traffic congests the links — the effect Figure 7 measures.
		BusOccupancyData: 56, BusOccupancyCtl: 8,
	}
	return c
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.NumCPUs <= 0 {
		return fmt.Errorf("mem: NumCPUs %d", c.NumCPUs)
	}
	if c.NUMA && len(c.Nodes) == 0 && c.CPUsPerNode <= 0 {
		return fmt.Errorf("mem: CPUsPerNode %d", c.CPUsPerNode)
	}
	if err := c.validateTopology(); err != nil {
		return err
	}
	if c.L2.LineBytes != c.L3.LineBytes {
		return fmt.Errorf("mem: L2 line %d != L3 line %d (coherence granularity must match)",
			c.L2.LineBytes, c.L3.LineBytes)
	}
	if c.MSHRs <= 0 {
		return fmt.Errorf("mem: MSHRs %d", c.MSHRs)
	}
	for _, cc := range []CacheConfig{c.L1D, c.L2, c.L3} {
		if err := cc.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// CPUStats are the per-CPU memory-system event counts. They are the raw
// material of the simulated hardware performance counters: the BUS_* fields
// correspond to the Itanium 2 events the paper uses to detect coherent
// memory accesses (§4), and L2/L3 misses back Figures 6 and 7.
type CPUStats struct {
	Loads             int64
	Stores            int64
	Prefetches        int64
	PrefetchesDropped int64

	L1Hits   int64
	L2Hits   int64
	L2Misses int64
	L3Hits   int64
	L3Misses int64

	Writebacks int64 // L3 castouts of Modified lines

	BusMemory         int64 // all system transactions (BUS_MEMORY)
	BusRdHit          int64 // read snooped clean in another cache (BUS_RD_HIT)
	BusRdHitm         int64 // read snooped Modified (BUS_RD_HITM)
	BusRdInvalAllHitm int64 // ownership read snooped Modified (BUS_RD_INVAL_ALL_HITM)
	BusUpgrades       int64 // invalidate-only upgrades

	CoherentMisses        int64 // demand misses served cache-to-cache or invalidating
	InvalidationsReceived int64 // lines stolen from this CPU by other CPUs

	DemandLatencyTotal int64 // total demand (load+store) stall cycles
	DemandAccesses     int64
}

// Add accumulates other into s.
func (s *CPUStats) Add(o CPUStats) {
	s.Loads += o.Loads
	s.Stores += o.Stores
	s.Prefetches += o.Prefetches
	s.PrefetchesDropped += o.PrefetchesDropped
	s.L1Hits += o.L1Hits
	s.L2Hits += o.L2Hits
	s.L2Misses += o.L2Misses
	s.L3Hits += o.L3Hits
	s.L3Misses += o.L3Misses
	s.Writebacks += o.Writebacks
	s.BusMemory += o.BusMemory
	s.BusRdHit += o.BusRdHit
	s.BusRdHitm += o.BusRdHitm
	s.BusRdInvalAllHitm += o.BusRdInvalAllHitm
	s.BusUpgrades += o.BusUpgrades
	s.CoherentMisses += o.CoherentMisses
	s.InvalidationsReceived += o.InvalidationsReceived
	s.DemandLatencyTotal += o.DemandLatencyTotal
	s.DemandAccesses += o.DemandAccesses
}

// CoherentRatio returns the fraction of system transactions that snooped
// another cache — the trigger metric of §4: (BUS_RD_HIT + BUS_RD_HITM +
// BUS_RD_INVAL_ALL_HITM) / BUS_MEMORY.
func (s CPUStats) CoherentRatio() float64 {
	if s.BusMemory == 0 {
		return 0
	}
	return float64(s.BusRdHit+s.BusRdHitm+s.BusRdInvalAllHitm) / float64(s.BusMemory)
}

// EventDelta is the set of PMU-visible event counts one access generated.
// Domain.Access returns it inside AccessResult so the simulated CPU can
// feed its PMU directly from the access that produced the events, instead
// of snapshotting and diffing full CPUStats around every access. Counts are
// tiny (an access produces at most two bus transactions: its own plus a
// castout), so single bytes suffice.
type EventDelta struct {
	L2Miss            uint8
	L3Miss            uint8
	Writebacks        uint8 // L3 castout of a Modified victim
	BusMemory         uint8
	BusRdHit          uint8
	BusRdHitm         uint8
	BusRdInvalAllHitm uint8
}

// AccessResult reports the outcome of one memory access.
type AccessResult struct {
	Done     int64      // cycle the access completes (== issue cycle for prefetches)
	Latency  int64      // Done - issue cycle for demand ops; fill latency for prefetches
	Level    Level      // where the access was satisfied
	Coherent bool       // involved another CPU's cache (HITM supply or invalidation)
	BusTxn   bool       // issued a system transaction
	Dropped  bool       // prefetch discarded for want of an MSHR
	Ev       EventDelta // PMU-visible events this access generated
}

// hierarchy is one CPU's private cache stack.
type hierarchy struct {
	cpu  int
	l1   *cache
	l2   *cache
	l3   *cache
	mshr []int64 // completion times of outstanding fills
}

// Domain is the coherent memory system: all CPUs' cache hierarchies, the
// interconnect, and the backing memory, with MESI state kept consistent by
// snooping on every transaction.
type Domain struct {
	cfg      Config
	mem      *Memory
	icn      Interconnect
	hiers    []*hierarchy
	stats    []CPUStats
	lineMask uint64 // hoisted from cfg: applied on every access

	// checker, when non-nil, re-validates the MESI invariants online after
	// every access (see EnableInvariantChecks in check.go).
	checker *invariantChecker
}

// NewDomain builds the memory system for cfg backed by memory m.
func NewDomain(cfg Config, m *Memory) (*Domain, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	var icn Interconnect
	if cfg.NUMA {
		icn = NewNUMANodes(cfg.Lat, cfg.NodeList())
	} else {
		icn = NewBus(cfg.Lat)
	}
	m.ConfigurePlacement(cfg.Placement, cfg.NodeList(), cfg.BindNode, icn.Hops)
	d := &Domain{
		cfg:      cfg,
		mem:      m,
		icn:      icn,
		stats:    make([]CPUStats, cfg.NumCPUs),
		lineMask: ^uint64(cfg.L2.LineBytes - 1),
	}
	for i := 0; i < cfg.NumCPUs; i++ {
		d.hiers = append(d.hiers, &hierarchy{
			cpu:  i,
			l1:   newCache(cfg.L1D),
			l2:   newCache(cfg.L2),
			l3:   newCache(cfg.L3),
			mshr: make([]int64, cfg.MSHRs),
		})
	}
	return d, nil
}

// Memory returns the backing memory.
func (d *Domain) Memory() *Memory { return d.mem }

// Interconnect returns the interconnect (for topology queries).
func (d *Domain) Interconnect() Interconnect { return d.icn }

// Config returns the domain configuration.
func (d *Domain) Config() Config { return d.cfg }

// Stats returns a copy of cpu's counters.
func (d *Domain) Stats(cpu int) CPUStats { return d.stats[cpu] }

// TotalStats sums all CPUs' counters.
func (d *Domain) TotalStats() CPUStats {
	var t CPUStats
	for i := range d.stats {
		t.Add(d.stats[i])
	}
	return t
}

// LineBytes returns the coherence granularity.
func (d *Domain) LineBytes() int { return d.cfg.L2.LineBytes }

// MigrateCPU remaps cpu onto node mid-run (scheduler affinity change).
// Only meaningful on the NUMA interconnect; the SMP bus has one node.
func (d *Domain) MigrateCPU(cpu, node int) error {
	n, ok := d.icn.(*NUMA)
	if !ok {
		return fmt.Errorf("mem: migration requires the NUMA interconnect (have %s)", d.icn.Name())
	}
	if cpu < 0 || cpu >= d.cfg.NumCPUs {
		return fmt.Errorf("mem: migrate CPU %d out of range [0, %d)", cpu, d.cfg.NumCPUs)
	}
	if node < 0 || node >= n.NumNodes() {
		return fmt.Errorf("mem: migrate to node %d out of range [0, %d)", node, n.NumNodes())
	}
	n.SetNodeOf(cpu, node)
	return nil
}

// snoop polls every other hierarchy for the line and applies the coherence
// action: reads downgrade remote M/E copies to Shared; ownership requests
// (ReadExcl/Upgrade) invalidate all remote copies. Modified data is
// implicitly written back by the owner when snooped.
func (d *Domain) snoop(reqCPU int, addr uint64, exclusive bool) SnoopResult {
	var sr SnoopResult
	sr.OwnerCPU = -1
	reqNode := d.icn.NodeOf(reqCPU)
	for _, h := range d.hiers {
		if h.cpu == reqCPU {
			continue
		}
		l2 := h.l2.peek(addr)
		l3 := h.l3.peek(addr)
		if l2 == nil && l3 == nil {
			continue
		}
		state := Invalid
		if l3 != nil {
			state = l3.state
		}
		if l2 != nil && l2.state > state {
			state = l2.state
		}
		if state == Invalid {
			continue
		}
		if hops := d.icn.Hops(reqNode, d.icn.NodeOf(h.cpu)); hops > sr.FarHops {
			sr.FarHops = hops
		}
		if state == Modified {
			sr.HitM = true
			sr.OwnerCPU = h.cpu
		} else {
			sr.HitClean = true
		}
		if exclusive {
			h.l1.invalidate(addr)
			h.l2.invalidate(addr)
			h.l3.invalidate(addr)
			d.stats[h.cpu].InvalidationsReceived++
		} else {
			h.l2.downgrade(addr)
			h.l3.downgrade(addr)
		}
	}
	return sr
}

// l2Insert installs a line into L2, spilling a Modified victim into L3
// (inclusion guarantees the victim has an L3 entry).
func (d *Domain) l2Insert(h *hierarchy, addr uint64, state MESIState, readyAt int64) {
	victim, evicted := h.l2.insert(addr, state, readyAt)
	if !evicted {
		return
	}
	va := h.l2.victimAddr(victim)
	h.l1.invalidate(va)
	if victim.state == Modified {
		if l3 := h.l3.peek(va); l3 != nil {
			l3.state = Modified
		}
	}
}

// l3Insert installs a line into L3, casting out Modified victims to memory
// over the interconnect and back-invalidating inner levels (inclusion).
// Castout events accumulate into ev, charged to the accessing CPU.
func (d *Domain) l3Insert(h *hierarchy, ev *EventDelta, addr uint64, state MESIState, readyAt, now int64) {
	victim, evicted := h.l3.insert(addr, state, readyAt)
	if !evicted {
		return
	}
	va := h.l3.victimAddr(victim)
	wasM := victim.state == Modified
	if found, innerM := h.l2.invalidate(va); found && innerM {
		wasM = true
	}
	h.l1.invalidate(va)
	if wasM {
		home := d.homeNode(va, h.cpu)
		d.icn.Transact(h.cpu, home, TxnWriteback, SnoopResult{}, now)
		ev.Writebacks++
		ev.BusMemory++
	}
}

func (d *Domain) homeNode(addr uint64, cpu int) int {
	if !d.cfg.NUMA {
		return 0
	}
	return d.mem.HomeNode(addr, d.icn.NodeOf(cpu))
}

// activeMSHRs counts fills still outstanding at cycle now.
func (h *hierarchy) activeMSHRs(now int64) int {
	n := 0
	for _, t := range h.mshr {
		if t > now {
			n++
		}
	}
	return n
}

func (h *hierarchy) claimMSHR(now, readyAt int64) bool {
	for i, t := range h.mshr {
		if t <= now {
			h.mshr[i] = readyAt
			return true
		}
	}
	return false
}

// Access performs one memory access by cpu at cycle now and returns its
// timing and event classification. Demand accesses block until data
// arrives; prefetches never block the issuing CPU.
//
// The PMU-visible events the access generated come back in the result's Ev
// field; the same deltas are folded into the per-CPU CPUStats here, in one
// place, so Stats and the sum of returned deltas can never disagree.
func (d *Domain) Access(cpu int, addr uint64, kind AccessKind, now int64) AccessResult {
	h := d.hiers[cpu]
	st := &d.stats[cpu]
	var ev EventDelta
	res := d.access(h, st, &ev, addr, kind, now)
	if ev != (EventDelta{}) { // cache hits generate no events: skip the fold
		st.L2Misses += int64(ev.L2Miss)
		st.L3Misses += int64(ev.L3Miss)
		st.Writebacks += int64(ev.Writebacks)
		st.BusMemory += int64(ev.BusMemory)
		st.BusRdHit += int64(ev.BusRdHit)
		st.BusRdHitm += int64(ev.BusRdHitm)
		st.BusRdInvalAllHitm += int64(ev.BusRdInvalAllHitm)
		res.Ev = ev
	}
	if d.checker != nil {
		d.checkOnline(cpu, addr&d.lineMask, kind)
	}
	return res
}

func (d *Domain) access(h *hierarchy, st *CPUStats, ev *EventDelta, addr uint64, kind AccessKind, now int64) AccessResult {
	la := addr & d.lineMask

	switch kind {
	case LoadInt, LoadFP, LoadBias:
		st.Loads++
	case Store:
		st.Stores++
	case PrefShrd, PrefExcl:
		st.Prefetches++
	}

	if kind.IsPrefetch() {
		return d.prefetch(h, st, ev, la, kind, now)
	}

	wantsX := kind.wantsExclusive()

	// L1D: integer loads only, and only useful for non-exclusive access.
	if kind == LoadInt {
		if h.l1.lookup(la) != nil && h.l2.peek(la) != nil {
			st.L1Hits++
			st.DemandAccesses++
			st.DemandLatencyTotal += d.cfg.Lat.L1Hit
			return AccessResult{Done: now + d.cfg.Lat.L1Hit, Latency: d.cfg.Lat.L1Hit, Level: LvlL1}
		}
	}

	// L2.
	if l2 := h.l2.lookup(la); l2 != nil {
		if !wantsX || l2.state == Modified || l2.state == Exclusive {
			if wantsX {
				l2.state = Modified
				if l3 := h.l3.peek(la); l3 != nil {
					l3.state = Modified
				}
			}
			done := now + d.cfg.Lat.L2Hit
			if kind == Store {
				done = now // owned line: the store buffer absorbs the write
			}
			if l2.readyAt > done {
				done = l2.readyAt // prefetch still in flight: partial hit
			}
			if kind == LoadInt {
				h.l1.insert(la, Shared, done)
			}
			st.L2Hits++
			st.DemandAccesses++
			st.DemandLatencyTotal += done - now
			return AccessResult{Done: done, Latency: done - now, Level: LvlL2}
		}
		// Shared line, exclusive intent: upgrade.
		return d.upgrade(h, st, ev, la, kind, now)
	}
	ev.L2Miss++

	// L3.
	if l3 := h.l3.lookup(la); l3 != nil {
		if !wantsX || l3.state == Modified || l3.state == Exclusive {
			if wantsX {
				l3.state = Modified
			}
			done := now + d.cfg.Lat.L3Hit
			if kind == Store {
				done = now // owned line: the store buffer absorbs the write
			}
			if l3.readyAt > done {
				done = l3.readyAt
			}
			d.l2Insert(h, la, l3.state, done)
			if kind == LoadInt {
				h.l1.insert(la, Shared, done)
			}
			st.L3Hits++
			st.DemandAccesses++
			st.DemandLatencyTotal += done - now
			return AccessResult{Done: done, Latency: done - now, Level: LvlL3}
		}
		return d.upgrade(h, st, ev, la, kind, now)
	}
	ev.L3Miss++

	// System transaction.
	return d.fill(h, st, ev, la, kind, now, false)
}

// upgrade performs an invalidate-only ownership upgrade of a Shared line.
func (d *Domain) upgrade(h *hierarchy, st *CPUStats, ev *EventDelta, la uint64, kind AccessKind, now int64) AccessResult {
	sr := d.snoop(h.cpu, la, true)
	home := d.homeNode(la, h.cpu)
	done := d.icn.Transact(h.cpu, home, TxnUpgrade, sr, now)
	ev.BusMemory++
	st.BusUpgrades++
	coherent := sr.HitClean || sr.HitM
	if coherent {
		st.CoherentMisses++
	}
	if l3 := h.l3.peek(la); l3 != nil {
		l3.state = Modified
	}
	d.l2Insert(h, la, Modified, done)
	st.DemandAccesses++
	st.DemandLatencyTotal += done - now
	return AccessResult{Done: done, Latency: done - now, Level: LvlL2, Coherent: coherent, BusTxn: true}
}

// fill services a demand miss (or a prefetch when asPrefetch is true) with
// a system transaction and installs the line.
func (d *Domain) fill(h *hierarchy, st *CPUStats, ev *EventDelta, la uint64, kind AccessKind, now int64, asPrefetch bool) AccessResult {
	wantsX := kind.wantsExclusive()
	sr := d.snoop(h.cpu, la, wantsX)
	home := d.homeNode(la, h.cpu)

	txn := TxnRead
	if wantsX {
		txn = TxnReadExcl
	}
	done := d.icn.Transact(h.cpu, home, txn, sr, now)
	ev.BusMemory++

	coherent := false
	level := LvlMemory
	switch {
	case sr.HitM && wantsX:
		ev.BusRdInvalAllHitm++
		coherent = true
		level = LvlRemote
	case sr.HitM:
		ev.BusRdHitm++
		coherent = true
		level = LvlRemote
	case sr.HitClean && wantsX:
		// Invalidation of clean copies: coherent traffic, data from memory.
		ev.BusRdHit++
		coherent = true
	case sr.HitClean:
		ev.BusRdHit++
		coherent = true
	}
	if coherent && !asPrefetch {
		st.CoherentMisses++
	}

	// Final state: stores install Modified; lfetch.excl and ld.bias
	// install Exclusive (ownership without dirtying — the following store
	// upgrades silently); reads install Exclusive when no other cache
	// holds the line, Shared otherwise.
	var state MESIState
	switch {
	case kind == Store:
		state = Modified
	case kind == PrefExcl || kind == LoadBias:
		state = Exclusive
	case sr.HitClean || sr.HitM:
		state = Shared
	default:
		state = Exclusive
	}

	d.l3Insert(h, ev, la, state, done, now)
	d.l2Insert(h, la, state, done)
	if kind == LoadInt {
		h.l1.insert(la, Shared, done)
	}

	if asPrefetch {
		return AccessResult{Done: now, Latency: done - now, Level: level, Coherent: coherent, BusTxn: true}
	}
	st.DemandAccesses++
	st.DemandLatencyTotal += done - now
	return AccessResult{Done: done, Latency: done - now, Level: level, Coherent: coherent, BusTxn: true}
}

// prefetch handles lfetch/lfetch.excl: non-binding, non-blocking, dropped
// when no MSHR is free (as real lfetch is dropped when resources are
// exhausted).
func (d *Domain) prefetch(h *hierarchy, st *CPUStats, ev *EventDelta, la uint64, kind AccessKind, now int64) AccessResult {
	// Already present (or being filled): nothing to do. An exclusive
	// prefetch of a line held Shared performs an upgrade.
	if l2 := h.l2.lookup(la); l2 != nil {
		if kind == PrefExcl && l2.state == Shared {
			sr := d.snoop(h.cpu, la, true)
			home := d.homeNode(la, h.cpu)
			d.icn.Transact(h.cpu, home, TxnUpgrade, sr, now)
			ev.BusMemory++
			st.BusUpgrades++
			l2.state = Exclusive
			if l3 := h.l3.peek(la); l3 != nil {
				l3.state = Exclusive
			}
			return AccessResult{Done: now, Level: LvlL2, Coherent: sr.HitClean || sr.HitM, BusTxn: true}
		}
		return AccessResult{Done: now, Level: LvlNone}
	}
	ev.L2Miss++ // the prefetch missed L2 (it may still hit L3)
	if l3 := h.l3.lookup(la); l3 != nil {
		if kind == PrefExcl && l3.state == Shared {
			sr := d.snoop(h.cpu, la, true)
			home := d.homeNode(la, h.cpu)
			d.icn.Transact(h.cpu, home, TxnUpgrade, sr, now)
			ev.BusMemory++
			st.BusUpgrades++
			l3.state = Exclusive
			d.l2Insert(h, la, Exclusive, now+d.cfg.Lat.L3Hit)
			return AccessResult{Done: now, Level: LvlL3, Coherent: sr.HitClean || sr.HitM, BusTxn: true}
		}
		d.l2Insert(h, la, l3.state, now+d.cfg.Lat.L3Hit)
		return AccessResult{Done: now, Level: LvlNone}
	}
	ev.L3Miss++

	// Need a fill: claim an MSHR or drop.
	if h.activeMSHRs(now) >= len(h.mshr) {
		st.PrefetchesDropped++
		return AccessResult{Done: now, Level: LvlNone, Dropped: true}
	}
	res := d.fill(h, st, ev, la, kind, now, true)
	h.claimMSHR(now, now+res.Latency)
	return res
}

// Probe returns the MESI state of addr in cpu's hierarchy without touching
// LRU or timing state. Tests and the COBRA profiler use it.
func (d *Domain) Probe(cpu int, addr uint64) MESIState {
	h := d.hiers[cpu]
	la := addr & d.lineMask
	state := Invalid
	if l := h.l3.peek(la); l != nil {
		state = l.state
	}
	if l := h.l2.peek(la); l != nil && l.state > state {
		state = l.state
	}
	return state
}

// ResetStats zeroes all per-CPU counters (experiment warm-up boundaries).
func (d *Domain) ResetStats() {
	for i := range d.stats {
		d.stats[i] = CPUStats{}
	}
}

package mem

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Chunking granularity of the backing store. Physical memory is materialized
// in fixed-size chunks on first write, so building a machine with the
// paper's 256 MB memory costs a pointer array, not a 256 MB clear — machine
// construction is on the experiment schedulers' per-cell path, and zeroing
// the full backing store dominated cold-sweep profiles.
const (
	chunkShift = 20 // 1 MB chunks
	chunkBytes = 1 << chunkShift
	chunkMask  = chunkBytes - 1
)

// Memory is the flat simulated physical memory: a byte-addressed backing
// store with a bump allocator for named segments and per-page NUMA home
// nodes assigned by first-touch (the SGI Altix policy the paper relies on).
//
// The backing store is sparse: chunks materialize on first write and reads
// of untouched memory return zero, exactly as the previous eagerly-zeroed
// array behaved.
type Memory struct {
	size     uint64
	chunks   [][]byte // nil until first write to the chunk
	pageSize uint64
	home     []int16 // page index -> node, -1 until first touch
	brk      uint64
	segs     []Segment

	// place is the placement-policy engine (placement.go). The zero value
	// is single-node first-touch — the pre-scenario-matrix behaviour.
	place placement
}

// Segment records a named allocation (an array of a workload).
type Segment struct {
	Name string
	Base uint64
	Size uint64
}

// NewMemory creates a memory of size bytes with the given NUMA page size.
func NewMemory(size, pageSize uint64) *Memory {
	if pageSize == 0 || pageSize&(pageSize-1) != 0 {
		panic(fmt.Sprintf("mem: page size %d not a power of two", pageSize))
	}
	npages := (size + pageSize - 1) / pageSize
	m := &Memory{
		size:     size,
		chunks:   make([][]byte, (size+chunkMask)>>chunkShift),
		pageSize: pageSize,
		home:     make([]int16, npages),
		brk:      pageSize, // keep address 0 unmapped to catch null derefs
	}
	for i := range m.home {
		m.home[i] = -1
	}
	return m
}

// Size returns the memory size in bytes.
func (m *Memory) Size() uint64 { return m.size }

// Alloc reserves size bytes aligned to align (power of two, at least 8) and
// returns the base address.
func (m *Memory) Alloc(name string, size, align uint64) (uint64, error) {
	if align == 0 {
		align = 8
	}
	if align&(align-1) != 0 {
		return 0, fmt.Errorf("mem: alloc %s alignment %d not a power of two", name, align)
	}
	base := (m.brk + align - 1) &^ (align - 1)
	if base+size > m.size {
		return 0, fmt.Errorf("mem: out of memory allocating %s (%d bytes at %#x)", name, size, base)
	}
	m.brk = base + size
	m.segs = append(m.segs, Segment{Name: name, Base: base, Size: size})
	return base, nil
}

// MustAlloc is Alloc that panics on exhaustion (workload setup paths).
func (m *Memory) MustAlloc(name string, size, align uint64) uint64 {
	a, err := m.Alloc(name, size, align)
	if err != nil {
		panic(err)
	}
	return a
}

// Segments returns the allocation table.
func (m *Memory) Segments() []Segment {
	out := make([]Segment, len(m.segs))
	copy(out, m.segs)
	return out
}

// SegmentFor returns the segment containing addr, if any. COBRA's profiler
// uses it to attribute delinquent loads to data structures.
func (m *Memory) SegmentFor(addr uint64) (Segment, bool) {
	for _, s := range m.segs {
		if addr >= s.Base && addr < s.Base+s.Size {
			return s, true
		}
	}
	return Segment{}, false
}

func (m *Memory) check(addr uint64, n uint64) {
	if addr < m.pageSize || addr+n > m.size {
		panic(fmt.Sprintf("mem: access [%#x,%#x) outside memory (size %#x)", addr, addr+n, m.size))
	}
}

// chunkFor materializes and returns the chunk containing addr.
func (m *Memory) chunkFor(addr uint64) []byte {
	ci := addr >> chunkShift
	c := m.chunks[ci]
	if c == nil {
		c = make([]byte, chunkBytes)
		m.chunks[ci] = c
	}
	return c
}

// readU64 reads 8 little-endian bytes at addr. Aligned accesses (everything
// the compiler emits) never straddle a chunk; the unaligned straddling case
// falls back to a byte loop.
func (m *Memory) readU64(addr uint64) uint64 {
	m.check(addr, 8)
	off := addr & chunkMask
	if off+8 <= chunkBytes {
		c := m.chunks[addr>>chunkShift]
		if c == nil {
			return 0
		}
		return binary.LittleEndian.Uint64(c[off:])
	}
	var b [8]byte
	for i := range b {
		a := addr + uint64(i)
		if c := m.chunks[a>>chunkShift]; c != nil {
			b[i] = c[a&chunkMask]
		}
	}
	return binary.LittleEndian.Uint64(b[:])
}

// writeU64 writes 8 little-endian bytes at addr, materializing chunks.
func (m *Memory) writeU64(addr uint64, v uint64) {
	m.check(addr, 8)
	off := addr & chunkMask
	if off+8 <= chunkBytes {
		binary.LittleEndian.PutUint64(m.chunkFor(addr)[off:], v)
		return
	}
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	for i := range b {
		a := addr + uint64(i)
		m.chunkFor(a)[a&chunkMask] = b[i]
	}
}

// ReadI64 reads a little-endian int64.
func (m *Memory) ReadI64(addr uint64) int64 {
	return int64(m.readU64(addr))
}

// ReadU64 reads 8 little-endian bytes as a raw bit pattern. The parallel
// simulation engine stages and validates values as uint64 bits so integer
// and floating-point traffic share one code path; reads never materialize
// chunks, which is what makes concurrent window-recording readers safe
// against a quiescent backing store.
func (m *Memory) ReadU64(addr uint64) uint64 {
	return m.readU64(addr)
}

// WriteU64 writes 8 bytes as a raw bit pattern — the deterministic commit
// half of ReadU64, applied only on the serial replay path.
func (m *Memory) WriteU64(addr uint64, v uint64) {
	m.writeU64(addr, v)
}

// InRange reports whether an 8-byte access at addr falls inside the
// mapped address space (above the unmapped null page, below the top of
// memory). Out-of-range demand accesses panic in check; the window
// recorder screens addresses with InRange first so a bad address is
// re-executed — and faults — on the serial engine instead of inside a
// worker goroutine.
func (m *Memory) InRange(addr uint64) bool {
	return addr >= m.pageSize && addr+8 <= m.size
}

// WriteI64 writes a little-endian int64.
func (m *Memory) WriteI64(addr uint64, v int64) {
	m.writeU64(addr, uint64(v))
}

// ReadF64 reads a float64.
func (m *Memory) ReadF64(addr uint64) float64 {
	return math.Float64frombits(m.readU64(addr))
}

// WriteF64 writes a float64.
func (m *Memory) WriteF64(addr uint64, v float64) {
	m.writeU64(addr, math.Float64bits(v))
}

// HomeNode returns the NUMA home node of addr under the configured
// placement policy, assigning it on first touch where the policy is
// touch-dependent. First-touch (the default) homes the page on toucher's
// node; interleave computes page mod nodes without consulting touch
// state; bind assigns the bind node with deterministic capacity spill.
// On the SMP configuration every page homes to node 0.
func (m *Memory) HomeNode(addr uint64, toucher int) int {
	pg := addr / m.pageSize
	switch m.place.policy {
	case PlaceInterleave:
		return int(pg % uint64(m.place.numNodes))
	case PlaceBind:
		if m.home[pg] < 0 {
			m.home[pg] = m.place.assignBind()
		}
	default: // first-touch
		if m.home[pg] < 0 {
			m.home[pg] = int16(toucher)
		}
	}
	return int(m.home[pg])
}

// PeekHomeNode returns the home node without first-touch assignment
// (-1 if untouched). Interleaved pages have static homes, so the policy's
// computed value is returned rather than the untouched marker.
func (m *Memory) PeekHomeNode(addr uint64) int {
	if m.place.policy == PlaceInterleave {
		return int((addr / m.pageSize) % uint64(m.place.numNodes))
	}
	return int(m.home[addr/m.pageSize])
}

// PageSize returns the NUMA page size.
func (m *Memory) PageSize() uint64 { return m.pageSize }

// ResetPlacement clears all page-home assignments and restores per-node
// capacity budgets (used between experiment repetitions).
func (m *Memory) ResetPlacement() {
	for i := range m.home {
		m.home[i] = -1
	}
	copy(m.place.capPages, m.place.initCap)
}

package mem

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Memory is the flat simulated physical memory: a byte-addressed backing
// store with a bump allocator for named segments and per-page NUMA home
// nodes assigned by first-touch (the SGI Altix policy the paper relies on).
type Memory struct {
	data     []byte
	pageSize uint64
	home     []int16 // page index -> node, -1 until first touch
	brk      uint64
	segs     []Segment
}

// Segment records a named allocation (an array of a workload).
type Segment struct {
	Name string
	Base uint64
	Size uint64
}

// NewMemory creates a memory of size bytes with the given NUMA page size.
func NewMemory(size, pageSize uint64) *Memory {
	if pageSize == 0 || pageSize&(pageSize-1) != 0 {
		panic(fmt.Sprintf("mem: page size %d not a power of two", pageSize))
	}
	npages := (size + pageSize - 1) / pageSize
	m := &Memory{
		data:     make([]byte, size),
		pageSize: pageSize,
		home:     make([]int16, npages),
		brk:      pageSize, // keep address 0 unmapped to catch null derefs
	}
	for i := range m.home {
		m.home[i] = -1
	}
	return m
}

// Size returns the memory size in bytes.
func (m *Memory) Size() uint64 { return uint64(len(m.data)) }

// Alloc reserves size bytes aligned to align (power of two, at least 8) and
// returns the base address.
func (m *Memory) Alloc(name string, size, align uint64) (uint64, error) {
	if align == 0 {
		align = 8
	}
	if align&(align-1) != 0 {
		return 0, fmt.Errorf("mem: alloc %s alignment %d not a power of two", name, align)
	}
	base := (m.brk + align - 1) &^ (align - 1)
	if base+size > uint64(len(m.data)) {
		return 0, fmt.Errorf("mem: out of memory allocating %s (%d bytes at %#x)", name, size, base)
	}
	m.brk = base + size
	m.segs = append(m.segs, Segment{Name: name, Base: base, Size: size})
	return base, nil
}

// MustAlloc is Alloc that panics on exhaustion (workload setup paths).
func (m *Memory) MustAlloc(name string, size, align uint64) uint64 {
	a, err := m.Alloc(name, size, align)
	if err != nil {
		panic(err)
	}
	return a
}

// Segments returns the allocation table.
func (m *Memory) Segments() []Segment {
	out := make([]Segment, len(m.segs))
	copy(out, m.segs)
	return out
}

// SegmentFor returns the segment containing addr, if any. COBRA's profiler
// uses it to attribute delinquent loads to data structures.
func (m *Memory) SegmentFor(addr uint64) (Segment, bool) {
	for _, s := range m.segs {
		if addr >= s.Base && addr < s.Base+s.Size {
			return s, true
		}
	}
	return Segment{}, false
}

func (m *Memory) check(addr uint64, n uint64) {
	if addr < m.pageSize || addr+n > uint64(len(m.data)) {
		panic(fmt.Sprintf("mem: access [%#x,%#x) outside memory (size %#x)", addr, addr+n, len(m.data)))
	}
}

// ReadI64 reads a little-endian int64.
func (m *Memory) ReadI64(addr uint64) int64 {
	m.check(addr, 8)
	return int64(binary.LittleEndian.Uint64(m.data[addr:]))
}

// WriteI64 writes a little-endian int64.
func (m *Memory) WriteI64(addr uint64, v int64) {
	m.check(addr, 8)
	binary.LittleEndian.PutUint64(m.data[addr:], uint64(v))
}

// ReadF64 reads a float64.
func (m *Memory) ReadF64(addr uint64) float64 {
	m.check(addr, 8)
	return math.Float64frombits(binary.LittleEndian.Uint64(m.data[addr:]))
}

// WriteF64 writes a float64.
func (m *Memory) WriteF64(addr uint64, v float64) {
	m.check(addr, 8)
	binary.LittleEndian.PutUint64(m.data[addr:], math.Float64bits(v))
}

// HomeNode returns the NUMA home node of addr, assigning it by first touch
// from toucher if unassigned. On the SMP configuration every page homes to
// node 0.
func (m *Memory) HomeNode(addr uint64, toucher int) int {
	pg := addr / m.pageSize
	if m.home[pg] < 0 {
		m.home[pg] = int16(toucher)
	}
	return int(m.home[pg])
}

// PeekHomeNode returns the home node without first-touch assignment
// (-1 if untouched).
func (m *Memory) PeekHomeNode(addr uint64) int {
	return int(m.home[addr/m.pageSize])
}

// PageSize returns the NUMA page size.
func (m *Memory) PageSize() uint64 { return m.pageSize }

// ResetPlacement clears all first-touch assignments (used between
// experiment repetitions).
func (m *Memory) ResetPlacement() {
	for i := range m.home {
		m.home[i] = -1
	}
}

package mem

import "testing"

// TestEventDeltasMatchStats drives a mixed, coherence-heavy access pattern
// through a domain and checks that summing the per-access EventDelta
// reports reproduces exactly the PMU-fed fields of the aggregate CPUStats.
// This is the contract the delta-based hot path rests on: the machine feeds
// the PMU from AccessResult.Ev instead of diffing CPUStats snapshots, so
// the two views must never drift.
func TestEventDeltasMatchStats(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"smp4", Itanium2SMP(4)},
		{"altix8", AltixNUMA(8)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := tc.cfg
			cfg.MemBytes = 16 << 20
			mm := NewMemory(cfg.MemBytes, cfg.PageSize)
			d, err := NewDomain(cfg, mm)
			if err != nil {
				t.Fatal(err)
			}

			base, err := mm.Alloc("a", 1<<20, 128)
			if err != nil {
				t.Fatal(err)
			}
			kinds := []AccessKind{LoadInt, Store, LoadBias, PrefShrd, PrefExcl}
			var sum [8]int64 // per-field EventDelta totals, all CPUs
			ncpu := cfg.NumCPUs

			// Deterministic LCG over a small window so lines bounce between
			// CPUs: upgrades, HITM transfers, writebacks and plain memory
			// fills all occur.
			state := uint64(12345)
			now := int64(0)
			for i := 0; i < 20000; i++ {
				state = state*6364136223846793005 + 1442695040888963407
				cpu := int(state>>33) % ncpu
				addr := base + (state>>17)%(64<<10)
				kind := kinds[(state>>7)%uint64(len(kinds))]
				now += 3
				res := d.Access(cpu, addr, kind, now)
				sum[0] += int64(res.Ev.L2Miss)
				sum[1] += int64(res.Ev.L3Miss)
				sum[2] += int64(res.Ev.Writebacks)
				sum[3] += int64(res.Ev.BusMemory)
				sum[4] += int64(res.Ev.BusRdHit)
				sum[5] += int64(res.Ev.BusRdHitm)
				sum[6] += int64(res.Ev.BusRdInvalAllHitm)
			}

			tot := d.TotalStats()
			got := [8]int64{tot.L2Misses, tot.L3Misses, tot.Writebacks,
				tot.BusMemory, tot.BusRdHit, tot.BusRdHitm, tot.BusRdInvalAllHitm}
			names := []string{"L2Misses", "L3Misses", "Writebacks",
				"BusMemory", "BusRdHit", "BusRdHitm", "BusRdInvalAllHitm"}
			for i, name := range names {
				if sum[i] != got[i] {
					t.Errorf("%s: sum of deltas = %d, stats = %d", name, sum[i], got[i])
				}
			}
			if sum[0] == 0 || sum[3] == 0 {
				t.Fatal("pattern generated no misses/bus traffic: test is vacuous")
			}
			if tc.name == "smp4" && sum[5]+sum[6] == 0 {
				t.Fatal("pattern generated no HITM snoops: coherence paths untested")
			}
		})
	}
}

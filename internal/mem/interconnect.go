package mem

// TxnKind classifies a system-level transaction emitted on an L3 miss or a
// coherence action.
type TxnKind uint8

const (
	TxnRead      TxnKind = iota // BRL: read line (shared intent)
	TxnReadExcl                 // BRIL: read line with invalidate (ownership)
	TxnUpgrade                  // BIL: invalidate-only upgrade S->M
	TxnWriteback                // BWL: cast out a Modified line to memory
)

func (k TxnKind) String() string {
	switch k {
	case TxnRead:
		return "BRL"
	case TxnReadExcl:
		return "BRIL"
	case TxnUpgrade:
		return "BIL"
	case TxnWriteback:
		return "BWL"
	}
	return "?"
}

// SnoopResult summarizes the other caches' responses to a transaction,
// mirroring the snoop phase of the Itanium 2 front-side bus.
type SnoopResult struct {
	HitClean bool // at least one other cache holds the line in S or E
	HitM     bool // another cache holds the line Modified
	OwnerCPU int  // CPU owning the Modified copy (valid when HitM)
	FarHops  int  // max interconnect hops to any responding sharer (NUMA)
}

// LatencyParams are the timing constants of one machine configuration, in
// CPU cycles. Defaults approximate the paper's two platforms: memory loads
// of 120–150 cycles and coherent misses exceeding 180–200 cycles on the
// SMP; substantially higher remote penalties on the Altix cc-NUMA.
type LatencyParams struct {
	L1Hit int64
	L2Hit int64
	L3Hit int64

	Memory     int64 // home memory access, same node
	HopPenalty int64 // added per interconnect hop (cc-NUMA only)
	C2C        int64 // cache-to-cache transfer (HITM), same node
	Upgrade    int64 // invalidate-only upgrade, same node

	BusOccupancyData int64 // bus busy time for a data transaction
	BusOccupancyCtl  int64 // bus busy time for an address-only transaction
}

// Interconnect computes the completion time of a transaction, accounting
// for its own contention state, and knows the CPU-to-node topology.
type Interconnect interface {
	// Transact returns the cycle at which the data (or ownership
	// acknowledgement) reaches reqCPU for a transaction issued at cycle
	// now. homeNode is the NUMA home of the line.
	Transact(reqCPU int, homeNode int, kind TxnKind, snoop SnoopResult, now int64) int64
	// NodeOf maps a CPU to its node.
	NodeOf(cpu int) int
	// Hops returns the interconnect distance between two nodes.
	Hops(a, b int) int
	// Name identifies the topology for reports.
	Name() string
}

// Bus is a single snooping front-side bus shared by all CPUs — the 4-way
// Itanium 2 SMP server. Transactions serialize on the bus: each occupies it
// for its occupancy window, and a transaction issued while the bus is busy
// waits. This is the mechanism by which aggressive prefetching "exerts
// tremendous stress on the system bus" (paper §1).
type Bus struct {
	lat       LatencyParams
	busyUntil int64
}

// NewBus returns a front-side bus with the given latency parameters.
func NewBus(lat LatencyParams) *Bus { return &Bus{lat: lat} }

func (b *Bus) Name() string      { return "smp-bus" }
func (b *Bus) NodeOf(int) int    { return 0 }
func (b *Bus) Hops(a, c int) int { return 0 }

func (b *Bus) Transact(reqCPU, homeNode int, kind TxnKind, snoop SnoopResult, now int64) int64 {
	start := now
	if b.busyUntil > start {
		start = b.busyUntil
	}
	occ := b.lat.BusOccupancyData
	var service int64
	switch kind {
	case TxnRead, TxnReadExcl:
		if snoop.HitM {
			service = b.lat.C2C // dirty line supplied cache-to-cache
		} else {
			service = b.lat.Memory
		}
	case TxnUpgrade:
		service = b.lat.Upgrade
		occ = b.lat.BusOccupancyCtl
	case TxnWriteback:
		service = b.lat.Memory / 2
	}
	b.busyUntil = start + occ
	return start + service
}

// Reset clears contention state between experiment repetitions.
func (b *Bus) Reset() { b.busyUntil = 0 }

// NUMA models the SGI Altix: CPUsPerNode processors share a node-local bus
// and memory; nodes connect through a fat-tree whose distance grows
// logarithmically with the node count. Remote memory and especially remote
// cache-to-cache transfers cost substantially more than on the SMP — the
// reason the paper's optimizations gain more on the Altix.
type NUMA struct {
	lat      LatencyParams
	nodeOf   []int16 // CPU -> node table (mutable: mid-run migration)
	numNodes int
	linkBusy []int64 // per-node egress link contention
	memBusy  []int64 // per-node memory controller contention
}

// NewNUMA builds a cc-NUMA interconnect for numCPUs processors grouped
// cpusPerNode to a node — the legacy uniform shape, expressed as a node
// list so uniform and asymmetric machines share one implementation.
func NewNUMA(lat LatencyParams, numCPUs, cpusPerNode int) *NUMA {
	var nodes []NodeConfig
	for remaining := numCPUs; remaining > 0; remaining -= cpusPerNode {
		n := cpusPerNode
		if n > remaining {
			n = remaining
		}
		nodes = append(nodes, NodeConfig{CPUs: n})
	}
	return NewNUMANodes(lat, nodes)
}

// NewNUMANodes builds a cc-NUMA interconnect from an explicit — possibly
// asymmetric — node list: node i carries nodes[i].CPUs processors, with
// CPU ids assigned in node order. The fat-tree hop model is unchanged; an
// asymmetric shape only changes which CPUs share a node-local bus.
func NewNUMANodes(lat LatencyParams, nodes []NodeConfig) *NUMA {
	var table []int16
	for id, nc := range nodes {
		for i := 0; i < nc.CPUs; i++ {
			table = append(table, int16(id))
		}
	}
	return &NUMA{
		lat:      lat,
		nodeOf:   table,
		numNodes: len(nodes),
		linkBusy: make([]int64, len(nodes)),
		memBusy:  make([]int64, len(nodes)),
	}
}

func (n *NUMA) Name() string       { return "cc-numa" }
func (n *NUMA) NodeOf(cpu int) int { return int(n.nodeOf[cpu]) }

// NumNodes returns the node count.
func (n *NUMA) NumNodes() int { return n.numNodes }

// SetNodeOf remaps cpu onto node — a mid-run affinity migration. All
// subsequent transactions issued by cpu pay distances from its new node,
// and first-touch pages it faults home there: exactly the scenario that
// stresses DEAR attribution and the optimizer's judgement windows, since
// the profile a patch was judged on no longer describes the machine.
func (n *NUMA) SetNodeOf(cpu, node int) {
	n.nodeOf[cpu] = int16(node)
}

// Hops returns the fat-tree distance between nodes: 0 within a node, and
// 2*(1+log2 distance) across the tree (up to the common ancestor and down).
func (n *NUMA) Hops(a, b int) int {
	if a == b {
		return 0
	}
	d := a ^ b
	h := 0
	for d > 0 {
		h++
		d >>= 1
	}
	return 2 * h
}

func (n *NUMA) Transact(reqCPU, homeNode int, kind TxnKind, snoop SnoopResult, now int64) int64 {
	reqNode := n.NodeOf(reqCPU)
	start := now
	if n.linkBusy[reqNode] > start {
		start = n.linkBusy[reqNode]
	}
	occ := n.lat.BusOccupancyData
	var service int64
	switch kind {
	case TxnRead, TxnReadExcl:
		if snoop.HitM {
			ownerNode := n.NodeOf(snoop.OwnerCPU)
			service = n.lat.C2C + n.lat.HopPenalty*int64(n.Hops(reqNode, ownerNode))
		} else {
			service = n.lat.Memory + n.lat.HopPenalty*int64(n.Hops(reqNode, homeNode))
			if n.memBusy[homeNode] > start {
				start = n.memBusy[homeNode]
			}
			n.memBusy[homeNode] = start + occ
		}
	case TxnUpgrade:
		service = n.lat.Upgrade + n.lat.HopPenalty*int64(snoop.FarHops)
		occ = n.lat.BusOccupancyCtl
	case TxnWriteback:
		service = (n.lat.Memory + n.lat.HopPenalty*int64(n.Hops(reqNode, homeNode))) / 2
		if n.memBusy[homeNode] > start {
			start = n.memBusy[homeNode]
		}
		n.memBusy[homeNode] = start + occ
	}
	n.linkBusy[reqNode] = start + occ
	return start + service
}

// Reset clears contention state between experiment repetitions.
func (n *NUMA) Reset() {
	for i := range n.linkBusy {
		n.linkBusy[i] = 0
		n.memBusy[i] = 0
	}
}

package mem

import "fmt"

// line is one cache line's bookkeeping. Data contents live in the backing
// Memory (the model is timing + coherence, not a second copy of the bytes).
type line struct {
	tag     uint64
	state   MESIState
	readyAt int64  // fill completion cycle; demand hits before this wait
	lastUse uint64 // LRU tick
}

// CacheConfig describes one cache level.
type CacheConfig struct {
	Name       string
	SizeBytes  int
	LineBytes  int
	Assoc      int
	HitLatency int64 // cycles to return data on a hit at this level
}

// Validate checks geometry invariants.
func (c CacheConfig) Validate() error {
	if c.LineBytes <= 0 || c.LineBytes&(c.LineBytes-1) != 0 {
		return fmt.Errorf("mem: %s line size %d not a power of two", c.Name, c.LineBytes)
	}
	if c.Assoc <= 0 {
		return fmt.Errorf("mem: %s associativity %d", c.Name, c.Assoc)
	}
	if c.SizeBytes%(c.LineBytes*c.Assoc) != 0 {
		return fmt.Errorf("mem: %s size %d not divisible by assoc*line", c.Name, c.SizeBytes)
	}
	sets := c.SizeBytes / (c.LineBytes * c.Assoc)
	if sets&(sets-1) != 0 {
		return fmt.Errorf("mem: %s set count %d not a power of two", c.Name, sets)
	}
	return nil
}

// cache is a set-associative cache with LRU replacement.
type cache struct {
	cfg       CacheConfig
	lineShift uint
	setMask   uint64
	sets      []line // sets[i*assoc : (i+1)*assoc]
	assoc     int
	tick      uint64
}

func newCache(cfg CacheConfig) *cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	nsets := cfg.SizeBytes / (cfg.LineBytes * cfg.Assoc)
	c := &cache{
		cfg:   cfg,
		assoc: cfg.Assoc,
		sets:  make([]line, nsets*cfg.Assoc),
	}
	for ls := cfg.LineBytes; ls > 1; ls >>= 1 {
		c.lineShift++
	}
	c.setMask = uint64(nsets - 1)
	return c
}

func (c *cache) lineAddr(addr uint64) uint64 { return addr >> c.lineShift }

func (c *cache) set(lineAddr uint64) []line {
	i := lineAddr & c.setMask
	return c.sets[i*uint64(c.assoc) : (i+1)*uint64(c.assoc)]
}

// lookup returns the line holding addr, or nil.
func (c *cache) lookup(addr uint64) *line {
	la := c.lineAddr(addr)
	set := c.set(la)
	for i := range set {
		if set[i].state != Invalid && set[i].tag == la {
			c.tick++
			set[i].lastUse = c.tick
			return &set[i]
		}
	}
	return nil
}

// peek is lookup without touching LRU state (used by snoops).
func (c *cache) peek(addr uint64) *line {
	la := c.lineAddr(addr)
	set := c.set(la)
	for i := range set {
		if set[i].state != Invalid && set[i].tag == la {
			return &set[i]
		}
	}
	return nil
}

// insert installs addr with the given state, evicting the LRU victim if the
// set is full. It returns the victim (valid only if evicted=true) so the
// caller can write back Modified victims and enforce inclusion.
func (c *cache) insert(addr uint64, state MESIState, readyAt int64) (victim line, evicted bool) {
	la := c.lineAddr(addr)
	set := c.set(la)
	c.tick++
	// Reuse an existing entry for the same tag (re-fill after downgrade).
	for i := range set {
		if set[i].state != Invalid && set[i].tag == la {
			set[i].state = state
			set[i].readyAt = readyAt
			set[i].lastUse = c.tick
			return line{}, false
		}
	}
	vi, lru := -1, ^uint64(0)
	for i := range set {
		if set[i].state == Invalid {
			vi = i
			break
		}
		if set[i].lastUse < lru {
			lru = set[i].lastUse
			vi = i
		}
	}
	v := set[vi]
	evicted = v.state != Invalid
	set[vi] = line{tag: la, state: state, readyAt: readyAt, lastUse: c.tick}
	return v, evicted
}

// invalidate drops addr and reports whether it was present and whether it
// held Modified data.
func (c *cache) invalidate(addr uint64) (found, wasM bool) {
	if l := c.peek(addr); l != nil {
		wasM = l.state == Modified
		l.state = Invalid
		return true, wasM
	}
	return false, false
}

// downgrade moves addr to Shared (snoop hit on a read) and reports its
// previous state.
func (c *cache) downgrade(addr uint64) (found bool, was MESIState) {
	if l := c.peek(addr); l != nil {
		was = l.state
		l.state = Shared
		return true, was
	}
	return false, Invalid
}

// victimAddr reconstructs the base address of an evicted line.
func (c *cache) victimAddr(v line) uint64 { return v.tag << c.lineShift }

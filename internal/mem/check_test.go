package mem

import (
	"math/rand"
	"strings"
	"testing"
)

// TestOnlineInvariantCheckerCleanTraffic drives random coherent traffic
// with the online checker enabled: a correct protocol must produce zero
// violations, and the checker must actually have run.
func TestOnlineInvariantCheckerCleanTraffic(t *testing.T) {
	const ncpu = 4
	cfg := Itanium2SMP(ncpu)
	cfg.MemBytes = 8 << 20
	m := NewMemory(cfg.MemBytes, cfg.PageSize)
	d, err := NewDomain(cfg, m)
	if err != nil {
		t.Fatal(err)
	}
	d.EnableInvariantChecks(0)
	base := m.MustAlloc("chk", 32*128, 128)
	r := rand.New(rand.NewSource(7))
	now := int64(0)
	for i := 0; i < 5000; i++ {
		cpu := r.Intn(ncpu)
		addr := base + uint64(r.Intn(32))*128
		d.Access(cpu, addr, kindOf(uint8(r.Intn(255))), now)
		now += 9
	}
	if v := d.InvariantViolations(); len(v) != 0 {
		t.Fatalf("clean traffic produced violations: %v", v)
	}
	if d.InvariantChecks() == 0 {
		t.Fatal("checker never ran")
	}
}

// TestOnlineInvariantCheckerDetectsCorruption plants an illegal MESI state
// by hand (two Modified copies of one line) and verifies the next access
// reports an I1 violation — proving the oracle can actually fail, not just
// stay silent.
func TestOnlineInvariantCheckerDetectsCorruption(t *testing.T) {
	const ncpu = 2
	cfg := Itanium2SMP(ncpu)
	cfg.MemBytes = 8 << 20
	m := NewMemory(cfg.MemBytes, cfg.PageSize)
	d, err := NewDomain(cfg, m)
	if err != nil {
		t.Fatal(err)
	}
	d.EnableInvariantChecks(4)
	base := m.MustAlloc("bad", 4*128, 128)

	// Legitimate store, then corrupt the other CPU's hierarchy behind the
	// protocol's back.
	d.Access(0, base, Store, 0)
	d.hiers[1].l2.insert(base, Modified, 0)
	d.hiers[1].l3.insert(base, Modified, 0)

	// The check runs on the accessed line, so touch the corrupted one.
	d.Access(0, base, LoadInt, 20)
	v := d.InvariantViolations()
	if len(v) == 0 {
		t.Fatal("corrupted MESI state went undetected")
	}
	found := false
	for _, s := range v {
		if strings.Contains(s, "I1:") {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected an I1 violation, got: %v", v)
	}
}

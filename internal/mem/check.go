package mem

import "fmt"

// invariantChecker is the opt-in online MESI legality oracle: when enabled
// it re-validates the protocol invariants of invariant_test.go after every
// access, on the line the access touched, so a fuzz run fails at the exact
// access that broke coherence instead of in a post-mortem sweep.
//
// The checks mirror the offline predicates:
//
//	I1 (single writer): at most one cache holds a line Modified or
//	    Exclusive, and then no other cache holds it at all.
//	I2 (no stale owners): immediately after a store by CPU c, c holds the
//	    line Modified and every other cache holds Invalid.
//	I3 (monotone counters): statistics are non-negative and the miss
//	    taxonomy is self-consistent (L3 misses cannot exceed L2 misses).
//
// Violations are recorded up to a bound; the checker never panics, so a
// fault-injection run can assert graceful degradation and still read the
// full violation list afterwards.
type invariantChecker struct {
	max     int
	checks  int64
	dropped int64
	found   []string
}

// DefaultInvariantCap bounds recorded violations when no cap is given.
const DefaultInvariantCap = 64

// EnableInvariantChecks turns on online invariant checking, recording at
// most max violations (0 = DefaultInvariantCap). Enabling is idempotent
// and retroactively cheap: a disabled domain pays one nil check per
// access.
func (d *Domain) EnableInvariantChecks(max int) {
	if max <= 0 {
		max = DefaultInvariantCap
	}
	if d.checker == nil {
		d.checker = &invariantChecker{max: max}
		return
	}
	d.checker.max = max
}

// InvariantViolations returns the violations recorded so far (nil when
// checking is disabled or the run was clean).
func (d *Domain) InvariantViolations() []string {
	if d.checker == nil {
		return nil
	}
	return d.checker.found
}

// InvariantChecks returns how many online checks ran — a fuzz harness
// asserts this is non-zero so "no violations" cannot mean "checker never
// ran".
func (d *Domain) InvariantChecks() int64 {
	if d.checker == nil {
		return 0
	}
	return d.checker.checks
}

func (c *invariantChecker) record(format string, a ...any) {
	if len(c.found) >= c.max {
		c.dropped++
		return
	}
	c.found = append(c.found, fmt.Sprintf(format, a...))
}

// checkOnline validates the invariants touched by one access: I1 on the
// accessed line, I2 when the access was a store, and I3 on the accessing
// CPU's counters.
func (d *Domain) checkOnline(cpu int, la uint64, kind AccessKind) {
	c := d.checker
	c.checks++

	// I1: single writer on the touched line.
	owners, holders := 0, 0
	ownerCPU := -1
	for _, h := range d.hiers {
		state := Invalid
		if l := h.l3.peek(la); l != nil {
			state = l.state
		}
		if l := h.l2.peek(la); l != nil && l.state > state {
			state = l.state
		}
		switch state {
		case Modified, Exclusive:
			owners++
			holders++
			ownerCPU = h.cpu
		case Shared:
			holders++
		}
	}
	if owners > 1 {
		c.record("I1: line %#x has %d exclusive owners after %v by cpu%d", la, owners, kind, cpu)
	} else if owners == 1 && holders > 1 {
		c.record("I1: line %#x owner cpu%d coexists with %d holders after %v by cpu%d",
			la, ownerCPU, holders, kind, cpu)
	}

	// I2: a store leaves exactly one Modified copy, in the requester.
	if kind == Store {
		if s := d.Probe(cpu, la); s != Modified {
			c.record("I2: store by cpu%d left line %#x in %v", cpu, la, s)
		}
		for _, h := range d.hiers {
			if h.cpu == cpu {
				continue
			}
			if s := d.Probe(h.cpu, la); s != Invalid {
				c.record("I2: store by cpu%d left a %v copy of line %#x in cpu%d", cpu, s, la, h.cpu)
			}
		}
	}

	// I3: counter sanity for the accessing CPU.
	st := &d.stats[cpu]
	if st.L2Misses < 0 || st.L3Misses < 0 || st.BusMemory < 0 ||
		st.Writebacks < 0 || st.DemandLatencyTotal < 0 {
		c.record("I3: negative counter on cpu%d: %+v", cpu, *st)
	} else if st.L3Misses > st.L2Misses {
		c.record("I3: cpu%d L3 misses %d exceed L2 misses %d", cpu, st.L3Misses, st.L2Misses)
	}
}

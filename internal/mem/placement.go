package mem

import "fmt"

// PlacementPolicy selects how physical pages are assigned NUMA home nodes.
// The zero value is first-touch — the SGI Altix default the paper relies
// on and the only policy that existed before the scenario matrix — so
// every legacy configuration keeps its semantics and its JSON encoding
// (the field is omitempty) byte-identical.
type PlacementPolicy string

const (
	// PlaceFirstTouch homes a page on the node of the CPU that first
	// accesses it (the legacy behaviour; "" and "first-touch" are the
	// same policy, "" being the canonical stored spelling).
	PlaceFirstTouch PlacementPolicy = ""
	// PlaceInterleave homes page p on node p mod N — round-robin by page
	// index, the classic bandwidth-spreading policy. Pure function of the
	// address, so it ignores capacity limits and touch order.
	PlaceInterleave PlacementPolicy = "interleave"
	// PlaceBind homes every page on BindNode until that node's declared
	// capacity is exhausted, then spills to the nearest neighbour (by
	// interconnect hops, ties broken by lower node id) with capacity
	// remaining — the numactl --membind model with deterministic
	// overflow. If every node is full the page lands on BindNode anyway:
	// the simulation stays deterministic rather than faulting.
	PlaceBind PlacementPolicy = "bind"
)

// Valid reports whether p is a known policy.
func (p PlacementPolicy) Valid() bool {
	switch p {
	case PlaceFirstTouch, PlaceInterleave, PlaceBind:
		return true
	}
	return false
}

// NodeConfig describes one NUMA node of a declarative machine shape: how
// many processors it carries and how much node-local memory it can home.
// MemBytes 0 means unbounded (no capacity accounting for the node).
type NodeConfig struct {
	CPUs     int
	MemBytes uint64 `json:",omitempty"`
}

// MaxTopologyCPUs bounds the total CPU count a declared node list may
// carry. 64 opens the asymmetric shapes the scenario matrix sweeps while
// keeping a single validated spec's machine affordable.
const MaxTopologyCPUs = 64

// NodeList resolves the configuration's machine shape to an explicit node
// list. A declared Nodes list is returned as-is; otherwise the legacy
// (NumCPUs, CPUsPerNode, NUMA) triple is expanded: one all-CPU node on
// the SMP, ceil(NumCPUs/CPUsPerNode) uniform nodes on the NUMA machine —
// exactly the shapes NewNUMA has always built, so legacy configurations
// resolve to topologies with identical CPU→node maps.
func (c Config) NodeList() []NodeConfig {
	if len(c.Nodes) > 0 {
		out := make([]NodeConfig, len(c.Nodes))
		copy(out, c.Nodes)
		return out
	}
	if !c.NUMA {
		return []NodeConfig{{CPUs: c.NumCPUs}}
	}
	var out []NodeConfig
	for remaining := c.NumCPUs; remaining > 0; remaining -= c.CPUsPerNode {
		n := c.CPUsPerNode
		if n > remaining {
			n = remaining
		}
		out = append(out, NodeConfig{CPUs: n})
	}
	return out
}

// NumNodes returns the node count of the resolved machine shape.
func (c Config) NumNodes() int { return len(c.NodeList()) }

// validateTopology checks the declarative shape and placement fields.
func (c Config) validateTopology() error {
	if len(c.Nodes) > 0 {
		total := 0
		for i, n := range c.Nodes {
			if n.CPUs <= 0 {
				return fmt.Errorf("mem: node %d has %d CPUs", i, n.CPUs)
			}
			total += n.CPUs
		}
		if total != c.NumCPUs {
			return fmt.Errorf("mem: node list carries %d CPUs, config says %d", total, c.NumCPUs)
		}
		if total > MaxTopologyCPUs {
			return fmt.Errorf("mem: node list carries %d CPUs, max %d", total, MaxTopologyCPUs)
		}
		if len(c.Nodes) > 1 && !c.NUMA {
			return fmt.Errorf("mem: %d-node topology requires NUMA", len(c.Nodes))
		}
	}
	if !c.Placement.Valid() {
		return fmt.Errorf("mem: unknown placement policy %q", c.Placement)
	}
	if c.Placement != PlaceFirstTouch && !c.NUMA {
		return fmt.Errorf("mem: placement %q requires NUMA (SMP homes every page on node 0)", c.Placement)
	}
	if c.Placement == PlaceBind {
		if n := c.NumNodes(); c.BindNode < 0 || c.BindNode >= n {
			return fmt.Errorf("mem: bind node %d out of range [0, %d)", c.BindNode, n)
		}
	} else if c.BindNode != 0 {
		return fmt.Errorf("mem: BindNode %d set without placement %q", c.BindNode, PlaceBind)
	}
	return nil
}

// placement is the memory-side placement engine state. The zero value is
// single-node first-touch — what every Memory had before the scenario
// matrix — so NewMemory callers that never configure placement are
// untouched.
type placement struct {
	policy   PlacementPolicy
	numNodes int
	bindNode int16

	// capPages is the remaining page budget per node (-1 = unbounded);
	// initCap preserves the configured budgets for ResetPlacement.
	capPages []int64
	initCap  []int64

	// spill is the bind policy's node probe order: BindNode first, then
	// every other node sorted by (hops from BindNode, node id).
	spill []int16
}

// ConfigurePlacement installs a placement policy over the memory's pages.
// nodes declares per-node capacity (MemBytes 0 = unbounded); hops is the
// interconnect distance function used to order bind-policy spill targets
// (nil falls back to node-id distance). Must be called before simulation
// touches memory; NewDomain does it during machine construction.
func (m *Memory) ConfigurePlacement(policy PlacementPolicy, nodes []NodeConfig, bindNode int, hops func(a, b int) int) {
	p := &m.place
	p.policy = policy
	p.numNodes = len(nodes)
	if p.numNodes == 0 {
		p.numNodes = 1
	}
	p.bindNode = int16(bindNode)
	p.capPages = make([]int64, p.numNodes)
	p.initCap = make([]int64, p.numNodes)
	for i := range p.capPages {
		cap := int64(-1)
		if i < len(nodes) && nodes[i].MemBytes > 0 {
			cap = int64(nodes[i].MemBytes / m.pageSize)
		}
		p.capPages[i] = cap
		p.initCap[i] = cap
	}
	if policy == PlaceBind {
		p.spill = spillOrder(p.numNodes, bindNode, hops)
	}
}

// spillOrder returns every node ordered by (hops from origin, node id),
// origin first — the deterministic probe sequence bind overflow follows.
func spillOrder(numNodes, origin int, hops func(a, b int) int) []int16 {
	if hops == nil {
		hops = func(a, b int) int {
			d := a - b
			if d < 0 {
				d = -d
			}
			return d
		}
	}
	order := make([]int16, 0, numNodes)
	taken := make([]bool, numNodes)
	for len(order) < numNodes {
		best, bestHops := -1, 0
		for n := 0; n < numNodes; n++ {
			if taken[n] {
				continue
			}
			h := hops(origin, n)
			if best == -1 || h < bestHops {
				best, bestHops = n, h
			}
		}
		taken[best] = true
		order = append(order, int16(best))
	}
	return order
}

// assignBind picks the home for a newly touched page under the bind
// policy: the first node in spill order with capacity remaining. A fully
// exhausted machine falls back to the bind node itself so placement stays
// total and deterministic.
func (p *placement) assignBind() int16 {
	for _, n := range p.spill {
		if p.capPages[n] != 0 {
			if p.capPages[n] > 0 {
				p.capPages[n]--
			}
			return n
		}
	}
	return p.bindNode
}

package mem

import "testing"

func TestMemoryAllocAndAccess(t *testing.T) {
	m := NewMemory(1<<20, 16<<10)
	a, err := m.Alloc("x", 1024, 128)
	if err != nil {
		t.Fatal(err)
	}
	if a%128 != 0 {
		t.Fatalf("alloc not aligned: %#x", a)
	}
	m.WriteF64(a, 3.5)
	if got := m.ReadF64(a); got != 3.5 {
		t.Fatalf("ReadF64 = %v", got)
	}
	m.WriteI64(a+8, -7)
	if got := m.ReadI64(a + 8); got != -7 {
		t.Fatalf("ReadI64 = %v", got)
	}
}

func TestMemoryAllocExhaustion(t *testing.T) {
	m := NewMemory(64<<10, 16<<10)
	if _, err := m.Alloc("big", 1<<20, 8); err == nil {
		t.Fatal("allocated beyond memory size")
	}
}

func TestMemoryAllocBadAlignment(t *testing.T) {
	m := NewMemory(1<<20, 16<<10)
	if _, err := m.Alloc("x", 8, 3); err == nil {
		t.Fatal("accepted non-power-of-two alignment")
	}
}

func TestMemorySegments(t *testing.T) {
	m := NewMemory(1<<20, 16<<10)
	a := m.MustAlloc("x", 256, 8)
	m.MustAlloc("y", 256, 8)
	seg, ok := m.SegmentFor(a + 100)
	if !ok || seg.Name != "x" {
		t.Fatalf("SegmentFor = %+v, %v", seg, ok)
	}
	if _, ok := m.SegmentFor(0); ok {
		t.Fatal("SegmentFor(0) found a segment")
	}
	if len(m.Segments()) != 2 {
		t.Fatalf("Segments = %v", m.Segments())
	}
}

func TestMemoryOutOfRangePanics(t *testing.T) {
	m := NewMemory(64<<10, 16<<10)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range read did not panic")
		}
	}()
	m.ReadI64(1 << 20)
}

func TestMemoryNullPagePanics(t *testing.T) {
	m := NewMemory(64<<10, 16<<10)
	defer func() {
		if recover() == nil {
			t.Fatal("read of page 0 did not panic")
		}
	}()
	m.ReadI64(0)
}

func TestFirstTouchAndReset(t *testing.T) {
	m := NewMemory(1<<20, 16<<10)
	if n := m.PeekHomeNode(0x8000); n != -1 {
		t.Fatalf("untouched page home = %d, want -1", n)
	}
	if n := m.HomeNode(0x8000, 3); n != 3 {
		t.Fatalf("first touch home = %d, want 3", n)
	}
	if n := m.HomeNode(0x8000, 1); n != 3 {
		t.Fatalf("second touch moved page to %d", n)
	}
	m.ResetPlacement()
	if n := m.PeekHomeNode(0x8000); n != -1 {
		t.Fatalf("home after reset = %d, want -1", n)
	}
}

func TestNUMAHops(t *testing.T) {
	n := NewNUMA(LatencyParams{}, 8, 2)
	if h := n.Hops(0, 0); h != 0 {
		t.Fatalf("Hops(0,0) = %d", h)
	}
	if h := n.Hops(0, 1); h != 2 {
		t.Fatalf("Hops(0,1) = %d, want 2", h)
	}
	if h01, h03 := n.Hops(0, 1), n.Hops(0, 3); h03 <= h01 {
		t.Fatalf("fat-tree distance not increasing: Hops(0,1)=%d Hops(0,3)=%d", h01, h03)
	}
	if n.NodeOf(5) != 2 {
		t.Fatalf("NodeOf(5) = %d, want 2", n.NodeOf(5))
	}
}

func TestBusTopology(t *testing.T) {
	b := NewBus(LatencyParams{Memory: 100, BusOccupancyData: 10})
	if b.NodeOf(3) != 0 || b.Hops(0, 1) != 0 {
		t.Fatal("bus topology must be flat")
	}
	done := b.Transact(0, 0, TxnRead, SnoopResult{}, 0)
	if done != 100 {
		t.Fatalf("bus read done = %d, want 100", done)
	}
	// Second transaction at cycle 0 queues behind the first's occupancy.
	done2 := b.Transact(1, 0, TxnRead, SnoopResult{}, 0)
	if done2 != 110 {
		t.Fatalf("queued bus read done = %d, want 110", done2)
	}
	b.Reset()
	if got := b.Transact(0, 0, TxnRead, SnoopResult{}, 0); got != 100 {
		t.Fatalf("after reset done = %d, want 100", got)
	}
}

package mem

import (
	"testing"
	"testing/quick"
)

func testCacheConfig() CacheConfig {
	return CacheConfig{Name: "T", SizeBytes: 4096, LineBytes: 128, Assoc: 2, HitLatency: 1}
}

func TestCacheConfigValidate(t *testing.T) {
	good := testCacheConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.LineBytes = 100
	if err := bad.Validate(); err == nil {
		t.Fatal("accepted non-power-of-two line size")
	}
	bad = good
	bad.Assoc = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("accepted zero associativity")
	}
	bad = good
	bad.SizeBytes = 4096 + 128
	if err := bad.Validate(); err == nil {
		t.Fatal("accepted non-power-of-two set count")
	}
}

func TestCacheHitMiss(t *testing.T) {
	c := newCache(testCacheConfig())
	if c.lookup(0x1000) != nil {
		t.Fatal("hit in empty cache")
	}
	c.insert(0x1000, Exclusive, 0)
	if l := c.lookup(0x1000); l == nil || l.state != Exclusive {
		t.Fatal("miss after insert")
	}
	// Same line, different offset within the 128-byte line.
	if c.lookup(0x1000+64) == nil {
		t.Fatal("intra-line offset missed")
	}
	// Different line.
	if c.lookup(0x1080) != nil {
		t.Fatal("hit on neighbouring line")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := newCache(testCacheConfig()) // 16 sets, 2-way
	// Three lines mapping to the same set: stride = sets*line = 16*128.
	const stride = 16 * 128
	a, b, x := uint64(0x10000), uint64(0x10000+stride), uint64(0x10000+2*stride)
	c.insert(a, Shared, 0)
	c.insert(b, Shared, 0)
	c.lookup(a) // make b the LRU
	victim, evicted := c.insert(x, Shared, 0)
	if !evicted {
		t.Fatal("no eviction from full set")
	}
	if got := c.victimAddr(victim); got != b {
		t.Fatalf("evicted %#x, want %#x (LRU)", got, b)
	}
	if c.lookup(a) == nil || c.lookup(x) == nil || c.lookup(b) != nil {
		t.Fatal("post-eviction contents wrong")
	}
}

func TestCacheInsertSameTagUpdates(t *testing.T) {
	c := newCache(testCacheConfig())
	c.insert(0x2000, Shared, 10)
	_, evicted := c.insert(0x2000, Modified, 20)
	if evicted {
		t.Fatal("re-insert of same tag evicted")
	}
	l := c.lookup(0x2000)
	if l.state != Modified || l.readyAt != 20 {
		t.Fatalf("re-insert did not update: %+v", l)
	}
}

func TestCacheInvalidate(t *testing.T) {
	c := newCache(testCacheConfig())
	c.insert(0x3000, Modified, 0)
	found, wasM := c.invalidate(0x3000)
	if !found || !wasM {
		t.Fatalf("invalidate = %v,%v", found, wasM)
	}
	if c.lookup(0x3000) != nil {
		t.Fatal("line survived invalidation")
	}
	found, _ = c.invalidate(0x3000)
	if found {
		t.Fatal("invalidate found an invalid line")
	}
}

func TestCacheDowngrade(t *testing.T) {
	c := newCache(testCacheConfig())
	c.insert(0x4000, Modified, 0)
	found, was := c.downgrade(0x4000)
	if !found || was != Modified {
		t.Fatalf("downgrade = %v,%v", found, was)
	}
	if l := c.peek(0x4000); l.state != Shared {
		t.Fatalf("state after downgrade = %v", l.state)
	}
}

func TestCachePeekDoesNotTouchLRU(t *testing.T) {
	c := newCache(testCacheConfig())
	const stride = 16 * 128
	a, b, x := uint64(0x10000), uint64(0x10000+stride), uint64(0x10000+2*stride)
	c.insert(a, Shared, 0)
	c.insert(b, Shared, 0)
	c.peek(a) // must NOT refresh a
	victim, _ := c.insert(x, Shared, 0)
	if got := c.victimAddr(victim); got != a {
		t.Fatalf("peek touched LRU: evicted %#x, want %#x", got, a)
	}
}

func TestCachePropertyInsertedLineIsFound(t *testing.T) {
	c := newCache(CacheConfig{Name: "P", SizeBytes: 64 << 10, LineBytes: 128, Assoc: 8, HitLatency: 1})
	prop := func(addrs []uint32) bool {
		if len(addrs) > 8 {
			addrs = addrs[:8] // stay within one working set's associativity
		}
		for _, a := range addrs {
			addr := uint64(a) &^ 127 % (32 << 10) // confine to a few sets
			c.insert(addr, Exclusive, 0)
			if c.lookup(addr) == nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Package mem models the memory system of an Itanium 2 multiprocessor in
// enough detail to reproduce the coherent-miss phenomena the COBRA paper
// optimizes: per-CPU L1D/L2/L3 cache hierarchies with 128-byte lines kept
// coherent by an invalidation-based MESI (Illinois) protocol over either a
// shared front-side bus (the 4-way SMP server) or a cc-NUMA interconnect of
// 2-CPU nodes (the SGI Altix), with first-touch page placement.
//
// The model is a timing model: every access returns a completion cycle
// computed from hit level, snoop results, interconnect contention and NUMA
// distance, plus the event classification (BUS_RD_HIT, BUS_RD_HITM,
// BUS_RD_INVAL_ALL_HITM, BUS_MEMORY, ...) the hardware performance monitors
// expose to COBRA.
package mem

// MESIState is the coherence state of a cache line.
type MESIState uint8

const (
	Invalid MESIState = iota
	Shared
	Exclusive
	Modified
)

func (s MESIState) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	case Modified:
		return "M"
	}
	return "?"
}

// AccessKind classifies a memory operation presented to a cache hierarchy.
type AccessKind uint8

const (
	LoadInt  AccessKind = iota // integer demand load (allocates in L1D)
	LoadFP                     // FP demand load (bypasses L1D, as on Itanium 2)
	Store                      // demand store (write-allocate, write-back)
	PrefShrd                   // lfetch: prefetch line in Shared/Exclusive state
	PrefExcl                   // lfetch.excl: prefetch line with intent to modify
	LoadBias                   // ld.bias: demand load acquiring Exclusive state
)

func (k AccessKind) String() string {
	switch k {
	case LoadInt:
		return "ld"
	case LoadFP:
		return "ldf"
	case Store:
		return "st"
	case PrefShrd:
		return "lfetch"
	case PrefExcl:
		return "lfetch.excl"
	case LoadBias:
		return "ld.bias"
	}
	return "?"
}

// IsPrefetch reports whether the access is non-binding.
func (k AccessKind) IsPrefetch() bool { return k == PrefShrd || k == PrefExcl }

// wantsExclusive reports whether the access requires ownership of the line.
func (k AccessKind) wantsExclusive() bool {
	return k == Store || k == PrefExcl || k == LoadBias
}

// Level identifies where in the hierarchy an access was satisfied.
type Level uint8

const (
	LvlL1 Level = iota
	LvlL2
	LvlL3
	LvlMemory // satisfied by home memory over the interconnect
	LvlRemote // satisfied by a cache-to-cache transfer (coherent miss)
	LvlNone   // prefetch dropped, or no data movement
)

func (l Level) String() string {
	switch l {
	case LvlL1:
		return "L1"
	case LvlL2:
		return "L2"
	case LvlL3:
		return "L3"
	case LvlMemory:
		return "MEM"
	case LvlRemote:
		return "C2C"
	case LvlNone:
		return "-"
	}
	return "?"
}

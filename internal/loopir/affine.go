package loopir

import "fmt"

// AffineForm is the decomposition of an index expression with respect to a
// loop variable: index = Stride*var + Base, with Base invariant in the
// loop. The compiler uses it to turn array references into incrementing
// cursor registers and to place prefetch streams.
type AffineForm struct {
	Stride int64
	Base   IntExpr // loop-invariant remainder (may be IConst(0))
}

// Affine decomposes e with respect to loopVar. ok is false when e is not
// affine in loopVar (e.g. a gather through an index array) or when the
// residual base cannot be shown loop-invariant against assigned, the set of
// names assigned inside the loop body.
func Affine(e IntExpr, loopVar string, assigned map[string]bool) (AffineForm, bool) {
	switch ex := e.(type) {
	case IConst:
		return AffineForm{Stride: 0, Base: ex}, true
	case IVar:
		if string(ex) == loopVar {
			return AffineForm{Stride: 1, Base: IConst(0)}, true
		}
		if assigned[string(ex)] {
			return AffineForm{}, false
		}
		return AffineForm{Stride: 0, Base: ex}, true
	case IBin:
		switch ex.Op {
		case Add, Sub:
			a, okA := Affine(ex.A, loopVar, assigned)
			b, okB := Affine(ex.B, loopVar, assigned)
			if !okA || !okB {
				return AffineForm{}, false
			}
			if ex.Op == Add {
				return AffineForm{Stride: a.Stride + b.Stride, Base: addExpr(a.Base, b.Base)}, true
			}
			return AffineForm{Stride: a.Stride - b.Stride, Base: subExpr(a.Base, b.Base)}, true
		case Mul:
			a, okA := Affine(ex.A, loopVar, assigned)
			b, okB := Affine(ex.B, loopVar, assigned)
			if !okA || !okB {
				return AffineForm{}, false
			}
			// Stride scaling requires a compile-time constant factor.
			if ca, isConst := constOf(a); isConst {
				return AffineForm{Stride: ca * b.Stride, Base: scaleExpr(b.Base, ca)}, true
			}
			if cb, isConst := constOf(b); isConst {
				return AffineForm{Stride: a.Stride * cb, Base: scaleExpr(a.Base, cb)}, true
			}
			if a.Stride == 0 && b.Stride == 0 {
				return AffineForm{Stride: 0, Base: e}, true // invariant product
			}
			return AffineForm{}, false
		case Shl:
			a, okA := Affine(ex.A, loopVar, assigned)
			if !okA {
				return AffineForm{}, false
			}
			if c, isConst := exprConst(ex.B); isConst {
				return AffineForm{Stride: a.Stride << uint(c), Base: scaleExpr(a.Base, 1<<uint(c))}, true
			}
			return AffineForm{}, false
		default:
			// Bitwise forms: invariant only if both sides are invariant.
			a, okA := Affine(ex.A, loopVar, assigned)
			b, okB := Affine(ex.B, loopVar, assigned)
			if okA && okB && a.Stride == 0 && b.Stride == 0 {
				return AffineForm{Stride: 0, Base: e}, true
			}
			return AffineForm{}, false
		}
	case ILoad:
		// A gather: never affine, and (conservatively) never invariant.
		return AffineForm{}, false
	}
	return AffineForm{}, false
}

// constOf reports whether a form is a plain compile-time constant.
func constOf(a AffineForm) (int64, bool) {
	if a.Stride != 0 {
		return 0, false
	}
	return exprConst(a.Base)
}

// exprConst folds e when it is a constant expression.
func exprConst(e IntExpr) (int64, bool) {
	switch ex := e.(type) {
	case IConst:
		return int64(ex), true
	case IBin:
		a, okA := exprConst(ex.A)
		b, okB := exprConst(ex.B)
		if !okA || !okB {
			return 0, false
		}
		switch ex.Op {
		case Add:
			return a + b, true
		case Sub:
			return a - b, true
		case Mul:
			return a * b, true
		case And:
			return a & b, true
		case Or:
			return a | b, true
		case Xor:
			return a ^ b, true
		case Shl:
			return a << uint(b&63), true
		case Shr:
			return a >> uint(b&63), true
		}
	}
	return 0, false
}

func addExpr(a, b IntExpr) IntExpr {
	if ca, ok := exprConst(a); ok {
		if cb, ok := exprConst(b); ok {
			return IConst(ca + cb)
		}
		if ca == 0 {
			return b
		}
	}
	if cb, ok := exprConst(b); ok && cb == 0 {
		return a
	}
	return IBin{Op: Add, A: a, B: b}
}

func subExpr(a, b IntExpr) IntExpr {
	if ca, ok := exprConst(a); ok {
		if cb, ok := exprConst(b); ok {
			return IConst(ca - cb)
		}
	}
	if cb, ok := exprConst(b); ok && cb == 0 {
		return a
	}
	return IBin{Op: Sub, A: a, B: b}
}

func scaleExpr(a IntExpr, c int64) IntExpr {
	if ca, ok := exprConst(a); ok {
		return IConst(ca * c)
	}
	if c == 1 {
		return a
	}
	// Distribute over additive forms so constant offsets remain additive:
	// (x+k)*c -> x*c + k*c. This is what lets stencil references u[e-1],
	// u[e], u[e+1] share one cursor with small constant offsets.
	if b, ok := a.(IBin); ok && (b.Op == Add || b.Op == Sub) {
		return IBin{Op: b.Op, A: scaleExpr(b.A, c), B: scaleExpr(b.B, c)}
	}
	return IBin{Op: Mul, A: a, B: IConst(c)}
}

// AssignedVars collects the names assigned by SetI/SetF/For statements in
// stmts (recursively) — the set against which loop invariance is judged.
func AssignedVars(stmts []Stmt) map[string]bool {
	out := map[string]bool{}
	var walk func([]Stmt)
	walk = func(ss []Stmt) {
		for _, s := range ss {
			switch st := s.(type) {
			case SetI:
				out[st.Name] = true
			case SetF:
				out[st.Name] = true
			case For:
				out[st.Var] = true
				walk(st.Body)
			case While:
				walk(st.Body)
			}
		}
	}
	walk(stmts)
	return out
}

// SplitConst separates an additive constant from e: e == rest + c.
func SplitConst(e IntExpr) (rest IntExpr, c int64) {
	switch ex := e.(type) {
	case IConst:
		return IConst(0), int64(ex)
	case IBin:
		switch ex.Op {
		case Add:
			ra, ca := SplitConst(ex.A)
			rb, cb := SplitConst(ex.B)
			return addExpr(ra, rb), ca + cb
		case Sub:
			ra, ca := SplitConst(ex.A)
			rb, cb := SplitConst(ex.B)
			return subExpr(ra, rb), ca - cb
		}
	}
	return e, 0
}

// Key renders a canonical string for an integer expression, used to
// deduplicate address streams.
func Key(e IntExpr) string {
	switch ex := e.(type) {
	case IConst:
		return fmt.Sprintf("%d", int64(ex))
	case IVar:
		return string(ex)
	case IBin:
		return "(" + Key(ex.A) + ex.Op.String() + Key(ex.B) + ")"
	case ILoad:
		return ex.Array + "[" + Key(ex.Index) + "]"
	}
	return "?"
}

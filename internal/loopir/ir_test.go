package loopir

import "testing"

// daxpyProgram is the paper's Figure 1 kernel in IR form.
func daxpyProgram() *Program {
	return &Program{
		Name: "daxpy",
		Arrays: []Array{
			{Name: "x", Kind: F64, Elems: 8192},
			{Name: "y", Kind: F64, Elems: 8192},
		},
		Funcs: []*Func{{
			Name:        "daxpy_body",
			Parallel:    true,
			FloatParams: []string{"a"},
			Body: []Stmt{
				For{Var: "i", Lo: V("lo"), Hi: V("hi"), Body: []Stmt{
					FStore{Array: "y", Index: V("i"),
						Val: FAdd(At("y", V("i")), FMul(FV("a"), At("x", V("i"))))},
				}},
			},
		}},
	}
}

func TestValidateDaxpy(t *testing.T) {
	if err := daxpyProgram().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateUndeclaredArray(t *testing.T) {
	p := daxpyProgram()
	p.Funcs[0].Body = []Stmt{FStore{Array: "z", Index: I(0), Val: F(1)}}
	if err := p.Validate(); err == nil {
		t.Fatal("accepted undeclared array")
	}
}

func TestValidateKindMismatch(t *testing.T) {
	p := daxpyProgram()
	p.Arrays = append(p.Arrays, Array{Name: "idx", Kind: I64, Elems: 16})
	p.Funcs[0].Body = []Stmt{FStore{Array: "idx", Index: I(0), Val: F(1)}}
	if err := p.Validate(); err == nil {
		t.Fatal("accepted float store to int array")
	}
	p.Funcs[0].Body = []Stmt{IStore{Array: "x", Index: I(0), Val: I(1)}}
	if err := p.Validate(); err == nil {
		t.Fatal("accepted int store to float array")
	}
}

func TestValidateShadowedLoopVar(t *testing.T) {
	p := daxpyProgram()
	p.Funcs[0].Body = []Stmt{
		For{Var: "i", Lo: I(0), Hi: I(4), Body: []Stmt{
			For{Var: "i", Lo: I(0), Hi: I(4), Body: nil},
		}},
	}
	if err := p.Validate(); err == nil {
		t.Fatal("accepted shadowed loop variable")
	}
}

func TestValidateIntDivisionRejected(t *testing.T) {
	p := daxpyProgram()
	p.Funcs[0].Body = []Stmt{SetI{Name: "t", Val: IBin{Op: Div, A: I(4), B: I(2)}}}
	if err := p.Validate(); err == nil {
		t.Fatal("accepted integer division")
	}
}

func TestValidateGather(t *testing.T) {
	p := daxpyProgram()
	p.Arrays = append(p.Arrays, Array{Name: "col", Kind: I64, Elems: 64})
	p.Funcs[0].Body = []Stmt{
		For{Var: "k", Lo: V("lo"), Hi: V("hi"), Body: []Stmt{
			SetF{Name: "s", Val: FAdd(FV("s"), At("x", IAt("col", V("k"))))},
		}},
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAffineSimpleVar(t *testing.T) {
	f, ok := Affine(V("i"), "i", nil)
	if !ok || f.Stride != 1 {
		t.Fatalf("Affine(i) = %+v, %v", f, ok)
	}
	if c, isC := exprConst(f.Base); !isC || c != 0 {
		t.Fatalf("base = %+v", f.Base)
	}
}

func TestAffineOffsets(t *testing.T) {
	f, ok := Affine(IAdd(V("i"), I(3)), "i", nil)
	if !ok || f.Stride != 1 {
		t.Fatalf("i+3: %+v, %v", f, ok)
	}
	if c, _ := exprConst(f.Base); c != 3 {
		t.Fatalf("i+3 base = %v", f.Base)
	}
	f, ok = Affine(ISub(V("i"), I(1)), "i", nil)
	if !ok || f.Stride != 1 {
		t.Fatalf("i-1: %+v, %v", f, ok)
	}
	if c, _ := exprConst(f.Base); c != -1 {
		t.Fatalf("i-1 base = %v", f.Base)
	}
}

func TestAffineStride(t *testing.T) {
	// i*4 + j where j is an outer loop variable (invariant here).
	e := IAdd(IMul(V("i"), I(4)), V("j"))
	f, ok := Affine(e, "i", nil)
	if !ok || f.Stride != 4 {
		t.Fatalf("4i+j: %+v, %v", f, ok)
	}
	// With respect to j, stride 1 and base 4i.
	f, ok = Affine(e, "j", nil)
	if !ok || f.Stride != 1 {
		t.Fatalf("wrt j: %+v, %v", f, ok)
	}
}

func TestAffineShl(t *testing.T) {
	f, ok := Affine(IShl(V("i"), I(2)), "i", nil)
	if !ok || f.Stride != 4 {
		t.Fatalf("i<<2: %+v, %v", f, ok)
	}
}

func TestAffineGatherNotAffine(t *testing.T) {
	if _, ok := Affine(IAt("col", V("k")), "k", nil); ok {
		t.Fatal("gather classified affine")
	}
	// Nested: base contains a gather -> not affine.
	if _, ok := Affine(IAdd(V("k"), IAt("col", I(0))), "k", nil); ok {
		t.Fatal("gather base classified invariant")
	}
}

func TestAffineAssignedVarNotInvariant(t *testing.T) {
	assigned := map[string]bool{"t": true}
	if _, ok := Affine(IAdd(V("i"), V("t")), "i", assigned); ok {
		t.Fatal("assigned var treated as invariant")
	}
	if _, ok := Affine(IAdd(V("i"), V("u")), "i", assigned); !ok {
		t.Fatal("unassigned var rejected")
	}
}

func TestAffineNonConstScaleRejected(t *testing.T) {
	if _, ok := Affine(IMul(V("i"), V("n")), "i", nil); ok {
		t.Fatal("variable stride classified affine")
	}
	// But invariant*invariant is fine.
	f, ok := Affine(IMul(V("m"), V("n")), "i", nil)
	if !ok || f.Stride != 0 {
		t.Fatalf("m*n: %+v, %v", f, ok)
	}
}

func TestAssignedVars(t *testing.T) {
	stmts := []Stmt{
		SetI{Name: "a", Val: I(1)},
		For{Var: "i", Lo: I(0), Hi: I(2), Body: []Stmt{
			SetF{Name: "b", Val: F(1)},
			While{Body: []Stmt{SetI{Name: "c", Val: I(0)}}, Cond: Cond{Rel: LT, A: I(0), B: I(1)}},
		}},
	}
	got := AssignedVars(stmts)
	for _, want := range []string{"a", "b", "c", "i"} {
		if !got[want] {
			t.Fatalf("AssignedVars missing %q: %v", want, got)
		}
	}
}

func TestExprConstFolding(t *testing.T) {
	cases := []struct {
		e    IntExpr
		want int64
	}{
		{IAdd(I(2), I(3)), 5},
		{IMul(I(4), I(5)), 20},
		{ISub(I(2), I(7)), -5},
		{IAnd(I(0xff), I(0x0f)), 0x0f},
		{IShl(I(1), I(10)), 1024},
		{IShr(I(1024), I(3)), 128},
	}
	for _, c := range cases {
		got, ok := exprConst(c.e)
		if !ok || got != c.want {
			t.Fatalf("exprConst(%v) = %d,%v want %d", c.e, got, ok, c.want)
		}
	}
	if _, ok := exprConst(V("i")); ok {
		t.Fatal("variable folded to constant")
	}
}

func TestProgramLookups(t *testing.T) {
	p := daxpyProgram()
	if a, ok := p.ArrayByName("x"); !ok || a.Elems != 8192 {
		t.Fatalf("ArrayByName(x) = %+v, %v", a, ok)
	}
	if _, ok := p.ArrayByName("nope"); ok {
		t.Fatal("found undeclared array")
	}
	if f, ok := p.FuncByName("daxpy_body"); !ok || !f.Parallel {
		t.Fatalf("FuncByName = %+v, %v", f, ok)
	}
	params := p.Funcs[0].AllIntParams()
	if len(params) != 3 || params[0] != "lo" || params[1] != "hi" || params[2] != "tid" {
		t.Fatalf("AllIntParams = %v", params)
	}
}

// Package loopir defines the loop-nest intermediate representation the
// synthetic "icc-like" compiler (internal/compiler) lowers to IA-64-like
// binaries. Workloads — the OpenMP DAXPY kernel of the paper's Figure 1 and
// the NAS Parallel Benchmark kernels of its evaluation — are authored as
// loopir programs: typed float64/int64 arrays, fork-join parallel functions
// taking an iteration range, and loop nests over array expressions.
package loopir

import "fmt"

// ElemKind is an array element type.
type ElemKind uint8

const (
	F64 ElemKind = iota // float64 elements
	I64                 // int64 elements
)

// ElemBytes is the size of every element kind.
const ElemBytes = 8

func (k ElemKind) String() string {
	if k == F64 {
		return "f64"
	}
	return "i64"
}

// Array declares one named global array.
type Array struct {
	Name  string
	Kind  ElemKind
	Elems int64
}

// Bytes returns the array's allocation size.
func (a Array) Bytes() uint64 { return uint64(a.Elems) * ElemBytes }

// Program is one compilable workload.
type Program struct {
	Name   string
	Arrays []Array
	Funcs  []*Func
}

// ArrayByName returns the declaration of name.
func (p *Program) ArrayByName(name string) (Array, bool) {
	for _, a := range p.Arrays {
		if a.Name == name {
			return a, true
		}
	}
	return Array{}, false
}

// FuncByName returns the function named name.
func (p *Program) FuncByName(name string) (*Func, bool) {
	for _, f := range p.Funcs {
		if f.Name == name {
			return f, true
		}
	}
	return nil, false
}

// Func is one function. Parallel functions are OpenMP-outlined region
// bodies: they implicitly receive int parameters "lo", "hi" (the assigned
// iteration range) and "tid" before any explicit parameters.
type Func struct {
	Name        string
	Parallel    bool
	IntParams   []string
	FloatParams []string
	Body        []Stmt
}

// AllIntParams returns the effective int parameter list including the
// implicit parallel-region parameters.
func (f *Func) AllIntParams() []string {
	if !f.Parallel {
		return f.IntParams
	}
	return append([]string{"lo", "hi", "tid"}, f.IntParams...)
}

// LoopHint guides the compiler's lowering of a For.
type LoopHint uint8

const (
	HintAuto    LoopHint = iota // compiler decides (SWP if innermost & simple)
	HintSWP                     // force software pipelining (br.ctop)
	HintCounted                 // force a plain counted loop (br.cloop)
	HintNoOpt                   // compare-and-branch loop (no LC use)
)

// ---- Statements ----

// Stmt is a statement.
type Stmt interface{ isStmt() }

// For iterates Var over [Lo, Hi) with unit step.
type For struct {
	Var  string
	Lo   IntExpr
	Hi   IntExpr
	Hint LoopHint
	Body []Stmt
}

// While is a do-while loop: the body always executes once, then repeats
// while Cond holds. It lowers to a pipelined while loop (br.wtop).
type While struct {
	Body []Stmt
	Cond Cond
}

// FStore writes Val to Array[Index] (a float64 array).
type FStore struct {
	Array string
	Index IntExpr
	Val   FloatExpr
}

// IStore writes Val to Array[Index] (an int64 array).
type IStore struct {
	Array string
	Index IntExpr
	Val   IntExpr
}

// SetF assigns a function-local float64 scalar.
type SetF struct {
	Name string
	Val  FloatExpr
}

// SetI assigns a function-local int64 scalar.
type SetI struct {
	Name string
	Val  IntExpr
}

func (For) isStmt()    {}
func (While) isStmt()  {}
func (FStore) isStmt() {}
func (IStore) isStmt() {}
func (SetF) isStmt()   {}
func (SetI) isStmt()   {}

// Cond is an integer comparison.
type Cond struct {
	Rel Rel
	A   IntExpr
	B   IntExpr
}

// Rel is a comparison relation.
type Rel uint8

const (
	EQ Rel = iota
	NE
	LT
	LE
	GT
	GE
)

// ---- Integer expressions ----

// IntExpr is an int64-valued expression.
type IntExpr interface{ isInt() }

// IConst is an integer literal.
type IConst int64

// IVar reads a loop variable, int parameter, or int local.
type IVar string

// IBin applies Op to two integer operands.
type IBin struct {
	Op ArithOp
	A  IntExpr
	B  IntExpr
}

// ILoad reads Array[Index] from an int64 array.
type ILoad struct {
	Array string
	Index IntExpr
}

func (IConst) isInt() {}
func (IVar) isInt()   {}
func (IBin) isInt()   {}
func (ILoad) isInt()  {}

// ---- Float expressions ----

// FloatExpr is a float64-valued expression.
type FloatExpr interface{ isFloat() }

// FConst is a float literal.
type FConst float64

// FVar reads a float parameter or float local.
type FVar string

// FBin applies Op to two float operands.
type FBin struct {
	Op ArithOp
	A  FloatExpr
	B  FloatExpr
}

// FLoad reads Array[Index] from a float64 array.
type FLoad struct {
	Array string
	Index IntExpr
}

// FFromInt converts an integer expression to float64.
type FFromInt struct{ E IntExpr }

func (FConst) isFloat()   {}
func (FVar) isFloat()     {}
func (FBin) isFloat()     {}
func (FLoad) isFloat()    {}
func (FFromInt) isFloat() {}

// ArithOp is an arithmetic operator. Div, And, Or, Xor, Shl, Shr apply to
// the domains that support them (Div float-only; bitwise int-only).
type ArithOp uint8

const (
	Add ArithOp = iota
	Sub
	Mul
	Div
	And
	Or
	Xor
	Shl
	Shr
)

func (o ArithOp) String() string {
	switch o {
	case Add:
		return "+"
	case Sub:
		return "-"
	case Mul:
		return "*"
	case Div:
		return "/"
	case And:
		return "&"
	case Or:
		return "|"
	case Xor:
		return "^"
	case Shl:
		return "<<"
	case Shr:
		return ">>"
	}
	return "?"
}

// ---- Convenience constructors (workload-authoring DSL) ----

// I builds an IConst.
func I(v int64) IConst { return IConst(v) }

// V builds an IVar.
func V(name string) IVar { return IVar(name) }

// IAdd, ISub, IMul, IAnd, IShl, IShr build integer operations.
func IAdd(a, b IntExpr) IBin { return IBin{Op: Add, A: a, B: b} }
func ISub(a, b IntExpr) IBin { return IBin{Op: Sub, A: a, B: b} }
func IMul(a, b IntExpr) IBin { return IBin{Op: Mul, A: a, B: b} }
func IAnd(a, b IntExpr) IBin { return IBin{Op: And, A: a, B: b} }
func IShl(a, b IntExpr) IBin { return IBin{Op: Shl, A: a, B: b} }
func IShr(a, b IntExpr) IBin { return IBin{Op: Shr, A: a, B: b} }

// F builds an FConst.
func F(v float64) FConst { return FConst(v) }

// FV builds an FVar.
func FV(name string) FVar { return FVar(name) }

// FAdd, FSub, FMul, FDiv build float operations.
func FAdd(a, b FloatExpr) FBin { return FBin{Op: Add, A: a, B: b} }
func FSub(a, b FloatExpr) FBin { return FBin{Op: Sub, A: a, B: b} }
func FMul(a, b FloatExpr) FBin { return FBin{Op: Mul, A: a, B: b} }
func FDiv(a, b FloatExpr) FBin { return FBin{Op: Div, A: a, B: b} }

// At reads a float64 array element.
func At(array string, idx IntExpr) FLoad { return FLoad{Array: array, Index: idx} }

// IAt reads an int64 array element.
func IAt(array string, idx IntExpr) ILoad { return ILoad{Array: array, Index: idx} }

// ---- Validation ----

// Validate checks that every array reference names a declared array of the
// right kind and that loop variables are not redeclared in nested scopes.
func (p *Program) Validate() error {
	for _, f := range p.Funcs {
		scope := map[string]bool{}
		for _, n := range f.AllIntParams() {
			scope[n] = true
		}
		if err := p.validateStmts(f, f.Body, scope); err != nil {
			return fmt.Errorf("loopir: %s.%s: %w", p.Name, f.Name, err)
		}
	}
	return nil
}

func (p *Program) validateStmts(f *Func, stmts []Stmt, scope map[string]bool) error {
	for _, s := range stmts {
		switch st := s.(type) {
		case For:
			if scope[st.Var] {
				return fmt.Errorf("loop variable %q shadows an existing name", st.Var)
			}
			if err := p.validateInt(st.Lo); err != nil {
				return err
			}
			if err := p.validateInt(st.Hi); err != nil {
				return err
			}
			scope[st.Var] = true
			if err := p.validateStmts(f, st.Body, scope); err != nil {
				return err
			}
			delete(scope, st.Var)
		case While:
			if err := p.validateInt(st.Cond.A); err != nil {
				return err
			}
			if err := p.validateInt(st.Cond.B); err != nil {
				return err
			}
			if err := p.validateStmts(f, st.Body, scope); err != nil {
				return err
			}
		case FStore:
			if err := p.checkArray(st.Array, F64); err != nil {
				return err
			}
			if err := p.validateInt(st.Index); err != nil {
				return err
			}
			if err := p.validateFloat(st.Val); err != nil {
				return err
			}
		case IStore:
			if err := p.checkArray(st.Array, I64); err != nil {
				return err
			}
			if err := p.validateInt(st.Index); err != nil {
				return err
			}
			if err := p.validateInt(st.Val); err != nil {
				return err
			}
		case SetF:
			if err := p.validateFloat(st.Val); err != nil {
				return err
			}
		case SetI:
			if err := p.validateInt(st.Val); err != nil {
				return err
			}
		default:
			return fmt.Errorf("unknown statement %T", s)
		}
	}
	return nil
}

func (p *Program) checkArray(name string, kind ElemKind) error {
	a, ok := p.ArrayByName(name)
	if !ok {
		return fmt.Errorf("undeclared array %q", name)
	}
	if a.Kind != kind {
		return fmt.Errorf("array %q is %v, used as %v", name, a.Kind, kind)
	}
	return nil
}

func (p *Program) validateInt(e IntExpr) error {
	switch ex := e.(type) {
	case IConst, IVar:
		return nil
	case IBin:
		if ex.Op == Div {
			return fmt.Errorf("integer division not supported")
		}
		if err := p.validateInt(ex.A); err != nil {
			return err
		}
		return p.validateInt(ex.B)
	case ILoad:
		if err := p.checkArray(ex.Array, I64); err != nil {
			return err
		}
		return p.validateInt(ex.Index)
	default:
		return fmt.Errorf("unknown int expression %T", e)
	}
}

func (p *Program) validateFloat(e FloatExpr) error {
	switch ex := e.(type) {
	case FConst, FVar:
		return nil
	case FBin:
		switch ex.Op {
		case Add, Sub, Mul, Div:
		default:
			return fmt.Errorf("float operator %v not supported", ex.Op)
		}
		if err := p.validateFloat(ex.A); err != nil {
			return err
		}
		return p.validateFloat(ex.B)
	case FLoad:
		if err := p.checkArray(ex.Array, F64); err != nil {
			return err
		}
		return p.validateInt(ex.Index)
	case FFromInt:
		return p.validateInt(ex.E)
	default:
		return fmt.Errorf("unknown float expression %T", e)
	}
}

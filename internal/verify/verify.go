package verify

import (
	"fmt"

	"repro/internal/sched"
)

// Options shapes one fuzz corpus run.
type Options struct {
	// Seed is the first seed; the corpus is [Seed, Seed+Count).
	Seed  int64
	Count int
	// Threads per generated program (worker threads = CPUs).
	Threads int
	// Jobs is the scheduler worker count (<=0: GOMAXPROCS).
	Jobs int
	// Modes are the differential patch modes each seed runs (nil: all).
	Modes []Mode
	// FaultEvery runs the control-loop fault-injection battery on every
	// n-th seed (0 disables; 1 = every seed). Faults cost three extra
	// full runs per seed, so smoke corpora sample them.
	FaultEvery int
	// Hooks receive per-seed scheduler progress events.
	Hooks sched.Hooks
}

// Summary aggregates a corpus run.
type Summary struct {
	Programs int
	Runs     int   // total program executions (baseline + modes + faults)
	Cycles   int64 // total simulated cycles across all runs
	Checks   int64 // online MESI invariant checks that ran
	Failures []SeedReport
}

// Failed reports whether any seed failed verification.
func (s *Summary) Failed() bool { return len(s.Failures) > 0 }

// String renders the one-line verdict.
func (s *Summary) String() string {
	if s.Failed() {
		return fmt.Sprintf("verify: %d/%d programs FAILED (%d runs, %d invariant checks)",
			len(s.Failures), s.Programs, s.Runs, s.Checks)
	}
	return fmt.Sprintf("verify: %d programs ok (%d runs, %dM cycles, %d invariant checks)",
		s.Programs, s.Runs, s.Cycles/1_000_000, s.Checks)
}

// RunCorpus verifies Count seeded programs on the experiment scheduler's
// worker pool. Each seed is one job: generate, run the differential
// battery, optionally fault-inject. Results come back in input order, so
// the summary — and any failure list — is deterministic regardless of
// worker interleaving.
func RunCorpus(opt Options) Summary {
	if opt.Count <= 0 {
		opt.Count = 1
	}
	if opt.Threads <= 0 {
		opt.Threads = DefaultGenConfig(0).Threads
	}
	modes := opt.Modes
	if len(modes) == 0 {
		modes = AllModes()
	}

	jobs := make([]sched.Job[SeedReport], 0, opt.Count)
	for i := 0; i < opt.Count; i++ {
		seed := opt.Seed + int64(i)
		cfg := DefaultGenConfig(seed)
		cfg.Threads = opt.Threads
		var faults []FaultKind
		if opt.FaultEvery > 0 && i%opt.FaultEvery == 0 {
			faults = AllFaults()
		}
		jobs = append(jobs, sched.Job[SeedReport]{
			Name: fmt.Sprintf("seed%06d", seed),
			Run: func() (SeedReport, error) {
				return VerifySeed(cfg, modes, faults), nil
			},
		})
	}

	results := sched.Run(jobs, sched.Options{Workers: opt.Jobs, Hooks: opt.Hooks})
	sum := Summary{Programs: opt.Count}
	for i := range results {
		rep := results[i].Value
		sum.Runs += 1 + len(rep.Modes) + len(rep.Faults)
		sum.Cycles += rep.BaselineCycles
		for _, m := range rep.Modes {
			sum.Cycles += m.Cycles
		}
		for _, f := range rep.Faults {
			sum.Cycles += f.Cycles
		}
		sum.Checks += rep.InvariantChecks
		if rep.Failed() {
			sum.Failures = append(sum.Failures, rep)
		}
	}
	return sum
}
